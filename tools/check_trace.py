#!/usr/bin/env python3
"""Schema check for PAX Chrome-trace exports (obs/trace_export.hpp).

Validates the structural invariants the exporter promises, so CI catches a
malformed export before anyone loads it into Perfetto:

  * the file is valid JSON: {"displayTimeUnit": "ms", "traceEvents": [...]};
  * every event has name/ph/pid (plus tid and a microsecond ts for
    non-metadata events) with the right types, ph in {M, X, i};
  * "X" (complete) events carry a non-negative dur;
  * every (pid, tid) that appears on a non-metadata event is named by
    process_name/thread_name metadata;
  * timestamps are non-negative and start at zero (the exporter normalizes
    to the run's earliest record);
  * instant events the exporter renders through its generic branch (refill,
    steal, shard sweep/flush, ring_overflow, enablement, ...) carry the
    record's aux payload as a non-negative integer args["aux"].

Usage: check_trace.py <trace.json> [more.json ...]; exits non-zero with a
message on the first violation.
"""
import json
import sys


def fail(path, msg):
    print(f"check_trace: {path}: {msg}", file=sys.stderr)
    sys.exit(1)


# Instant names the exporter's generic branch emits with an "aux" arg
# (obs/trace_export.cpp default case; names from TraceKind to_string).
# ring_overflow is the lock-free deposit path going direct-to-sweep — its
# aux (tickets retired directly) is what the t12 diagnosis reads.
AUX_INSTANTS = {
    "refill",
    "steal_attempt",
    "steal_success",
    "shard_sweep",
    "deposit_flush",
    "ring_overflow",
    "job_open",
    "job_drain",
    "job_finalize",
    "granules_enabled",
    "program_finished",
    "granule_fault",
    "granule_retry",
    "granule_poisoned",
    "watchdog_flag",
}


def check(path):
    with open(path, "r", encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            fail(path, f"not valid JSON: {e}")

    if not isinstance(doc, dict):
        fail(path, "root is not an object")
    if doc.get("displayTimeUnit") != "ms":
        fail(path, "missing displayTimeUnit: \"ms\"")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(path, "traceEvents missing, not a list, or empty")

    named_lanes = set()   # (pid,) from process_name metadata
    named_tracks = set()  # (pid, tid) from thread_name metadata
    used_tracks = set()
    min_ts = None
    counts = {}
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            fail(path, f"{where} is not an object")
        for key, types in (("name", str), ("ph", str), ("pid", int)):
            if not isinstance(ev.get(key), types):
                fail(path, f"{where} missing or mistyped '{key}'")
        ph = ev["ph"]
        counts[ph] = counts.get(ph, 0) + 1
        if ph == "M":
            # process_name metadata carries no tid; thread_name does.
            if ev["name"] == "process_name":
                named_lanes.add(ev["pid"])
            elif ev["name"] == "thread_name":
                if not isinstance(ev.get("tid"), int):
                    fail(path, f"{where} thread_name without tid")
                named_tracks.add((ev["pid"], ev["tid"]))
            continue
        if ph not in ("X", "i"):
            fail(path, f"{where} unexpected ph {ph!r}")
        if not isinstance(ev.get("tid"), int):
            fail(path, f"{where} missing or mistyped 'tid'")
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(path, f"{where} missing or negative ts")
        min_ts = ts if min_ts is None else min(min_ts, ts)
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(path, f"{where} 'X' event without non-negative dur")
        if ph == "i" and ev["name"] in AUX_INSTANTS:
            aux = (ev.get("args") or {}).get("aux")
            if not isinstance(aux, int) or isinstance(aux, bool) or aux < 0:
                fail(path, f"{where} instant {ev['name']!r} without a "
                           "non-negative integer args['aux']")
        if ev.get("s") != "g":  # global instants live on no track
            used_tracks.add((ev["pid"], ev["tid"]))

    for pid, tid in sorted(used_tracks):
        if pid not in named_lanes:
            fail(path, f"pid {pid} used but has no process_name metadata")
        if (pid, tid) not in named_tracks:
            fail(path, f"track ({pid}, {tid}) used but has no thread_name "
                       "metadata")
    if min_ts is not None and float(min_ts) != 0.0:
        fail(path, f"timestamps not normalized to zero (min ts = {min_ts})")

    summary = ", ".join(f"{n} {ph!r}" for ph, n in sorted(counts.items()))
    print(f"check_trace: {path}: OK ({len(events)} events: {summary})")


def main():
    if len(sys.argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    for path in sys.argv[1:]:
        check(path)
    return 0


if __name__ == "__main__":
    sys.exit(main())
