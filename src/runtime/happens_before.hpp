// happens_before.hpp — execution-order recorder for enablement verification.
//
// On the threaded runtime we cannot rely on simulated time to prove that a
// successor granule never started before its enabling set completed; instead
// every granule start/finish draws a ticket from one global atomic counter.
// Tests then assert ordering properties over the recorded tickets.
//
// Memory orders: everything is relaxed. The clock's fetch_add needs only
// atomicity (a total order over tickets comes from the RMW itself), the
// per-slot CAS only guards double-execution, and tests read the tickets
// after every worker has joined — the joins supply the happens-before edge,
// so the reads need no acquire.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace pax::rt {

class HappensBeforeRecorder {
 public:
  static constexpr std::uint64_t kUnset = ~0ULL;

  /// Pre-size for `phases` phases of at most `granules` granules each.
  HappensBeforeRecorder(std::size_t phases, std::size_t granules)
      : granules_(granules),
        start_(phases * granules),
        finish_(phases * granules) {
    for (auto& v : start_) v.store(kUnset, std::memory_order_relaxed);
    for (auto& v : finish_) v.store(kUnset, std::memory_order_relaxed);
  }

  void on_start(PhaseId phase, GranuleId g) {
    const std::uint64_t t = clock_.fetch_add(1, std::memory_order_relaxed);
    auto& slot = start_[index(phase, g)];
    std::uint64_t expected = kUnset;
    const bool first =
        slot.compare_exchange_strong(expected, t, std::memory_order_relaxed);
    PAX_CHECK_MSG(first, "granule started twice");
  }

  void on_finish(PhaseId phase, GranuleId g) {
    const std::uint64_t t = clock_.fetch_add(1, std::memory_order_relaxed);
    auto& slot = finish_[index(phase, g)];
    std::uint64_t expected = kUnset;
    const bool first =
        slot.compare_exchange_strong(expected, t, std::memory_order_relaxed);
    PAX_CHECK_MSG(first, "granule finished twice");
  }

  [[nodiscard]] std::uint64_t start_ticket(PhaseId phase, GranuleId g) const {
    return start_[index(phase, g)].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t finish_ticket(PhaseId phase, GranuleId g) const {
    return finish_[index(phase, g)].load(std::memory_order_relaxed);
  }

  [[nodiscard]] bool executed(PhaseId phase, GranuleId g) const {
    return finish_ticket(phase, g) != kUnset;
  }

  /// Did every granule of `pred` finish before any granule of `succ` began?
  [[nodiscard]] bool strict_phase_order(PhaseId pred, PhaseId succ,
                                        GranuleId n) const {
    std::uint64_t last_finish = 0;
    std::uint64_t first_start = kUnset;
    for (GranuleId g = 0; g < n; ++g) {
      last_finish = std::max(last_finish, finish_ticket(pred, g));
      first_start = std::min(first_start, start_ticket(succ, g));
    }
    return last_finish < first_start;
  }

  /// Did any granule of `succ` start before the *last* granule of `pred`
  /// finished? (Evidence that overlap actually happened.)
  [[nodiscard]] bool overlapped(PhaseId pred, PhaseId succ, GranuleId n) const {
    return !strict_phase_order(pred, succ, n);
  }

 private:
  [[nodiscard]] std::size_t index(PhaseId phase, GranuleId g) const {
    const std::size_t i = static_cast<std::size_t>(phase) * granules_ + g;
    PAX_CHECK(i < start_.size());
    return i;
  }

  std::size_t granules_;
  std::atomic<std::uint64_t> clock_{1};
  std::vector<std::atomic<std::uint64_t>> start_;
  std::vector<std::atomic<std::uint64_t>> finish_;
};

}  // namespace pax::rt
