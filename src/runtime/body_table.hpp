// body_table.hpp — binds phase ids to the code their granules execute on the
// real threaded runtime.
#pragma once

#include <functional>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace pax::rt {

/// A phase body executes a contiguous granule range on a worker thread.
/// Bodies must be thread-safe with respect to the enablement structure the
/// program declares (that is the whole point: the executive only runs
/// granules whose inputs are complete).
using PhaseBody = std::function<void(GranuleRange, WorkerId)>;

class BodyTable {
 public:
  void set(PhaseId phase, PhaseBody body) {
    if (bodies_.size() <= phase) bodies_.resize(phase + 1);
    bodies_[phase] = std::move(body);
  }

  [[nodiscard]] const PhaseBody& of(PhaseId phase) const {
    PAX_CHECK_MSG(phase < bodies_.size() && bodies_[phase] != nullptr,
                  "no body registered for phase");
    return bodies_[phase];
  }

  [[nodiscard]] bool has(PhaseId phase) const {
    return phase < bodies_.size() && bodies_[phase] != nullptr;
  }

 private:
  std::vector<PhaseBody> bodies_;
};

}  // namespace pax::rt
