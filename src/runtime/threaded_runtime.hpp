// threaded_runtime.hpp — execute a PhaseProgram on real std::jthread workers.
//
// The ExecutiveCore is shared state guarded by one mutex (the executive is a
// serial resource, exactly as in PAX); workers block on a condition variable
// while no work is computable. Setting ExecConfig::overlap = false yields
// the strict-barrier baseline on identical machinery, which is how the
// speedup benches isolate the effect of phase overlap.
//
// Dispatch is decentralized through the shared sched::Dispatcher (DESIGN.md
// §8): each worker owns a bounded local run-queue, one executive critical
// section retires up to RtConfig::batch finished tickets and refills the
// local queue, and when both the local queue and the executive run dry — the
// rundown signal — the worker steals a FIFO range from the most-loaded peer
// without touching the executive at all. A steal-rate signal adaptively
// halves the effective grain so rundown tails stay fine-grained. batch = 1
// with steal = false reproduces the classic one-assignment-per-round-trip
// protocol the speedup benches baseline on. Condition-variable notifications
// are issued after the lock is released so woken peers do not immediately
// block on the mutex the notifier still holds.
//
// Concurrency follows the C++ Core Guidelines CP rules: jthread-only (no
// detach), RAII locks, condition waits with predicates, data passed by
// value across threads. Note one documented exception to CP.22: inter-phase
// serial actions registered in the program run on the completing worker's
// thread while the executive lock is held — keep them short.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "core/executive.hpp"
#include "runtime/body_table.hpp"
#include "sched/dispatcher.hpp"

namespace pax::rt {

struct RtConfig {
  std::uint32_t workers = 4;
  /// Refill floor and the no-steal queue capacity; with stealing on, one
  /// critical section may retire/pull up to the queue capacity (2x batch by
  /// default — over-refill absorbed by steals). batch 1 with steal off =
  /// the classic single-item handoff.
  std::uint32_t batch = 1;
  /// Per-worker local run-queue capacity; 0 = auto (2x batch with stealing —
  /// over-refill absorbed by steals — or exactly batch without, which
  /// reproduces the PR 1 batched protocol).
  std::uint32_t queue_capacity = 0;
  /// Rundown work stealing between workers' local queues.
  bool steal = true;
  /// Steal-rate signal halves the effective grain during rundown.
  bool adaptive_grain = true;
};

/// Wall-clock results of a threaded run.
struct RtResult {
  std::chrono::nanoseconds wall{0};  ///< run() span, incl. spawn/join
  std::vector<std::chrono::nanoseconds> worker_busy;  // per worker, in-body time
  /// Per-worker lifetime measured *inside* worker_main (first instruction to
  /// last), so thread spawn/join overhead does not dilute utilization().
  std::vector<std::chrono::nanoseconds> worker_wall;
  std::uint64_t tasks_executed = 0;
  std::uint64_t granules_executed = 0;
  /// Executive-mutex acquisitions by worker threads: the sum of the two
  /// fields below (kept as a total because the t6/t8 gates compare it).
  std::uint64_t exec_lock_acquisitions = 0;
  /// Acquisitions feeding the retire/refill path (initial acquisition and
  /// re-acquisition after each body drain or steal).
  std::uint64_t refill_lock_acquisitions = 0;
  /// Condition-wait returns — counted separately so contention on the
  /// handoff is not conflated with sleeping through genuine work droughts.
  std::uint64_t wait_lock_acquisitions = 0;
  /// Assignments obtained by stealing from a peer's local queue (no
  /// executive round-trip involved).
  std::uint64_t steals = 0;
  /// Steal attempts that found every peer queue dry.
  std::uint64_t steal_fail_spins = 0;
  /// High-water mark of local run-queue occupancy across workers.
  std::uint64_t peak_local_queue = 0;
  pax::MgmtLedger ledger;
  std::vector<std::string> diagnostics;

  /// Fraction of total worker wall-time spent inside phase bodies.
  [[nodiscard]] double utilization() const;
};

class ThreadedRuntime {
 public:
  ThreadedRuntime(const PhaseProgram& program, ExecConfig config, CostModel costs,
                  const BodyTable& bodies, RtConfig rt_config);

  /// Run the program to completion. May be called once.
  RtResult run();

  /// Dynamically submit a computation conflicting with `blocker`'s run; it
  /// is released at elevated priority when that run completes (immediately
  /// when it already has). Thread-safe; callable from inside a phase body
  /// (bodies execute with the executive lock released).
  void submit_conflicting(RunId blocker, PhaseId phase, GranuleRange range);

  /// Optional: forwarded to the core's observer (called under the executive
  /// lock; keep it cheap).
  void set_observer(std::function<void(const ExecEvent&)> obs);

 private:
  void worker_main(WorkerId id);

  const PhaseProgram& program_;
  const BodyTable& bodies_;
  RtConfig rt_config_;

  std::mutex mu_;
  std::condition_variable cv_;
  ExecutiveCore core_;
  sched::Dispatcher dispatcher_;

  std::vector<std::chrono::nanoseconds> busy_;
  std::vector<std::chrono::nanoseconds> worker_wall_;
  std::uint64_t tasks_ = 0;
  std::uint64_t granules_ = 0;
  std::uint64_t refill_locks_ = 0;
  std::uint64_t wait_locks_ = 0;
  std::uint64_t steals_ = 0;
  std::uint64_t steal_fail_spins_ = 0;
  bool ran_ = false;
};

}  // namespace pax::rt
