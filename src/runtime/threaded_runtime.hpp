// threaded_runtime.hpp — execute a PhaseProgram on real std::jthread workers.
//
// The ExecutiveCore is shared state guarded by one mutex (the executive is a
// serial resource, exactly as in PAX); workers block on a condition variable
// while no work is computable. Setting ExecConfig::overlap = false yields
// the strict-barrier baseline on identical machinery, which is how the
// speedup benches isolate the effect of phase overlap.
//
// Concurrency follows the C++ Core Guidelines CP rules: jthread-only (no
// detach), RAII locks, condition waits with predicates, data passed by
// value across threads. Note one documented exception to CP.22: inter-phase
// serial actions registered in the program run on the completing worker's
// thread while the executive lock is held — keep them short.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/executive.hpp"
#include "runtime/body_table.hpp"

namespace pax::rt {

struct RtConfig {
  std::uint32_t workers = 4;
};

/// Wall-clock results of a threaded run.
struct RtResult {
  std::chrono::nanoseconds wall{0};
  std::vector<std::chrono::nanoseconds> worker_busy;  // per worker, in-body time
  std::uint64_t tasks_executed = 0;
  std::uint64_t granules_executed = 0;
  pax::MgmtLedger ledger;
  std::vector<std::string> diagnostics;

  /// Fraction of total worker wall-time spent inside phase bodies.
  [[nodiscard]] double utilization() const;
};

class ThreadedRuntime {
 public:
  ThreadedRuntime(const PhaseProgram& program, ExecConfig config, CostModel costs,
                  const BodyTable& bodies, RtConfig rt_config);

  /// Run the program to completion. May be called once.
  RtResult run();

  /// Optional: forwarded to the core's observer (called under the executive
  /// lock; keep it cheap).
  void set_observer(std::function<void(const ExecEvent&)> obs);

 private:
  void worker_main(WorkerId id);

  const PhaseProgram& program_;
  const BodyTable& bodies_;
  RtConfig rt_config_;

  std::mutex mu_;
  std::condition_variable cv_;
  ExecutiveCore core_;

  std::vector<std::chrono::nanoseconds> busy_;
  std::uint64_t tasks_ = 0;
  std::uint64_t granules_ = 0;
  bool ran_ = false;
};

}  // namespace pax::rt
