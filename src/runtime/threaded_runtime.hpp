// threaded_runtime.hpp — execute a PhaseProgram on real std::jthread workers.
//
// The executive is wrapped in a core::ShardedExecutive (DESIGN.md §9): the
// granule handout is partitioned across RtConfig::shards independently-
// locked shard buffers, so two workers refilling different shards never
// contend, and the single-threaded ExecutiveCore is entered only for control
// sweeps (coalesced retire + re-scatter). With shards = 1 the layer
// short-circuits to the PR 3 protocol — one mutex section per refill — which
// is the baseline bench_t9_shard gates against. Setting
// ExecConfig::overlap = false yields the strict-barrier baseline on
// identical machinery, which is how the speedup benches isolate the effect
// of phase overlap.
//
// Dispatch stays decentralized through the shared sched::Dispatcher
// (DESIGN.md §8): each worker owns a bounded local run-queue refilled from
// its home shard, and when shards, executive and local queue all run dry —
// the rundown signal — the worker steals a FIFO range from the most-loaded
// peer. A steal-rate signal adaptively halves the effective grain (published
// through the core's *atomic* grain limit, since the publisher holds no
// executive lock). Condition-variable notifications pass through the sleep
// mutex after work is made visible, closing the lost-wakeup window the
// census atomics would otherwise open.
//
// Concurrency follows the C++ Core Guidelines CP rules: jthread-only (no
// detach), RAII locks, condition waits with predicates, data passed by
// value across threads. Note one documented exception to CP.22: inter-phase
// serial actions registered in the program run on the completing worker's
// thread while the executive control mutex is held — keep them short.
//
// Concurrency discipline (DESIGN.md §11): the per-worker accounting is
// PAX_GUARDED_BY the sleep mutex (rank: sleep — held alone, never nested
// under an executive or queue lock), and the condition variable is a
// condition_variable_any so waits release/reacquire through the ranked
// mutex's annotated methods.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/lock_rank.hpp"
#include "common/thread_annotations.hpp"
#include "core/executive.hpp"
#include "core/sharded_executive.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_sink.hpp"
#include "runtime/body_table.hpp"
#include "sched/dispatcher.hpp"

namespace pax::rt {

struct RtConfig {
  std::uint32_t workers = 4;
  /// Refill floor and the no-steal queue capacity; with stealing on, one
  /// critical section may retire/pull up to the queue capacity (2x batch by
  /// default — over-refill absorbed by steals). batch 1 with steal off =
  /// the classic single-item handoff.
  std::uint32_t batch = 1;
  /// Per-worker local run-queue capacity; 0 = auto (2x batch with stealing —
  /// over-refill absorbed by steals — or exactly batch without, which
  /// reproduces the PR 1 batched protocol).
  std::uint32_t queue_capacity = 0;
  /// Executive shards (independently-locked granule-handout partitions).
  /// kAutoShards = 2x workers clamped to the largest phase (1 for a single
  /// worker); 1 = the PR 3 single-mutex protocol; 0 is invalid and fails at
  /// construction.
  std::uint32_t shards = kAutoShards;
  /// Warm-path shard engine: true (default) = lock-free MPMC rings — no
  /// mutex anywhere on a warm acquire (DESIGN.md §13); false = the PR 4
  /// mutex-guarded shard buffers, kept as the measurable baseline
  /// (bench_t9_shard pins it, bench_t12_lockfree gates against it).
  bool lockfree = true;
  /// Rundown work stealing between workers' local queues.
  bool steal = true;
  /// Steal-rate signal halves the effective grain during rundown.
  bool adaptive_grain = true;
  /// Fault containment (DESIGN.md §15): how many times a faulted granule
  /// range is re-enqueued before its granules are poisoned and the program
  /// ends in the faulted terminal. Mirrored into ExecConfig at construction
  /// — the runtime knob is authoritative for threaded runs.
  std::uint32_t max_granule_retries = 2;
  /// Base of the exponential retry backoff, in executive completion ticks
  /// (see ExecConfig::retry_backoff_ticks). Mirrored like the retry budget.
  std::uint32_t retry_backoff_ticks = 1;
  /// Optional trace buffer (non-owning; must outlive the runtime and be
  /// sized for >= `workers`). Null = tracing off: every emit site in the
  /// executive, dispatcher and worker loop is one untaken branch. When set,
  /// workers write exec/refill/steal/sleep records into their own rings and
  /// the run installs a control-track sink for structural events
  /// (DESIGN.md §12); read the rings after run() returns.
  obs::TraceBuffer* trace = nullptr;
};

/// Wall-clock results of a threaded run.
struct RtResult {
  std::chrono::nanoseconds wall{0};  ///< run() span, incl. spawn/join
  std::vector<std::chrono::nanoseconds> worker_busy;  // per worker, in-body time
  /// Per-worker lifetime measured *inside* worker_main (first instruction to
  /// last), so thread spawn/join overhead does not dilute utilization().
  std::vector<std::chrono::nanoseconds> worker_wall;
  std::uint64_t tasks_executed = 0;
  std::uint64_t granules_executed = 0;
  /// Executive contention metric: control-mutex sections plus condition-wait
  /// returns — the sum of the two fields below (kept as a total because the
  /// t6/t8/t9 gates compare it).
  std::uint64_t exec_lock_acquisitions = 0;
  /// Control-plane mutex sections on the sharded executive (start, sweeps,
  /// single-shard refills, idle work, conflicting submissions). Shard-buffer
  /// hits never appear here — that is the decontention t9 measures.
  std::uint64_t refill_lock_acquisitions = 0;
  /// Condition-wait returns — counted separately so contention on the
  /// handoff is not conflated with sleeping through genuine work droughts.
  std::uint64_t wait_lock_acquisitions = 0;
  /// Total nanoseconds workers spent at the control plane, acquire-to-
  /// release (mutex acquisition wait + hold, sweep bodies included) — the
  /// serialization a worker actually experiences there. Divided by granules
  /// it is the t9 lock-hold gate metric.
  std::uint64_t exec_lock_hold_ns = 0;
  /// Shard traffic: acquires served lock-locally by the worker's home shard
  /// buffer / by a sibling shard's buffer, and assignments scattered into
  /// shard buffers by control sweeps.
  std::uint64_t shard_hits = 0;
  std::uint64_t shard_sibling_hits = 0;
  std::uint64_t shard_scattered = 0;
  /// Resolved shard count of the run (after kAutoShards resolution).
  std::uint32_t shards_used = 0;
  /// Lock-free engine split (zero when RtConfig::lockfree was false):
  /// assignments popped lock-free from shard rings, probes that found a
  /// hinted ring dry, pushes a full ring refused (each one a forced control
  /// sweep or a spill), and CAS cursor-claim retries — the ring's contention
  /// signal. Together with the control counters these show the warm/slow
  /// split bench_t12 and quickstart print.
  std::uint64_t shard_ring_pops = 0;
  std::uint64_t shard_ring_pop_empty = 0;
  std::uint64_t shard_ring_push_full = 0;
  std::uint64_t shard_ring_cas_retries = 0;
  /// Mutex engine split (zero when lockfree): warm-path shard-mutex sections
  /// and their acquire-to-release ns — the traffic the rings retire. Added
  /// to the control totals this is bench_t12's total-scheduler-lock metric.
  std::uint64_t shard_lock_acquisitions = 0;
  std::uint64_t shard_lock_hold_ns = 0;
  /// Assignments obtained by stealing from a peer's local queue (no
  /// executive round-trip involved).
  std::uint64_t steals = 0;
  /// Steal attempts that found every peer queue dry.
  std::uint64_t steal_fail_spins = 0;
  /// Fault containment (DESIGN.md §15): bodies that threw (caught by the
  /// dispatcher's exception barrier), retry re-enqueues, granules poisoned
  /// after the retry budget, and GranuleMapFn faults (edge degraded to
  /// wholesale release at completion).
  std::uint64_t granule_faults = 0;
  std::uint64_t granule_retries = 0;
  std::uint64_t granules_poisoned = 0;
  std::uint64_t map_faults = 0;
  /// True when the program ended in the faulted terminal: a poisoned granule
  /// made the dataflow unsatisfiable and the remaining work was recalled
  /// (granules_executed < the program total on this path).
  bool faulted = false;
  /// First fault site, human-readable (empty when no fault occurred).
  std::string fault_summary;
  /// High-water mark of local run-queue occupancy across workers.
  std::uint64_t peak_local_queue = 0;
  /// Process-wide heap traffic during run() (all threads), measured when the
  /// binary links the alloc_stats hooks (common/alloc_stats.hpp) — zero
  /// otherwise. Divided by granules it is the t10 allocs/granule metric.
  std::uint64_t heap_allocs = 0;
  std::uint64_t heap_bytes = 0;
  pax::MgmtLedger ledger;
  std::vector<std::string> diagnostics;
  /// The unified metrics snapshot (obs/metrics.hpp): every counter above
  /// plus per-worker accumulations under stable dotted names, so benches
  /// and JSON reports read one uniform surface. The legacy fields stay for
  /// source compatibility; test_obs pins the two views equal.
  obs::MetricsSnapshot metrics;

  /// Fraction of total worker wall-time spent inside phase bodies.
  [[nodiscard]] double utilization() const;
};

class ThreadedRuntime {
 public:
  ThreadedRuntime(const PhaseProgram& program, ExecConfig config, CostModel costs,
                  const BodyTable& bodies, RtConfig rt_config);

  /// Run the program to completion. May be called once.
  RtResult run();

  /// Dynamically submit a computation conflicting with `blocker`'s run; it
  /// is released at elevated priority when that run completes (immediately
  /// when it already has). Thread-safe; callable from inside a phase body
  /// (bodies execute with no executive lock held).
  void submit_conflicting(RunId blocker, PhaseId phase, GranuleRange range);

  /// Optional: installed on the core as a FunctionEventSink (called under
  /// the executive control mutex; keep it cheap). Must be set before run().
  /// Compatibility shim for the retired `core.observer` std::function hook;
  /// new code should prefer install_event_sink(). NOTE the ExecEvent::text
  /// borrow rule applies: the view is valid only for the callback's
  /// duration — copy it to keep it.
  void set_observer(std::function<void(const ExecEvent&)> obs);

  /// Optional: install a raw sink (non-owning; must outlive run()). Mutually
  /// chained with tracing — when RtConfig::trace is set, the trace sink runs
  /// first and forwards every event here.
  void install_event_sink(ExecEventSink* sink) { user_sink_ = sink; }

 private:
  void worker_main(WorkerId id);
  /// Pass through the sleep mutex, then notify: orders census flips (done
  /// under shard/control locks only) against sleepers' predicate checks.
  void wake_all() PAX_EXCLUDES(mu_);

  const PhaseProgram& program_;
  const BodyTable& bodies_;
  RtConfig rt_config_;

  ShardedExecutive exec_;
  sched::Dispatcher dispatcher_;

  /// The unified metrics registry (obs/metrics.hpp): worker-side counters
  /// accumulate into per-worker cells (each worker writes only its own, at
  /// worker exit — serialization by construction), and run() folds in the
  /// control-plane values before snapshotting into RtResult::metrics.
  obs::MetricsRegistry metrics_;
  struct MetricIds {
    obs::MetricId tasks, granules, busy_ns, wall_ns, steals, steal_fails,
        wait_wakeups, faulted;
  } mid_{};

  /// Event-sink chain storage. The core holds raw pointers into these, so
  /// they live on the runtime, installed at run() entry: trace sink first
  /// (when RtConfig::trace is set), then the user sink / observer shim.
  std::function<void(const ExecEvent&)> observer_fn_;
  std::unique_ptr<FunctionEventSink> observer_shim_;
  std::unique_ptr<obs::TraceEventSink> trace_sink_;
  ExecEventSink* user_sink_ = nullptr;

  /// Sleep/accounting mutex: guards nothing in the executive — only the
  /// condition variable hand-shake and the per-worker result publication.
  /// Rank: sleep (the innermost rank; a worker holds no other ranked lock
  /// when it sleeps or publishes).
  RankedMutex<LockRank::kSleep> mu_;
  /// _any variant: waits release/reacquire through RankedUniqueLock's
  /// annotated lock()/unlock(), keeping rank accounting coherent across
  /// the wait.
  std::condition_variable_any cv_;

  std::vector<std::chrono::nanoseconds> busy_ PAX_GUARDED_BY(mu_);
  std::vector<std::chrono::nanoseconds> worker_wall_ PAX_GUARDED_BY(mu_);
  std::uint64_t tasks_ PAX_GUARDED_BY(mu_) = 0;
  std::uint64_t granules_ PAX_GUARDED_BY(mu_) = 0;
  std::uint64_t wait_locks_ PAX_GUARDED_BY(mu_) = 0;
  std::uint64_t steals_ PAX_GUARDED_BY(mu_) = 0;
  std::uint64_t steal_fail_spins_ PAX_GUARDED_BY(mu_) = 0;
  std::uint64_t granule_faults_ PAX_GUARDED_BY(mu_) = 0;
  /// run-once latch; touched only by the (single) thread that calls run().
  bool ran_ = false;
};

}  // namespace pax::rt
