// threaded_runtime.hpp — execute a PhaseProgram on real std::jthread workers.
//
// The ExecutiveCore is shared state guarded by one mutex (the executive is a
// serial resource, exactly as in PAX); workers block on a condition variable
// while no work is computable. Setting ExecConfig::overlap = false yields
// the strict-barrier baseline on identical machinery, which is how the
// speedup benches isolate the effect of phase overlap.
//
// The executive mutex is the runtime's serial bottleneck, so the worker loop
// batches the handoff: each critical section retires up to RtConfig::batch
// finished tickets (complete_batch) and pulls up to RtConfig::batch fresh
// assignments (request_work_batch), and condition-variable notifications are
// issued after the lock is released so woken peers do not immediately block
// on the mutex the notifier still holds. batch = 1 reproduces the classic
// one-assignment-per-round-trip protocol the speedup benches baseline on;
// larger batches amortise the lock at a small cost in tail load balance.
//
// Concurrency follows the C++ Core Guidelines CP rules: jthread-only (no
// detach), RAII locks, condition waits with predicates, data passed by
// value across threads. Note one documented exception to CP.22: inter-phase
// serial actions registered in the program run on the completing worker's
// thread while the executive lock is held — keep them short.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "core/executive.hpp"
#include "runtime/body_table.hpp"

namespace pax::rt {

struct RtConfig {
  std::uint32_t workers = 4;
  /// Maximum assignments pulled / tickets retired per executive critical
  /// section. 1 = the classic single-item handoff.
  std::uint32_t batch = 1;
};

/// Wall-clock results of a threaded run.
struct RtResult {
  std::chrono::nanoseconds wall{0};  ///< run() span, incl. spawn/join
  std::vector<std::chrono::nanoseconds> worker_busy;  // per worker, in-body time
  /// Per-worker lifetime measured *inside* worker_main (first instruction to
  /// last), so thread spawn/join overhead does not dilute utilization().
  std::vector<std::chrono::nanoseconds> worker_wall;
  std::uint64_t tasks_executed = 0;
  std::uint64_t granules_executed = 0;
  /// Executive-mutex acquisitions by worker threads (initial acquisition,
  /// re-acquisition after each body batch, and each condition-wait return).
  /// The batched handoff exists to shrink this per granule executed.
  std::uint64_t exec_lock_acquisitions = 0;
  pax::MgmtLedger ledger;
  std::vector<std::string> diagnostics;

  /// Fraction of total worker wall-time spent inside phase bodies.
  [[nodiscard]] double utilization() const;
};

class ThreadedRuntime {
 public:
  ThreadedRuntime(const PhaseProgram& program, ExecConfig config, CostModel costs,
                  const BodyTable& bodies, RtConfig rt_config);

  /// Run the program to completion. May be called once.
  RtResult run();

  /// Dynamically submit a computation conflicting with `blocker`'s run; it
  /// is released at elevated priority when that run completes (immediately
  /// when it already has). Thread-safe; callable from inside a phase body
  /// (bodies execute with the executive lock released).
  void submit_conflicting(RunId blocker, PhaseId phase, GranuleRange range);

  /// Optional: forwarded to the core's observer (called under the executive
  /// lock; keep it cheap).
  void set_observer(std::function<void(const ExecEvent&)> obs);

 private:
  void worker_main(WorkerId id);

  const PhaseProgram& program_;
  const BodyTable& bodies_;
  RtConfig rt_config_;

  std::mutex mu_;
  std::condition_variable cv_;
  ExecutiveCore core_;

  std::vector<std::chrono::nanoseconds> busy_;
  std::vector<std::chrono::nanoseconds> worker_wall_;
  std::uint64_t tasks_ = 0;
  std::uint64_t granules_ = 0;
  std::uint64_t lock_acquisitions_ = 0;
  bool ran_ = false;
};

}  // namespace pax::rt
