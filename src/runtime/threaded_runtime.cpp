#include "runtime/threaded_runtime.hpp"

#include <algorithm>
#include <thread>

#include "common/check.hpp"
#include "runtime/worker_loop.hpp"

namespace pax::rt {

double RtResult::utilization() const {
  std::chrono::nanoseconds total_busy{0};
  for (auto b : worker_busy) total_busy += b;
  std::chrono::nanoseconds denom{0};
  if (!worker_wall.empty()) {
    for (auto w : worker_wall) denom += w;
  } else {
    // Pre-measurement results (or hand-built ones): fall back to folding the
    // whole run() span into every worker.
    denom = wall * static_cast<std::int64_t>(worker_busy.size());
  }
  if (denom.count() == 0) return 0.0;
  return static_cast<double>(total_busy.count()) /
         static_cast<double>(denom.count());
}

ThreadedRuntime::ThreadedRuntime(const PhaseProgram& program, ExecConfig config,
                                 CostModel costs, const BodyTable& bodies,
                                 RtConfig rt_config)
    : program_(program),
      bodies_(bodies),
      rt_config_(rt_config),
      core_(program, config, costs),
      busy_(rt_config.workers, std::chrono::nanoseconds{0}),
      worker_wall_(rt_config.workers, std::chrono::nanoseconds{0}) {
  PAX_CHECK_MSG(rt_config_.workers > 0, "need at least one worker");
  PAX_CHECK_MSG(rt_config_.batch > 0, "batch must be at least 1");
}

void ThreadedRuntime::set_observer(std::function<void(const ExecEvent&)> obs) {
  core_.observer = std::move(obs);
}

void ThreadedRuntime::submit_conflicting(RunId blocker, PhaseId phase,
                                         GranuleRange range) {
  bool notify;
  {
    std::scoped_lock lock(mu_);
    core_.submit_conflicting(blocker, phase, range);
    // Work enqueues immediately when the blocker already completed.
    notify = core_.work_available();
  }
  if (notify) cv_.notify_all();
}

void ThreadedRuntime::worker_main(WorkerId id) {
  const auto enter = std::chrono::steady_clock::now();
  const std::size_t max_batch = rt_config_.batch;
  std::vector<Assignment> batch;
  std::vector<Ticket> done;
  batch.reserve(max_batch);
  done.reserve(max_batch);
  BodyLoopStats stats;
  std::uint64_t locks = 0;
  bool pending_notify_all = false;

  std::unique_lock lock(mu_);
  ++locks;
  while (true) {
    // Retire the previous batch and pull the next one in the same critical
    // section: one lock round-trip per `max_batch` tasks in steady state.
    const CompletionResult res =
        retire_and_refill(core_, id, max_batch, done, batch);
    if (res.new_work || res.program_finished) pending_notify_all = true;

    if (batch.empty()) {
      if (core_.finished()) break;
      // Donate idle time to the executive (presplitting, deferred
      // successor-splitting tasks, composite-map slices) before sleeping.
      if (core_.idle_work()) {
        // Idle work may have enabled work; peers must not sleep through it.
        if (core_.work_available()) pending_notify_all = true;
        continue;
      }
      if (pending_notify_all) {
        // Cold path: notify before sleeping (wait() releases the mutex, so
        // notifying under it here cannot make peers spin against us).
        cv_.notify_all();
        pending_notify_all = false;
      }
      cv_.wait(lock, [&] { return core_.work_available() || core_.finished(); });
      ++locks;
      continue;
    }

    const bool more = core_.work_available();
    lock.unlock();
    // Notifications go out after the unlock so a woken peer finds the
    // executive mutex free instead of immediately blocking on it.
    if (pending_notify_all) {
      cv_.notify_all();
      pending_notify_all = false;
    } else if (more) {
      // More work remains after this batch: wake a sleeping peer (work can
      // become available through paths that do not notify, e.g. another
      // worker's idle-time enablements).
      cv_.notify_one();
    }

    execute_assignments(bodies_, batch, id, done, stats);

    lock.lock();
    ++locks;
  }

  // The loop exits holding the lock: publish per-worker accounting. The
  // worker wall clock closes here, inside worker_main, so thread spawn/join
  // overhead never counts as worker idle time.
  busy_[id] += stats.busy;
  worker_wall_[id] = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::steady_clock::now() - enter);
  tasks_ += stats.tasks;
  granules_ += stats.granules;
  lock_acquisitions_ += locks;
  lock.unlock();
  if (pending_notify_all) cv_.notify_all();
}

RtResult ThreadedRuntime::run() {
  PAX_CHECK_MSG(!ran_, "run() called twice");
  ran_ = true;

  const auto wall0 = std::chrono::steady_clock::now();
  {
    std::scoped_lock lock(mu_);
    core_.start();
  }
  {
    std::vector<std::jthread> workers;
    workers.reserve(rt_config_.workers);
    for (WorkerId w = 0; w < rt_config_.workers; ++w)
      workers.emplace_back([this, w] { worker_main(w); });
    // jthread destructors join: the block exits when every worker returns.
  }
  const auto wall1 = std::chrono::steady_clock::now();

  std::scoped_lock lock(mu_);
  PAX_CHECK_MSG(core_.finished(), "threaded run ended before program finish");
  PAX_CHECK_MSG(!core_.work_available(), "work left in queue at program end");

  RtResult res;
  res.wall = std::chrono::duration_cast<std::chrono::nanoseconds>(wall1 - wall0);
  res.worker_busy = busy_;
  res.worker_wall = worker_wall_;
  res.tasks_executed = tasks_;
  res.granules_executed = granules_;
  res.exec_lock_acquisitions = lock_acquisitions_;
  res.ledger = core_.ledger();
  res.diagnostics = core_.diagnostics();
  return res;
}

}  // namespace pax::rt
