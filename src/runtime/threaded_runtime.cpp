#include "runtime/threaded_runtime.hpp"

#include <thread>

#include "common/check.hpp"

namespace pax::rt {

double RtResult::utilization() const {
  if (wall.count() == 0 || worker_busy.empty()) return 0.0;
  std::chrono::nanoseconds total{0};
  for (auto b : worker_busy) total += b;
  return static_cast<double>(total.count()) /
         (static_cast<double>(wall.count()) *
          static_cast<double>(worker_busy.size()));
}

ThreadedRuntime::ThreadedRuntime(const PhaseProgram& program, ExecConfig config,
                                 CostModel costs, const BodyTable& bodies,
                                 RtConfig rt_config)
    : program_(program),
      bodies_(bodies),
      rt_config_(rt_config),
      core_(program, config, costs),
      busy_(rt_config.workers, std::chrono::nanoseconds{0}) {
  PAX_CHECK_MSG(rt_config_.workers > 0, "need at least one worker");
}

void ThreadedRuntime::set_observer(std::function<void(const ExecEvent&)> obs) {
  core_.observer = std::move(obs);
}

void ThreadedRuntime::worker_main(WorkerId id) {
  std::unique_lock lock(mu_);
  while (true) {
    if (core_.finished() && !core_.work_available()) return;

    std::optional<Assignment> work = core_.request_work(id);
    if (!work.has_value()) {
      // Donate idle time to the executive (presplitting, deferred
      // successor-splitting tasks, composite-map slices) before sleeping.
      if (core_.idle_work()) {
        // Idle work may have enabled work; peers must not sleep through it.
        if (core_.work_available()) cv_.notify_all();
        continue;
      }
      if (core_.finished()) return;
      cv_.wait(lock, [&] { return core_.work_available() || core_.finished(); });
      continue;
    }

    const Assignment a = *work;
    // More work remains after this assignment: wake a sleeping peer (work
    // can become available through paths that do not notify, e.g. another
    // worker's idle-time enablements).
    if (core_.work_available()) cv_.notify_one();
    lock.unlock();

    const auto t0 = std::chrono::steady_clock::now();
    bodies_.of(a.phase)(a.range, id);
    const auto t1 = std::chrono::steady_clock::now();

    lock.lock();
    busy_[id] += std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0);
    ++tasks_;
    granules_ += a.range.size();
    const CompletionResult res = core_.complete(a.ticket);
    if (res.new_work || res.program_finished) cv_.notify_all();
  }
}

RtResult ThreadedRuntime::run() {
  PAX_CHECK_MSG(!ran_, "run() called twice");
  ran_ = true;

  const auto wall0 = std::chrono::steady_clock::now();
  {
    std::scoped_lock lock(mu_);
    core_.start();
  }
  {
    std::vector<std::jthread> workers;
    workers.reserve(rt_config_.workers);
    for (WorkerId w = 0; w < rt_config_.workers; ++w)
      workers.emplace_back([this, w] { worker_main(w); });
    // jthread destructors join: the block exits when every worker returns.
  }
  const auto wall1 = std::chrono::steady_clock::now();

  std::scoped_lock lock(mu_);
  PAX_CHECK_MSG(core_.finished(), "threaded run ended before program finish");
  PAX_CHECK_MSG(!core_.work_available(), "work left in queue at program end");

  RtResult res;
  res.wall = std::chrono::duration_cast<std::chrono::nanoseconds>(wall1 - wall0);
  res.worker_busy = busy_;
  res.tasks_executed = tasks_;
  res.granules_executed = granules_;
  res.ledger = core_.ledger();
  res.diagnostics = core_.diagnostics();
  return res;
}

}  // namespace pax::rt
