#include "runtime/threaded_runtime.hpp"

#include <algorithm>
#include <thread>

#include "common/check.hpp"

namespace pax::rt {

double RtResult::utilization() const {
  std::chrono::nanoseconds total_busy{0};
  for (auto b : worker_busy) total_busy += b;
  std::chrono::nanoseconds denom{0};
  if (!worker_wall.empty()) {
    for (auto w : worker_wall) denom += w;
  } else {
    // Pre-measurement results (or hand-built ones): fall back to folding the
    // whole run() span into every worker.
    denom = wall * static_cast<std::int64_t>(worker_busy.size());
  }
  if (denom.count() == 0) return 0.0;
  return static_cast<double>(total_busy.count()) /
         static_cast<double>(denom.count());
}

ThreadedRuntime::ThreadedRuntime(const PhaseProgram& program, ExecConfig config,
                                 CostModel costs, const BodyTable& bodies,
                                 RtConfig rt_config)
    : program_(program),
      bodies_(bodies),
      rt_config_(rt_config),
      core_(program, config, costs),
      dispatcher_(sched::DispatchConfig{.workers = rt_config.workers,
                                        .batch = rt_config.batch,
                                        .queue_capacity = rt_config.queue_capacity,
                                        .steal = rt_config.steal,
                                        .adaptive_grain = rt_config.adaptive_grain}),
      busy_(rt_config.workers, std::chrono::nanoseconds{0}),
      worker_wall_(rt_config.workers, std::chrono::nanoseconds{0}) {
  PAX_CHECK_MSG(rt_config_.workers > 0, "need at least one worker");
  PAX_CHECK_MSG(rt_config_.batch > 0, "batch must be at least 1");
}

void ThreadedRuntime::set_observer(std::function<void(const ExecEvent&)> obs) {
  core_.observer = std::move(obs);
}

void ThreadedRuntime::submit_conflicting(RunId blocker, PhaseId phase,
                                         GranuleRange range) {
  bool notify;
  {
    std::scoped_lock lock(mu_);
    core_.submit_conflicting(blocker, phase, range);
    // Work enqueues immediately when the blocker already completed.
    notify = core_.work_available();
  }
  if (notify) cv_.notify_all();
}

void ThreadedRuntime::worker_main(WorkerId id) {
  const auto enter = std::chrono::steady_clock::now();
  std::vector<Ticket> done;
  done.reserve(dispatcher_.capacity());
  sched::BodyLoopStats stats;
  std::uint64_t refill_locks = 0;
  std::uint64_t wait_locks = 0;
  std::uint64_t steals = 0;
  std::uint64_t steal_fail_spins = 0;
  bool pending_notify_all = false;

  // Sleep predicate: computable work at the executive, program end, or a
  // stealable peer queue. Liveness argument: occupancy growth a sleeper
  // *depends on* seeing happens inside refill — under mu_ — so checking the
  // predicate under mu_ cannot miss that wakeup. Steals also push into a
  // queue (outside mu_), but the thief always drains its own loot, so no
  // sleeper ever depends on observing a steal; missing one costs tail
  // parallelism only, which the best-effort notify on the steal path
  // recovers.
  auto wake_pred = [&] {
    return core_.work_available() || core_.finished() ||
           (rt_config_.steal && dispatcher_.stealable_by(id));
  };

  std::unique_lock lock(mu_);
  ++refill_locks;
  while (true) {
    // One executive critical section: retire the previous drain's tickets
    // and refill the local run-queue (the dispatcher applies the adaptive
    // grain limit before pulling).
    const sched::RefillOutcome rr = dispatcher_.refill(core_, id, done);
    if (rr.completion.new_work || rr.completion.program_finished)
      pending_notify_all = true;

    if (rr.refilled == 0 && dispatcher_.occupancy(id) == 0) {
      if (core_.finished()) break;
      // Donate idle time to the executive (presplitting, deferred
      // successor-splitting tasks, composite-map slices) before stealing.
      if (core_.idle_work()) {
        // Idle work may have enabled work; peers must not sleep through it.
        if (core_.work_available()) pending_notify_all = true;
        continue;
      }
      // Executive dry and local queue dry: the rundown signal. Steal from
      // the most-loaded peer outside the executive lock.
      lock.unlock();
      if (pending_notify_all) {
        cv_.notify_all();
        pending_notify_all = false;
      }
      if (rt_config_.steal) {
        const std::size_t got = dispatcher_.try_steal(id);
        if (got > 0) {
          steals += got;
          // Cascade: the loot may outlast this thief's drain, so wake a
          // peer to steal the surplus — otherwise a fat tail is ground
          // 2-wide (victim + one thief) while the rest sleep.
          if (got > 1) cv_.notify_one();
          dispatcher_.drain_local(bodies_, id, done, stats);
          lock.lock();
          ++refill_locks;
          continue;
        }
        ++steal_fail_spins;
      }
      lock.lock();
      if (wake_pred()) {
        ++refill_locks;
      } else {
        cv_.wait(lock, wake_pred);
        ++wait_locks;
      }
      continue;
    }

    const bool more = core_.work_available();
    // A refill that out-pulled the retire batch left steal-worthy slack in
    // the local queue: wake one peer so the slack is taken, not slept past.
    const bool steal_worthy = rt_config_.steal && dispatcher_.occupancy(id) > 1;
    lock.unlock();
    // Notifications go out after the unlock so a woken peer finds the
    // executive mutex free instead of immediately blocking on it.
    if (pending_notify_all) {
      cv_.notify_all();
      pending_notify_all = false;
    } else if (more || steal_worthy) {
      cv_.notify_one();
    }

    dispatcher_.drain_local(bodies_, id, done, stats);

    lock.lock();
    ++refill_locks;
  }

  // The loop exits holding the lock: publish per-worker accounting. The
  // worker wall clock closes here, inside worker_main, so thread spawn/join
  // overhead never counts as worker idle time.
  busy_[id] += stats.busy;
  worker_wall_[id] = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::steady_clock::now() - enter);
  tasks_ += stats.tasks;
  granules_ += stats.granules;
  refill_locks_ += refill_locks;
  wait_locks_ += wait_locks;
  steals_ += steals;
  steal_fail_spins_ += steal_fail_spins;
  lock.unlock();
  if (pending_notify_all) cv_.notify_all();
}

RtResult ThreadedRuntime::run() {
  PAX_CHECK_MSG(!ran_, "run() called twice");
  ran_ = true;

  const auto wall0 = std::chrono::steady_clock::now();
  {
    std::scoped_lock lock(mu_);
    core_.start();
  }
  {
    std::vector<std::jthread> workers;
    workers.reserve(rt_config_.workers);
    for (WorkerId w = 0; w < rt_config_.workers; ++w)
      workers.emplace_back([this, w] { worker_main(w); });
    // jthread destructors join: the block exits when every worker returns.
  }
  const auto wall1 = std::chrono::steady_clock::now();

  std::scoped_lock lock(mu_);
  PAX_CHECK_MSG(core_.finished(), "threaded run ended before program finish");
  PAX_CHECK_MSG(!core_.work_available(), "work left in queue at program end");

  RtResult res;
  res.wall = std::chrono::duration_cast<std::chrono::nanoseconds>(wall1 - wall0);
  res.worker_busy = busy_;
  res.worker_wall = worker_wall_;
  res.tasks_executed = tasks_;
  res.granules_executed = granules_;
  res.refill_lock_acquisitions = refill_locks_;
  res.wait_lock_acquisitions = wait_locks_;
  res.exec_lock_acquisitions = refill_locks_ + wait_locks_;
  res.steals = steals_;
  res.steal_fail_spins = steal_fail_spins_;
  res.peak_local_queue = dispatcher_.peak_occupancy();
  res.ledger = core_.ledger();
  res.diagnostics = core_.diagnostics();
  return res;
}

}  // namespace pax::rt
