#include "runtime/threaded_runtime.hpp"

#include <algorithm>
#include <thread>

#include "common/alloc_stats.hpp"
#include "common/check.hpp"

namespace pax::rt {

namespace {

/// Constructor-time config validation, run before the sharded executive is
/// built so the death messages name the runtime knob, not the shard plumbing.
RtConfig validated(RtConfig c) {
  PAX_CHECK_MSG(c.workers > 0, "need at least one worker");
  PAX_CHECK_MSG(c.batch > 0, "batch must be at least 1");
  PAX_CHECK_MSG(c.shards != 0,
                "shards must be at least 1 (pass kAutoShards for the default)");
  return c;
}

/// The runtime's fault knobs are authoritative: mirror them into the
/// executive config so callers tune retry policy in one place (RtConfig),
/// exactly like workers/batch/shards.
ExecConfig with_fault_knobs(ExecConfig c, const RtConfig& rt) {
  c.max_granule_retries = rt.max_granule_retries;
  c.retry_backoff_ticks = rt.retry_backoff_ticks;
  return c;
}

}  // namespace

double RtResult::utilization() const {
  std::chrono::nanoseconds total_busy{0};
  for (auto b : worker_busy) total_busy += b;
  std::chrono::nanoseconds denom{0};
  if (!worker_wall.empty()) {
    for (auto w : worker_wall) denom += w;
  } else {
    // Pre-measurement results (or hand-built ones): fall back to folding the
    // whole run() span into every worker.
    denom = wall * static_cast<std::int64_t>(worker_busy.size());
  }
  if (denom.count() == 0) return 0.0;
  return static_cast<double>(total_busy.count()) /
         static_cast<double>(denom.count());
}

ThreadedRuntime::ThreadedRuntime(const PhaseProgram& program, ExecConfig config,
                                 CostModel costs, const BodyTable& bodies,
                                 RtConfig rt_config)
    : program_(program),
      bodies_(bodies),
      rt_config_(validated(rt_config)),
      exec_(program, with_fault_knobs(config, rt_config_), costs,
            ShardConfig{.shards = rt_config_.shards,
                        .workers = rt_config_.workers,
                        .batch = rt_config_.batch,
                        .lockfree = rt_config_.lockfree,
                        .trace = rt_config_.trace}),
      dispatcher_(sched::DispatchConfig{.workers = rt_config_.workers,
                                        .batch = rt_config_.batch,
                                        .queue_capacity = rt_config_.queue_capacity,
                                        .steal = rt_config_.steal,
                                        .adaptive_grain = rt_config_.adaptive_grain,
                                        .trace = rt_config_.trace}),
      busy_(rt_config_.workers, std::chrono::nanoseconds{0}),
      worker_wall_(rt_config_.workers, std::chrono::nanoseconds{0}) {
  mid_.tasks = metrics_.register_counter("worker.tasks");
  mid_.granules = metrics_.register_counter("worker.granules");
  mid_.busy_ns = metrics_.register_counter("worker.busy_ns");
  mid_.wall_ns = metrics_.register_counter("worker.wall_ns");
  mid_.steals = metrics_.register_counter("worker.steals");
  mid_.steal_fails = metrics_.register_counter("worker.steal_fail_spins");
  mid_.wait_wakeups = metrics_.register_counter("worker.wait_wakeups");
  mid_.faulted = metrics_.register_counter("worker.faulted");
  metrics_.bind(rt_config_.workers);
}

void ThreadedRuntime::set_observer(std::function<void(const ExecEvent&)> obs) {
  observer_fn_ = std::move(obs);
}

void ThreadedRuntime::wake_all() {
  // The census flip that turns a sleeper's predicate true happens under a
  // shard or control lock, not mu_. Passing through mu_ orders the flip
  // against any sleeper's predicate evaluation, closing the lost-wakeup
  // window (same discipline as pool::PoolRuntime::wake_pool).
  { RankedLock lock(mu_); }
  cv_.notify_all();
}

void ThreadedRuntime::submit_conflicting(RunId blocker, PhaseId phase,
                                         GranuleRange range) {
  exec_.submit_conflicting(blocker, phase, range);
  // Work enqueues immediately when the blocker already completed.
  if (exec_.work_available()) wake_all();
}

void ThreadedRuntime::worker_main(WorkerId id) {
  const auto enter = std::chrono::steady_clock::now();
  std::vector<Ticket> done;
  done.reserve(dispatcher_.capacity());
  sched::BodyLoopStats stats;
  std::uint64_t wait_locks = 0;
  std::uint64_t steals = 0;
  std::uint64_t steal_fail_spins = 0;

  // Sleep predicate over the lock-free census: computable work somewhere
  // (shard buffer, core queue, or sweepable deposits), program end, or a
  // stealable peer queue. Every path that can flip it true calls wake_all(),
  // which passes through mu_ — so checking under mu_ cannot miss the flip.
  auto wake_pred = [&] {
    return exec_.work_available() || exec_.finished() ||
           (rt_config_.steal && dispatcher_.stealable_by(id));
  };

  // Fault reporting: drain_local's exception barrier parks fault records in
  // the dispatcher's per-worker buffer; hand them to the executive's fail
  // path (one cold control section) before the next refill — a faulted
  // ticket must go through fail(), never through the completion retire.
  // Always announce afterwards: a fault batch can enqueue retries (new
  // work), poison the program (stop → finished), or recall shard buffers;
  // faults are cold, so the conservative wake costs nothing that matters.
  auto report_faults = [&] {
    std::vector<GranuleFault>& fb = dispatcher_.fault_buffer(id);
    if (fb.empty()) return;
    exec_.fail_batch(id, fb);
    fb.clear();
    wake_all();
  };

  while (true) {
    // Deposit the previous drain's tickets and refill the local run-queue:
    // home shard first, sibling shards next, control sweep as the fallback.
    const sched::RefillOutcome rr = dispatcher_.refill(exec_, id, done);
    const bool announce =
        rr.completion.new_work || rr.completion.program_finished;

    if (rr.refilled == 0 && dispatcher_.occupancy(id) == 0) {
      if (announce) wake_all();
      if (exec_.finished()) break;
      // Donate idle time to the executive (presplitting, deferred
      // successor-splitting tasks, composite-map slices) before stealing.
      if (exec_.has_idle_work() && exec_.idle_work()) {
        // Idle work may have enabled work; peers must not sleep through it.
        if (exec_.work_available()) wake_all();
        continue;
      }
      // Shards, executive and local queue all dry: the rundown signal.
      // Steal from the most-loaded peer without touching the executive.
      if (rt_config_.steal) {
        const std::size_t got = dispatcher_.try_steal(id);
        if (got > 0) {
          steals += got;
          // Cascade: the loot may outlast this thief's drain, so wake a
          // peer to steal the surplus — otherwise a fat tail is ground
          // 2-wide (victim + one thief) while the rest sleep.
          if (got > 1) cv_.notify_one();
          dispatcher_.drain_local(bodies_, id, done, stats);
          report_faults();
          continue;
        }
        ++steal_fail_spins;
      }
      RankedUniqueLock lock(mu_);
      if (!wake_pred()) {
        // Trace the park/resume pair. Emitting under mu_ is harmless: mu_ is
        // the sleep rank, never contended with the executive, and the ring
        // write is a couple of stores.
        if (rt_config_.trace != nullptr) {
          obs::TraceRecord r;
          r.ts_ns = obs::trace_now_ns();
          r.worker = static_cast<std::uint16_t>(id);
          r.kind = obs::TraceKind::kSleep;
          rt_config_.trace->ring(id).emit(r);
        }
        cv_.wait(lock, wake_pred);
        ++wait_locks;
        if (rt_config_.trace != nullptr) {
          obs::TraceRecord r;
          r.ts_ns = obs::trace_now_ns();
          r.worker = static_cast<std::uint16_t>(id);
          r.kind = obs::TraceKind::kWake;
          rt_config_.trace->ring(id).emit(r);
        }
      }
      continue;
    }

    if (announce) {
      wake_all();
    } else if (exec_.work_available() ||
               (rt_config_.steal && dispatcher_.occupancy(id) > 1)) {
      // Leftover work at the executive, or a refill that out-pulled the
      // retire batch left steal-worthy slack in the local queue: wake one
      // peer. Best-effort (no mu_ pass-through): a miss costs parallelism
      // until this worker's next refill, never progress — this worker keeps
      // running and re-announces.
      cv_.notify_one();
    }

    dispatcher_.drain_local(bodies_, id, done, stats);
    report_faults();
  }

  // Publish per-worker accounting. The worker wall clock closes here, inside
  // worker_main, so thread spawn/join overhead never counts as idle time.
  const auto wall = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::steady_clock::now() - enter);
  // Unified metrics: each worker writes only its own cells (obs/metrics.hpp
  // per-worker sharding — no contention by construction, no lock needed).
  metrics_.add(mid_.tasks, id, stats.tasks);
  metrics_.add(mid_.granules, id, stats.granules);
  metrics_.add(mid_.busy_ns, id, static_cast<std::uint64_t>(stats.busy.count()));
  metrics_.add(mid_.wall_ns, id, static_cast<std::uint64_t>(wall.count()));
  metrics_.add(mid_.steals, id, steals);
  metrics_.add(mid_.steal_fails, id, steal_fail_spins);
  metrics_.add(mid_.wait_wakeups, id, wait_locks);
  metrics_.add(mid_.faulted, id, stats.faulted);
  RankedLock lock(mu_);
  busy_[id] += stats.busy;
  worker_wall_[id] = wall;
  tasks_ += stats.tasks;
  granules_ += stats.granules;
  wait_locks_ += wait_locks;
  steals_ += steals;
  steal_fail_spins_ += steal_fail_spins;
  granule_faults_ += stats.faulted;
}

RtResult ThreadedRuntime::run() {
  PAX_CHECK_MSG(!ran_, "run() called twice");
  ran_ = true;

  // Install the event-sink chain before the program starts: trace sink first
  // (structural events onto the control-track ring), forwarding to the user
  // sink or the observer shim. SAFETY: quiescent core access — no worker
  // thread exists yet.
  ExecEventSink* tail = user_sink_;
  if (tail == nullptr && observer_fn_) {
    observer_shim_ = std::make_unique<FunctionEventSink>(std::move(observer_fn_));
    tail = observer_shim_.get();
  }
  if (rt_config_.trace != nullptr) {
    trace_sink_ = std::make_unique<obs::TraceEventSink>(
        rt_config_.trace->control_ring(), obs::kNoTraceJob, tail);
    exec_.core_unsynchronized().set_event_sink(trace_sink_.get());
  } else if (tail != nullptr) {
    exec_.core_unsynchronized().set_event_sink(tail);
  }

  const auto wall0 = std::chrono::steady_clock::now();
  const AllocTotals heap0 = alloc_stats::totals();
  exec_.start();
  {
    std::vector<std::jthread> workers;
    workers.reserve(rt_config_.workers);
    for (WorkerId w = 0; w < rt_config_.workers; ++w)
      workers.emplace_back([this, w] { worker_main(w); });
    // jthread destructors join: the block exits when every worker returns.
  }
  const auto wall1 = std::chrono::steady_clock::now();

  PAX_CHECK_MSG(exec_.finished(), "threaded run ended before program finish");
  PAX_CHECK_MSG(!exec_.work_available(), "work left in queue at program end");
  exec_.check_census();

  RtResult res;
  res.wall = std::chrono::duration_cast<std::chrono::nanoseconds>(wall1 - wall0);
  {
    // Guard gap surfaced by the annotation pass: the accumulators are
    // guarded by mu_, and although every worker has joined by here (the
    // jthread block above), the read sites take the now-uncontended lock
    // instead of a suppression — the cost is nil and the proof is local.
    RankedLock lock(mu_);
    res.worker_busy = busy_;
    res.worker_wall = worker_wall_;
    res.tasks_executed = tasks_;
    res.granules_executed = granules_;
    res.wait_lock_acquisitions = wait_locks_;
    res.steals = steals_;
    res.steal_fail_spins = steal_fail_spins_;
    res.granule_faults = granule_faults_;
  }
  const ShardStatsView ss = exec_.stats();
  res.refill_lock_acquisitions = ss.control_acquisitions;
  res.exec_lock_acquisitions = ss.control_acquisitions + res.wait_lock_acquisitions;
  res.exec_lock_hold_ns = ss.control_hold_ns;
  res.shard_hits = ss.shard_hits;
  res.shard_sibling_hits = ss.sibling_hits;
  res.shard_scattered = ss.scattered;
  res.shard_ring_pops = ss.ring_pops;
  res.shard_ring_pop_empty = ss.ring_pop_empty;
  res.shard_ring_push_full = ss.ring_push_full;
  res.shard_ring_cas_retries = ss.ring_cas_retries;
  res.shard_lock_acquisitions = ss.shard_lock_acquisitions;
  res.shard_lock_hold_ns = ss.shard_lock_hold_ns;
  res.shards_used = exec_.shards();
  res.peak_local_queue = dispatcher_.peak_occupancy();
  const AllocTotals heap1 = alloc_stats::delta(heap0, alloc_stats::totals());
  res.heap_allocs = heap1.allocs;
  res.heap_bytes = heap1.bytes;
  // SAFETY: quiescent core access — every worker joined above and the
  // acquire load in exec_.finished() (checked before this point) ordered
  // the core's final writes before these reads.
  res.ledger = exec_.core_unsynchronized().ledger();
  res.diagnostics = exec_.core_unsynchronized().diagnostics();
  // Fault accounting (quiescent core — same ordering argument as above).
  const FaultStats& fs = exec_.core_unsynchronized().fault_stats();
  res.granule_retries = fs.retries;
  res.granules_poisoned = fs.poisoned;
  res.map_faults = fs.map_faults;
  res.faulted = exec_.faulted();
  if (fs.any()) {
    res.fault_summary = "phase " + std::to_string(fs.first_phase) + " [" +
                        std::to_string(fs.first_range.lo) + "," +
                        std::to_string(fs.first_range.hi) + "): " +
                        fs.first_what;
  }

  // Unified metrics surface: worker-cell sums first, then the control-plane
  // and derived values pushed as plain snapshot entries (single-writer here;
  // no cells needed).
  res.metrics = metrics_.snapshot();
  res.metrics.push("exec.control_acquisitions", ss.control_acquisitions);
  res.metrics.push("exec.control_hold_ns", ss.control_hold_ns);
  res.metrics.push("shard.hits", ss.shard_hits);
  res.metrics.push("shard.sibling_hits", ss.sibling_hits);
  res.metrics.push("shard.scattered", ss.scattered);
  res.metrics.push("shard.count", res.shards_used);
  res.metrics.push("shard.ring.pop", ss.ring_pops);
  res.metrics.push("shard.ring.pop_empty", ss.ring_pop_empty);
  res.metrics.push("shard.ring.push_full", ss.ring_push_full);
  res.metrics.push("shard.ring.cas_retries", ss.ring_cas_retries);
  res.metrics.push("shard.lock.acquisitions", ss.shard_lock_acquisitions);
  res.metrics.push("shard.lock.hold_ns", ss.shard_lock_hold_ns);
  res.metrics.push("queue.peak_occupancy", res.peak_local_queue);
  res.metrics.push("heap.allocs", res.heap_allocs);
  res.metrics.push("heap.bytes", res.heap_bytes);
  res.metrics.push("run.wall_ns", static_cast<std::uint64_t>(res.wall.count()));
  res.metrics.push("fault.bodies", res.granule_faults);
  res.metrics.push("fault.retries", res.granule_retries);
  res.metrics.push("fault.poisoned", res.granules_poisoned);
  res.metrics.push("fault.map", res.map_faults);
  res.metrics.push("fault.terminal", res.faulted ? 1 : 0);
  if (rt_config_.trace != nullptr) {
    res.metrics.push("trace.emitted", rt_config_.trace->total_emitted());
    res.metrics.push("trace.dropped", rt_config_.trace->total_dropped());
  }
  return res;
}

}  // namespace pax::rt
