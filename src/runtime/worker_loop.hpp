// worker_loop.hpp — the worker-side half of the batched executive handoff,
// shared by every real-thread driver of an ExecutiveCore.
//
// A worker's steady-state loop is two alternating strides:
//
//   1. one executive critical section — retire the previous batch of tickets
//      and refill the assignment batch (retire_and_refill), and
//   2. unlocked body execution with per-body wall timing
//      (execute_assignments).
//
// rt::ThreadedRuntime drives one core with one mutex; pool::PoolRuntime
// drives many cores (one per job, each behind its own mutex) and rotates
// workers across them. Both reuse these helpers, so the single-program
// runtime is the single-job special case of the pool rather than a fork of
// the dispatch loop.
#pragma once

#include <chrono>
#include <cstdint>
#include <span>
#include <vector>

#include "core/executive.hpp"
#include "runtime/body_table.hpp"

namespace pax::rt {

/// Per-worker (or per-job) execution accounting accumulated by
/// execute_assignments.
struct BodyLoopStats {
  std::chrono::nanoseconds busy{0};  ///< wall time inside phase bodies
  std::uint64_t tasks = 0;
  std::uint64_t granules = 0;

  BodyLoopStats& operator+=(const BodyLoopStats& o) {
    busy += o.busy;
    tasks += o.tasks;
    granules += o.granules;
    return *this;
  }
};

/// One executive critical section of the batched handoff: retire `done`
/// (cleared on return), then refill `batch` (cleared first) with up to
/// `max_batch` fresh assignments. The caller must hold whatever lock guards
/// `core`. The returned CompletionResult ORs the retired tickets' outcomes
/// (`new_work` tells the driver that peers may need waking).
inline CompletionResult retire_and_refill(ExecutiveCore& core, WorkerId worker,
                                          std::size_t max_batch,
                                          std::vector<Ticket>& done,
                                          std::vector<Assignment>& batch) {
  CompletionResult res;
  if (!done.empty()) {
    res = core.complete_batch(done);
    done.clear();
  }
  batch.clear();
  core.request_work_batch(worker, max_batch, batch);
  return res;
}

/// Execute every assignment in `batch` — outside any executive lock — timing
/// each body, and queue the tickets on `done` for the next retire.
inline void execute_assignments(const BodyTable& bodies,
                                std::span<const Assignment> batch, WorkerId worker,
                                std::vector<Ticket>& done, BodyLoopStats& stats) {
  for (const Assignment& a : batch) {
    const auto t0 = std::chrono::steady_clock::now();
    bodies.of(a.phase)(a.range, worker);
    const auto t1 = std::chrono::steady_clock::now();
    stats.busy += std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0);
    stats.granules += a.range.size();
    done.push_back(a.ticket);
  }
  stats.tasks += batch.size();
}

}  // namespace pax::rt
