#include "core/program.hpp"

namespace pax {

PhaseId PhaseProgram::define_phase(PhaseSpec spec) {
  PAX_CHECK_MSG(spec.granules > 0, "phase must have at least one granule");
  for (const auto& p : phases_)
    PAX_CHECK_MSG(p.name != spec.name, "duplicate phase name");
  phases_.push_back(std::move(spec));
  return static_cast<PhaseId>(phases_.size() - 1);
}

std::uint32_t PhaseProgram::halt() { return add(HaltNode{}); }

PhaseId PhaseProgram::phase_by_name(const std::string& name) const {
  for (std::size_t i = 0; i < phases_.size(); ++i)
    if (phases_[i].name == name) return static_cast<PhaseId>(i);
  return kNoPhase;
}

void PhaseProgram::verify() const {
  PAX_CHECK_MSG(!nodes_.empty(), "empty program");
  bool has_halt = false;
  for (const auto& n : nodes_) {
    if (const auto* d = std::get_if<DispatchNode>(&n)) {
      PAX_CHECK_MSG(d->phase < phases_.size(), "dispatch references unknown phase");
      for (const auto& e : d->enables) {
        PAX_CHECK_MSG(phase_by_name(e.successor_name) != kNoPhase,
                      "enable clause references unknown phase");
        if (e.kind == MappingKind::kReverseIndirect)
          PAX_CHECK_MSG(e.indirection.requires_of != nullptr,
                        "reverse-indirect clause needs requires_of");
        if (e.kind == MappingKind::kForwardIndirect)
          PAX_CHECK_MSG(e.indirection.enables_of != nullptr,
                        "forward-indirect clause needs enables_of");
      }
    } else if (const auto* b = std::get_if<BranchNode>(&n)) {
      PAX_CHECK_MSG(b->selector != nullptr, "branch without selector");
      PAX_CHECK_MSG(!b->targets.empty(), "branch without targets");
      for (auto t : b->targets)
        PAX_CHECK_MSG(t < nodes_.size(), "branch target out of range");
    } else if (std::holds_alternative<HaltNode>(n)) {
      has_halt = true;
    }
  }
  PAX_CHECK_MSG(has_halt, "program has no halt node");
}

}  // namespace pax
