// descriptor.hpp — computation descriptions.
//
// Paper: "Computations were, instead, described as large, contiguous
// collections of granules. The descriptions were split apart as necessary to
// produce conveniently sized tasks for workers and then merged back into
// single descriptions when the work was completed."
//
// and: "each internal description of one (or more) computational granules
// included a queue head for a double circularly-linked list of computable
// but conflicting computational granules. Upon completion of the described
// computation, all the queued conflicting computations became
// unconditionally computable and were placed in the waiting computation
// queue."
//
// A Descriptor therefore carries: the covered granule range, a hook for the
// waiting computation queue, a hook for membership in *another* descriptor's
// conflict queue, and its own conflict-queue head.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/check.hpp"
#include "common/intrusive_ring.hpp"
#include "common/types.hpp"
#include "core/granule.hpp"

namespace pax {

enum class DescState : std::uint8_t {
  kFree,        ///< in the pool free list
  kWaiting,     ///< in the waiting computation queue
  kConflicted,  ///< queued on another descriptor's conflict queue
  kAssigned,    ///< handed to a worker
  kHeld,        ///< owned by a pending successor-splitting task
};

struct Descriptor {
  RunId run = kNoRun;
  PhaseId phase = kNoPhase;
  GranuleRange range{};
  Priority priority = Priority::kNormal;
  DescState state = DescState::kFree;

  /// True for identity-successor pieces whose range mirrors the range of the
  /// descriptor they are conflict-queued on (split propagation applies).
  bool tracks_owner = false;

  /// Membership in the waiting computation queue.
  RingHook wait_hook;
  /// Membership in some other descriptor's conflict queue.
  RingHook conflict_hook;
  /// Queue head for descriptors waiting on the completion of THIS one.
  IntrusiveRing<Descriptor, &Descriptor::conflict_hook> conflict_queue;

  /// Outstanding deferred successor-splitting task involving this
  /// descriptor (as carved chunk or as remainder); see SplitPolicy::kDeferred.
  struct SplitTaskTag* pending_split = nullptr;

  /// Pool bookkeeping.
  std::uint32_t pool_index = 0;
  /// Index into the owning run's live-descriptor table.
  std::uint32_t live_index = 0;

  [[nodiscard]] bool has_conflict_waiters() const { return !conflict_queue.empty(); }
};

/// Slab pool with stable addresses and O(1) acquire/release. The executive
/// churns descriptors at task-grain rate, so allocation stays off the global
/// heap after warm-up (and counts are observable for the management-overhead
/// accounting).
class DescriptorPool {
 public:
  Descriptor& acquire(RunId run, PhaseId phase, GranuleRange range,
                      Priority prio = Priority::kNormal);
  void release(Descriptor& d);

  [[nodiscard]] std::size_t live() const { return live_; }
  [[nodiscard]] std::size_t capacity() const { return slab_.size(); }
  [[nodiscard]] std::uint64_t total_acquired() const { return total_acquired_; }

 private:
  std::deque<Descriptor> slab_;  // deque: stable addresses under growth
  std::vector<std::uint32_t> free_;
  std::size_t live_ = 0;
  std::uint64_t total_acquired_ = 0;
};

}  // namespace pax
