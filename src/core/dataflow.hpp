// dataflow.hpp — the PARALLEL(x, y) predicate and enablement-mapping
// inference.
//
// The paper: "Let the logical predicate PARALLEL(x,y) return the condition
// TRUE when x and y are such that parallel computations are allowed. ...
// Let q be an uncompleted granule of the current phase and r be a granule of
// the next phase that has been enabled by some completed granule, p, of the
// current phase. If PARALLEL(q,r) necessarily returns the value TRUE, then
// the current-phase and next-phase can be correctly overlapped."
//
// The exact nature of the predicate is system-specific; PAX (and this
// library) uses a data-access-conflict predicate over the phases' declared
// array accesses. From the same declarations we *infer* the enablement
// mapping class between two phases, which is how the CASPER census (T1) is
// computed.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/phase.hpp"

namespace pax {

/// Result of analysing a (current, next) phase pair.
struct MappingAnalysis {
  MappingKind kind = MappingKind::kNull;
  /// Arrays flowing from current writes into next reads (the dependence
  /// carriers); empty for universal mappings.
  std::vector<std::string> carrier_arrays;
  /// For indirect kinds, the selection maps involved.
  std::vector<std::string> selection_maps;
  /// Human-readable explanation of the classification (used by the census
  /// report and by validator diagnostics).
  std::string rationale;
};

/// Classify the legal enablement mapping from `cur` to `next`, assuming no
/// serial action intervenes. `serial_between` forces the null mapping, which
/// is how the paper's 4 null phases arise ("serial actions and decisions had
/// to occur between the phases").
[[nodiscard]] MappingAnalysis infer_mapping(const PhaseSpec& cur,
                                            const PhaseSpec& next,
                                            bool serial_between = false);

/// Phase-level PARALLEL: may *any* granule of `a` legally run concurrently
/// with *any* granule of `b`? True when the phases share no conflicting
/// array access at all (the universal case).
[[nodiscard]] bool parallel_phases(const PhaseSpec& a, const PhaseSpec& b);

/// Granule-level PARALLEL(x, y) oracle for testing and validation: with the
/// selection maps materialised, does granule `ga` of `a` conflict with
/// granule `gb` of `b` on any array element?
///
/// `maps` resolves a map name and granule id to the list of touched element
/// indices. Whole-array accesses conflict with everything on that array.
class AccessOracle {
 public:
  /// Register the concrete contents of a selection map: element indices
  /// touched per granule.
  void set_map(const std::string& name, std::vector<std::vector<GranuleId>> touched);

  [[nodiscard]] bool parallel(const PhaseSpec& a, GranuleId ga,
                              const PhaseSpec& b, GranuleId gb) const;

 private:
  [[nodiscard]] std::vector<GranuleId> elements(const ArrayAccess& acc,
                                                GranuleId g,
                                                GranuleId whole_hint) const;

  std::vector<std::pair<std::string, std::vector<std::vector<GranuleId>>>> maps_;
};

}  // namespace pax
