// executive.hpp — the PAX executive scheduling state machine.
//
// ExecutiveCore implements the paper's dynamic-scheduling executive:
//   * demand-driven splitting of computation descriptions for idle workers,
//   * the waiting computation queue with elevated priority for
//     conflict-released / enabling work,
//   * conflict queues releasing successors on completion,
//   * the five enablement mappings with lookahead, branch preprocessing,
//     successor verification, and early serial actions,
//   * composite granule maps with enablement counters for the indirect
//     mappings, and
//   * the three split-propagation policies (inline / presplit / deferred
//     successor-splitting tasks).
//
// The core is *timeless and single-threaded*: it has no clock and no locks.
// Drivers give it time and concurrency:
//   * sim::Machine calls it at discrete-event times and bills the management
//     charges it accrues as executive busy-time;
//   * rt::ThreadedRuntime serialises calls with a mutex and lets real
//     std::jthread workers execute the assignments.
// Under the sharded executive the serialising mutex is the control mutex,
// and the core member is PAX_GUARDED_BY it (DESIGN.md §11) — the
// thread-safety analysis rejects any new call path that reaches the core
// without it. The one deliberate hole, core_unsynchronized(), is for
// pre-start configuration and post-quiescence reads only. The atomic grain
// limit below is the single field workers touch without the lock.
//
// Memory discipline (DESIGN.md §10): the steady-state worker protocol —
// request_work/request_work_batch, complete/complete_batch — performs no
// heap allocation once warm. Run/Edge/SplitTask/CachedMap/CompositeGranuleMap
// records live on typed slabs (common/arena.hpp; dead edges and their maps
// are recycled with their buffer capacity intact), and every hot-path
// temporary draws on a Workspace of cleared-not-freed scratch buffers owned
// by the core. What may still allocate: program advance at phase boundaries
// (first-time slab chunks, run bookkeeping growth), cold map builds, and
// diagnostics. tests/test_alloc.cpp pins the zero-allocation claim;
// bench_t10_alloc gates allocs/granule end to end.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/arena.hpp"
#include "core/cost_model.hpp"
#include "core/descriptor.hpp"
#include "core/enablement.hpp"
#include "core/granule.hpp"
#include "core/policies.hpp"
#include "core/program.hpp"
#include "core/range_set.hpp"
#include "core/waiting_queue.hpp"

namespace pax {

enum class RunState : std::uint8_t {
  kPending,   ///< created early by overlap setup; granules trickle in
  kOpen,      ///< its dispatch node has been reached by the program counter
  kComplete,  ///< all granules done
};

/// Structural events for traces and tests (drivers add timestamps).
struct ExecEvent {
  enum class Kind : std::uint8_t {
    kRunCreated,
    kRunOpened,
    kGranulesEnabled,   ///< range of `run` entered the waiting queue
    kRunCompleted,
    kOverlapSetUp,      ///< edge cur->succ established (text = mapping kind)
    kSerialExecuted,
    kBranchTaken,
    kDiagnostic,        ///< verification failure or other soft error
    kProgramFinished,
  };
  Kind kind{};
  RunId run = kNoRun;
  PhaseId phase = kNoPhase;
  GranuleRange range{};
  /// Borrowed label (static string or executive-owned storage), valid only
  /// for the duration of the observer call — copy it to keep it. A view
  /// rather than a std::string so emitting an event never allocates, whether
  /// or not an observer is installed.
  std::string_view text;
};

/// Structural-event observation interface. The core calls on_event()
/// synchronously at each emit site, under whatever lock the driver wraps
/// the core in (the control mutex in the sharded front-end) — sinks must be
/// cheap and must not re-enter the core. The virtual call replaces the old
/// std::function observer: installing a sink never allocates, and the null
/// check on emit is the entire cost of tracing-off builds, which is what
/// lets the hook stay compiled in on production paths (DESIGN.md §12).
class ExecEventSink {
 public:
  virtual ~ExecEventSink() = default;
  virtual void on_event(const ExecEvent& ev) = 0;
};

/// Compatibility shim for the retired `core.observer = lambda` idiom: wraps
/// a std::function as a sink. The *shim* owns the function (constructing it
/// may allocate — fine for tests and tools, which is who this is for); the
/// caller owns the shim and keeps it alive for the core's lifetime.
class FunctionEventSink final : public ExecEventSink {
 public:
  explicit FunctionEventSink(std::function<void(const ExecEvent&)> fn)
      : fn_(std::move(fn)) {}
  void on_event(const ExecEvent& ev) override { fn_(ev); }

 private:
  std::function<void(const ExecEvent&)> fn_;
};

/// Outcome of a completion call, telling the driver what changed.
struct CompletionResult {
  bool new_work = false;       ///< the waiting queue gained entries
  bool run_completed = false;  ///< the completed task finished its run
  bool program_finished = false;
};

/// A contained granule failure, recorded by the dispatch layer's exception
/// barrier when a phase body throws. POD with a fixed-size message buffer so
/// capturing one on the worker side never touches the heap.
struct GranuleFault {
  Ticket ticket = kNoTicket;
  PhaseId phase = kNoPhase;
  GranuleRange range{};
  WorkerId worker = 0;
  char what[96] = {};

  void set_what(const char* msg) {
    std::size_t i = 0;
    for (; msg != nullptr && msg[i] != '\0' && i + 1 < sizeof(what); ++i)
      what[i] = msg[i];
    what[i] = '\0';
  }
};

/// Failure accounting for one program execution. Written only under the
/// driver's core serialization; final (and safe to read without it) once
/// finished() is true.
struct FaultStats {
  std::uint64_t faults = 0;           ///< barrier-contained body throws
  std::uint64_t retries = 0;          ///< fault-retire events that re-enqueued
  std::uint64_t retried_granules = 0; ///< granules re-executed (work inflation)
  std::uint64_t poisoned = 0;         ///< granules whose retry budget exhausted
  std::uint64_t map_faults = 0;       ///< GranuleMapFn throws (edge degraded)
  PhaseId first_phase = kNoPhase;     ///< site of the first recorded fault
  GranuleRange first_range{};
  char first_what[96] = {};

  [[nodiscard]] bool any() const { return faults + map_faults > 0; }
};

class ExecutiveCore {
 public:
  ExecutiveCore(const PhaseProgram& program, ExecConfig config,
                CostModel costs = {});

  ExecutiveCore(const ExecutiveCore&) = delete;
  ExecutiveCore& operator=(const ExecutiveCore&) = delete;
  ~ExecutiveCore();

  /// Begin program execution (processes nodes up to the first dispatch).
  void start();

  /// An idle worker presents itself. Returns no value when nothing is
  /// computable right now.
  std::optional<Assignment> request_work(WorkerId worker);

  /// Batched handoff: pop up to `max_n` assignments in one call, appending
  /// them to `out`. Stops early when the queue runs dry. Ledger charges are
  /// identical to `max_n` single requests; what a batch saves is the
  /// *driver's* per-assignment executive round-trip (mutex acquisition on
  /// the threaded runtime). Returns the number of assignments appended.
  std::size_t request_work_batch(WorkerId worker, std::size_t max_n,
                                 std::vector<Assignment>& out);

  /// Completion processing for an assignment previously handed out.
  CompletionResult complete(Ticket ticket);

  /// Batched completion: retire several tickets in one call. Indirect
  /// enablements are coalesced across the whole batch — counter decrements
  /// happen per ticket, but newly enabled successor granules are enqueued
  /// (and their kGranulesEnabled events emitted) once, as maximal ranges,
  /// which keeps the waiting queue unfragmented when one worker retires
  /// many scattered granules at once. The merged result ORs the per-ticket
  /// outcomes; `new_work` reflects the whole batch.
  CompletionResult complete_batch(std::span<const Ticket> tickets);

  /// Executive idle-time work: presplitting and deferred successor-splitting
  /// tasks. Returns true if something was done (drivers loop while true and
  /// idle workers exist).
  bool idle_work();

  /// Dynamically submit a computation that conflicts with `blocker`'s run
  /// (the mechanism's original purpose in PAX). The work is held and
  /// released — at elevated priority — when the blocking run completes.
  void submit_conflicting(RunId blocker, PhaseId phase, GranuleRange range);

  /// Cooperative mid-run stop (job cancellation). After this call the core
  /// hands out no new assignments, runs no further program nodes, and does
  /// no idle-time work; outstanding tickets still retire normally through
  /// complete/complete_batch (their enablement bookkeeping must balance) or
  /// are recalled via abandon(). The core flips finished() once the last
  /// outstanding ticket returns — immediately, when none are outstanding.
  /// Idempotent; a no-op after normal completion.
  void request_stop();
  [[nodiscard]] bool stop_requested() const { return stop_requested_; }

  /// Retire a recalled ticket WITHOUT completing its granules: no run
  /// accounting, no enablement decrements, no ledger completion charge. For
  /// assignments handed out but never executed (drained from shard buffers
  /// and local queues after request_stop). Releases any conflict queue the
  /// descriptor guards so held work is not leaked.
  void abandon(Ticket ticket);

  /// Fail-retire a ticket whose body threw (reported by the dispatch
  /// layer's exception barrier). The granules did NOT execute: no completion
  /// accounting, no enablement decrements. While retry budget remains
  /// (config.max_granule_retries per granule) the descriptor is parked and
  /// re-enters the waiting queue after an exponential backoff — its conflict
  /// queue stays attached, so tracked successors release only on a real
  /// completion. Once the budget is exhausted the range's granules are
  /// poisoned: the dataflow is unsatisfiable, and the core enters the
  /// faulted terminal exactly like request_stop() — the program counter
  /// freezes, no new work is handed out, and finished() flips when the last
  /// outstanding ticket retires.
  CompletionResult fail(const GranuleFault& f);

  /// True once a poisoned granule (or a fail after stop) made the program
  /// terminate without completing. Implies stop_requested(); final when
  /// finished() is true.
  [[nodiscard]] bool faulted() const { return faulted_; }

  /// Failure accounting; final once finished() is true.
  [[nodiscard]] const FaultStats& fault_stats() const { return fault_stats_; }

  /// Granule ranges parked for retry backoff. Counted by work_available()
  /// so drivers keep polling while a backoff interval drains.
  [[nodiscard]] std::size_t retry_pending() const { return retry_queue_.size(); }

  /// Tickets currently handed out and not yet retired.
  [[nodiscard]] std::size_t outstanding_tickets() const {
    return assignments_.size() - free_tickets_.size();
  }

  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] bool work_available() const {
    return !stop_requested_ && (!waiting_.empty() || !retry_queue_.empty());
  }
  [[nodiscard]] std::size_t waiting_size() const { return waiting_.size(); }
  /// Elevated-class entries in the waiting queue (conflict releases and
  /// enabling splits). The sharded front-end snapshots this after every
  /// control section so buffered normal work never starves an elevated
  /// release behind a stale shard buffer.
  [[nodiscard]] std::size_t waiting_elevated_size() const {
    return waiting_.elevated_size();
  }

  /// Cap on the grain used when carving worker assignments, clamped to
  /// [1, configured grain]. The dispatch layer's steal-rate signal lowers it
  /// during rundown — the existing split machinery then carves finer pieces
  /// at request time — and restores it in steady state. Passing 0 resets to
  /// the configured grain. Atomic: the steal-rate signal publishes the limit
  /// from whichever worker trips it, without holding the lock that guards
  /// the rest of the core, while a peer inside the request path reads it.
  /// Relaxed suffices — the limit is a heuristic and a stale read only means
  /// one assignment carved at the previous grain.
  void set_grain_limit(GranuleId g) {
    grain_limit_.store(g == 0 ? config_.grain
                              : std::max<GranuleId>(1, std::min(g, config_.grain)),
                       std::memory_order_relaxed);
  }
  [[nodiscard]] GranuleId effective_grain() const {
    return grain_limit_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] GranuleId configured_grain() const { return config_.grain; }

  /// Idle-time work *may* be pending (presplitting is excluded: it only
  /// matters while the waiting queue is non-empty). May report stale `true`
  /// for dead map builds or retired split tasks; idle_work() is the exact
  /// answer and erases such entries as it scans.
  [[nodiscard]] bool has_idle_work() const {
    return !stop_requested_ &&
           (!pending_map_builds_.empty() || !split_tasks_.empty());
  }

  /// Cheap probe for cross-job scheduling (pool runtime): can a worker make
  /// progress on this core right now? False does not mean finished — work
  /// may be outstanding on other workers whose completions will enable more.
  /// A core that has not start()ed yet also reports false.
  [[nodiscard]] bool runnable() const {
    return !finished_ && (work_available() || has_idle_work());
  }

  [[nodiscard]] const MgmtLedger& ledger() const { return ledger_; }
  MgmtLedger& ledger() { return ledger_; }

  [[nodiscard]] const ProgramEnv& env() const { return env_; }
  ProgramEnv& env() { return env_; }

  [[nodiscard]] const std::vector<std::string>& diagnostics() const {
    return diagnostics_;
  }

  /// Install (or clear, with nullptr) the structural-event sink. Non-owning;
  /// the sink must outlive the core or be cleared first. Call before
  /// start() or after quiescence — the drivers serialize core access, and
  /// the sink pointer rides under the same serialization.
  void set_event_sink(ExecEventSink* sink) { sink_ = sink; }
  [[nodiscard]] ExecEventSink* event_sink() const { return sink_; }

  // --- introspection for tests ------------------------------------------
  struct RunInfo {
    RunId id = kNoRun;
    PhaseId phase = kNoPhase;
    std::uint32_t node = 0;
    RunState state = RunState::kPending;
    GranuleId total = 0;
    GranuleId completed = 0;
  };
  [[nodiscard]] std::vector<RunInfo> runs() const;
  [[nodiscard]] std::size_t live_descriptors() const { return pool_.live(); }
  [[nodiscard]] std::uint32_t program_counter() const { return pc_; }

 private:
  struct Run;
  struct Edge;
  struct SplitTask;
  /// Indirect enablements accumulated across a completion batch, flushed as
  /// coalesced ranges (and always before a run-completion can advance the
  /// program, so dispatch-time invariants see a fully enqueued successor).
  struct DeferredEnable;
  /// Reusable scratch buffers for the hot paths (completion batches, map
  /// builds, elevation extraction): cleared, never freed, between calls.
  struct Workspace;

  // Node processing.
  void advance_program();
  void process_dispatch(std::uint32_t node_index, const DispatchNode& d);
  void setup_overlap(Run& cur, const DispatchNode& d);
  std::optional<std::uint32_t> lookahead(std::uint32_t from);

  // Edge setup per mapping kind.
  void setup_universal(Run& cur, Run& succ);
  void setup_identity(Run& cur, Run& succ);
  void setup_indirect(Run& cur, Run& succ, const EnableClause& clause, Edge& edge);
  /// Build (or fetch from the static-relation cache) the composite map of an
  /// indirect edge, replay completions that predate it, and fire the initial
  /// enablements. Called at dispatch (defer_map_build=false) or from
  /// executive idle time.
  void materialize_map(Edge& edge);
  /// One bounded slice of incremental map construction; true when the map
  /// finished (and enablements fired) in this call.
  bool map_build_step(Edge& edge);

  // Run and descriptor plumbing.
  Run& create_run(PhaseId phase, std::uint32_t node, RunState state);
  Run& run_of(RunId id);
  const Run& run_of(RunId id) const;
  Descriptor& make_desc(Run& r, GranuleRange range, Priority prio);
  void retire_desc(Descriptor& d);
  /// Completion processing for one ticket; indirect enablements accumulate
  /// in the workspace's deferred table for a coalesced flush (complete() is
  /// a batch of one — for a single ticket the deferred flush is observably
  /// identical to an eager enqueue).
  void complete_one(Ticket ticket, CompletionResult& res);
  void flush_deferred();
  void enqueue_enabled(Run& succ, GranuleRange range, Priority prio);
  void on_run_complete(Run& r);
  /// Detach a dead edge's composite map and the edge itself back onto their
  /// slabs (buffers keep their capacity for the next overlap edge).
  void recycle_edge(Edge& e);
  void release_conflicts(Descriptor& d);
  void force_pending_split(Descriptor& d);
  void propagate_split(Descriptor& parent, Descriptor& piece);
  /// Carve the sub-range `piece` out of waiting descriptor `d` (piece must
  /// be a prefix, suffix or interior slice). Returns the carved descriptor,
  /// detached from the queue. Successor propagation included per policy.
  Descriptor& carve(Descriptor& d, GranuleRange piece);
  void extract_elevated(Run& r, std::span<const GranuleId> order);
  void run_serial(std::uint32_t node_index, const SerialNode& s);
  void emit(const ExecEvent& ev);
  void diagnose(std::string msg);
  /// After a stop request, flip finished() once every ticket has retired
  /// (completion or abandonment). The kProgramFinished event fires exactly
  /// once, from whichever retirement drains the last outstanding ticket.
  void maybe_finish_stopped();
  /// Record the fault in the ledger of firsts and bump counters (cold path —
  /// may allocate for per-run attempt tables).
  std::uint32_t bump_fault_attempts(Run& r, GranuleRange range);
  void note_first_fault(PhaseId phase, GranuleRange range, const char* what);
  /// Move backoff-expired retry parks back into the waiting queue.
  void flush_retries();
  /// A GranuleMapFn threw during map construction: degrade the edge to
  /// wholesale release at completion (cmap stays null) and account the fault.
  void note_map_fault(Edge& edge, const char* what);

  const PhaseProgram& program_;
  ExecConfig config_;
  CostModel costs_;

  DescriptorPool pool_;
  WaitingQueue waiting_;
  MgmtLedger ledger_;
  ProgramEnv env_;

  // Control-plane records live on typed slabs (common/arena.hpp): stable
  // addresses, no per-record heap round-trips, and recycled records keep
  // their internal buffer capacity. Runs and cached maps are immortal;
  // edges, composite maps and split tasks recycle.
  struct CachedMap;
  Slab<Run> run_slab_;
  Slab<Edge> edge_slab_;
  Slab<SplitTask> split_slab_;
  Slab<CachedMap> cache_slab_;
  Slab<CompositeGranuleMap> cmap_slab_;

  std::vector<Run*> runs_;  ///< index == RunId

  // Assignments by ticket.
  std::vector<Descriptor*> assignments_;
  std::vector<Ticket> free_tickets_;

  // Deferred successor-splitting tasks (drained in idle time; slots return
  // to split_slab_ when retired).
  std::vector<SplitTask*> split_tasks_;

  // Indirect edges whose composite maps await construction in idle time.
  std::vector<Edge*> pending_map_builds_;

  // Cache of composite maps for clauses whose indirection is declared
  // stable, keyed by clause identity (clauses live in program nodes).
  std::vector<CachedMap*> map_cache_;

  // Hot-path scratch (defined in executive.cpp; one allocation at
  // construction, buffers grow once and are reused forever after).
  std::unique_ptr<Workspace> ws_;

  // Per-node early-execution state from lookahead.
  std::vector<std::uint8_t> serial_done_early_;
  std::vector<std::int32_t> branch_predecided_;  // -1 = not predecided
  std::vector<RunId> node_pending_run_;          // run created early for node

  ExecEventSink* sink_ = nullptr;  ///< non-owning; rides the core's lock

  std::atomic<GranuleId> grain_limit_;  ///< effective grain cap (init: config grain)
  std::uint32_t pc_ = 0;
  RunId waiting_run_ = kNoRun;   ///< run the program counter is blocked on
  RunId node_pc_run_ = kNoRun;   ///< run produced by the last dispatch node
  bool started_ = false;
  bool finished_ = false;
  bool stop_requested_ = false;  ///< cooperative cancel; see request_stop()
  bool faulted_ = false;         ///< poisoned-granule terminal; see fail()
  std::vector<std::string> diagnostics_;

  // Fault containment (all cold-path: empty and untouched on fault-free
  // executions, so the warm-path allocation discipline is unaffected).
  struct RetryEntry {
    Descriptor* desc = nullptr;
    std::uint64_t ready_tick = 0;
  };
  std::vector<RetryEntry> retry_queue_;  ///< parked kHeld descriptors
  std::uint64_t fault_tick_ = 0;         ///< advances per completion batch
  /// Per-run, per-granule fault attempt counts (created on first fault).
  struct FaultAttempts {
    RunId run = kNoRun;
    std::vector<std::uint32_t> per_granule;
  };
  std::vector<FaultAttempts> fault_attempts_;
  FaultStats fault_stats_;
};

}  // namespace pax
