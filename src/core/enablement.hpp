// enablement.hpp — enablement mappings and the composite granule map.
//
// For the indirect mappings the paper prescribes: "it is a simple matter to
// produce a composite map of first phase granules that must be completed in
// order to enable a particular second phase granule. The executive can then
// use this map upon each first phase granule completion to determine the
// computability of particular second phase granules. This map could also be
// used to direct a preferred order of first phase granule dispatching so as
// to enable a known second phase granule as early as possible."
//
// All-of enablement: "during completion processing, a status bit (set when
// the current-phase granules were identified ...) can be checked and, if it
// is set, an enablement counter decremented. When the enablement counter
// reaches zero, it can be taken as a signal that the successor-phase
// granules are computable."
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/csr.hpp"
#include "common/types.hpp"
#include "core/phase.hpp"

namespace pax {

/// Enablement-mapping callback: append the granules mapped from `g` to
/// `out`. Append-only by contract — callers batch many queries into one
/// scratch buffer (and clear it between queries themselves), so a mapping
/// evaluation performs no heap allocation. This is the hot-path shape the
/// allocation-free control plane requires: the previous vector-returning
/// form allocated a fresh std::vector per granule during map builds and
/// subset verification.
using GranuleMapFn = std::function<void(GranuleId g, std::vector<GranuleId>& out)>;

/// Declarative description of the indirection between two phases.
/// `requires_of(r, out)` appends the current-phase granules successor
/// granule `r` needs (reverse direction); `enables_of(p, out)` appends the
/// successor granules current granule `p` feeds (forward direction). A
/// clause supplies the direction that is natural for its mapping kind; the
/// composite map builder inverts as needed.
struct IndirectionSpec {
  GranuleMapFn requires_of;  // reverse
  GranuleMapFn enables_of;   // forward
  /// Static enablement relation (paper: "the completion of a particular
  /// current-phase task may always enable the same next-phase task"). The
  /// executive caches and reuses the composite map across runs of the same
  /// dispatch, paying only a counter reset instead of a rebuild.
  bool stable = false;
};

/// One ENABLE clause: successor phase + mapping kind (+ indirection when the
/// kind demands it).
struct EnableClause {
  std::string successor_name;
  MappingKind kind = MappingKind::kNull;
  IndirectionSpec indirection;  // only for the two indirect kinds
};

/// The executive's materialised all-of enablement structure for one
/// (current run -> successor run) edge with an indirect mapping.
struct CompositeBuild;

class CompositeGranuleMap {
 public:
  /// Build from the reverse direction (successor granule -> required current
  /// granules). `subset` optionally restricts the solved successor granules:
  /// "It would seem appropriate to identify a subset group of successor-phase
  /// granules that are to be the subject of the enablement operation so as to
  /// avoid solving an unnecessarily large enablement problem." Successor
  /// granules outside the subset are not tracked and become computable only
  /// at current-phase completion.
  static CompositeBuild build_reverse(
      GranuleId current_count, GranuleId successor_count,
      const GranuleMapFn& requires_of,
      const std::optional<std::vector<GranuleId>>& subset = std::nullopt);

  /// Build from the forward direction (current granule -> successor granules
  /// it feeds). Successor granules nobody feeds are initially enabled.
  static CompositeBuild build_forward(
      GranuleId current_count, GranuleId successor_count,
      const GranuleMapFn& enables_of,
      const std::optional<std::vector<GranuleId>>& subset = std::nullopt);

  /// Status bit: does current granule `p` participate in any enablement?
  [[nodiscard]] bool participates(GranuleId p) const {
    return p < participates_.size() && participates_[p] != 0;
  }

  /// Completion processing for current granule `p`: decrement the counters of
  /// every successor granule it feeds; newly computable successor granules
  /// are appended to `newly_enabled`. Returns the number of counter updates
  /// performed (for cost accounting).
  std::uint32_t on_complete(GranuleId p, std::vector<GranuleId>& newly_enabled);

  /// Successor granules the map tracks (the solved subset).
  [[nodiscard]] const std::vector<GranuleId>& tracked_successors() const {
    return tracked_;
  }

  /// Successor granules that were *not* solved (outside the subset); the
  /// executive releases these when the current phase completes.
  [[nodiscard]] const std::vector<GranuleId>& untracked_successors() const {
    return untracked_;
  }

  /// Preferred dispatch order of participating current granules: grouped so
  /// that the granules enabling the earliest successor granule come first.
  [[nodiscard]] const std::vector<GranuleId>& preferred_order() const {
    return preferred_order_;
  }

  [[nodiscard]] GranuleId current_count() const {
    return static_cast<GranuleId>(participates_.size());
  }
  [[nodiscard]] std::uint64_t outstanding() const { return outstanding_; }

  /// Assemble a map from explicit (current, successor) pairs — the backend
  /// of both builders, public so the executive can build maps incrementally
  /// (accumulating pairs across idle-time slices before finalising).
  static CompositeBuild build_from_pairs(
      GranuleId current_count, GranuleId successor_count,
      std::vector<std::pair<std::uint32_t, GranuleId>> cur_to_succ,
      const std::optional<std::vector<GranuleId>>& subset);

 private:

  Csr<GranuleId> fanout_;                 // current granule -> successor granules
  std::vector<std::uint32_t> need_;       // successor granule -> outstanding count
  std::vector<std::uint8_t> participates_;  // status bits, one per current granule
  std::vector<GranuleId> tracked_;
  std::vector<GranuleId> untracked_;
  std::vector<GranuleId> preferred_order_;
  std::uint64_t outstanding_ = 0;  // sum of counters still > 0

  friend struct CompositeBuild;
};

/// Result of building a composite granule map.
struct CompositeBuild {
  CompositeGranuleMap map;
  /// Successor granules enabled by the null set (no requirements) — the
  /// builder reports them so the executive can queue them at once.
  std::vector<GranuleId> initially_enabled;
  /// Number of map entries processed — charged as kMapBuildEntry each.
  std::uint64_t entries = 0;
};

}  // namespace pax
