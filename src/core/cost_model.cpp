#include "core/cost_model.hpp"

namespace pax {

const char* to_string(MgmtOp op) {
  switch (op) {
    case MgmtOp::kRequestWork: return "request-work";
    case MgmtOp::kSplit: return "split";
    case MgmtOp::kSuccessorSplit: return "successor-split";
    case MgmtOp::kCompletion: return "completion";
    case MgmtOp::kConflictRelease: return "conflict-release";
    case MgmtOp::kCounterUpdate: return "counter-update";
    case MgmtOp::kMapBuildEntry: return "map-build-entry";
    case MgmtOp::kMapReset: return "map-reset";
    case MgmtOp::kPhaseInit: return "phase-init";
    case MgmtOp::kSerialAction: return "serial-action";
    case MgmtOp::kBranchPreprocess: return "branch-preprocess";
    case MgmtOp::kSteal: return "steal";
    case MgmtOp::kShardFlush: return "shard-flush";
    case MgmtOp::kCount_: break;
  }
  return "?";
}

}  // namespace pax
