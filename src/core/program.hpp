// program.hpp — PhaseProgram: the parallel control stream.
//
// Mirrors the paper's language constructs:
//   DISPATCH phase ENABLE [name/MAPPING=option ...]   -> DispatchNode
//   serial actions and decisions between phases        -> SerialNode
//   IF (...) GO TO target / preprocessable branches    -> BranchNode
//
// The executive walks this program, overlapping each dispatched phase with
// the successor its lookahead discovers (provided an ENABLE clause names it).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/check.hpp"
#include "core/enablement.hpp"
#include "core/phase.hpp"

namespace pax {

/// Mutable integer environment shared by serial actions and branch
/// conditions (loop counters, convergence flags, ...). Keeping it explicit
/// makes programs deterministic and serialisable from the PAX language.
class ProgramEnv {
 public:
  [[nodiscard]] std::int64_t get(const std::string& name) const {
    for (const auto& [k, v] : vars_)
      if (k == name) return v;
    return 0;
  }
  void set(const std::string& name, std::int64_t value) {
    for (auto& [k, v] : vars_) {
      if (k == name) {
        v = value;
        return;
      }
    }
    vars_.emplace_back(name, value);
  }
  void add(const std::string& name, std::int64_t delta) { set(name, get(name) + delta); }

 private:
  std::vector<std::pair<std::string, std::int64_t>> vars_;
};

struct DispatchNode {
  PhaseId phase = kNoPhase;
  /// ENABLE clauses: which successor phases may be overlapped, and how. The
  /// executive verifies the named phase actually follows before overlapping
  /// (the "interlock" the paper asks for).
  std::vector<EnableClause> enables;
};

struct SerialNode {
  std::string name;
  /// Executed on the executive. May mutate the environment (loop counters,
  /// convergence decisions). Optional.
  std::function<void(ProgramEnv&)> action;
  /// Simulated duration charged in addition to the kSerialAction unit cost.
  SimTime sim_duration = 0;
  /// Whether the action conflicts with the preceding phase's data. A
  /// conflicting serial action blocks overlap (this is what makes a phase
  /// pair *null*-mapped in the census). Non-conflicting actions can be
  /// executed early under Config::early_serial — the paper's "extended
  /// effort" that lifts overlappability above 90%.
  bool conflicts_with_prev = true;
};

struct BranchNode {
  std::string name;
  /// Chooses an arm index into `targets` given the environment.
  std::function<std::size_t(const ProgramEnv&)> selector;
  /// Node indices of the arms.
  std::vector<std::uint32_t> targets;
  /// Paper: "a conditional branch that is not dependent on the computational
  /// phase separates that phase from two or more succeeding phases". When
  /// true, the executive may preprocess the branch during lookahead and
  /// overlap the appropriate arm (ENABLE/BRANCHINDEPENDENT); when false it
  /// must wait for phase completion (ENABLE/BRANCHDEPENDENT).
  bool phase_independent = false;
};

struct HaltNode {};

using ProgramNode = std::variant<DispatchNode, SerialNode, BranchNode, HaltNode>;

/// A program over a set of defined phases. Node 0 is the entry point; every
/// program must end every path with a HaltNode.
class PhaseProgram {
 public:
  /// Register a phase definition; returns its PhaseId.
  PhaseId define_phase(PhaseSpec spec);

  [[nodiscard]] const PhaseSpec& phase(PhaseId id) const {
    PAX_CHECK(id < phases_.size());
    return phases_[id];
  }
  [[nodiscard]] std::size_t phase_count() const { return phases_.size(); }
  [[nodiscard]] PhaseId phase_by_name(const std::string& name) const;

  std::uint32_t add(ProgramNode node) {
    nodes_.push_back(std::move(node));
    return static_cast<std::uint32_t>(nodes_.size() - 1);
  }

  // Convenience builders.
  std::uint32_t dispatch(PhaseId phase, std::vector<EnableClause> enables = {}) {
    return add(DispatchNode{phase, std::move(enables)});
  }
  std::uint32_t serial(std::string name, std::function<void(ProgramEnv&)> action = {},
                       SimTime sim_duration = 0, bool conflicts = true) {
    return add(SerialNode{std::move(name), std::move(action), sim_duration, conflicts});
  }
  std::uint32_t branch(std::string name,
                       std::function<std::size_t(const ProgramEnv&)> selector,
                       std::vector<std::uint32_t> targets,
                       bool phase_independent = false) {
    return add(BranchNode{std::move(name), std::move(selector), std::move(targets),
                          phase_independent});
  }
  std::uint32_t halt();  // out of line: avoids a GCC-12 variant false positive

  [[nodiscard]] const ProgramNode& node(std::uint32_t i) const {
    PAX_CHECK(i < nodes_.size());
    return nodes_[i];
  }
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] bool empty() const { return nodes_.empty(); }

  /// Basic well-formedness: non-empty, all node/phase references in range,
  /// and the last reachable path ends in Halt. Aborts on violation; meant to
  /// be called once before execution.
  void verify() const;

 private:
  std::vector<PhaseSpec> phases_;
  std::vector<ProgramNode> nodes_;
};

}  // namespace pax
