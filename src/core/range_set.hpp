// range_set.hpp — set of granule ids kept as sorted disjoint ranges.
//
// Used for per-run completed-granule tracking (merge accounting: completed
// chunks "merged back into single descriptions when the work was completed")
// and for computing residual work when an overlap edge is set up against a
// partially complete phase.
#pragma once

#include <cstddef>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace pax {

class RangeSet {
 public:
  /// Insert a range, merging with neighbours. Ranges must not overlap
  /// anything already present (granules complete exactly once) — checked.
  void insert(GranuleRange r);

  [[nodiscard]] bool contains(GranuleId g) const;

  /// Total granules covered.
  [[nodiscard]] GranuleId cardinality() const { return total_; }

  /// Number of disjoint ranges (after merging). The paper's "merged back
  /// into single descriptions" corresponds to this collapsing to 1.
  [[nodiscard]] std::size_t fragments() const { return ranges_.size(); }

  [[nodiscard]] const std::vector<GranuleRange>& ranges() const { return ranges_; }

  [[nodiscard]] bool empty() const { return ranges_.empty(); }

  /// Ranges of [0, n) NOT covered by this set.
  [[nodiscard]] std::vector<GranuleRange> complement(GranuleId n) const;

  void clear() {
    ranges_.clear();
    total_ = 0;
  }

 private:
  std::vector<GranuleRange> ranges_;  // sorted, disjoint, non-adjacent
  GranuleId total_ = 0;
};

inline void RangeSet::insert(GranuleRange r) {
  PAX_CHECK(!r.empty());
  total_ += r.size();
  // Find first range with lo > r.lo.
  std::size_t i = 0;
  while (i < ranges_.size() && ranges_[i].lo < r.lo) ++i;
  // Overlap checks against neighbours.
  if (i > 0) PAX_CHECK_MSG(ranges_[i - 1].hi <= r.lo, "overlapping insert");
  if (i < ranges_.size()) PAX_CHECK_MSG(r.hi <= ranges_[i].lo, "overlapping insert");

  const bool merge_left = i > 0 && ranges_[i - 1].hi == r.lo;
  const bool merge_right = i < ranges_.size() && ranges_[i].lo == r.hi;
  if (merge_left && merge_right) {
    ranges_[i - 1].hi = ranges_[i].hi;
    ranges_.erase(ranges_.begin() + static_cast<std::ptrdiff_t>(i));
  } else if (merge_left) {
    ranges_[i - 1].hi = r.hi;
  } else if (merge_right) {
    ranges_[i].lo = r.lo;
  } else {
    ranges_.insert(ranges_.begin() + static_cast<std::ptrdiff_t>(i), r);
  }
}

inline bool RangeSet::contains(GranuleId g) const {
  // Binary search over sorted disjoint ranges.
  std::size_t lo = 0, hi = ranges_.size();
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (ranges_[mid].hi <= g) {
      lo = mid + 1;
    } else if (ranges_[mid].lo > g) {
      hi = mid;
    } else {
      return true;
    }
  }
  return false;
}

inline std::vector<GranuleRange> RangeSet::complement(GranuleId n) const {
  std::vector<GranuleRange> out;
  GranuleId cursor = 0;
  for (const auto& r : ranges_) {
    if (r.lo > cursor) out.push_back({cursor, r.lo});
    cursor = r.hi;
  }
  if (cursor < n) out.push_back({cursor, n});
  return out;
}

}  // namespace pax
