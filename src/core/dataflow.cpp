#include "core/dataflow.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace pax {
namespace {

bool touches_array(const PhaseSpec& p, const std::string& array) {
  return std::any_of(p.accesses.begin(), p.accesses.end(),
                     [&](const ArrayAccess& a) { return a.array == array; });
}

bool writes_array(const PhaseSpec& p, const std::string& array) {
  return std::any_of(p.accesses.begin(), p.accesses.end(), [&](const ArrayAccess& a) {
    return a.array == array && a.mode == AccessMode::kWrite;
  });
}

}  // namespace

MappingAnalysis infer_mapping(const PhaseSpec& cur, const PhaseSpec& next,
                              bool serial_between) {
  MappingAnalysis out;
  if (serial_between) {
    out.kind = MappingKind::kNull;
    out.rationale = "serial actions/decisions intervene between the phases";
    return out;
  }

  // Gather flow dependences: arrays written by `cur` and touched by `next`,
  // plus output/anti dependences (written by both, or read by cur & written
  // by next). Each dependence is characterised by the index patterns on the
  // two sides.
  bool any_dependence = false;
  bool any_whole = false;
  bool all_identity = true;
  bool cur_side_indirect = false;
  bool next_side_indirect = false;

  for (const auto& w : cur.accesses) {
    for (const auto& r : next.accesses) {
      if (w.array != r.array) continue;
      if (w.mode == AccessMode::kRead && r.mode == AccessMode::kRead) continue;
      any_dependence = true;
      out.carrier_arrays.push_back(w.array);
      if (w.pattern == IndexPattern::kWhole || r.pattern == IndexPattern::kWhole)
        any_whole = true;
      if (w.pattern != IndexPattern::kIdentity || r.pattern != IndexPattern::kIdentity)
        all_identity = false;
      if (w.pattern == IndexPattern::kIndirect) {
        cur_side_indirect = true;
        if (!w.map_name.empty()) out.selection_maps.push_back(w.map_name);
      }
      if (r.pattern == IndexPattern::kIndirect) {
        next_side_indirect = true;
        if (!r.map_name.empty()) out.selection_maps.push_back(r.map_name);
      }
    }
  }
  std::sort(out.carrier_arrays.begin(), out.carrier_arrays.end());
  out.carrier_arrays.erase(
      std::unique(out.carrier_arrays.begin(), out.carrier_arrays.end()),
      out.carrier_arrays.end());
  std::sort(out.selection_maps.begin(), out.selection_maps.end());
  out.selection_maps.erase(
      std::unique(out.selection_maps.begin(), out.selection_maps.end()),
      out.selection_maps.end());

  if (!any_dependence) {
    out.kind = MappingKind::kUniversal;
    out.rationale =
        "the two computations do not involve shared information of any kind; "
        "any successor granule is enabled by the null set";
    return out;
  }
  if (any_whole) {
    // A whole-array (scalar/reduction) dependence means no granule-level
    // enablement exists short of full phase completion.
    out.kind = MappingKind::kNull;
    out.rationale = "whole-array dependence admits no granule-level enablement";
    return out;
  }
  if (all_identity) {
    // Additionally require matching granule domains for the identity map to
    // be meaningful (I = I).
    if (cur.granules == next.granules) {
      out.kind = MappingKind::kIdentity;
      out.rationale = "identity mapping function (I = I) from completed to enabled granules";
    } else {
      out.kind = MappingKind::kNull;
      out.rationale = "element-wise dependence but granule domains differ";
    }
    return out;
  }
  if (next_side_indirect) {
    // Next phase reads through a selection map (B(IMAP(J,I))): knowing a
    // completed current granule does not directly identify an enabled
    // successor granule; only the reverse map is available.
    out.kind = MappingKind::kReverseIndirect;
    out.rationale =
        "successor reads through a selection map; a reverse mapping from "
        "desired successor granule to required current granules is possible";
    return out;
  }
  if (cur_side_indirect) {
    // Current phase writes through the map (B(IMAP(I)) = ...): a completed
    // current granule maps directly to the successor granule it enables.
    out.kind = MappingKind::kForwardIndirect;
    out.rationale =
        "current phase writes through a selection map; completed granules map "
        "directly to enabled successor granules";
    return out;
  }
  out.kind = MappingKind::kNull;
  out.rationale = "dependence structure not recognised; conservatively null";
  return out;
}

bool parallel_phases(const PhaseSpec& a, const PhaseSpec& b) {
  for (const auto& acc : a.accesses) {
    if (!touches_array(b, acc.array)) continue;
    if (acc.mode == AccessMode::kWrite || writes_array(b, acc.array)) return false;
  }
  return true;
}

void AccessOracle::set_map(const std::string& name,
                           std::vector<std::vector<GranuleId>> touched) {
  for (auto& [n, t] : maps_) {
    if (n == name) {
      t = std::move(touched);
      return;
    }
  }
  maps_.emplace_back(name, std::move(touched));
}

std::vector<GranuleId> AccessOracle::elements(const ArrayAccess& acc, GranuleId g,
                                              GranuleId whole_hint) const {
  switch (acc.pattern) {
    case IndexPattern::kIdentity:
      return {g};
    case IndexPattern::kWhole: {
      std::vector<GranuleId> all(whole_hint);
      for (GranuleId i = 0; i < whole_hint; ++i) all[i] = i;
      return all;
    }
    case IndexPattern::kIndirect: {
      for (const auto& [n, t] : maps_) {
        if (n == acc.map_name) {
          PAX_CHECK_MSG(g < t.size(), "granule out of range for selection map");
          return t[g];
        }
      }
      PAX_CHECK_MSG(false, "selection map not registered with AccessOracle");
      return {};
    }
  }
  return {};
}

bool AccessOracle::parallel(const PhaseSpec& a, GranuleId ga, const PhaseSpec& b,
                            GranuleId gb) const {
  const GranuleId whole = std::max(a.granules, b.granules);
  for (const auto& aa : a.accesses) {
    for (const auto& bb : b.accesses) {
      if (aa.array != bb.array) continue;
      if (aa.mode == AccessMode::kRead && bb.mode == AccessMode::kRead) continue;
      const auto ea = elements(aa, ga, whole);
      const auto eb = elements(bb, gb, whole);
      for (GranuleId x : ea)
        for (GranuleId y : eb)
          if (x == y) return false;
    }
  }
  return true;
}

}  // namespace pax
