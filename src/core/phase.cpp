#include "core/phase.hpp"

namespace pax {

const char* to_string(MappingKind k) {
  switch (k) {
    case MappingKind::kUniversal: return "universal";
    case MappingKind::kIdentity: return "identity";
    case MappingKind::kNull: return "null";
    case MappingKind::kReverseIndirect: return "reverse-indirect";
    case MappingKind::kForwardIndirect: return "forward-indirect";
  }
  return "?";
}

PhaseSpec& PhaseSpec::reads(std::string array, IndexPattern p, std::string map) {
  accesses.push_back({std::move(array), AccessMode::kRead, p, std::move(map)});
  return *this;
}

PhaseSpec& PhaseSpec::writes(std::string array, IndexPattern p, std::string map) {
  accesses.push_back({std::move(array), AccessMode::kWrite, p, std::move(map)});
  return *this;
}

std::vector<ArrayAccess> PhaseSpec::reads_of() const {
  std::vector<ArrayAccess> out;
  for (const auto& a : accesses)
    if (a.mode == AccessMode::kRead) out.push_back(a);
  return out;
}

std::vector<ArrayAccess> PhaseSpec::writes_of() const {
  std::vector<ArrayAccess> out;
  for (const auto& a : accesses)
    if (a.mode == AccessMode::kWrite) out.push_back(a);
  return out;
}

}  // namespace pax
