// cost_model.hpp — management-operation accounting.
//
// The paper's testbed ran "executive computation ... at the direct expense of
// worker computation" and measured a computation-to-management ratio of
// roughly 200. The ExecutiveCore is timeless; it *charges* abstract cost
// units per management operation into a ledger. Drivers convert charges to
// time: the simulator turns them into executive busy-time (on a worker or a
// dedicated management processor); the threaded runtime simply counts them.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "common/types.hpp"

namespace pax {

enum class MgmtOp : std::uint8_t {
  kRequestWork,       ///< idle worker presents itself; queue pop
  kSplit,             ///< carving a task from a description
  kSuccessorSplit,    ///< split propagation to a queued successor description
  kCompletion,        ///< completion processing of a finished task
  kConflictRelease,   ///< moving a conflict-queued description to the waiting queue
  kCounterUpdate,     ///< enablement-counter decrement (per participating granule)
  kMapBuildEntry,     ///< composite granule map construction (per map entry)
  kMapReset,          ///< reusing a cached static map (per 16 entries)
  kPhaseInit,         ///< initiating a phase (root description creation)
  kSerialAction,      ///< executing an inter-phase serial action
  kBranchPreprocess,  ///< preprocessing a branch-independent conditional
  kSteal,             ///< decentralized dispatch: a worker takes an assignment
                      ///< without a serial-executive round-trip (worker-side
                      ///< charge; see sim::MachineConfig::steal)
  kShardFlush,        ///< sharded executive: publishing one shard's slice of a
                      ///< coalesced cross-shard enablement flush (per shard
                      ///< touched; see core/sharded_executive.hpp and
                      ///< sim::MachineConfig::shards)
  kCount_
};

inline constexpr std::size_t kMgmtOpCount = static_cast<std::size_t>(MgmtOp::kCount_);

[[nodiscard]] const char* to_string(MgmtOp op);

/// Per-op unit costs in ticks. Defaults are calibrated (see
/// bench_t3_mgmt_ratio) so a grain-weighted CASPER workload reproduces the
/// paper's ~200:1 computation:management ratio.
struct CostModel {
  std::array<SimTime, kMgmtOpCount> ticks{};

  constexpr CostModel() {
    set(MgmtOp::kRequestWork, 2);
    set(MgmtOp::kSplit, 3);
    set(MgmtOp::kSuccessorSplit, 3);
    set(MgmtOp::kCompletion, 4);
    set(MgmtOp::kConflictRelease, 2);
    set(MgmtOp::kCounterUpdate, 1);
    set(MgmtOp::kMapBuildEntry, 1);
    set(MgmtOp::kMapReset, 1);
    set(MgmtOp::kPhaseInit, 10);
    set(MgmtOp::kSerialAction, 50);
    set(MgmtOp::kBranchPreprocess, 5);
    set(MgmtOp::kSteal, 2);
    set(MgmtOp::kShardFlush, 2);
  }

  constexpr void set(MgmtOp op, SimTime t) { ticks[static_cast<std::size_t>(op)] = t; }
  [[nodiscard]] constexpr SimTime of(MgmtOp op) const {
    return ticks[static_cast<std::size_t>(op)];
  }

  [[nodiscard]] static constexpr CostModel free_of_charge() {
    CostModel m;
    m.ticks.fill(0);
    return m;
  }

  /// Uniformly scale all management costs (ablation knob for F4/T3).
  [[nodiscard]] constexpr CostModel scaled(SimTime factor) const {
    CostModel m = *this;
    for (auto& t : m.ticks) t *= factor;
    return m;
  }
};

/// Accumulated charges: counts and cost units per op.
class MgmtLedger {
 public:
  void charge(MgmtOp op, const CostModel& model, std::uint64_t times = 1) {
    auto i = static_cast<std::size_t>(op);
    counts_[i] += times;
    units_[i] += times * model.of(op);
    pending_units_ += times * model.of(op);
  }

  [[nodiscard]] std::uint64_t count(MgmtOp op) const {
    return counts_[static_cast<std::size_t>(op)];
  }
  [[nodiscard]] SimTime units(MgmtOp op) const {
    return units_[static_cast<std::size_t>(op)];
  }
  [[nodiscard]] SimTime total_units() const {
    SimTime t = 0;
    for (auto u : units_) t += u;
    return t;
  }
  [[nodiscard]] std::uint64_t total_count() const {
    std::uint64_t t = 0;
    for (auto c : counts_) t += c;
    return t;
  }

  /// Add raw units to an op (e.g. a serial action's declared duration) on
  /// top of its unit cost, without incrementing the op count.
  void charge_raw(MgmtOp op, SimTime units) {
    units_[static_cast<std::size_t>(op)] += units;
    pending_units_ += units;
  }

  /// Drain charges accumulated since the last drain. Drivers call this after
  /// every ExecutiveCore entry point and bill the result as executive busy
  /// time.
  SimTime drain_pending() {
    SimTime t = pending_units_;
    pending_units_ = 0;
    return t;
  }

 private:
  std::array<std::uint64_t, kMgmtOpCount> counts_{};
  std::array<SimTime, kMgmtOpCount> units_{};
  SimTime pending_units_ = 0;
};

}  // namespace pax
