#include "core/granule.hpp"

#include "common/check.hpp"

namespace pax {

std::vector<GranuleRange> coalesce_sorted(const std::vector<GranuleId>& ids) {
  std::vector<GranuleRange> out;
  coalesce_sorted_into(ids, out);
  return out;
}

void coalesce_sorted_into(const std::vector<GranuleId>& ids,
                          std::vector<GranuleRange>& out) {
  out.clear();
  for (GranuleId g : ids) {
    if (!out.empty()) {
      PAX_DCHECK(g >= out.back().hi - 1 || g >= out.back().lo);
      if (g < out.back().hi) continue;  // duplicate
      if (g == out.back().hi) {
        ++out.back().hi;
        continue;
      }
    }
    out.push_back({g, g + 1});
  }
}

}  // namespace pax
