// waiting_queue.hpp — the PAX waiting computation queue.
//
// Paper: "The waiting computation queue was kept in a known order and, for
// the purposes of the conflicting computation problem, it was determined
// that such conflicting computations would be placed ahead of the normal
// computations in the queue and, thus, given higher priority."
//
// Two FIFO rings, elevated ahead of normal. Descriptors link in via their
// wait_hook; the queue never owns storage.
#pragma once

#include <cstddef>

#include "common/intrusive_ring.hpp"
#include "core/descriptor.hpp"

namespace pax {

class WaitingQueue {
 public:
  /// File a descriptor at the back of its priority class.
  void enqueue(Descriptor& d) {
    PAX_DCHECK(!d.wait_hook.linked());
    d.state = DescState::kWaiting;
    ring_for(d.priority).push_back(d);
    ++size_;
  }

  /// File at the *front* of its priority class (used when a partially
  /// consumed descriptor is returned so FIFO order of the remainder holds).
  void enqueue_front(Descriptor& d) {
    PAX_DCHECK(!d.wait_hook.linked());
    d.state = DescState::kWaiting;
    ring_for(d.priority).push_front(d);
    ++size_;
  }

  /// Insert `d` immediately before `pos`, which must already be queued.
  /// Used by presplitting so carved pieces keep the original queue order.
  void insert_before(Descriptor& pos, Descriptor& d) {
    PAX_DCHECK(pos.wait_hook.linked());
    PAX_DCHECK(!d.wait_hook.linked());
    d.state = DescState::kWaiting;
    Ring::insert_before(pos, d);
    ++size_;
  }

  /// Insert `d` immediately after `pos`, which must already be queued.
  void insert_after(Descriptor& pos, Descriptor& d) {
    PAX_DCHECK(pos.wait_hook.linked());
    PAX_DCHECK(!d.wait_hook.linked());
    d.state = DescState::kWaiting;
    Ring::insert_after(pos, d);
    ++size_;
  }

  /// Next descriptor to schedule: elevated first, FIFO within class.
  /// Returns nullptr when no work is waiting. Does not detach.
  [[nodiscard]] Descriptor* peek() const {
    if (Descriptor* d = elevated_.front()) return d;
    return normal_.front();
  }

  /// Detach a specific descriptor (must be queued).
  void remove(Descriptor& d) {
    PAX_DCHECK(d.wait_hook.linked());
    d.wait_hook.unlink();
    PAX_DCHECK(size_ > 0);
    --size_;
  }

  /// Detach and return the schedulable front, or nullptr.
  Descriptor* pop() {
    Descriptor* d = peek();
    if (d) remove(*d);
    return d;
  }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t elevated_size() const { return elevated_.size(); }

  /// Visit queued descriptors, elevated class first (inspection only).
  template <typename Fn>
  void for_each(Fn&& fn) {
    elevated_.for_each(fn);
    normal_.for_each(fn);
  }

 private:
  using Ring = IntrusiveRing<Descriptor, &Descriptor::wait_hook>;

  Ring& ring_for(Priority p) {
    return p == Priority::kElevated ? elevated_ : normal_;
  }

  Ring elevated_;
  Ring normal_;
  std::size_t size_ = 0;
};

}  // namespace pax
