// mpmc_ring.hpp — bounded multi-producer/multi-consumer ring buffer.
//
// The lock-free handout path of the sharded executive (DESIGN.md §13): each
// shard's ready buffer and deposit box become one of these rings, so the
// steady-state worker protocol — pop assignments from the home shard, probe a
// sibling, push finished tickets — runs with no mutex at all, and the per-
// shard lock the PR 4 design still took on every warm acquire is retired to
// the control sweep's slow path.
//
// Shape: the classic Vyukov bounded queue. A power-of-two array of cells,
// each carrying an atomic sequence number beside its value; producers claim
// cells by CAS on an enqueue cursor, consumers by CAS on a dequeue cursor,
// and the per-cell sequence number is what publishes the value between them:
//
//   * a cell whose seq equals the enqueue position is free to push; the
//     producer CASes the cursor, writes the value, then release-stores
//     seq = pos + 1 — the only producer→consumer edge;
//   * a cell whose seq equals the dequeue position + 1 holds a value; the
//     consumer CASes the cursor, reads the value, then release-stores
//     seq = pos + capacity — recycling the cell for the next lap;
//   * a lagging seq means the ring is full (push) or empty (pop): both
//     operations FAIL rather than wait, and the caller falls back to the
//     control sweep — bounded and non-blocking is the whole contract.
//
// Memory discipline (DESIGN.md §10): the cell array is allocated once at
// construction and never grows; try_push/try_pop are loads, CASes and stores,
// full stop — the t10/t12 zero-alloc warm-window gates hold through this
// ring. Census accounting stays OUTSIDE the ring (the executive's relaxed
// ready_/deposited_ atomics); the ring only exposes its cursors (pushed()/
// popped()) so check_census can cross-validate occupancy at quiescence.
//
// Sizing caveat (why the executive still handles push failure even on rings
// it never over-fills): a consumer that CASed the dequeue cursor but has not
// yet release-stored the recycled seq leaves its cell transiently "occupied
// from a lap ago". A producer lapping onto exactly that cell sees the stale
// seq and reports full, however much arithmetic room the cursors show. The
// executive treats any failed push as ring-full overflow (counted, traced,
// retired by the sweep), so this transient is indistinguishable from — and
// exactly as harmless as — a genuinely full ring.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "common/check.hpp"

namespace pax {

template <typename T>
class MpmcRing {
 public:
  /// `min_capacity` is rounded up to a power of two (minimum 2) so the slot
  /// index is a mask, not a division, on the hot path.
  explicit MpmcRing(std::size_t min_capacity) {
    std::size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    cells_ = std::make_unique<Cell[]>(cap);
    mask_ = cap - 1;
    for (std::size_t i = 0; i < cap; ++i)
      cells_[i].seq.store(i, std::memory_order_relaxed);
  }

  MpmcRing(const MpmcRing&) = delete;
  MpmcRing& operator=(const MpmcRing&) = delete;

  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

  /// Claim a cell and publish `v`. False when the ring is full (or a lapped
  /// cell's recycle is still in flight — see the sizing caveat above); the
  /// value is NOT enqueued and the caller owns the fallback.
  bool try_push(const T& v) {
    Cell* cell;
    std::uint64_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    std::uint64_t retries = 0;
    for (;;) {
      cell = &cells_[pos & mask_];
      // Acquire: pairs with the consumer's release recycle so the producer
      // never writes a value the consumer is still reading out.
      const std::uint64_t seq = cell->seq.load(std::memory_order_acquire);
      const auto dif = static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
      if (dif == 0) {
        // Relaxed CAS: claiming the cursor orders nothing by itself — the
        // value hand-off rides entirely on the cell's seq release below.
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed))
          break;
        ++retries;  // lost the claim to another producer; pos was reloaded
      } else if (dif < 0) {
        note_retries(retries);
        return false;  // full (the cell still holds last lap's value)
      } else {
        // Another producer claimed this cell first; chase the cursor.
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
    cell->value = v;
    // Release: publishes the value write above to the consumer that acquires
    // this seq — the one producer→consumer edge of the protocol.
    cell->seq.store(pos + 1, std::memory_order_release);
    note_retries(retries);
    return true;
  }

  /// Claim the oldest value into `out`. False when the ring is empty (or the
  /// oldest cell's publish is still in flight). FIFO per ring: cells are
  /// claimed in cursor order, which is what preserves the executive's
  /// handout order per scatter batch.
  bool try_pop(T& out) {
    Cell* cell;
    std::uint64_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    std::uint64_t retries = 0;
    for (;;) {
      cell = &cells_[pos & mask_];
      // Acquire: pairs with the producer's release publish so the value read
      // below sees the fully-written value.
      const std::uint64_t seq = cell->seq.load(std::memory_order_acquire);
      const auto dif =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos + 1);
      if (dif == 0) {
        if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed))
          break;
        ++retries;
      } else if (dif < 0) {
        note_retries(retries);
        return false;  // empty (the cell is waiting for this lap's producer)
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
    out = cell->value;
    // Release: recycles the cell for the producer that laps onto it (pairs
    // with the producer's acquire seq load).
    cell->seq.store(pos + mask_ + 1, std::memory_order_release);
    note_retries(retries);
    return true;
  }

  // --- census introspection --------------------------------------------------
  // Cursor snapshots, relaxed: exact only at quiescence (no operation in
  // flight), which is when check_census reads them; mid-run they are
  // monotonic progress counters a moment stale.
  [[nodiscard]] std::uint64_t pushed() const {
    return enqueue_pos_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t popped() const {
    return dequeue_pos_.load(std::memory_order_relaxed);
  }
  /// Occupancy estimate (pushed - popped, clamped at 0: the cursors are read
  /// independently, so a racing pop can momentarily invert them).
  [[nodiscard]] std::size_t approx_size() const {
    const std::uint64_t popped_first = popped();  // read popped first: a
    // concurrent pop then only shrinks the true size below the estimate,
    // so room computed from this estimate stays conservative.
    const std::uint64_t pushed_now = pushed();
    return pushed_now > popped_first
               ? static_cast<std::size_t>(pushed_now - popped_first)
               : 0;
  }
  /// CAS claim retries summed over both cursors — the ring's contention
  /// signal (exported as shard.ring.cas_retries).
  [[nodiscard]] std::uint64_t cas_retries() const {
    return cas_retries_.load(std::memory_order_relaxed);
  }

 private:
  struct Cell {
    std::atomic<std::uint64_t> seq{0};
    T value{};
  };

  void note_retries(std::uint64_t n) {
    // One relaxed add per operation that actually contended; the common
    // uncontended path never touches this (shared) counter.
    if (n != 0) cas_retries_.fetch_add(n, std::memory_order_relaxed);
  }

  std::unique_ptr<Cell[]> cells_;
  std::size_t mask_ = 0;
  /// alignas: producers and consumers hammer different cursors; keep each on
  /// its own cache line (and off the cells') so they don't false-share.
  alignas(64) std::atomic<std::uint64_t> enqueue_pos_{0};
  alignas(64) std::atomic<std::uint64_t> dequeue_pos_{0};
  alignas(64) std::atomic<std::uint64_t> cas_retries_{0};
};

}  // namespace pax
