// policies.hpp — executive configuration knobs.
//
// Each knob corresponds to a design decision the paper debates; the ablation
// benches sweep them (see DESIGN.md §5).
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace pax {

/// How split propagation to queued successor descriptions is handled.
/// Paper: "Two possible solutions exist. One possibility is to presplit the
/// tasks before idle workers present themselves ... Alternatively, the
/// splitting of a computation could generate a successor-splitting task that
/// could be quickly queued for later attention when the executive would
/// again be idle."
enum class SplitPolicy : std::uint8_t {
  kInline,     ///< split queued successors at worker-request time (baseline;
               ///< the delay the paper worries "may represent an unacceptable
               ///< situation")
  kPresplit,   ///< executive pre-carves grain-size pieces in idle time
  kDeferred,   ///< successor-splitting tasks drained in executive idle time
};

[[nodiscard]] inline const char* to_string(SplitPolicy p) {
  switch (p) {
    case SplitPolicy::kInline: return "inline";
    case SplitPolicy::kPresplit: return "presplit";
    case SplitPolicy::kDeferred: return "deferred";
  }
  return "?";
}

/// Where executive computation runs (simulator concern, but declared here so
/// configs are self-contained).  Paper: "In the PAX/CASPER UNIVAC 1100 test
/// bed, executive computation was done at the direct expense of worker
/// computation. ... Some real parallel machines may provide separate
/// executive computing resources."
enum class ExecPlacement : std::uint8_t {
  kWorkerStealing,  ///< management time billed to the worker involved
  kDedicated,       ///< a separate management processor serialises exec ops
};

[[nodiscard]] inline const char* to_string(ExecPlacement p) {
  switch (p) {
    case ExecPlacement::kWorkerStealing: return "worker-stealing";
    case ExecPlacement::kDedicated: return "dedicated";
  }
  return "?";
}

struct ExecConfig {
  /// Granules per task handed to a worker.
  GranuleId grain = 1;

  /// Master switch: false gives the strict-barrier baseline (phases fully
  /// sequential), true enables phase overlap per the ENABLE clauses.
  bool overlap = true;

  SplitPolicy split_policy = SplitPolicy::kInline;

  /// Split the current-phase granules that enable an indirect successor
  /// subset into individual descriptors placed ahead of normal work, in
  /// preferred dispatch order (the paper's prescription for indirect maps).
  bool elevate_enabling = true;

  /// Also place *released successor* work ahead of remaining current-phase
  /// work. The paper reserves elevated priority for conflict-released
  /// computations; elevating successor releases makes the two phases
  /// interleave 1:1 and forfeits the rundown fill (ablation knob, default
  /// off — see bench_f2_mapping_utilization).
  bool elevate_released = false;

  /// Execute non-conflicting inter-phase serial actions early during
  /// lookahead (the "extended effort" >90% feature).
  bool early_serial = false;

  /// For indirect mappings: solve only the first N successor granules
  /// (0 = solve all). Unsolved granules release at phase completion.
  /// When a subset is in effect, the current-phase granules enabling it are
  /// split into individual elevated descriptors in preferred dispatch order
  /// (with no subset, every granule participates and elevation is a no-op,
  /// so none is attempted).
  GranuleId indirect_subset = 0;

  /// Approximate map entries processed per idle-time slice when building a
  /// composite map incrementally. Bounded slices keep the serial executive
  /// responsive to worker requests while it "works ahead".
  GranuleId map_build_quantum = 128;

  /// Build composite granule maps in executive idle time instead of at
  /// dispatch. Paper: "it would seem wise to get the current phase into
  /// execution without the delay of constructing the necessary information
  /// for enabling successor computations." If the map is never built before
  /// the current phase completes, the successor simply releases wholesale at
  /// completion (no overlap, no harm).
  bool defer_map_build = true;

  /// Preprocess branch-independent branches during lookahead.
  bool branch_preprocess = true;

  ExecPlacement placement = ExecPlacement::kWorkerStealing;

  /// Fault containment (DESIGN.md §15): how many times a faulted granule
  /// range is re-enqueued before its granules are poisoned and the program
  /// enters the faulted terminal. Drivers mirror this from
  /// RtConfig::max_granule_retries.
  std::uint32_t max_granule_retries = 2;

  /// Base of the exponential retry backoff, in executive completion ticks:
  /// the Nth failure of a granule parks its range for
  /// `retry_backoff_ticks << (N-1)` completion batches before it re-enters
  /// the waiting queue (an otherwise-idle executive fast-forwards the wait —
  /// backoff only defers retries relative to other progress).
  std::uint32_t retry_backoff_ticks = 1;
};

}  // namespace pax
