// phase.hpp — static description of a parallel computational phase.
//
// A phase is a set of independent granules plus declared data accesses.
// The access declarations drive three things:
//   * the PARALLEL(x, y) predicate (dataflow.hpp),
//   * automatic inference of the legal enablement mapping to a successor
//     phase (dataflow.hpp), and
//   * the CASPER phase census (casper/census.hpp) reproducing Table T1.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace pax {

/// The five enablement mapping classes the paper identifies, in the order it
/// presents them.
enum class MappingKind : std::uint8_t {
  kUniversal,        ///< any successor granule enabled by the null set
  kIdentity,         ///< completion of granule i enables successor granule i
  kNull,             ///< serial actions between phases; no overlap possible
  kReverseIndirect,  ///< successor granule needs a *set* of current granules
  kForwardIndirect,  ///< completed granule directly maps to successor granule
};

[[nodiscard]] const char* to_string(MappingKind k);

/// How a phase's granule index addresses an array.
enum class IndexPattern : std::uint8_t {
  kIdentity,  ///< X[i]            — element i touched by granule i
  kIndirect,  ///< X[map(i)]       — through a (possibly dynamic) map
  kWhole,     ///< X[*]            — scalar/reduction/whole-array access
};

enum class AccessMode : std::uint8_t { kRead, kWrite };

/// One declared array access of a phase.
struct ArrayAccess {
  std::string array;        ///< name of the shared array
  AccessMode mode = AccessMode::kRead;
  IndexPattern pattern = IndexPattern::kIdentity;
  std::string map_name;     ///< for kIndirect: which selection map is used

  friend bool operator==(const ArrayAccess&, const ArrayAccess&) = default;
};

/// Static specification of a phase, registered with the executive before any
/// dispatch (the paper's DEFINE PHASE).
struct PhaseSpec {
  std::string name;
  GranuleId granules = 0;

  /// The paper reports its census in "lines of code executed in parallel";
  /// synthetic workloads carry the same metric so the census reproduces.
  std::uint32_t code_lines = 0;

  std::vector<ArrayAccess> accesses;

  /// Convenience builder helpers.
  PhaseSpec& reads(std::string array,
                   IndexPattern p = IndexPattern::kIdentity,
                   std::string map = {});
  PhaseSpec& writes(std::string array,
                    IndexPattern p = IndexPattern::kIdentity,
                    std::string map = {});

  [[nodiscard]] std::vector<ArrayAccess> reads_of() const;
  [[nodiscard]] std::vector<ArrayAccess> writes_of() const;
};

/// Factory avoiding partially-designated initializers at call sites.
[[nodiscard]] inline PhaseSpec make_phase(std::string name, GranuleId granules,
                                          std::uint32_t code_lines = 0) {
  PhaseSpec s;
  s.name = std::move(name);
  s.granules = granules;
  s.code_lines = code_lines;
  return s;
}

}  // namespace pax
