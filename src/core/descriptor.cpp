#include "core/descriptor.hpp"

namespace pax {

Descriptor& DescriptorPool::acquire(RunId run, PhaseId phase, GranuleRange range,
                                    Priority prio) {
  PAX_CHECK(!range.empty());
  Descriptor* d;
  if (!free_.empty()) {
    d = &slab_[free_.back()];
    free_.pop_back();
  } else {
    slab_.emplace_back();
    d = &slab_.back();
    d->pool_index = static_cast<std::uint32_t>(slab_.size() - 1);
  }
  PAX_DCHECK(d->state == DescState::kFree);
  PAX_DCHECK(!d->wait_hook.linked() && !d->conflict_hook.linked());
  PAX_DCHECK(d->conflict_queue.empty());
  d->tracks_owner = false;
  d->pending_split = nullptr;
  d->run = run;
  d->phase = phase;
  d->range = range;
  d->priority = prio;
  d->state = DescState::kWaiting;  // caller immediately files it somewhere
  ++live_;
  ++total_acquired_;
  return *d;
}

void DescriptorPool::release(Descriptor& d) {
  PAX_CHECK_MSG(!d.wait_hook.linked(), "releasing descriptor still in waiting queue");
  PAX_CHECK_MSG(!d.conflict_hook.linked(),
                "releasing descriptor still on a conflict queue");
  PAX_CHECK_MSG(d.conflict_queue.empty(),
                "releasing descriptor with unreleased conflict waiters");
  PAX_CHECK_MSG(d.pending_split == nullptr,
                "releasing descriptor with a pending successor-splitting task");
  PAX_DCHECK(d.state != DescState::kFree);
  d.state = DescState::kFree;
  d.run = kNoRun;
  d.phase = kNoPhase;
  d.range = {};
  free_.push_back(d.pool_index);
  PAX_DCHECK(live_ > 0);
  --live_;
}

}  // namespace pax
