#include "core/enablement.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace pax {

CompositeBuild CompositeGranuleMap::build_from_pairs(
    GranuleId current_count, GranuleId successor_count,
    std::vector<std::pair<std::uint32_t, GranuleId>> cur_to_succ,
    const std::optional<std::vector<GranuleId>>& subset) {
  CompositeBuild out;
  CompositeGranuleMap& m = out.map;

  // Which successor granules are solved?
  std::vector<std::uint8_t> in_subset(successor_count, subset ? 0 : 1);
  if (subset) {
    for (GranuleId r : *subset) {
      PAX_CHECK_MSG(r < successor_count, "subset granule out of range");
      in_subset[r] = 1;
    }
  }

  // Drop pairs pointing at unsolved successor granules; dedupe (a current
  // granule may feed the same successor element several times, e.g. repeated
  // IMAP values — one completion satisfies all of them at once).
  std::sort(cur_to_succ.begin(), cur_to_succ.end());
  cur_to_succ.erase(std::unique(cur_to_succ.begin(), cur_to_succ.end()),
                    cur_to_succ.end());
  std::erase_if(cur_to_succ, [&](const auto& pr) { return !in_subset[pr.second]; });

  out.entries = cur_to_succ.size();

  m.need_.assign(successor_count, 0);
  m.participates_.assign(current_count, 0);
  for (const auto& [p, r] : cur_to_succ) {
    PAX_CHECK(p < current_count && r < successor_count);
    ++m.need_[r];
    m.participates_[p] = 1;
  }
  m.fanout_ = Csr<GranuleId>::from_pairs(current_count, std::move(cur_to_succ));

  for (GranuleId r = 0; r < successor_count; ++r) {
    if (!in_subset[r]) {
      m.untracked_.push_back(r);
    } else if (m.need_[r] == 0) {
      // Enabled by the null set: computable immediately.
      out.initially_enabled.push_back(r);
      m.tracked_.push_back(r);
    } else {
      m.tracked_.push_back(r);
      m.outstanding_ += m.need_[r];
    }
  }

  // Preferred dispatch order: participating current granules, grouped by the
  // earliest successor granule they help enable, so that a known successor
  // granule becomes computable as early as possible.
  std::vector<std::pair<GranuleId, GranuleId>> keyed;  // (min successor, current)
  for (GranuleId p = 0; p < current_count; ++p) {
    if (!m.participates_[p]) continue;
    GranuleId min_r = kNoGranule;
    for (GranuleId r : m.fanout_[p]) min_r = std::min(min_r, r);
    keyed.emplace_back(min_r, p);
  }
  std::sort(keyed.begin(), keyed.end());
  m.preferred_order_.reserve(keyed.size());
  for (const auto& [r, p] : keyed) m.preferred_order_.push_back(p);

  return out;
}

CompositeBuild CompositeGranuleMap::build_reverse(
    GranuleId current_count, GranuleId successor_count,
    const GranuleMapFn& requires_of,
    const std::optional<std::vector<GranuleId>>& subset) {
  PAX_CHECK(requires_of != nullptr);
  std::vector<std::pair<std::uint32_t, GranuleId>> pairs;
  std::vector<GranuleId> scratch;  // one buffer for the whole build
  auto append = [&](GranuleId r) {
    scratch.clear();
    requires_of(r, scratch);
    for (GranuleId p : scratch) pairs.emplace_back(p, r);
  };
  // Only walk the successor granules we intend to solve; that is the whole
  // point of the subset ("avoid solving an unnecessarily large enablement
  // problem") — the reverse map is evaluated per desired successor granule.
  if (subset) {
    for (GranuleId r : *subset) append(r);
  } else {
    for (GranuleId r = 0; r < successor_count; ++r) append(r);
  }
  return build_from_pairs(current_count, successor_count, std::move(pairs), subset);
}

CompositeBuild CompositeGranuleMap::build_forward(
    GranuleId current_count, GranuleId successor_count,
    const GranuleMapFn& enables_of,
    const std::optional<std::vector<GranuleId>>& subset) {
  PAX_CHECK(enables_of != nullptr);
  std::vector<std::pair<std::uint32_t, GranuleId>> pairs;
  std::vector<GranuleId> scratch;
  for (GranuleId p = 0; p < current_count; ++p) {
    scratch.clear();
    enables_of(p, scratch);
    for (GranuleId r : scratch) pairs.emplace_back(p, r);
  }
  return build_from_pairs(current_count, successor_count, std::move(pairs), subset);
}

std::uint32_t CompositeGranuleMap::on_complete(GranuleId p,
                                               std::vector<GranuleId>& newly_enabled) {
  if (!participates(p)) return 0;
  participates_[p] = 0;  // a granule completes exactly once per run
  std::uint32_t updates = 0;
  for (GranuleId r : fanout_[p]) {
    PAX_CHECK_MSG(need_[r] > 0, "enablement counter underflow");
    ++updates;
    --outstanding_;
    if (--need_[r] == 0) newly_enabled.push_back(r);
  }
  return updates;
}

}  // namespace pax
