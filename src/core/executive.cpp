#include "core/executive.hpp"

#include <algorithm>
#include <utility>

namespace pax {

// ---------------------------------------------------------------------------
// Internal structures

struct ExecutiveCore::Run {
  RunId id = kNoRun;
  PhaseId phase = kNoPhase;
  std::uint32_t node = kNoNode;
  RunState state = RunState::kPending;
  GranuleId total = 0;
  GranuleId completed_count = 0;
  RangeSet completed;
  /// Every live descriptor belonging to this run, regardless of state.
  std::vector<Descriptor*> live;
  /// Dynamically submitted computations that conflict with this run; the
  /// paper's original conflict-queue purpose. Released at run completion.
  IntrusiveRing<Descriptor, &Descriptor::conflict_hook> barrier;
  Edge* outgoing = nullptr;  ///< overlap edge where this run is current
  Edge* incoming = nullptr;  ///< overlap edge where this run is successor
  /// Most recent waiting descriptor of this run, for merge-on-enqueue.
  Descriptor* merge_tail = nullptr;

  static constexpr std::uint32_t kNoNode = 0xFFFFFFFFu;
};

/// Overlap edge. Slab-recycled when its current run completes: setup_overlap
/// resets every field, and build_pairs keeps the capacity it grew during the
/// previous edge's incremental map construction.
struct ExecutiveCore::Edge {
  RunId cur = kNoRun;
  RunId succ = kNoRun;
  MappingKind kind = MappingKind::kNull;
  const EnableClause* clause = nullptr;  // for deferred map building
  CompositeGranuleMap* cmap = nullptr;   // indirect kinds only (cmap slab)
  bool dead = false;

  // Incremental map construction: pairs accumulated over idle-time slices.
  GranuleId build_cursor = 0;
  std::vector<std::pair<std::uint32_t, GranuleId>> build_pairs;
};

/// Cached composite map for a stable (static-relation) clause.
struct ExecutiveCore::CachedMap {
  const EnableClause* clause = nullptr;
  CompositeGranuleMap pristine;
  std::vector<GranuleId> initially_enabled;
  std::uint64_t entries = 0;
};

/// Successor granules of one overlap edge enabled during a completion batch,
/// keyed by the successor run (the edge may die mid-batch when its current
/// run completes; the run outlives it).
struct ExecutiveCore::DeferredEnable {
  RunId succ = kNoRun;
  std::vector<GranuleId> newly;
};

/// Deferred successor-splitting task: "The successor computation description
/// could be removed from the current computation description and included in
/// the successor-splitting task information."
struct ExecutiveCore::SplitTask {
  Descriptor* held = nullptr;       ///< detached successor descriptor (kHeld)
  Descriptor* chunk = nullptr;      ///< carved current chunk (prefix)
  Descriptor* remainder = nullptr;  ///< current remainder (still queued)
  bool done = false;
};

/// The cleared-not-freed scratch buffers behind the steady-state hot paths.
/// Each buffer grows to its working-set size once and is reused for the life
/// of the core; no function in the completion/request cycle materialises a
/// fresh std::vector. Buffers are grouped by the call tree that owns them —
/// the completion set is idle whenever the map-build set runs (map builds
/// happen at dispatch or in idle time, after the batch's deferred flush).
struct ExecutiveCore::Workspace {
  // complete_batch / flush_deferred
  std::vector<DeferredEnable> deferred;  ///< slot pool; active = [0, deferred_n)
  std::size_t deferred_n = 0;
  std::vector<GranuleId> newly;          ///< per-ticket indirect enablements
  std::vector<GranuleRange> ranges;      ///< coalesced-range scratch
  // extract_elevated
  std::vector<Descriptor*> hosts;
  std::vector<std::pair<Descriptor*, GranuleId>> grouped;
  std::vector<std::pair<GranuleId, Descriptor*>> carved;
  std::vector<std::uint8_t> used;
  // map building
  std::vector<GranuleId> map_out;    ///< indirection-callback out-buffer
  std::vector<GranuleId> map_newly;  ///< enablements fired by a map build

  /// The batch's accumulation slot for successor run `succ`. Slots recycle
  /// across batches with their `newly` capacity intact.
  DeferredEnable& slot_for(RunId succ) {
    for (std::size_t i = 0; i < deferred_n; ++i)
      if (deferred[i].succ == succ) return deferred[i];
    if (deferred_n == deferred.size()) deferred.emplace_back();
    DeferredEnable& de = deferred[deferred_n++];
    de.succ = succ;
    de.newly.clear();
    return de;
  }
};

namespace {
template <typename T>
SplitTaskTag* as_tag(T* t) {
  return reinterpret_cast<SplitTaskTag*>(t);
}
}  // namespace

// ---------------------------------------------------------------------------
// Construction / teardown

ExecutiveCore::ExecutiveCore(const PhaseProgram& program, ExecConfig config,
                             CostModel costs)
    : program_(program),
      config_(config),
      costs_(costs),
      ws_(std::make_unique<Workspace>()),
      serial_done_early_(program.size(), 0),
      branch_predecided_(program.size(), -1),
      node_pending_run_(program.size(), kNoRun),
      grain_limit_(config.grain) {
  PAX_CHECK_MSG(config_.grain > 0, "grain must be positive");
}

ExecutiveCore::~ExecutiveCore() {
  // Tear down any still-linked structures so intrusive-hook destructors
  // don't trip (a core may be destroyed mid-program by tests). Index
  // iteration, not a snapshot copy: nothing below mutates a live table, and
  // the old per-run std::vector copy was a heap round-trip per run.
  for (Run* r : runs_) {
    r->barrier.drain([](Descriptor&) {});
  }
  for (Run* r : runs_) {
    for (std::size_t i = 0; i < r->live.size(); ++i) {
      Descriptor* d = r->live[i];
      if (d->wait_hook.linked()) waiting_.remove(*d);
      if (d->conflict_hook.linked()) d->conflict_hook.unlink();
      d->conflict_queue.drain([](Descriptor&) {});
      d->pending_split = nullptr;
    }
  }
}

// ---------------------------------------------------------------------------
// Small plumbing

void ExecutiveCore::emit(const ExecEvent& ev) {
  if (sink_ != nullptr) sink_->on_event(ev);
}

void ExecutiveCore::diagnose(std::string msg) {
  diagnostics_.push_back(std::move(msg));
  emit({ExecEvent::Kind::kDiagnostic, kNoRun, kNoPhase, {}, diagnostics_.back()});
}

ExecutiveCore::Run& ExecutiveCore::run_of(RunId id) {
  PAX_CHECK(id < runs_.size());
  return *runs_[id];
}

const ExecutiveCore::Run& ExecutiveCore::run_of(RunId id) const {
  PAX_CHECK(id < runs_.size());
  return *runs_[id];
}

ExecutiveCore::Run& ExecutiveCore::create_run(PhaseId phase, std::uint32_t node,
                                              RunState state) {
  // Runs are immortal (RunId indexes runs_ for the core's lifetime), so the
  // slab slot is always freshly default-constructed — only the scalar fields
  // need setting.
  Run& r = run_slab_.acquire();
  r.id = static_cast<RunId>(runs_.size());
  r.phase = phase;
  r.node = node;
  r.state = state;
  r.total = phase == kNoPhase ? 0 : program_.phase(phase).granules;
  runs_.push_back(&r);
  emit({ExecEvent::Kind::kRunCreated, r.id, r.phase, {0, r.total}, {}});
  return r;
}

Descriptor& ExecutiveCore::make_desc(Run& r, GranuleRange range, Priority prio) {
  Descriptor& d = pool_.acquire(r.id, r.phase, range, prio);
  d.live_index = static_cast<std::uint32_t>(r.live.size());
  r.live.push_back(&d);
  return d;
}

void ExecutiveCore::retire_desc(Descriptor& d) {
  Run& r = run_of(d.run);
  if (r.merge_tail == &d) r.merge_tail = nullptr;
  const std::uint32_t i = d.live_index;
  PAX_DCHECK(i < r.live.size() && r.live[i] == &d);
  r.live[i] = r.live.back();
  r.live[i]->live_index = i;
  r.live.pop_back();
  pool_.release(d);
}

void ExecutiveCore::enqueue_enabled(Run& succ, GranuleRange range, Priority prio) {
  // Merge with the run's most recent still-waiting descriptor when the new
  // range extends it ("merged back into single descriptions"): scattered
  // enablements would otherwise fragment the queue into granule-sized
  // descriptors and defeat the grain.
  Descriptor* tail = succ.merge_tail;
  if (tail != nullptr && tail->state == DescState::kWaiting &&
      tail->run == succ.id && tail->priority == prio &&
      tail->range.hi == range.lo && tail->conflict_queue.empty() &&
      tail->pending_split == nullptr) {
    tail->range.hi = range.hi;
    emit({ExecEvent::Kind::kGranulesEnabled, succ.id, succ.phase, range, {}});
    return;
  }
  Descriptor& d = make_desc(succ, range, prio);
  waiting_.enqueue(d);
  succ.merge_tail = &d;
  emit({ExecEvent::Kind::kGranulesEnabled, succ.id, succ.phase, range, {}});
}

// ---------------------------------------------------------------------------
// Split propagation and deferred successor-splitting tasks

void ExecutiveCore::propagate_split(Descriptor& parent, Descriptor& piece) {
  // `piece` was carved as a prefix of `parent`'s former range. Any queued
  // successor description tracking `parent` must be split so that "each
  // queued description will accurately reflect the enablement relationship".
  if (parent.conflict_queue.empty()) return;

  if (config_.split_policy == SplitPolicy::kDeferred) {
    // Detach the tracked successor into a successor-splitting task.
    Descriptor* s = parent.conflict_queue.front();
    PAX_CHECK_MSG(parent.conflict_queue.size() == 1,
                  "deferred split supports one tracked successor per descriptor");
    PAX_CHECK(s->tracks_owner);
    decltype(parent.conflict_queue)::remove(*s);
    s->state = DescState::kHeld;
    SplitTask& task = split_slab_.acquire();  // recycled slot: reset all fields
    task.held = s;
    task.chunk = &piece;
    task.remainder = &parent;
    task.done = false;
    piece.pending_split = as_tag(&task);
    parent.pending_split = as_tag(&task);
    split_tasks_.push_back(&task);
    return;
  }

  // Inline (and the presplit fallback): split each tracked successor now.
  parent.conflict_queue.for_each([&](Descriptor& s) {
    if (!s.tracks_owner) return;
    PAX_CHECK(s.range.lo == piece.range.lo);
    PAX_CHECK(s.range.hi == parent.range.hi);
    Run& srun = run_of(s.run);
    Descriptor& sa = make_desc(srun, piece.range, s.priority);
    sa.tracks_owner = true;
    sa.state = DescState::kConflicted;
    piece.conflict_queue.push_back(sa);
    s.range.lo = piece.range.hi;
    ledger_.charge(MgmtOp::kSuccessorSplit, costs_);
  });
}

void ExecutiveCore::force_pending_split(Descriptor& d) {
  auto* task = reinterpret_cast<SplitTask*>(d.pending_split);
  if (task == nullptr || task->done) {
    d.pending_split = nullptr;
    return;
  }
  Descriptor* s = task->held;
  Descriptor* chunk = task->chunk;
  Descriptor* rem = task->remainder;
  PAX_CHECK(s && chunk && rem);
  PAX_CHECK(s->range.lo == chunk->range.lo);
  PAX_CHECK(chunk->range.hi == rem->range.lo);
  PAX_CHECK(s->range.hi == rem->range.hi);

  Run& srun = run_of(s->run);
  Descriptor& sa = make_desc(srun, chunk->range, s->priority);
  sa.tracks_owner = true;
  sa.state = DescState::kConflicted;
  chunk->conflict_queue.push_back(sa);

  s->range.lo = chunk->range.hi;
  s->state = DescState::kConflicted;
  rem->conflict_queue.push_back(*s);

  chunk->pending_split = nullptr;
  rem->pending_split = nullptr;
  task->done = true;
  ledger_.charge(MgmtOp::kSuccessorSplit, costs_);
}

// ---------------------------------------------------------------------------
// Carving

Descriptor& ExecutiveCore::carve(Descriptor& d, GranuleRange piece) {
  PAX_CHECK(piece.lo >= d.range.lo && piece.hi <= d.range.hi && !piece.empty());
  // Any deferred task touching this descriptor is resolved before its range
  // changes again.
  if (d.pending_split != nullptr) force_pending_split(d);

  Run& r = run_of(d.run);

  if (piece == d.range) {
    if (d.wait_hook.linked()) waiting_.remove(d);
    return d;
  }

  ledger_.charge(MgmtOp::kSplit, costs_);

  if (piece.lo == d.range.lo) {
    // Prefix carve: d keeps its queue position as the remainder.
    Descriptor& p = make_desc(r, piece, d.priority);
    d.range.lo = piece.hi;
    propagate_split(d, p);
    return p;
  }

  // Interior/suffix carves are only used on descriptors without tracked
  // successors (see executive.hpp commentary); checked here.
  PAX_CHECK_MSG(d.conflict_queue.empty(),
                "interior carve on a descriptor with tracked successors");

  if (piece.hi == d.range.hi) {
    Descriptor& p = make_desc(r, piece, d.priority);
    d.range.hi = piece.lo;
    return p;
  }

  // Interior: d keeps [lo, piece.lo); a new tail descriptor covers
  // [piece.hi, hi) and sits immediately after d so queue order is preserved.
  Descriptor& tail = make_desc(r, {piece.hi, d.range.hi}, d.priority);
  Descriptor& p = make_desc(r, piece, d.priority);
  d.range.hi = piece.lo;
  if (d.wait_hook.linked()) {
    waiting_.insert_after(d, tail);
  } else {
    waiting_.enqueue(tail);
  }
  ledger_.charge(MgmtOp::kSplit, costs_);
  return p;
}

// ---------------------------------------------------------------------------
// Worker protocol

void ExecutiveCore::start() {
  PAX_CHECK_MSG(!started_, "start() called twice");
  started_ = true;
  program_.verify();
  advance_program();
}

std::optional<Assignment> ExecutiveCore::request_work(WorkerId) {
  PAX_CHECK_MSG(started_, "request_work before start");
  if (stop_requested_) return std::nullopt;  // cancelled: no new handouts
  ledger_.charge(MgmtOp::kRequestWork, costs_);
  if (waiting_.empty() && !retry_queue_.empty()) {
    // Nothing else to do: fast-forward the backoff clock to the earliest
    // parked retry. Backoff defers retries relative to other progress; an
    // otherwise-idle machine retries immediately (and never deadlocks on a
    // backoff interval nobody is left to pump).
    std::uint64_t min_tick = retry_queue_.front().ready_tick;
    for (const RetryEntry& e : retry_queue_)
      min_tick = std::min(min_tick, e.ready_tick);
    fault_tick_ = std::max(fault_tick_, min_tick);
    flush_retries();
  }
  Descriptor* d = waiting_.peek();
  if (d == nullptr) return std::nullopt;
  if (d->pending_split != nullptr) force_pending_split(*d);

  // One relaxed load per request: the steal-rate signal may update the limit
  // concurrently (it is the only unlocked writer); a torn view across two
  // loads could carve a piece wider than the cap.
  const GranuleId limit = grain_limit_.load(std::memory_order_relaxed);
  Descriptor* task;
  if (d->range.size() <= limit) {
    waiting_.remove(*d);
    task = d;
  } else {
    task = &carve(*d, {d->range.lo, d->range.lo + limit});
  }
  task->state = DescState::kAssigned;

  Ticket t;
  if (!free_tickets_.empty()) {
    t = free_tickets_.back();
    free_tickets_.pop_back();
    assignments_[t] = task;
  } else {
    t = static_cast<Ticket>(assignments_.size());
    assignments_.push_back(task);
  }
  return Assignment{t, task->run, task->phase, task->range, task->priority};
}

std::size_t ExecutiveCore::request_work_batch(WorkerId worker, std::size_t max_n,
                                              std::vector<Assignment>& out) {
  std::size_t got = 0;
  while (got < max_n) {
    std::optional<Assignment> a = request_work(worker);
    if (!a.has_value()) break;
    out.push_back(*a);
    ++got;
  }
  return got;
}

void ExecutiveCore::release_conflicts(Descriptor& d) {
  d.conflict_queue.drain([&](Descriptor& s) {
    // Identity-successor pieces queue behind the remaining current-phase
    // work so they fill the rundown tail; dynamically submitted conflicting
    // computations take the elevated lane the paper gives them.
    const bool successor_piece = s.tracks_owner;
    s.tracks_owner = false;
    s.priority = (!successor_piece || config_.elevate_released)
                     ? Priority::kElevated
                     : Priority::kNormal;
    waiting_.enqueue(s);
    ledger_.charge(MgmtOp::kConflictRelease, costs_);
    emit({ExecEvent::Kind::kGranulesEnabled, s.run, s.phase, s.range, {}});
  });
}

void ExecutiveCore::complete_one(Ticket ticket, CompletionResult& res) {
  PAX_CHECK(ticket < assignments_.size() && assignments_[ticket] != nullptr);
  Descriptor* d = assignments_[ticket];
  assignments_[ticket] = nullptr;
  free_tickets_.push_back(ticket);
  PAX_CHECK(d->state == DescState::kAssigned);

  ledger_.charge(MgmtOp::kCompletion, costs_);
  if (d->pending_split != nullptr) force_pending_split(*d);

  Run& r = run_of(d->run);
  r.completed.insert(d->range);
  r.completed_count += d->range.size();

  // Release conflict-queued successors of this piece.
  release_conflicts(*d);

  // Indirect enablement: decrement counters for participating granules.
  if (r.outgoing != nullptr && !r.outgoing->dead && r.outgoing->cmap != nullptr) {
    CompositeGranuleMap& m = *r.outgoing->cmap;
    Workspace& ws = *ws_;
    ws.newly.clear();
    std::uint64_t updates = 0;
    for (GranuleId g = d->range.lo; g < d->range.hi; ++g)
      updates += m.on_complete(g, ws.newly);
    if (updates > 0) ledger_.charge(MgmtOp::kCounterUpdate, costs_, updates);
    if (!ws.newly.empty()) {
      DeferredEnable& slot = ws.slot_for(r.outgoing->succ);
      slot.newly.insert(slot.newly.end(), ws.newly.begin(), ws.newly.end());
    }
  }

  retire_desc(*d);

  if (r.completed_count == r.total) {
    // A run completion can advance the program counter, and dispatch-time
    // overlap setup assumes every enabled successor granule is materialised
    // as a descriptor — so flush the batch's pending enablements first.
    flush_deferred();
    on_run_complete(r);
    res.run_completed = true;
  }
}

void ExecutiveCore::flush_deferred() {
  Workspace& ws = *ws_;
  const Priority prio =
      config_.elevate_released ? Priority::kElevated : Priority::kNormal;
  for (std::size_t i = 0; i < ws.deferred_n; ++i) {
    DeferredEnable& de = ws.deferred[i];
    std::sort(de.newly.begin(), de.newly.end());
    de.newly.erase(std::unique(de.newly.begin(), de.newly.end()), de.newly.end());
    Run& succ = run_of(de.succ);
    coalesce_sorted_into(de.newly, ws.ranges);
    for (const GranuleRange& range : ws.ranges) enqueue_enabled(succ, range, prio);
  }
  ws.deferred_n = 0;
}

CompletionResult ExecutiveCore::complete(Ticket ticket) {
  return complete_batch({&ticket, 1});
}

CompletionResult ExecutiveCore::complete_batch(std::span<const Ticket> tickets) {
  CompletionResult res;
  const std::size_t waiting_before = waiting_.size();
  PAX_DCHECK(ws_->deferred_n == 0);
  for (const Ticket t : tickets) complete_one(t, res);
  flush_deferred();
  if (!retry_queue_.empty()) {
    ++fault_tick_;  // completion batches are the backoff clock
    flush_retries();
  }
  maybe_finish_stopped();
  res.new_work = waiting_.size() > waiting_before;
  res.program_finished = finished_;
  return res;
}

void ExecutiveCore::recycle_edge(Edge& e) {
  PAX_DCHECK(e.dead);
  // Drop any stale idle-time build reference before the slot can be reused
  // by a later overlap edge.
  std::erase(pending_map_builds_, &e);
  if (e.cmap != nullptr) {
    cmap_slab_.release(*e.cmap);  // next edge reuses its counter/CSR buffers
    e.cmap = nullptr;
  }
  edge_slab_.release(e);
}

void ExecutiveCore::on_run_complete(Run& r) {
  PAX_CHECK(r.state != RunState::kComplete);
  PAX_CHECK(r.completed.fragments() == 1 || r.total == 0);
  r.state = RunState::kComplete;
  emit({ExecEvent::Kind::kRunCompleted, r.id, r.phase, {0, r.total}, {}});

  // Release dynamically submitted conflicting computations: "placed ahead
  // of the normal computations in the queue and, thus, given higher
  // priority".
  r.barrier.drain([&](Descriptor& s) {
    s.priority = Priority::kElevated;
    waiting_.enqueue(s);
    ledger_.charge(MgmtOp::kConflictRelease, costs_);
    emit({ExecEvent::Kind::kGranulesEnabled, s.run, s.phase, s.range, {}});
  });

  // Finish off the outgoing overlap edge, if any.
  if (r.outgoing != nullptr && !r.outgoing->dead) {
    Edge& e = *r.outgoing;
    Run& succ = run_of(e.succ);
    if (e.cmap != nullptr) {
      PAX_CHECK_MSG(e.cmap->outstanding() == 0,
                    "counters outstanding after current phase completion");
      // Successor granules outside the solved subset become computable now.
      const auto& untracked = e.cmap->untracked_successors();
      if (!untracked.empty()) {
        coalesce_sorted_into(untracked, ws_->ranges);
        for (const GranuleRange& range : ws_->ranges)
          enqueue_enabled(succ, range, Priority::kNormal);
      }
    } else if (e.kind == MappingKind::kReverseIndirect ||
               e.kind == MappingKind::kForwardIndirect) {
      // The executive never found idle time to build the map; the successor
      // releases wholesale now (overlap simply did not materialise).
      if (succ.total > 0) enqueue_enabled(succ, {0, succ.total}, Priority::kNormal);
    }
    e.dead = true;
    succ.incoming = nullptr;
    r.outgoing = nullptr;
    recycle_edge(e);
  }

  if (waiting_run_ == r.id) {
    waiting_run_ = kNoRun;
    advance_program();
  }
}

bool ExecutiveCore::idle_work() {
  if (stop_requested_) return false;  // cancelled: no speculative work
  // 0. Composite granule maps awaiting construction — one bounded slice per
  //    call so worker requests interleave with the build.
  while (!pending_map_builds_.empty()) {
    Edge* e = pending_map_builds_.front();
    if (e->dead || e->cmap != nullptr) {
      pending_map_builds_.erase(pending_map_builds_.begin());
      continue;
    }
    if (map_build_step(*e)) pending_map_builds_.erase(pending_map_builds_.begin());
    return true;
  }

  // 1. Deferred successor-splitting tasks ("quickly queued for later
  //    attention when the executive would again be idle"). Retired slots go
  //    back to the slab for reuse.
  while (!split_tasks_.empty() && split_tasks_.front()->done) {
    split_slab_.release(*split_tasks_.front());
    split_tasks_.erase(split_tasks_.begin());
  }
  if (!split_tasks_.empty()) {
    SplitTask* t = split_tasks_.front();
    force_pending_split(*t->chunk);
    split_slab_.release(*t);
    split_tasks_.erase(split_tasks_.begin());
    return true;
  }

  // 2. Presplitting: carve grain-size pieces ahead of worker requests so the
  //    request path needs no split at all.
  if (config_.split_policy == SplitPolicy::kPresplit) {
    Descriptor* victim = nullptr;
    waiting_.for_each([&](Descriptor& d) {
      if (victim == nullptr && d.range.size() > config_.grain) victim = &d;
    });
    if (victim != nullptr) {
      Descriptor& piece =
          carve(*victim, {victim->range.lo, victim->range.lo + config_.grain});
      waiting_.insert_before(*victim, piece);
      return true;
    }
  }
  return false;
}

void ExecutiveCore::request_stop() {
  if (finished_ || stop_requested_) return;
  stop_requested_ = true;
  maybe_finish_stopped();
}

void ExecutiveCore::abandon(Ticket ticket) {
  PAX_CHECK(ticket < assignments_.size() && assignments_[ticket] != nullptr);
  PAX_CHECK_MSG(stop_requested_, "abandon outside a stop");
  Descriptor* d = assignments_[ticket];
  assignments_[ticket] = nullptr;
  free_tickets_.push_back(ticket);
  PAX_CHECK(d->state == DescState::kAssigned);
  // The granules were never executed: no run-completion accounting and no
  // enablement decrements. Split linkage and conflict queues still unwind so
  // no descriptor leaks — released successors land in waiting_, where the
  // stop gate keeps them from ever being handed out.
  if (d->pending_split != nullptr) force_pending_split(*d);
  release_conflicts(*d);
  retire_desc(*d);
  maybe_finish_stopped();
}

void ExecutiveCore::maybe_finish_stopped() {
  if (!stop_requested_ || finished_) return;
  if (assignments_.size() != free_tickets_.size()) return;  // tickets in flight
  finished_ = true;
  emit({ExecEvent::Kind::kProgramFinished, kNoRun, kNoPhase, {},
        faulted_ ? "faulted" : "cancelled"});
}

std::uint32_t ExecutiveCore::bump_fault_attempts(Run& r, GranuleRange range) {
  FaultAttempts* fa = nullptr;
  for (FaultAttempts& e : fault_attempts_)
    if (e.run == r.id) fa = &e;
  if (fa == nullptr) {
    fault_attempts_.push_back({r.id, {}});
    fa = &fault_attempts_.back();
  }
  // Anonymous conflicting runs carry ranges not based at 0, so size the
  // table to the range bound, not the run total.
  if (fa->per_granule.size() < range.hi) fa->per_granule.resize(range.hi, 0);
  std::uint32_t attempt = 0;
  for (GranuleId g = range.lo; g < range.hi; ++g)
    attempt = std::max(attempt, ++fa->per_granule[g]);
  return attempt;
}

void ExecutiveCore::note_first_fault(PhaseId phase, GranuleRange range,
                                     const char* what) {
  if (fault_stats_.first_what[0] != '\0' || fault_stats_.first_phase != kNoPhase)
    return;
  fault_stats_.first_phase = phase;
  fault_stats_.first_range = range;
  std::size_t i = 0;
  for (; what != nullptr && what[i] != '\0' &&
         i + 1 < sizeof(fault_stats_.first_what);
       ++i)
    fault_stats_.first_what[i] = what[i];
  fault_stats_.first_what[i] = '\0';
}

void ExecutiveCore::flush_retries() {
  if (retry_queue_.empty() || stop_requested_) return;
  std::size_t w = 0;
  for (std::size_t i = 0; i < retry_queue_.size(); ++i) {
    const RetryEntry e = retry_queue_[i];
    if (e.ready_tick <= fault_tick_) {
      waiting_.enqueue(*e.desc);
      emit({ExecEvent::Kind::kGranulesEnabled, e.desc->run, e.desc->phase,
            e.desc->range, "retry"});
    } else {
      retry_queue_[w++] = e;
    }
  }
  retry_queue_.resize(w);
}

void ExecutiveCore::note_map_fault(Edge& edge, const char* what) {
  ++fault_stats_.map_faults;
  Run& succ = run_of(edge.succ);
  note_first_fault(succ.phase, {0, succ.total}, what);
  edge.build_pairs.clear();
  edge.build_cursor = 0;
  diagnose(std::string("enablement map callback threw ('") +
           (what != nullptr ? what : "?") +
           "'); overlap degraded to wholesale release for phase " +
           std::to_string(succ.phase));
}

CompletionResult ExecutiveCore::fail(const GranuleFault& f) {
  CompletionResult res;
  const std::size_t waiting_before = waiting_.size();
  PAX_CHECK(f.ticket < assignments_.size() && assignments_[f.ticket] != nullptr);
  Descriptor* d = assignments_[f.ticket];
  assignments_[f.ticket] = nullptr;
  free_tickets_.push_back(f.ticket);
  PAX_CHECK(d->state == DescState::kAssigned);

  ++fault_stats_.faults;
  note_first_fault(d->phase, d->range, f.what);
  Run& r = run_of(d->run);

  if (!stop_requested_) {
    const std::uint32_t attempt = bump_fault_attempts(r, d->range);
    if (attempt <= config_.max_granule_retries) {
      // Park the descriptor itself for retry: its conflict queue (tracked
      // successors) stays attached, so successor releases still require a
      // real completion of this range.
      ++fault_stats_.retries;
      fault_stats_.retried_granules += d->range.size();
      d->state = DescState::kHeld;
      const std::uint64_t shift = attempt > 0 ? attempt - 1 : 0;
      const std::uint64_t delay =
          static_cast<std::uint64_t>(config_.retry_backoff_ticks) << shift;
      retry_queue_.push_back({d, fault_tick_ + delay});
      res.new_work = waiting_.size() > waiting_before;
      res.program_finished = finished_;
      return res;
    }
    // Retry budget exhausted: the granules are poisoned and the run can
    // never complete — the dataflow is unsatisfiable. Enter the faulted
    // terminal through the stop machinery (freeze the program counter, no
    // new handouts, finish when outstanding tickets drain).
    fault_stats_.poisoned += d->range.size();
    faulted_ = true;
    stop_requested_ = true;
    diagnose("granule fault poisoned after retry budget: phase " +
             std::to_string(d->phase) + " [" + std::to_string(d->range.lo) +
             "," + std::to_string(d->range.hi) + ") — " + f.what);
  }

  // Poisoned (or failed after a stop was already requested): unwind exactly
  // like abandon() — split linkage and conflict queues unwind so nothing
  // leaks; released successors land behind the stop gate.
  if (d->pending_split != nullptr) force_pending_split(*d);
  release_conflicts(*d);
  retire_desc(*d);
  maybe_finish_stopped();
  res.new_work = waiting_.size() > waiting_before;
  res.program_finished = finished_;
  return res;
}

void ExecutiveCore::submit_conflicting(RunId blocker, PhaseId phase,
                                       GranuleRange range) {
  Run& b = run_of(blocker);
  Run& anon = create_run(phase, Run::kNoNode, RunState::kOpen);
  anon.total = range.size();
  Descriptor& d = make_desc(anon, range, Priority::kNormal);
  if (b.state == RunState::kComplete) {
    // Blocker already done; computable immediately.
    waiting_.enqueue(d);
    emit({ExecEvent::Kind::kGranulesEnabled, d.run, d.phase, d.range, {}});
    return;
  }
  d.state = DescState::kConflicted;
  b.barrier.push_back(d);
}

// ---------------------------------------------------------------------------
// Program advance, lookahead, overlap setup

void ExecutiveCore::advance_program() {
  // A stop request freezes the program counter: no further serial nodes,
  // branches, or dispatches run for a cancelled program. finished_ flips
  // via maybe_finish_stopped() once outstanding tickets drain instead.
  if (stop_requested_) return;
  while (!finished_) {
    const ProgramNode& n = program_.node(pc_);
    if (const auto* d = std::get_if<DispatchNode>(&n)) {
      const std::uint32_t node_index = pc_;
      process_dispatch(node_index, *d);
      ++pc_;
      Run& r = run_of(node_pc_run_);
      if (r.state != RunState::kComplete) {
        waiting_run_ = r.id;
        return;
      }
      continue;
    }
    if (const auto* s = std::get_if<SerialNode>(&n)) {
      if (serial_done_early_[pc_]) {
        serial_done_early_[pc_] = 0;  // consumed; executed during lookahead
      } else {
        run_serial(pc_, *s);
      }
      ++pc_;
      continue;
    }
    if (const auto* b = std::get_if<BranchNode>(&n)) {
      std::size_t arm;
      if (branch_predecided_[pc_] >= 0) {
        arm = static_cast<std::size_t>(branch_predecided_[pc_]);
        branch_predecided_[pc_] = -1;
      } else {
        arm = b->selector(env_);
        ledger_.charge(MgmtOp::kBranchPreprocess, costs_);
      }
      PAX_CHECK(arm < b->targets.size());
      emit({ExecEvent::Kind::kBranchTaken, kNoRun, kNoPhase, {}, b->name});
      pc_ = b->targets[arm];
      continue;
    }
    PAX_CHECK(std::holds_alternative<HaltNode>(n));
    finished_ = true;
    emit({ExecEvent::Kind::kProgramFinished, kNoRun, kNoPhase, {}, {}});
    return;
  }
}

void ExecutiveCore::process_dispatch(std::uint32_t node_index, const DispatchNode& d) {
  Run* r;
  if (node_pending_run_[node_index] != kNoRun) {
    r = &run_of(node_pending_run_[node_index]);
    node_pending_run_[node_index] = kNoRun;
    if (r->state == RunState::kPending) r->state = RunState::kOpen;
    emit({ExecEvent::Kind::kRunOpened, r->id, r->phase, {0, r->total}, {}});
  } else {
    r = &create_run(d.phase, node_index, RunState::kOpen);
    ledger_.charge(MgmtOp::kPhaseInit, costs_);
    Descriptor& root = make_desc(*r, {0, r->total}, Priority::kNormal);
    waiting_.enqueue(root);
    emit({ExecEvent::Kind::kGranulesEnabled, r->id, r->phase, root.range, {}});
  }
  // When the run already finished during its overlap window, setup_overlap
  // reduces to verification-only lookahead (it returns after the interlock
  // check); otherwise it establishes the overlap edge to the successor.
  if (config_.overlap) setup_overlap(*r, d);
  node_pc_run_ = r->id;
}

std::optional<std::uint32_t> ExecutiveCore::lookahead(std::uint32_t from) {
  std::uint32_t j = from;
  std::size_t steps = 0;
  while (steps++ < program_.size() + 1) {
    if (j >= program_.size()) return std::nullopt;
    const ProgramNode& n = program_.node(j);
    if (std::holds_alternative<DispatchNode>(n)) return j;
    if (const auto* s = std::get_if<SerialNode>(&n)) {
      if (!(config_.early_serial && !s->conflicts_with_prev)) return std::nullopt;
      if (!serial_done_early_[j]) {
        // "Extended effort": the serial action does not touch the previous
        // phase's data, so the executive runs it early and keeps looking.
        run_serial(j, *s);
        serial_done_early_[j] = 1;
      }
      ++j;
      continue;
    }
    if (const auto* b = std::get_if<BranchNode>(&n)) {
      if (!(config_.branch_preprocess && b->phase_independent)) return std::nullopt;
      std::size_t arm;
      if (branch_predecided_[j] >= 0) {
        arm = static_cast<std::size_t>(branch_predecided_[j]);
      } else {
        arm = b->selector(env_);
        PAX_CHECK(arm < b->targets.size());
        branch_predecided_[j] = static_cast<std::int32_t>(arm);
        ledger_.charge(MgmtOp::kBranchPreprocess, costs_);
      }
      j = b->targets[arm];
      continue;
    }
    return std::nullopt;  // Halt
  }
  return std::nullopt;  // branch cycle with no dispatch
}

void ExecutiveCore::setup_overlap(Run& cur, const DispatchNode& d) {
  if (d.enables.empty()) return;
  const auto succ_node = lookahead(pc_ + 1);
  if (!succ_node) return;
  const auto& sd = std::get<DispatchNode>(program_.node(*succ_node));
  const PhaseSpec& sspec = program_.phase(sd.phase);

  const EnableClause* clause = nullptr;
  for (const auto& c : d.enables)
    if (c.successor_name == sspec.name) clause = &c;
  if (clause == nullptr) {
    // The interlock the paper asks for: the ENABLE statement names phases,
    // and the executive verifies that the named phase actually follows.
    diagnose("ENABLE clause does not name the following phase '" + sspec.name +
             "' after phase '" + program_.phase(cur.phase).name +
             "'; overlap suppressed");
    return;
  }
  if (clause->kind == MappingKind::kNull) return;
  if (cur.state == RunState::kComplete) return;
  if (node_pending_run_[*succ_node] != kNoRun) return;  // already set up

  Run& succ = create_run(sd.phase, *succ_node, RunState::kPending);
  node_pending_run_[*succ_node] = succ.id;
  ledger_.charge(MgmtOp::kPhaseInit, costs_);

  // Slab-recycled slot: reset every field (build_pairs keeps its capacity).
  Edge& edge = edge_slab_.acquire();
  edge.cur = cur.id;
  edge.succ = succ.id;
  edge.kind = clause->kind;
  edge.clause = nullptr;
  PAX_DCHECK(edge.cmap == nullptr);
  edge.dead = false;
  edge.build_cursor = 0;
  edge.build_pairs.clear();
  cur.outgoing = &edge;
  succ.incoming = &edge;

  emit({ExecEvent::Kind::kOverlapSetUp, succ.id, succ.phase, {0, succ.total},
        to_string(clause->kind)});

  switch (clause->kind) {
    case MappingKind::kUniversal:
      setup_universal(cur, succ);
      break;
    case MappingKind::kIdentity:
      setup_identity(cur, succ);
      break;
    case MappingKind::kReverseIndirect:
    case MappingKind::kForwardIndirect:
      setup_indirect(cur, succ, *clause, edge);
      break;
    case MappingKind::kNull:
      break;
  }
}

void ExecutiveCore::setup_universal(Run&, Run& succ) {
  // "At the time of phase initiation, the successor phase is also initiated
  // and the resulting computation description placed in the waiting
  // computation queue behind the current phase description."
  Descriptor& root = make_desc(succ, {0, succ.total}, Priority::kNormal);
  waiting_.enqueue(root);
  emit({ExecEvent::Kind::kGranulesEnabled, succ.id, succ.phase, root.range, {}});
}

void ExecutiveCore::setup_identity(Run& cur, Run& succ) {
  PAX_CHECK_MSG(cur.total == succ.total,
                "identity mapping requires equal granule counts");
  // Successor granules whose current counterparts have already completed
  // (the current run may itself have been overlapped) are computable now.
  const Priority prio =
      config_.elevate_released ? Priority::kElevated : Priority::kNormal;
  for (const GranuleRange& range : cur.completed.ranges())
    enqueue_enabled(succ, range, prio);

  // "At the time of phase initiation, the successor phase is also initiated
  // and the resulting computation description placed in the conflicted
  // computation queue of the current phase description."
  // Live current descriptors partition the un-completed granules; each gets
  // a tracking successor piece on its conflict queue. Index iteration over a
  // snapshot length: make_desc appends to succ.live, never to cur.live.
  const std::size_t n_live = cur.live.size();
  for (std::size_t i = 0; i < n_live; ++i) {
    Descriptor* L = cur.live[i];
    if (L->state != DescState::kWaiting && L->state != DescState::kAssigned) continue;
    Descriptor& piece = make_desc(succ, L->range, Priority::kNormal);
    piece.tracks_owner = true;
    piece.state = DescState::kConflicted;
    L->conflict_queue.push_back(piece);
    ledger_.charge(MgmtOp::kSuccessorSplit, costs_);
  }
}

void ExecutiveCore::setup_indirect(Run& cur, Run& succ, const EnableClause& clause,
                                   Edge& edge) {
  edge.clause = &clause;
  (void)cur;
  (void)succ;
  if (config_.defer_map_build) {
    // "Get the current phase into execution without the delay of
    // constructing the necessary information for enabling successor
    // computations": the map is built in executive idle time.
    pending_map_builds_.push_back(&edge);
    return;
  }
  materialize_map(edge);
}

void ExecutiveCore::materialize_map(Edge& edge) {
  while (!map_build_step(edge)) {
  }
}

bool ExecutiveCore::map_build_step(Edge& edge) {
  PAX_CHECK(edge.clause != nullptr && edge.cmap == nullptr && !edge.dead);
  const EnableClause& clause = *edge.clause;
  Run& cur = run_of(edge.cur);
  Run& succ = run_of(edge.succ);
  Workspace& ws = *ws_;

  // Optional successor subset: solve the enablement problem only for the
  // first N successor granules (0 = solve everything).
  const GranuleId subset_count =
      (config_.indirect_subset > 0 && config_.indirect_subset < succ.total)
          ? config_.indirect_subset
          : 0;

  const bool reverse = clause.kind == MappingKind::kReverseIndirect;
  // Source domain walked by the builder: the successor granules to solve
  // (reverse direction) or every current granule (forward direction).
  const GranuleId domain =
      reverse ? (subset_count > 0 ? subset_count : succ.total) : cur.total;

  ws.map_newly.clear();
  bool finished = false;

  if (clause.indirection.stable) {
    // Static enablement relation: reuse the cached map, paying only a
    // (vectorised) counter reset.
    CachedMap* cached = nullptr;
    for (CachedMap* c : map_cache_)
      if (c->clause == &clause) cached = c;
    if (cached != nullptr) {
      ledger_.charge(MgmtOp::kMapReset, costs_, (cached->entries + 15) / 16);
      edge.cmap = &cmap_slab_.acquire();
      *edge.cmap = cached->pristine;  // copy-assign: recycled buffers reused
      ws.map_newly.assign(cached->initially_enabled.begin(),
                          cached->initially_enabled.end());
      finished = true;
    }
  }

  if (!finished) {
    // One bounded slice of map construction (at most ~map_build_quantum
    // entries), so the serial executive stays responsive to worker requests
    // while it works ahead.
    std::uint64_t added = 0;
    std::vector<GranuleId>& out = ws.map_out;
    while (edge.build_cursor < domain && added < config_.map_build_quantum) {
      const GranuleId i = edge.build_cursor++;
      out.clear();
      // Exception barrier for user enablement callbacks: a throwing
      // GranuleMapFn degrades this edge to wholesale release at completion
      // instead of killing the process (the map stays unbuilt, which
      // on_run_complete already handles as "never found idle time").
      // note_map_fault must copy e.what() INSIDE the catch — the pointer
      // dangles once the handler destroys the exception object.
      try {
        if (reverse) {
          clause.indirection.requires_of(i, out);
        } else {
          clause.indirection.enables_of(i, out);
        }
      } catch (const std::exception& e) {
        note_map_fault(edge, e.what());
        return true;  // build over; edge degraded, cmap stays null
      } catch (...) {
        note_map_fault(edge, "unknown exception in GranuleMapFn");
        return true;
      }
      if (reverse) {
        for (GranuleId p : out) {
          edge.build_pairs.emplace_back(p, i);
          ++added;
        }
      } else {
        for (GranuleId r : out) {
          edge.build_pairs.emplace_back(i, r);
          ++added;
        }
      }
    }
    if (added > 0) ledger_.charge(MgmtOp::kMapBuildEntry, costs_, added);
    if (edge.build_cursor < domain) return false;  // more slices to go

    std::optional<std::vector<GranuleId>> subset;
    if (subset_count > 0) {
      std::vector<GranuleId> ids(subset_count);
      for (GranuleId i = 0; i < subset_count; ++i) ids[i] = i;
      subset = std::move(ids);
    }
    CompositeBuild built = CompositeGranuleMap::build_from_pairs(
        cur.total, succ.total, std::move(edge.build_pairs), subset);
    edge.build_pairs.clear();
    if (clause.indirection.stable) {
      CachedMap& entry = cache_slab_.acquire();
      entry.clause = &clause;
      entry.pristine = built.map;
      entry.initially_enabled = built.initially_enabled;
      entry.entries = built.entries;
      map_cache_.push_back(&entry);
    }
    edge.cmap = &cmap_slab_.acquire();
    *edge.cmap = std::move(built.map);
    ws.map_newly.assign(built.initially_enabled.begin(),
                        built.initially_enabled.end());
  }

  CompositeGranuleMap& m = *edge.cmap;

  // Replay granules the current run completed before the map existed.
  std::uint64_t updates = 0;
  for (const GranuleRange& range : cur.completed.ranges())
    for (GranuleId g = range.lo; g < range.hi; ++g)
      updates += m.on_complete(g, ws.map_newly);
  if (updates > 0) ledger_.charge(MgmtOp::kCounterUpdate, costs_, updates);

  const Priority prio =
      config_.elevate_released ? Priority::kElevated : Priority::kNormal;
  if (!ws.map_newly.empty()) {
    std::sort(ws.map_newly.begin(), ws.map_newly.end());
    ws.map_newly.erase(std::unique(ws.map_newly.begin(), ws.map_newly.end()),
                       ws.map_newly.end());
    coalesce_sorted_into(ws.map_newly, ws.ranges);
    for (const GranuleRange& range : ws.ranges)
      enqueue_enabled(succ, range, prio);
  }

  // "they should be split into individual descriptions and placed in the
  // waiting computation queue in such a manner as to elevate their
  // computational priority" — only meaningful with a successor subset;
  // without one every current granule participates and order is moot. The
  // elevation is bounded by the subset size: enabling the first successor
  // granules early needs only the earliest enabling granules, and carving
  // more individual descriptions than that is pure management waste.
  if (config_.elevate_enabling && subset_count > 0) {
    const auto& order = m.preferred_order();
    const std::size_t limit =
        std::min(order.size(), static_cast<std::size_t>(subset_count));
    extract_elevated(cur, std::span<const GranuleId>(order.data(), limit));
  }
  return true;
}

void ExecutiveCore::extract_elevated(Run& r, std::span<const GranuleId> order) {
  if (order.empty()) return;
  Workspace& ws = *ws_;

  // Locate every requested granule's hosting *waiting* descriptor via one
  // sorted snapshot (assigned/completed granules are already running or done
  // and need no elevation); a per-granule scan of the live list would be
  // quadratic in the number of fragments.
  std::vector<Descriptor*>& hosts = ws.hosts;
  hosts.clear();
  for (Descriptor* d : r.live)
    if (d->state == DescState::kWaiting && d->priority == Priority::kNormal)
      hosts.push_back(d);
  std::sort(hosts.begin(), hosts.end(), [](const Descriptor* a, const Descriptor* b) {
    return a->range.lo < b->range.lo;
  });

  auto host_of = [&](GranuleId g) -> Descriptor* {
    std::size_t lo = 0, hi = hosts.size();
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (hosts[mid]->range.hi <= g) {
        lo = mid + 1;
      } else if (hosts[mid]->range.lo > g) {
        hi = mid;
      } else {
        return hosts[mid];
      }
    }
    return nullptr;
  };

  // Group requested granules by host, ascending within each host. Hosts are
  // ordered by their (disjoint) range starts, NOT by pointer: descriptor
  // addresses vary run to run, and a pointer-ordered sort here made the
  // rebuild order — and with it the whole downstream schedule — depend on
  // heap layout (caught by the seeded stress harness as a sim run that was
  // not bit-reproducible).
  std::vector<std::pair<Descriptor*, GranuleId>>& grouped = ws.grouped;
  grouped.clear();
  for (GranuleId g : order) {
    if (r.completed.contains(g)) continue;
    Descriptor* host = host_of(g);
    if (host == nullptr) continue;  // assigned, elevated, or already carved
    grouped.emplace_back(host, g);
  }
  std::sort(grouped.begin(), grouped.end(),
            [](const std::pair<Descriptor*, GranuleId>& a,
               const std::pair<Descriptor*, GranuleId>& b) {
              if (a.first->range.lo != b.first->range.lo)
                return a.first->range.lo < b.first->range.lo;
              return a.second < b.second;
            });
  grouped.erase(std::unique(grouped.begin(), grouped.end()), grouped.end());

  // Rebuild each host: normal segments stay in the waiting queue, requested
  // granules become individual descriptors held for elevation. These hosts
  // carry no conflict waiters (only identity edges attach those, and a run
  // has a single outgoing edge — the indirect one being materialised).
  std::vector<std::pair<GranuleId, Descriptor*>>& carved = ws.carved;
  carved.clear();
  std::size_t i = 0;
  while (i < grouped.size()) {
    Descriptor* host = grouped[i].first;
    PAX_CHECK_MSG(host->conflict_queue.empty(),
                  "elevation host has tracked successors");
    if (host->pending_split != nullptr) force_pending_split(*host);
    const GranuleRange whole = host->range;
    GranuleId cursor = whole.lo;
    waiting_.remove(*host);
    while (i < grouped.size() && grouped[i].first == host) {
      const GranuleId g = grouped[i].second;
      ++i;
      if (g > cursor) {
        Descriptor& seg = make_desc(r, {cursor, g}, Priority::kNormal);
        waiting_.enqueue(seg);
        ledger_.charge(MgmtOp::kSplit, costs_);
      }
      Descriptor& piece = make_desc(r, {g, g + 1}, Priority::kNormal);
      piece.state = DescState::kHeld;  // parked until the enqueue pass below
      carved.emplace_back(g, &piece);
      ledger_.charge(MgmtOp::kSplit, costs_);
      cursor = g + 1;
    }
    if (cursor < whole.hi) {
      Descriptor& seg = make_desc(r, {cursor, whole.hi}, Priority::kNormal);
      waiting_.enqueue(seg);
    }
    retire_desc(*host);
  }

  // Enqueue the carved granules in the caller's preferred dispatch order.
  std::sort(carved.begin(), carved.end());
  std::vector<std::uint8_t>& used = ws.used;
  used.assign(carved.size(), 0);
  for (GranuleId g : order) {
    auto it = std::lower_bound(carved.begin(), carved.end(),
                               std::make_pair(g, static_cast<Descriptor*>(nullptr)));
    if (it == carved.end() || it->first != g) continue;
    const auto idx = static_cast<std::size_t>(it - carved.begin());
    if (used[idx]) continue;
    used[idx] = 1;
    Descriptor* piece = it->second;
    piece->priority = Priority::kElevated;
    waiting_.enqueue(*piece);
    emit({ExecEvent::Kind::kGranulesEnabled, piece->run, piece->phase, piece->range,
          "elevated"});
  }
}

void ExecutiveCore::run_serial(std::uint32_t node_index, const SerialNode& s) {
  ledger_.charge(MgmtOp::kSerialAction, costs_);
  if (s.sim_duration > 0) ledger_.charge_raw(MgmtOp::kSerialAction, s.sim_duration);
  if (s.action) s.action(env_);
  emit({ExecEvent::Kind::kSerialExecuted, kNoRun, kNoPhase, {}, s.name});
  (void)node_index;
}

// ---------------------------------------------------------------------------
// Introspection

std::vector<ExecutiveCore::RunInfo> ExecutiveCore::runs() const {
  std::vector<RunInfo> out;
  out.reserve(runs_.size());
  for (const Run* r : runs_)
    out.push_back({r->id, r->phase, r->node, r->state, r->total, r->completed_count});
  return out;
}

}  // namespace pax
