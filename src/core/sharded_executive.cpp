#include "core/sharded_executive.hpp"

#include <algorithm>
#include <chrono>

#include "common/check.hpp"

namespace pax {

namespace {

GranuleId max_phase_granules(const PhaseProgram& program) {
  GranuleId m = 0;
  for (std::size_t i = 0; i < program.phase_count(); ++i)
    m = std::max(m, program.phase(static_cast<PhaseId>(i)).granules);
  return m;
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Times one control-plane visit into the stats counters (relaxed: the
/// counters are read by unlocked snapshots, never used for synchronization).
/// Constructed BEFORE the mutex is taken: the span covers acquisition wait
/// plus hold, i.e. the serialization a worker actually experiences at the
/// control plane — the quantity sharding exists to remove (a pure-hold
/// measure would credit neither queueing nor cache bouncing).
class ControlTimer {
 public:
  explicit ControlTimer(ShardStats& stats) : stats_(stats), t0_(now_ns()) {
    stats_.control_acquisitions.fetch_add(1, std::memory_order_relaxed);
  }
  ~ControlTimer() {
    stats_.control_hold_ns.fetch_add(now_ns() - t0_, std::memory_order_relaxed);
  }
  ControlTimer(const ControlTimer&) = delete;
  ControlTimer& operator=(const ControlTimer&) = delete;

 private:
  ShardStats& stats_;
  std::uint64_t t0_;
};

/// Same span discipline for the mutex engine's warm-path shard sections
/// (deposit, home take, sibling take) — the traffic the lock-free rings
/// retire. Deliberately NOT placed on the shard locks a sweep takes while
/// it already holds the control mutex: those are inside control_hold_ns
/// already, and double-counting them would flatter the rings in bench_t12's
/// total-lock-cost comparison.
class ShardLockTimer {
 public:
  explicit ShardLockTimer(ShardStats& stats) : stats_(stats), t0_(now_ns()) {
    stats_.shard_lock_acquisitions.fetch_add(1, std::memory_order_relaxed);
  }
  ~ShardLockTimer() {
    stats_.shard_lock_hold_ns.fetch_add(now_ns() - t0_,
                                        std::memory_order_relaxed);
  }
  ShardLockTimer(const ShardLockTimer&) = delete;
  ShardLockTimer& operator=(const ShardLockTimer&) = delete;

 private:
  ShardStats& stats_;
  std::uint64_t t0_;
};

}  // namespace

std::uint32_t ShardConfig::resolve(GranuleId max_granules) const {
  PAX_CHECK_MSG(workers > 0, "shard config needs at least one worker");
  const GranuleId cap = std::max<GranuleId>(1, max_granules);
  if (shards == kAutoShards) {
    // One worker has nothing to decontend; give it the exact single-lock
    // protocol (strict FIFO handout) instead of a pointless shard hop.
    if (workers == 1) return 1;
    const std::uint64_t want = 2ull * workers;
    return static_cast<std::uint32_t>(
        std::min<std::uint64_t>(want, static_cast<std::uint64_t>(cap)));
  }
  PAX_CHECK_MSG(shards >= 1, "shard count must be at least 1 (0 is invalid)");
  PAX_CHECK_MSG(static_cast<std::uint64_t>(shards) <=
                    static_cast<std::uint64_t>(cap),
                "more shards than granules in the largest phase");
  return shards;
}

ShardedExecutive::ShardedExecutive(const PhaseProgram& program,
                                   ExecConfig exec_config, CostModel costs,
                                   ShardConfig config)
    : costs_(costs),
      nshards_(config.resolve(max_phase_granules(program))),
      depth_(config.effective_depth()),
      flush_(config.effective_flush()),
      lockfree_(config.lockfree),
      trace_(config.trace),
      trace_job_(config.trace_job),
      core_(program, exec_config, costs) {
  // Worst-case tickets parked in deposit boxes at any instant: every worker
  // holds at most one local queue's worth (2x batch with stealing). Reserving
  // that up front means deposits and sweeps never grow a vector mid-run —
  // the flush threshold bounds the *typical* box size, not the peak.
  const std::size_t max_outstanding =
      std::size_t{2} * config.workers * std::max(1u, config.batch);
  shards_.reserve(nshards_);
  for (std::uint32_t s = 0; s < nshards_; ++s) {
    auto shard = std::make_unique<Shard>();
    if (lockfree_) {
      // Rings sized like the vectors they replace: the ready ring holds one
      // scatter depth, the deposit ring the worst-case outstanding tickets.
      // Allocated here, once — the warm path never allocates (t10/t12).
      shard->ready_ring = std::make_unique<MpmcRing<Assignment>>(depth_);
      shard->deposit_ring = std::make_unique<MpmcRing<Ticket>>(
          std::max<std::size_t>(flush_, max_outstanding));
    } else {
      shard->ready.reserve(depth_);
      shard->deposits.reserve(std::max<std::size_t>(flush_, max_outstanding));
    }
    shards_.push_back(std::move(shard));
  }
  sweep_tickets_.reserve(
      std::max<std::size_t>(static_cast<std::size_t>(flush_) * nshards_,
                            max_outstanding));
  if (lockfree_) {
    scatter_buf_.reserve(depth_);
    // The spill only ever holds assignments a full ring refused; one depth
    // per shard is far beyond what the transient-full window can park, so
    // growth past this reserve is effectively unreachable.
    scatter_spill_.reserve(static_cast<std::size_t>(depth_) * nshards_);
  }
}

void ShardedExecutive::publish_core_census() {
  // Relaxed stores: these feed the heuristic probes; the sleep predicates
  // that must not miss a flip re-read them under the sleeper's mutex after
  // wake_all() passes through it.
  //
  // A stopped core publishes zero waiting work even though its waiting
  // queue may be non-empty (recalled/released descriptors park there until
  // teardown): that work can never be handed out again, and advertising it
  // would spin sleepers and attract pool adopters to a job with nothing to
  // do. core_idle_ is already stop-gated inside has_idle_work().
  const bool stopped = core_.stop_requested();
  // Retry parks count as waiting work: the backoff clock is pumped by the
  // very sweeps this census attracts, so hiding them would strand a parked
  // retry with every worker asleep.
  core_waiting_.store(stopped ? 0 : core_.waiting_size() + core_.retry_pending(),
                      std::memory_order_relaxed);
  core_elevated_.store(stopped ? 0 : core_.waiting_elevated_size(),
                       std::memory_order_relaxed);
  core_idle_.store(core_.has_idle_work(), std::memory_order_relaxed);
  // Release: pairs with the acquire load in finished() — post-run readers of
  // the core (ledger, diagnostics) synchronize on this flag alone.
  if (core_.finished()) finished_.store(true, std::memory_order_release);
}

void ShardedExecutive::start() {
  {
    ControlTimer timer(stats_);
    RankedLock lock(control_mu_);
    core_.start();
    publish_core_census();
  }
  // Release: pairs with the acquire load in acquire() — a worker that sees
  // started_ may enter the shard/control protocol and must see the
  // constructor-reserved shard buffers and the started core behind it.
  started_.store(true, std::memory_order_release);
}

std::size_t ShardedExecutive::take_from(Shard& s, std::size_t max_n,
                                        std::vector<Assignment>& out) {
  const std::size_t n = std::min(max_n, s.ready.size());
  if (n == 0) return 0;
  // Front first: the buffer holds assignments in the executive's handout
  // order, and partial takes must keep the remainder's order intact.
  out.insert(out.end(), s.ready.begin(),
             s.ready.begin() + static_cast<std::ptrdiff_t>(n));
  s.ready.erase(s.ready.begin(), s.ready.begin() + static_cast<std::ptrdiff_t>(n));
  s.ready_n.store(static_cast<std::uint32_t>(s.ready.size()),
                  std::memory_order_relaxed);
  ready_.fetch_sub(static_cast<std::int64_t>(n), std::memory_order_relaxed);
  return n;
}

std::size_t ShardedExecutive::pop_from(Shard& s, std::size_t max_n,
                                       std::vector<Assignment>& out) {
  // Hint gate: don't touch (and cache-bounce) an empty ring's cursors. A
  // stale hint costs one probe, never correctness — the pop re-checks.
  if (s.ready_n.load(std::memory_order_relaxed) == 0) return 0;
  std::size_t got = 0;
  Assignment a;
  // FIFO pops preserve handout order per scatter batch (the ring is the
  // order; partial takes leave the remainder in place by construction).
  while (got < max_n && s.ready_ring->try_pop(a)) {
    out.push_back(a);
    ++got;
  }
  if (got == 0) {
    // The hint said non-empty but the ring came up dry: a racing consumer
    // beat us (or a scatter's publish is in flight). Counted so the
    // hint-quality signal is visible in the stats split.
    stats_.ring_pop_empty.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }
  s.ready_n.fetch_sub(static_cast<std::uint32_t>(got), std::memory_order_relaxed);
  ready_.fetch_sub(static_cast<std::int64_t>(got), std::memory_order_relaxed);
  stats_.ring_pops.fetch_add(got, std::memory_order_relaxed);
  return got;
}

std::uint64_t ShardedExecutive::scatter_spill(WorkerId w, ShardAcquire& res) {
  if (scatter_spill_.empty()) return 0;
  // Oldest first: spilled assignments were carved before anything a later
  // sweep scatters, and rundown fairness wants old work back in circulation
  // before fresh work piles behind it.
  std::size_t idx = 0;
  std::uint64_t touched = 0;
  for (std::uint32_t i = 0; idx < scatter_spill_.size() && i < nshards_; ++i) {
    Shard& s = *shards_[(home_of(w) + 1 + i) % nshards_];
    std::size_t room =
        depth_ - std::min<std::size_t>(depth_, s.ready_ring->approx_size());
    if (room == 0) continue;
    std::size_t pushed = 0;
    while (room > 0 && idx < scatter_spill_.size()) {
      if (!s.ready_ring->try_push(scatter_spill_[idx])) {
        stats_.ring_push_full.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      ++idx;
      --room;
      ++pushed;
    }
    if (pushed > 0) {
      s.ready_n.fetch_add(static_cast<std::uint32_t>(pushed),
                          std::memory_order_relaxed);
      stats_.scattered.fetch_add(pushed, std::memory_order_relaxed);
      ++touched;
      res.new_work = true;
    }
  }
  if (idx > 0) {
    // ready_ is NOT adjusted: spilled assignments already count in the
    // census (they became reachable work the moment they were carved).
    scatter_spill_.erase(scatter_spill_.begin(),
                         scatter_spill_.begin() + static_cast<std::ptrdiff_t>(idx));
    spill_n_.store(static_cast<std::uint32_t>(scatter_spill_.size()),
                   std::memory_order_relaxed);
  }
  return touched;
}

void ShardedExecutive::sweep_locked(ShardAcquire& res, WorkerId w,
                                    std::size_t max_n,
                                    std::vector<Assignment>& out,
                                    std::vector<Ticket>* direct) {
  // Collect the deposit boxes. Mutex engine: shard locks nest inside the
  // control mutex (rank control < shard, enforced by the lock-rank validator
  // in debug builds). Lock-free engine: multi-consumer pops — no lock, the
  // control mutex only serializes sweeps against each other. Either way the
  // occupancy hint skips empty shards; a deposit racing past the hint read
  // is simply retired by the next sweep.
  sweep_tickets_.clear();
  if (lockfree_) {
    for (auto& shard : shards_) {
      if (shard->deposit_n.load(std::memory_order_relaxed) == 0) continue;
      Ticket t;
      std::uint64_t popped = 0;
      while (shard->deposit_ring->try_pop(t)) {
        sweep_tickets_.push_back(t);
        ++popped;
      }
      // fetch_sub, not store(0): workers push new deposits concurrently with
      // this drain, and their hint increments must not be wiped.
      if (popped > 0)
        shard->deposit_n.fetch_sub(static_cast<std::uint32_t>(popped),
                                   std::memory_order_relaxed);
    }
  } else {
    for (auto& shard : shards_) {
      if (shard->deposit_n.load(std::memory_order_relaxed) == 0) continue;
      RankedLock sl(shard->mu);
      sweep_tickets_.insert(sweep_tickets_.end(), shard->deposits.begin(),
                            shard->deposits.end());
      shard->deposits.clear();
      shard->deposit_n.store(0, std::memory_order_relaxed);
    }
  }
  // Only drained tickets leave the deposit census; `direct` tickets (refused
  // by a full deposit ring) never entered it.
  const std::size_t drained = sweep_tickets_.size();
  if (direct != nullptr && !direct->empty()) {
    sweep_tickets_.insert(sweep_tickets_.end(), direct->begin(), direct->end());
    direct->clear();
  }
  if (!sweep_tickets_.empty()) {
    res.retired = sweep_tickets_.size();
    if (drained > 0)
      deposited_.fetch_sub(static_cast<std::int64_t>(drained),
                           std::memory_order_relaxed);
    stats_.sweeps.fetch_add(1, std::memory_order_relaxed);
    // One coalesced retire: indirect enablements fired by tickets deposited
    // on *different* shards merge into maximal ranges and are flushed once.
    const CompletionResult cr = core_.complete_batch(sweep_tickets_);
    res.new_work |= cr.new_work;
    sweep_tickets_.clear();
  }

  // Serve the caller first so a pending elevated release goes to the worker
  // that is about to execute, not into a buffer. Core before spill: the
  // core pops elevated entries first, and topping up from parked *normal*
  // spill work ahead of it would invert the release priority.
  if (max_n > 0) res.taken += core_.request_work_batch(w, max_n, out);

  std::uint64_t touched = 0;
  if (lockfree_) {
    if (res.taken < max_n && !scatter_spill_.empty()) {
      const std::size_t n =
          std::min(max_n - res.taken, scatter_spill_.size());
      out.insert(out.end(), scatter_spill_.begin(),
                 scatter_spill_.begin() + static_cast<std::ptrdiff_t>(n));
      scatter_spill_.erase(scatter_spill_.begin(),
                           scatter_spill_.begin() + static_cast<std::ptrdiff_t>(n));
      spill_n_.store(static_cast<std::uint32_t>(scatter_spill_.size()),
                     std::memory_order_relaxed);
      ready_.fetch_sub(static_cast<std::int64_t>(n), std::memory_order_relaxed);
      res.taken += n;
    }
    // Parked overflow re-enters the rings before fresh work is carved
    // behind it (oldest first).
    touched += scatter_spill(w, res);
  }

  // Re-scatter: top up every shard buffer to `depth_` while the core still
  // has waiting work, starting after the caller's home so siblings fill
  // evenly. Bill one kShardFlush per shard touched — publishing a slice of
  // the coalesced flush is a real management cost the sim charges per shard.
  for (std::uint32_t i = 0; core_.work_available() && i < nshards_; ++i) {
    Shard& s = *shards_[(home_of(w) + 1 + i) % nshards_];
    if (lockfree_) {
      const std::size_t room =
          depth_ - std::min<std::size_t>(depth_, s.ready_ring->approx_size());
      if (room == 0) continue;
      // Carve into the control-plane staging buffer, then publish into the
      // ring one assignment at a time (appends extend the handout order the
      // FIFO pop preserves). approx_size is conservative (see mpmc_ring),
      // so `room` never over-fills a ring a sweep owns the producing side
      // of; a refused push can still happen through the transient lapped-
      // cell window, and the remainder parks in the spill.
      scatter_buf_.clear();
      const std::size_t got = core_.request_work_batch(w, room, scatter_buf_);
      if (got == 0) break;
      // Census first: the assignments are reachable work from this moment,
      // whether they land in the ring or the spill.
      ready_.fetch_add(static_cast<std::int64_t>(got), std::memory_order_relaxed);
      std::size_t pushed = 0;
      while (pushed < got && s.ready_ring->try_push(scatter_buf_[pushed]))
        ++pushed;
      if (pushed > 0) {
        s.ready_n.fetch_add(static_cast<std::uint32_t>(pushed),
                            std::memory_order_relaxed);
        stats_.scattered.fetch_add(pushed, std::memory_order_relaxed);
      }
      if (pushed < got) {
        stats_.ring_push_full.fetch_add(1, std::memory_order_relaxed);
        scatter_spill_.insert(scatter_spill_.end(),
                              scatter_buf_.begin() + static_cast<std::ptrdiff_t>(pushed),
                              scatter_buf_.end());
        spill_n_.store(static_cast<std::uint32_t>(scatter_spill_.size()),
                       std::memory_order_relaxed);
      }
      ++touched;
      res.new_work = true;
    } else {
      RankedLock sl(s.mu);
      const std::size_t room = depth_ - std::min<std::size_t>(depth_, s.ready.size());
      if (room == 0) continue;
      // Carve straight into the buffer: appended entries extend the handout
      // order the front-first take preserves.
      const std::size_t got = core_.request_work_batch(w, room, s.ready);
      if (got == 0) break;
      s.ready_n.store(static_cast<std::uint32_t>(s.ready.size()),
                      std::memory_order_relaxed);
      ready_.fetch_add(static_cast<std::int64_t>(got), std::memory_order_relaxed);
      stats_.scattered.fetch_add(got, std::memory_order_relaxed);
      ++touched;
      res.new_work = true;
    }
  }
  if (touched > 0) core_.ledger().charge(MgmtOp::kShardFlush, costs_, touched);

  publish_core_census();
  res.program_finished = core_.finished();
  res.swept = true;
}

ShardAcquire ShardedExecutive::acquire_lockfree(WorkerId w, std::size_t max_n,
                                                std::vector<Ticket>& done,
                                                std::vector<Assignment>& out) {
  ShardAcquire res;
  Shard& home = *shards_[home_of(w)];

  // Deposit: lock-free pushes into the home shard's deposit ring. A refused
  // push (ring full, or the transient lapped-cell window) leaves the
  // remainder in `done` and forces a sweep that retires it directly — the
  // dispatcher's contract that `done` is cleared on return holds either way.
  bool overflow = false;
  if (!done.empty()) {
    std::size_t pushed = 0;
    while (pushed < done.size() && home.deposit_ring->try_push(done[pushed]))
      ++pushed;
    if (pushed > 0) {
      home.deposit_n.fetch_add(static_cast<std::uint32_t>(pushed),
                               std::memory_order_relaxed);
      deposited_.fetch_add(static_cast<std::int64_t>(pushed),
                           std::memory_order_relaxed);
      stats_.deposits.fetch_add(pushed, std::memory_order_relaxed);
      done.erase(done.begin(), done.begin() + static_cast<std::ptrdiff_t>(pushed));
      trace_event(w, obs::TraceKind::kDepositFlush,
                  static_cast<std::uint32_t>(pushed));
    }
    if (!done.empty()) {
      overflow = true;
      stats_.ring_push_full.fetch_add(1, std::memory_order_relaxed);
      trace_event(w, obs::TraceKind::kRingOverflow,
                  static_cast<std::uint32_t>(done.size()));
    }
  }

  // Straight to a sweep when deposits crossed the flush threshold (bounds
  // enablement latency) or an elevated release is pending in the core
  // (buffered normal work must not outrank it). Relaxed loads: both are
  // wake-signal heuristics — a stale read delays one sweep by one acquire,
  // it cannot lose work (the census is re-derived under the control mutex).
  const bool flush_due =
      deposited_.load(std::memory_order_relaxed) >=
      static_cast<std::int64_t>(flush_);
  const bool elevated_pending =
      core_elevated_.load(std::memory_order_relaxed) > 0;

  if (max_n > 0 && !overflow && !flush_due && !elevated_pending) {
    res.taken = pop_from(home, max_n, out);
    if (res.taken > 0) {
      stats_.shard_hits.fetch_add(1, std::memory_order_relaxed);
      return res;
    }
    for (std::uint32_t i = 1; i < nshards_; ++i) {
      Shard& sib = *shards_[(home_of(w) + i) % nshards_];
      const std::uint32_t hint = sib.ready_n.load(std::memory_order_relaxed);
      if (hint == 0) continue;
      // Steal-style bite: at most half the sibling's buffer (rounded up) —
      // same rundown fat-tail rationale as the mutex engine. The hint is a
      // moment stale, which only changes the bite size, never correctness.
      const std::size_t bite =
          std::min(max_n, (static_cast<std::size_t>(hint) + 1) / 2);
      res.taken = pop_from(sib, bite, out);
      if (res.taken > 0) {
        stats_.sibling_hits.fetch_add(1, std::memory_order_relaxed);
        return res;
      }
    }
  }

  // Every ring dry (or an overflow/flush/elevation forces it): the control
  // plane. The spill term keeps parked overflow work reachable — it is
  // counted in ready_, so sleep predicates stay true, and this is the path
  // that serves it. Skip when the plane has nothing for us, so rundown
  // probing stays off the control mutex.
  if (overflow || deposited_.load(std::memory_order_relaxed) > 0 ||
      core_waiting_.load(std::memory_order_relaxed) > 0 ||
      spill_n_.load(std::memory_order_relaxed) > 0) {
    {
      ControlTimer timer(stats_);
      RankedLock lock(control_mu_);
      sweep_locked(res, w, max_n, out, overflow ? &done : nullptr);
    }
    // Emitted after the section ends so the record's clock read never lands
    // inside the timed hold span (the t11 overhead gate).
    trace_event(w, obs::TraceKind::kShardSweep,
                static_cast<std::uint32_t>(res.retired));
  }
  return res;
}

ShardAcquire ShardedExecutive::acquire(WorkerId w, std::size_t max_n,
                                       std::vector<Ticket>& done,
                                       std::vector<Assignment>& out) {
  ShardAcquire res;
  // Acquire: pairs with the release store in start() (see there).
  if (!started_.load(std::memory_order_acquire)) {
    PAX_CHECK_MSG(done.empty(), "finished tickets before start");
    return res;
  }

  // Stop drain path (both engines, any shard count): never hand out work;
  // retire the caller's in-flight tickets (as `direct` — they were never
  // deposited) plus any straggler deposits in one sweep. Gated so a worker
  // with nothing to retire does not spin on the control mutex while a peer
  // finishes its last granules.
  // Acquire: pairs with the exchange in request_stop() — a worker routed
  // here must observe the recalled buffers behind the flag.
  if (stop_requested_.load(std::memory_order_acquire)) {
    if (!done.empty() || deposited_.load(std::memory_order_relaxed) > 0 ||
        ready_.load(std::memory_order_relaxed) > 0 ||
        spill_n_.load(std::memory_order_relaxed) > 0) {
      {
        ControlTimer timer(stats_);
        RankedLock lock(control_mu_);
        sweep_locked(res, w, /*max_n=*/0, out,
                     done.empty() ? nullptr : &done);
      }
      trace_event(w, obs::TraceKind::kShardSweep,
                  static_cast<std::uint32_t>(res.retired));
    }
    res.program_finished = finished();
    return res;
  }

  if (nshards_ == 1) {
    // Single shard: the PR 3 protocol verbatim — one control section that
    // retires the worker's batch and refills it. Identical under both
    // engines (neither rings nor shard locks are touched).
    {
      ControlTimer timer(stats_);
      RankedLock lock(control_mu_);
      if (!done.empty()) {
        res.retired = done.size();
        const CompletionResult cr = core_.complete_batch(done);
        done.clear();
        res.new_work |= cr.new_work;
      }
      if (max_n > 0) res.taken = core_.request_work_batch(w, max_n, out);
      publish_core_census();
      res.program_finished = core_.finished();
      res.swept = true;
    }
    // Trace AFTER the control section so the record's clock read never
    // lands inside the timed hold span (the t11 overhead gate).
    trace_event(w, obs::TraceKind::kShardSweep,
                static_cast<std::uint32_t>(res.retired));
    return res;
  }

  if (lockfree_) return acquire_lockfree(w, max_n, done, out);

  Shard& home = *shards_[home_of(w)];
  if (!done.empty()) {
    const std::size_t parked = done.size();
    {
      ShardLockTimer st(stats_);
      RankedLock sl(home.mu);
      home.deposits.insert(home.deposits.end(), done.begin(), done.end());
      home.deposit_n.store(static_cast<std::uint32_t>(home.deposits.size()),
                           std::memory_order_relaxed);
      deposited_.fetch_add(static_cast<std::int64_t>(parked),
                           std::memory_order_relaxed);
      stats_.deposits.fetch_add(parked, std::memory_order_relaxed);
      done.clear();
    }
    trace_event(w, obs::TraceKind::kDepositFlush,
                static_cast<std::uint32_t>(parked));
  }

  // Straight to a sweep when deposits crossed the flush threshold (bounds
  // enablement latency) or an elevated release is pending in the core
  // (buffered normal work must not outrank it). Relaxed loads: both are
  // wake-signal heuristics — a stale read delays one sweep by one acquire,
  // it cannot lose work (the census is re-derived under the control mutex).
  const bool flush_due =
      deposited_.load(std::memory_order_relaxed) >=
      static_cast<std::int64_t>(flush_);
  const bool elevated_pending =
      core_elevated_.load(std::memory_order_relaxed) > 0;

  if (max_n > 0 && !flush_due && !elevated_pending) {
    if (home.ready_n.load(std::memory_order_relaxed) > 0) {
      ShardLockTimer st(stats_);
      RankedLock sl(home.mu);
      res.taken = take_from(home, max_n, out);
    }
    if (res.taken > 0) {
      stats_.shard_hits.fetch_add(1, std::memory_order_relaxed);
      return res;
    }
    for (std::uint32_t i = 1; i < nshards_; ++i) {
      Shard& sib = *shards_[(home_of(w) + i) % nshards_];
      if (sib.ready_n.load(std::memory_order_relaxed) == 0) continue;
      ShardLockTimer st(stats_);
      RankedLock sl(sib.mu);
      // Steal-style bite: at most half the sibling's buffer (rounded up).
      // Draining a whole sibling in one take would concentrate the tail in
      // one worker's local queue — the fat-tail pattern rundown stealing
      // exists to break up — and measurably costs rundown utilization.
      const std::size_t bite =
          std::min(max_n, (sib.ready.size() + 1) / 2);
      res.taken = take_from(sib, bite, out);
      if (res.taken > 0) {
        stats_.sibling_hits.fetch_add(1, std::memory_order_relaxed);
        return res;
      }
    }
  }

  // Every buffer dry (or a flush/elevation forces it): the control plane.
  // Skip when it has nothing for us — no deposits to retire and an empty
  // waiting queue — so rundown probing stays off the control mutex.
  if (deposited_.load(std::memory_order_relaxed) > 0 ||
      core_waiting_.load(std::memory_order_relaxed) > 0) {
    {
      ControlTimer timer(stats_);
      RankedLock lock(control_mu_);
      sweep_locked(res, w, max_n, out, nullptr);
    }
    // Emitted after the section ends, for the same t11-gate reason as the
    // single-shard path above.
    trace_event(w, obs::TraceKind::kShardSweep,
                static_cast<std::uint32_t>(res.retired));
  }
  return res;
}

void ShardedExecutive::trace_event(WorkerId w, obs::TraceKind kind,
                                   std::uint32_t aux) {
  if (trace_ == nullptr) return;
  obs::TraceRecord r;
  r.ts_ns = obs::trace_now_ns();
  r.job = trace_job_;
  r.aux = aux;
  r.worker = static_cast<std::uint16_t>(w);
  r.kind = kind;
  trace_->ring(w).emit(r);
}

bool ShardedExecutive::idle_work() {
  ControlTimer timer(stats_);
  RankedLock lock(control_mu_);
  const bool did = core_.idle_work();
  publish_core_census();
  return did;
}

void ShardedExecutive::submit_conflicting(RunId blocker, PhaseId phase,
                                          GranuleRange range) {
  ControlTimer timer(stats_);
  RankedLock lock(control_mu_);
  core_.submit_conflicting(blocker, phase, range);
  publish_core_census();
}

void ShardedExecutive::recall_abandon_locked() {
  std::size_t recalled = 0;
  if (lockfree_) {
    Assignment a;
    for (auto& shard : shards_) {
      if (shard->ready_ring == nullptr) continue;
      std::uint32_t popped = 0;
      while (shard->ready_ring->try_pop(a)) {
        core_.abandon(a.ticket);
        ++popped;
      }
      // fetch_sub, not store(0): a worker that raced past the stop flag may
      // be mid-pop on this ring; its own decrement must not be wiped.
      if (popped > 0) {
        shard->ready_n.fetch_sub(popped, std::memory_order_relaxed);
        recalled += popped;
      }
    }
    for (const Assignment& sa : scatter_spill_) core_.abandon(sa.ticket);
    recalled += scatter_spill_.size();
    scatter_spill_.clear();
    spill_n_.store(0, std::memory_order_relaxed);
  } else {
    for (auto& shard : shards_) {
      RankedLock sl(shard->mu);
      for (const Assignment& sa : shard->ready) core_.abandon(sa.ticket);
      recalled += shard->ready.size();
      shard->ready.clear();
      shard->ready_n.store(0, std::memory_order_relaxed);
    }
  }
  if (recalled > 0)
    ready_.fetch_sub(static_cast<std::int64_t>(recalled),
                     std::memory_order_relaxed);
}

void ShardedExecutive::request_stop() {
  // The exchange makes the call idempotent and is the release edge the
  // acquire() drain path pairs with.
  if (stop_requested_.exchange(true, std::memory_order_acq_rel)) return;
  ControlTimer timer(stats_);
  RankedLock lock(control_mu_);
  core_.request_stop();
  recall_abandon_locked();
  publish_core_census();
}

ShardAcquire ShardedExecutive::fail_batch(WorkerId w,
                                          std::span<const GranuleFault> faults) {
  ShardAcquire res;
  if (faults.empty()) return res;
  std::uint64_t retries_before = 0, retries_after = 0;
  std::uint64_t poisoned_before = 0, poisoned_after = 0;
  {
    ControlTimer timer(stats_);
    RankedLock lock(control_mu_);
    retries_before = core_.fault_stats().retries;
    poisoned_before = core_.fault_stats().poisoned;
    for (const GranuleFault& f : faults) {
      const CompletionResult cr = core_.fail(f);
      res.new_work |= cr.new_work;
    }
    retries_after = core_.fault_stats().retries;
    poisoned_after = core_.fault_stats().poisoned;
    if (core_.faulted()) {
      // Release: pairs with the acquire load in faulted() — readers of the
      // flag see the fault accounting written above.
      faulted_flag_.store(true, std::memory_order_release);
      // The core stopped itself; recall the shard buffers exactly like
      // request_stop() so finished() can flip once stragglers drain. The
      // exchange keeps a racing explicit cancel idempotent.
      if (!stop_requested_.exchange(true, std::memory_order_acq_rel))
        recall_abandon_locked();
    }
    publish_core_census();
    res.program_finished = core_.finished();
    res.swept = true;
  }
  if (retries_after > retries_before)
    trace_event(w, obs::TraceKind::kGranuleRetry,
                static_cast<std::uint32_t>(retries_after - retries_before));
  if (poisoned_after > poisoned_before)
    trace_event(w, obs::TraceKind::kGranulePoisoned,
                static_cast<std::uint32_t>(poisoned_after - poisoned_before));
  return res;
}

FaultStats ShardedExecutive::fault_stats() const {
  RankedLock lock(control_mu_);
  return core_.fault_stats();
}

ShardStatsView ShardedExecutive::stats() const {
  ShardStatsView v;
  v.control_acquisitions = stats_.control_acquisitions.load(std::memory_order_relaxed);
  v.control_hold_ns = stats_.control_hold_ns.load(std::memory_order_relaxed);
  v.sweeps = stats_.sweeps.load(std::memory_order_relaxed);
  v.shard_hits = stats_.shard_hits.load(std::memory_order_relaxed);
  v.sibling_hits = stats_.sibling_hits.load(std::memory_order_relaxed);
  v.scattered = stats_.scattered.load(std::memory_order_relaxed);
  v.deposits = stats_.deposits.load(std::memory_order_relaxed);
  v.ring_pops = stats_.ring_pops.load(std::memory_order_relaxed);
  v.ring_pop_empty = stats_.ring_pop_empty.load(std::memory_order_relaxed);
  v.ring_push_full = stats_.ring_push_full.load(std::memory_order_relaxed);
  v.shard_lock_acquisitions =
      stats_.shard_lock_acquisitions.load(std::memory_order_relaxed);
  v.shard_lock_hold_ns =
      stats_.shard_lock_hold_ns.load(std::memory_order_relaxed);
  if (lockfree_) {
    for (const auto& shard : shards_)
      v.ring_cas_retries += shard->ready_ring->cas_retries() +
                            shard->deposit_ring->cas_retries();
  }
  return v;
}

// SAFETY: opted out of the static analysis because it freezes a *dynamic*
// set of shard locks in a loop, which TSA cannot track. The discipline is
// manual and checked dynamically instead: the control mutex is taken first
// (rank control), then — mutex engine only — every shard lock in ascending
// index order (a total order, declared to the rank validator with kSameRank)
// so the sums are exact at one instant. Workers only ever hold one shard
// lock at a time, so the batch acquisition cannot deadlock against them.
// The lock-free engine has no shard locks to freeze: the ring cursor deltas
// are exact under the documented quiescence contract (see the header), and
// the control mutex still excludes a concurrent sweep.
void ShardedExecutive::check_census() const PAX_NO_THREAD_SAFETY_ANALYSIS {
  RankedLock lock(control_mu_);
  std::int64_t ready = 0, deposits = 0;
  if (lockfree_) {
    for (const auto& shard : shards_) {
      const std::uint64_t ready_occ =
          shard->ready_ring->pushed() - shard->ready_ring->popped();
      const std::uint64_t dep_occ =
          shard->deposit_ring->pushed() - shard->deposit_ring->popped();
      PAX_CHECK_MSG(shard->ready_n.load(std::memory_order_relaxed) == ready_occ,
                    "shard occupancy hint drifted from its ring cursors");
      PAX_CHECK_MSG(shard->deposit_n.load(std::memory_order_relaxed) == dep_occ,
                    "shard deposit hint drifted from its ring cursors");
      ready += static_cast<std::int64_t>(ready_occ);
      deposits += static_cast<std::int64_t>(dep_occ);
    }
    PAX_CHECK_MSG(spill_n_.load(std::memory_order_relaxed) ==
                      scatter_spill_.size(),
                  "spill occupancy mirror drifted from the spill");
    // Spilled assignments count as ready work (that is what keeps sleepers
    // honest while the overflow is parked).
    ready += static_cast<std::int64_t>(scatter_spill_.size());
  } else {
    for (const auto& shard : shards_) shard->mu.lock(kSameRank);
    for (const auto& shard : shards_) {
      ready += static_cast<std::int64_t>(shard->ready.size());
      deposits += static_cast<std::int64_t>(shard->deposits.size());
      PAX_CHECK_MSG(shard->ready_n.load(std::memory_order_relaxed) ==
                        shard->ready.size(),
                    "shard occupancy hint drifted from its buffer");
      PAX_CHECK_MSG(shard->deposit_n.load(std::memory_order_relaxed) ==
                        shard->deposits.size(),
                    "shard deposit hint drifted from its box");
    }
  }
  PAX_CHECK_MSG(ready == ready_.load(std::memory_order_relaxed),
                "ready census drifted from the shard buffers");
  PAX_CHECK_MSG(deposits == deposited_.load(std::memory_order_relaxed),
                "deposit census drifted from the shard deposit boxes");
  PAX_CHECK_MSG(core_waiting_.load(std::memory_order_relaxed) ==
                    (core_.stop_requested()
                         ? 0
                         : core_.waiting_size() + core_.retry_pending()),
                "waiting-queue census drifted from the core");
  if (!lockfree_) {
    for (const auto& shard : shards_) shard->mu.unlock();
  }
}

}  // namespace pax
