// sharded_executive.hpp — the sharded front-end over ExecutiveCore.
//
// PR 3 decentralized *dispatch* (per-worker run-queues, rundown stealing),
// but every refill still funneled through one executive mutex per program:
// retirement, enablement and carving re-serialized on exactly the management
// resource the paper's rundown analysis warns about, and — per the
// work-inflation findings of Acar et al. — contended shared scheduler state
// inflates per-granule cost as worker counts grow. This layer shards the
// executive's *worker-facing* state so that two workers refilling different
// shards never contend:
//
//   * the granule handout is partitioned across `shards` independent Shard
//     buffers, each owning a slice of pre-carved assignments (its slice of
//     the split/grain state) and a deposit box of finished tickets (its
//     slice of the enablement-count updates to apply);
//   * a worker's acquire() first serves itself from its *home shard*
//     (worker % shards), then probes sibling shards, and only falls back to
//     the control plane when every shard is dry or the deposit census
//     crosses the flush threshold;
//   * the control plane — the unchanged single-threaded ExecutiveCore — is
//     entered by one worker at a time (control mutex) in *sweeps*: one sweep
//     collects every shard's deposited tickets, retires them in a single
//     complete_batch (so indirect enablements produced by tickets from
//     different shards coalesce into maximal ranges and are flushed ONCE),
//     then re-scatters carved assignments across the shard buffers;
//   * a small atomic census (ready / deposited / core-waiting / elevated /
//     idle-work / finished) keeps runnable() / work_available() probes
//     lock-free for the pool's cross-job pick and the runtimes' sleep
//     predicates.
//
// The warm path comes in two engines, selected by ShardConfig::lockfree:
//
//   * lock-free (the default, DESIGN.md §13): each shard's ready buffer and
//     deposit box are bounded MPMC rings (core/mpmc_ring.hpp) preallocated
//     at construction. A warm acquire is a multi-consumer pop from the home
//     ring, a lock-free sibling probe, and a lock-free push of finished
//     tickets into the home deposit ring — no mutex anywhere. The control
//     sweep (still under the control mutex) drains deposit rings and
//     scatters into ready rings as the slow path, and absorbs every ring
//     overflow: a refused deposit push turns into a direct retire inside the
//     caller's forced sweep, a refused scatter push parks the assignment in
//     a control-plane spill served/re-pushed by later sweeps.
//   * mutex (lockfree = false): the PR 4 per-shard mutex + vector machinery,
//     kept verbatim as the pinned baseline bench_t9_shard isolates and the
//     one bench_t12_lockfree gates the rings against. Its shard-lock
//     sections are counted and timed (ShardStats::shard_lock_*) so the gate
//     can compare total scheduler-lock traffic, not just control sections.
//
// With shards == 1 the layer short-circuits to the PR 3 protocol — every
// acquire is one control section doing complete_batch + request_work_batch —
// identically under both engines, which is how bench_t9_shard baselines it
// and why `shards = 1` reproduces the prior behavior exactly.
//
// Elevated priority: the core pops elevated work first, but shard buffers
// could hide an elevated release behind already-carved normal work. The
// census therefore tracks the core's elevated count, and acquire() prefers a
// control sweep over buffered normal work while an elevated release is
// pending — with one worker this preserves the strict release-outranks-
// queued-work ordering of the unsharded executive.
//
// Concurrency discipline (DESIGN.md §11): the wrapped core, the sweep
// staging and the scatter spill are PAX_GUARDED_BY the control mutex (rank:
// control, the outermost lock of the system); under the mutex engine each
// Shard's buffer and deposit box are guarded by that shard's own mutex
// (rank: shard, which nests inside control during sweeps — never the
// reverse). Under the lock-free engine the shard mutex is never taken on
// the warm path (the rings carry their own publish edges); it survives only
// to freeze the mutex-engine buffers. The census atomics are the only state
// read outside every lock, and each one documents the synchronization it
// relies on.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/lock_rank.hpp"
#include "common/thread_annotations.hpp"
#include "core/executive.hpp"
#include "core/mpmc_ring.hpp"
#include "obs/trace_ring.hpp"

namespace pax {

/// Sentinel: resolve the shard count from the worker count (≈ 2x workers,
/// clamped to the program's largest phase). 0 is *invalid* — constructors
/// PAX_CHECK it — so a config bug can never silently mean "auto".
inline constexpr std::uint32_t kAutoShards = 0xFFFFFFFFu;

struct ShardConfig {
  /// Number of independent shards; kAutoShards = 2x workers (1 for a single
  /// worker, where there is nothing to decontend), clamped to [1, largest
  /// phase granule count]. Explicit values must be >= 1 and <= the largest
  /// phase granule count.
  std::uint32_t shards = kAutoShards;
  std::uint32_t workers = 4;
  /// Scatter/flush scaling unit (the driver's retire batch).
  std::uint32_t batch = 1;
  /// Per-shard ready-buffer cap; 0 = auto (= batch). Bounds how much work is
  /// pre-carved ahead of execution, so rundown tails are not locked into
  /// coarse pieces carved before the adaptive grain kicked in.
  std::uint32_t depth = 0;
  /// Deposited-ticket count that triggers a control sweep even while shard
  /// buffers still hold work; 0 = auto (= 2x batch). Bounds enablement
  /// latency: a ticket waits at most one flush interval before its
  /// completions are processed.
  std::uint32_t flush = 0;
  /// Warm-path engine. true (default): lock-free MPMC rings — a warm
  /// acquire takes no mutex at all (DESIGN.md §13). false: the PR 4
  /// mutex-guarded shard vectors, kept as the measurable baseline
  /// (bench_t9_shard pins it; bench_t12_lockfree gates the rings against
  /// it). Identical worker-protocol contract either way.
  bool lockfree = true;

  [[nodiscard]] std::uint32_t effective_depth() const {
    return depth != 0 ? depth : std::max(1u, batch);
  }
  [[nodiscard]] std::uint32_t effective_flush() const {
    return flush != 0 ? flush : std::max(2u, 2u * batch);
  }

  /// Optional trace buffer (non-owning; null = tracing off, each emit site
  /// one untaken branch). Must outlive the executive; the worker passed to
  /// acquire() indexes its ring. DESIGN.md §12.
  obs::TraceBuffer* trace = nullptr;
  /// Job lane tag on emitted records (the pool sets its job id here).
  std::uint64_t trace_job = obs::kNoTraceJob;

  /// Resolve `shards` against a program's largest phase (`max_granules`).
  /// PAX_CHECKs the validity rules above.
  [[nodiscard]] std::uint32_t resolve(GranuleId max_granules) const;
};

/// What one acquire() call did.
struct ShardAcquire {
  std::size_t taken = 0;        ///< assignments appended to `out`
  std::size_t retired = 0;      ///< tickets retired by this call's sweep
  /// Work became visible to peers (an enablement enqueued, or a sweep
  /// scattered assignments into shard buffers): drivers wake sleepers.
  bool new_work = false;
  bool program_finished = false;
  bool swept = false;           ///< this call entered the control plane
};

/// Lock/traffic counters. Written with relaxed atomics so stats()/JobHandle
/// snapshots may read them any time. Relaxed everywhere: the counters are
/// reporting data, never used to order anything — a snapshot mid-run is
/// allowed to be a moment stale.
struct ShardStats {
  std::atomic<std::uint64_t> control_acquisitions{0};  ///< control-mutex sections
  std::atomic<std::uint64_t> control_hold_ns{0};       ///< time inside them
  std::atomic<std::uint64_t> sweeps{0};          ///< sections that swept deposits
  std::atomic<std::uint64_t> shard_hits{0};      ///< acquires served by home shard
  std::atomic<std::uint64_t> sibling_hits{0};    ///< ... by a sibling shard
  std::atomic<std::uint64_t> scattered{0};       ///< assignments pushed to shards
  std::atomic<std::uint64_t> deposits{0};        ///< tickets parked in shards
  // Lock-free engine (rings; zero under the mutex engine).
  std::atomic<std::uint64_t> ring_pops{0};       ///< assignments popped lock-free
  std::atomic<std::uint64_t> ring_pop_empty{0};  ///< probes that found a hinted ring dry
  std::atomic<std::uint64_t> ring_push_full{0};  ///< pushes refused by a full ring
  // Mutex engine (zero under the lock-free engine): warm-path shard-mutex
  // sections (deposit, home take, sibling take) and their acquire-to-release
  // time — the traffic the rings retire, counted so bench_t12 can compare
  // total scheduler-lock cost per granule across the two engines.
  std::atomic<std::uint64_t> shard_lock_acquisitions{0};
  std::atomic<std::uint64_t> shard_lock_hold_ns{0};
};

/// Plain-value snapshot of ShardStats (copyable into results structs).
/// ring_cas_retries is summed from the rings' own counters at snapshot time.
struct ShardStatsView {
  std::uint64_t control_acquisitions = 0;
  std::uint64_t control_hold_ns = 0;
  std::uint64_t sweeps = 0;
  std::uint64_t shard_hits = 0;
  std::uint64_t sibling_hits = 0;
  std::uint64_t scattered = 0;
  std::uint64_t deposits = 0;
  std::uint64_t ring_pops = 0;
  std::uint64_t ring_pop_empty = 0;
  std::uint64_t ring_push_full = 0;
  std::uint64_t ring_cas_retries = 0;
  std::uint64_t shard_lock_acquisitions = 0;
  std::uint64_t shard_lock_hold_ns = 0;
};

class ShardedExecutive {
 public:
  /// Validates and resolves `config` (see ShardConfig) against `program`.
  ShardedExecutive(const PhaseProgram& program, ExecConfig exec_config,
                   CostModel costs, ShardConfig config);

  ShardedExecutive(const ShardedExecutive&) = delete;
  ShardedExecutive& operator=(const ShardedExecutive&) = delete;

  [[nodiscard]] std::uint32_t shards() const { return nshards_; }
  [[nodiscard]] bool lockfree() const { return lockfree_; }

  /// Begin program execution (control section). Until start() returns,
  /// acquire() yields nothing and runnable() is false.
  void start() PAX_EXCLUDES(control_mu_);

  /// The worker protocol, all locking internal (none at all on the warm
  /// lock-free path):
  ///   1. deposit `done` (cleared on return) into the home shard;
  ///   2. serve up to `max_n` assignments from the home shard buffer, else a
  ///      sibling buffer — no control mutex involved;
  ///   3. when every buffer is dry, deposits crossed the flush threshold, an
  ///      elevated release is pending, or a ring push overflowed: one control
  ///      sweep — retire ALL shards' deposits (plus any overflowed tickets)
  ///      in one coalesced complete_batch, pull for the caller, re-scatter
  ///      the shard buffers.
  /// Returns what happened; `out` is appended in handout order.
  ShardAcquire acquire(WorkerId w, std::size_t max_n, std::vector<Ticket>& done,
                       std::vector<Assignment>& out) PAX_EXCLUDES(control_mu_);

  /// Report barrier-contained granule faults (control section; cold by
  /// definition — faults are exceptional). Retires each ticket through the
  /// core's fail-retire path (bounded retry with backoff, poison after
  /// exhaustion). When a poisoned granule flips the core into the faulted
  /// terminal this also recalls the shard buffers, exactly like
  /// request_stop(), so finished() can flip once stragglers drain.
  ShardAcquire fail_batch(WorkerId w, std::span<const GranuleFault> faults)
      PAX_EXCLUDES(control_mu_);

  /// True once the program terminated because a poisoned granule made the
  /// dataflow unsatisfiable. Final when finished() is true.
  [[nodiscard]] bool faulted() const {
    // Acquire: pairs with the release store in fail_batch() — a reader that
    // sees the flag also sees the fault accounting written before it.
    return faulted_flag_.load(std::memory_order_acquire);
  }

  /// Snapshot of the core's failure accounting (control section; cold).
  [[nodiscard]] FaultStats fault_stats() const PAX_EXCLUDES(control_mu_);

  /// Executive idle-time work (control section). True if something was done.
  bool idle_work() PAX_EXCLUDES(control_mu_);

  /// Thread-safe conflicting-computation submission (control section).
  void submit_conflicting(RunId blocker, PhaseId phase, GranuleRange range)
      PAX_EXCLUDES(control_mu_);

  /// Cooperative mid-run stop (job cancellation), callable from any thread —
  /// including non-workers. One control section: stops the core, recalls
  /// every buffered-but-unexecuted assignment from the shard buffers (both
  /// engines) and abandons their tickets. Workers racing past the flag may
  /// still execute at most one local queue's worth of in-flight granules;
  /// their deposits retire through normal sweeps, and finished() flips once
  /// the last outstanding ticket drains. Idempotent. Safe before start():
  /// the core finishes immediately and a later start() runs no program node.
  void request_stop() PAX_EXCLUDES(control_mu_);
  [[nodiscard]] bool stop_requested() const {
    // Relaxed: a heuristic gate, same contract as the census probes — the
    // authoritative stop is the core's flag under the control mutex.
    return stop_requested_.load(std::memory_order_relaxed);
  }

  /// Forwarded to the core's atomic grain limit — no lock required (that is
  /// the point of the grain-limit fix: the steal-rate signal publishes it
  /// from outside every control section).
  // SAFETY: grain_limit_ is a relaxed atomic inside the core, designed to be
  // published with no lock held; this call touches nothing else of core_.
  void set_grain_limit(GranuleId g) PAX_NO_THREAD_SAFETY_ANALYSIS {
    core_.set_grain_limit(g);
  }

  /// The core's configured (pre-adaptive-limit) grain, for the dispatch
  /// layer's hot path.
  // SAFETY: reads ExecConfig::grain, which is set at construction and never
  // written again — constant after construction needs no lock.
  [[nodiscard]] GranuleId configured_grain() const
      PAX_NO_THREAD_SAFETY_ANALYSIS {
    return core_.configured_grain();
  }

  // --- lock-free census probes ---------------------------------------------
  // Each probe documents what orders it. The common pattern: a census flip
  // happens under a shard/control lock (mutex engine) or is a relaxed
  // atomic update beside a ring operation (lock-free engine), and every
  // flip a sleeper could miss is followed by a wake that passes through the
  // sleeper's mutex — the mutexes carry the ordering, so the probes
  // themselves can stay relaxed.
  [[nodiscard]] bool finished() const {
    // Acquire: pairs with the release store in publish_core_census() so a
    // thread that sees `finished == true` also sees the core's final state
    // (ledger, diagnostics) when it reads them post-run without the lock.
    return finished_.load(std::memory_order_acquire);
  }
  /// Computable work is reachable *right now*: buffered in a shard (or the
  /// control-plane spill), waiting in the core, or unlockable by sweeping
  /// deposited tickets.
  [[nodiscard]] bool work_available() const {
    // Relaxed: a heuristic wake/probe signal. False negatives are closed by
    // the wake-through-mutex discipline; false positives cost one acquire()
    // that comes back empty.
    return ready_.load(std::memory_order_relaxed) > 0 ||
           core_waiting_.load(std::memory_order_relaxed) > 0 ||
           deposited_.load(std::memory_order_relaxed) > 0;
  }
  [[nodiscard]] bool has_idle_work() const {
    // Relaxed: same wake-signal contract as work_available().
    return core_idle_.load(std::memory_order_relaxed);
  }
  /// Cross-job probe (pool rotation pick): can a worker make progress here?
  [[nodiscard]] bool runnable() const {
    if (finished()) return false;
    // After a stop request the only remaining "progress" is draining
    // straggler deposits/buffers from workers that raced past the flag —
    // phantom core_waiting_ work must not attract adopters (the stop gate
    // would hand them nothing and they would spin).
    if (stop_requested_.load(std::memory_order_relaxed)) {
      return deposited_.load(std::memory_order_relaxed) > 0 ||
             ready_.load(std::memory_order_relaxed) > 0;
    }
    return work_available() || has_idle_work();
  }

  [[nodiscard]] ShardStatsView stats() const;

  /// The wrapped core, for driver setup (observer, ledger) and post-run
  /// reads. NOT synchronized: callers touch it only while the executive is
  /// quiescent (before start / after the program finished and every worker
  /// joined), exactly like the pre-shard runtimes' direct member access.
  // SAFETY: quiescence contract above — callers hold no lock because no
  // other thread can be inside the executive at the allowed call times.
  [[nodiscard]] ExecutiveCore& core_unsynchronized()
      PAX_NO_THREAD_SAFETY_ANALYSIS {
    return core_;
  }
  [[nodiscard]] const ExecutiveCore& core_unsynchronized() const
      PAX_NO_THREAD_SAFETY_ANALYSIS {
    return core_;
  }

  /// Test hook: check the census against the actual buffer/deposit contents
  /// — under the lock-free engine, against the rings' cursor deltas
  /// (pushed - popped) AND the ready_n/deposit_n occupancy hints. Aborts
  /// (PAX_CHECK) on drift. Under the mutex engine the locks make the
  /// comparison exact at any instant; under the lock-free engine exactness
  /// additionally requires no worker mid-pop/push — i.e. quiescence, which
  /// every call site (post-join in the runtimes, single-threaded tests)
  /// provides. The control mutex still excludes concurrent sweeps.
  void check_census() const PAX_EXCLUDES(control_mu_);

 private:
  struct Shard {
    /// Rank: shard — nests inside the control mutex (sweeps, check_census);
    /// a worker outside a sweep holds at most one shard lock at a time.
    /// Mutex engine only: the lock-free engine never takes it on the warm
    /// path (its buffers are the rings below).
    mutable RankedMutex<LockRank::kShard> mu;
    std::vector<Assignment> ready PAX_GUARDED_BY(mu);   ///< handout order
    std::vector<Ticket> deposits PAX_GUARDED_BY(mu);    ///< awaiting a sweep
    /// Lock-free engine buffers (null under the mutex engine). Producers of
    /// `ready_ring` are control sweeps only (serialized by the control
    /// mutex); consumers are any worker. `deposit_ring` is the inverse:
    /// any worker pushes, only sweeps pop.
    std::unique_ptr<MpmcRing<Assignment>> ready_ring;
    std::unique_ptr<MpmcRing<Ticket>> deposit_ring;
    /// Lock-free occupancy hints so probes and sweeps skip empty shards
    /// without touching the buffers. Relaxed: a hint read races its buffer
    /// by design — under the mutex engine every read that acts on the
    /// buffer re-checks under mu; under the lock-free engine the ring ops
    /// themselves re-check (a stale hint costs one empty pop or a
    /// conservative sibling bite, never correctness). Updated with
    /// fetch_add/sub so concurrent updates from both ends of a ring
    /// interleave without losing counts; transient over/under-shoot
    /// (including momentary wrap-below-zero) is part of the contract.
    std::atomic<std::uint32_t> ready_n{0};
    std::atomic<std::uint32_t> deposit_n{0};
  };

  [[nodiscard]] std::uint32_t home_of(WorkerId w) const { return w % nshards_; }
  /// Mutex engine: take up to max_n from one shard's buffer (front first:
  /// handout order). Kept verbatim from PR 4 — including its O(buffer)
  /// erase-from-front — because it IS the pinned baseline bench_t12 gates
  /// the rings against; the shipped engine's pop_from is O(taken).
  std::size_t take_from(Shard& s, std::size_t max_n, std::vector<Assignment>& out)
      PAX_REQUIRES(s.mu);
  /// Lock-free engine: pop up to max_n from one shard's ready ring. Returns
  /// 0 without touching the ring when the occupancy hint reads empty.
  std::size_t pop_from(Shard& s, std::size_t max_n, std::vector<Assignment>& out);
  /// Lock-free engine warm+slow protocol (nshards_ > 1).
  ShardAcquire acquire_lockfree(WorkerId w, std::size_t max_n,
                                std::vector<Ticket>& done,
                                std::vector<Assignment>& out)
      PAX_EXCLUDES(control_mu_);
  /// Control sweep body; caller holds the control mutex. `direct` (may be
  /// null) carries tickets that overflowed a deposit ring — retired in the
  /// same coalesced batch and cleared.
  void sweep_locked(ShardAcquire& res, WorkerId w, std::size_t max_n,
                    std::vector<Assignment>& out, std::vector<Ticket>* direct)
      PAX_REQUIRES(control_mu_);
  /// Lock-free engine: push assignments from the control-plane spill into
  /// ready rings (oldest first, round-robin after the caller's home).
  /// Returns the number of shards touched (for the kShardFlush charge).
  std::uint64_t scatter_spill(WorkerId w, ShardAcquire& res)
      PAX_REQUIRES(control_mu_);
  /// Stop path: drain every shard ready buffer/ring and the scatter spill,
  /// abandoning the recalled tickets in the core (no granule completion).
  /// Cold path by definition — runs once per cancellation.
  void recall_abandon_locked() PAX_REQUIRES(control_mu_);
  /// Refresh the core-side census after a control section.
  void publish_core_census() PAX_REQUIRES(control_mu_);
  /// Emit a worker-track record onto the trace buffer (no-op when tracing
  /// is off). Called by the owning worker with NO executive lock held — the
  /// clock read must stay out of the timed control sections.
  void trace_event(WorkerId w, obs::TraceKind kind, std::uint32_t aux);

  CostModel costs_;
  std::uint32_t nshards_;
  std::uint32_t depth_;
  std::uint32_t flush_;
  /// Engine selector (ShardConfig::lockfree), immutable after construction.
  const bool lockfree_;
  /// Trace plumbing (ShardConfig::trace): set at construction, immutable
  /// after — workers read it with no synchronization.
  obs::TraceBuffer* const trace_;
  const std::uint64_t trace_job_;

  /// Rank: control — the outermost lock of the whole system. Guards the
  /// single-threaded core, the sweep staging and the scatter spill; shard
  /// locks nest inside it (mutex engine / census freeze only).
  mutable RankedMutex<LockRank::kControl> control_mu_;
  /// The wrapped single-threaded executive. Every entry goes through the
  /// control mutex except the three annotated escape hatches above (atomic
  /// grain limit, constant config, quiescent driver access).
  ExecutiveCore core_ PAX_GUARDED_BY(control_mu_);
  std::vector<std::unique_ptr<Shard>> shards_;

  // Census. ready_/deposited_ change beside the buffer operations (under
  // shard locks in the mutex engine, as relaxed updates adjacent to ring
  // ops in the lock-free one — where they may transiently undershoot while
  // an op's count catches up); the rest change under the control mutex. All
  // reads are lock-free probes (orders documented at the probe methods
  // above). ready_ includes the control-plane scatter spill, so parked
  // overflow work keeps work_available() true.
  std::atomic<std::int64_t> ready_{0};       ///< assignments across shard buffers
  std::atomic<std::int64_t> deposited_{0};   ///< unretired deposited tickets
  std::atomic<std::uint64_t> core_waiting_{0};   ///< core waiting-queue size
  std::atomic<std::uint64_t> core_elevated_{0};  ///< ... elevated entries
  std::atomic<bool> core_idle_{false};
  std::atomic<bool> started_{false};
  std::atomic<bool> finished_{false};
  /// Stop flag mirror (authoritative copy lives in the core, under the
  /// control mutex). Set once by request_stop(); read by acquire() to route
  /// workers into the drain path and by runnable() to stop advertising
  /// phantom core work.
  std::atomic<bool> stop_requested_{false};
  /// Faulted-terminal mirror (authoritative copy is core_.faulted(), under
  /// the control mutex). Written once by fail_batch(); read lock-free by the
  /// pool's finalize election after finished() flips.
  std::atomic<bool> faulted_flag_{false};
  /// Lock-free engine: occupancy of scatter_spill_ (relaxed mirror, written
  /// under the control mutex) so acquire() can route a worker into a sweep
  /// when only spilled work remains — without taking the mutex to look.
  std::atomic<std::uint32_t> spill_n_{0};

  ShardStats stats_;
  /// Sweep staging: collected tickets. Reserved at construction to the
  /// worst-case outstanding-ticket count so sweeps never reallocate.
  std::vector<Ticket> sweep_tickets_ PAX_GUARDED_BY(control_mu_);
  /// Lock-free engine: per-sweep carve staging (assignments are carved here
  /// and then pushed into a ready ring one by one) and the overflow spill
  /// for pushes a full ring refused. Both reserved at construction; the
  /// spill can grow only through the transient lapped-cell refusal
  /// documented in mpmc_ring.hpp — an exceptional slow path.
  std::vector<Assignment> scatter_buf_ PAX_GUARDED_BY(control_mu_);
  std::vector<Assignment> scatter_spill_ PAX_GUARDED_BY(control_mu_);
};

}  // namespace pax
