// granule.hpp — granule-level vocabulary types for the PAX core.
//
// The paper's unit of work is the *granule* ("computational granule"): one
// iteration of a parallel DO loop. Phases own [0, n) granules; descriptors
// cover contiguous sub-ranges; assignments hand ranges to workers.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace pax {

/// Priority classes in the waiting computation queue. The paper places
/// conflict-released (and enabling) computations "ahead of the normal
/// computations in the queue and, thus, given higher priority".
enum class Priority : std::uint8_t {
  kNormal = 0,
  kElevated = 1,
};

/// Identifies one *dispatch instance* of a phase. Programs may loop (GO TO),
/// so the same PhaseId can run many times; each run gets a fresh RunId.
using RunId = std::uint32_t;
inline constexpr RunId kNoRun = 0xFFFFFFFFu;

/// Ticket identifying an outstanding worker assignment.
using Ticket = std::uint32_t;
inline constexpr Ticket kNoTicket = 0xFFFFFFFFu;

/// A contiguous piece of one run handed to a worker.
struct Assignment {
  Ticket ticket = kNoTicket;
  RunId run = kNoRun;
  PhaseId phase = kNoPhase;
  GranuleRange range{};
  Priority priority = Priority::kNormal;
};

/// Coalesce a sorted list of granule ids into maximal contiguous ranges.
std::vector<GranuleRange> coalesce_sorted(const std::vector<GranuleId>& ids);

/// Append-into form for hot paths: coalesces into `out` (cleared first) so a
/// caller-owned scratch vector keeps its capacity across calls.
void coalesce_sorted_into(const std::vector<GranuleId>& ids,
                          std::vector<GranuleRange>& out);

}  // namespace pax
