// pool_stats.hpp — per-job and pool-wide accounting for the pool runtime.
//
// Two independent accumulation paths cross-check each other: workers count
// what they execute (published into PoolStats at worker exit), and each job
// counts what is executed on its behalf (JobStats, merged under the job's
// own lock). The two paths never share a mutex — JobStats fields are
// guarded by the job mutex, the PoolStats accumulators by the pool mutex
// (ranks job < pool, DESIGN.md §11), and values cross between them only as
// locals captured in one section and republished in the other.
// test_pool asserts the per-job sums equal the pool totals.
// Per-job busy time against a solo-run baseline is the work-inflation
// measure of Acar/Charguéraud/Rainey that bench_t7_pool reports.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace pax::pool {

/// What one job cost, regardless of which workers ran it. Snapshot-able at
/// any time through JobHandle::stats(); final once the job reaches a
/// terminal state.
struct JobStats {
  std::uint64_t tasks = 0;
  std::uint64_t granules = 0;
  std::chrono::nanoseconds busy{0};  ///< body wall time summed over workers
  /// submit() → first worker adoption (zero while queued / when cancelled).
  std::chrono::nanoseconds queued{0};
  /// submit() → terminal state (still running: submit() → now).
  std::chrono::nanoseconds span{0};
  /// Job-bookkeeping critical sections (adoption rounds): stats merges and
  /// open/finalize transitions under the job mutex. Executive traffic is
  /// counted separately below, per shard plane.
  std::uint64_t exec_lock_acquisitions = 0;
  /// Control-mutex sections on this job's sharded executive (sweeps,
  /// single-shard refills, idle work) and the time they held it.
  std::uint64_t exec_control_acquisitions = 0;
  std::uint64_t exec_lock_hold_ns = 0;
  /// Refills served lock-locally from a shard buffer (home or sibling) —
  /// no control-mutex section involved.
  std::uint64_t shard_hits = 0;
  /// Lock-free engine split for this job's executive (zero under the mutex
  /// engine): ring pops / dry probes / refused pushes / CAS retries.
  std::uint64_t shard_ring_pops = 0;
  std::uint64_t shard_ring_pop_empty = 0;
  std::uint64_t shard_ring_push_full = 0;
  std::uint64_t shard_ring_cas_retries = 0;
  /// Mutex engine split (zero when lock-free): warm shard-mutex sections and
  /// their acquire-to-release time on this job's executive.
  std::uint64_t shard_lock_acquisitions = 0;
  std::uint64_t shard_lock_hold_ns = 0;
  /// Resolved shard count of this job's executive.
  std::uint32_t shards = 0;
  /// Assignments of this job obtained by local-queue stealing (no executive
  /// round-trip; the thief is always resident on this job).
  std::uint64_t steals = 0;
  /// High-water mark of this job's per-worker local run-queues (recorded at
  /// job completion).
  std::uint64_t peak_local_queue = 0;
  /// Deadline accounting (serving layer, DESIGN.md §14). Set at the terminal
  /// transition, under the job mutex, so done() implies these are final.
  bool has_deadline = false;
  /// True when the job reached its terminal state after its deadline — or
  /// was rejected by admission control (a rejected deadline job has, by
  /// definition, missed). Cancelled jobs never count as missed.
  bool deadline_missed = false;
  /// deadline − terminal time: positive = finished with this much headroom,
  /// negative = this far past the deadline. Zero when has_deadline is false.
  std::chrono::nanoseconds deadline_slack{0};
  /// Fault containment (DESIGN.md §15). The executive-side counters below
  /// are written once, at the terminal transition (the finalize path reads
  /// the job executive's FaultStats before taking the job mutex), so they
  /// are final exactly when done() — a mid-run stats() snapshot reports
  /// them as zero even while faults are being retried.
  std::uint64_t granule_faults = 0;    ///< phase bodies that threw
  std::uint64_t granule_retries = 0;   ///< faulted ranges re-enqueued
  std::uint64_t granules_poisoned = 0; ///< granules past the retry budget
  std::uint64_t map_faults = 0;        ///< GranuleMapFn throws (edge degraded)
  /// True when the stuck-granule watchdog escalated this job (a granule
  /// exceeded SubmitOptions::granule_timeout). Implies kFailed unless a
  /// cancel won the terminal race.
  bool watchdog_expired = false;
  /// First fault site, human-readable (empty when the job never faulted).
  std::string fault_summary;
};

/// Pool-wide accounting. All worker-side totals (tasks, granules, lock
/// acquisitions, rotations, and the wall/busy vectors) are published when
/// the workers exit: a mid-run stats() call sees live job counters
/// (jobs_submitted/completed/cancelled) but zero worker totals, and
/// utilization() is only meaningful after shutdown(). Per-job live numbers
/// are available any time through JobHandle::stats().
struct PoolStats {
  std::uint64_t jobs_submitted = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_cancelled = 0;
  /// Jobs refused by admission control (PoolConfig::max_pending): terminal
  /// state kRejected, zero execution. Counted in jobs_submitted too.
  std::uint64_t jobs_rejected = 0;
  /// Deadline-carrying jobs that completed past their deadline or were
  /// rejected (see JobStats::deadline_missed) / completed within it.
  std::uint64_t jobs_deadline_missed = 0;
  std::uint64_t jobs_deadline_met = 0;
  /// Jobs that ended in JobState::kFailed (poisoned granule or watchdog
  /// escalation). Disjoint from completed/cancelled/rejected; failed jobs
  /// take no part in the deadline met/missed tally.
  std::uint64_t jobs_failed = 0;
  /// Fault containment (DESIGN.md §15): granule_faults is the worker-side
  /// count of bodies that threw (published at worker exit, like the other
  /// worker totals); the rest are executive-side sums accumulated when each
  /// job finalizes. test_fault pins the two accounting paths consistent.
  std::uint64_t granule_faults = 0;
  std::uint64_t granule_retries = 0;
  std::uint64_t granules_poisoned = 0;
  std::uint64_t map_faults = 0;
  /// Stuck-granule watchdog escalations (one per flagged job).
  std::uint64_t watchdog_flags = 0;
  std::uint64_t tasks_executed = 0;     ///< worker-side totals
  std::uint64_t granules_executed = 0;  ///< worker-side totals
  /// Job-bookkeeping critical sections across workers (adoption rounds).
  std::uint64_t exec_lock_acquisitions = 0;
  /// Executive control-mutex sections and hold time summed over *finished*
  /// jobs (accumulated when each job completes).
  std::uint64_t exec_control_acquisitions = 0;
  std::uint64_t exec_lock_hold_ns = 0;
  /// Shard-buffer refills (no control section) summed over finished jobs.
  std::uint64_t shard_hits = 0;
  /// Lock-free / mutex engine splits summed over finished jobs (see
  /// JobStats for field meanings).
  std::uint64_t shard_ring_pops = 0;
  std::uint64_t shard_ring_pop_empty = 0;
  std::uint64_t shard_ring_push_full = 0;
  std::uint64_t shard_ring_cas_retries = 0;
  std::uint64_t shard_lock_acquisitions = 0;
  std::uint64_t shard_lock_hold_ns = 0;
  /// Cross-job moves: a worker released a drained resident and adopted a
  /// different job. The overlap mechanism working at program scope.
  std::uint64_t rotations = 0;
  /// Assignments obtained by stealing from a peer's local queue (within the
  /// resident job; tickets are per-core, so steals never cross jobs).
  std::uint64_t steals = 0;
  /// Steal attempts that found every peer queue of the resident job dry —
  /// these precede a rotation.
  std::uint64_t steal_fail_spins = 0;
  /// High-water mark of local run-queue occupancy across completed jobs.
  std::uint64_t peak_local_queue = 0;
  /// Process-wide heap traffic since pool construction (all threads),
  /// measured when the binary links the alloc_stats hooks — zero otherwise.
  std::uint64_t heap_allocs = 0;
  std::uint64_t heap_bytes = 0;
  std::vector<std::chrono::nanoseconds> worker_busy;
  std::vector<std::chrono::nanoseconds> worker_wall;  ///< in-worker_main span
  /// Unified metrics snapshot (obs/metrics.hpp): the fields above under
  /// stable dotted names plus the per-worker cell sums. Worker-side entries
  /// finalize at shutdown(), like the legacy totals; test_obs pins the two
  /// views equal.
  obs::MetricsSnapshot metrics;

  /// Fraction of total worker wall time spent inside phase bodies (same
  /// definition as rt::RtResult::utilization()).
  [[nodiscard]] double utilization() const {
    std::chrono::nanoseconds busy{0}, wall{0};
    for (auto b : worker_busy) busy += b;
    for (auto w : worker_wall) wall += w;
    if (wall.count() == 0) return 0.0;
    return static_cast<double>(busy.count()) / static_cast<double>(wall.count());
  }
};

}  // namespace pax::pool
