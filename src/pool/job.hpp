// job.hpp — one submitted PhaseProgram inside the pool runtime.
//
// Each job wraps its own executive, sharded (core/sharded_executive.hpp): the
// granule handout is partitioned across independently-locked shard buffers,
// so resident workers of the *same* job no longer contend on one job mutex —
// the serial resource the paper worries about is now per-shard — while
// concurrent jobs stay fully independent as before. The job's own mutex
// shrinks to bookkeeping (stats merge, open/finalize timestamps); the pool's
// cross-job scheduling works entirely on cheap atomic probes backed by the
// sharded executive's census.
//
// Lock discipline (pool-wide, DESIGN.md §11): a thread never holds a job
// mutex and the pool mutex at the same time, and never holds the job mutex
// across executive calls (the sharded executive locks internally). The job
// mutex ranks below the pool mutex and above every executive lock, so in
// debug builds the rank validator aborts on a job mutex acquired under the
// pool mutex and on any executive lock acquired under a job mutex (the two
// ways those rules have actually been at risk). Probes flip while
// only shard/control locks are held, so every path that can turn a sleeper's
// predicate true passes through the relevant mutex (empty critical section)
// before notifying — see PoolRuntime::wake_pool() and cancellation in
// pool_runtime.cpp.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/check.hpp"
#include "common/lock_rank.hpp"
#include "common/thread_annotations.hpp"
#include "core/executive.hpp"
#include "core/sharded_executive.hpp"
#include "pool/pool_stats.hpp"
#include "pool/scheduler_policy.hpp"
#include "runtime/body_table.hpp"
#include "sched/dispatcher.hpp"

namespace pax::pool {

enum class JobState : std::uint8_t {
  kQueued,     ///< submitted; no worker has adopted it yet
  kRunning,    ///< its executive has start()ed
  kCancelled,  ///< cancelled — before open, or mid-run after the cooperative
               ///< stop drained its in-flight granules (terminal)
  kComplete,   ///< program finished (terminal)
  kRejected,   ///< refused by admission control; never executed (terminal)
  kFailed,     ///< faulted terminal (DESIGN.md §15): a poisoned granule made
               ///< the dataflow unsatisfiable, or the stuck-granule watchdog
               ///< escalated; remaining work was recalled and drained, the
               ///< pool and sibling jobs are unaffected, and
               ///< JobStats::fault_summary carries the first fault site
};

[[nodiscard]] inline const char* to_string(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kCancelled: return "cancelled";
    case JobState::kComplete: return "complete";
    case JobState::kRejected: return "rejected";
    case JobState::kFailed: return "failed";
  }
  return "?";
}

[[nodiscard]] inline bool is_terminal(JobState s) {
  return s == JobState::kComplete || s == JobState::kCancelled ||
         s == JobState::kRejected || s == JobState::kFailed;
}

class PoolRuntime;

namespace detail {

struct PoolCtl;

/// Pool-internal job record. Lifetime is shared between the pool's runnable
/// list and any JobHandles. The submitted program and bodies are borrowed:
/// the caller keeps them alive until the job reaches a terminal state.
struct Job {
  /// Sentinel deadline for "no deadline".
  static constexpr std::chrono::steady_clock::time_point kNoDeadlineTp =
      std::chrono::steady_clock::time_point::max();

  Job(std::uint64_t id_in, int priority_in, const PhaseProgram& program,
      const rt::BodyTable& bodies_in, ExecConfig config, CostModel costs,
      const sched::DispatchConfig& dispatch, const ShardConfig& shard_config,
      std::chrono::steady_clock::time_point deadline_in = kNoDeadlineTp,
      std::chrono::nanoseconds granule_timeout_in = std::chrono::nanoseconds{0})
      : id(id_in),
        priority(priority_in),
        deadline(deadline_in),
        granule_timeout(granule_timeout_in),
        bodies(bodies_in),
        dispatcher(dispatch),
        exec(program, config, costs, shard_config),
        submitted_at(std::chrono::steady_clock::now()) {}

  const std::uint64_t id;
  const int priority;
  /// Absolute completion deadline (kNoDeadlineTp = none). Drives the EDF
  /// pick and the met/missed accounting at finalize.
  const std::chrono::steady_clock::time_point deadline;
  /// Stuck-granule bound (SubmitOptions::granule_timeout; <= 0 = none): a
  /// single body invocation of this job exceeding it gets the job flagged
  /// by the pool watchdog and escalated through the stop/recall machinery.
  const std::chrono::nanoseconds granule_timeout;
  const rt::BodyTable& bodies;
  /// Per-job dispatch layer: one local run-queue per pool worker, refilled
  /// from this job's sharded executive. Steals stay within the job (tickets
  /// are per-core); cross-job balance is the rotation pick's business.
  sched::Dispatcher dispatcher;
  /// This job's executive; all executive locking is internal (shard locks +
  /// control mutex), so workers call it without holding `mu`.
  ShardedExecutive exec;

  /// Back-reference to the pool's shared control block, set by submit()
  /// before the job is published anywhere (then never written again — the
  /// shared_ptr publication carries it). Weak: handles hold the job alive,
  /// but must not keep a destroyed pool's bookkeeping alive with it —
  /// lock() failing is how cancel() learns the pool is gone.
  std::weak_ptr<PoolCtl> ctl;

  // --- guarded by mu (job bookkeeping only) --------------------------------
  /// Rank: job — held alone (never across executive calls, never under the
  /// pool mutex; the rank validator aborts if either slips).
  RankedMutex<LockRank::kJob> mu;
  JobStats stats PAX_GUARDED_BY(mu);
  /// Set by a mid-run cancel (the one that wins returns true); read at
  /// finalize to pick the terminal state. Under mu so cancel/finalize agree.
  bool cancel_requested PAX_GUARDED_BY(mu) = false;
  /// Set by the pool watchdog when a granule exceeded granule_timeout; read
  /// at finalize (precedence: cancel > fault/watchdog > complete). Under mu
  /// for the same agreement reason as cancel_requested.
  bool watchdog_expired PAX_GUARDED_BY(mu) = false;
  /// Set once at construction, read-only afterwards — no guard needed.
  const std::chrono::steady_clock::time_point submitted_at;
  std::chrono::steady_clock::time_point opened_at PAX_GUARDED_BY(mu){};
  std::chrono::steady_clock::time_point finished_at PAX_GUARDED_BY(mu){};

  /// Signalled (with mu) on transition to a terminal state. _any variant:
  /// waits go through RankedUniqueLock's annotated lock()/unlock().
  std::condition_variable_any done_cv;

  // --- atomic probes for the lock-free cross-job pick ----------------------
  /// Terminal flips are release stores (made under mu in the finalize and
  /// cancel paths); handle-side reads are acquire so the terminal stats
  /// written before the flip are visible after it. Scheduling-loop reads
  /// stay relaxed — they only pick a candidate, which the adopter verifies.
  std::atomic<JobState> state{JobState::kQueued};
  /// Cached ShardedExecutive::runnable() (shard/core work, sweepable
  /// deposits, or pending idle work). Relaxed: a stale probe costs one
  /// rotation; the wake path through the pool mutex carries the ordering.
  std::atomic<bool> core_runnable{false};
  /// Relaxed monotonic progress counter (observability only).
  std::atomic<std::uint64_t> granules_done{0};

  /// Refresh the pick probe from the executive census and the local queues;
  /// true when it flipped from not-runnable to runnable — only then can a
  /// sleeper be stuck, so only then must the caller wake the pool. With
  /// stealing on, local-queue work counts as runnable because a rotating
  /// worker can adopt this job purely to steal from a loaded peer (rundown
  /// stealing at pool scope) — the steal then drains that work, so the probe
  /// converges false. With stealing off the term must stay out: an adopter
  /// could neither steal nor refill and would busy-spin re-adopting the job
  /// until the owner drained its queue. The census a sleeper depends on
  /// seeing flips inside the executive's shard/control sections, and every
  /// refill refreshes this probe afterwards, so the wake path (through the
  /// pool mutex) still closes the lost-wakeup window; later owner pops can
  /// only make the probe over-report, which the adopting worker resolves by
  /// rotating on.
  [[nodiscard]] bool refresh_probes() {
    const bool now =
        exec.runnable() ||
        (dispatcher.config().steal && dispatcher.any_local_work());
    const bool before = core_runnable.exchange(now, std::memory_order_relaxed);
    return now && !before;
  }

  /// Probe: could a rotating worker make progress here? Queued jobs count
  /// (adoption start()s them). A finished-but-unfinalized executive counts
  /// too: a mid-run cancel can flip the core finished from a *non-worker*
  /// thread with nobody resident, and only an adopting worker can run the
  /// finalize election — without this term the job would hang unfinalized.
  /// May be stale — the adopting worker verifies and rotates on if the work
  /// evaporated.
  [[nodiscard]] bool runnable_probe() const {
    const JobState s = state.load(std::memory_order_relaxed);
    if (s == JobState::kQueued) return true;
    if (s != JobState::kRunning) return false;
    return core_runnable.load(std::memory_order_relaxed) || exec.finished();
  }

  [[nodiscard]] bool has_deadline() const { return deadline != kNoDeadlineTp; }

  /// This job's deadline as the JobView encoding (ns since the steady-clock
  /// epoch; kNoDeadline when none) for the EDF comparator.
  [[nodiscard]] std::int64_t deadline_view_ns() const {
    if (!has_deadline()) return kNoDeadline;
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               deadline.time_since_epoch())
        .count();
  }

  /// Snapshot of the stats. Caller holds mu (the executive-side counters are
  /// atomics and read lock-free).
  [[nodiscard]] JobStats stats_snapshot() const PAX_REQUIRES(mu) {
    JobStats out = stats;
    const ShardStatsView ss = exec.stats();
    out.exec_control_acquisitions = ss.control_acquisitions;
    out.exec_lock_hold_ns = ss.control_hold_ns;
    out.shard_hits = ss.shard_hits + ss.sibling_hits;
    out.shard_ring_pops = ss.ring_pops;
    out.shard_ring_pop_empty = ss.ring_pop_empty;
    out.shard_ring_push_full = ss.ring_push_full;
    out.shard_ring_cas_retries = ss.ring_cas_retries;
    out.shard_lock_acquisitions = ss.shard_lock_acquisitions;
    out.shard_lock_hold_ns = ss.shard_lock_hold_ns;
    out.shards = exec.shards();
    const auto now = std::chrono::steady_clock::now();
    const auto end =
        finished_at.time_since_epoch().count() != 0 ? finished_at : now;
    out.span = std::chrono::duration_cast<std::chrono::nanoseconds>(
        end - submitted_at);
    if (opened_at.time_since_epoch().count() != 0)
      out.queued = std::chrono::duration_cast<std::chrono::nanoseconds>(
          opened_at - submitted_at);
    return out;
  }
};

/// The pool's shared control block: the bookkeeping mutex, the non-terminal
/// job list, and every pool-plane counter. The PoolRuntime owns it through a
/// shared_ptr and each Job holds it weakly, so a JobHandle that outlives the
/// pool degrades gracefully (cancel() finds the control block gone and
/// returns false) instead of dereferencing a dangling runtime pointer.
struct PoolCtl {
  /// Pool bookkeeping mutex — guards everything below. Rank: pool (above
  /// the job rank: a thread never holds a job mutex and this together; the
  /// rank validator turns that documented rule into an abort).
  mutable RankedMutex<LockRank::kPool> mu;
  /// Workers sleep; drain() waits here too. _any variant: waits go through
  /// RankedUniqueLock's annotated lock()/unlock().
  std::condition_variable_any cv;

  std::vector<std::shared_ptr<Job>> jobs PAX_GUARDED_BY(mu);  ///< non-terminal
  std::uint64_t next_id PAX_GUARDED_BY(mu) = 0;
  bool stop PAX_GUARDED_BY(mu) = false;

  // Live job counters (valid mid-run).
  std::uint64_t jobs_submitted PAX_GUARDED_BY(mu) = 0;
  std::uint64_t jobs_completed PAX_GUARDED_BY(mu) = 0;
  std::uint64_t jobs_cancelled PAX_GUARDED_BY(mu) = 0;
  std::uint64_t jobs_rejected PAX_GUARDED_BY(mu) = 0;
  std::uint64_t jobs_deadline_missed PAX_GUARDED_BY(mu) = 0;
  std::uint64_t jobs_deadline_met PAX_GUARDED_BY(mu) = 0;
  std::uint64_t jobs_failed PAX_GUARDED_BY(mu) = 0;
  // Fault containment (DESIGN.md §15): executive-side sums accumulated at
  // each job's finalize; worker_faults is the independent worker-side count
  // (bodies that threw), published at worker exit like tasks/granules.
  std::uint64_t job_granule_faults PAX_GUARDED_BY(mu) = 0;
  std::uint64_t job_granule_retries PAX_GUARDED_BY(mu) = 0;
  std::uint64_t job_granules_poisoned PAX_GUARDED_BY(mu) = 0;
  std::uint64_t job_map_faults PAX_GUARDED_BY(mu) = 0;
  std::uint64_t watchdog_flags PAX_GUARDED_BY(mu) = 0;
  std::uint64_t worker_faults PAX_GUARDED_BY(mu) = 0;

  // Worker-side totals, published at worker exit / job completion.
  std::uint64_t tasks PAX_GUARDED_BY(mu) = 0;
  std::uint64_t granules PAX_GUARDED_BY(mu) = 0;
  std::uint64_t lock_acquisitions PAX_GUARDED_BY(mu) = 0;
  std::uint64_t exec_control_acquisitions PAX_GUARDED_BY(mu) = 0;
  std::uint64_t exec_lock_hold_ns PAX_GUARDED_BY(mu) = 0;
  std::uint64_t shard_hits PAX_GUARDED_BY(mu) = 0;
  std::uint64_t shard_ring_pops PAX_GUARDED_BY(mu) = 0;
  std::uint64_t shard_ring_pop_empty PAX_GUARDED_BY(mu) = 0;
  std::uint64_t shard_ring_push_full PAX_GUARDED_BY(mu) = 0;
  std::uint64_t shard_ring_cas_retries PAX_GUARDED_BY(mu) = 0;
  std::uint64_t shard_lock_acquisitions PAX_GUARDED_BY(mu) = 0;
  std::uint64_t shard_lock_hold_ns PAX_GUARDED_BY(mu) = 0;
  std::uint64_t rotations PAX_GUARDED_BY(mu) = 0;
  std::uint64_t steals PAX_GUARDED_BY(mu) = 0;
  std::uint64_t steal_fail_spins PAX_GUARDED_BY(mu) = 0;
  std::uint64_t peak_local_queue PAX_GUARDED_BY(mu) = 0;
  std::vector<std::chrono::nanoseconds> busy PAX_GUARDED_BY(mu);
  std::vector<std::chrono::nanoseconds> worker_wall PAX_GUARDED_BY(mu);

  [[nodiscard]] bool any_runnable_locked() const PAX_REQUIRES(mu) {
    for (const auto& j : jobs)
      if (j->runnable_probe()) return true;
    return false;
  }

  /// Policy pick over the runnable jobs' atomic probes.
  [[nodiscard]] std::shared_ptr<Job> pick_job_locked(SchedPolicy policy) const
      PAX_REQUIRES(mu) {
    std::shared_ptr<Job> best;
    JobView best_view;
    for (const auto& j : jobs) {
      if (!j->runnable_probe()) continue;
      const JobView v{j->id, j->priority,
                      j->granules_done.load(std::memory_order_relaxed),
                      j->deadline_view_ns()};
      if (best == nullptr || schedules_before(v, best_view, policy)) {
        best = j;
        best_view = v;
      }
    }
    return best;
  }

  /// Erase `job` from the runnable list if present.
  void remove_job_locked(const std::shared_ptr<Job>& job) PAX_REQUIRES(mu) {
    for (auto it = jobs.begin(); it != jobs.end(); ++it) {
      if (*it == job) {
        jobs.erase(it);
        return;
      }
    }
  }

  /// Empty mu critical section + notify: makes probe flips (done under a job
  /// mutex or inside an executive) visible to sleepers without ever nesting
  /// the locks.
  void wake() PAX_EXCLUDES(mu) {
    { RankedLock lock(mu); }
    cv.notify_all();
  }
};

}  // namespace detail

/// Caller-side view of a submitted job: poll, wait (with timeout), cancel,
/// stats. Copyable; all copies refer to the same job. Handles may outlive
/// the PoolRuntime that issued them: the job record is shared-owned, and
/// cancel() reaches the pool through a weak reference, so after shutdown a
/// handle still answers state()/stats() and cancel() simply returns false
/// (shutdown drains every job to a terminal state first).
class JobHandle {
 public:
  JobHandle() = default;

  [[nodiscard]] bool valid() const { return job_ != nullptr; }
  [[nodiscard]] std::uint64_t id() const {
    PAX_CHECK_MSG(job_ != nullptr, "empty JobHandle");
    return job_->id;
  }

  /// Non-blocking state poll.
  [[nodiscard]] JobState state() const {
    PAX_CHECK_MSG(job_ != nullptr, "empty JobHandle");
    return job_->state.load(std::memory_order_acquire);
  }

  /// True when the job reached a terminal state (complete, cancelled,
  /// rejected, or failed). Implies stats() is final (the terminal flip is a
  /// release store made under the job mutex AFTER the final bookkeeping
  /// writes — including, for kFailed, the fault accounting and
  /// fault_summary).
  [[nodiscard]] bool done() const { return is_terminal(state()); }

  /// Block until the job reaches a terminal state; returns it. A job that
  /// faults terminally wakes this wait exactly like a completing one: the
  /// finalize election flips it to kFailed and notifies, so wait() returns
  /// kFailed with stats() final (fault_summary, retry and poison counts
  /// included). test_fault pins this contract.
  JobState wait() {
    PAX_CHECK_MSG(job_ != nullptr, "empty JobHandle");
    RankedUniqueLock lock(job_->mu);
    job_->done_cv.wait(lock, [&] {
      // acquire: pairs with the release store in the finalize/cancel/reject
      // paths so the terminal stats written before the flip are visible.
      return is_terminal(job_->state.load(std::memory_order_acquire));
    });
    return job_->state.load(std::memory_order_acquire);
  }

  /// Block until the job reaches a terminal state or `tp` passes; returns
  /// the state observed at return (non-terminal on timeout — the job keeps
  /// running; pair with cancel() for a hard timeout).
  JobState wait_until(std::chrono::steady_clock::time_point tp) {
    PAX_CHECK_MSG(job_ != nullptr, "empty JobHandle");
    RankedUniqueLock lock(job_->mu);
    while (true) {
      const JobState s = job_->state.load(std::memory_order_acquire);
      if (is_terminal(s)) return s;
      if (job_->done_cv.wait_until(lock, tp) == std::cv_status::timeout)
        return job_->state.load(std::memory_order_acquire);
    }
  }

  JobState wait_for(std::chrono::nanoseconds d) {
    return wait_until(std::chrono::steady_clock::now() + d);
  }

  /// Request cancellation. True exactly when this call will be the reason
  /// the job ends kCancelled: either it was still queued (cancelled on the
  /// spot, never runs) or it was running and this call won the mid-run
  /// cancel — the executive stops handing out granules, recalls buffered
  /// work, drains what is in flight, and a worker finalizes the job as
  /// kCancelled with consistent partial stats. False when the job already
  /// ended, a cancel is already in flight, or the pool is gone. NOTE: a
  /// winning mid-run cancel can race the final granule retiring — the job
  /// still finalizes kCancelled, possibly with fully-complete stats.
  bool cancel();

  /// Stats snapshot (final once done()).
  [[nodiscard]] JobStats stats() const {
    PAX_CHECK_MSG(job_ != nullptr, "empty JobHandle");
    RankedLock lock(job_->mu);
    return job_->stats_snapshot();
  }

 private:
  friend class PoolRuntime;
  explicit JobHandle(std::shared_ptr<detail::Job> job) : job_(std::move(job)) {}

  std::shared_ptr<detail::Job> job_;
};

}  // namespace pax::pool
