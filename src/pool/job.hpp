// job.hpp — one submitted PhaseProgram inside the pool runtime.
//
// Each job wraps its own executive, sharded (core/sharded_executive.hpp): the
// granule handout is partitioned across independently-locked shard buffers,
// so resident workers of the *same* job no longer contend on one job mutex —
// the serial resource the paper worries about is now per-shard — while
// concurrent jobs stay fully independent as before. The job's own mutex
// shrinks to bookkeeping (stats merge, open/finalize timestamps); the pool's
// cross-job scheduling works entirely on cheap atomic probes backed by the
// sharded executive's census.
//
// Lock discipline (pool-wide, DESIGN.md §11): a thread never holds a job
// mutex and the pool mutex at the same time, and never holds the job mutex
// across executive calls (the sharded executive locks internally). The job
// mutex ranks below the pool mutex and above every executive lock, so in
// debug builds the rank validator aborts on a job mutex acquired under the
// pool mutex and on any executive lock acquired under a job mutex (the two
// ways those rules have actually been at risk). Probes flip while
// only shard/control locks are held, so every path that can turn a sleeper's
// predicate true passes through the relevant mutex (empty critical section)
// before notifying — see PoolRuntime::wake_pool() and cancellation in
// pool_runtime.cpp.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>

#include "common/check.hpp"
#include "common/lock_rank.hpp"
#include "common/thread_annotations.hpp"
#include "core/executive.hpp"
#include "core/sharded_executive.hpp"
#include "pool/pool_stats.hpp"
#include "runtime/body_table.hpp"
#include "sched/dispatcher.hpp"

namespace pax::pool {

enum class JobState : std::uint8_t {
  kQueued,     ///< submitted; no worker has adopted it yet
  kRunning,    ///< its executive has start()ed
  kCancelled,  ///< cancelled before open (terminal)
  kComplete,   ///< program finished (terminal)
};

[[nodiscard]] inline const char* to_string(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kCancelled: return "cancelled";
    case JobState::kComplete: return "complete";
  }
  return "?";
}

class PoolRuntime;

namespace detail {

/// Pool-internal job record. Lifetime is shared between the pool's runnable
/// list and any JobHandles. The submitted program and bodies are borrowed:
/// the caller keeps them alive until the job reaches a terminal state.
struct Job {
  Job(std::uint64_t id_in, int priority_in, const PhaseProgram& program,
      const rt::BodyTable& bodies_in, ExecConfig config, CostModel costs,
      const sched::DispatchConfig& dispatch, const ShardConfig& shard_config)
      : id(id_in),
        priority(priority_in),
        bodies(bodies_in),
        dispatcher(dispatch),
        exec(program, config, costs, shard_config),
        submitted_at(std::chrono::steady_clock::now()) {}

  const std::uint64_t id;
  const int priority;
  const rt::BodyTable& bodies;
  /// Per-job dispatch layer: one local run-queue per pool worker, refilled
  /// from this job's sharded executive. Steals stay within the job (tickets
  /// are per-core); cross-job balance is the rotation pick's business.
  sched::Dispatcher dispatcher;
  /// This job's executive; all executive locking is internal (shard locks +
  /// control mutex), so workers call it without holding `mu`.
  ShardedExecutive exec;

  // --- guarded by mu (job bookkeeping only) --------------------------------
  /// Rank: job — held alone (never across executive calls, never under the
  /// pool mutex; the rank validator aborts if either slips).
  RankedMutex<LockRank::kJob> mu;
  JobStats stats PAX_GUARDED_BY(mu);
  /// Set once at construction, read-only afterwards — no guard needed.
  const std::chrono::steady_clock::time_point submitted_at;
  std::chrono::steady_clock::time_point opened_at PAX_GUARDED_BY(mu){};
  std::chrono::steady_clock::time_point finished_at PAX_GUARDED_BY(mu){};

  /// Signalled (with mu) on transition to a terminal state. _any variant:
  /// waits go through RankedUniqueLock's annotated lock()/unlock().
  std::condition_variable_any done_cv;

  // --- atomic probes for the lock-free cross-job pick ----------------------
  /// Terminal flips are release stores (made under mu in the finalize and
  /// cancel paths); handle-side reads are acquire so the terminal stats
  /// written before the flip are visible after it. Scheduling-loop reads
  /// stay relaxed — they only pick a candidate, which the adopter verifies.
  std::atomic<JobState> state{JobState::kQueued};
  /// Cached ShardedExecutive::runnable() (shard/core work, sweepable
  /// deposits, or pending idle work). Relaxed: a stale probe costs one
  /// rotation; the wake path through the pool mutex carries the ordering.
  std::atomic<bool> core_runnable{false};
  /// Relaxed monotonic progress counter (observability only).
  std::atomic<std::uint64_t> granules_done{0};

  /// Refresh the pick probe from the executive census and the local queues;
  /// true when it flipped from not-runnable to runnable — only then can a
  /// sleeper be stuck, so only then must the caller wake the pool. With
  /// stealing on, local-queue work counts as runnable because a rotating
  /// worker can adopt this job purely to steal from a loaded peer (rundown
  /// stealing at pool scope) — the steal then drains that work, so the probe
  /// converges false. With stealing off the term must stay out: an adopter
  /// could neither steal nor refill and would busy-spin re-adopting the job
  /// until the owner drained its queue. The census a sleeper depends on
  /// seeing flips inside the executive's shard/control sections, and every
  /// refill refreshes this probe afterwards, so the wake path (through the
  /// pool mutex) still closes the lost-wakeup window; later owner pops can
  /// only make the probe over-report, which the adopting worker resolves by
  /// rotating on.
  [[nodiscard]] bool refresh_probes() {
    const bool now =
        exec.runnable() ||
        (dispatcher.config().steal && dispatcher.any_local_work());
    const bool before = core_runnable.exchange(now, std::memory_order_relaxed);
    return now && !before;
  }

  /// Probe: could a rotating worker make progress here? Queued jobs count
  /// (adoption start()s them). May be stale — the adopting worker verifies
  /// and simply rotates on if the work evaporated.
  [[nodiscard]] bool runnable_probe() const {
    const JobState s = state.load(std::memory_order_relaxed);
    if (s == JobState::kQueued) return true;
    if (s != JobState::kRunning) return false;
    return core_runnable.load(std::memory_order_relaxed);
  }

  /// Snapshot of the stats. Caller holds mu (the executive-side counters are
  /// atomics and read lock-free).
  [[nodiscard]] JobStats stats_snapshot() const PAX_REQUIRES(mu) {
    JobStats out = stats;
    const ShardStatsView ss = exec.stats();
    out.exec_control_acquisitions = ss.control_acquisitions;
    out.exec_lock_hold_ns = ss.control_hold_ns;
    out.shard_hits = ss.shard_hits + ss.sibling_hits;
    out.shard_ring_pops = ss.ring_pops;
    out.shard_ring_pop_empty = ss.ring_pop_empty;
    out.shard_ring_push_full = ss.ring_push_full;
    out.shard_ring_cas_retries = ss.ring_cas_retries;
    out.shard_lock_acquisitions = ss.shard_lock_acquisitions;
    out.shard_lock_hold_ns = ss.shard_lock_hold_ns;
    out.shards = exec.shards();
    const auto now = std::chrono::steady_clock::now();
    const auto end =
        finished_at.time_since_epoch().count() != 0 ? finished_at : now;
    out.span = std::chrono::duration_cast<std::chrono::nanoseconds>(
        end - submitted_at);
    if (opened_at.time_since_epoch().count() != 0)
      out.queued = std::chrono::duration_cast<std::chrono::nanoseconds>(
          opened_at - submitted_at);
    return out;
  }
};

}  // namespace detail

/// Caller-side view of a submitted job: poll, wait, cancel-before-open,
/// stats. Copyable; all copies refer to the same job. Handles must not
/// outlive the PoolRuntime that issued them (cancel() calls back into it).
class JobHandle {
 public:
  JobHandle() = default;

  [[nodiscard]] bool valid() const { return job_ != nullptr; }
  [[nodiscard]] std::uint64_t id() const {
    PAX_CHECK_MSG(job_ != nullptr, "empty JobHandle");
    return job_->id;
  }

  /// Non-blocking state poll.
  [[nodiscard]] JobState state() const {
    PAX_CHECK_MSG(job_ != nullptr, "empty JobHandle");
    return job_->state.load(std::memory_order_acquire);
  }

  /// True when the job reached a terminal state (complete or cancelled).
  [[nodiscard]] bool done() const {
    const JobState s = state();
    return s == JobState::kComplete || s == JobState::kCancelled;
  }

  /// Block until the job reaches a terminal state; returns it.
  JobState wait() {
    PAX_CHECK_MSG(job_ != nullptr, "empty JobHandle");
    RankedUniqueLock lock(job_->mu);
    job_->done_cv.wait(lock, [&] {
      // acquire: pairs with the release store in the finalize/cancel paths
      // so the terminal stats written before the flip are visible after it.
      const JobState s = job_->state.load(std::memory_order_acquire);
      return s == JobState::kComplete || s == JobState::kCancelled;
    });
    return job_->state.load(std::memory_order_acquire);
  }

  /// Cancel the job if no worker has opened it yet. True exactly when this
  /// call cancelled it; false when it already opened (or already ended) —
  /// in-flight programs run to completion, there is no mid-run abort.
  bool cancel();

  /// Stats snapshot (final once done()).
  [[nodiscard]] JobStats stats() const {
    PAX_CHECK_MSG(job_ != nullptr, "empty JobHandle");
    RankedLock lock(job_->mu);
    return job_->stats_snapshot();
  }

 private:
  friend class PoolRuntime;
  JobHandle(PoolRuntime* pool, std::shared_ptr<detail::Job> job)
      : pool_(pool), job_(std::move(job)) {}

  PoolRuntime* pool_ = nullptr;
  std::shared_ptr<detail::Job> job_;
};

}  // namespace pax::pool
