// pool_runtime.hpp — a shared worker pool executing many PhasePrograms
// concurrently, so rundown tails overlap *across* programs.
//
// rt::ThreadedRuntime fills a phase's rundown with successor-phase granules,
// but still owns its threads and runs one program to completion — the same
// utilization collapse the paper fixes inside a program reappears at program
// scope: the last program's rundown idles the whole pool. PoolRuntime hosts
// one long-lived set of std::jthread workers and many jobs, each wrapping
// its own ExecutiveCore behind its own mutex. The worker loop generalizes
// the batched handoff into a two-level pick:
//
//   level 1 — prefer the resident job while its waiting queue is non-empty
//             (the single-program loop, via the shared sched::Dispatcher);
//   level 2 — when it drains (the rundown signal), rotate to another
//             runnable job chosen by SchedPolicy, so another program's
//             granules fill this program's tail.
//
// Oversubscribing a fixed processor set with independent work sources is the
// classic rundown cure at this scope (Argentini 2003, virtual processors for
// SPMD programs); per-job accounting (JobStats vs. a solo baseline) keeps
// the overlap honest about work inflation (Acar et al. 2017).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/alloc_stats.hpp"
#include "common/lock_rank.hpp"
#include "common/thread_annotations.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_ring.hpp"
#include "pool/job.hpp"
#include "pool/pool_stats.hpp"
#include "pool/scheduler_policy.hpp"
#include "sched/dispatcher.hpp"

namespace pax::pool {

struct PoolConfig {
  std::uint32_t workers = 4;
  /// Refill floor and the no-steal local-queue capacity, per resident job;
  /// with stealing on, one job-executive critical section may retire/pull
  /// up to the queue capacity (2x batch by default).
  std::uint32_t batch = 8;
  SchedPolicy policy = SchedPolicy::kFifo;
  /// Per-worker local run-queue capacity per job; 0 = auto (2x batch with
  /// stealing, exactly batch without — the PR 2 protocol).
  std::uint32_t queue_capacity = 0;
  /// Executive shards per job (independently-locked granule-handout
  /// partitions; see core/sharded_executive.hpp). kAutoShards = 2x workers
  /// clamped per job; 1 = the PR 3 per-job single-mutex protocol; 0 is
  /// invalid and fails at pool construction. A per-job override passed to
  /// submit() must agree with an explicit pool-level value.
  std::uint32_t shards = kAutoShards;
  /// Warm-path shard engine per job: true (default) = lock-free MPMC rings
  /// (DESIGN.md §13); false = the PR 4 mutex-guarded shard buffers (the
  /// pinned bench baseline).
  bool lockfree = true;
  /// Rundown work stealing between peer local queues of the resident job.
  bool steal = true;
  /// Steal-rate signal halves a job's effective grain during its rundown.
  bool adaptive_grain = true;
  /// Optional trace buffer (non-owning; must outlive the pool and be sized
  /// for >= `workers`). Null = tracing off. When set, workers write exec/
  /// refill/steal records tagged with the resident job's id plus job
  /// open/drain/finalize and sleep/wake lifecycle records into their own
  /// rings. The pool installs NO control-track core sink: two workers
  /// resident on different jobs hold independent control mutexes, so a
  /// shared control ring would lose its single-writer contract — job lanes
  /// come from the worker-side records (DESIGN.md §12).
  obs::TraceBuffer* trace = nullptr;
};

class PoolRuntime {
 public:
  /// Validates the config and starts the workers immediately.
  explicit PoolRuntime(PoolConfig config);

  /// shutdown(): drains remaining jobs, then stops and joins the workers.
  ~PoolRuntime();

  PoolRuntime(const PoolRuntime&) = delete;
  PoolRuntime& operator=(const PoolRuntime&) = delete;

  /// Submit a program for execution. `program` and `bodies` are borrowed
  /// until the returned handle reports done(). Thread-safe; callable from
  /// inside phase bodies (they run with no executive lock held). Higher
  /// `priority` schedules earlier under SchedPolicy::kPriority. `shards`
  /// overrides the pool-level executive shard count for this job
  /// (kAutoShards = inherit); an override that disagrees with an explicit
  /// pool-level count fails at submit time.
  JobHandle submit(const PhaseProgram& program, const rt::BodyTable& bodies,
                   ExecConfig config, int priority = 0, CostModel costs = {},
                   std::uint32_t shards = kAutoShards);

  /// Block until every submitted job has completed or been cancelled.
  void drain();

  /// drain(), then stop and join the workers. Idempotent; after it returns,
  /// stats() is final (worker wall times included) and submit() is invalid.
  void shutdown();

  [[nodiscard]] PoolStats stats() const;

  [[nodiscard]] const PoolConfig& config() const { return config_; }

 private:
  friend class JobHandle;

  /// The per-job dispatch-layer configuration this pool submits with.
  [[nodiscard]] sched::DispatchConfig dispatch_config() const {
    return {.workers = config_.workers,
            .batch = config_.batch,
            .queue_capacity = config_.queue_capacity,
            .steal = config_.steal,
            .adaptive_grain = config_.adaptive_grain,
            .trace = config_.trace};
  }

  void worker_main(WorkerId id);
  /// Emit a worker-track job-lifecycle record (no-op when tracing is off).
  void trace_event(WorkerId w, std::uint64_t job_id, obs::TraceKind kind);
  /// Policy pick over the runnable jobs' atomic probes.
  std::shared_ptr<detail::Job> pick_job_locked() PAX_REQUIRES(mu_);
  [[nodiscard]] bool any_runnable_locked() const PAX_REQUIRES(mu_);
  /// Empty mu_ critical section + notify: makes probe flips (done under a
  /// job mutex only) visible to sleepers without ever nesting the locks.
  void wake_pool() PAX_EXCLUDES(mu_);
  /// Erase `job` from the runnable list if present.
  void remove_job_locked(const std::shared_ptr<detail::Job>& job)
      PAX_REQUIRES(mu_);
  /// JobHandle::cancel backend.
  bool cancel_job(const std::shared_ptr<detail::Job>& job);

  PoolConfig config_;
  /// Heap-traffic snapshot at construction (alloc_stats; zeros without the
  /// hooks), so stats() can report the pool's allocator footprint.
  AllocTotals heap0_;

  /// Unified metrics registry (obs/metrics.hpp): workers accumulate into
  /// their own cells at worker exit; stats() folds in the pool-plane values.
  obs::MetricsRegistry metrics_;
  struct MetricIds {
    obs::MetricId tasks, granules, busy_ns, wall_ns, steals, steal_fails,
        rotations, job_locks;
  } mid_{};

  /// Pool bookkeeping mutex — guards everything below. Rank: pool (above
  /// the job rank: a thread never holds a job mutex and mu_ together; the
  /// rank validator turns that documented rule into an abort).
  mutable RankedMutex<LockRank::kPool> mu_;
  /// Workers sleep; drain() waits here too. _any variant: waits go through
  /// RankedUniqueLock's annotated lock()/unlock().
  std::condition_variable_any cv_;
  std::vector<std::shared_ptr<detail::Job>> jobs_
      PAX_GUARDED_BY(mu_);  ///< non-terminal jobs
  std::uint64_t next_id_ PAX_GUARDED_BY(mu_) = 0;
  bool stop_ PAX_GUARDED_BY(mu_) = false;
  std::uint64_t jobs_submitted_ PAX_GUARDED_BY(mu_) = 0;
  std::uint64_t jobs_completed_ PAX_GUARDED_BY(mu_) = 0;
  std::uint64_t jobs_cancelled_ PAX_GUARDED_BY(mu_) = 0;
  std::uint64_t tasks_ PAX_GUARDED_BY(mu_) = 0;
  std::uint64_t granules_ PAX_GUARDED_BY(mu_) = 0;
  std::uint64_t lock_acquisitions_ PAX_GUARDED_BY(mu_) = 0;
  /// summed at job completion
  std::uint64_t exec_control_acquisitions_ PAX_GUARDED_BY(mu_) = 0;
  std::uint64_t exec_lock_hold_ns_ PAX_GUARDED_BY(mu_) = 0;
  std::uint64_t shard_hits_ PAX_GUARDED_BY(mu_) = 0;
  std::uint64_t shard_ring_pops_ PAX_GUARDED_BY(mu_) = 0;
  std::uint64_t shard_ring_pop_empty_ PAX_GUARDED_BY(mu_) = 0;
  std::uint64_t shard_ring_push_full_ PAX_GUARDED_BY(mu_) = 0;
  std::uint64_t shard_ring_cas_retries_ PAX_GUARDED_BY(mu_) = 0;
  std::uint64_t shard_lock_acquisitions_ PAX_GUARDED_BY(mu_) = 0;
  std::uint64_t shard_lock_hold_ns_ PAX_GUARDED_BY(mu_) = 0;
  std::uint64_t rotations_ PAX_GUARDED_BY(mu_) = 0;
  std::uint64_t steals_ PAX_GUARDED_BY(mu_) = 0;
  std::uint64_t steal_fail_spins_ PAX_GUARDED_BY(mu_) = 0;
  std::uint64_t peak_local_queue_ PAX_GUARDED_BY(mu_) = 0;
  std::vector<std::chrono::nanoseconds> busy_ PAX_GUARDED_BY(mu_);
  std::vector<std::chrono::nanoseconds> worker_wall_ PAX_GUARDED_BY(mu_);

  std::vector<std::jthread> workers_;  ///< last member: joins before teardown
};

}  // namespace pax::pool
