// pool_runtime.hpp — a shared worker pool executing many PhasePrograms
// concurrently, so rundown tails overlap *across* programs.
//
// rt::ThreadedRuntime fills a phase's rundown with successor-phase granules,
// but still owns its threads and runs one program to completion — the same
// utilization collapse the paper fixes inside a program reappears at program
// scope: the last program's rundown idles the whole pool. PoolRuntime hosts
// one long-lived set of std::jthread workers and many jobs, each wrapping
// its own ExecutiveCore behind its own mutex. The worker loop generalizes
// the batched handoff into a two-level pick:
//
//   level 1 — prefer the resident job while its waiting queue is non-empty
//             (the single-program loop, via the shared sched::Dispatcher);
//   level 2 — when it drains (the rundown signal), rotate to another
//             runnable job chosen by SchedPolicy, so another program's
//             granules fill this program's tail.
//
// Oversubscribing a fixed processor set with independent work sources is the
// classic rundown cure at this scope (Argentini 2003, virtual processors for
// SPMD programs); per-job accounting (JobStats vs. a solo baseline) keeps
// the overlap honest about work inflation (Acar et al. 2017).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/alloc_stats.hpp"
#include "common/lock_rank.hpp"
#include "common/thread_annotations.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_ring.hpp"
#include "pool/job.hpp"
#include "pool/pool_stats.hpp"
#include "pool/scheduler_policy.hpp"
#include "sched/dispatcher.hpp"

namespace pax::pool {

struct PoolConfig {
  std::uint32_t workers = 4;
  /// Refill floor and the no-steal local-queue capacity, per resident job;
  /// with stealing on, one job-executive critical section may retire/pull
  /// up to the queue capacity (2x batch by default).
  std::uint32_t batch = 8;
  SchedPolicy policy = SchedPolicy::kFifo;
  /// Per-worker local run-queue capacity per job; 0 = auto (2x batch with
  /// stealing, exactly batch without — the PR 2 protocol).
  std::uint32_t queue_capacity = 0;
  /// Executive shards per job (independently-locked granule-handout
  /// partitions; see core/sharded_executive.hpp). kAutoShards = 2x workers
  /// clamped per job; 1 = the PR 3 per-job single-mutex protocol; 0 is
  /// invalid and fails at pool construction. A per-job override passed to
  /// submit() must agree with an explicit pool-level value.
  std::uint32_t shards = kAutoShards;
  /// Warm-path shard engine per job: true (default) = lock-free MPMC rings
  /// (DESIGN.md §13); false = the PR 4 mutex-guarded shard buffers (the
  /// pinned bench baseline).
  bool lockfree = true;
  /// Rundown work stealing between peer local queues of the resident job.
  bool steal = true;
  /// Steal-rate signal halves a job's effective grain during its rundown.
  bool adaptive_grain = true;
  /// Admission control: maximum number of non-terminal jobs the pool holds
  /// at once (queued + running). 0 = unbounded (the batch default). When the
  /// bound is hit, submit() returns a handle already in JobState::kRejected
  /// — the job never executes, and the caller's program/bodies borrow ends
  /// immediately. Bounding the pending set is what keeps latency finite
  /// under overload in serve mode (DESIGN.md §14).
  std::uint32_t max_pending = 0;
  /// Optional trace buffer (non-owning; must outlive the pool and be sized
  /// for >= `workers`). Null = tracing off. When set, workers write exec/
  /// refill/steal records tagged with the resident job's id plus job
  /// open/drain/finalize and sleep/wake lifecycle records into their own
  /// rings. The pool installs NO control-track core sink: two workers
  /// resident on different jobs hold independent control mutexes, so a
  /// shared control ring would lose its single-writer contract — job lanes
  /// come from the worker-side records (DESIGN.md §12).
  obs::TraceBuffer* trace = nullptr;
};

class PoolRuntime {
 public:
  /// Validates the config and starts the workers immediately.
  explicit PoolRuntime(PoolConfig config);

  /// shutdown(): drains remaining jobs, then stops and joins the workers.
  ~PoolRuntime();

  PoolRuntime(const PoolRuntime&) = delete;
  PoolRuntime& operator=(const PoolRuntime&) = delete;

  /// Per-job submission options (the serve-mode surface).
  struct SubmitOptions {
    /// Higher schedules earlier under SchedPolicy::kPriority.
    int priority = 0;
    /// Relative completion deadline, measured from submit(); <= 0 = none.
    /// Drives the EDF pick under SchedPolicy::kDeadline and the met/missed
    /// accounting in JobStats/PoolStats — advisory, never enforced by
    /// killing the job.
    std::chrono::nanoseconds deadline{0};
    CostModel costs{};
    /// Overrides the pool-level executive shard count for this job
    /// (kAutoShards = inherit); an override that disagrees with an explicit
    /// pool-level count fails at submit time.
    std::uint32_t shards = kAutoShards;
    /// Stuck-granule bound (DESIGN.md §15); <= 0 = none. When a single body
    /// invocation of this job runs longer than this, the pool's watchdog
    /// thread flags the job and escalates through the stop/recall machinery:
    /// handouts stop, buffered work is recalled, and once the stuck granule
    /// finally returns (the escalation is cooperative — nothing is killed)
    /// the job finalizes as JobState::kFailed. Sibling jobs are unaffected.
    std::chrono::nanoseconds granule_timeout{0};
  };

  /// Submit a program for execution. `program` and `bodies` are borrowed
  /// until the returned handle reports done(). Thread-safe; callable from
  /// inside phase bodies (they run with no executive lock held).
  /// Non-blocking: under admission control (PoolConfig::max_pending) an
  /// over-budget submit returns immediately with a handle already in
  /// JobState::kRejected instead of queueing or blocking.
  JobHandle submit(const PhaseProgram& program, const rt::BodyTable& bodies,
                   ExecConfig config, const SubmitOptions& opts);

  /// Legacy positional overload (batch callers).
  JobHandle submit(const PhaseProgram& program, const rt::BodyTable& bodies,
                   ExecConfig config, int priority = 0, CostModel costs = {},
                   std::uint32_t shards = kAutoShards) {
    return submit(program, bodies, config,
                  SubmitOptions{.priority = priority,
                                .deadline = std::chrono::nanoseconds{0},
                                .costs = costs,
                                .shards = shards});
  }

  /// Block until every submitted job has completed or been cancelled.
  void drain();

  /// drain(), then stop and join the workers. Idempotent; after it returns,
  /// stats() is final (worker wall times included) and submit() is invalid.
  void shutdown();

  [[nodiscard]] PoolStats stats() const;

  [[nodiscard]] const PoolConfig& config() const { return config_; }

 private:
  /// The per-job dispatch-layer configuration this pool submits with.
  [[nodiscard]] sched::DispatchConfig dispatch_config() const {
    return {.workers = config_.workers,
            .batch = config_.batch,
            .queue_capacity = config_.queue_capacity,
            .steal = config_.steal,
            .adaptive_grain = config_.adaptive_grain,
            .trace = config_.trace};
  }

  void worker_main(WorkerId id);
  /// Emit a worker-track job-lifecycle record (no-op when tracing is off).
  void trace_event(WorkerId w, std::uint64_t job_id, obs::TraceKind kind);

  /// Stuck-granule watchdog (DESIGN.md §15): samples each timeout-carrying
  /// job's per-worker exec-begin cells (Dispatcher::exec_begin_ns) and
  /// escalates overruns. Holds wd_mu_ only while sleeping — never across an
  /// escalation, which walks ctl_->mu, then the job mutex, then the job
  /// executive, strictly one at a time (the documented pool lock
  /// discipline; nesting any of them under a kSleep mutex would invert the
  /// rank order and abort under the validator).
  void watchdog_main();
  /// Flag `job` (idempotent) and escalate through PR 9's stop/recall path.
  void watchdog_escalate(const std::shared_ptr<detail::Job>& job,
                         WorkerId stuck_worker);

  PoolConfig config_;
  /// Heap-traffic snapshot at construction (alloc_stats; zeros without the
  /// hooks), so stats() can report the pool's allocator footprint.
  AllocTotals heap0_;

  /// Unified metrics registry (obs/metrics.hpp): workers accumulate into
  /// their own cells at worker exit; stats() folds in the pool-plane values.
  obs::MetricsRegistry metrics_;
  struct MetricIds {
    obs::MetricId tasks, granules, busy_ns, wall_ns, steals, steal_fails,
        rotations, job_locks, faulted;
  } mid_{};

  /// Shared control block (detail::PoolCtl, job.hpp): the pool mutex, the
  /// non-terminal job list, and every pool-plane counter. Shared-owned here,
  /// weakly referenced from each Job, so JobHandles degrade gracefully when
  /// they outlive the pool instead of dereferencing a dangling pointer.
  std::shared_ptr<detail::PoolCtl> ctl_;

  std::vector<std::jthread> workers_;  ///< last member: joins before teardown

  /// Watchdog sleep mutex/cv (rank: sleep — held alone, never while
  /// escalating). Guards only the stop latch; submit() notifies when a
  /// timeout-carrying job arrives so an idle watchdog starts polling.
  RankedMutex<LockRank::kSleep> wd_mu_;
  std::condition_variable_any wd_cv_;
  bool wd_stop_ PAX_GUARDED_BY(wd_mu_) = false;
  /// Declared after workers_: destroyed (joined) first, and shutdown() stops
  /// it explicitly before joining the workers.
  std::jthread watchdog_;
};

}  // namespace pax::pool
