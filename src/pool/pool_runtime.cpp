#include "pool/pool_runtime.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "sched/dispatcher.hpp"

namespace pax::pool {

namespace {
constexpr std::uint64_t kNoJobId = ~std::uint64_t{0};
}  // namespace

PoolRuntime::PoolRuntime(PoolConfig config)
    : config_(config),
      heap0_(alloc_stats::totals()),
      ctl_(std::make_shared<detail::PoolCtl>()) {
  PAX_CHECK_MSG(config_.workers > 0, "pool needs at least one worker");
  PAX_CHECK_MSG(config_.batch > 0, "pool batch must be at least 1");
  // Fail at construction, not inside the first submit()'s Dispatcher.
  PAX_CHECK_MSG(config_.queue_capacity == 0 ||
                    config_.queue_capacity >= config_.batch,
                "local queue capacity below the retire batch");
  PAX_CHECK_MSG(config_.shards != 0,
                "shards must be at least 1 (pass kAutoShards for the default)");
  {
    RankedLock lock(ctl_->mu);
    ctl_->busy.assign(config_.workers, std::chrono::nanoseconds{0});
    ctl_->worker_wall.assign(config_.workers, std::chrono::nanoseconds{0});
  }
  mid_.tasks = metrics_.register_counter("worker.tasks");
  mid_.granules = metrics_.register_counter("worker.granules");
  mid_.busy_ns = metrics_.register_counter("worker.busy_ns");
  mid_.wall_ns = metrics_.register_counter("worker.wall_ns");
  mid_.steals = metrics_.register_counter("worker.steals");
  mid_.steal_fails = metrics_.register_counter("worker.steal_fail_spins");
  mid_.rotations = metrics_.register_counter("worker.rotations");
  mid_.job_locks = metrics_.register_counter("worker.job_lock_acquisitions");
  mid_.faulted = metrics_.register_counter("worker.faulted");
  metrics_.bind(config_.workers);
  workers_.reserve(config_.workers);
  for (WorkerId w = 0; w < config_.workers; ++w)
    workers_.emplace_back([this, w] { worker_main(w); });
  // The stuck-granule watchdog (DESIGN.md §15). Always started: with no
  // timeout-carrying job it parks on wd_cv_ and costs nothing.
  watchdog_ = std::jthread([this] { watchdog_main(); });
}

PoolRuntime::~PoolRuntime() { shutdown(); }

JobHandle PoolRuntime::submit(const PhaseProgram& program,
                              const rt::BodyTable& bodies, ExecConfig config,
                              const SubmitOptions& opts) {
  // A per-job shard override must agree with an explicit pool-level count:
  // the pool's home-shard geometry is shared machinery, not a per-job knob.
  PAX_CHECK_MSG(opts.shards == kAutoShards || config_.shards == kAutoShards ||
                    opts.shards == config_.shards,
                "job shard count mismatches the pool's shard configuration");
  // Resolve the relative deadline against the submit instant before any
  // setup work, so executive construction time counts against the budget.
  const auto deadline_tp =
      opts.deadline.count() > 0
          ? std::chrono::steady_clock::now() + opts.deadline
          : detail::Job::kNoDeadlineTp;
  std::uint64_t id = 0;
  {
    RankedLock lock(ctl_->mu);
    PAX_CHECK_MSG(!ctl_->stop, "submit on a stopped pool");
    id = ctl_->next_id++;
  }
  // Trace records from this job's executive/dispatcher carry its id, so the
  // exporter can lane them per job even though the rings are per worker.
  const ShardConfig shard_config{
      .shards = opts.shards != kAutoShards ? opts.shards : config_.shards,
      .workers = config_.workers,
      .batch = config_.batch,
      .lockfree = config_.lockfree,
      .trace = config_.trace,
      .trace_job = id};
  sched::DispatchConfig dispatch = dispatch_config();
  dispatch.trace_job = id;
  // Job construction (executive setup) happens outside the pool lock.
  auto job = std::make_shared<detail::Job>(id, opts.priority, program, bodies,
                                           config, opts.costs, dispatch,
                                           shard_config, deadline_tp,
                                           opts.granule_timeout);
  // Back-reference set before the job is published anywhere (handle or job
  // list); never written again.
  job->ctl = ctl_;
  bool rejected = false;
  {
    RankedLock lock(ctl_->mu);
    PAX_CHECK_MSG(!ctl_->stop, "submit on a stopped pool");
    ++ctl_->jobs_submitted;
    // Admission control: bound the non-terminal set. Rejecting here — not
    // after queueing — keeps submit() non-blocking and the pending latency
    // budget intact; a rejected deadline job is by definition a miss.
    if (config_.max_pending != 0 &&
        ctl_->jobs.size() >= config_.max_pending) {
      ++ctl_->jobs_rejected;
      if (job->has_deadline()) ++ctl_->jobs_deadline_missed;
      rejected = true;
    } else {
      ctl_->jobs.push_back(job);
    }
  }
  if (rejected) {
    {
      // Terminal contract: bookkeeping first, release flip last, all under
      // the job mutex — done() implies stats() is final.
      RankedLock jlock(job->mu);
      const auto now = std::chrono::steady_clock::now();
      job->finished_at = now;
      if (job->has_deadline()) {
        job->stats.has_deadline = true;
        job->stats.deadline_missed = true;
        job->stats.deadline_slack =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                job->deadline - now);
      }
      job->state.store(JobState::kRejected, std::memory_order_release);
    }
    job->done_cv.notify_all();
    return JobHandle(std::move(job));
  }
  // notify_all, not notify_one: drain() waits on the same cv and a
  // notify_one could land on a drainer instead of an idle worker.
  ctl_->cv.notify_all();
  // A timeout-carrying job starts the watchdog polling (pass through wd_mu_
  // so a watchdog between its job scan and its wait cannot miss the wake).
  if (opts.granule_timeout.count() > 0) {
    { RankedLock lock(wd_mu_); }
    wd_cv_.notify_all();
  }
  return JobHandle(std::move(job));
}

void PoolRuntime::drain() {
  RankedUniqueLock lock(ctl_->mu);
  // Explicit wait loop rather than the predicate overload: the predicate
  // reads guarded state, and the thread-safety analysis cannot see that
  // a lambda body runs with the capability held.
  while (!ctl_->jobs.empty()) ctl_->cv.wait(lock);
}

void PoolRuntime::shutdown() {
  drain();
  // Stop the watchdog first: after drain() there is no job left to watch,
  // and joining it here keeps shutdown() deterministic (the jthread member
  // destructor would otherwise race the pool teardown below).
  {
    RankedLock lock(wd_mu_);
    wd_stop_ = true;
  }
  wd_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
  {
    RankedLock lock(ctl_->mu);
    ctl_->stop = true;
  }
  ctl_->cv.notify_all();
  workers_.clear();  // jthread destructors join
}

PoolStats PoolRuntime::stats() const {
  RankedLock lock(ctl_->mu);
  PoolStats s;
  s.jobs_submitted = ctl_->jobs_submitted;
  s.jobs_completed = ctl_->jobs_completed;
  s.jobs_cancelled = ctl_->jobs_cancelled;
  s.jobs_rejected = ctl_->jobs_rejected;
  s.jobs_deadline_missed = ctl_->jobs_deadline_missed;
  s.jobs_deadline_met = ctl_->jobs_deadline_met;
  s.jobs_failed = ctl_->jobs_failed;
  s.granule_faults = ctl_->worker_faults;
  s.granule_retries = ctl_->job_granule_retries;
  s.granules_poisoned = ctl_->job_granules_poisoned;
  s.map_faults = ctl_->job_map_faults;
  s.watchdog_flags = ctl_->watchdog_flags;
  s.tasks_executed = ctl_->tasks;
  s.granules_executed = ctl_->granules;
  s.exec_lock_acquisitions = ctl_->lock_acquisitions;
  s.exec_control_acquisitions = ctl_->exec_control_acquisitions;
  s.exec_lock_hold_ns = ctl_->exec_lock_hold_ns;
  s.shard_hits = ctl_->shard_hits;
  s.shard_ring_pops = ctl_->shard_ring_pops;
  s.shard_ring_pop_empty = ctl_->shard_ring_pop_empty;
  s.shard_ring_push_full = ctl_->shard_ring_push_full;
  s.shard_ring_cas_retries = ctl_->shard_ring_cas_retries;
  s.shard_lock_acquisitions = ctl_->shard_lock_acquisitions;
  s.shard_lock_hold_ns = ctl_->shard_lock_hold_ns;
  s.rotations = ctl_->rotations;
  s.steals = ctl_->steals;
  s.steal_fail_spins = ctl_->steal_fail_spins;
  s.peak_local_queue = ctl_->peak_local_queue;
  const AllocTotals heap = alloc_stats::delta(heap0_, alloc_stats::totals());
  s.heap_allocs = heap.allocs;
  s.heap_bytes = heap.bytes;
  s.worker_busy = ctl_->busy;
  s.worker_wall = ctl_->worker_wall;
  // Unified metrics surface: worker-cell sums (live; final after shutdown)
  // plus the pool-plane values pushed as plain entries under the pool mutex.
  s.metrics = metrics_.snapshot();
  s.metrics.push("pool.jobs_submitted", ctl_->jobs_submitted);
  s.metrics.push("pool.jobs_completed", ctl_->jobs_completed);
  s.metrics.push("pool.jobs_cancelled", ctl_->jobs_cancelled);
  s.metrics.push("pool.jobs_rejected", ctl_->jobs_rejected);
  s.metrics.push("pool.jobs_failed", ctl_->jobs_failed);
  s.metrics.push("pool.deadline_missed", ctl_->jobs_deadline_missed);
  s.metrics.push("pool.deadline_met", ctl_->jobs_deadline_met);
  s.metrics.push("fault.bodies", ctl_->worker_faults);
  s.metrics.push("fault.job_bodies", ctl_->job_granule_faults);
  s.metrics.push("fault.retries", ctl_->job_granule_retries);
  s.metrics.push("fault.poisoned", ctl_->job_granules_poisoned);
  s.metrics.push("fault.map", ctl_->job_map_faults);
  s.metrics.push("fault.watchdog_flags", ctl_->watchdog_flags);
  s.metrics.push("exec.control_acquisitions", ctl_->exec_control_acquisitions);
  s.metrics.push("exec.control_hold_ns", ctl_->exec_lock_hold_ns);
  s.metrics.push("shard.hits", ctl_->shard_hits);
  s.metrics.push("shard.ring.pop", ctl_->shard_ring_pops);
  s.metrics.push("shard.ring.pop_empty", ctl_->shard_ring_pop_empty);
  s.metrics.push("shard.ring.push_full", ctl_->shard_ring_push_full);
  s.metrics.push("shard.ring.cas_retries", ctl_->shard_ring_cas_retries);
  s.metrics.push("shard.lock.acquisitions", ctl_->shard_lock_acquisitions);
  s.metrics.push("shard.lock.hold_ns", ctl_->shard_lock_hold_ns);
  s.metrics.push("queue.peak_occupancy", ctl_->peak_local_queue);
  s.metrics.push("heap.allocs", heap.allocs);
  s.metrics.push("heap.bytes", heap.bytes);
  if (config_.trace != nullptr) {
    s.metrics.push("trace.emitted", config_.trace->total_emitted());
    s.metrics.push("trace.dropped", config_.trace->total_dropped());
  }
  return s;
}

void PoolRuntime::worker_main(WorkerId id) {
  const auto enter = std::chrono::steady_clock::now();
  std::vector<Ticket> done;
  done.reserve(dispatch_config().effective_capacity());
  sched::BodyLoopStats totals;  // everything this worker executed
  sched::BodyLoopStats delta;   // executed since the last merge into the job
  std::uint64_t steal_delta = 0;
  std::uint64_t locks = 0;
  std::uint64_t rotations = 0;
  std::uint64_t steals = 0;
  std::uint64_t steal_fails = 0;
  std::uint64_t last_resident = kNoJobId;
  std::shared_ptr<detail::Job> job;  // resident job

  // Fault hand-off (DESIGN.md §15): drain_local's exception barrier parks
  // fault records in the job dispatcher's per-worker buffer; report them
  // through the job executive's fail path before the next refill — a
  // faulted ticket must never retire as a completion. Cold path: the
  // conservative pool wake afterwards (retries = new work, or a poison
  // flipped the executive finished) costs nothing that matters.
  auto report_faults = [&](detail::Job& j) {
    std::vector<GranuleFault>& fb = j.dispatcher.fault_buffer(id);
    if (fb.empty()) return;
    j.exec.fail_batch(id, fb);
    fb.clear();
    (void)j.refresh_probes();  // wake unconditionally below — faults are cold
    ctl_->wake();
  };

  while (true) {
    if (job == nullptr) {
      PAX_DCHECK(done.empty());
      RankedUniqueLock lock(ctl_->mu);
      // Explicit wait loop: the predicate touches guarded state, which
      // the analysis cannot track through a lambda.
      if (!ctl_->stop && !ctl_->any_runnable_locked()) {
        trace_event(id, kNoJobId, obs::TraceKind::kSleep);
        while (!ctl_->stop && !ctl_->any_runnable_locked()) ctl_->cv.wait(lock);
        trace_event(id, kNoJobId, obs::TraceKind::kWake);
      }
      job = ctl_->pick_job_locked(config_.policy);
      if (job == nullptr) {
        if (ctl_->stop) break;
        continue;  // stale probe; re-evaluate
      }
      if (job->id != last_resident) {
        if (last_resident != kNoJobId) ++rotations;
        last_resident = job->id;
      }
    }

    // One adoption round on the resident job: a short bookkeeping section
    // (merge body accounting, open on first adoption), then — with no job
    // lock held — retire the previous drain's tickets and refill this
    // worker's local run-queue through the job's sharded executive.
    enum class Outcome : std::uint8_t {
      kExecute,   ///< local queue non-empty; drain it unlocked
      kRetry,     ///< did executive idle work; poll the queue again
      kFinished,  ///< program finished and we won the finalize
      kDrained,   ///< rundown: queue empty, job not finished — steal/rotate
      kGone,      ///< job cancelled or finalized by a peer — rotate
    };
    Outcome out;
    JobState st;
    bool must_start = false;
    // Finalize facts captured under the job mutex, republished under the
    // pool mutex in the kFinished arm (the two locks are never nested).
    std::uint64_t finished_peak = 0;
    bool fin_cancelled = false;
    bool fin_failed = false;
    bool fin_watchdog = false;
    bool fin_has_deadline = false;
    bool fin_missed = false;
    FaultStats fin_faults{};
    {
      RankedLock jlock(job->mu);
      ++locks;
      ++job->stats.exec_lock_acquisitions;
      if (delta.granules != 0 || delta.tasks != 0 || steal_delta != 0) {
        job->stats.tasks += delta.tasks;
        job->stats.granules += delta.granules;
        job->stats.busy += delta.busy;
        job->stats.steals += steal_delta;
        job->granules_done.fetch_add(delta.granules, std::memory_order_relaxed);
        delta = {};
        steal_delta = 0;
      }

      st = job->state.load(std::memory_order_relaxed);
      if (st == JobState::kQueued) {
        JobState open_expected = JobState::kQueued;
        if (job->state.compare_exchange_strong(open_expected, JobState::kRunning,
                                               std::memory_order_acq_rel)) {
          job->opened_at = std::chrono::steady_clock::now();
          st = JobState::kRunning;
          must_start = true;
        } else {
          st = open_expected;  // lost the open race to cancel()
        }
      }
    }
    // start() outside the job mutex (the lock discipline: never hold it
    // across executive calls). The open-CAS winner is the only caller, and
    // a peer that adopts before start() returns just sees an un-started
    // executive (acquire yields nothing) and rotates on.
    if (must_start) {
      trace_event(id, job->id, obs::TraceKind::kJobOpen);
      job->exec.start();
    }

    if (st != JobState::kRunning) {
      PAX_DCHECK(done.empty());
      out = Outcome::kGone;
    } else {
      job->dispatcher.refill(job->exec, id, done);
      if (job->dispatcher.occupancy(id) > 0) {
        out = Outcome::kExecute;
      } else if (job->exec.finished()) {
        // A finished executive has retired every ticket (a stopped one
        // recalled its buffers and drained what was in flight), so no shard
        // buffer or peer queue can still hold assignments of this job.
        // Several workers can observe the finished census concurrently —
        // the job mutex elects the finalizer: the first one in sees
        // kRunning, writes the final bookkeeping, and flips the terminal
        // state (release, flip LAST — done() must imply stats() is final);
        // the losers see a terminal state and rotate on. The old protocol
        // CASed the state *before* taking the mutex, leaving a window where
        // a handle saw done() but stats() without finished_at — the race
        // this path exists to close.
        PAX_DCHECK(!job->exec.work_available());
        // Fault facts read BEFORE the job mutex: fault_stats() takes the
        // executive control mutex, which must never nest under the job
        // mutex (rank order). The executive is finished, so the snapshot
        // is final; losers of the election below just discard it.
        const FaultStats exec_fs = job->exec.fault_stats();
        const bool exec_faulted = job->exec.faulted();
        RankedLock jlock(job->mu);
        if (job->state.load(std::memory_order_relaxed) == JobState::kRunning) {
          const bool was_cancelled = job->cancel_requested;
          const bool was_watchdog = job->watchdog_expired;
          // Terminal precedence: an explicit cancel beats the fault flip
          // (the caller withdrew the work; whether it also faulted on the
          // way down is a detail), faults beat completion.
          const bool failed = !was_cancelled && (exec_faulted || was_watchdog);
          const auto now = std::chrono::steady_clock::now();
          job->finished_at = now;
          job->stats.peak_local_queue = job->dispatcher.peak_occupancy();
          // Guard gap surfaced by the annotation pass: the kFinished arm
          // below runs under the *pool* mutex and must not read the
          // job-mutex-guarded stats there — capture the values here.
          finished_peak = job->stats.peak_local_queue;
          if (job->has_deadline()) {
            job->stats.has_deadline = true;
            job->stats.deadline_slack =
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    job->deadline - now);
            // Cancelled jobs never count as misses: the caller withdrew the
            // deadline along with the work. Failed jobs don't either — they
            // produced no result to be late (jobs_failed counts them).
            job->stats.deadline_missed =
                !was_cancelled && !failed && now > job->deadline;
          }
          // Fault accounting, written before the terminal flip so done()
          // implies it is final. The executive-side counts are
          // authoritative: every fail() is counted there, while a worker's
          // BodyLoopStats::faulted delta may still be unmerged here (its
          // ticket retired through fail_batch before its stats merge).
          job->stats.granule_faults = exec_fs.faults;
          job->stats.granule_retries = exec_fs.retries;
          job->stats.granules_poisoned = exec_fs.poisoned;
          job->stats.map_faults = exec_fs.map_faults;
          job->stats.watchdog_expired = was_watchdog;
          if (exec_fs.any()) {
            job->stats.fault_summary =
                "phase " + std::to_string(exec_fs.first_phase) + " [" +
                std::to_string(exec_fs.first_range.lo) + "," +
                std::to_string(exec_fs.first_range.hi) +
                "): " + exec_fs.first_what;
          } else if (was_watchdog) {
            job->stats.fault_summary = "granule exceeded watchdog timeout";
          }
          fin_cancelled = was_cancelled;
          fin_failed = failed;
          fin_watchdog = was_watchdog;
          fin_faults = exec_fs;
          fin_has_deadline = job->has_deadline();
          fin_missed = job->stats.deadline_missed;
          job->state.store(was_cancelled ? JobState::kCancelled
                           : failed      ? JobState::kFailed
                                         : JobState::kComplete,
                           std::memory_order_release);
          out = Outcome::kFinished;
        } else {
          out = Outcome::kGone;  // a peer won the finalize
        }
      } else if (job->exec.has_idle_work() && job->exec.idle_work()) {
        // Donate the rotation gap to this job's executive (map builds,
        // deferred splits) before declaring its rundown.
        out = Outcome::kRetry;
      } else {
        out = Outcome::kDrained;
      }
    }
    // Probe flips cover every enqueue source of this round (retire
    // enablements, start(), idle work, shard refill): wake only on
    // not-runnable -> runnable, when a sleeper could actually be stuck.
    if (job->refresh_probes()) ctl_->wake();

    switch (out) {
      case Outcome::kExecute: {
        sched::BodyLoopStats step;
        job->dispatcher.drain_local(job->bodies, id, done, step);
        delta += step;
        totals += step;
        report_faults(*job);
        break;
      }
      case Outcome::kRetry:
        break;
      case Outcome::kFinished: {
        trace_event(id, job->id, obs::TraceKind::kJobFinalize);
        job->done_cv.notify_all();
        {
          const ShardStatsView ss = job->exec.stats();
          RankedLock lock(ctl_->mu);
          ctl_->remove_job_locked(job);
          if (fin_cancelled) {
            ++ctl_->jobs_cancelled;
          } else if (fin_failed) {
            ++ctl_->jobs_failed;
          } else {
            ++ctl_->jobs_completed;
            if (fin_has_deadline) {
              if (fin_missed)
                ++ctl_->jobs_deadline_missed;
              else
                ++ctl_->jobs_deadline_met;
            }
          }
          ctl_->job_granule_faults += fin_faults.faults;
          ctl_->job_granule_retries += fin_faults.retries;
          ctl_->job_granules_poisoned += fin_faults.poisoned;
          ctl_->job_map_faults += fin_faults.map_faults;
          if (fin_watchdog) ++ctl_->watchdog_flags;
          ctl_->exec_control_acquisitions += ss.control_acquisitions;
          ctl_->exec_lock_hold_ns += ss.control_hold_ns;
          ctl_->shard_hits += ss.shard_hits + ss.sibling_hits;
          ctl_->shard_ring_pops += ss.ring_pops;
          ctl_->shard_ring_pop_empty += ss.ring_pop_empty;
          ctl_->shard_ring_push_full += ss.ring_push_full;
          ctl_->shard_ring_cas_retries += ss.ring_cas_retries;
          ctl_->shard_lock_acquisitions += ss.shard_lock_acquisitions;
          ctl_->shard_lock_hold_ns += ss.shard_lock_hold_ns;
          ctl_->peak_local_queue =
              std::max(ctl_->peak_local_queue, finished_peak);
        }
        ctl_->cv.notify_all();  // wake drain()ers and rotating workers
        job.reset();
        break;
      }
      case Outcome::kDrained: {
        // The job's executive is dry but peers may still hold fat local
        // queues — its rundown. Steal a FIFO range from the most-loaded
        // peer before giving up residency.
        if (config_.steal) {
          const std::size_t got = job->dispatcher.try_steal(id);
          if (got > 0) {
            steals += got;
            steal_delta += got;
            sched::BodyLoopStats step;
            job->dispatcher.drain_local(job->bodies, id, done, step);
            delta += step;
            totals += step;
            report_faults(*job);
            break;  // keep residency; the next critical section retires
          }
          ++steal_fails;
        }
        // Release residency and let the policy pick whose tail to fill
        // next. refresh_probes() above keeps a drained job out of the pick
        // until it has work again.
        trace_event(id, job->id, obs::TraceKind::kJobDrain);
        job.reset();
        break;
      }
      case Outcome::kGone:
        job.reset();
        break;
    }
  }

  // Publish per-worker accounting; the wall clock closes inside worker_main
  // so spawn/join overhead never counts as pool idle time.
  const auto wall = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::steady_clock::now() - enter);
  // Unified metrics: each worker writes only its own cells (obs/metrics.hpp
  // per-worker sharding — no contention by construction, no lock needed).
  metrics_.add(mid_.tasks, id, totals.tasks);
  metrics_.add(mid_.granules, id, totals.granules);
  metrics_.add(mid_.busy_ns, id, static_cast<std::uint64_t>(totals.busy.count()));
  metrics_.add(mid_.wall_ns, id, static_cast<std::uint64_t>(wall.count()));
  metrics_.add(mid_.steals, id, steals);
  metrics_.add(mid_.steal_fails, id, steal_fails);
  metrics_.add(mid_.rotations, id, rotations);
  metrics_.add(mid_.job_locks, id, locks);
  metrics_.add(mid_.faulted, id, totals.faulted);
  RankedLock lock(ctl_->mu);
  ctl_->busy[id] += totals.busy;
  ctl_->worker_faults += totals.faulted;
  ctl_->worker_wall[id] = wall;
  ctl_->tasks += totals.tasks;
  ctl_->granules += totals.granules;
  ctl_->lock_acquisitions += locks;
  ctl_->rotations += rotations;
  ctl_->steals += steals;
  ctl_->steal_fail_spins += steal_fails;
}

void PoolRuntime::watchdog_main() {
  std::vector<std::shared_ptr<detail::Job>> watched;
  while (true) {
    watched.clear();
    std::chrono::nanoseconds shortest{0};
    {
      RankedLock lock(ctl_->mu);
      for (const auto& j : ctl_->jobs) {
        if (j->granule_timeout.count() <= 0) continue;
        watched.push_back(j);
        if (shortest.count() == 0 || j->granule_timeout < shortest)
          shortest = j->granule_timeout;
      }
    }
    const std::uint64_t now = obs::trace_now_ns();
    for (const auto& job : watched) {
      if (job->state.load(std::memory_order_acquire) != JobState::kRunning)
        continue;
      const auto bound = static_cast<std::uint64_t>(job->granule_timeout.count());
      for (WorkerId w = 0; w < config_.workers; ++w) {
        // A non-zero cell means worker w is inside a body of this job right
        // now (the job's dispatcher owns the cell; it is cleared on body
        // exit). Relaxed staleness only delays a flag by one poll.
        const std::uint64_t b = job->dispatcher.exec_begin_ns(w);
        if (b != 0 && now > b && now - b > bound) {
          watchdog_escalate(job, w);
          break;
        }
      }
    }
    // Sleep under wd_mu_ ONLY — never held across the scan/escalation above.
    // Poll at a quarter of the shortest active timeout (clamped to a sane
    // band); with nothing to watch, park until a timeout-carrying submit or
    // shutdown notifies.
    RankedUniqueLock lock(wd_mu_);
    if (wd_stop_) break;
    if (watched.empty()) {
      wd_cv_.wait(lock);
    } else {
      const auto poll = std::clamp<std::chrono::nanoseconds>(
          shortest / 4, std::chrono::microseconds{100},
          std::chrono::milliseconds{10});
      wd_cv_.wait_for(lock, poll);
    }
    if (wd_stop_) break;
  }
}

void PoolRuntime::watchdog_escalate(const std::shared_ptr<detail::Job>& job,
                                    WorkerId stuck_worker) {
  // Latch the flag under the job mutex (idempotent; finalize reads it under
  // the same mutex). A cancel already in flight wins the terminal
  // precedence, so don't pile the watchdog on top of it.
  bool flagged = false;
  {
    RankedLock jlock(job->mu);
    if (!job->watchdog_expired && !job->cancel_requested &&
        job->state.load(std::memory_order_relaxed) == JobState::kRunning) {
      job->watchdog_expired = true;
      flagged = true;
    }
  }
  if (!flagged) return;
  // kWatchdogFlag goes on the control track: the pool installs no
  // control-track core sink (see PoolConfig::trace), so the watchdog is
  // that ring's only writer — the single-writer contract holds.
  if (config_.trace != nullptr) {
    obs::TraceRecord r;
    r.ts_ns = obs::trace_now_ns();
    r.job = job->id;
    r.aux = stuck_worker;
    r.worker = obs::kControlTrack;
    r.kind = obs::TraceKind::kWatchdogFlag;
    config_.trace->control_ring().emit(r);
  }
  // PR 9's escalation machinery: stop handouts, recall buffered work. The
  // escalation is cooperative — once the stuck granule returns and in-
  // flight work drains, an adopting worker finalizes the job as kFailed.
  // Wake the pool in case every worker is asleep (the finalize probe treats
  // a finished executive as runnable).
  job->exec.request_stop();
  ctl_->wake();
}

void PoolRuntime::trace_event(WorkerId w, std::uint64_t job_id,
                              obs::TraceKind kind) {
  if (config_.trace == nullptr) return;
  obs::TraceRecord r;
  r.ts_ns = obs::trace_now_ns();
  r.job = job_id;
  r.worker = static_cast<std::uint16_t>(w);
  r.kind = kind;
  config_.trace->ring(w).emit(r);
}

}  // namespace pax::pool
