#include "pool/pool_runtime.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "sched/dispatcher.hpp"

namespace pax::pool {

namespace {
constexpr std::uint64_t kNoJobId = ~std::uint64_t{0};
}  // namespace

PoolRuntime::PoolRuntime(PoolConfig config)
    : config_(config),
      heap0_(alloc_stats::totals()),
      busy_(config.workers, std::chrono::nanoseconds{0}),
      worker_wall_(config.workers, std::chrono::nanoseconds{0}) {
  PAX_CHECK_MSG(config_.workers > 0, "pool needs at least one worker");
  PAX_CHECK_MSG(config_.batch > 0, "pool batch must be at least 1");
  // Fail at construction, not inside the first submit()'s Dispatcher.
  PAX_CHECK_MSG(config_.queue_capacity == 0 ||
                    config_.queue_capacity >= config_.batch,
                "local queue capacity below the retire batch");
  PAX_CHECK_MSG(config_.shards != 0,
                "shards must be at least 1 (pass kAutoShards for the default)");
  mid_.tasks = metrics_.register_counter("worker.tasks");
  mid_.granules = metrics_.register_counter("worker.granules");
  mid_.busy_ns = metrics_.register_counter("worker.busy_ns");
  mid_.wall_ns = metrics_.register_counter("worker.wall_ns");
  mid_.steals = metrics_.register_counter("worker.steals");
  mid_.steal_fails = metrics_.register_counter("worker.steal_fail_spins");
  mid_.rotations = metrics_.register_counter("worker.rotations");
  mid_.job_locks = metrics_.register_counter("worker.job_lock_acquisitions");
  metrics_.bind(config_.workers);
  workers_.reserve(config_.workers);
  for (WorkerId w = 0; w < config_.workers; ++w)
    workers_.emplace_back([this, w] { worker_main(w); });
}

PoolRuntime::~PoolRuntime() { shutdown(); }

JobHandle PoolRuntime::submit(const PhaseProgram& program,
                              const rt::BodyTable& bodies, ExecConfig config,
                              int priority, CostModel costs,
                              std::uint32_t shards) {
  // A per-job shard override must agree with an explicit pool-level count:
  // the pool's home-shard geometry is shared machinery, not a per-job knob.
  PAX_CHECK_MSG(shards == kAutoShards || config_.shards == kAutoShards ||
                    shards == config_.shards,
                "job shard count mismatches the pool's shard configuration");
  std::uint64_t id = 0;
  {
    RankedLock lock(mu_);
    PAX_CHECK_MSG(!stop_, "submit on a stopped pool");
    id = next_id_++;
  }
  // Trace records from this job's executive/dispatcher carry its id, so the
  // exporter can lane them per job even though the rings are per worker.
  const ShardConfig shard_config{
      .shards = shards != kAutoShards ? shards : config_.shards,
      .workers = config_.workers,
      .batch = config_.batch,
      .lockfree = config_.lockfree,
      .trace = config_.trace,
      .trace_job = id};
  sched::DispatchConfig dispatch = dispatch_config();
  dispatch.trace_job = id;
  // Job construction (executive setup) happens outside the pool lock.
  auto job = std::make_shared<detail::Job>(id, priority, program, bodies, config,
                                           costs, dispatch, shard_config);
  {
    RankedLock lock(mu_);
    PAX_CHECK_MSG(!stop_, "submit on a stopped pool");
    jobs_.push_back(job);
    ++jobs_submitted_;
  }
  // notify_all, not notify_one: drain() waits on the same cv and a
  // notify_one could land on a drainer instead of an idle worker.
  cv_.notify_all();
  return JobHandle(this, std::move(job));
}

void PoolRuntime::drain() {
  RankedUniqueLock lock(mu_);
  // Explicit wait loop rather than the predicate overload: the predicate
  // reads mu_-guarded state, and the thread-safety analysis cannot see that
  // a lambda body runs with the capability held.
  while (!jobs_.empty()) cv_.wait(lock);
}

void PoolRuntime::shutdown() {
  drain();
  {
    RankedLock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  workers_.clear();  // jthread destructors join
}

PoolStats PoolRuntime::stats() const {
  RankedLock lock(mu_);
  PoolStats s;
  s.jobs_submitted = jobs_submitted_;
  s.jobs_completed = jobs_completed_;
  s.jobs_cancelled = jobs_cancelled_;
  s.tasks_executed = tasks_;
  s.granules_executed = granules_;
  s.exec_lock_acquisitions = lock_acquisitions_;
  s.exec_control_acquisitions = exec_control_acquisitions_;
  s.exec_lock_hold_ns = exec_lock_hold_ns_;
  s.shard_hits = shard_hits_;
  s.shard_ring_pops = shard_ring_pops_;
  s.shard_ring_pop_empty = shard_ring_pop_empty_;
  s.shard_ring_push_full = shard_ring_push_full_;
  s.shard_ring_cas_retries = shard_ring_cas_retries_;
  s.shard_lock_acquisitions = shard_lock_acquisitions_;
  s.shard_lock_hold_ns = shard_lock_hold_ns_;
  s.rotations = rotations_;
  s.steals = steals_;
  s.steal_fail_spins = steal_fail_spins_;
  s.peak_local_queue = peak_local_queue_;
  const AllocTotals heap = alloc_stats::delta(heap0_, alloc_stats::totals());
  s.heap_allocs = heap.allocs;
  s.heap_bytes = heap.bytes;
  s.worker_busy = busy_;
  s.worker_wall = worker_wall_;
  // Unified metrics surface: worker-cell sums (live; final after shutdown)
  // plus the pool-plane values pushed as plain entries under mu_.
  s.metrics = metrics_.snapshot();
  s.metrics.push("pool.jobs_submitted", jobs_submitted_);
  s.metrics.push("pool.jobs_completed", jobs_completed_);
  s.metrics.push("pool.jobs_cancelled", jobs_cancelled_);
  s.metrics.push("exec.control_acquisitions", exec_control_acquisitions_);
  s.metrics.push("exec.control_hold_ns", exec_lock_hold_ns_);
  s.metrics.push("shard.hits", shard_hits_);
  s.metrics.push("shard.ring.pop", shard_ring_pops_);
  s.metrics.push("shard.ring.pop_empty", shard_ring_pop_empty_);
  s.metrics.push("shard.ring.push_full", shard_ring_push_full_);
  s.metrics.push("shard.ring.cas_retries", shard_ring_cas_retries_);
  s.metrics.push("shard.lock.acquisitions", shard_lock_acquisitions_);
  s.metrics.push("shard.lock.hold_ns", shard_lock_hold_ns_);
  s.metrics.push("queue.peak_occupancy", peak_local_queue_);
  s.metrics.push("heap.allocs", heap.allocs);
  s.metrics.push("heap.bytes", heap.bytes);
  if (config_.trace != nullptr) {
    s.metrics.push("trace.emitted", config_.trace->total_emitted());
    s.metrics.push("trace.dropped", config_.trace->total_dropped());
  }
  return s;
}

bool PoolRuntime::any_runnable_locked() const {
  return std::any_of(jobs_.begin(), jobs_.end(),
                     [](const auto& j) { return j->runnable_probe(); });
}

std::shared_ptr<detail::Job> PoolRuntime::pick_job_locked() {
  std::shared_ptr<detail::Job> best;
  JobView best_view;
  for (const auto& j : jobs_) {
    if (!j->runnable_probe()) continue;
    const JobView v{j->id, j->priority,
                    j->granules_done.load(std::memory_order_relaxed)};
    if (best == nullptr || schedules_before(v, best_view, config_.policy)) {
      best = j;
      best_view = v;
    }
  }
  return best;
}

void PoolRuntime::wake_pool() {
  // The probe that turned the sleep predicate true was flipped under a job
  // mutex, not mu_. Passing through mu_ orders that flip against any
  // sleeper's predicate evaluation, closing the lost-wakeup window.
  { RankedLock lock(mu_); }
  cv_.notify_all();
}

void PoolRuntime::remove_job_locked(const std::shared_ptr<detail::Job>& job) {
  auto it = std::find(jobs_.begin(), jobs_.end(), job);
  if (it != jobs_.end()) jobs_.erase(it);
}

bool PoolRuntime::cancel_job(const std::shared_ptr<detail::Job>& job) {
  JobState expected = JobState::kQueued;
  // acq_rel: the release half publishes everything the canceller wrote
  // before the flip to handle-side acquire readers; the acquire half is for
  // the failure path's read of the current state.
  if (!job->state.compare_exchange_strong(expected, JobState::kCancelled,
                                          std::memory_order_acq_rel)) {
    return false;  // already opened, completed, or cancelled
  }
  {
    RankedLock lock(mu_);
    remove_job_locked(job);
    ++jobs_cancelled_;
  }
  cv_.notify_all();  // drain()ers re-check the (shrunk) job list
  {
    // Job mutex taken after the pool mutex was *released* — the two are
    // never held together (acquiring a job mutex while holding the pool
    // mutex trips the rank validator: job ranks below pool).
    RankedLock jlock(job->mu);
    job->finished_at = std::chrono::steady_clock::now();
  }
  job->done_cv.notify_all();
  return true;
}

void PoolRuntime::worker_main(WorkerId id) {
  const auto enter = std::chrono::steady_clock::now();
  std::vector<Ticket> done;
  done.reserve(dispatch_config().effective_capacity());
  sched::BodyLoopStats totals;  // everything this worker executed
  sched::BodyLoopStats delta;   // executed since the last merge into the job
  std::uint64_t steal_delta = 0;
  std::uint64_t locks = 0;
  std::uint64_t rotations = 0;
  std::uint64_t steals = 0;
  std::uint64_t steal_fails = 0;
  std::uint64_t last_resident = kNoJobId;
  std::shared_ptr<detail::Job> job;  // resident job

  while (true) {
    if (job == nullptr) {
      PAX_DCHECK(done.empty());
      RankedUniqueLock lock(mu_);
      // Explicit wait loop: the predicate touches mu_-guarded state, which
      // the analysis cannot track through a lambda.
      if (!stop_ && !any_runnable_locked()) {
        trace_event(id, kNoJobId, obs::TraceKind::kSleep);
        while (!stop_ && !any_runnable_locked()) cv_.wait(lock);
        trace_event(id, kNoJobId, obs::TraceKind::kWake);
      }
      job = pick_job_locked();
      if (job == nullptr) {
        if (stop_) break;
        continue;  // stale probe; re-evaluate
      }
      if (job->id != last_resident) {
        if (last_resident != kNoJobId) ++rotations;
        last_resident = job->id;
      }
    }

    // One adoption round on the resident job: a short bookkeeping section
    // (merge body accounting, open on first adoption), then — with no job
    // lock held — retire the previous drain's tickets and refill this
    // worker's local run-queue through the job's sharded executive.
    enum class Outcome : std::uint8_t {
      kExecute,   ///< local queue non-empty; drain it unlocked
      kRetry,     ///< did executive idle work; poll the queue again
      kFinished,  ///< program finished and we won the finalize
      kDrained,   ///< rundown: queue empty, job not finished — steal/rotate
      kGone,      ///< job cancelled or finalized by a peer — rotate
    };
    Outcome out;
    JobState st;
    bool must_start = false;
    // Peak-queue high-water mark captured under the job mutex in the
    // finalize path below, republished under the pool mutex in kFinished.
    std::uint64_t finished_peak = 0;
    {
      RankedLock jlock(job->mu);
      ++locks;
      ++job->stats.exec_lock_acquisitions;
      if (delta.granules != 0 || delta.tasks != 0 || steal_delta != 0) {
        job->stats.tasks += delta.tasks;
        job->stats.granules += delta.granules;
        job->stats.busy += delta.busy;
        job->stats.steals += steal_delta;
        job->granules_done.fetch_add(delta.granules, std::memory_order_relaxed);
        delta = {};
        steal_delta = 0;
      }

      st = job->state.load(std::memory_order_relaxed);
      if (st == JobState::kQueued) {
        JobState open_expected = JobState::kQueued;
        if (job->state.compare_exchange_strong(open_expected, JobState::kRunning,
                                               std::memory_order_acq_rel)) {
          job->opened_at = std::chrono::steady_clock::now();
          st = JobState::kRunning;
          must_start = true;
        } else {
          st = open_expected;  // lost the open race to cancel()
        }
      }
    }
    // start() outside the job mutex (the lock discipline: never hold it
    // across executive calls). The open-CAS winner is the only caller, and
    // a peer that adopts before start() returns just sees an un-started
    // executive (acquire yields nothing) and rotates on.
    if (must_start) {
      trace_event(id, job->id, obs::TraceKind::kJobOpen);
      job->exec.start();
    }

    if (st != JobState::kRunning) {
      PAX_DCHECK(done.empty());
      out = Outcome::kGone;
    } else {
      job->dispatcher.refill(job->exec, id, done);
      if (job->dispatcher.occupancy(id) > 0) {
        out = Outcome::kExecute;
      } else if (job->exec.finished()) {
        // A finished executive has retired every ticket, so no shard buffer
        // or peer queue can still hold assignments of this job. Several
        // workers can observe the finished census concurrently — the CAS
        // elects the finalizer, the losers rotate on.
        PAX_DCHECK(!job->exec.work_available());
        JobState fin_expected = JobState::kRunning;
        // acq_rel: release publishes the job's final bookkeeping to
        // handle-side acquire loads; acquire orders the losers' view.
        if (job->state.compare_exchange_strong(fin_expected, JobState::kComplete,
                                               std::memory_order_acq_rel)) {
          RankedLock jlock(job->mu);
          job->finished_at = std::chrono::steady_clock::now();
          job->stats.peak_local_queue = job->dispatcher.peak_occupancy();
          // Guard gap surfaced by the annotation pass: the kFinished arm
          // below runs under the *pool* mutex and must not read the
          // job-mutex-guarded stats there — capture the value here instead.
          finished_peak = job->stats.peak_local_queue;
          out = Outcome::kFinished;
        } else {
          out = Outcome::kGone;  // a peer won the finalize
        }
      } else if (job->exec.has_idle_work() && job->exec.idle_work()) {
        // Donate the rotation gap to this job's executive (map builds,
        // deferred splits) before declaring its rundown.
        out = Outcome::kRetry;
      } else {
        out = Outcome::kDrained;
      }
    }
    // Probe flips cover every enqueue source of this round (retire
    // enablements, start(), idle work, shard refill): wake only on
    // not-runnable -> runnable, when a sleeper could actually be stuck.
    if (job->refresh_probes()) wake_pool();

    switch (out) {
      case Outcome::kExecute: {
        sched::BodyLoopStats step;
        job->dispatcher.drain_local(job->bodies, id, done, step);
        delta += step;
        totals += step;
        break;
      }
      case Outcome::kRetry:
        break;
      case Outcome::kFinished: {
        trace_event(id, job->id, obs::TraceKind::kJobFinalize);
        job->done_cv.notify_all();
        {
          const ShardStatsView ss = job->exec.stats();
          RankedLock lock(mu_);
          remove_job_locked(job);
          ++jobs_completed_;
          exec_control_acquisitions_ += ss.control_acquisitions;
          exec_lock_hold_ns_ += ss.control_hold_ns;
          shard_hits_ += ss.shard_hits + ss.sibling_hits;
          shard_ring_pops_ += ss.ring_pops;
          shard_ring_pop_empty_ += ss.ring_pop_empty;
          shard_ring_push_full_ += ss.ring_push_full;
          shard_ring_cas_retries_ += ss.ring_cas_retries;
          shard_lock_acquisitions_ += ss.shard_lock_acquisitions;
          shard_lock_hold_ns_ += ss.shard_lock_hold_ns;
          peak_local_queue_ = std::max(peak_local_queue_, finished_peak);
        }
        cv_.notify_all();  // wake drain()ers and rotating workers
        job.reset();
        break;
      }
      case Outcome::kDrained: {
        // The job's executive is dry but peers may still hold fat local
        // queues — its rundown. Steal a FIFO range from the most-loaded
        // peer before giving up residency.
        if (config_.steal) {
          const std::size_t got = job->dispatcher.try_steal(id);
          if (got > 0) {
            steals += got;
            steal_delta += got;
            sched::BodyLoopStats step;
            job->dispatcher.drain_local(job->bodies, id, done, step);
            delta += step;
            totals += step;
            break;  // keep residency; the next critical section retires
          }
          ++steal_fails;
        }
        // Release residency and let the policy pick whose tail to fill
        // next. refresh_probes() above keeps a drained job out of the pick
        // until it has work again.
        trace_event(id, job->id, obs::TraceKind::kJobDrain);
        job.reset();
        break;
      }
      case Outcome::kGone:
        job.reset();
        break;
    }
  }

  // Publish per-worker accounting; the wall clock closes inside worker_main
  // so spawn/join overhead never counts as pool idle time.
  const auto wall = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::steady_clock::now() - enter);
  // Unified metrics: each worker writes only its own cells (obs/metrics.hpp
  // per-worker sharding — no contention by construction, no lock needed).
  metrics_.add(mid_.tasks, id, totals.tasks);
  metrics_.add(mid_.granules, id, totals.granules);
  metrics_.add(mid_.busy_ns, id, static_cast<std::uint64_t>(totals.busy.count()));
  metrics_.add(mid_.wall_ns, id, static_cast<std::uint64_t>(wall.count()));
  metrics_.add(mid_.steals, id, steals);
  metrics_.add(mid_.steal_fails, id, steal_fails);
  metrics_.add(mid_.rotations, id, rotations);
  metrics_.add(mid_.job_locks, id, locks);
  RankedLock lock(mu_);
  busy_[id] += totals.busy;
  worker_wall_[id] = wall;
  tasks_ += totals.tasks;
  granules_ += totals.granules;
  lock_acquisitions_ += locks;
  rotations_ += rotations;
  steals_ += steals;
  steal_fail_spins_ += steal_fails;
}

void PoolRuntime::trace_event(WorkerId w, std::uint64_t job_id,
                              obs::TraceKind kind) {
  if (config_.trace == nullptr) return;
  obs::TraceRecord r;
  r.ts_ns = obs::trace_now_ns();
  r.job = job_id;
  r.worker = static_cast<std::uint16_t>(w);
  r.kind = kind;
  config_.trace->ring(w).emit(r);
}

}  // namespace pax::pool
