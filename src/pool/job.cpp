#include "pool/job.hpp"

#include "common/check.hpp"
#include "pool/pool_runtime.hpp"

namespace pax::pool {

bool JobHandle::cancel() {
  PAX_CHECK_MSG(pool_ != nullptr && job_ != nullptr, "cancel on empty handle");
  return pool_->cancel_job(job_);
}

}  // namespace pax::pool
