#include "pool/job.hpp"

#include <chrono>
#include <memory>

#include "common/check.hpp"

namespace pax::pool {

bool JobHandle::cancel() {
  PAX_CHECK_MSG(job_ != nullptr, "cancel on empty handle");
  detail::Job& job = *job_;

  // Decide under the job mutex which of the three cases applies. The
  // pre-open flip is the terminal transition itself (release store after
  // the final bookkeeping writes, per the done() ⇒ stats()-final contract);
  // the mid-run path only latches cancel_requested here — the terminal flip
  // happens in the worker finalize path once the executive has drained.
  bool pre_open = false;
  bool mid_run = false;
  {
    RankedLock lock(job.mu);
    const JobState s = job.state.load(std::memory_order_relaxed);
    if (s == JobState::kQueued) {
      const auto now = std::chrono::steady_clock::now();
      job.finished_at = now;
      if (job.has_deadline()) {
        job.stats.has_deadline = true;
        job.stats.deadline_slack =
            std::chrono::duration_cast<std::chrono::nanoseconds>(job.deadline -
                                                                 now);
        // Cancelled jobs never count as deadline misses.
      }
      job.state.store(JobState::kCancelled, std::memory_order_release);
      pre_open = true;
    } else if (s == JobState::kRunning && !job.cancel_requested) {
      job.cancel_requested = true;
      mid_run = true;
    }
  }

  if (pre_open) {
    job.done_cv.notify_all();
    if (auto ctl = job.ctl.lock()) {
      {
        RankedLock lock(ctl->mu);
        ctl->remove_job_locked(job_);
        ++ctl->jobs_cancelled;
      }
      ctl->cv.notify_all();
    }
    return true;
  }

  if (mid_run) {
    // Stop the executive: no more granule handouts, buffered assignments are
    // recalled, in-flight granules drain. A worker observes exec.finished()
    // on its next adoption round and finalizes the job as kCancelled. Wake
    // the pool in case every worker is asleep (the finalize probe treats a
    // finished executive as runnable work).
    job.exec.request_stop();
    if (auto ctl = job.ctl.lock()) ctl->wake();
    return true;
  }

  return false;  // already terminal, cancel already in flight, or racing
}

}  // namespace pax::pool
