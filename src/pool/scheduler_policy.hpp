// scheduler_policy.hpp — cross-job scheduling policies for the pool runtime.
//
// The pool's worker loop is a two-level pick: a worker prefers its resident
// job while that job's waiting queue is non-empty, and when the queue drains
// (the rundown signal, now at *program* scope) it rotates to another
// runnable job. The policy decides only the second level — which job a
// rotating worker adopts — so it is a pure comparator over a small snapshot
// of each job, testable without threads.
#pragma once

#include <cstdint>
#include <limits>

namespace pax::pool {

enum class SchedPolicy : std::uint8_t {
  kFifo,       ///< submission order (lowest job id first)
  kPriority,   ///< highest submit-time priority, fifo within a priority
  kFairShare,  ///< fewest granules executed so far, fifo on ties
  kDeadline,   ///< earliest absolute deadline first (EDF), no-deadline last
};

[[nodiscard]] inline const char* to_string(SchedPolicy p) {
  switch (p) {
    case SchedPolicy::kFifo: return "fifo";
    case SchedPolicy::kPriority: return "priority";
    case SchedPolicy::kFairShare: return "fair-share";
    case SchedPolicy::kDeadline: return "deadline";
  }
  return "?";
}

/// JobView::deadline_ns for a job with no deadline: sorts after every real
/// deadline under EDF, so deadline-free batch work fills leftover capacity.
inline constexpr std::int64_t kNoDeadline =
    std::numeric_limits<std::int64_t>::max();

/// Scheduling-relevant snapshot of a runnable job, read from cheap atomic
/// probes (no job lock taken during the pick).
struct JobView {
  std::uint64_t id = 0;         ///< submission order, dense from 0
  int priority = 0;             ///< larger = more urgent
  std::uint64_t granules = 0;   ///< granules executed so far
  /// Absolute deadline (steady-clock ns since epoch); kNoDeadline = none.
  std::int64_t deadline_ns = kNoDeadline;
};

/// True when a rotating worker should adopt `a` ahead of `b` under `policy`.
/// Total order for fixed snapshots: every policy tie-breaks by id.
[[nodiscard]] inline bool schedules_before(const JobView& a, const JobView& b,
                                           SchedPolicy policy) {
  switch (policy) {
    case SchedPolicy::kFifo:
      break;
    case SchedPolicy::kPriority:
      if (a.priority != b.priority) return a.priority > b.priority;
      break;
    case SchedPolicy::kFairShare:
      if (a.granules != b.granules) return a.granules < b.granules;
      break;
    case SchedPolicy::kDeadline:
      if (a.deadline_ns != b.deadline_ns) return a.deadline_ns < b.deadline_ns;
      break;
  }
  return a.id < b.id;
}

}  // namespace pax::pool
