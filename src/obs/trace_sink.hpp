// trace_sink.hpp — bridge from the executive's structural events to the
// control-track trace ring.
//
// The executive's ExecEventSink fires under whatever lock the driver wraps
// the core in (the control mutex, for the sharded front-end) — which is
// exactly the serialization the control-track ring's single-writer contract
// needs. TraceEventSink translates the structural kinds that belong on a
// timeline (run opened/completed, enablement ranges, program finish) into
// TraceRecords and drops the rest; an optional `next` sink keeps the old
// observer idiom composable (trace AND a test observer on the same core).
//
// The pool runtime deliberately does NOT install this sink: its jobs have
// independent control mutexes, so two workers sweeping *different* jobs
// would race on the one shared control ring. Pool timelines come from the
// worker-side records (exec spans + job lifecycle) instead.
#pragma once

#include "core/executive.hpp"
#include "obs/trace_ring.hpp"

namespace pax::obs {

class TraceEventSink final : public ExecEventSink {
 public:
  /// `ring` should be the TraceBuffer's control ring; `job` tags the lane
  /// (kNoTraceJob for the threaded runtime and the sim). Non-owning `next`
  /// is invoked after the record is written, for every event (including the
  /// kinds this sink does not record).
  explicit TraceEventSink(TraceRing& ring, std::uint64_t job = kNoTraceJob,
                          ExecEventSink* next = nullptr)
      : ring_(ring), job_(job), next_(next) {}

  void on_event(const ExecEvent& ev) override {
    TraceKind kind{};
    bool record = true;
    switch (ev.kind) {
      case ExecEvent::Kind::kRunOpened: kind = TraceKind::kRunOpened; break;
      case ExecEvent::Kind::kRunCompleted: kind = TraceKind::kRunCompleted; break;
      case ExecEvent::Kind::kGranulesEnabled:
        kind = TraceKind::kGranulesEnabled;
        break;
      case ExecEvent::Kind::kProgramFinished:
        kind = TraceKind::kProgramFinished;
        break;
      default:
        record = false;  // creation/overlap/serial/branch/diagnostic: not
                         // timeline material; tests read them via `next`
    }
    if (record) {
      TraceRecord r;
      r.ts_ns = trace_now_ns();
      r.job = job_;
      r.range = ev.range;
      r.phase = ev.phase;
      // aux carries the run id for run events, the enabled-range size for
      // enablements (the run id rides in neither — range disambiguates).
      r.aux = ev.kind == ExecEvent::Kind::kGranulesEnabled
                  ? static_cast<std::uint32_t>(ev.range.size())
                  : ev.run;
      r.worker = kControlTrack;
      r.kind = kind;
      ring_.emit(r);
    }
    if (next_ != nullptr) next_->on_event(ev);
  }

 private:
  TraceRing& ring_;
  std::uint64_t job_;
  ExecEventSink* next_;
};

}  // namespace pax::obs
