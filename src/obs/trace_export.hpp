// trace_export.hpp — merge trace rings into a Perfetto-loadable timeline.
//
// Output is the Chrome trace-event JSON format (a {"traceEvents": [...]}
// object), which both chrome://tracing and ui.perfetto.dev open directly:
//   * one *process* lane per pool job (the threaded runtime and the sim
//     share the kNoTraceJob lane, named "pax");
//   * one *thread* track per worker, plus a "control" track for the
//     executive's structural events;
//   * exec begin/end pairs become complete ("X") duration events, sleep/wake
//     pairs become "sleep" spans, everything else becomes instants;
//   * run opened→completed pairs on the control track become run-lane spans;
//   * a global "rundown t90" marker is placed where cumulative executed
//     granules cross 90% of the total — the window the paper's figures and
//     the t8/t9 gates measure.
//
// Export runs post-quiescence (after join), off the hot path; it is the one
// obs component allowed to allocate freely.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace_ring.hpp"

namespace pax::obs {

/// All retained records of every ring, merged and sorted by timestamp
/// (ties keep worker order). Quiescent-only, like TraceRing::snapshot_into.
[[nodiscard]] std::vector<TraceRecord> merged_records(const TraceBuffer& buf);

/// Per-worker busy nanoseconds summed from matched exec begin/end pairs in
/// each worker's ring (index == worker id). With zero drops this equals the
/// runtime's own per-worker busy accounting *exactly*, because the dispatch
/// layer stamps the records from the same two clock reads it feeds the
/// accounting — the identity bench_t11_trace and test_obs check.
[[nodiscard]] std::vector<std::uint64_t> busy_ns_by_worker(
    const TraceBuffer& buf);

/// Total granules covered by exec-end records across all rings.
[[nodiscard]] std::uint64_t granules_in(const std::vector<TraceRecord>& records);

/// Serialize `records` (typically merged_records()) as Chrome trace JSON.
/// Returns false (with a stderr warning) when the file cannot be written.
bool write_chrome_trace(const std::vector<TraceRecord>& records,
                        const std::string& path);

/// Convenience: merge + write in one call.
bool write_chrome_trace(const TraceBuffer& buf, const std::string& path);

}  // namespace pax::obs
