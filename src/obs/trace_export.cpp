#include "obs/trace_export.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <utility>

namespace pax::obs {

namespace {

/// Chrome trace pid/tid encoding. Perfetto groups tracks by pid, so each
/// pool job gets its own process lane; tid 0 is the control track so it
/// sorts above the workers.
std::uint64_t pid_of(std::uint64_t job) { return job == kNoTraceJob ? 1 : job + 2; }
std::uint32_t tid_of(std::uint16_t worker) {
  return worker == kControlTrack ? 0 : worker + 1u;
}

/// Microseconds (Chrome trace unit) relative to the run's first record.
double us_of(std::uint64_t ts_ns, std::uint64_t t0_ns) {
  return static_cast<double>(ts_ns - t0_ns) / 1000.0;
}

struct Emitter {
  std::FILE* f;
  bool first = true;

  void raw(const std::string& s) {
    std::fputs(first ? "\n    " : ",\n    ", f);
    std::fputs(s.c_str(), f);
    first = false;
  }

  void meta(std::uint64_t pid, std::uint32_t tid, const char* what,
            const std::string& name) {
    char b[256];
    if (tid == 0xFFFFFFFFu) {
      std::snprintf(b, sizeof b,
                    "{\"name\":\"%s\",\"ph\":\"M\",\"pid\":%" PRIu64
                    ",\"args\":{\"name\":\"%s\"}}",
                    what, pid, name.c_str());
    } else {
      std::snprintf(b, sizeof b,
                    "{\"name\":\"%s\",\"ph\":\"M\",\"pid\":%" PRIu64
                    ",\"tid\":%u,\"args\":{\"name\":\"%s\"}}",
                    what, pid, tid, name.c_str());
    }
    raw(b);
  }

  void complete(const std::string& name, std::uint64_t pid, std::uint32_t tid,
                double ts_us, double dur_us, const std::string& args_json) {
    char b[384];
    std::snprintf(b, sizeof b,
                  "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":%" PRIu64
                  ",\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f,\"args\":{%s}}",
                  name.c_str(), pid, tid, ts_us, dur_us, args_json.c_str());
    raw(b);
  }

  void instant(const std::string& name, std::uint64_t pid, std::uint32_t tid,
               double ts_us, char scope, const std::string& args_json) {
    char b[384];
    std::snprintf(b, sizeof b,
                  "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"%c\",\"pid\":%" PRIu64
                  ",\"tid\":%u,\"ts\":%.3f,\"args\":{%s}}",
                  name.c_str(), scope, pid, tid, ts_us, args_json.c_str());
    raw(b);
  }
};

std::string exec_name(const TraceRecord& r) {
  char b[96];
  std::snprintf(b, sizeof b, "phase %u [%u,%u)", r.phase, r.range.lo,
                r.range.hi);
  return b;
}

}  // namespace

std::vector<TraceRecord> merged_records(const TraceBuffer& buf) {
  std::vector<TraceRecord> out;
  std::size_t total = 0;
  for (std::uint32_t w = 0; w <= buf.workers(); ++w)
    total += (w == buf.workers() ? buf.control_ring() : buf.ring(w)).size();
  out.reserve(total);
  for (std::uint32_t w = 0; w < buf.workers(); ++w)
    buf.ring(w).snapshot_into(out);
  buf.control_ring().snapshot_into(out);
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     return a.ts_ns != b.ts_ns ? a.ts_ns < b.ts_ns
                                               : a.worker < b.worker;
                   });
  return out;
}

std::vector<std::uint64_t> busy_ns_by_worker(const TraceBuffer& buf) {
  std::vector<std::uint64_t> busy(buf.workers(), 0);
  std::vector<TraceRecord> ring;
  for (std::uint32_t w = 0; w < buf.workers(); ++w) {
    ring.clear();
    buf.ring(w).snapshot_into(ring);
    // Single-writer rings hold this worker's records in emission order, so
    // begin/end strictly alternate; a wrap can only truncate the front,
    // leaving at worst one orphaned end to skip.
    std::uint64_t begin_ns = 0;
    bool open = false;
    for (const TraceRecord& r : ring) {
      if (r.kind == TraceKind::kExecBegin) {
        begin_ns = r.ts_ns;
        open = true;
      } else if (r.kind == TraceKind::kExecEnd && open) {
        busy[w] += r.ts_ns - begin_ns;
        open = false;
      }
    }
  }
  return busy;
}

std::uint64_t granules_in(const std::vector<TraceRecord>& records) {
  std::uint64_t n = 0;
  for (const TraceRecord& r : records)
    if (r.kind == TraceKind::kExecEnd) n += r.aux;
  return n;
}

bool write_chrome_trace(const std::vector<TraceRecord>& records,
                        const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "obs: cannot write trace file '%s'\n", path.c_str());
    return false;
  }

  std::uint64_t t0 = ~std::uint64_t{0};
  std::uint64_t total_granules = 0;
  for (const TraceRecord& r : records) {
    t0 = std::min(t0, r.ts_ns);
    if (r.kind == TraceKind::kExecEnd) total_granules += r.aux;
  }
  if (records.empty()) t0 = 0;

  std::fputs("{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [", f);
  Emitter em{f};

  // Track metadata: name every (job, worker) pair that appears.
  std::map<std::uint64_t, std::vector<std::uint32_t>> tracks;
  for (const TraceRecord& r : records) {
    auto& tids = tracks[r.job];
    const std::uint32_t tid = tid_of(r.worker);
    if (std::find(tids.begin(), tids.end(), tid) == tids.end())
      tids.push_back(tid);
  }
  for (auto& [job, tids] : tracks) {
    const std::uint64_t pid = pid_of(job);
    em.meta(pid, 0xFFFFFFFFu, "process_name",
            job == kNoTraceJob ? std::string("pax")
                               : "job " + std::to_string(job));
    std::sort(tids.begin(), tids.end());
    for (std::uint32_t tid : tids)
      em.meta(pid, tid, "thread_name",
              tid == 0 ? std::string("control")
                       : "worker " + std::to_string(tid - 1));
  }

  // Pair-tracking state, keyed per (job, worker) for spans and per
  // (job, run) for run lanes. The records are time-sorted; per-worker kinds
  // still alternate correctly because each worker's records keep their ring
  // order under the stable sort.
  std::map<std::pair<std::uint64_t, std::uint16_t>, std::uint64_t> open_exec;
  std::map<std::pair<std::uint64_t, std::uint16_t>, std::uint64_t> open_sleep;
  struct OpenRun {
    std::uint64_t ts_ns = 0;
    PhaseId phase = kNoPhase;
  };
  std::map<std::pair<std::uint64_t, std::uint32_t>, OpenRun> open_runs;
  std::uint64_t done_granules = 0;
  bool t90_marked = false;
  char args[192];

  for (const TraceRecord& r : records) {
    const std::uint64_t pid = pid_of(r.job);
    const std::uint32_t tid = tid_of(r.worker);
    const double ts = us_of(r.ts_ns, t0);
    switch (r.kind) {
      case TraceKind::kExecBegin:
        open_exec[{r.job, r.worker}] = r.ts_ns;
        break;
      case TraceKind::kExecEnd: {
        const auto it = open_exec.find({r.job, r.worker});
        if (it != open_exec.end()) {
          std::snprintf(args, sizeof args, "\"granules\":%u", r.aux);
          em.complete(exec_name(r), pid, tid, us_of(it->second, t0),
                      us_of(r.ts_ns, t0) - us_of(it->second, t0), args);
          open_exec.erase(it);
        }
        done_granules += r.aux;
        if (!t90_marked && total_granules > 0 &&
            done_granules * 10 >= total_granules * 9) {
          em.instant("rundown t90", pid, tid, ts, 'g', "");
          t90_marked = true;
        }
        break;
      }
      case TraceKind::kSleep:
        open_sleep[{r.job, r.worker}] = r.ts_ns;
        break;
      case TraceKind::kWake: {
        const auto it = open_sleep.find({r.job, r.worker});
        if (it != open_sleep.end()) {
          em.complete("sleep", pid, tid, us_of(it->second, t0),
                      us_of(r.ts_ns, t0) - us_of(it->second, t0), "");
          open_sleep.erase(it);
        }
        break;
      }
      case TraceKind::kRunOpened:
        open_runs[{r.job, r.aux}] = OpenRun{r.ts_ns, r.phase};
        std::snprintf(args, sizeof args, "\"run\":%u", r.aux);
        em.instant(to_string(r.kind), pid, tid, ts, 't', args);
        break;
      case TraceKind::kRunCompleted: {
        const auto it = open_runs.find({r.job, r.aux});
        if (it != open_runs.end()) {
          std::snprintf(args, sizeof args, "\"run\":%u,\"phase\":%u", r.aux,
                        it->second.phase);
          em.complete("run " + std::to_string(r.aux), pid, tid,
                      us_of(it->second.ts_ns, t0),
                      us_of(r.ts_ns, t0) - us_of(it->second.ts_ns, t0), args);
          open_runs.erase(it);
        } else {
          em.instant(to_string(r.kind), pid, tid, ts, 't', "");
        }
        break;
      }
      default:
        std::snprintf(args, sizeof args, "\"aux\":%u", r.aux);
        em.instant(to_string(r.kind), pid, tid, ts, 't', args);
        break;
    }
  }

  std::fputs("\n  ]\n}\n", f);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

bool write_chrome_trace(const TraceBuffer& buf, const std::string& path) {
  return write_chrome_trace(merged_records(buf), path);
}

}  // namespace pax::obs
