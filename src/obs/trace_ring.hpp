// trace_ring.hpp — always-on, lock-free, per-worker trace rings.
//
// The paper's whole argument is about *where worker time goes during
// rundown*, but RtResult/PoolStats/SimResult only answer in aggregate. The
// trace ring is the per-granule answer: every worker owns a fixed-size,
// preallocated ring of compact binary records (granule exec begin/end,
// refills, steal attempts, shard sweeps, deposit flushes, sleep/wake, pool
// job lifecycle) written from the hot path with relaxed atomics and no
// locks. The rings honor the two standing disciplines:
//
//   * memory (DESIGN.md §10): the buffer is allocated once at construction
//     and never grows — emitting a record is a store, full stop. Warm-window
//     heap traffic with tracing enabled stays exactly zero (bench_t11_trace
//     gates it).
//   * concurrency (DESIGN.md §11): each ring has exactly one writer — the
//     owning worker (the control-track ring is written only under the
//     executive control mutex, which serializes its writers). Readers run
//     post-quiescence (after join / program finish), ordered by the join
//     itself, so the ring needs no internal synchronization beyond the
//     relaxed head counter.
//
// Overflow semantics: the ring *wraps*, overwriting the oldest records and
// counting the overwrites as drops. Rundown lives at the end of a run, so
// keeping the newest records is the right default for the paper's question;
// dropped() makes the truncation explicit instead of silent.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hpp"

namespace pax::obs {

/// The trace clock: steady-clock nanoseconds since the (unspecified) epoch.
/// Every live-runtime emit site stamps with this, so records from different
/// workers, rings and subsystems merge onto one comparable axis; the
/// exporter normalizes to the run's earliest record.
[[nodiscard]] inline std::uint64_t trace_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// What one trace record describes. Worker-side kinds are written by the
/// worker the record belongs to; control kinds are written on the control
/// track by whichever thread holds the executive control mutex.
enum class TraceKind : std::uint8_t {
  // Worker-side execution records.
  kExecBegin,     ///< phase-body execution of `range` began
  kExecEnd,       ///< ... ended (same worker, strictly after its begin)
  kRefill,        ///< dispatcher refill (aux = assignments pulled)
  kStealAttempt,  ///< rundown steal probe found every peer dry
  kStealSuccess,  ///< stole aux assignments from the most-loaded peer
  kShardSweep,    ///< control sweep entered (aux = tickets retired)
  kDepositFlush,  ///< tickets parked in the home shard (aux = tickets)
  kRingOverflow,  ///< deposit ring refused a push (aux = tickets going direct)
  kSleep,         ///< worker parked on the sleep condition variable
  kWake,          ///< ... and resumed
  // Pool job lifecycle (job = pool job id).
  kJobOpen,       ///< this worker opened (start()ed) the job
  kJobDrain,      ///< resident job ran dry (rundown signal; worker rotates)
  kJobFinalize,   ///< this worker won the job's finalize CAS
  // Control-track records (ExecEvent structural events, via TraceEventSink).
  kRunOpened,
  kRunCompleted,
  kGranulesEnabled,  ///< aux = range size
  kProgramFinished,
  // Fault containment (DESIGN.md §15).
  kGranuleFault,     ///< a phase body threw; the barrier caught it (aux = faults)
  kGranuleRetry,     ///< faulted range re-queued for another attempt (aux = retries)
  kGranulePoisoned,  ///< retry budget exhausted; granules poisoned (aux = granules)
  kWatchdogFlag,     ///< watchdog flagged a stuck granule (aux = worker flagged)
};

[[nodiscard]] inline const char* to_string(TraceKind k) {
  switch (k) {
    case TraceKind::kExecBegin: return "exec_begin";
    case TraceKind::kExecEnd: return "exec_end";
    case TraceKind::kRefill: return "refill";
    case TraceKind::kStealAttempt: return "steal_attempt";
    case TraceKind::kStealSuccess: return "steal_success";
    case TraceKind::kShardSweep: return "shard_sweep";
    case TraceKind::kDepositFlush: return "deposit_flush";
    case TraceKind::kRingOverflow: return "ring_overflow";
    case TraceKind::kSleep: return "sleep";
    case TraceKind::kWake: return "wake";
    case TraceKind::kJobOpen: return "job_open";
    case TraceKind::kJobDrain: return "job_drain";
    case TraceKind::kJobFinalize: return "job_finalize";
    case TraceKind::kRunOpened: return "run_opened";
    case TraceKind::kRunCompleted: return "run_completed";
    case TraceKind::kGranulesEnabled: return "granules_enabled";
    case TraceKind::kProgramFinished: return "program_finished";
    case TraceKind::kGranuleFault: return "granule_fault";
    case TraceKind::kGranuleRetry: return "granule_retry";
    case TraceKind::kGranulePoisoned: return "granule_poisoned";
    case TraceKind::kWatchdogFlag: return "watchdog_flag";
  }
  return "?";
}

/// "No pool job": the threaded runtime and the simulator trace under this
/// id; the exporter renders them as one process lane.
inline constexpr std::uint64_t kNoTraceJob = ~std::uint64_t{0};

/// Worker id of the control track (records emitted under the executive
/// control mutex rather than by a specific worker's own loop).
inline constexpr std::uint16_t kControlTrack = 0xFFFFu;

/// One compact binary trace record. POD, fixed layout, 40 bytes; written by
/// value into a preallocated ring slot — emitting never allocates.
struct TraceRecord {
  std::uint64_t ts_ns = 0;         ///< steady-clock ns (sim: ticks * 1000)
  std::uint64_t job = kNoTraceJob; ///< pool job id, or kNoTraceJob
  GranuleRange range{};            ///< exec spans / enablement records
  PhaseId phase = kNoPhase;
  std::uint32_t aux = 0;           ///< count payload (see TraceKind comments)
  std::uint16_t worker = 0;        ///< owning track (kControlTrack = control)
  TraceKind kind{};
  std::uint8_t reserved = 0;
};
static_assert(sizeof(TraceRecord) == 40, "keep trace records compact");

/// Fixed-capacity single-writer ring of TraceRecords.
///
/// Writer contract: exactly one thread emits at a time (the owning worker,
/// or — for the control track — whichever thread holds the control mutex;
/// the mutex provides the cross-thread ordering the relaxed head cannot).
/// Reader contract: snapshot_into()/read access is quiescent-only — after
/// the writers joined or the program finished under a lock the reader also
/// passed through. emitted()/dropped() are safe to probe any time (they are
/// single relaxed loads and may be a moment stale).
class TraceRing {
 public:
  /// `capacity` is rounded up to a power of two (minimum 2) so the wrap is
  /// a mask, not a division, on the hot path.
  explicit TraceRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    buf_.resize(cap);
    mask_ = cap - 1;
  }

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  [[nodiscard]] std::size_t capacity() const { return buf_.size(); }

  /// Hot path: one slot store + one relaxed counter bump. Never allocates,
  /// never locks, never fails — a full ring overwrites its oldest record.
  void emit(const TraceRecord& r) {
    // Relaxed: single-writer ring; readers are quiescent (ordered by join)
    // or probe-only. No other memory is inferred from the counter.
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    buf_[h & mask_] = r;
    head_.store(h + 1, std::memory_order_relaxed);
  }

  /// Total records ever emitted (including overwritten ones).
  [[nodiscard]] std::uint64_t emitted() const {
    return head_.load(std::memory_order_relaxed);
  }

  /// Records lost to wrap-overwrite: emitted() minus what the ring retains.
  [[nodiscard]] std::uint64_t dropped() const {
    const std::uint64_t n = emitted();
    return n > buf_.size() ? n - buf_.size() : 0;
  }

  /// Records currently retained (= min(emitted, capacity)).
  [[nodiscard]] std::size_t size() const {
    const std::uint64_t n = emitted();
    return n < buf_.size() ? static_cast<std::size_t>(n) : buf_.size();
  }

  /// Append the retained window, oldest record first, onto `out`.
  /// Quiescent-only (see class comment).
  void snapshot_into(std::vector<TraceRecord>& out) const {
    const std::uint64_t n = emitted();
    const std::uint64_t lo = n > buf_.size() ? n - buf_.size() : 0;
    for (std::uint64_t i = lo; i < n; ++i) out.push_back(buf_[i & mask_]);
  }

 private:
  std::vector<TraceRecord> buf_;
  std::size_t mask_ = 0;
  /// alignas: the head is the only mutable hot word; keep it off the cache
  /// line of whatever neighbors the allocator gives this object.
  alignas(64) std::atomic<std::uint64_t> head_{0};
};

struct TraceConfig {
  /// Records per ring (rounded up to a power of two). 1<<15 records is
  /// 1.25 MiB per worker — hours of steady state for typical record rates,
  /// and the wrap keeps the newest (rundown) window when it is not.
  std::size_t ring_capacity = std::size_t{1} << 15;
};

/// The per-run trace: one ring per worker plus one control-track ring.
/// All rings are preallocated at construction; nothing here allocates after
/// that. Pass a pointer to the runtimes' configs to turn tracing on; leave
/// it null (the default) and every emit site is one untaken branch.
class TraceBuffer {
 public:
  explicit TraceBuffer(std::uint32_t workers, TraceConfig config = {})
      : workers_(workers) {
    rings_.reserve(workers + 1u);
    for (std::uint32_t i = 0; i <= workers; ++i)
      rings_.push_back(std::make_unique<TraceRing>(config.ring_capacity));
  }

  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  [[nodiscard]] std::uint32_t workers() const { return workers_; }

  /// Worker `w`'s ring. The caller must be (or be serialized with) the
  /// ring's single writer.
  [[nodiscard]] TraceRing& ring(WorkerId w) { return *rings_[w]; }
  [[nodiscard]] const TraceRing& ring(WorkerId w) const { return *rings_[w]; }

  /// The control track: written only under an executive control mutex.
  [[nodiscard]] TraceRing& control_ring() { return *rings_[workers_]; }
  [[nodiscard]] const TraceRing& control_ring() const {
    return *rings_[workers_];
  }

  [[nodiscard]] std::uint64_t total_emitted() const {
    std::uint64_t n = 0;
    for (const auto& r : rings_) n += r->emitted();
    return n;
  }

  [[nodiscard]] std::uint64_t total_dropped() const {
    std::uint64_t n = 0;
    for (const auto& r : rings_) n += r->dropped();
    return n;
  }

 private:
  std::uint32_t workers_;
  /// unique_ptr per ring: stable addresses and no false sharing between
  /// rings' head counters (each ring is its own allocation).
  std::vector<std::unique_ptr<TraceRing>> rings_;
};

}  // namespace pax::obs
