// metrics.hpp — the unified metrics registry.
//
// Before this layer, every new observable grew a bespoke field on
// RtResult/PoolStats/SimResult and a hand-written copy in each runtime's
// result assembly. The registry replaces that pattern: metrics are *named*
// counters, gauges and histograms registered once, accumulated in
// per-worker cacheline-padded cells with relaxed atomics (no shared hot
// word), and snapshotted into a uniform MetricsSnapshot that all three
// result structs carry. New metrics flow into benches, BENCH_*.json and
// the trace exporter without touching a result struct again.
//
// Usage contract:
//   * register_*() and bind() run at construction time (they allocate);
//   * add()/set()/observe() are the hot-path writes — one relaxed atomic
//     add into the calling worker's own cell, no locks, no allocation;
//   * snapshot() sums the cells; it may run concurrently with writers
//     (relaxed reads: a snapshot mid-run is allowed to be a moment stale —
//     same contract as ShardStats).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace pax::obs {

using MetricId = std::uint32_t;

enum class MetricKind : std::uint8_t {
  kCounter,    ///< monotone sum across workers
  kGauge,      ///< last-set per worker; snapshot reports the sum of cells
  kHistogram,  ///< bucketed counts + total count + value sum
};

[[nodiscard]] inline const char* to_string(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

/// One snapshotted metric. For histograms, `value` is the observation
/// count, `sum` the value sum, and buckets[i] counts observations <=
/// bounds[i] (buckets.back() is the overflow bucket).
struct MetricValue {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t value = 0;
  std::uint64_t sum = 0;
  std::vector<std::uint64_t> buckets;
  std::vector<std::uint64_t> bounds;
};

/// Plain-value snapshot carried by RtResult/PoolStats/SimResult.
struct MetricsSnapshot {
  std::vector<MetricValue> values;

  [[nodiscard]] const MetricValue* find(std::string_view name) const {
    for (const MetricValue& v : values)
      if (v.name == name) return &v;
    return nullptr;
  }

  /// Value of a counter/gauge by name; `fallback` when absent.
  [[nodiscard]] std::uint64_t value_of(std::string_view name,
                                       std::uint64_t fallback = 0) const {
    const MetricValue* v = find(name);
    return v != nullptr ? v->value : fallback;
  }

  /// Builder convenience for one-shot snapshots (the simulator, and result
  /// assembly folding in values that never lived in worker cells).
  void push(std::string name, std::uint64_t value,
            MetricKind kind = MetricKind::kCounter) {
    MetricValue v;
    v.name = std::move(name);
    v.kind = kind;
    v.value = value;
    values.push_back(std::move(v));
  }
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// --- registration (construction time; allocates) ------------------------

  MetricId register_counter(std::string name) {
    return register_metric(std::move(name), MetricKind::kCounter, {});
  }

  MetricId register_gauge(std::string name) {
    return register_metric(std::move(name), MetricKind::kGauge, {});
  }

  /// `bounds` must be strictly increasing; observations land in the first
  /// bucket whose bound is >= the value (one overflow bucket past the end).
  MetricId register_histogram(std::string name,
                              std::vector<std::uint64_t> bounds) {
    for (std::size_t i = 1; i < bounds.size(); ++i)
      PAX_CHECK_MSG(bounds[i - 1] < bounds[i],
                    "histogram bounds must be strictly increasing");
    return register_metric(std::move(name), MetricKind::kHistogram,
                           std::move(bounds));
  }

  /// Allocate the per-worker cells. Must be called after the last
  /// register_*() and before the first hot-path write. `workers` cells per
  /// slot; worker w writes only cells_[w] (plus any caller-serialized use
  /// of a shared index, e.g. the driver thread using cell 0 post-join).
  void bind(std::uint32_t workers) {
    PAX_CHECK_MSG(cells_.empty(), "bind() called twice");
    PAX_CHECK_MSG(workers > 0, "need at least one worker cell");
    slots_per_worker_ = next_slot_;
    cells_.reserve(workers);
    for (std::uint32_t w = 0; w < workers; ++w)
      cells_.push_back(std::make_unique<WorkerCells>(next_slot_));
  }

  [[nodiscard]] bool bound() const { return !cells_.empty(); }
  [[nodiscard]] std::size_t metric_count() const { return metrics_.size(); }

  /// --- hot path (relaxed atomic into the worker's own padded cell) --------

  void add(MetricId m, WorkerId w, std::uint64_t delta) {
    PAX_DCHECK(metrics_[m].kind == MetricKind::kCounter);
    // Relaxed: pure reporting sums; nothing is ordered by them.
    cell(w, metrics_[m].first_slot).fetch_add(delta, std::memory_order_relaxed);
  }

  void set(MetricId m, WorkerId w, std::uint64_t value) {
    PAX_DCHECK(metrics_[m].kind == MetricKind::kGauge);
    cell(w, metrics_[m].first_slot).store(value, std::memory_order_relaxed);
  }

  void observe(MetricId m, WorkerId w, std::uint64_t value) {
    const Metric& d = metrics_[m];
    PAX_DCHECK(d.kind == MetricKind::kHistogram);
    std::size_t b = 0;
    while (b < d.bounds.size() && value > d.bounds[b]) ++b;
    cell(w, d.first_slot + b).fetch_add(1, std::memory_order_relaxed);
    const std::size_t base = d.first_slot + d.bounds.size() + 1;
    cell(w, base + 0).fetch_add(1, std::memory_order_relaxed);      // count
    cell(w, base + 1).fetch_add(value, std::memory_order_relaxed);  // sum
  }

  /// --- snapshot ------------------------------------------------------------

  [[nodiscard]] MetricsSnapshot snapshot() const {
    MetricsSnapshot out;
    out.values.reserve(metrics_.size());
    for (const Metric& d : metrics_) {
      MetricValue v;
      v.name = d.name;
      v.kind = d.kind;
      v.bounds = d.bounds;
      if (d.kind == MetricKind::kHistogram) {
        v.buckets.resize(d.bounds.size() + 1, 0);
        for (std::size_t b = 0; b <= d.bounds.size(); ++b)
          v.buckets[b] = sum_slot(d.first_slot + b);
        v.value = sum_slot(d.first_slot + d.bounds.size() + 1);
        v.sum = sum_slot(d.first_slot + d.bounds.size() + 2);
      } else {
        v.value = sum_slot(d.first_slot);
      }
      out.values.push_back(std::move(v));
    }
    return out;
  }

 private:
  struct Metric {
    std::string name;
    MetricKind kind{};
    std::size_t first_slot = 0;
    std::vector<std::uint64_t> bounds;  // histograms only
  };

  /// One worker's cells, padded so two workers' hot words never share a
  /// cache line (the same alignas discipline as the shard census).
  struct alignas(64) WorkerCells {
    explicit WorkerCells(std::size_t n) : v(n) {}
    std::vector<std::atomic<std::uint64_t>> v;
  };

  MetricId register_metric(std::string name, MetricKind kind,
                           std::vector<std::uint64_t> bounds) {
    PAX_CHECK_MSG(cells_.empty(), "register after bind()");
    Metric d;
    d.name = std::move(name);
    d.kind = kind;
    d.first_slot = next_slot_;
    d.bounds = std::move(bounds);
    // Histograms take bounds+1 bucket slots plus count and sum slots.
    next_slot_ +=
        kind == MetricKind::kHistogram ? d.bounds.size() + 3 : std::size_t{1};
    metrics_.push_back(std::move(d));
    return static_cast<MetricId>(metrics_.size() - 1);
  }

  [[nodiscard]] std::atomic<std::uint64_t>& cell(WorkerId w, std::size_t slot) {
    PAX_DCHECK(w < cells_.size());
    return cells_[w]->v[slot];
  }

  [[nodiscard]] std::uint64_t sum_slot(std::size_t slot) const {
    std::uint64_t n = 0;
    for (const auto& wc : cells_)
      n += wc->v[slot].load(std::memory_order_relaxed);
    return n;
  }

  std::vector<Metric> metrics_;
  std::size_t next_slot_ = 0;
  std::size_t slots_per_worker_ = 0;
  std::vector<std::unique_ptr<WorkerCells>> cells_;
};

}  // namespace pax::obs
