#include "sim/trace.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace pax::sim {

double SimResult::utilization() const {
  if (makespan == 0 || workers == 0) return 0.0;
  return static_cast<double>(compute_ticks) /
         (static_cast<double>(makespan) * static_cast<double>(workers));
}

double SimResult::mgmt_ratio() const {
  if (exec_ticks == 0) return 0.0;
  return static_cast<double>(compute_ticks) / static_cast<double>(exec_ticks);
}

std::vector<double> SimResult::timeline(std::size_t buckets) const {
  PAX_CHECK_MSG(!compute_intervals.empty() || tasks_executed == 0,
                "timeline requires recorded intervals");
  std::vector<double> out(buckets, 0.0);
  if (makespan == 0 || buckets == 0 || workers == 0) return out;
  const double width = static_cast<double>(makespan) / static_cast<double>(buckets);
  for (const Interval& iv : compute_intervals) {
    // Distribute the interval's busy mass across the buckets it spans.
    const double b0 = static_cast<double>(iv.begin) / width;
    const double b1 = static_cast<double>(iv.end) / width;
    auto first = static_cast<std::size_t>(b0);
    auto last = static_cast<std::size_t>(b1);
    first = std::min(first, buckets - 1);
    last = std::min(last, buckets - 1);
    if (first == last) {
      out[first] += b1 - b0;
    } else {
      out[first] += static_cast<double>(first + 1) - b0;
      for (std::size_t b = first + 1; b < last; ++b) out[b] += 1.0;
      out[last] += b1 - static_cast<double>(last);
    }
  }
  for (auto& v : out) v /= static_cast<double>(workers);
  return out;
}

double SimResult::busy_workers_in(SimTime a, SimTime b) const {
  PAX_CHECK(b > a);
  double busy_ticks = 0.0;
  for (const Interval& iv : compute_intervals) {
    const SimTime lo = std::max(a, iv.begin);
    const SimTime hi = std::min(b, iv.end);
    if (hi > lo) busy_ticks += static_cast<double>(hi - lo);
  }
  return busy_ticks / static_cast<double>(b - a);
}

double SimResult::window_utilization(SimTime a, SimTime b) const {
  return busy_workers_in(a, b) / static_cast<double>(workers);
}

const RunRecord* SimResult::run_record(RunId id) const {
  for (const auto& r : runs)
    if (r.run == id) return &r;
  return nullptr;
}

SimTime SimResult::phase_completion(PhaseId phase) const {
  SimTime t = kTimeNever;
  for (const auto& r : runs) {
    if (r.phase != phase || r.completed == kTimeNever) continue;
    t = (t == kTimeNever) ? r.completed : std::max(t, r.completed);
  }
  return t;
}

std::vector<obs::TraceRecord> trace_records_of(const SimResult& res) {
  constexpr std::uint64_t kNsPerTick = 1000;  // 1 tick == 1 µs in the UI
  std::vector<obs::TraceRecord> out;
  out.reserve(2 * res.compute_intervals.size() + 2 * res.runs.size());
  for (const Interval& iv : res.compute_intervals) {
    obs::TraceRecord r;
    r.job = obs::kNoTraceJob;
    r.worker = static_cast<std::uint16_t>(iv.worker);
    r.ts_ns = iv.begin * kNsPerTick;
    r.kind = obs::TraceKind::kExecBegin;
    out.push_back(r);
    r.ts_ns = iv.end * kNsPerTick;
    r.kind = obs::TraceKind::kExecEnd;
    out.push_back(r);
  }
  for (const RunRecord& run : res.runs) {
    obs::TraceRecord r;
    r.job = obs::kNoTraceJob;
    r.worker = obs::kControlTrack;
    r.phase = run.phase;
    r.aux = static_cast<std::uint32_t>(run.run);
    r.ts_ns = run.opened * kNsPerTick;
    r.kind = obs::TraceKind::kRunOpened;
    out.push_back(r);
    if (run.completed != kTimeNever) {
      r.ts_ns = run.completed * kNsPerTick;
      r.kind = obs::TraceKind::kRunCompleted;
      out.push_back(r);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const obs::TraceRecord& a, const obs::TraceRecord& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return out;
}

}  // namespace pax::sim
