// machine.hpp — deterministic discrete-event multiprocessor simulator.
//
// Substitutes for the paper's UNIVAC 1100 testbed (and scales to the 1000-
// processor thought experiment in the introduction). P worker processors
// execute granule tasks; one *serial* executive services management
// operations, either at the direct expense of workers (kWorkerStealing, as
// on the testbed) or on a dedicated management processor (kDedicated).
//
// Event model:
//   * every ExecutiveCore entry point is a management *job* on the serial
//     executive; a job started at t with charge Δ completes (and publishes
//     its effects) at t+Δ;
//   * in worker-stealing placement, the initiating worker is blocked for the
//     whole job (request AND completion);
//   * in dedicated placement, completions are asynchronous (the worker
//     queues the completion and immediately requests new work) and request
//     jobs are serviced ahead of queued asynchronous work;
//   * executive idle time drains presplitting / deferred successor-splitting
//     work (only when a worker is parked, in worker-stealing mode — that is
//     the donated time the paper describes).
//
// The run is bit-reproducible for a fixed (program, config, workload) tuple.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <queue>
#include <vector>

#include "core/executive.hpp"
#include "sim/trace.hpp"
#include "sim/workload.hpp"

namespace pax::sim {

struct MachineConfig {
  std::uint32_t workers = 8;
  /// Record per-task compute intervals (needed for timelines; costs memory).
  bool record_intervals = true;
  /// Fixed worker-side dispatch overhead added to every task.
  SimTime task_overhead = 0;
  /// Decentralized dispatch: when a worker needs new work while the serial
  /// executive is busy (or backed up), it takes the assignment itself,
  /// paying the pop plus a CostModel::kSteal charge as *worker-side* time
  /// instead of queueing an executive request job. Models the dispatch
  /// layer's rundown work stealing (DESIGN.md §8); off by default so the
  /// centralized baselines stay bit-identical.
  bool steal = false;
  /// Executive shards: management *lanes* that service management jobs
  /// concurrently — the sim's rendering of the sharded executive front-end
  /// (DESIGN.md §9). A worker's request/completion jobs are laned by
  /// worker % shards, so two workers on different lanes never queue behind
  /// each other; per-lane busy time is billed into
  /// SimResult::shard_exec_ticks, and with shards > 1 every enablement-
  /// producing completion is additionally charged one kShardFlush (the
  /// cross-shard publish step). 1 = the serial executive, bit-identical to
  /// the pre-shard model; 0 is invalid.
  std::uint32_t shards = 1;
  /// Safety cap; simulation aborts past this point.
  SimTime max_time = kTimeNever;
};

/// Privately an ExecEventSink: the machine installs itself on the core to
/// timestamp run-lifecycle events into SimResult::runs.
class Machine : private ExecEventSink {
 public:
  Machine(const PhaseProgram& program, ExecConfig exec_config, CostModel costs,
          Workload workload, MachineConfig config);

  /// Run the program to completion; returns the result trace.
  SimResult run();

 private:
  /// ExecEventSink: called synchronously from inside core_ entry points
  /// (single-threaded; `now_` is the event's simulation time).
  void on_event(const ExecEvent& ev) override;

  enum class JobKind : std::uint8_t { kStart, kRequest, kCompletion, kIdleWork };

  struct Job {
    JobKind kind{};
    WorkerId worker = 0;
    Ticket ticket = kNoTicket;
    SimTime enqueued_at = 0;  // request jobs: when the worker presented itself
    std::uint32_t lane = 0;   // management lane (worker % shards; 0 for start/idle)
  };

  struct Event {
    SimTime t = 0;
    std::uint64_t seq = 0;
    // kTaskDone: worker finished its task; kExecDone: management job done.
    enum class Kind : std::uint8_t { kTaskDone, kExecDone } kind{};
    WorkerId worker = 0;
    Ticket ticket = kNoTicket;
    Job job{};
    std::optional<Assignment> assignment;  // kExecDone of a request job
    bool new_work = false;

    bool operator>(const Event& o) const {
      return t != o.t ? t > o.t : seq > o.seq;
    }
  };

  void push_event(Event e);
  void enqueue_job(Job j, bool front = false);
  void pump_executive();
  void start_job(Job j);
  /// Schedule `a`'s compute on worker `w`, starting `delay` ticks from now.
  void begin_assignment(WorkerId w, const Assignment& a, SimTime delay);
  /// Decentralized-dispatch bypass: pop an assignment for `w` directly when
  /// the executive is contended, billing the pop + kSteal as worker time.
  /// Returns false when disabled, uncontended, or no work is computable.
  bool try_steal(WorkerId w);
  void handle_exec_done(const Event& e);
  void handle_task_done(const Event& e);
  void unpark_all();
  void park(WorkerId w);
  void record_run_events();

  const PhaseProgram& program_;
  ExecutiveCore core_;
  CostModel costs_;
  Workload workload_;
  MachineConfig config_;
  ExecPlacement placement_;

  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  std::uint64_t seq_ = 0;
  SimTime now_ = 0;

  [[nodiscard]] std::uint32_t lane_of(WorkerId w) const {
    return w % config_.shards;
  }
  [[nodiscard]] bool all_lanes_idle() const;

  // Management lanes (one per executive shard; one lane = the classic serial
  // executive). Each lane has a sync queue (requests; everything in WS mode),
  // an async queue (dedicated-mode completions) and a busy flag.
  std::vector<std::deque<Job>> lane_sync_;
  std::vector<std::deque<Job>> lane_async_;
  std::vector<std::uint8_t> lane_busy_;

  std::vector<std::uint8_t> parked_;  // 1 = worker waiting for work
  std::uint32_t parked_count_ = 0;

  SimResult result_;
};

/// Convenience: simulate a program in one call.
SimResult simulate(const PhaseProgram& program, ExecConfig exec_config,
                   CostModel costs, Workload workload, MachineConfig config);

}  // namespace pax::sim
