#include "sim/workload.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace pax::sim {

const char* to_string(DurationModel m) {
  switch (m) {
    case DurationModel::kFixed: return "fixed";
    case DurationModel::kUniform: return "uniform";
    case DurationModel::kExponential: return "exponential";
    case DurationModel::kBimodal: return "bimodal";
  }
  return "?";
}

void Workload::set_phase(PhaseId phase, PhaseWorkload w) {
  if (per_phase_.size() <= phase) per_phase_.resize(phase + 1);
  per_phase_[phase] = w;
}

const PhaseWorkload& Workload::phase(PhaseId p) const {
  return p < per_phase_.size() ? per_phase_[p] : default_;
}

namespace {

/// Two independent 53-bit uniforms in [0,1) from one (seed, phase, granule).
struct HashDraws {
  double u0;
  double u1;
};

HashDraws draws(std::uint64_t seed, PhaseId phase, GranuleId g) {
  std::uint64_t s = seed ^ (0x9E3779B97F4A7C15ULL * (phase + 1)) ^
                    (0xC2B2AE3D27D4EB4FULL * (static_cast<std::uint64_t>(g) + 1));
  const std::uint64_t a = splitmix64(s);
  const std::uint64_t b = splitmix64(s);
  return {static_cast<double>(a >> 11) * 0x1.0p-53,
          static_cast<double>(b >> 11) * 0x1.0p-53};
}

}  // namespace

SimTime Workload::granule_duration(PhaseId p, GranuleId g) const {
  const PhaseWorkload& w = phase(p);
  const HashDraws d = draws(seed_, p, g);

  if (w.skip_probability > 0.0 && d.u1 < w.skip_probability) return w.skip_cost;

  double t = w.mean;
  switch (w.model) {
    case DurationModel::kFixed:
      break;
    case DurationModel::kUniform:
      t = w.mean - w.spread + 2.0 * w.spread * d.u0;
      break;
    case DurationModel::kExponential: {
      double u = std::min(d.u0, 0.9999999999999999);
      t = -w.mean * std::log1p(-u);
      break;
    }
    case DurationModel::kBimodal:
      t = d.u0 < w.bimodal_p ? w.mean + w.spread : w.mean;
      break;
  }
  return static_cast<SimTime>(std::max(1.0, std::llround(t) * 1.0));
}

SimTime Workload::task_duration(PhaseId p, GranuleRange r) const {
  // Fast path for fixed, non-conditional workloads (the common case in big
  // sweeps): avoid per-granule hashing.
  const PhaseWorkload& w = phase(p);
  if (w.model == DurationModel::kFixed && w.skip_probability == 0.0) {
    return static_cast<SimTime>(std::max(1.0, std::llround(w.mean) * 1.0)) * r.size();
  }
  SimTime total = 0;
  for (GranuleId g = r.lo; g < r.hi; ++g) total += granule_duration(p, g);
  return total;
}

double Workload::expected_phase_work(PhaseId p, GranuleId n) const {
  const PhaseWorkload& w = phase(p);
  double mean = w.mean;
  if (w.model == DurationModel::kBimodal) mean = w.mean + w.bimodal_p * w.spread;
  const double effective = (1.0 - w.skip_probability) * mean +
                           w.skip_probability * static_cast<double>(w.skip_cost);
  return effective * static_cast<double>(n);
}

}  // namespace pax::sim
