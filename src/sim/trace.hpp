// trace.hpp — simulation results: utilization accounting, timelines,
// rundown-window metrics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "core/cost_model.hpp"
#include "core/granule.hpp"
#include "core/phase.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_ring.hpp"

namespace pax::sim {

/// A half-open busy interval of one worker.
struct Interval {
  SimTime begin = 0;
  SimTime end = 0;
  WorkerId worker = 0;
};

/// Lifecycle of one phase run in simulated time.
struct RunRecord {
  RunId run = kNoRun;
  PhaseId phase = kNoPhase;
  std::string phase_name;
  SimTime created = 0;    ///< run creation (overlap setup or dispatch)
  SimTime opened = 0;     ///< program counter reached its node
  SimTime completed = kTimeNever;
  SimTime first_task = kTimeNever;  ///< first granule began executing
};

class SimResult {
 public:
  SimTime makespan = 0;
  std::uint32_t workers = 0;
  /// Executive shards (management lanes) the run modeled; 1 = serial.
  std::uint32_t shards = 1;

  std::uint64_t tasks_executed = 0;
  std::uint64_t granules_executed = 0;

  /// Worker-ticks spent computing granules.
  std::uint64_t compute_ticks = 0;
  /// Executive busy ticks (management), summed over all lanes.
  std::uint64_t exec_ticks = 0;
  /// Per-lane executive busy ticks (size = shards). The spread shows how
  /// much management serialization the sharding removed: one hot lane is
  /// the serial executive, an even spread is the sharded front-end.
  std::vector<std::uint64_t> shard_exec_ticks;
  /// Worker-ticks spent blocked on the executive (worker-stealing mode).
  std::uint64_t mgmt_wait_ticks = 0;

  /// Decentralized-dispatch bypasses (MachineConfig::steal): assignments a
  /// worker took itself while the serial executive was contended, and the
  /// worker-side ticks those pops cost (billed per CostModel::kSteal plus
  /// the pop's management charges; never executive busy-time).
  std::uint64_t steals = 0;
  std::uint64_t steal_ticks = 0;

  /// Latency from a worker presenting itself to receiving an assignment
  /// (queueing on the serial executive included) — the delay the paper
  /// worries about when successor splitting sits on the request path.
  Accumulator request_latency;

  /// Heap traffic of the simulation run (alloc_stats hooks; zero when the
  /// binary is not instrumented). The simulator is single-threaded, so this
  /// is the executive control plane's own allocator footprint.
  std::uint64_t heap_allocs = 0;
  std::uint64_t heap_bytes = 0;

  std::vector<RunRecord> runs;
  std::vector<Interval> compute_intervals;  ///< empty if recording disabled
  pax::MgmtLedger ledger;
  std::vector<std::string> diagnostics;
  /// Unified metrics snapshot (obs/metrics.hpp): the tick counters above
  /// under the same dotted names the threaded runtimes use, so benches and
  /// JSON reports read one uniform surface across sim and hardware runs.
  obs::MetricsSnapshot metrics;

  /// Overall processor utilization: compute / (P * makespan).
  [[nodiscard]] double utilization() const;

  /// The paper's computation : management ratio (~200 in PAX experience).
  [[nodiscard]] double mgmt_ratio() const;

  /// Busy-fraction timeline with `buckets` samples over [0, makespan).
  /// Requires recorded intervals.
  [[nodiscard]] std::vector<double> timeline(std::size_t buckets) const;

  /// Mean number of busy workers in [a, b). Requires recorded intervals.
  [[nodiscard]] double busy_workers_in(SimTime a, SimTime b) const;

  /// Utilization (0..1) in [a, b).
  [[nodiscard]] double window_utilization(SimTime a, SimTime b) const;

  [[nodiscard]] const RunRecord* run_record(RunId id) const;

  /// Latest completion time across runs of the given phase (kTimeNever if
  /// the phase never completed).
  [[nodiscard]] SimTime phase_completion(PhaseId phase) const;
};

/// Adapt a simulation result to the trace-record schema so the one exporter
/// (obs/trace_export.hpp) renders simulated and real timelines identically.
/// Scale: 1 simulated tick = 1000 ns, so ticks read as microseconds in the
/// Perfetto UI. Compute intervals become exec begin/end pairs on worker
/// tracks; run lifecycles become control-track run opened/completed events.
/// Requires recorded intervals (MachineConfig::record_intervals).
[[nodiscard]] std::vector<obs::TraceRecord> trace_records_of(const SimResult& res);

}  // namespace pax::sim
