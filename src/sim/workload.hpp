// workload.hpp — synthetic task-duration models for the simulator.
//
// The paper motivates dynamic scheduling with workloads whose granules
// "could not even be ascribed with definite execution times" and where
// "whether or not the computation was even to be carried out in a particular
// instance was a conditional part of the algorithm".
//
// Durations are sampled by *hashing* (seed, phase, granule) rather than by
// drawing from a sequential stream, so a granule's duration is independent
// of the schedule. Overlap-on and overlap-off runs therefore execute
// precisely the same work, making makespan comparisons exact.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace pax::sim {

enum class DurationModel : std::uint8_t {
  kFixed,        ///< every granule takes `mean` ticks (checkerboard model)
  kUniform,      ///< uniform in [mean - spread, mean + spread]
  kExponential,  ///< exponential with the given mean (indefinite times)
  kBimodal,      ///< mean with probability 1-p, mean+spread with p
};

[[nodiscard]] const char* to_string(DurationModel m);

/// Per-phase duration distribution.
struct PhaseWorkload {
  DurationModel model = DurationModel::kFixed;
  double mean = 100.0;     ///< ticks per granule
  double spread = 0.0;     ///< half-width (uniform) / long-mode extra (bimodal)
  double bimodal_p = 0.1;  ///< probability of the long mode
  /// Conditional execution: probability a granule's computation is skipped
  /// entirely (it still costs `skip_cost` ticks to evaluate the condition).
  double skip_probability = 0.0;
  SimTime skip_cost = 1;
};

class Workload {
 public:
  explicit Workload(std::uint64_t seed = 1) : seed_(seed) {}

  /// Set the distribution for a phase (default for unset phases: kFixed/100).
  void set_phase(PhaseId phase, PhaseWorkload w);

  [[nodiscard]] const PhaseWorkload& phase(PhaseId p) const;

  /// Duration of a single granule — pure function of (seed, phase, granule).
  [[nodiscard]] SimTime granule_duration(PhaseId phase, GranuleId g) const;

  /// Duration of a contiguous task.
  [[nodiscard]] SimTime task_duration(PhaseId phase, GranuleRange r) const;

  /// Expected total work of a phase with n granules (analytic, for sizing).
  [[nodiscard]] double expected_phase_work(PhaseId phase, GranuleId n) const;

  [[nodiscard]] std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
  std::vector<PhaseWorkload> per_phase_;
  PhaseWorkload default_{};
};

}  // namespace pax::sim
