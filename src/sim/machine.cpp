#include "sim/machine.hpp"

#include <algorithm>

#include "common/alloc_stats.hpp"
#include "common/check.hpp"

namespace pax::sim {

Machine::Machine(const PhaseProgram& program, ExecConfig exec_config,
                 CostModel costs, Workload workload, MachineConfig config)
    : program_(program),
      core_(program, exec_config, costs),
      costs_(costs),
      workload_(std::move(workload)),
      config_(config),
      placement_(exec_config.placement),
      lane_sync_(std::max(1u, config.shards)),
      lane_async_(std::max(1u, config.shards)),
      lane_busy_(std::max(1u, config.shards), 0),
      parked_(config.workers, 0) {
  PAX_CHECK_MSG(config_.workers > 0, "need at least one worker");
  PAX_CHECK_MSG(config_.shards >= 1,
                "shards must be at least 1 (0 is invalid)");
  result_.workers = config_.workers;
  result_.shards = config_.shards;
  result_.shard_exec_ticks.assign(config_.shards, 0);

  core_.set_event_sink(this);
}

void Machine::on_event(const ExecEvent& ev) {
  switch (ev.kind) {
    case ExecEvent::Kind::kRunCreated: {
      RunRecord rec;
      rec.run = ev.run;
      rec.phase = ev.phase;
      rec.phase_name =
          ev.phase == kNoPhase ? "<anon>" : program_.phase(ev.phase).name;
      rec.created = now_;
      rec.opened = now_;
      result_.runs.push_back(rec);
      break;
    }
    case ExecEvent::Kind::kRunOpened:
      if (ev.run < result_.runs.size()) result_.runs[ev.run].opened = now_;
      break;
    case ExecEvent::Kind::kRunCompleted:
      if (ev.run < result_.runs.size()) result_.runs[ev.run].completed = now_;
      break;
    default:
      break;
  }
}

void Machine::push_event(Event e) {
  e.seq = seq_++;
  events_.push(std::move(e));
}

bool Machine::all_lanes_idle() const {
  for (std::uint32_t l = 0; l < config_.shards; ++l)
    if (lane_busy_[l] || !lane_sync_[l].empty() || !lane_async_[l].empty())
      return false;
  return true;
}

void Machine::enqueue_job(Job j, bool front) {
  if (j.kind == JobKind::kRequest) j.enqueued_at = now_;
  // Worker-initiated jobs are laned by their home shard; program start and
  // idle work stay on lane 0 (the control plane).
  j.lane = (j.kind == JobKind::kRequest || j.kind == JobKind::kCompletion)
               ? lane_of(j.worker)
               : 0;
  const bool async =
      placement_ == ExecPlacement::kDedicated && j.kind == JobKind::kCompletion;
  auto& q = async ? lane_async_[j.lane] : lane_sync_[j.lane];
  if (front) {
    q.push_front(j);
  } else {
    q.push_back(j);
  }
}

void Machine::start_job(Job j) {
  PAX_CHECK(!lane_busy_[j.lane]);
  lane_busy_[j.lane] = 1;

  Event done;
  done.kind = Event::Kind::kExecDone;
  done.worker = j.worker;
  done.ticket = j.ticket;
  done.job = j;

  switch (j.kind) {
    case JobKind::kStart:
      core_.start();
      break;
    case JobKind::kRequest:
      done.assignment = core_.request_work(j.worker);
      break;
    case JobKind::kCompletion: {
      const CompletionResult res = core_.complete(j.ticket);
      done.new_work = res.new_work;
      // Sharded executive: an enablement-producing completion pays the
      // cross-shard publish step (the coalesced flush's per-shard slice).
      if (config_.shards > 1 && res.new_work)
        core_.ledger().charge(MgmtOp::kShardFlush, costs_);
      break;
    }
    case JobKind::kIdleWork:
      PAX_CHECK_MSG(false, "idle work is started inline by pump_executive");
      break;
  }

  const SimTime delta = core_.ledger().drain_pending();
  result_.exec_ticks += delta;
  result_.shard_exec_ticks[j.lane] += delta;
  if (placement_ == ExecPlacement::kWorkerStealing &&
      (j.kind == JobKind::kRequest || j.kind == JobKind::kCompletion)) {
    result_.mgmt_wait_ticks += delta;
  }
  done.t = now_ + delta;
  push_event(std::move(done));
}

void Machine::pump_executive() {
  // Start one job on every free lane: jobs on different lanes (different
  // home shards) proceed concurrently; jobs on the same lane serialize —
  // the per-shard lock of the sharded front-end. With one shard this is the
  // classic serial executive.
  for (std::uint32_t l = 0; l < config_.shards; ++l) {
    if (lane_busy_[l]) continue;
    if (!lane_sync_[l].empty()) {
      Job j = lane_sync_[l].front();
      lane_sync_[l].pop_front();
      start_job(j);
      continue;
    }
    if (!lane_async_[l].empty()) {
      Job j = lane_async_[l].front();
      lane_async_[l].pop_front();
      start_job(j);
      continue;
    }
  }
  // Executive idle time: presplitting / deferred successor-splitting tasks,
  // on the control plane (lane 0) once every lane is quiet. On the worker-
  // stealing testbed this time is donated by a parked worker; with a
  // dedicated management processor it is always available.
  if (!all_lanes_idle()) return;
  const bool may_work_ahead =
      placement_ == ExecPlacement::kDedicated || parked_count_ > 0;
  if (!may_work_ahead) return;
  if (!core_.idle_work()) return;
  lane_busy_[0] = 1;
  const SimTime delta = core_.ledger().drain_pending();
  result_.exec_ticks += delta;
  result_.shard_exec_ticks[0] += delta;
  Event done;
  done.kind = Event::Kind::kExecDone;
  done.job = Job{JobKind::kIdleWork, 0, kNoTicket, 0, 0};
  done.t = now_ + delta;
  push_event(std::move(done));
}

void Machine::park(WorkerId w) {
  if (parked_[w]) return;
  parked_[w] = 1;
  ++parked_count_;
}

void Machine::unpark_all() {
  // Wake only as many parked workers as there is visible work; waking the
  // whole pool for one descriptor would swamp the serial executive with
  // fruitless request processing.
  std::size_t wake = std::min<std::size_t>(parked_count_, core_.waiting_size());
  if (wake == 0) return;
  for (WorkerId w = 0; w < parked_.size() && wake > 0; ++w) {
    if (!parked_[w]) continue;
    parked_[w] = 0;
    --parked_count_;
    --wake;
    enqueue_job({JobKind::kRequest, w, kNoTicket});
  }
}

void Machine::begin_assignment(WorkerId w, const Assignment& a, SimTime delay) {
  const SimTime start = now_ + delay;
  const SimTime dur =
      workload_.task_duration(a.phase, a.range) + config_.task_overhead;
  ++result_.tasks_executed;
  result_.granules_executed += a.range.size();
  result_.compute_ticks += dur;
  if (config_.record_intervals)
    result_.compute_intervals.push_back({start, start + dur, w});
  if (a.run < result_.runs.size() && result_.runs[a.run].first_task == kTimeNever)
    result_.runs[a.run].first_task = start;
  Event done;
  done.kind = Event::Kind::kTaskDone;
  done.worker = w;
  done.ticket = a.ticket;
  done.t = start + dur;
  push_event(std::move(done));
}

bool Machine::try_steal(WorkerId w) {
  if (!config_.steal || core_.finished() || !core_.work_available()) return false;
  // Uncontended home lane: the normal request path costs nothing extra, and
  // keeping it preserves the donated-idle-time machinery.
  const std::uint32_t l = lane_of(w);
  if (!lane_busy_[l] && lane_sync_[l].empty()) return false;
  std::optional<Assignment> a = core_.request_work(w);
  // The guard above saw a non-empty waiting queue and the sim is
  // single-threaded, so the pop cannot come back empty.
  PAX_CHECK_MSG(a.has_value(), "steal pop raced empty in a serial simulation");
  core_.ledger().charge(MgmtOp::kSteal, costs_);
  // The pop's management charges are paid by the stealing worker itself —
  // decentralized dispatch never occupies the serial executive.
  const SimTime delta = core_.ledger().drain_pending();
  ++result_.steals;
  result_.steal_ticks += delta;
  result_.request_latency.add(static_cast<double>(delta));
  begin_assignment(w, *a, delta);
  return true;
}

void Machine::handle_exec_done(const Event& e) {
  lane_busy_[e.job.lane] = 0;
  switch (e.job.kind) {
    case JobKind::kStart:
      break;
    case JobKind::kRequest: {
      const WorkerId w = e.worker;
      if (e.assignment.has_value()) {
        result_.request_latency.add(static_cast<double>(now_ - e.job.enqueued_at));
        begin_assignment(w, *e.assignment, 0);
      } else if (!core_.finished()) {
        park(w);
      } else {
        park(w);  // program done; worker retires
      }
      break;
    }
    case JobKind::kCompletion:
      if (placement_ == ExecPlacement::kWorkerStealing) {
        // The completing worker regains control only now; it presents
        // itself for more work — directly (steal) when the executive is
        // backed up, through the serial request lane otherwise.
        if (!try_steal(e.worker))
          enqueue_job({JobKind::kRequest, e.worker, kNoTicket});
      }
      break;
    case JobKind::kIdleWork:
      break;
  }
  if (core_.work_available() && parked_count_ > 0) unpark_all();
}

void Machine::handle_task_done(const Event& e) {
  enqueue_job({JobKind::kCompletion, e.worker, e.ticket});
  if (placement_ == ExecPlacement::kDedicated) {
    // Completion is processed asynchronously; the worker asks for new work
    // right away (its request is serviced in the priority lane, or taken
    // directly when the executive is contended and stealing is on).
    if (!try_steal(e.worker)) enqueue_job({JobKind::kRequest, e.worker, kNoTicket});
  }
}

SimResult Machine::run() {
  const AllocTotals heap0 = alloc_stats::thread_totals();
  enqueue_job({JobKind::kStart, 0, kNoTicket});
  for (WorkerId w = 0; w < config_.workers; ++w) park(w);
  pump_executive();

  while (!events_.empty()) {
    const Event e = events_.top();
    events_.pop();
    PAX_CHECK_MSG(e.t >= now_, "time went backwards");
    now_ = e.t;
    PAX_CHECK_MSG(now_ <= config_.max_time, "simulation exceeded max_time");
    switch (e.kind) {
      case Event::Kind::kExecDone:
        handle_exec_done(e);
        break;
      case Event::Kind::kTaskDone:
        handle_task_done(e);
        break;
    }
    pump_executive();
  }

  PAX_CHECK_MSG(core_.finished(), "simulation deadlocked before program end");
  PAX_CHECK_MSG(!core_.work_available(), "work left in queue at program end");
  result_.makespan = now_;
  const AllocTotals heap =
      alloc_stats::delta(heap0, alloc_stats::thread_totals());
  result_.heap_allocs = heap.allocs;
  result_.heap_bytes = heap.bytes;
  result_.ledger = core_.ledger();
  result_.diagnostics = core_.diagnostics();
  // Unified metrics surface (single-threaded run: one-shot pushes, no
  // worker cells). Same dotted names as the threaded runtimes where the
  // quantity corresponds; tick-valued entries say so in the suffix.
  result_.metrics.push("worker.tasks", result_.tasks_executed);
  result_.metrics.push("worker.granules", result_.granules_executed);
  result_.metrics.push("worker.busy_ticks", result_.compute_ticks);
  result_.metrics.push("worker.steals", result_.steals);
  result_.metrics.push("exec.busy_ticks", result_.exec_ticks);
  result_.metrics.push("exec.wait_ticks", result_.mgmt_wait_ticks);
  result_.metrics.push("run.makespan_ticks", result_.makespan);
  result_.metrics.push("shard.count", result_.shards);
  result_.metrics.push("heap.allocs", result_.heap_allocs);
  result_.metrics.push("heap.bytes", result_.heap_bytes);
  return std::move(result_);
}

SimResult simulate(const PhaseProgram& program, ExecConfig exec_config,
                   CostModel costs, Workload workload, MachineConfig config) {
  Machine m(program, exec_config, costs, std::move(workload), config);
  return m.run();
}

}  // namespace pax::sim
