// run_queue.hpp — per-worker bounded local run-queue of Assignments.
//
// The decentralized half of the dispatch layer (DESIGN.md §8): every worker
// owns one fixed-capacity ring. The owner pushes refilled assignments at the
// back and pops from the back (LIFO — it executes the most recently refilled
// work, which is also the work the refill ordered last; the dispatcher
// pushes each refill batch in reverse so the owner's pop order equals the
// executive's handout order). Thieves take FIFO ranges from the front — the
// assignments the owner would reach last — under the same light per-queue
// mutex. Occupancy is mirrored into an atomic so the steal picker can size
// up victims without touching any lock.
//
// Concurrency discipline (DESIGN.md §11): the ring and its geometry are
// PAX_GUARDED_BY the queue mutex (rank: queue — normally held alone; the
// one sanctioned nesting is the pool finalize path reading peak() under a
// job mutex, which is why queue ranks above job). The occupancy mirror is
// the one field read outside it.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

#include "common/check.hpp"
#include "common/lock_rank.hpp"
#include "common/thread_annotations.hpp"
#include "core/granule.hpp"

namespace pax::sched {

class LocalRunQueue {
 public:
  explicit LocalRunQueue(std::size_t capacity) : ring_(capacity) {
    PAX_CHECK_MSG(capacity > 0, "local run-queue needs capacity >= 1");
  }

  LocalRunQueue(const LocalRunQueue&) = delete;
  LocalRunQueue& operator=(const LocalRunQueue&) = delete;

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Peer-visible occupancy. May be momentarily stale; exact size is only
  /// observable under the queue lock and nobody needs it.
  [[nodiscard]] std::size_t size() const {
    return occupancy_.load(std::memory_order_relaxed);
  }

  /// Owner: append at the back. False when the ring is full (the dispatcher
  /// never over-refills, so a failed push is a caller bug in practice).
  bool push(const Assignment& a) PAX_EXCLUDES(mu_) {
    RankedLock lock(mu_);
    if (count_ == capacity_) return false;
    ring_[(head_ + count_) % capacity_] = a;
    ++count_;
    if (count_ > peak_) peak_ = count_;
    occupancy_.store(count_, std::memory_order_relaxed);
    return true;
  }

  /// Owner: append `buf` back-to-front under ONE lock acquisition (the
  /// dispatcher's refill runs inside the executive critical section, so
  /// per-assignment lock round-trips there would lengthen exactly the
  /// serial section the dispatch layer exists to shrink). All-or-nothing:
  /// false when the ring lacks room for the whole buffer.
  bool push_reversed(const std::vector<Assignment>& buf) PAX_EXCLUDES(mu_) {
    RankedLock lock(mu_);
    if (buf.size() > capacity_ - count_) return false;
    for (auto it = buf.rbegin(); it != buf.rend(); ++it) {
      ring_[(head_ + count_) % capacity_] = *it;
      ++count_;
    }
    if (count_ > peak_) peak_ = count_;
    occupancy_.store(count_, std::memory_order_relaxed);
    return true;
  }

  /// Owner: pop the most recent assignment (LIFO end).
  bool pop(Assignment& out) PAX_EXCLUDES(mu_) {
    RankedLock lock(mu_);
    if (count_ == 0) return false;
    --count_;
    out = ring_[(head_ + count_) % capacity_];
    occupancy_.store(count_, std::memory_order_relaxed);
    return true;
  }

  /// Thief: take up to `max_n` assignments from the front (FIFO end), capped
  /// at half the current occupancy rounded up, appended to `out`. Returns
  /// how many were taken (0 when the queue raced empty).
  std::size_t steal(std::size_t max_n, std::vector<Assignment>& out)
      PAX_EXCLUDES(mu_) {
    RankedLock lock(mu_);
    const std::size_t take = std::min(max_n, (count_ + 1) / 2);
    for (std::size_t i = 0; i < take; ++i) {
      out.push_back(ring_[head_]);
      head_ = (head_ + 1) % capacity_;
      --count_;
    }
    occupancy_.store(count_, std::memory_order_relaxed);
    return take;
  }

  /// High-water mark of the occupancy (for RtResult / PoolStats reporting).
  [[nodiscard]] std::size_t peak() const PAX_EXCLUDES(mu_) {
    RankedLock lock(mu_);
    return peak_;
  }

 private:
  mutable RankedMutex<LockRank::kQueue> mu_;
  std::vector<Assignment> ring_ PAX_GUARDED_BY(mu_);
  std::size_t head_ PAX_GUARDED_BY(mu_) = 0;  ///< front (FIFO/steal) index
  std::size_t count_ PAX_GUARDED_BY(mu_) = 0;
  std::size_t peak_ PAX_GUARDED_BY(mu_) = 0;
  /// Mirror of count_, written under mu_ on every mutation, read lock-free
  /// by the steal picker and sleep predicates. Relaxed on both sides: the
  /// value is a sizing heuristic — a stale read mispicks a victim or spins
  /// one extra round, and every correctness-bearing read of the ring itself
  /// happens under mu_, which provides the ordering.
  std::atomic<std::size_t> occupancy_{0};
  /// ring_.size(), readable without the lock (never resized after
  /// construction). Kept separate so capacity() needs no capability and the
  /// guarded ring_ is only touched inside critical sections.
  const std::size_t capacity_ = ring_.size();
};

}  // namespace pax::sched
