// run_queue.hpp — per-worker bounded local run-queue of Assignments.
//
// The decentralized half of the dispatch layer (DESIGN.md §8): every worker
// owns one fixed-capacity ring. The owner pushes refilled assignments at the
// back and pops from the back (LIFO — it executes the most recently refilled
// work, which is also the work the refill ordered last; the dispatcher
// pushes each refill batch in reverse so the owner's pop order equals the
// executive's handout order). Thieves take FIFO ranges from the front — the
// assignments the owner would reach last — under the same light per-queue
// mutex. Occupancy is mirrored into an atomic so the steal picker can size
// up victims without touching any lock.
#pragma once

#include <atomic>
#include <cstddef>
#include <mutex>
#include <vector>

#include "common/check.hpp"
#include "core/granule.hpp"

namespace pax::sched {

class LocalRunQueue {
 public:
  explicit LocalRunQueue(std::size_t capacity) : ring_(capacity) {
    PAX_CHECK_MSG(capacity > 0, "local run-queue needs capacity >= 1");
  }

  LocalRunQueue(const LocalRunQueue&) = delete;
  LocalRunQueue& operator=(const LocalRunQueue&) = delete;

  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }

  /// Peer-visible occupancy. May be momentarily stale; exact size is only
  /// observable under the queue lock and nobody needs it.
  [[nodiscard]] std::size_t size() const {
    return occupancy_.load(std::memory_order_relaxed);
  }

  /// Owner: append at the back. False when the ring is full (the dispatcher
  /// never over-refills, so a failed push is a caller bug in practice).
  bool push(const Assignment& a) {
    std::scoped_lock lock(mu_);
    if (count_ == ring_.size()) return false;
    ring_[(head_ + count_) % ring_.size()] = a;
    ++count_;
    if (count_ > peak_) peak_ = count_;
    occupancy_.store(count_, std::memory_order_relaxed);
    return true;
  }

  /// Owner: append `buf` back-to-front under ONE lock acquisition (the
  /// dispatcher's refill runs inside the executive critical section, so
  /// per-assignment lock round-trips there would lengthen exactly the
  /// serial section the dispatch layer exists to shrink). All-or-nothing:
  /// false when the ring lacks room for the whole buffer.
  bool push_reversed(const std::vector<Assignment>& buf) {
    std::scoped_lock lock(mu_);
    if (buf.size() > ring_.size() - count_) return false;
    for (auto it = buf.rbegin(); it != buf.rend(); ++it) {
      ring_[(head_ + count_) % ring_.size()] = *it;
      ++count_;
    }
    if (count_ > peak_) peak_ = count_;
    occupancy_.store(count_, std::memory_order_relaxed);
    return true;
  }

  /// Owner: pop the most recent assignment (LIFO end).
  bool pop(Assignment& out) {
    std::scoped_lock lock(mu_);
    if (count_ == 0) return false;
    --count_;
    out = ring_[(head_ + count_) % ring_.size()];
    occupancy_.store(count_, std::memory_order_relaxed);
    return true;
  }

  /// Thief: take up to `max_n` assignments from the front (FIFO end), capped
  /// at half the current occupancy rounded up, appended to `out`. Returns
  /// how many were taken (0 when the queue raced empty).
  std::size_t steal(std::size_t max_n, std::vector<Assignment>& out) {
    std::scoped_lock lock(mu_);
    const std::size_t take = std::min(max_n, (count_ + 1) / 2);
    for (std::size_t i = 0; i < take; ++i) {
      out.push_back(ring_[head_]);
      head_ = (head_ + 1) % ring_.size();
      --count_;
    }
    occupancy_.store(count_, std::memory_order_relaxed);
    return take;
  }

  /// High-water mark of the occupancy (for RtResult / PoolStats reporting).
  [[nodiscard]] std::size_t peak() const {
    std::scoped_lock lock(mu_);
    return peak_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<Assignment> ring_;
  std::size_t head_ = 0;   ///< index of the front (FIFO / steal) element
  std::size_t count_ = 0;
  std::size_t peak_ = 0;
  std::atomic<std::size_t> occupancy_{0};
};

}  // namespace pax::sched
