#include "sched/dispatcher.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace pax::sched {

Dispatcher::Dispatcher(DispatchConfig config)
    : config_(config),
      capacity_(config.effective_capacity()),
      scratch_(config.workers),
      faults_(config.workers),
      exec_cells_(std::make_unique<ExecCell[]>(config.workers)),
      window_size_(std::max<std::uint64_t>(16, 4ull * config.workers)) {
  PAX_CHECK_MSG(config_.workers > 0, "need at least one worker");
  PAX_CHECK_MSG(config_.batch > 0, "batch must be at least 1");
  PAX_CHECK_MSG(capacity_ >= config_.batch,
                "local queue capacity below the retire batch");
  queues_.reserve(config_.workers);
  for (std::uint32_t w = 0; w < config_.workers; ++w) {
    queues_.push_back(std::make_unique<LocalRunQueue>(capacity_));
    scratch_[w].reserve(capacity_);
    // drain_local bounds done.size() + faults.size() by capacity_, so this
    // reserve makes the barrier's append allocation-free forever.
    faults_[w].reserve(capacity_);
  }
}

RefillOutcome Dispatcher::refill(ExecutiveCore& core, WorkerId w,
                                 std::vector<Ticket>& done) {
  RefillOutcome out;
  if (!done.empty()) {
    out.completion = core.complete_batch(done);
    done.clear();
  }

  if (config_.adaptive_grain) {
    const GranuleId base = core.configured_grain();
    const auto shift = grain_shift_.load(std::memory_order_relaxed);
    core.set_grain_limit(std::max<GranuleId>(1, base >> shift));
  }

  // Thieves only shrink the queue, so a room computed from a momentary size
  // can never over-fill; only the owner pushes.
  const std::size_t room = capacity_ - std::min(capacity_, queues_[w]->size());
  if (room == 0) return out;
  std::vector<Assignment>& buf = scratch_[w];
  buf.clear();
  core.request_work_batch(w, room, buf);
  push_reversed(w, buf);
  out.refilled = buf.size();
  if (out.refilled > 0) {
    note_event(/*was_steal=*/false);
    trace_event(w, obs::TraceKind::kRefill,
                static_cast<std::uint32_t>(out.refilled));
  }
  return out;
}

RefillOutcome Dispatcher::refill(ShardedExecutive& ex, WorkerId w,
                                 std::vector<Ticket>& done) {
  RefillOutcome out;
  if (config_.adaptive_grain) {
    // configured_grain() is constant after construction; the annotated
    // accessor keeps the hot path off core_unsynchronized(), whose contract
    // (quiescence) this call site cannot meet.
    const GranuleId base = ex.configured_grain();
    const auto shift = grain_shift_.load(std::memory_order_relaxed);
    ex.set_grain_limit(std::max<GranuleId>(1, base >> shift));
  }

  const std::size_t room = capacity_ - std::min(capacity_, queues_[w]->size());
  if (room == 0 && done.empty()) return out;
  std::vector<Assignment>& buf = scratch_[w];
  buf.clear();
  const ShardAcquire ar = ex.acquire(w, room, done, buf);
  push_reversed(w, buf);
  out.refilled = ar.taken;
  out.completion.new_work = ar.new_work;
  out.completion.program_finished = ar.program_finished;
  if (out.refilled > 0) {
    note_event(/*was_steal=*/false);
    trace_event(w, obs::TraceKind::kRefill,
                static_cast<std::uint32_t>(out.refilled));
  }
  return out;
}

void Dispatcher::push_reversed(WorkerId w, const std::vector<Assignment>& buf) {
  // Push in reverse so the owner's LIFO pop order equals the order the
  // assignments arrived in (the executive's elevated-first handout order on
  // a refill; the victim's front-to-back order on a steal). One bulk lock
  // acquisition: refill callers hold the executive mutex.
  if (buf.empty()) return;
  const bool ok = queues_[w]->push_reversed(buf);
  PAX_CHECK_MSG(ok, "local run-queue overflow");
}

void Dispatcher::drain_local(const rt::BodyTable& bodies, WorkerId w,
                             std::vector<Ticket>& done, BodyLoopStats& stats) {
  Assignment a;
  std::vector<GranuleFault>& faults = faults_[w];
  while (done.size() + faults.size() < capacity_ && queues_[w]->pop(a)) {
    const auto t0 = std::chrono::steady_clock::now();
    // Watchdog cell: begin stamp before the body, cleared after. Relaxed —
    // the watchdog's sample is a heuristic staleness probe, and the cell is
    // this worker's own cache line.
    exec_cells_[w].begin_ns.store(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                t0.time_since_epoch())
                .count()),
        std::memory_order_relaxed);
    bool ok = true;
    // The exception barrier (DESIGN.md §15). Only the body call is inside
    // the try: queue/stats manipulation must never be attributed to a user
    // fault. The no-throw path through a try block is free (table-driven
    // unwinding); the catch arms are the cold path and may do what they
    // like except allocate — record_fault appends into a preallocated
    // buffer and copies a bounded message.
    try {
      bodies.of(a.phase)(a.range, w);
    } catch (const std::exception& e) {
      ok = false;
      record_fault(w, a, e.what());
    } catch (...) {
      ok = false;
      record_fault(w, a, "unknown exception in phase body");
    }
    const auto t1 = std::chrono::steady_clock::now();
    exec_cells_[w].begin_ns.store(0, std::memory_order_relaxed);
    stats.busy += std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0);
    if (ok) {
      stats.granules += a.range.size();
      ++stats.tasks;
      done.push_back(a.ticket);
    } else {
      ++stats.faulted;
    }
    if (config_.trace != nullptr) {
      // Both records stamp from t0/t1 — the same reads that feed stats.busy
      // — and both are emitted after the body, so tracing perturbs neither
      // the busy measure nor the body itself. Exact consequence: with zero
      // ring drops, summing (end - begin) over a worker's ring reproduces
      // that worker's busy nanoseconds bit for bit (bench_t11 checks this).
      obs::TraceRecord r;
      r.job = config_.trace_job;
      r.range = a.range;
      r.phase = a.phase;
      r.aux = static_cast<std::uint32_t>(a.range.size());
      r.worker = static_cast<std::uint16_t>(w);
      r.ts_ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              t0.time_since_epoch())
              .count());
      r.kind = obs::TraceKind::kExecBegin;
      obs::TraceRing& ring = config_.trace->ring(w);
      ring.emit(r);
      r.ts_ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              t1.time_since_epoch())
              .count());
      r.kind = obs::TraceKind::kExecEnd;
      ring.emit(r);
    }
  }
}

std::size_t Dispatcher::try_steal(WorkerId w) {
  if (!config_.steal || config_.workers < 2) return 0;
  WorkerId victim = w;
  std::size_t most = 0;
  for (WorkerId peer = 0; peer < config_.workers; ++peer) {
    if (peer == w) continue;
    const std::size_t n = queues_[peer]->size();
    if (n > most) {
      most = n;
      victim = peer;
    }
  }
  if (most == 0) {
    trace_event(w, obs::TraceKind::kStealAttempt, 0);
    return 0;
  }

  const std::size_t room = capacity_ - std::min(capacity_, queues_[w]->size());
  if (room == 0) return 0;
  std::vector<Assignment>& buf = scratch_[w];
  buf.clear();
  const std::size_t got = queues_[victim]->steal(room, buf);
  if (got == 0) {
    trace_event(w, obs::TraceKind::kStealAttempt, 0);  // victim raced dry
    return 0;
  }
  push_reversed(w, buf);
  note_event(/*was_steal=*/true);
  trace_event(w, obs::TraceKind::kStealSuccess, static_cast<std::uint32_t>(got));
  return got;
}

void Dispatcher::record_fault(WorkerId w, const Assignment& a,
                              const char* what) {
  GranuleFault f;
  f.ticket = a.ticket;
  f.phase = a.phase;
  f.range = a.range;
  f.worker = w;
  f.set_what(what);
  faults_[w].push_back(f);  // reserved to capacity_; never reallocates
  trace_event(w, obs::TraceKind::kGranuleFault,
              static_cast<std::uint32_t>(a.range.size()));
}

void Dispatcher::trace_event(WorkerId w, obs::TraceKind kind, std::uint32_t aux) {
  if (config_.trace == nullptr) return;
  obs::TraceRecord r;
  r.ts_ns = obs::trace_now_ns();
  r.job = config_.trace_job;
  r.aux = aux;
  r.worker = static_cast<std::uint16_t>(w);
  r.kind = kind;
  config_.trace->ring(w).emit(r);
}

bool Dispatcher::any_local_work() const {
  for (const auto& q : queues_)
    if (q->size() > 0) return true;
  return false;
}

bool Dispatcher::stealable_by(WorkerId w) const {
  for (WorkerId peer = 0; peer < config_.workers; ++peer)
    if (peer != w && queues_[peer]->size() > 0) return true;
  return false;
}

std::size_t Dispatcher::peak_occupancy() const {
  std::size_t peak = 0;
  for (const auto& q : queues_) peak = std::max(peak, q->peak());
  return peak;
}

void Dispatcher::note_event(bool was_steal) {
  if (!config_.adaptive_grain) return;
  // Relaxed throughout: the window counters synchronize with nothing — they
  // feed a grain heuristic, and a racy window reset only blurs one window's
  // edges (two workers may both observe the rollover; the double-reset
  // drops at most one window of events, never corrupts the shift).
  if (was_steal) window_steals_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t ev = window_events_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (ev < window_size_) return;
  window_events_.store(0, std::memory_order_relaxed);
  const std::uint64_t steals = window_steals_.exchange(0, std::memory_order_relaxed);
  std::uint32_t shift = grain_shift_.load(std::memory_order_relaxed);
  if (steals * 4 >= window_size_) {
    if (shift < kMaxGrainShift) ++shift;  // rundown: carve finer
  } else if (shift > 0) {
    // Below the raise threshold: restore coarseness. Decaying on any
    // sub-threshold window (not only steal-free ones) keeps natural
    // scheduling jitter — a trickle of steals — from latching a halved
    // grain through a long steady-state phase.
    --shift;
  }
  grain_shift_.store(shift, std::memory_order_relaxed);
}

}  // namespace pax::sched
