// dispatcher.hpp — the decentralized dispatch layer shared by both runtimes.
//
// PR 1 batched the executive handoff and PR 2 multiplexed jobs over it, but
// dispatch itself stayed centralized: every assignment and retirement funnels
// through one executive mutex, so during rundown the tail workers contend on
// exactly the serial resource the paper warns about. This layer pushes
// dispatch out of the executive into per-worker structures and demotes the
// executive to an enablement oracle:
//
//   * each worker owns a bounded LocalRunQueue (run_queue.hpp);
//   * the Dispatcher is the only component that touches the ExecutiveCore —
//     refill() retires the worker's finished tickets and refills its local
//     queue in one executive critical section (the caller holds whatever
//     lock guards the core, exactly as with the old retire_and_refill);
//   * when a worker's local queue and the executive's waiting queue are both
//     dry — the rundown signal — try_steal() takes a FIFO range from the
//     most-loaded peer queue without touching the executive at all;
//   * a steal-rate signal adaptively halves the effective grain (via
//     ExecutiveCore::set_grain_limit, i.e. the executive's existing split
//     machinery carves finer pieces) so rundown tails stay fine-grained
//     while steady state stays coarse.
//
// With stealing enabled the local queue lets a worker over-refill beyond the
// retire batch (capacity defaults to 2x batch): fat refills are safe because
// peers steal the excess back during the tail — the over-decomposition-
// absorbed-by-local-scheduling move of the virtual-processors SPMD line.
// With stealing disabled the capacity defaults to exactly `batch`, which
// reproduces the PR 1 batched protocol on the same machinery (how bench_t8
// baselines the layer).
//
// rt::ThreadedRuntime drives one dispatcher for its one core; each
// pool::PoolRuntime job owns one dispatcher for its own core, so stealing
// stays within a job (tickets are per-core) while the pool's cross-job
// rotation handles the rest. The worker-side body-execution half of the old
// runtime/worker_loop.hpp (BodyLoopStats, execute/drain) lives here too:
// the dispatcher is its new home.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/executive.hpp"
#include "core/sharded_executive.hpp"
#include "runtime/body_table.hpp"
#include "sched/run_queue.hpp"

namespace pax::sched {

struct DispatchConfig {
  std::uint32_t workers = 4;
  /// Finished tickets retired per executive critical section (and the refill
  /// floor — see effective_capacity()).
  std::uint32_t batch = 1;
  /// Per-worker local run-queue slots. 0 = auto: 2x batch with stealing
  /// (over-refill absorbed by steals), exactly batch without (the PR 1
  /// batched protocol).
  std::uint32_t queue_capacity = 0;
  /// Rundown work stealing between peer local queues.
  bool steal = true;
  /// Steal-rate signal halves the effective grain during rundown.
  bool adaptive_grain = true;
  /// Optional trace buffer (non-owning; null = off). drain_local stamps its
  /// exec begin/end records from the SAME two clock reads that feed
  /// BodyLoopStats::busy — tracing adds no clock call to the body loop and
  /// the trace-vs-result busy sums match exactly (DESIGN.md §12).
  obs::TraceBuffer* trace = nullptr;
  /// Job lane tag on emitted records (the pool sets its job id here).
  std::uint64_t trace_job = obs::kNoTraceJob;

  [[nodiscard]] std::size_t effective_capacity() const {
    if (queue_capacity != 0) return queue_capacity;
    return steal ? std::size_t{2} * batch : std::size_t{batch};
  }
};

/// Per-worker (or per-job) execution accounting accumulated by drain_local.
struct BodyLoopStats {
  std::chrono::nanoseconds busy{0};  ///< wall time inside phase bodies
  std::uint64_t tasks = 0;
  std::uint64_t granules = 0;  ///< granules completed (faulted ones excluded)
  std::uint64_t faulted = 0;   ///< bodies that threw (caught by the barrier)

  BodyLoopStats& operator+=(const BodyLoopStats& o) {
    busy += o.busy;
    tasks += o.tasks;
    granules += o.granules;
    faulted += o.faulted;
    return *this;
  }
};

/// What one refill() critical section did.
struct RefillOutcome {
  CompletionResult completion{};  ///< of the retire (ORed ticket outcomes)
  std::size_t refilled = 0;       ///< assignments pulled into the local queue
};

class Dispatcher {
 public:
  explicit Dispatcher(DispatchConfig config);

  [[nodiscard]] std::uint32_t workers() const { return config_.workers; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] const DispatchConfig& config() const { return config_; }

  /// One executive critical section: retire `done` (cleared on return), then
  /// refill worker `w`'s local queue up to capacity, applying the adaptive
  /// grain limit first. The caller must hold whatever lock guards `core`.
  RefillOutcome refill(ExecutiveCore& core, WorkerId w, std::vector<Ticket>& done);

  /// Sharded refill: deposit `done` and pull from the sharded executive's
  /// home/sibling shard buffers (control-plane sweep only as a fallback —
  /// see ShardedExecutive::acquire). Under the default lock-free engine
  /// (DESIGN.md §13) the warm case of this call takes no mutex anywhere:
  /// ring pops and pushes only. Any locking that does happen is internal
  /// to `ex`; the caller holds nothing. The adaptive grain limit is
  /// published through the core's atomic before the pull, which is exactly
  /// why the limit had to stop being a plain field: this store races with
  /// a sweeping peer's request path.
  RefillOutcome refill(ShardedExecutive& ex, WorkerId w, std::vector<Ticket>& done);

  /// Owner pop from `w`'s local queue (LIFO end; executive handout order).
  bool pop_local(WorkerId w, Assignment& out) {
    return queues_[w]->pop(out);
  }

  /// Execute everything currently in `w`'s local queue — outside any
  /// executive lock — timing each body and queueing tickets on `done` for
  /// the next refill's retire. Stops early once `done` reaches the queue
  /// capacity so retirement (and the enablements it fires) is never deferred
  /// past one queue's worth of work.
  ///
  /// Exception barrier (DESIGN.md §15): a throwing phase body does not kill
  /// the process. The barrier catches, diverts the ticket into `w`'s fault
  /// buffer (never onto `done` — a faulted ticket must go through
  /// ExecutiveCore::fail, not complete), and keeps draining. The no-fault
  /// path pays only the untaken try: no allocation, no extra clock read.
  void drain_local(const rt::BodyTable& bodies, WorkerId w,
                   std::vector<Ticket>& done, BodyLoopStats& stats);

  /// `w`'s pending fault records (filled by drain_local's barrier).
  /// Owner-only, like the local queue: the worker reports them via
  /// ExecutiveCore::fail / ShardedExecutive::fail_batch and clears. The
  /// buffer is preallocated to queue capacity, and drain_local bounds
  /// done+faults by that capacity, so appending never reallocates.
  [[nodiscard]] std::vector<GranuleFault>& fault_buffer(WorkerId w) {
    return faults_[w];
  }

  /// Steady-clock ns at which worker `w` entered the phase body it is
  /// currently executing, or 0 when it is not inside one. Relaxed sampling
  /// cell for the stuck-granule watchdog; each worker owns its own cache
  /// line, so the two stores per task cost the body loop nothing.
  [[nodiscard]] std::uint64_t exec_begin_ns(WorkerId w) const {
    return exec_cells_[w].begin_ns.load(std::memory_order_relaxed);
  }

  /// Rundown stealing: move a FIFO range from the most-loaded peer queue
  /// into `w`'s queue. Returns the number of assignments stolen (0 = every
  /// peer was dry or raced dry). Never touches the executive.
  std::size_t try_steal(WorkerId w);

  [[nodiscard]] std::size_t occupancy(WorkerId w) const {
    return queues_[w]->size();
  }
  /// Any queue non-empty (job-level probe for the pool's rotation pick).
  [[nodiscard]] bool any_local_work() const;
  /// Any queue other than `w`'s non-empty (sleep predicate for stealers).
  [[nodiscard]] bool stealable_by(WorkerId w) const;

  /// High-water mark of local-queue occupancy across all workers.
  [[nodiscard]] std::size_t peak_occupancy() const;

  /// Current adaptive-grain halvings (0 = full configured grain).
  [[nodiscard]] std::uint32_t grain_shift() const {
    return grain_shift_.load(std::memory_order_relaxed);
  }

 private:
  void note_event(bool was_steal);
  /// Emit a worker-track instant record (no-op when tracing is off).
  void trace_event(WorkerId w, obs::TraceKind kind, std::uint32_t aux);
  /// Cold half of the exception barrier: record the fault into `w`'s
  /// preallocated buffer and emit the kGranuleFault instant.
  void record_fault(WorkerId w, const Assignment& a, const char* what);

  /// One watchdog sampling cell per worker; alignas keeps each worker's
  /// relaxed stores on a private cache line.
  struct alignas(64) ExecCell {
    std::atomic<std::uint64_t> begin_ns{0};
  };

  DispatchConfig config_;
  std::size_t capacity_;
  /// The queues lock internally (LocalRunQueue's own ranked mutex); the
  /// Dispatcher itself holds no lock — its remaining shared state is the
  /// relaxed steal-rate window below.
  std::vector<std::unique_ptr<LocalRunQueue>> queues_;
  /// Worker-private refill/steal staging buffers: scratch_[w] is touched
  /// only by worker w's thread (refill and try_steal are called by the
  /// owner), so it needs no guard by construction.
  std::vector<std::vector<Assignment>> scratch_;
  /// Worker-private fault buffers (same ownership rule as scratch_).
  std::vector<std::vector<GranuleFault>> faults_;
  /// Watchdog sampling cells (see exec_begin_ns).
  std::unique_ptr<ExecCell[]> exec_cells_;

  // Steal-rate signal: over a window of productive acquisitions (refills
  // that returned work, successful steals), a steal share >= 1/4 halves the
  // effective grain (up to kMaxGrainShift times); a window below that
  // threshold doubles it back. Relaxed atomics — the signal is a heuristic,
  // racy resets only blur the window edges.
  static constexpr std::uint32_t kMaxGrainShift = 6;
  void push_reversed(WorkerId w, const std::vector<Assignment>& buf);
  std::uint64_t window_size_;
  std::atomic<std::uint64_t> window_events_{0};
  std::atomic<std::uint64_t> window_steals_{0};
  std::atomic<std::uint32_t> grain_shift_{0};
};

}  // namespace pax::sched
