#include "casper/sor.hpp"

namespace pax::casper {

Checkerboard::Checkerboard(std::uint32_t nx, std::uint32_t ny) : nx_(nx), ny_(ny) {
  PAX_CHECK(nx >= 3 && ny >= 3);
  PAX_CHECK_MSG(nx <= 0xFFFF && ny <= 0xFFFF, "grid dimension exceeds 16 bits");
  granule_index_[0].assign(static_cast<std::size_t>(nx) * ny, kNoGranule);
  granule_index_[1].assign(static_cast<std::size_t>(nx) * ny, kNoGranule);
  for (std::uint32_t y = 1; y + 1 < ny; ++y) {
    for (std::uint32_t x = 1; x + 1 < nx; ++x) {
      const int c = static_cast<int>((x + y) % 2);  // 0 = red
      granule_index_[c][static_cast<std::size_t>(y) * nx + x] =
          static_cast<GranuleId>(cells_[c].size());
      cells_[c].push_back(x | (y << 16));
    }
  }
}

std::pair<std::uint32_t, std::uint32_t> Checkerboard::cell(Color c,
                                                           GranuleId g) const {
  const auto& v = cells_[static_cast<int>(c)];
  PAX_CHECK(g < v.size());
  return {v[g] & 0xFFFFu, v[g] >> 16};
}

GranuleId Checkerboard::granule_at(Color c, std::uint32_t x, std::uint32_t y) const {
  const GranuleId g =
      granule_index_[static_cast<int>(c)][static_cast<std::size_t>(y) * nx_ + x];
  PAX_CHECK_MSG(g != kNoGranule, "cell is not an interior cell of that colour");
  return g;
}

void Checkerboard::neighbours_into(Color next, GranuleId g,
                                   std::vector<GranuleId>& out) const {
  const auto [x, y] = cell(next, g);
  const Color cur = next == Color::kRed ? Color::kBlack : Color::kRed;
  const std::int32_t dx[4] = {-1, 1, 0, 0};
  const std::int32_t dy[4] = {0, 0, -1, 1};
  for (int k = 0; k < 4; ++k) {
    const std::uint32_t nx2 = static_cast<std::uint32_t>(
        static_cast<std::int32_t>(x) + dx[k]);
    const std::uint32_t ny2 = static_cast<std::uint32_t>(
        static_cast<std::int32_t>(y) + dy[k]);
    if (nx2 == 0 || nx2 + 1 >= nx_ || ny2 == 0 || ny2 + 1 >= ny_)
      continue;  // boundary neighbours never change
    out.push_back(granule_at(cur, nx2, ny2));
  }
}

std::vector<GranuleId> Checkerboard::neighbours(Color next, GranuleId g) const {
  std::vector<GranuleId> out;
  out.reserve(4);
  neighbours_into(next, g, out);
  return out;
}

void relax_cell(Grid& grid, std::uint32_t x, std::uint32_t y, double omega) {
  const double sum = grid.at(x - 1, y) + grid.at(x + 1, y) + grid.at(x, y - 1) +
                     grid.at(x, y + 1);
  const double gs = 0.25 * sum;
  grid.at(x, y) = (1.0 - omega) * grid.at(x, y) + omega * gs;
}

void solve_sequential(Grid& grid, double omega, std::uint32_t sweeps) {
  Checkerboard board(grid.nx(), grid.ny());
  for (std::uint32_t s = 0; s < sweeps; ++s) {
    for (Color c : {Color::kRed, Color::kBlack}) {
      const GranuleId n = board.cells(c);
      for (GranuleId g = 0; g < n; ++g) {
        const auto [x, y] = board.cell(c, g);
        relax_cell(grid, x, y, omega);
      }
    }
  }
}

SorProgram build_sor_program(Grid& grid, double omega, std::uint32_t sweeps) {
  SorProgram out;
  out.board = std::make_shared<Checkerboard>(grid.nx(), grid.ny());
  const auto board = out.board;
  PAX_CHECK_MSG(board->cells(Color::kRed) > 0 && board->cells(Color::kBlack) > 0,
                "grid too small: both colours need interior cells");

  PhaseProgram& prog = out.program;
  out.red_phase = prog.define_phase(
      make_phase("red", board->cells(Color::kRed))
          .reads("phi", IndexPattern::kIndirect, "stencil")
          .writes("phi_red"));
  out.black_phase = prog.define_phase(
      make_phase("black", board->cells(Color::kBlack))
          .reads("phi_red", IndexPattern::kIndirect, "stencil")
          .writes("phi"));

  // The seam/stencil relation as reverse-indirect enablement in both
  // directions.
  EnableClause red_to_black{"black", MappingKind::kReverseIndirect, {}};
  red_to_black.indirection.requires_of = [board](GranuleId g,
                                                 std::vector<GranuleId>& out) {
    board->neighbours_into(Color::kBlack, g, out);
  };
  red_to_black.indirection.stable = true;  // the stencil never changes
  EnableClause black_to_red{"red", MappingKind::kReverseIndirect, {}};
  black_to_red.indirection.requires_of = [board](GranuleId g,
                                                 std::vector<GranuleId>& out) {
    board->neighbours_into(Color::kRed, g, out);
  };
  black_to_red.indirection.stable = true;

  // Loop: LABEL top; DISPATCH red; DISPATCH black; bump; IF s < sweeps GOTO top.
  prog.serial("init_sweep",
              [](ProgramEnv& env) { env.set("sweep", 0); }, 0,
              /*conflicts=*/false);
  const std::uint32_t top = prog.dispatch(out.red_phase, {red_to_black});
  prog.dispatch(out.black_phase, {black_to_red});
  prog.serial("bump_sweep",
              [](ProgramEnv& env) { env.add("sweep", 1); }, 0,
              /*conflicts=*/false);
  prog.branch(
      "next_sweep",
      [sweeps](const ProgramEnv& env) {
        return env.get("sweep") < static_cast<std::int64_t>(sweeps)
                   ? std::size_t{0}
                   : std::size_t{1};
      },
      {top, static_cast<std::uint32_t>(prog.size() + 1)},
      /*phase_independent=*/true);
  prog.halt();

  Grid* g = &grid;
  out.bodies.set(out.red_phase, [g, board, omega](GranuleRange r, WorkerId) {
    for (GranuleId i = r.lo; i < r.hi; ++i) {
      const auto [x, y] = board->cell(Color::kRed, i);
      relax_cell(*g, x, y, omega);
    }
  });
  out.bodies.set(out.black_phase, [g, board, omega](GranuleRange r, WorkerId) {
    for (GranuleId i = r.lo; i < r.hi; ++i) {
      const auto [x, y] = board->cell(Color::kBlack, i);
      relax_cell(*g, x, y, omega);
    }
  });
  return out;
}

}  // namespace pax::casper
