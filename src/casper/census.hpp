// census.hpp — the PAX/CASPER phase census (experiment T1).
//
// The paper reports, for each enablement-mapping class, how many of the 22
// parallel computational phases and how many of the 1188 lines of parallel
// code fall into it. This module recomputes the census from the synthetic
// pipeline's *declared data accesses* (via pax::infer_mapping), so the table
// is derived the way the paper derived it — by analysing the code — rather
// than copied from the pipeline's ground-truth metadata. Tests cross-check
// the two.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

#include "casper/pipeline.hpp"
#include "common/table.hpp"

namespace pax::casper {

struct CensusRow {
  MappingKind kind{};
  std::uint32_t phases = 0;
  std::uint32_t lines = 0;
  [[nodiscard]] double phase_fraction(std::uint32_t total) const {
    return total ? static_cast<double>(phases) / total : 0.0;
  }
  [[nodiscard]] double line_fraction(std::uint32_t total) const {
    return total ? static_cast<double>(lines) / total : 0.0;
  }
};

struct Census {
  std::array<CensusRow, 5> rows{};  // indexed by MappingKind order
  std::uint32_t total_phases = 0;
  std::uint32_t total_lines = 0;
  std::uint32_t extended_phases_known = 0;

  [[nodiscard]] const CensusRow& row(MappingKind k) const {
    return rows[static_cast<std::size_t>(k)];
  }

  /// Universal + identity: "easily overlapped" in the paper (68% / 68%).
  [[nodiscard]] double easy_phase_fraction() const;
  [[nodiscard]] double easy_line_fraction() const;

  /// Everything overlappable with extended effort: easy + indirect + null
  /// transitions whose serial action does not conflict (>90% in the paper).
  [[nodiscard]] double extended_phase_fraction() const;
};

/// Classify each of the pipeline's 22 transitions by running infer_mapping
/// on the declared accesses, honouring serial actions between phases.
[[nodiscard]] Census take_census(const CasperPipeline& pipe);

/// Count of phases overlappable with extended effort (hoistable serials).
[[nodiscard]] std::uint32_t extended_overlappable_phases(const CasperPipeline& pipe);

/// Render the census as a paper-vs-measured table (used by bench_t1_census).
[[nodiscard]] Table census_table(const CasperPipeline& pipe, const Census& census);

}  // namespace pax::casper
