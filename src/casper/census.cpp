#include "casper/census.hpp"

#include "core/dataflow.hpp"

namespace pax::casper {

double Census::easy_phase_fraction() const {
  const auto& u = row(MappingKind::kUniversal);
  const auto& i = row(MappingKind::kIdentity);
  return total_phases
             ? static_cast<double>(u.phases + i.phases) / total_phases
             : 0.0;
}

double Census::easy_line_fraction() const {
  const auto& u = row(MappingKind::kUniversal);
  const auto& i = row(MappingKind::kIdentity);
  return total_lines ? static_cast<double>(u.lines + i.lines) / total_lines : 0.0;
}

double Census::extended_phase_fraction() const {
  // Filled by take_census via extended_phases_.
  return extended_phases_known ? static_cast<double>(extended_phases_known) /
                                     (total_phases ? total_phases : 1)
                               : 0.0;
}

Census take_census(const CasperPipeline& pipe) {
  Census census;
  const std::size_t n = pipe.info.size();
  census.total_phases = static_cast<std::uint32_t>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const CasperPhaseInfo& cur = pipe.info[i];
    const std::size_t next = (i + 1) % n;
    const PhaseSpec& cur_spec = pipe.program.phase(static_cast<PhaseId>(i));
    const PhaseSpec& next_spec = pipe.program.phase(static_cast<PhaseId>(next));
    // A serial action between the phases forces the null classification,
    // exactly as in the paper ("serial actions and decisions had to occur
    // between the phases").
    const MappingAnalysis analysis =
        infer_mapping(cur_spec, next_spec, cur.serial_after);
    auto& row = census.rows[static_cast<std::size_t>(analysis.kind)];
    row.kind = analysis.kind;
    row.phases += 1;
    row.lines += cur.lines;
    census.total_lines += cur.lines;
  }
  census.extended_phases_known = extended_overlappable_phases(pipe);
  return census;
}

std::uint32_t extended_overlappable_phases(const CasperPipeline& pipe) {
  std::uint32_t count = 0;
  const std::size_t n = pipe.info.size();
  for (std::size_t i = 0; i < n; ++i) {
    const CasperPhaseInfo& cur = pipe.info[i];
    const std::size_t next = (i + 1) % n;
    const PhaseSpec& cur_spec = pipe.program.phase(static_cast<PhaseId>(i));
    const PhaseSpec& next_spec = pipe.program.phase(static_cast<PhaseId>(next));
    // Extended effort: hoist non-conflicting serial actions, then ask again.
    const bool serial_blocks = cur.serial_after && cur.serial_conflicts;
    const MappingAnalysis analysis =
        infer_mapping(cur_spec, next_spec, serial_blocks);
    if (analysis.kind != MappingKind::kNull) ++count;
  }
  return count;
}

Table census_table(const CasperPipeline& pipe, const Census& census) {
  // The paper's numbers, for side-by-side comparison.
  struct PaperRow {
    MappingKind kind;
    std::uint32_t phases, lines;
  };
  static constexpr PaperRow kPaper[] = {
      {MappingKind::kUniversal, 6, 266},  {MappingKind::kIdentity, 9, 551},
      {MappingKind::kNull, 4, 262},       {MappingKind::kReverseIndirect, 2, 78},
      {MappingKind::kForwardIndirect, 1, 31},
  };

  Table t("T1 — PAX/CASPER enablement-mapping census (paper vs this repo)");
  t.header({"mapping", "phases", "paper", "% phases", "paper %", "lines", "paper",
            "% lines", "paper %"});
  for (const auto& p : kPaper) {
    const CensusRow& r = census.row(p.kind);
    t.row({to_string(p.kind), std::to_string(r.phases), std::to_string(p.phases),
           Table::pct(r.phase_fraction(census.total_phases), 0),
           Table::pct(static_cast<double>(p.phases) / 22.0, 0),
           std::to_string(r.lines), std::to_string(p.lines),
           Table::pct(r.line_fraction(census.total_lines), 0),
           Table::pct(static_cast<double>(p.lines) / 1188.0, 0)});
  }
  t.separator();
  t.row({"easily overlapped", "", "", Table::pct(census.easy_phase_fraction(), 0),
         "68%", "", "", Table::pct(census.easy_line_fraction(), 0), "68%"});
  const double ext =
      static_cast<double>(extended_overlappable_phases(pipe)) /
      static_cast<double>(census.total_phases);
  t.row({"with extended effort", "", "", Table::pct(ext, 0), ">90%", "", "", "", ""});
  return t;
}

}  // namespace pax::casper
