#include "casper/grid.hpp"

#include <cmath>

namespace pax::casper {

void Grid::set_boundary(double hot, double cold) {
  for (std::uint32_t x = 0; x < nx_; ++x) {
    at(x, 0) = cold;
    at(x, ny_ - 1) = hot;
  }
  for (std::uint32_t y = 0; y < ny_; ++y) {
    at(0, y) = cold;
    at(nx_ - 1, y) = cold;
  }
}

double Grid::max_diff(const Grid& a, const Grid& b) {
  PAX_CHECK(a.nx_ == b.nx_ && a.ny_ == b.ny_);
  double m = 0.0;
  for (std::size_t i = 0; i < a.v_.size(); ++i)
    m = std::max(m, std::fabs(a.v_[i] - b.v_[i]));
  return m;
}

bool Grid::identical(const Grid& a, const Grid& b) {
  PAX_CHECK(a.nx_ == b.nx_ && a.ny_ == b.ny_);
  return a.v_ == b.v_;
}

}  // namespace pax::casper
