// sor.hpp — checkerboard successive over-relaxation, the paper's motivating
// example.
//
// "Consider again the checkerboard algorithm. If all the 'odd' locations
// adjacent to a particular 'even' location have been updated with new values
// from the current computational phase, then the new value for that
// particular 'even' location for the next computational phase can be
// correctly computed. Additionally, since all the computations requiring as
// an input the current value of that particular 'even' location have been
// completed, the value for that 'even' location can be updated without
// affecting the results of the current computational phase."
//
// The red->black (and black->red) enablement is exactly that relation: a
// cell of the next colour is enabled when its four neighbours of the current
// colour have completed. The paper calls the general form a *seam mapping*
// and defers it; it is expressible as a reverse-indirect mapping with a
// static neighbour map, which is how this module drives the executive.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "casper/grid.hpp"
#include "core/program.hpp"
#include "runtime/body_table.hpp"

namespace pax::casper {

enum class Color : std::uint8_t { kRed = 0, kBlack = 1 };  // (x+y) even = red

/// Geometry and granule numbering of a checkerboard decomposition: granule g
/// of a colour phase is the g-th interior cell of that colour in row-major
/// order.
class Checkerboard {
 public:
  Checkerboard(std::uint32_t nx, std::uint32_t ny);

  [[nodiscard]] std::uint32_t nx() const { return nx_; }
  [[nodiscard]] std::uint32_t ny() const { return ny_; }
  [[nodiscard]] GranuleId cells(Color c) const {
    return static_cast<GranuleId>(cells_[static_cast<int>(c)].size());
  }

  /// (x, y) of granule g of colour c.
  [[nodiscard]] std::pair<std::uint32_t, std::uint32_t> cell(Color c,
                                                             GranuleId g) const;

  /// Granule id of interior cell (x, y), which must have colour c.
  [[nodiscard]] GranuleId granule_at(Color c, std::uint32_t x,
                                     std::uint32_t y) const;

  /// The reverse enablement map: granules of colour `next` map to the
  /// interior neighbours of the *other* colour that must complete first.
  /// Appended to `out` (the GranuleMapFn shape — no allocation per query).
  void neighbours_into(Color next, GranuleId g, std::vector<GranuleId>& out) const;
  /// Convenience vector-returning form for tests/tools.
  [[nodiscard]] std::vector<GranuleId> neighbours(Color next, GranuleId g) const;

 private:
  std::uint32_t nx_, ny_;
  std::vector<std::uint32_t> cells_[2];        // packed x | y<<16
  std::vector<GranuleId> granule_index_[2];    // (y*nx+x) -> granule id
};

/// One SOR update of a single cell (reads 4 neighbours, writes the cell).
void relax_cell(Grid& grid, std::uint32_t x, std::uint32_t y, double omega);

/// Sequential reference: `sweeps` full (red then black) sweeps.
void solve_sequential(Grid& grid, double omega, std::uint32_t sweeps);

/// A phase program running `sweeps` checkerboard sweeps with red<->black
/// reverse-indirect overlap clauses, plus the runtime bodies operating on
/// `grid`. The program loops via a branch-independent backward branch, so
/// successive sweeps also overlap tail-to-head.
struct SorProgram {
  PhaseProgram program;
  PhaseId red_phase = kNoPhase;
  PhaseId black_phase = kNoPhase;
  rt::BodyTable bodies;
  std::shared_ptr<Checkerboard> board;
};

SorProgram build_sor_program(Grid& grid, double omega, std::uint32_t sweeps);

}  // namespace pax::casper
