// pipeline.hpp — the synthetic CASPER pipeline.
//
// CASPER (Combined Aerodynamic and Structural Dynamic Problem Emulating
// Routines, NASA TP-2418) is not available; this module builds a synthetic
// 22-phase pipeline whose *enablement-mapping census matches the paper's
// published measurements exactly*:
//
//   universal          6 phases   266 lines
//   identity (direct)  9 phases   551 lines
//   null               4 phases   262 lines
//   reverse indirect   2 phases    78 lines
//   forward indirect   1 phase     31 lines
//   total             22 phases  1188 lines
//
// Two of the four null transitions are null because of *non-conflicting*
// serial actions; hoisting them (ExecConfig::early_serial) makes 20 of 22
// phases overlappable — the paper's "more than 90 percent ... with extended
// effort".
//
// Phase names, relative sizes and duration models are invented but CASPER-
// flavoured (aerodynamic + structural dynamic stages, conditional
// computations, unpredictable execution times).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/program.hpp"
#include "runtime/body_table.hpp"
#include "sim/workload.hpp"

namespace pax::casper {

/// Ground-truth metadata for one of the 22 phases.
struct CasperPhaseInfo {
  std::string name;
  GranuleId granules = 0;
  std::uint32_t lines = 0;
  /// Mapping class of the transition from this phase to its successor
  /// (phase 22 wraps to phase 1 of the next iteration).
  MappingKind to_next = MappingKind::kNull;
  /// A serial action follows this phase.
  bool serial_after = false;
  /// ... and it conflicts with the phase's data (true null) or not
  /// (hoistable under early_serial).
  bool serial_conflicts = false;
  /// Underlying mapping once a non-conflicting serial action is hoisted.
  MappingKind underlying = MappingKind::kNull;
};

struct CasperOptions {
  /// Outer iterations of the 22-phase cycle.
  std::uint32_t iterations = 1;
  /// Multiplies every phase's granule count.
  std::uint32_t scale = 1;
  std::uint64_t seed = 1986;
};

struct CasperPipeline {
  PhaseProgram program;
  std::vector<CasperPhaseInfo> info;  // exactly 22 entries
  sim::Workload workload;
  CasperOptions options;

  CasperPipeline() : workload(0) {}

  [[nodiscard]] std::uint32_t total_lines() const;
  [[nodiscard]] GranuleId total_granules() const;
};

/// Build the pipeline: program (with ENABLE clauses and loop), ground truth,
/// and a CASPER-flavoured workload (mixed distributions, conditional tasks).
[[nodiscard]] CasperPipeline build_casper_pipeline(const CasperOptions& opt = {});

/// Real-thread bodies for the pipeline: each granule runs a small numeric
/// kernel proportional to the phase's line count. `work_scale` tunes kernel
/// iterations per line. The returned buffer owns the phases' output arrays.
struct CasperBodies {
  rt::BodyTable bodies;
  std::shared_ptr<std::vector<std::vector<double>>> buffers;
};
[[nodiscard]] CasperBodies make_casper_bodies(const CasperPipeline& pipe,
                                              std::uint32_t work_scale = 40);

}  // namespace pax::casper
