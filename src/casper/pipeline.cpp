#include "casper/pipeline.hpp"

#include <array>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace pax::casper {
namespace {

using MK = MappingKind;

struct Row {
  const char* name;
  GranuleId granules;     // before scaling
  std::uint32_t lines;    // the paper's census metric
  MK to_next;             // census class of the transition to the successor
  bool serial_after;      // null transitions carry a serial action
  bool serial_conflicts;  // conflicting => true null; else hoistable
  MK underlying;          // mapping once a non-conflicting serial is hoisted
  sim::DurationModel model;
  double spread;        // uniform half-width / bimodal long-mode extra
  double skip_p;        // conditional-execution probability
  const char* serial_name;
};

// The 22-phase CASPER cycle. Line counts reproduce the paper exactly:
//   universal 6/266, identity 9/551, null 4/262, reverse 2/78, forward 1/31.
// Identity transitions (including the two hoistable null transitions whose
// underlying mapping is identity) require equal granule counts on both sides.
constexpr std::array<Row, 22> kRows = {{
    // name                  gran  lines kind            serial conf underlying
    {"init_geometry",         768,  44, MK::kUniversal,       false, false, MK::kUniversal,       sim::DurationModel::kFixed,        0,   0.0, ""},
    {"metric_terms",          896,  61, MK::kIdentity,        false, false, MK::kIdentity,        sim::DurationModel::kUniform,      40,  0.0, ""},
    {"power_of_compression",  896,  45, MK::kUniversal,       false, false, MK::kUniversal,       sim::DurationModel::kExponential,  0,   0.0, ""},
    {"interp_matrix_rows",   1024,  61, MK::kIdentity,        false, false, MK::kIdentity,        sim::DurationModel::kUniform,      30,  0.0, ""},
    {"interp_matrix_cols",   1024,  65, MK::kNull,            true,  true,  MK::kIdentity,        sim::DurationModel::kFixed,        0,   0.0, "pivot_selection"},
    {"flux_predictor",       1024,  39, MK::kReverseIndirect, false, false, MK::kReverseIndirect, sim::DurationModel::kExponential,  0,   0.1, ""},
    {"flux_corrector",        960,  61, MK::kIdentity,        false, false, MK::kIdentity,        sim::DurationModel::kUniform,      50,  0.0, ""},
    {"artificial_viscosity",  960,  66, MK::kNull,            true,  true,  MK::kIdentity,        sim::DurationModel::kBimodal,      300, 0.0, "convergence_check"},
    {"pressure_update",       960,  61, MK::kIdentity,        false, false, MK::kIdentity,        sim::DurationModel::kUniform,      20,  0.0, ""},
    {"velocity_update",       960,  61, MK::kIdentity,        false, false, MK::kIdentity,        sim::DurationModel::kUniform,      20,  0.0, ""},
    {"energy_update",         960,  44, MK::kUniversal,       false, false, MK::kUniversal,       sim::DurationModel::kFixed,        0,   0.0, ""},
    {"turbulence_closure",    768,  61, MK::kIdentity,        false, false, MK::kIdentity,        sim::DurationModel::kExponential,  0,   0.3, ""},
    {"boundary_apply",        768,  31, MK::kForwardIndirect, false, false, MK::kForwardIndirect, sim::DurationModel::kFixed,        0,   0.25, ""},
    {"structural_loads",      640,  39, MK::kReverseIndirect, false, false, MK::kReverseIndirect, sim::DurationModel::kUniform,      60,  0.0, ""},
    {"modal_projection",      896,  61, MK::kIdentity,        false, false, MK::kIdentity,        sim::DurationModel::kUniform,      25,  0.0, ""},
    {"modal_integration",     896,  65, MK::kNull,            true,  false, MK::kUniversal,       sim::DurationModel::kFixed,        0,   0.0, "timestep_select"},
    {"displacement_expand",   768,  45, MK::kUniversal,       false, false, MK::kUniversal,       sim::DurationModel::kUniform,      35,  0.0, ""},
    {"grid_deform",          1024,  62, MK::kIdentity,        false, false, MK::kIdentity,        sim::DurationModel::kUniform,      30,  0.0, ""},
    {"grid_smooth",          1024,  62, MK::kIdentity,        false, false, MK::kIdentity,        sim::DurationModel::kUniform,      30,  0.0, ""},
    {"aero_struct_couple",   1024,  66, MK::kNull,            true,  false, MK::kUniversal,       sim::DurationModel::kExponential,  0,   0.0, "io_checkpoint"},
    {"convergence_residuals", 896,  44, MK::kUniversal,       false, false, MK::kUniversal,       sim::DurationModel::kFixed,        0,   0.0, ""},
    {"output_sample",         512,  44, MK::kUniversal,       false, false, MK::kUniversal,       sim::DurationModel::kFixed,        0,   0.5, ""},
}};

std::string transfer_array(std::size_t i) { return "T" + std::to_string(i); }
std::string private_array(std::size_t i) { return "U" + std::to_string(i); }

/// Effective mapping used for declared accesses (what the data actually
/// does, independent of any serial action in between).
MK data_mapping(const Row& r) { return r.serial_after ? r.underlying : r.to_next; }

}  // namespace

std::uint32_t CasperPipeline::total_lines() const {
  std::uint32_t t = 0;
  for (const auto& p : info) t += p.lines;
  return t;
}

GranuleId CasperPipeline::total_granules() const {
  GranuleId t = 0;
  for (const auto& p : info) t += p.granules;
  return t;
}

CasperPipeline build_casper_pipeline(const CasperOptions& opt) {
  PAX_CHECK(opt.scale >= 1 && opt.iterations >= 1);
  CasperPipeline out;
  out.options = opt;
  out.workload = sim::Workload(opt.seed);

  const std::size_t n = kRows.size();

  // --- ground-truth metadata -------------------------------------------------
  for (std::size_t i = 0; i < n; ++i) {
    const Row& r = kRows[i];
    CasperPhaseInfo pi;
    pi.name = r.name;
    pi.granules = r.granules * opt.scale;
    pi.lines = r.lines;
    pi.to_next = r.to_next;
    pi.serial_after = r.serial_after;
    pi.serial_conflicts = r.serial_conflicts;
    pi.underlying = r.underlying;
    out.info.push_back(std::move(pi));
  }

  // --- phase specs with access declarations realising the census ------------
  // Transition i -> i+1 is carried by array T_i; each phase also writes a
  // private array so no phase is empty-handed. Universal transitions share
  // nothing (the successor never touches T_i).
  for (std::size_t i = 0; i < n; ++i) {
    const Row& r = kRows[i];
    const std::size_t prev = (i + n - 1) % n;
    const Row& rp = kRows[prev];
    PhaseSpec spec;
    spec.name = r.name;
    spec.granules = r.granules * opt.scale;
    spec.code_lines = r.lines;
    spec.writes(private_array(i));

    // Incoming side: read T_prev according to the previous transition's
    // data mapping.
    switch (data_mapping(rp)) {
      case MK::kUniversal:
        break;  // no shared data with the predecessor
      case MK::kIdentity:
        spec.reads(transfer_array(prev));
        break;
      case MK::kReverseIndirect:
        spec.reads(transfer_array(prev), IndexPattern::kIndirect,
                   "RMAP" + std::to_string(prev));
        break;
      case MK::kForwardIndirect:
        spec.reads(transfer_array(prev));  // successor side reads identity
        break;
      case MK::kNull:
        spec.reads(transfer_array(prev), IndexPattern::kWhole);
        break;
    }
    // Outgoing side: write T_i according to this transition's data mapping.
    switch (data_mapping(r)) {
      case MK::kUniversal:
        break;
      case MK::kIdentity:
      case MK::kReverseIndirect:
        spec.writes(transfer_array(i));
        break;
      case MK::kForwardIndirect:
        spec.writes(transfer_array(i), IndexPattern::kIndirect,
                    "FMAP" + std::to_string(i));
        break;
      case MK::kNull:
        spec.writes(transfer_array(i), IndexPattern::kWhole);
        break;
    }
    out.program.define_phase(std::move(spec));
  }

  // --- indirection maps (the paper's dynamically generated IMAPs) ------------
  // Reverse: successor granule needs 10 pseudo-random current granules
  // (paper: DO 200 J=1,10 ... A(IMAP(J,I))). Forward: current granule feeds
  // one pseudo-random successor granule (B(IMAP(I)) = A(IMAP(I))).
  auto make_reverse = [&](std::size_t i) {
    const GranuleId cur_n = kRows[i].granules * opt.scale;
    const std::uint64_t salt = opt.seed * 1000 + i;
    return IndirectionSpec{
        .requires_of =
            [cur_n, salt](GranuleId rr, std::vector<GranuleId>& need) {
              std::uint64_t s = salt ^ (0x9E3779B97F4A7C15ULL * (rr + 1));
              for (int j = 0; j < 10; ++j)
                need.push_back(
                    static_cast<GranuleId>(splitmix64(s) % cur_n));
            },
        .enables_of = nullptr};
  };
  auto make_forward = [&](std::size_t i) {
    const GranuleId succ_n = kRows[(i + 1) % n].granules * opt.scale;
    const std::uint64_t salt = opt.seed * 2000 + i;
    return IndirectionSpec{
        .requires_of = nullptr,
        .enables_of =
            [succ_n, salt](GranuleId p, std::vector<GranuleId>& en) {
              std::uint64_t s = salt ^ (0xC2B2AE3D27D4EB4FULL * (p + 1));
              en.push_back(static_cast<GranuleId>(splitmix64(s) % succ_n));
            }};
  };

  // --- program: LABEL top; 22 dispatches (+ serial actions); loop ------------
  out.program.serial("init_iter",
                     [](ProgramEnv& env) { env.set("iter", 0); }, 0,
                     /*conflicts=*/false);
  std::uint32_t top = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Row& r = kRows[i];
    const std::size_t next = (i + 1) % n;

    EnableClause clause;
    clause.successor_name = kRows[next].name;
    if (r.serial_after && r.serial_conflicts) {
      clause.kind = MK::kNull;  // overlap impossible; be explicit
    } else if (r.serial_after) {
      clause.kind = r.underlying;  // applied only when the serial is hoisted
    } else {
      clause.kind = r.to_next;
    }
    if (clause.kind == MK::kReverseIndirect) clause.indirection = make_reverse(i);
    if (clause.kind == MK::kForwardIndirect) clause.indirection = make_forward(i);

    const std::uint32_t node =
        out.program.dispatch(static_cast<PhaseId>(i), {clause});
    if (i == 0) top = node;

    if (r.serial_after) {
      // Conflicting serial actions model decisions over the phase's own
      // output; non-conflicting ones are bookkeeping (timestep selection,
      // checkpointing) that early_serial may hoist.
      out.program.serial(r.serial_name, {}, /*sim_duration=*/200,
                         r.serial_conflicts);
    }
  }
  out.program.serial("bump_iter",
                     [](ProgramEnv& env) { env.add("iter", 1); }, 0,
                     /*conflicts=*/false);
  const std::uint32_t iterations = opt.iterations;
  out.program.branch(
      "next_iter",
      [iterations](const ProgramEnv& env) {
        return env.get("iter") < static_cast<std::int64_t>(iterations)
                   ? std::size_t{0}
                   : std::size_t{1};
      },
      {top, static_cast<std::uint32_t>(out.program.size() + 1)},
      /*phase_independent=*/true);
  out.program.halt();

  // --- workload ---------------------------------------------------------------
  // Mean granule duration proportional to the phase's line count: the census
  // metric doubles as a work metric, as in the paper's lines-of-parallel-code
  // accounting.
  for (std::size_t i = 0; i < n; ++i) {
    const Row& r = kRows[i];
    sim::PhaseWorkload w;
    w.model = r.model;
    w.mean = 2.0 * r.lines;
    w.spread = r.spread;
    w.skip_probability = r.skip_p;
    w.skip_cost = 2;
    out.workload.set_phase(static_cast<PhaseId>(i), w);
  }
  return out;
}

CasperBodies make_casper_bodies(const CasperPipeline& pipe,
                                std::uint32_t work_scale) {
  CasperBodies out;
  out.buffers = std::make_shared<std::vector<std::vector<double>>>();
  out.buffers->resize(pipe.info.size());
  for (std::size_t i = 0; i < pipe.info.size(); ++i)
    (*out.buffers)[i].assign(pipe.info[i].granules, 0.0);

  for (std::size_t i = 0; i < pipe.info.size(); ++i) {
    const std::uint32_t iters = pipe.info[i].lines * work_scale;
    auto buffers = out.buffers;
    const std::size_t phase_index = i;
    out.bodies.set(static_cast<PhaseId>(i),
                   [buffers, phase_index, iters](GranuleRange r, WorkerId) {
                     auto& buf = (*buffers)[phase_index];
                     for (GranuleId g = r.lo; g < r.hi; ++g) {
                       // Small FP kernel; the result lands in the granule's
                       // slot so the work cannot be optimised away.
                       double acc = 1.0 + static_cast<double>(g);
                       for (std::uint32_t k = 0; k < iters; ++k)
                         acc = acc * 1.0000001 + 0.5;
                       buf[g] = acc;
                     }
                   });
  }
  return out;
}

}  // namespace pax::casper
