// grid.hpp — 2D potential grid for the checkerboard SOR solver.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace pax::casper {

/// Dense (nx x ny) grid of doubles, row-major, with the outermost ring held
/// as Dirichlet boundary.
class Grid {
 public:
  Grid(std::uint32_t nx, std::uint32_t ny, double fill = 0.0)
      : nx_(nx), ny_(ny), v_(static_cast<std::size_t>(nx) * ny, fill) {
    PAX_CHECK_MSG(nx >= 3 && ny >= 3, "grid needs an interior");
  }

  [[nodiscard]] std::uint32_t nx() const { return nx_; }
  [[nodiscard]] std::uint32_t ny() const { return ny_; }

  [[nodiscard]] double& at(std::uint32_t x, std::uint32_t y) {
    PAX_DCHECK(x < nx_ && y < ny_);
    return v_[static_cast<std::size_t>(y) * nx_ + x];
  }
  [[nodiscard]] double at(std::uint32_t x, std::uint32_t y) const {
    PAX_DCHECK(x < nx_ && y < ny_);
    return v_[static_cast<std::size_t>(y) * nx_ + x];
  }

  [[nodiscard]] bool interior(std::uint32_t x, std::uint32_t y) const {
    return x > 0 && x + 1 < nx_ && y > 0 && y + 1 < ny_;
  }

  /// Apply a boundary profile: top edge at `hot`, other edges at `cold`.
  void set_boundary(double hot, double cold);

  /// Max |a - b| over all cells.
  [[nodiscard]] static double max_diff(const Grid& a, const Grid& b);

  /// Exact equality (bitwise) — the overlap-correctness check.
  [[nodiscard]] static bool identical(const Grid& a, const Grid& b);

  [[nodiscard]] const std::vector<double>& data() const { return v_; }

 private:
  std::uint32_t nx_, ny_;
  std::vector<double> v_;
};

}  // namespace pax::casper
