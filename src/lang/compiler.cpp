#include "lang/compiler.hpp"

#include <map>

#include "lang/parser.hpp"
#include "lang/validator.hpp"

namespace pax::lang {

CompileResult Compiler::compile(const Module& m) const {
  CompileResult out;
  out.diags = validate(m);
  if (has_errors(out.diags)) return out;

  PhaseProgram& prog = out.program;
  auto err = [&](int line, std::string msg) {
    out.diags.push_back({Diag::Severity::kError, line, std::move(msg)});
  };

  // Phases, in definition order (PhaseId == definition index).
  for (const auto& def : m.phases) {
    PhaseSpec spec;
    spec.name = def.name;
    spec.granules = def.granules;
    spec.code_lines = def.lines;
    for (const auto& a : def.accesses)
      spec.accesses.push_back({a.array, a.mode, a.pattern, a.map});
    prog.define_phase(std::move(spec));
  }

  // Pass 1: node index per statement (labels bind to the next node).
  std::vector<std::uint32_t> node_of(m.statements.size(), 0);
  std::map<std::string, std::uint32_t> label_node;
  std::uint32_t counter = 0;
  for (std::size_t i = 0; i < m.statements.size(); ++i) {
    node_of[i] = counter;
    if (const auto* l = std::get_if<StLabel>(&m.statements[i])) {
      label_node[l->name] = counter;  // no node emitted
    } else {
      ++counter;
    }
  }
  const std::uint32_t end_node = counter;  // implicit halt position

  auto resolve_label = [&](const std::string& name, int line) -> std::uint32_t {
    auto it = label_node.find(name);
    if (it == label_node.end()) {
      err(line, "undefined label '" + name + "'");
      return end_node;
    }
    return it->second;
  };

  // Clause lowering shared by all dispatch forms.
  auto lower_clause = [&](const EnableDecl& decl) -> EnableClause {
    EnableClause clause;
    clause.successor_name = decl.phase;
    clause.kind = decl.kind;
    if (decl.kind == MappingKind::kReverseIndirect ||
        decl.kind == MappingKind::kForwardIndirect) {
      auto it = bindings_.find(decl.using_map);
      if (it == bindings_.end()) {
        err(decl.line, "no indirection bound for USING=" + decl.using_map);
      } else {
        clause.indirection = it->second;
        const bool need_reverse = decl.kind == MappingKind::kReverseIndirect;
        if (need_reverse && !clause.indirection.requires_of)
          err(decl.line, "binding '" + decl.using_map +
                             "' lacks the reverse (requires_of) direction");
        if (!need_reverse && !clause.indirection.enables_of)
          err(decl.line, "binding '" + decl.using_map +
                             "' lacks the forward (enables_of) direction");
      }
    }
    return clause;
  };

  // Pass 2: emit nodes. Branch-independence is a property of the region
  // after a DISPATCH ... ENABLE/BRANCHINDEPENDENT, until the next dispatch.
  bool branch_independent_region = false;
  for (std::size_t i = 0; i < m.statements.size(); ++i) {
    const Statement& st = m.statements[i];
    const std::uint32_t next_node =
        (i + 1 < m.statements.size()) ? node_of[i + 1] : end_node;

    if (const auto* d = std::get_if<StDispatch>(&st)) {
      const PhaseId phase = prog.phase_by_name(d->phase);
      std::vector<EnableClause> clauses;
      std::vector<EnableDecl> decls = d->enables;
      if (d->form == EnableForm::kBranchDependent && decls.empty())
        decls = m.phase(d->phase)->enables;
      if (d->form == EnableForm::kSimple) {
        for (const auto& s : successors_of(m, i)) {
          if (!s.clean_path) continue;
          EnableDecl decl;
          decl.phase = s.phase;
          decl.kind = d->simple_kind;
          decl.using_map = d->simple_using;
          decl.line = d->line;
          decls.push_back(decl);
          break;
        }
      }
      for (const auto& decl : decls) clauses.push_back(lower_clause(decl));
      prog.dispatch(phase, std::move(clauses));
      branch_independent_region = d->form == EnableForm::kBranchIndependent;
      continue;
    }
    if (const auto* s = std::get_if<StSerial>(&st)) {
      auto sets = s->sets;
      std::function<void(ProgramEnv&)> action;
      if (!sets.empty()) {
        action = [sets](ProgramEnv& env) {
          for (const auto& [var, expr] : sets) env.set(var, expr->eval(env));
        };
      }
      prog.serial(s->name, std::move(action), s->duration, s->conflicts);
      continue;
    }
    if (const auto* l = std::get_if<StLet>(&st)) {
      const std::string var = l->var;
      const ExprPtr value = l->value;
      prog.serial("let " + var,
                  [var, value](ProgramEnv& env) { env.set(var, value->eval(env)); },
                  0, /*conflicts=*/false);
      continue;
    }
    if (const auto* f = std::get_if<StIf>(&st)) {
      const ExprPtr cond = f->cond;
      prog.branch(
          "if@" + std::to_string(f->line),
          [cond](const ProgramEnv& env) {
            return cond->eval(env) != 0 ? std::size_t{0} : std::size_t{1};
          },
          {resolve_label(f->label, f->line), next_node}, branch_independent_region);
      continue;
    }
    if (const auto* g = std::get_if<StGoto>(&st)) {
      // Unconditional jumps are trivially branch-independent.
      prog.branch("goto " + g->label,
                  [](const ProgramEnv&) { return std::size_t{0}; },
                  {resolve_label(g->label, g->line)}, /*phase_independent=*/true);
      continue;
    }
    if (std::holds_alternative<StLabel>(st)) continue;
    if (std::holds_alternative<StHalt>(st)) {
      prog.halt();
      continue;
    }
  }
  // Implicit halt for programs that fall off the end.
  if (prog.size() == end_node) prog.halt();

  out.ok = !has_errors(out.diags);
  return out;
}

CompileResult compile_source(std::string_view source, const Compiler& compiler) {
  ParseResult parsed = parse(source);
  if (!parsed.ok()) {
    CompileResult out;
    out.diags = std::move(parsed.diags);
    return out;
  }
  CompileResult out = compiler.compile(parsed.module);
  // Keep parse warnings visible too.
  out.diags.insert(out.diags.begin(), parsed.diags.begin(), parsed.diags.end());
  return out;
}

}  // namespace pax::lang
