// parser.hpp — recursive-descent parser for the PAX language.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "lang/ast.hpp"
#include "lang/token.hpp"

namespace pax::lang {

struct ParseResult {
  Module module;
  std::vector<Diag> diags;

  [[nodiscard]] bool ok() const { return !has_errors(diags); }
};

[[nodiscard]] ParseResult parse(std::string_view source);

}  // namespace pax::lang
