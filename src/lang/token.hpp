// token.hpp — lexical tokens of the PAX parallel control language.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pax::lang {

enum class Tok : std::uint8_t {
  kIdent,
  kInt,
  kPunct,  // one of [ ] ( ) / = , :
  kOp,     // == != <= >= < > + - * % !
  kNewline,
  kEnd,
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;
  std::int64_t value = 0;  // for kInt
  int line = 0;
  int col = 0;

  [[nodiscard]] bool is_punct(char c) const {
    return kind == Tok::kPunct && text.size() == 1 && text[0] == c;
  }
  [[nodiscard]] bool is_op(const char* s) const {
    return kind == Tok::kOp && text == s;
  }
};

/// One diagnostic from any stage (lex/parse/validate/compile).
struct Diag {
  enum class Severity : std::uint8_t { kError, kWarning, kNote };
  Severity severity = Severity::kError;
  int line = 0;
  std::string message;

  [[nodiscard]] std::string render() const;
};

[[nodiscard]] bool has_errors(const std::vector<Diag>& diags);

}  // namespace pax::lang
