#include "lang/validator.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "core/dataflow.hpp"

namespace pax::lang {
namespace {

std::map<std::string, std::size_t> label_map(const Module& m) {
  std::map<std::string, std::size_t> labels;
  for (std::size_t i = 0; i < m.statements.size(); ++i)
    if (const auto* l = std::get_if<StLabel>(&m.statements[i]))
      labels.emplace(l->name, i);
  return labels;
}

PhaseSpec spec_of(const PhaseDef& def) {
  PhaseSpec spec;
  spec.name = def.name;
  spec.granules = def.granules;
  spec.code_lines = def.lines;
  for (const auto& a : def.accesses)
    spec.accesses.push_back({a.array, a.mode, a.pattern, a.map});
  return spec;
}

}  // namespace

std::vector<SuccessorInfo> successors_of(const Module& m, std::size_t index) {
  const auto labels = label_map(m);
  std::vector<SuccessorInfo> out;
  auto note = [&](const std::string& phase, bool clean) {
    for (auto& s : out) {
      if (s.phase == phase) {
        s.phase = phase;
        s.clean_path = s.clean_path || clean;
        return;
      }
    }
    out.push_back({phase, clean});
  };

  // DFS over (statement index, clean flag). Visited tracks both flags so a
  // clean path through a loop is still discovered.
  std::set<std::pair<std::size_t, bool>> visited;
  std::vector<std::pair<std::size_t, bool>> stack;
  stack.emplace_back(index + 1, true);
  while (!stack.empty()) {
    auto [i, clean] = stack.back();
    stack.pop_back();
    if (i >= m.statements.size()) continue;
    if (!visited.insert({i, clean}).second) continue;
    const Statement& st = m.statements[i];
    if (const auto* d = std::get_if<StDispatch>(&st)) {
      note(d->phase, clean);
      continue;  // stop at the next dispatch
    }
    if (const auto* s = std::get_if<StSerial>(&st)) {
      stack.emplace_back(i + 1, clean && !s->conflicts);
      continue;
    }
    if (std::holds_alternative<StLet>(st) || std::holds_alternative<StLabel>(st)) {
      stack.emplace_back(i + 1, clean);
      continue;
    }
    if (const auto* g = std::get_if<StGoto>(&st)) {
      auto it = labels.find(g->label);
      if (it != labels.end()) stack.emplace_back(it->second, clean);
      continue;
    }
    if (const auto* f = std::get_if<StIf>(&st)) {
      auto it = labels.find(f->label);
      if (it != labels.end()) stack.emplace_back(it->second, clean);
      stack.emplace_back(i + 1, clean);
      continue;
    }
    // StHalt: path ends.
  }
  return out;
}

std::vector<Diag> validate(const Module& m) {
  std::vector<Diag> diags;
  auto err = [&](int line, std::string msg) {
    diags.push_back({Diag::Severity::kError, line, std::move(msg)});
  };
  auto warn = [&](int line, std::string msg) {
    diags.push_back({Diag::Severity::kWarning, line, std::move(msg)});
  };

  // --- phase definitions ----------------------------------------------------
  for (std::size_t i = 0; i < m.phases.size(); ++i) {
    const PhaseDef& p = m.phases[i];
    if (p.granules == 0)
      err(p.line, "phase '" + p.name + "' must have GRANULES > 0");
    for (std::size_t j = 0; j < i; ++j)
      if (m.phases[j].name == p.name)
        err(p.line, "duplicate phase definition '" + p.name + "'");
    for (const auto& a : p.accesses)
      if (a.pattern == IndexPattern::kIndirect && a.map.empty())
        err(a.line, "INDIRECT access on '" + a.array + "' needs a map name");
  }

  // --- labels ----------------------------------------------------------------
  {
    std::map<std::string, int> seen;
    for (const auto& st : m.statements) {
      if (const auto* l = std::get_if<StLabel>(&st)) {
        if (!seen.emplace(l->name, l->line).second)
          err(l->line, "duplicate label '" + l->name + "'");
      }
    }
    for (const auto& st : m.statements) {
      const std::string* target = nullptr;
      int line = 0;
      if (const auto* g = std::get_if<StGoto>(&st)) {
        target = &g->label;
        line = g->line;
      } else if (const auto* f = std::get_if<StIf>(&st)) {
        target = &f->label;
        line = f->line;
      }
      if (target && seen.find(*target) == seen.end())
        err(line, "undefined label '" + *target + "'");
    }
  }

  // --- HALT present -----------------------------------------------------------
  {
    const bool any_halt =
        std::any_of(m.statements.begin(), m.statements.end(), [](const Statement& s) {
          return std::holds_alternative<StHalt>(s);
        });
    if (!any_halt && !m.statements.empty())
      warn(statement_line(m.statements.back()),
           "no HALT statement; one is appended at end of program");
  }

  // --- dispatches -------------------------------------------------------------
  for (std::size_t i = 0; i < m.statements.size(); ++i) {
    const auto* d = std::get_if<StDispatch>(&m.statements[i]);
    if (d == nullptr) continue;
    const PhaseDef* cur = m.phase(d->phase);
    if (cur == nullptr) {
      err(d->line, "DISPATCH of undefined phase '" + d->phase + "'");
      continue;
    }

    const std::vector<SuccessorInfo> next = successors_of(m, i);

    // Assemble the effective enable list per form.
    std::vector<EnableDecl> enables = d->enables;
    if (d->form == EnableForm::kBranchDependent && enables.empty()) {
      enables = cur->enables;
      if (enables.empty())
        err(d->line, "ENABLE/BRANCHDEPENDENT but phase '" + d->phase +
                         "' has no DEFINE-time ENABLE list");
    }
    if (d->form == EnableForm::kSimple) {
      warn(d->line,
           "ENABLE/MAPPING without a successor name has no interlock the "
           "executive can verify; prefer ENABLE [name/MAPPING=...]");
      std::size_t clean_count = 0;
      for (const auto& s : next)
        if (s.clean_path) ++clean_count;
      if (clean_count > 1)
        err(d->line,
            "simple ENABLE form is ambiguous: more than one phase can follow");
      if (next.empty())
        warn(d->line, "simple ENABLE form but no phase follows this dispatch");
      // Materialise the implied clause for the mapping-legality check below.
      for (const auto& s : next) {
        if (!s.clean_path) continue;
        EnableDecl decl;
        decl.phase = s.phase;
        decl.kind = d->simple_kind;
        decl.using_map = d->simple_using;
        decl.line = d->line;
        enables.push_back(decl);
        break;
      }
    }

    for (const auto& e : enables) {
      const PhaseDef* succ = m.phase(e.phase);
      if (succ == nullptr) {
        err(e.line, "ENABLE names undefined phase '" + e.phase + "'");
        continue;
      }
      const auto it = std::find_if(next.begin(), next.end(), [&](const auto& s) {
        return s.phase == e.phase;
      });
      if (it == next.end()) {
        err(e.line, "ENABLE names phase '" + e.phase +
                        "' which cannot follow this dispatch of '" + d->phase + "'");
        continue;
      }
      if (!it->clean_path) {
        warn(e.line, "every path from '" + d->phase + "' to '" + e.phase +
                         "' crosses a conflicting serial action; the overlap "
                         "will never be applied");
        continue;
      }
      if ((e.kind == MappingKind::kReverseIndirect ||
           e.kind == MappingKind::kForwardIndirect) &&
          e.using_map.empty()) {
        err(e.line, "indirect mapping for '" + e.phase +
                        "' needs /USING=<binding> to name its indirection");
      }

      // Mapping legality against declared data accesses.
      const MappingAnalysis inferred =
          infer_mapping(spec_of(*cur), spec_of(*succ), /*serial_between=*/false);
      if (e.kind == inferred.kind || e.kind == MappingKind::kNull) continue;
      if (inferred.kind == MappingKind::kUniversal) {
        warn(e.line, "phases '" + cur->name + "' -> '" + e.phase +
                         "' share no data; MAPPING=" + to_string(e.kind) +
                         " is safe but stricter than necessary (universal)");
        continue;
      }
      if (inferred.kind == MappingKind::kIdentity &&
          (e.kind == MappingKind::kReverseIndirect ||
           e.kind == MappingKind::kForwardIndirect)) {
        warn(e.line, "declared accesses imply identity mapping; cannot "
                     "statically verify the supplied indirection covers it");
        continue;
      }
      err(e.line, std::string("MAPPING=") + to_string(e.kind) +
                      " is unsafe here: declared accesses imply " +
                      to_string(inferred.kind) + " (" + inferred.rationale + ")");
    }
  }
  return diags;
}

}  // namespace pax::lang
