// compiler.hpp — lower a validated PAX language module to a PhaseProgram.
//
// Indirection functions cannot be written in the surface language; programs
// reference them by name (MAPPING=REVERSE/USING=IMAP) and the host registers
// the corresponding IndirectionSpec with the compiler before compiling —
// exactly like the paper's dynamically generated information selection maps,
// which exist only at run time.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/program.hpp"
#include "lang/ast.hpp"
#include "lang/token.hpp"

namespace pax::lang {

struct CompileResult {
  bool ok = false;
  PhaseProgram program;
  std::vector<Diag> diags;
};

class Compiler {
 public:
  /// Register the indirection behind a USING=<name> reference.
  void bind(const std::string& name, IndirectionSpec spec) {
    bindings_[name] = std::move(spec);
  }

  /// Validate and lower. Returns ok=false (with diagnostics) on any error.
  [[nodiscard]] CompileResult compile(const Module& m) const;

 private:
  std::map<std::string, IndirectionSpec> bindings_;
};

/// Convenience: parse + validate + compile in one step.
[[nodiscard]] CompileResult compile_source(std::string_view source,
                                           const Compiler& compiler = {});

}  // namespace pax::lang
