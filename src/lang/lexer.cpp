#include "lang/lexer.hpp"

#include <cctype>

namespace pax::lang {

std::string Diag::render() const {
  const char* sev = severity == Severity::kError     ? "error"
                    : severity == Severity::kWarning ? "warning"
                                                     : "note";
  return "line " + std::to_string(line) + ": " + sev + ": " + message;
}

bool has_errors(const std::vector<Diag>& diags) {
  for (const auto& d : diags)
    if (d.severity == Diag::Severity::kError) return true;
  return false;
}

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}

}  // namespace

LexResult lex(std::string_view src) {
  LexResult out;
  int line = 1;
  int col = 1;
  std::size_t i = 0;
  bool line_has_tokens = false;

  auto push = [&](Tok kind, std::string text, std::int64_t value = 0) {
    out.tokens.push_back({kind, std::move(text), value, line, col});
    if (kind != Tok::kNewline) line_has_tokens = true;
  };

  while (i < src.size()) {
    const char c = src[i];
    if (c == '\n') {
      if (line_has_tokens) push(Tok::kNewline, "\\n");
      line_has_tokens = false;
      ++i;
      ++line;
      col = 1;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      ++col;
      continue;
    }
    if (c == '#' || (c == '-' && i + 1 < src.size() && src[i + 1] == '-')) {
      while (i < src.size() && src[i] != '\n') ++i;
      continue;
    }
    if (ident_start(c)) {
      std::size_t j = i;
      while (j < src.size() && ident_char(src[j])) ++j;
      push(Tok::kIdent, std::string(src.substr(i, j - i)));
      col += static_cast<int>(j - i);
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      std::int64_t v = 0;
      bool overflow = false;
      while (j < src.size() && std::isdigit(static_cast<unsigned char>(src[j]))) {
        if (v > (INT64_MAX - 9) / 10) overflow = true;
        v = v * 10 + (src[j] - '0');
        ++j;
      }
      if (overflow)
        out.diags.push_back({Diag::Severity::kError, line, "integer literal overflow"});
      push(Tok::kInt, std::string(src.substr(i, j - i)), v);
      col += static_cast<int>(j - i);
      i = j;
      continue;
    }
    // Two-character operators first.
    if (i + 1 < src.size()) {
      const std::string_view two = src.substr(i, 2);
      if (two == "==" || two == "!=" || two == "<=" || two == ">=") {
        push(Tok::kOp, std::string(two));
        i += 2;
        col += 2;
        continue;
      }
    }
    switch (c) {
      case '[': case ']': case '(': case ')': case '/': case '=': case ',':
      case ':':
        push(Tok::kPunct, std::string(1, c));
        ++i;
        ++col;
        continue;
      case '<': case '>': case '+': case '-': case '*': case '%': case '!':
        push(Tok::kOp, std::string(1, c));
        ++i;
        ++col;
        continue;
      default:
        out.diags.push_back({Diag::Severity::kError, line,
                             std::string("unexpected character '") + c + "'"});
        ++i;
        ++col;
        continue;
    }
  }
  if (line_has_tokens) push(Tok::kNewline, "\\n");
  push(Tok::kEnd, "<end>");
  return out;
}

}  // namespace pax::lang
