#include "lang/parser.hpp"

#include <algorithm>
#include <cctype>

#include "lang/lexer.hpp"

namespace pax::lang {
namespace {

std::string upper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  return out;
}

class Parser {
 public:
  explicit Parser(LexResult lexed) : tokens_(std::move(lexed.tokens)) {
    result_.diags = std::move(lexed.diags);
  }

  ParseResult run() {
    while (!at_end()) {
      skip_newlines();
      if (at_end()) break;
      if (is_kw("DEFINE")) {
        parse_define();
      } else {
        parse_statement();
      }
    }
    return std::move(result_);
  }

 private:
  // --- token plumbing ------------------------------------------------------
  const Token& peek(std::size_t off = 0) const {
    const std::size_t i = std::min(pos_ + off, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& advance() {
    const Token& t = tokens_[pos_];
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return t;
  }
  bool at_end() const { return peek().kind == Tok::kEnd; }
  void skip_newlines() {
    while (peek().kind == Tok::kNewline) advance();
  }

  bool is_kw(const char* kw, std::size_t off = 0) const {
    const Token& t = peek(off);
    return t.kind == Tok::kIdent && upper(t.text) == kw;
  }
  bool accept_kw(const char* kw) {
    if (!is_kw(kw)) return false;
    advance();
    return true;
  }
  void expect_kw(const char* kw) {
    if (!accept_kw(kw))
      error(std::string("expected keyword '") + kw + "', got '" + peek().text + "'");
  }
  bool accept_punct(char c) {
    if (!peek().is_punct(c)) return false;
    advance();
    return true;
  }
  void expect_punct(char c) {
    if (!accept_punct(c))
      error(std::string("expected '") + c + "', got '" + peek().text + "'");
  }
  std::string expect_ident(const char* what) {
    if (peek().kind != Tok::kIdent) {
      error(std::string("expected ") + what + ", got '" + peek().text + "'");
      return "<error>";
    }
    return advance().text;
  }
  std::int64_t expect_int(const char* what) {
    if (peek().kind != Tok::kInt) {
      error(std::string("expected ") + what + ", got '" + peek().text + "'");
      return 0;
    }
    return advance().value;
  }
  void expect_eol() {
    if (peek().kind == Tok::kNewline) {
      advance();
      return;
    }
    if (peek().kind == Tok::kEnd) return;
    error("unexpected trailing tokens: '" + peek().text + "'");
    sync_to_eol();
  }
  void sync_to_eol() {
    while (peek().kind != Tok::kNewline && peek().kind != Tok::kEnd) advance();
    if (peek().kind == Tok::kNewline) advance();
  }
  void error(std::string msg) {
    result_.diags.push_back({Diag::Severity::kError, peek().line, std::move(msg)});
  }

  // --- grammar -------------------------------------------------------------

  void parse_define() {
    const int line = peek().line;
    expect_kw("DEFINE");
    expect_kw("PHASE");
    PhaseDef def;
    def.line = line;
    def.name = expect_ident("phase name");
    while (peek().kind != Tok::kNewline && peek().kind != Tok::kEnd) {
      if (accept_kw("GRANULES")) {
        expect_punct('=');
        def.granules = static_cast<std::uint32_t>(expect_int("granule count"));
      } else if (accept_kw("LINES")) {
        expect_punct('=');
        def.lines = static_cast<std::uint32_t>(expect_int("line count"));
      } else {
        error("unexpected token in DEFINE PHASE header: '" + peek().text + "'");
        sync_to_eol();
        break;
      }
    }
    expect_eol();

    // Body: READS / WRITES / ENABLE until END.
    while (true) {
      skip_newlines();
      if (at_end()) {
        error("DEFINE PHASE '" + def.name + "' missing END");
        break;
      }
      if (accept_kw("END")) {
        expect_eol();
        break;
      }
      if (is_kw("READS") || is_kw("WRITES")) {
        AccessDecl acc;
        acc.line = peek().line;
        acc.mode = is_kw("READS") ? AccessMode::kRead : AccessMode::kWrite;
        advance();
        acc.array = expect_ident("array name");
        if (accept_kw("INDIRECT")) {
          acc.pattern = IndexPattern::kIndirect;
          acc.map = expect_ident("selection map name");
        } else if (accept_kw("WHOLE")) {
          acc.pattern = IndexPattern::kWhole;
        }
        def.accesses.push_back(std::move(acc));
        expect_eol();
        continue;
      }
      if (accept_kw("ENABLE")) {
        parse_enable_list(def.enables);
        expect_eol();
        continue;
      }
      error("unexpected token in DEFINE PHASE body: '" + peek().text + "'");
      sync_to_eol();
    }
    result_.module.phases.push_back(std::move(def));
  }

  bool parse_mapping_kind(MappingKind& kind, std::string& using_map) {
    const std::string name = upper(expect_ident("mapping kind"));
    if (name == "UNIVERSAL") {
      kind = MappingKind::kUniversal;
    } else if (name == "IDENTITY") {
      kind = MappingKind::kIdentity;
    } else if (name == "NULL" || name == "NONE") {
      kind = MappingKind::kNull;
    } else if (name == "FORWARD") {
      kind = MappingKind::kForwardIndirect;
    } else if (name == "REVERSE") {
      kind = MappingKind::kReverseIndirect;
    } else {
      error("unknown mapping kind '" + name + "'");
      return false;
    }
    if (accept_punct('/')) {
      expect_kw("USING");
      expect_punct('=');
      using_map = expect_ident("indirection binding name");
    }
    return true;
  }

  void parse_enable_list(std::vector<EnableDecl>& out) {
    expect_punct('[');
    while (true) {
      skip_newlines();
      if (accept_punct(']')) break;
      if (at_end()) {
        error("unterminated ENABLE list");
        break;
      }
      EnableDecl decl;
      decl.line = peek().line;
      decl.phase = expect_ident("successor phase name");
      expect_punct('/');
      expect_kw("MAPPING");
      expect_punct('=');
      if (!parse_mapping_kind(decl.kind, decl.using_map)) {
        sync_to_eol();
        return;
      }
      out.push_back(std::move(decl));
      accept_punct(',');  // optional separator
    }
  }

  void parse_statement() {
    if (is_kw("DISPATCH")) return parse_dispatch();
    if (is_kw("SERIAL")) return parse_serial();
    if (is_kw("LET")) return parse_let();
    if (is_kw("IF")) return parse_if();
    if (is_kw("GOTO")) return parse_goto();
    if (is_kw("LABEL")) return parse_label();
    if (is_kw("HALT")) {
      StHalt h{peek().line};
      advance();
      expect_eol();
      result_.module.statements.emplace_back(h);
      return;
    }
    error("unexpected token '" + peek().text + "' at statement start");
    sync_to_eol();
  }

  void parse_dispatch() {
    StDispatch st;
    st.line = peek().line;
    expect_kw("DISPATCH");
    st.phase = expect_ident("phase name");
    if (accept_kw("ENABLE")) {
      if (accept_punct('/')) {
        if (accept_kw("MAPPING")) {
          st.form = EnableForm::kSimple;
          expect_punct('=');
          parse_mapping_kind(st.simple_kind, st.simple_using);
        } else if (accept_kw("BRANCHINDEPENDENT")) {
          st.form = EnableForm::kBranchIndependent;
          parse_enable_list(st.enables);
        } else if (accept_kw("BRANCHDEPENDENT")) {
          st.form = EnableForm::kBranchDependent;
          if (peek().is_punct('[')) parse_enable_list(st.enables);
        } else {
          error("expected MAPPING, BRANCHINDEPENDENT or BRANCHDEPENDENT after "
                "'ENABLE/'");
          sync_to_eol();
          return;
        }
      } else {
        st.form = EnableForm::kList;
        parse_enable_list(st.enables);
      }
    }
    expect_eol();
    result_.module.statements.emplace_back(std::move(st));
  }

  void parse_serial() {
    StSerial st;
    st.line = peek().line;
    expect_kw("SERIAL");
    st.name = expect_ident("serial action name");
    while (peek().kind != Tok::kNewline && peek().kind != Tok::kEnd) {
      if (accept_kw("NOCONFLICT")) {
        st.conflicts = false;
      } else if (accept_kw("CONFLICTS")) {
        st.conflicts = true;
      } else if (accept_kw("DURATION")) {
        expect_punct('=');
        st.duration = static_cast<std::uint64_t>(expect_int("duration"));
      } else if (accept_kw("SET")) {
        const std::string var = expect_ident("variable name");
        expect_punct('=');
        st.sets.emplace_back(var, parse_expr());
      } else {
        error("unexpected token in SERIAL: '" + peek().text + "'");
        sync_to_eol();
        return;
      }
    }
    expect_eol();
    result_.module.statements.emplace_back(std::move(st));
  }

  void parse_let() {
    StLet st;
    st.line = peek().line;
    expect_kw("LET");
    st.var = expect_ident("variable name");
    expect_punct('=');
    st.value = parse_expr();
    expect_eol();
    result_.module.statements.emplace_back(std::move(st));
  }

  void parse_if() {
    StIf st;
    st.line = peek().line;
    expect_kw("IF");
    st.cond = parse_expr();
    expect_kw("GOTO");
    st.label = expect_ident("label name");
    expect_eol();
    result_.module.statements.emplace_back(std::move(st));
  }

  void parse_goto() {
    StGoto st;
    st.line = peek().line;
    expect_kw("GOTO");
    st.label = expect_ident("label name");
    expect_eol();
    result_.module.statements.emplace_back(std::move(st));
  }

  void parse_label() {
    StLabel st;
    st.line = peek().line;
    expect_kw("LABEL");
    st.name = expect_ident("label name");
    expect_eol();
    result_.module.statements.emplace_back(std::move(st));
  }

  // --- expressions (precedence climbing) -----------------------------------

  ExprPtr parse_expr() { return parse_or(); }

  ExprPtr parse_or() {
    ExprPtr lhs = parse_and();
    while (is_kw("OR")) {
      advance();
      lhs = binary(Expr::Op::kOr, lhs, parse_and());
    }
    return lhs;
  }

  ExprPtr parse_and() {
    ExprPtr lhs = parse_cmp();
    while (is_kw("AND")) {
      advance();
      lhs = binary(Expr::Op::kAnd, lhs, parse_cmp());
    }
    return lhs;
  }

  ExprPtr parse_cmp() {
    ExprPtr lhs = parse_add();
    struct {
      const char* text;
      Expr::Op op;
    } ops[] = {{"==", Expr::Op::kEq}, {"!=", Expr::Op::kNe}, {"<=", Expr::Op::kLe},
               {">=", Expr::Op::kGe}, {"<", Expr::Op::kLt},  {">", Expr::Op::kGt}};
    for (const auto& o : ops) {
      if (peek().is_op(o.text)) {
        advance();
        return binary(o.op, lhs, parse_add());
      }
    }
    return lhs;
  }

  ExprPtr parse_add() {
    ExprPtr lhs = parse_mul();
    while (peek().is_op("+") || peek().is_op("-")) {
      const bool add = peek().is_op("+");
      advance();
      lhs = binary(add ? Expr::Op::kAdd : Expr::Op::kSub, lhs, parse_mul());
    }
    return lhs;
  }

  ExprPtr parse_mul() {
    ExprPtr lhs = parse_unary();
    while (peek().is_op("*") || peek().is_op("%")) {
      const bool mul = peek().is_op("*");
      advance();
      lhs = binary(mul ? Expr::Op::kMul : Expr::Op::kMod, lhs, parse_unary());
    }
    return lhs;
  }

  ExprPtr parse_unary() {
    if (peek().is_op("-")) {
      advance();
      return unary(Expr::Op::kNeg, parse_unary());
    }
    if (peek().is_op("!")) {
      advance();
      return unary(Expr::Op::kNot, parse_unary());
    }
    return parse_primary();
  }

  ExprPtr parse_primary() {
    if (peek().kind == Tok::kInt) {
      auto e = std::make_shared<Expr>();
      e->op = Expr::Op::kLiteral;
      e->literal = advance().value;
      return e;
    }
    if (accept_punct('(')) {
      ExprPtr e = parse_expr();
      expect_punct(')');
      return e;
    }
    if (is_kw("IMOD")) {
      // Fortran flavour from the paper: IMOD(a, b) == a % b.
      advance();
      expect_punct('(');
      ExprPtr a = parse_expr();
      expect_punct(',');
      ExprPtr b = parse_expr();
      expect_punct(')');
      return binary(Expr::Op::kMod, a, b);
    }
    if (peek().kind == Tok::kIdent) {
      auto e = std::make_shared<Expr>();
      e->op = Expr::Op::kVar;
      e->var = advance().text;
      return e;
    }
    error("expected expression, got '" + peek().text + "'");
    auto e = std::make_shared<Expr>();
    e->op = Expr::Op::kLiteral;
    return e;
  }

  static ExprPtr binary(Expr::Op op, const ExprPtr& a, const ExprPtr& b) {
    auto e = std::make_shared<Expr>();
    e->op = op;
    e->kids.push_back(*a);
    e->kids.push_back(*b);
    return e;
  }
  static ExprPtr unary(Expr::Op op, const ExprPtr& a) {
    auto e = std::make_shared<Expr>();
    e->op = op;
    e->kids.push_back(*a);
    return e;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  ParseResult result_;
};

}  // namespace

ParseResult parse(std::string_view source) {
  Parser p(lex(source));
  return p.run();
}

}  // namespace pax::lang
