// validator.hpp — static checking of PAX language modules.
//
// Implements the interlock the paper motivates: "There is no interlock
// between this phase and the next that can be verified by the executive. A
// simple solution to this would be to identify the name of the enabled next
// phase so that the executive system (or language processor) can verify
// that, in fact, that phase is following."
//
// Checks:
//   * phase definitions well-formed, names unique, references resolve;
//   * labels unique and resolved; a HALT exists;
//   * every ENABLE clause names a phase that can actually follow the
//     dispatch (through serial actions and both arms of branches);
//   * the requested mapping kind is legal given the phases' declared data
//     accesses (via pax::infer_mapping) and any conflicting serial action on
//     the path;
//   * the unverified simple form (ENABLE/MAPPING=...) warns, and its implied
//     successor must be unique;
//   * indirect mappings carry a USING binding name.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lang/ast.hpp"
#include "lang/token.hpp"

namespace pax::lang {

/// A phase that can be dispatched next after a given statement.
struct SuccessorInfo {
  std::string phase;
  /// True when at least one path reaches it without crossing a *conflicting*
  /// serial action (NOCONFLICT serial actions are transparent, matching the
  /// executive's early-serial lookahead).
  bool clean_path = false;
};

/// All phases reachable as the next dispatch after statements[index].
[[nodiscard]] std::vector<SuccessorInfo> successors_of(const Module& m,
                                                       std::size_t index);

/// Run all validations; diagnostics are appended in statement order.
[[nodiscard]] std::vector<Diag> validate(const Module& m);

}  // namespace pax::lang
