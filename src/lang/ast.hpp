// ast.hpp — abstract syntax of the PAX parallel control language.
//
// Surface forms mirror the constructs proposed in the paper's "Language
// Construction" section:
//
//   DISPATCH phase ENABLE/MAPPING=option                      (simple form)
//   DISPATCH phase ENABLE [name/MAPPING=option ...]           (verified form)
//   DISPATCH phase ENABLE/BRANCHINDEPENDENT [a/... b/...]     (preprocessable)
//   DEFINE PHASE name ... ENABLE [...] END
//   DISPATCH phase ENABLE/BRANCHDEPENDENT                     (use DEFINE list)
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "core/phase.hpp"
#include "core/program.hpp"

namespace pax::lang {

// --- integer expressions over the program environment ----------------------

struct Expr {
  enum class Op : std::uint8_t {
    kLiteral, kVar,
    kAdd, kSub, kMul, kDiv, kMod,
    kEq, kNe, kLt, kLe, kGt, kGe,
    kAnd, kOr, kNeg, kNot,
  };
  Op op = Op::kLiteral;
  std::int64_t literal = 0;
  std::string var;
  std::vector<Expr> kids;

  [[nodiscard]] std::int64_t eval(const ProgramEnv& env) const;
};

using ExprPtr = std::shared_ptr<const Expr>;

// --- declarations -----------------------------------------------------------

struct AccessDecl {
  std::string array;
  AccessMode mode = AccessMode::kRead;
  IndexPattern pattern = IndexPattern::kIdentity;
  std::string map;  // for kIndirect
  int line = 0;
};

struct EnableDecl {
  std::string phase;
  MappingKind kind = MappingKind::kNull;
  std::string using_map;  // indirection binding name for indirect kinds
  int line = 0;
};

struct PhaseDef {
  std::string name;
  std::uint32_t granules = 0;
  std::uint32_t lines = 0;  // the paper's "lines of code executed in parallel"
  std::vector<AccessDecl> accesses;
  std::vector<EnableDecl> enables;  // DEFINE-time ENABLE list
  int line = 0;
};

// --- statements --------------------------------------------------------------

enum class EnableForm : std::uint8_t {
  kNone,               ///< bare DISPATCH
  kSimple,             ///< ENABLE/MAPPING=option (no interlock)
  kList,               ///< ENABLE [name/MAPPING=option ...]
  kBranchIndependent,  ///< ENABLE/BRANCHINDEPENDENT [...]
  kBranchDependent,    ///< ENABLE/BRANCHDEPENDENT — defer to DEFINE list
};

struct StDispatch {
  std::string phase;
  EnableForm form = EnableForm::kNone;
  MappingKind simple_kind = MappingKind::kNull;  // for kSimple
  std::string simple_using;                      // for kSimple indirect kinds
  std::vector<EnableDecl> enables;               // for kList/kBranchIndependent
  int line = 0;
};

struct StSerial {
  std::string name;
  bool conflicts = true;         // NOCONFLICT clears this
  std::uint64_t duration = 0;    // DURATION=n (simulated ticks)
  std::vector<std::pair<std::string, ExprPtr>> sets;  // SET var = expr
  int line = 0;
};

struct StLet {
  std::string var;
  ExprPtr value;
  int line = 0;
};

struct StIf {
  ExprPtr cond;
  std::string label;
  int line = 0;
};

struct StGoto {
  std::string label;
  int line = 0;
};

struct StLabel {
  std::string name;
  int line = 0;
};

struct StHalt {
  int line = 0;
};

using Statement =
    std::variant<StDispatch, StSerial, StLet, StIf, StGoto, StLabel, StHalt>;

struct Module {
  std::vector<PhaseDef> phases;
  std::vector<Statement> statements;

  [[nodiscard]] const PhaseDef* phase(const std::string& name) const {
    for (const auto& p : phases)
      if (p.name == name) return &p;
    return nullptr;
  }
};

[[nodiscard]] int statement_line(const Statement& s);

}  // namespace pax::lang
