#include "lang/ast.hpp"

#include "common/check.hpp"

namespace pax::lang {

std::int64_t Expr::eval(const ProgramEnv& env) const {
  switch (op) {
    case Op::kLiteral: return literal;
    case Op::kVar: return env.get(var);
    case Op::kNeg: return -kids[0].eval(env);
    case Op::kNot: return kids[0].eval(env) == 0 ? 1 : 0;
    default: break;
  }
  const std::int64_t a = kids[0].eval(env);
  const std::int64_t b = kids[1].eval(env);
  switch (op) {
    case Op::kAdd: return a + b;
    case Op::kSub: return a - b;
    case Op::kMul: return a * b;
    case Op::kDiv: return b == 0 ? 0 : a / b;
    case Op::kMod: return b == 0 ? 0 : a % b;
    case Op::kEq: return a == b;
    case Op::kNe: return a != b;
    case Op::kLt: return a < b;
    case Op::kLe: return a <= b;
    case Op::kGt: return a > b;
    case Op::kGe: return a >= b;
    case Op::kAnd: return (a != 0 && b != 0) ? 1 : 0;
    case Op::kOr: return (a != 0 || b != 0) ? 1 : 0;
    default: PAX_CHECK(false); return 0;
  }
}

int statement_line(const Statement& s) {
  return std::visit([](const auto& st) { return st.line; }, s);
}

}  // namespace pax::lang
