// lexer.hpp — tokenizer for the PAX language.
//
// Line-oriented: newlines terminate statements (kNewline tokens). Comments
// run from '#' or '--' to end of line. Identifiers are case-preserving but
// keywords are recognised case-insensitively by the parser.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "lang/token.hpp"

namespace pax::lang {

struct LexResult {
  std::vector<Token> tokens;  // always terminated by a kEnd token
  std::vector<Diag> diags;
};

[[nodiscard]] LexResult lex(std::string_view source);

}  // namespace pax::lang
