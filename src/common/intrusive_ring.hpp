// intrusive_ring.hpp — intrusive double circularly-linked list.
//
// This is the exact structure the paper describes for PAX conflict queues:
// "each internal description of one (or more) computational granules included
// a queue head for a double circularly-linked list of computable but
// conflicting computational granules."
//
// The ring owns nothing; nodes are embedded in the objects they link
// (RingHook members).  A detached hook links to itself, so unlink is
// unconditional and O(1).
#pragma once

#include <cstddef>

#include "common/check.hpp"

namespace pax {

/// Embedded link node. An object participates in one ring per hook member.
struct RingHook {
  RingHook* prev = nullptr;
  RingHook* next = nullptr;

  RingHook() { reset(); }
  RingHook(const RingHook&) = delete;
  RingHook& operator=(const RingHook&) = delete;
  ~RingHook() { PAX_DCHECK(!linked()); }

  void reset() {
    prev = this;
    next = this;
  }

  [[nodiscard]] bool linked() const { return next != this; }

  /// Remove from whatever ring this hook is in. Safe on a detached hook.
  void unlink() {
    prev->next = next;
    next->prev = prev;
    reset();
  }
};

/// A ring anchored at a sentinel head. `Owner` is the object type containing
/// the hook; `Member` is a pointer-to-member locating the hook inside it.
template <typename Owner, RingHook Owner::* Member>
class IntrusiveRing {
 public:
  IntrusiveRing() = default;
  IntrusiveRing(const IntrusiveRing&) = delete;
  IntrusiveRing& operator=(const IntrusiveRing&) = delete;
  ~IntrusiveRing() { PAX_DCHECK(empty()); }

  [[nodiscard]] bool empty() const { return !head_.linked(); }

  [[nodiscard]] std::size_t size() const {
    std::size_t n = 0;
    for (const RingHook* h = head_.next; h != &head_; h = h->next) ++n;
    return n;
  }

  void push_back(Owner& o) {
    RingHook& h = o.*Member;
    PAX_DCHECK(!h.linked());
    h.prev = head_.prev;
    h.next = &head_;
    head_.prev->next = &h;
    head_.prev = &h;
  }

  void push_front(Owner& o) {
    RingHook& h = o.*Member;
    PAX_DCHECK(!h.linked());
    h.next = head_.next;
    h.prev = &head_;
    head_.next->prev = &h;
    head_.next = &h;
  }

  [[nodiscard]] Owner* front() const {
    return empty() ? nullptr : owner_of(head_.next);
  }

  [[nodiscard]] Owner* back() const {
    return empty() ? nullptr : owner_of(head_.prev);
  }

  /// Detach and return the first element, or nullptr when empty.
  Owner* pop_front() {
    if (empty()) return nullptr;
    Owner* o = owner_of(head_.next);
    (o->*Member).unlink();
    return o;
  }

  static void remove(Owner& o) { (o.*Member).unlink(); }

  /// Insert `o` immediately before `pos` (which must be linked in this ring).
  static void insert_before(Owner& pos, Owner& o) {
    RingHook& p = pos.*Member;
    RingHook& h = o.*Member;
    PAX_DCHECK(p.linked());
    PAX_DCHECK(!h.linked());
    h.prev = p.prev;
    h.next = &p;
    p.prev->next = &h;
    p.prev = &h;
  }

  /// Insert `o` immediately after `pos` (which must be linked in this ring).
  static void insert_after(Owner& pos, Owner& o) {
    RingHook& p = pos.*Member;
    RingHook& h = o.*Member;
    PAX_DCHECK(p.linked());
    PAX_DCHECK(!h.linked());
    h.next = p.next;
    h.prev = &p;
    p.next->prev = &h;
    p.next = &h;
  }

  [[nodiscard]] static bool is_linked(const Owner& o) { return (o.*Member).linked(); }

  /// Splice every element of `other` onto the back of this ring.
  void splice_back(IntrusiveRing& other) {
    if (other.empty()) return;
    RingHook* first = other.head_.next;
    RingHook* last = other.head_.prev;
    other.head_.reset();
    first->prev = head_.prev;
    head_.prev->next = first;
    last->next = &head_;
    head_.prev = last;
  }

  /// Visit elements in order. The callback may unlink the element it is
  /// given (the iteration saves `next` first) but must not unlink others.
  template <typename Fn>
  void for_each(Fn&& fn) {
    RingHook* h = head_.next;
    while (h != &head_) {
      RingHook* next = h->next;
      fn(*owner_of(h));
      h = next;
    }
  }

  /// Drain the ring front-to-back, detaching each element before the
  /// callback sees it.
  template <typename Fn>
  void drain(Fn&& fn) {
    while (Owner* o = pop_front()) fn(*o);
  }

 private:
  static Owner* owner_of(RingHook* h) {
    // Standard container_of: hook address minus member offset.
    const auto offset = reinterpret_cast<std::ptrdiff_t>(
        &(static_cast<Owner*>(nullptr)->*Member));
    return reinterpret_cast<Owner*>(reinterpret_cast<char*>(h) - offset);
  }
  static const Owner* owner_of(const RingHook* h) {
    return owner_of(const_cast<RingHook*>(h));
  }

  RingHook head_;
};

}  // namespace pax
