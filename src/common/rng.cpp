#include "common/rng.hpp"

#include <cmath>

namespace pax {

double Rng::exponential(double mean) {
  // Guard against log(0); uniform01() < 1 so 1-u > 0 already, but be explicit.
  double u = uniform01();
  if (u >= 1.0) u = 0.9999999999999999;
  return -mean * std::log1p(-u);
}

double Rng::normal(double mu, double sigma) {
  // Marsaglia polar method; no cached spare to keep the generator stateless
  // with respect to distribution calls (simplifies reproducibility reasoning).
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  return mu + sigma * u * std::sqrt(-2.0 * std::log(s) / s);
}

}  // namespace pax
