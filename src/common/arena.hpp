// arena.hpp — the control plane's memory discipline (DESIGN.md §10).
//
// The paper's rundown analysis says utilization dies when per-granule
// management cost grows relative to shrinking task cost, and the
// work-inflation line of Acar et al. locates much of that inflation in
// allocator traffic inside the scheduler. The executive therefore keeps its
// steady-state hot path off the general-purpose heap:
//
//   * MonotonicArena — chunked bump allocation with stable addresses. Chunks
//     are never returned while the arena lives; reset() rewinds the cursor
//     and reuses them.
//   * Slab<T> — a typed object slab on top of an arena: acquire() hands out
//     a default-constructed object (placement-new into arena storage) or
//     *recycles* a release()d one. Recycled objects are handed back without
//     being destroyed, so their internal buffers (vectors, range sets) keep
//     the capacity they grew during previous use — the caller resets logical
//     state, the allocator work is never repeated.
//
// The executive's Run/Edge/SplitTask/CachedMap/CompositeGranuleMap records
// live on slabs; ExecWorkspace (executive.hpp) holds the cleared-not-freed
// scratch vectors. What remains allowed to allocate is enumerated in
// DESIGN.md §10 and policed by tests/test_alloc.cpp via alloc_stats.hpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

#include "common/check.hpp"

namespace pax {

/// Chunked monotonic (bump) arena. Allocations are raw storage — callers
/// placement-new into it — with stable addresses for the arena's lifetime.
/// reset() rewinds to empty but keeps every chunk for reuse, so a warmed
/// arena services the same allocation pattern with zero heap traffic.
class MonotonicArena {
 public:
  explicit MonotonicArena(std::size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes) {
    PAX_CHECK_MSG(chunk_bytes_ > 0, "arena chunk size must be positive");
  }

  MonotonicArena(const MonotonicArena&) = delete;
  MonotonicArena& operator=(const MonotonicArena&) = delete;

  /// Bump-allocate `size` bytes at `align`. Oversized requests get a
  /// dedicated chunk; normal requests fill the current chunk and roll over.
  void* allocate(std::size_t size, std::size_t align) {
    PAX_CHECK_MSG(size > 0 && align > 0 && (align & (align - 1)) == 0,
                  "arena allocation needs positive size and power-of-two align");
    while (cur_ < chunks_.size()) {
      Chunk& c = chunks_[cur_];
      const std::size_t at = align_up(off_, align, c.data.get());
      if (at + size <= c.size) {
        off_ = at + size;
        return c.data.get() + at;
      }
      ++cur_;
      off_ = 0;
    }
    // No chunk fits: grow by one (sized up for oversized requests).
    const std::size_t want = size + align;
    const std::size_t chunk = want > chunk_bytes_ ? want : chunk_bytes_;
    chunks_.push_back(Chunk{std::make_unique<std::byte[]>(chunk), chunk});
    bytes_reserved_ += chunk;
    cur_ = chunks_.size() - 1;
    const std::size_t at = align_up(0, align, chunks_.back().data.get());
    off_ = at + size;
    return chunks_.back().data.get() + at;
  }

  /// Rewind to empty, keeping every chunk. Only valid when nothing
  /// placement-constructed in the arena is still alive.
  void reset() {
    cur_ = 0;
    off_ = 0;
  }

  [[nodiscard]] std::size_t chunk_count() const { return chunks_.size(); }
  [[nodiscard]] std::size_t bytes_reserved() const { return bytes_reserved_; }

  static constexpr std::size_t kDefaultChunkBytes = 16 * 1024;

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  static std::size_t align_up(std::size_t off, std::size_t align,
                              const std::byte* base) {
    const auto addr = reinterpret_cast<std::uintptr_t>(base) + off;
    const std::uintptr_t aligned = (addr + align - 1) & ~(align - 1);
    return off + static_cast<std::size_t>(aligned - addr);
  }

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t cur_ = 0;   ///< chunk currently bump-allocating
  std::size_t off_ = 0;   ///< byte offset into that chunk
  std::size_t bytes_reserved_ = 0;
};

/// Typed freelist slab over a MonotonicArena. Objects have stable addresses
/// for the slab's lifetime. acquire() pops the freelist when possible;
/// CRUCIALLY the recycled object is handed back *as last released* — it is
/// not destroyed and reconstructed — so internal buffers keep their grown
/// capacity. The caller owns resetting logical state on reuse. The slab's
/// destructor destroys every object it ever constructed.
template <typename T>
class Slab {
 public:
  explicit Slab(std::size_t chunk_bytes = MonotonicArena::kDefaultChunkBytes)
      : arena_(chunk_bytes) {}

  Slab(const Slab&) = delete;
  Slab& operator=(const Slab&) = delete;

  ~Slab() {
    for (T* p : all_) p->~T();
  }

  /// A fresh default-constructed object, or a recycled one (state untouched
  /// since release — reset it).
  T& acquire() {
    static_assert(std::is_default_constructible_v<T>,
                  "Slab<T> default-constructs slots; reset state on acquire");
    ++live_;
    if (!free_.empty()) {
      T* p = free_.back();
      free_.pop_back();
      return *p;
    }
    void* raw = arena_.allocate(sizeof(T), alignof(T));
    T* p = new (raw) T();
    all_.push_back(p);
    return *p;
  }

  /// Park `obj` for reuse. It must have come from this slab and must not be
  /// referenced afterwards (until re-acquired).
  void release(T& obj) {
    PAX_DCHECK(live_ > 0);
    --live_;
    free_.push_back(&obj);
  }

  /// Objects ever constructed (== distinct addresses handed out).
  [[nodiscard]] std::size_t created() const { return all_.size(); }
  /// Objects currently acquired.
  [[nodiscard]] std::size_t live() const { return live_; }
  [[nodiscard]] std::size_t free_count() const { return free_.size(); }

 private:
  MonotonicArena arena_;
  std::vector<T*> all_;
  std::vector<T*> free_;
  std::size_t live_ = 0;
};

}  // namespace pax
