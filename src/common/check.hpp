// check.hpp — lightweight invariant checking used throughout the PAX library.
//
// PAX_CHECK is always on (scheduler integrity bugs must never be silent);
// PAX_DCHECK compiles out in NDEBUG builds and guards hot-path assertions.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace pax::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const char* msg) {
  std::fprintf(stderr, "PAX_CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace pax::detail

#define PAX_CHECK(expr)                                                \
  do {                                                                 \
    if (!(expr)) ::pax::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define PAX_CHECK_MSG(expr, msg)                                       \
  do {                                                                 \
    if (!(expr)) ::pax::detail::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define PAX_DCHECK(expr) \
  do {                   \
  } while (0)
#else
#define PAX_DCHECK(expr) PAX_CHECK(expr)
#endif
