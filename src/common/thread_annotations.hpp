// thread_annotations.hpp — Clang Thread Safety Analysis capability macros.
//
// The concurrency discipline of this codebase (DESIGN.md §11) is encoded in
// the type system: every mutex is a declared *capability*, every field it
// protects is PAX_GUARDED_BY it, and every function that assumes a lock is
// held says so with PAX_REQUIRES. Under Clang the annotations turn the
// informal "the executive protects the census" invariant into a compile-time
// proof obligation checked by `-Wthread-safety -Werror` (the CI `lint` job);
// under GCC and MSVC they expand to nothing, so the annotated tree builds
// everywhere the unannotated tree did.
//
// Conventions:
//   * Annotate the *declaration*, after the declarator:
//       std::vector<Ticket> deposits PAX_GUARDED_BY(mu);
//       void sweep_locked(...) PAX_REQUIRES(control_mu_);
//   * Lock scopes use the annotated guards in common/lock_rank.hpp
//     (RankedLock / RankedUniqueLock), NOT std::scoped_lock — libstdc++'s
//     guards carry no annotations, so the analysis cannot see through them.
//   * PAX_NO_THREAD_SAFETY_ANALYSIS is a last resort and every use requires
//     an adjacent `// SAFETY:` comment stating the out-of-band reason the
//     access is race-free (quiescence, constancy after construction, ...).
#pragma once

// Clang >= 3.5 spells these as [[clang::...]]-style GNU attributes guarded by
// __has_attribute; anything else gets no-ops. The capability variants
// (`capability`, `acquire_capability`, ...) subsume the older lockable/
// exclusive_lock_function spellings on every Clang new enough to matter.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define PAX_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef PAX_THREAD_ANNOTATION
#define PAX_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

/// Declares a type to be a capability (e.g. "mutex"). Required on any type
/// used as the argument of the annotations below.
#define PAX_CAPABILITY(x) PAX_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type that acquires a capability at construction and
/// releases it at destruction (our RankedLock / RankedUniqueLock).
#define PAX_SCOPED_CAPABILITY PAX_THREAD_ANNOTATION(scoped_lockable)

/// Data members: reading or writing requires holding the named capability.
#define PAX_GUARDED_BY(x) PAX_THREAD_ANNOTATION(guarded_by(x))

/// Pointer members: dereferencing the pointee requires the capability (the
/// pointer itself is not guarded).
#define PAX_PT_GUARDED_BY(x) PAX_THREAD_ANNOTATION(pt_guarded_by(x))

/// Functions: the caller must hold the capability (and still does on return).
#define PAX_REQUIRES(...) \
  PAX_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Functions: the caller must NOT hold the capability (deadlock prevention
/// on self-locking entry points).
#define PAX_EXCLUDES(...) PAX_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Functions that acquire / release a capability (mutex lock/unlock methods
/// and the ctor/dtor of scoped capabilities).
#define PAX_ACQUIRE(...) \
  PAX_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define PAX_RELEASE(...) \
  PAX_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define PAX_TRY_ACQUIRE(...) \
  PAX_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Functions returning a reference to a guarded field.
#define PAX_RETURN_CAPABILITY(x) PAX_THREAD_ANNOTATION(lock_returned(x))

/// Assert (to the analysis, not at runtime) that the capability is held —
/// for callbacks invoked only from inside a locked region.
#define PAX_ASSERT_CAPABILITY(x) \
  PAX_THREAD_ANNOTATION(assert_capability(x))

/// Opt a function out of the analysis entirely. Requires a `// SAFETY:`
/// comment at the use site.
#define PAX_NO_THREAD_SAFETY_ANALYSIS \
  PAX_THREAD_ANNOTATION(no_thread_safety_analysis)
