// csr.hpp — compact compressed-sparse-row adjacency used by composite
// granule maps (current granule -> successor granules it helps enable).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace pax {

template <typename V>
class Csr {
 public:
  Csr() = default;

  /// Build from (row, value) pairs; rows indexed [0, row_count).
  static Csr from_pairs(std::size_t row_count,
                        std::vector<std::pair<std::uint32_t, V>> pairs) {
    Csr out;
    out.offsets_.assign(row_count + 1, 0);
    for (const auto& [r, v] : pairs) {
      PAX_DCHECK(r < row_count);
      ++out.offsets_[r + 1];
    }
    for (std::size_t i = 1; i <= row_count; ++i) out.offsets_[i] += out.offsets_[i - 1];
    out.values_.resize(pairs.size());
    std::vector<std::uint32_t> cursor(out.offsets_.begin(), out.offsets_.end() - 1);
    for (const auto& [r, v] : pairs) out.values_[cursor[r]++] = v;
    return out;
  }

  [[nodiscard]] std::size_t rows() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  [[nodiscard]] std::size_t entries() const { return values_.size(); }

  [[nodiscard]] std::span<const V> operator[](std::size_t row) const {
    PAX_DCHECK(row + 1 < offsets_.size());
    return {values_.data() + offsets_[row], values_.data() + offsets_[row + 1]};
  }

  [[nodiscard]] bool row_empty(std::size_t row) const {
    return offsets_[row] == offsets_[row + 1];
  }

 private:
  std::vector<std::uint32_t> offsets_;
  std::vector<V> values_;
};

}  // namespace pax
