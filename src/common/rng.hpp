// rng.hpp — deterministic, splittable random source.
//
// Every stochastic element of the workloads (task durations, IMAP contents,
// conditional-execution coin flips) draws from a SplitMix64-seeded xoshiro256**
// stream so that a (seed, config) pair reproduces a simulation bit-for-bit.
#pragma once

#include <cstdint>

namespace pax {

/// SplitMix64 — used for seeding and cheap hashing.
inline constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** by Blackman & Vigna — fast, high-quality, trivially copyable.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Derive an independent stream (for per-phase / per-worker RNGs).
  [[nodiscard]] Rng split(std::uint64_t salt) {
    std::uint64_t sm = (*this)() ^ (salt * 0xD1B54A32D192ED03ULL);
    Rng child(0);
    for (auto& w : child.s_) w = splitmix64(sm);
    return child;
  }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) {
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

  /// Bernoulli trial.
  bool chance(double p) { return uniform01() < p; }

  /// Exponential with the given mean (inverse-CDF method).
  double exponential(double mean);

  /// Standard normal via Marsaglia polar method.
  double normal(double mu, double sigma);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace pax
