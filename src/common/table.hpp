// table.hpp — aligned plain-text table printer.
//
// Every bench binary regenerates one of the paper's tables/figures as rows of
// text; this gives them a common, diff-friendly rendering.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace pax {

class Table {
 public:
  explicit Table(std::string title = {}) : title_(std::move(title)) {}

  /// Set the header row. Column count is fixed by this call.
  Table& header(std::vector<std::string> cells);

  /// Append a data row; must match the header arity (checked).
  Table& row(std::vector<std::string> cells);

  /// Append a horizontal separator between row groups.
  Table& separator();

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Render with column alignment: first column left, the rest right.
  [[nodiscard]] std::string render() const;

  void print(std::ostream& os) const;

  // Cell formatting helpers.
  static std::string num(double v, int precision = 2);
  static std::string pct(double fraction, int precision = 1);
  static std::string count(std::uint64_t v);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty vector == separator
};

}  // namespace pax
