// alloc_stats.hpp — opt-in heap-traffic instrumentation.
//
// The allocation-free control plane (DESIGN.md §10) is a *measured* claim,
// not a style rule: bench_t10_alloc gates steady-state heap allocations per
// granule and tests/test_alloc.cpp asserts a warm executive cycle performs
// ZERO allocations. Both need to observe the global allocator without
// perturbing production binaries, so the counting operator new/delete
// replacements live behind a macro: exactly one translation unit of an
// instrumented binary defines PAX_ALLOC_STATS_IMPLEMENT before including
// this header, which emits the (non-inline, per [replacement.functions])
// replacement definitions into that TU. Binaries that never define the
// macro link no hooks; the counters below read zero and active() is false.
//
// Counting is double-tracked:
//   * thread-local counters — exact scoped measurement on one thread
//     (ThreadScope), used by the deterministic zero-allocation tests;
//   * process-global relaxed atomics — aggregate allocs/bytes across worker
//     threads, sampled by the runtimes into RtResult/PoolStats/SimResult
//     heap fields for the bench reports.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace pax {

/// Plain-value allocator-traffic snapshot (global or per-thread).
struct AllocTotals {
  std::uint64_t allocs = 0;  ///< operator-new calls
  std::uint64_t frees = 0;   ///< operator-delete calls (non-null)
  std::uint64_t bytes = 0;   ///< bytes requested from operator new
};

namespace alloc_stats {

// All counters relaxed: they are pure sums read for reporting — no reader
// infers anything about *other* memory from a counter value, so no ordering
// is bought and none is paid for (these sit on the global new/delete path).
inline std::atomic<std::uint64_t> g_allocs{0};
inline std::atomic<std::uint64_t> g_frees{0};
inline std::atomic<std::uint64_t> g_bytes{0};
/// Set by the TU that implements the hooks (static initializer), so library
/// code can report honest zeros instead of claiming an unmeasured binary is
/// allocation-free.
inline std::atomic<bool> g_installed{false};

struct ThreadCounters {
  std::uint64_t allocs = 0;
  std::uint64_t frees = 0;
  std::uint64_t bytes = 0;
};
inline thread_local ThreadCounters tl_counters;

/// Are the counting hooks linked into this binary?
inline bool active() { return g_installed.load(std::memory_order_relaxed); }

/// Process-wide totals since start (all threads). Zero when !active().
inline AllocTotals totals() {
  return {g_allocs.load(std::memory_order_relaxed),
          g_frees.load(std::memory_order_relaxed),
          g_bytes.load(std::memory_order_relaxed)};
}

/// This thread's totals since thread start. Zero when !active().
inline AllocTotals thread_totals() {
  return {tl_counters.allocs, tl_counters.frees, tl_counters.bytes};
}

inline AllocTotals delta(const AllocTotals& from, const AllocTotals& to) {
  return {to.allocs - from.allocs, to.frees - from.frees, to.bytes - from.bytes};
}

/// Scoped measurement of the *current thread's* allocator traffic.
class ThreadScope {
 public:
  ThreadScope() : t0_(thread_totals()) {}
  [[nodiscard]] AllocTotals so_far() const { return delta(t0_, thread_totals()); }

 private:
  AllocTotals t0_;
};

/// Called by the hooks; exposed so tests can sanity-check the counting path.
inline void note_alloc(std::size_t bytes) {
  tl_counters.allocs += 1;
  tl_counters.bytes += bytes;
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(bytes, std::memory_order_relaxed);
}
inline void note_free() {
  tl_counters.frees += 1;
  g_frees.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace alloc_stats
}  // namespace pax

// ---------------------------------------------------------------------------
// Replacement allocation functions — one TU per instrumented binary defines
// PAX_ALLOC_STATS_IMPLEMENT before including this header. The replacements
// must not be inline ([replacement.functions]/3), hence the macro gate
// instead of inline definitions.
#ifdef PAX_ALLOC_STATS_IMPLEMENT

#include <cstdlib>
#include <new>

namespace pax::alloc_stats::detail {
[[maybe_unused]] inline const bool installer = [] {
  g_installed.store(true, std::memory_order_relaxed);
  return true;
}();

inline void* counted_alloc(std::size_t n) {
  void* p = std::malloc(n ? n : 1);
  if (p == nullptr) throw std::bad_alloc{};
  note_alloc(n);
  return p;
}

inline void* counted_aligned_alloc(std::size_t n, std::size_t align) {
  // aligned_alloc requires the size to be a multiple of the alignment.
  const std::size_t rounded = (n + align - 1) / align * align;
  void* p = std::aligned_alloc(align, rounded ? rounded : align);
  if (p == nullptr) throw std::bad_alloc{};
  note_alloc(n);
  return p;
}
}  // namespace pax::alloc_stats::detail

void* operator new(std::size_t n) { return pax::alloc_stats::detail::counted_alloc(n); }
void* operator new[](std::size_t n) { return pax::alloc_stats::detail::counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  return pax::alloc_stats::detail::counted_aligned_alloc(
      n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return pax::alloc_stats::detail::counted_aligned_alloc(
      n, static_cast<std::size_t>(a));
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  void* p = std::malloc(n ? n : 1);
  if (p != nullptr) pax::alloc_stats::note_alloc(n);
  return p;
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  void* p = std::malloc(n ? n : 1);
  if (p != nullptr) pax::alloc_stats::note_alloc(n);
  return p;
}

void operator delete(void* p) noexcept {
  if (p == nullptr) return;
  pax::alloc_stats::note_free();
  std::free(p);
}
void operator delete[](void* p) noexcept {
  if (p == nullptr) return;
  pax::alloc_stats::note_free();
  std::free(p);
}
void operator delete(void* p, std::size_t) noexcept { operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept { operator delete[](p); }
void operator delete(void* p, std::align_val_t) noexcept { operator delete(p); }
void operator delete[](void* p, std::align_val_t) noexcept { operator delete[](p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  operator delete(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  operator delete[](p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { operator delete(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  operator delete[](p);
}

#endif  // PAX_ALLOC_STATS_IMPLEMENT
