#include "common/table.hpp"

#include <algorithm>
#include <cstdint>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace pax {

Table& Table::header(std::vector<std::string> cells) {
  PAX_CHECK_MSG(header_.empty(), "header set twice");
  header_ = std::move(cells);
  return *this;
}

Table& Table::row(std::vector<std::string> cells) {
  PAX_CHECK_MSG(!header_.empty(), "header must be set before rows");
  PAX_CHECK_MSG(cells.size() == header_.size(), "row arity mismatch");
  rows_.push_back(std::move(cells));
  return *this;
}

Table& Table::separator() {
  rows_.emplace_back();
  return *this;
}

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i)
      widths[i] = std::max(widths[i], cells[i].size());
  };
  widen(header_);
  for (const auto& r : rows_)
    if (!r.empty()) widen(r);

  std::ostringstream os;
  if (!title_.empty()) os << "== " << title_ << " ==\n";

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) os << "  ";
      if (i == 0) {
        os << cells[i] << std::string(widths[i] - cells[i].size(), ' ');
      } else {
        os << std::string(widths[i] - cells[i].size(), ' ') << cells[i];
      }
    }
    os << '\n';
  };
  auto rule = [&] {
    std::size_t total = 0;
    for (auto w : widths) total += w;
    total += 2 * (widths.size() - 1);
    os << std::string(total, '-') << '\n';
  };

  emit(header_);
  rule();
  for (const auto& r : rows_) {
    if (r.empty()) {
      rule();
    } else {
      emit(r);
    }
  }
  return os.str();
}

void Table::print(std::ostream& os) const { os << render(); }

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string Table::pct(double fraction, int precision) {
  return num(fraction * 100.0, precision) + "%";
}

std::string Table::count(std::uint64_t v) {
  // Group digits with thin separators for readability: 524288 -> 524,288.
  std::string raw = std::to_string(v);
  std::string out;
  out.reserve(raw.size() + raw.size() / 3);
  std::size_t lead = raw.size() % 3;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (i != 0 && (i + 3 - lead) % 3 == 0) out += ',';
    out += raw[i];
  }
  return out;
}

}  // namespace pax
