#include "common/stats.hpp"

#include <array>
#include <numeric>

namespace pax {

double Histogram::quantile(double q) const {
  const std::uint64_t total = acc_.count();
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);
  double running = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = running + static_cast<double>(counts_[i]);
    if (next >= target) {
      const double frac =
          counts_[i] ? (target - running) / static_cast<double>(counts_[i]) : 0.0;
      return bucket_lo(i) + frac * width();
    }
    running = next;
  }
  return hi_;
}

std::string Histogram::sparkline() const {
  static constexpr std::array<const char*, 9> kBars = {
      " ", "▁", "▂", "▃", "▄",
      "▅", "▆", "▇", "█"};
  std::uint64_t peak = 0;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  out.reserve(counts_.size() * 3);
  for (auto c : counts_) {
    const std::size_t level =
        peak == 0 ? 0
                  : static_cast<std::size_t>(
                        (static_cast<double>(c) / static_cast<double>(peak)) * 8.0);
    out += kBars[std::min<std::size_t>(level, 8)];
  }
  return out;
}

}  // namespace pax
