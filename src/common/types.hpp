// types.hpp — fundamental identifier and time types shared by every PAX module.
#pragma once

#include <cstdint>
#include <limits>

namespace pax {

/// Index of a granule within its phase (the paper's indivisible unit of
/// parallel computation; one iteration of a parallel DO loop).
using GranuleId = std::uint32_t;

/// Index of a phase within a PhaseProgram.
using PhaseId = std::uint32_t;

/// Index of a worker processor.
using WorkerId = std::uint32_t;

/// Simulated time in integer ticks (1 tick = 1 microsecond by convention in
/// the workloads; the simulator itself is unit-agnostic).
using SimTime = std::uint64_t;

inline constexpr PhaseId kNoPhase = std::numeric_limits<PhaseId>::max();
inline constexpr GranuleId kNoGranule = std::numeric_limits<GranuleId>::max();
inline constexpr SimTime kTimeNever = std::numeric_limits<SimTime>::max();

/// Half-open range of granules [lo, hi) within one phase. Computation
/// descriptors cover ranges; the executive splits them on demand.
struct GranuleRange {
  GranuleId lo = 0;
  GranuleId hi = 0;

  [[nodiscard]] constexpr GranuleId size() const { return hi - lo; }
  [[nodiscard]] constexpr bool empty() const { return lo >= hi; }
  [[nodiscard]] constexpr bool contains(GranuleId g) const { return g >= lo && g < hi; }

  friend constexpr bool operator==(const GranuleRange&, const GranuleRange&) = default;
};

}  // namespace pax
