// stats.hpp — streaming statistics accumulators used by traces and benches.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace pax {

/// Welford streaming mean/variance with min/max.
class Accumulator {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }

  void merge(const Accumulator& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const double total = static_cast<double>(n_ + o.n_);
    const double delta = o.mean_ - mean_;
    m2_ += o.m2_ + delta * delta * static_cast<double>(n_) *
                       static_cast<double>(o.n_) / total;
    mean_ = (mean_ * static_cast<double>(n_) + o.mean_ * static_cast<double>(o.n_)) / total;
    n_ += o.n_;
    sum_ += o.sum_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bucket histogram over [lo, hi); out-of-range samples clamp to the
/// edge buckets so nothing is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets)
      : lo_(lo), hi_(hi), counts_(buckets, 0) {}

  void add(double x) {
    acc_.add(x);
    const auto b = bucket_of(x);
    ++counts_[b];
  }

  [[nodiscard]] std::size_t buckets() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] double bucket_lo(std::size_t i) const {
    return lo_ + width() * static_cast<double>(i);
  }
  [[nodiscard]] const Accumulator& summary() const { return acc_; }

  /// Value below which `q` (0..1) of the mass lies, linearly interpolated.
  [[nodiscard]] double quantile(double q) const;

  /// Render a one-line unicode sparkline of the bucket mass.
  [[nodiscard]] std::string sparkline() const;

 private:
  [[nodiscard]] double width() const {
    return (hi_ - lo_) / static_cast<double>(counts_.size());
  }
  [[nodiscard]] std::size_t bucket_of(double x) const {
    if (x < lo_) return 0;
    if (x >= hi_) return counts_.size() - 1;
    auto b = static_cast<std::size_t>((x - lo_) / width());
    return std::min(b, counts_.size() - 1);
  }

  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  Accumulator acc_;
};

}  // namespace pax
