// lock_rank.hpp — ranked mutexes with a debug-build lock-order validator.
//
// Clang Thread Safety Analysis (thread_annotations.hpp) proves that guarded
// state is only touched under its mutex, but it does not prove the *order*
// in which a thread takes two mutexes — the cross-lock deadlock cycles that
// TSAN's happens-before model also misses (TSAN only flags an inversion it
// happens to interleave). This header closes that gap dynamically: every
// mutex in the concurrency surface is a RankedMutex carrying a compile-time
// LockRank, and in checked builds a thread-local held-rank census
// PAX_CHECK-fails the moment any thread acquires a lock whose rank is not
// strictly above everything it already holds. One run of any multi-threaded
// test then certifies the whole lock graph acyclic — no lucky interleaving
// required.
//
// The rank table (DESIGN.md §11 — lower rank = acquired earlier / outermost):
//
//   rank  name      mutex                                 nests inside
//   ----  --------  ------------------------------------  -------------------
//   0     control   ShardedExecutive::control_mu_         (outermost; guards
//                   (census + sweep control plane)         the core + census)
//   1     shard     ShardedExecutive::Shard::mu           control (sweeps)
//   2     job       pool::detail::Job::mu                 nothing ranked
//   3     queue     sched::LocalRunQueue::mu_             job (the finalize
//                                                         path's peak probe)
//   4     pool      pool::PoolRuntime::mu_                nothing ranked
//   5     sleep     rt::ThreadedRuntime::mu_              nothing ranked
//
// Ranking job *below* queue (and below pool, above control/shard) is what
// makes the validator teeth match the documented pool discipline: an
// executive call under a job mutex (control/shard < job) and a job mutex
// under the pool mutex (job < pool) both abort on first execution.
//
// Rules for adding a lock: give it the highest rank consistent with every
// path that holds it together with another lock; same-rank acquisition is
// forbidden unless every site orders the locks by a global criterion
// (ascending shard index in check_census) and says so by passing kSameRank.
//
// Cost model: checks are on when PAX_LOCK_RANK_CHECKS is 1, which defaults
// to !NDEBUG. In release builds RankedMutex::lock()/unlock() compile down to
// std::mutex::lock()/unlock() — no branches, no thread-local traffic — and
// RankedMutex is layout-identical to std::mutex (static_assert below, plus
// tests/test_lock_rank.cpp). The validator state is thread-local and global,
// NOT per-mutex, so the checked build adds no memory to any lock either.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "common/check.hpp"
#include "common/thread_annotations.hpp"

// Checked by default exactly when PAX_DCHECK is (debug builds); force with
// -DPAX_LOCK_RANK_CHECKS=0/1. Must be consistent across every TU of a binary
// (the CMake build sets nothing, so it always is).
#ifndef PAX_LOCK_RANK_CHECKS
#ifdef NDEBUG
#define PAX_LOCK_RANK_CHECKS 0
#else
#define PAX_LOCK_RANK_CHECKS 1
#endif
#endif

namespace pax {

/// The global acquisition order. A thread may only acquire a mutex whose
/// rank is strictly greater than every rank it currently holds (>= with
/// kSameRank). Values are indices into the held-count table.
enum class LockRank : std::uint8_t {
  kControl = 0,  ///< sharded-executive control plane (census + sweeps)
  kShard = 1,    ///< per-shard ready buffer + deposit box
  kJob = 2,      ///< pool job bookkeeping
  kQueue = 3,    ///< per-worker local run-queue ring
  kPool = 4,     ///< pool runnable list + worker accounting
  kSleep = 5,    ///< threaded-runtime sleep/accounting mutex
};

/// Tag for deliberate same-rank acquisition (e.g. check_census freezing all
/// shard locks in ascending index order, which is itself a total order).
struct SameRankT {
  explicit SameRankT() = default;
};
inline constexpr SameRankT kSameRank{};

namespace lock_rank {

inline constexpr bool kChecksEnabled = PAX_LOCK_RANK_CHECKS != 0;
inline constexpr std::size_t kNumRanks = 6;

[[nodiscard]] constexpr const char* name(LockRank r) {
  switch (r) {
    case LockRank::kControl: return "control";
    case LockRank::kShard: return "shard";
    case LockRank::kQueue: return "queue";
    case LockRank::kJob: return "job";
    case LockRank::kPool: return "pool";
    case LockRank::kSleep: return "sleep";
  }
  return "?";
}

/// Per-thread census of held locks by rank. Counts (not a stack of
/// identities) so a thread may hold arbitrarily many same-rank locks after
/// opting in with kSameRank, and may release in any order — check_census
/// unlocks its shard batch front-to-back, not LIFO.
struct HeldCensus {
  std::uint32_t count[kNumRanks] = {};

  [[nodiscard]] std::int32_t highest_held() const {
    for (std::size_t r = kNumRanks; r-- > 0;)
      if (count[r] != 0) return static_cast<std::int32_t>(r);
    return -1;
  }
};

inline thread_local HeldCensus tl_held;

/// Validator primitives. Always compiled (tests/test_lock_rank.cpp
/// exercises the abort paths in every build type); RankedMutex only calls
/// them when kChecksEnabled.
inline void note_acquire(LockRank r, bool same_rank_ok) {
  HeldCensus& h = tl_held;
  const std::int32_t top = h.highest_held();
  const std::int32_t mine = static_cast<std::int32_t>(r);
  if (top >= 0 && (mine < top || (mine == top && !same_rank_ok))) {
    std::fprintf(stderr,
                 "PAX lock-rank violation: acquiring '%s' (rank %d) while "
                 "holding '%s' (rank %d)%s\n",
                 name(r), mine, name(static_cast<LockRank>(top)), top,
                 mine == top ? " without kSameRank" : "");
    std::abort();
  }
  ++h.count[static_cast<std::size_t>(r)];
}

inline void note_release(LockRank r) {
  HeldCensus& h = tl_held;
  PAX_CHECK_MSG(h.count[static_cast<std::size_t>(r)] != 0,
                "lock-rank release of a rank this thread does not hold");
  --h.count[static_cast<std::size_t>(r)];
}

/// This thread's held count at `r` (test introspection).
[[nodiscard]] inline std::uint32_t held(LockRank r) {
  return tl_held.count[static_cast<std::size_t>(r)];
}

}  // namespace lock_rank

/// std::mutex with a compile-time rank. BasicLockable, so it works directly
/// with std::condition_variable_any (the runtimes' sleep paths); lock sites
/// use the RankedLock / RankedUniqueLock guards below so Clang TSA sees the
/// acquire/release pairs.
template <LockRank Rank>
class PAX_CAPABILITY("mutex") RankedMutex {
 public:
  static constexpr LockRank kRank = Rank;

  RankedMutex() = default;
  RankedMutex(const RankedMutex&) = delete;
  RankedMutex& operator=(const RankedMutex&) = delete;

  void lock() PAX_ACQUIRE() {
    // Check BEFORE blocking: an inversion must abort with its diagnostic,
    // not deadlock silently inside std::mutex::lock.
    if constexpr (lock_rank::kChecksEnabled)
      lock_rank::note_acquire(Rank, /*same_rank_ok=*/false);
    mu_.lock();
  }
  void lock(SameRankT) PAX_ACQUIRE() {
    if constexpr (lock_rank::kChecksEnabled)
      lock_rank::note_acquire(Rank, /*same_rank_ok=*/true);
    mu_.lock();
  }
  void unlock() PAX_RELEASE() {
    mu_.unlock();
    if constexpr (lock_rank::kChecksEnabled) lock_rank::note_release(Rank);
  }

 private:
  std::mutex mu_;
};

// Zero-cost claim, layout half: the rank and the validator state live in the
// type and a thread-local — never in the mutex. (The codegen half — release
// lock() is a plain std::mutex::lock() — is pinned by test_lock_rank.)
static_assert(sizeof(RankedMutex<LockRank::kControl>) == sizeof(std::mutex),
              "RankedMutex must add nothing to std::mutex");

/// Annotated scope guard (std::scoped_lock equivalent). Use for every plain
/// critical section; Clang TSA cannot see through libstdc++'s guards.
template <class Mutex>
class PAX_SCOPED_CAPABILITY RankedLock {
 public:
  explicit RankedLock(Mutex& mu) PAX_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  RankedLock(Mutex& mu, SameRankT tag) PAX_ACQUIRE(mu) : mu_(mu) {
    mu_.lock(tag);
  }
  ~RankedLock() PAX_RELEASE() { mu_.unlock(); }

  RankedLock(const RankedLock&) = delete;
  RankedLock& operator=(const RankedLock&) = delete;

 private:
  Mutex& mu_;
};

/// Annotated condition-wait guard (std::unique_lock equivalent): exposes
/// lock()/unlock() for std::condition_variable_any, which releases and
/// reacquires through these methods — so rank accounting and TSA stay
/// coherent across a wait.
template <class Mutex>
class PAX_SCOPED_CAPABILITY RankedUniqueLock {
 public:
  explicit RankedUniqueLock(Mutex& mu) PAX_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~RankedUniqueLock() PAX_RELEASE() {
    if (owned_) mu_.unlock();
  }

  void lock() PAX_ACQUIRE() {
    mu_.lock();
    owned_ = true;
  }
  void unlock() PAX_RELEASE() {
    mu_.unlock();
    owned_ = false;
  }

  RankedUniqueLock(const RankedUniqueLock&) = delete;
  RankedUniqueLock& operator=(const RankedUniqueLock&) = delete;

 private:
  Mutex& mu_;
  bool owned_ = true;
};

}  // namespace pax
