// MpmcRing tests (core/mpmc_ring.hpp) — the lock-free shard handout's
// bounded Vyukov queue (DESIGN.md §13).
//
// Three layers:
//   1. single-thread units: capacity rounding, empty/full refusal, FIFO
//      order across wrap-around, and the cursor/sequence bookkeeping the
//      executive's check_census reads (pushed/popped/approx_size);
//   2. a seeded multi-producer/multi-consumer property test: every pushed
//      value is popped exactly once, none invented, none lost — the
//      exactly-once contract the shard deposit rings inherit;
//   3. a TSAN-pinned ordering regression: the consumer must observe the
//      producer's complete value write (the release publish on the cell
//      seq), checked with a multi-field payload whose halves must agree.
//      This suite runs in the TSAN and ASan CI matrices.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/mpmc_ring.hpp"

namespace pax {
namespace {

// --- single-thread units -----------------------------------------------------

TEST(MpmcRingUnit, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(MpmcRing<int>(0).capacity(), 2u);
  EXPECT_EQ(MpmcRing<int>(1).capacity(), 2u);
  EXPECT_EQ(MpmcRing<int>(2).capacity(), 2u);
  EXPECT_EQ(MpmcRing<int>(3).capacity(), 4u);
  EXPECT_EQ(MpmcRing<int>(5).capacity(), 8u);
  EXPECT_EQ(MpmcRing<int>(64).capacity(), 64u);
  EXPECT_EQ(MpmcRing<int>(65).capacity(), 128u);
}

TEST(MpmcRingUnit, EmptyPopAndFullPushRefuse) {
  MpmcRing<int> ring(4);
  int out = -1;
  EXPECT_FALSE(ring.try_pop(out));  // empty from construction
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));  // full: bounded means refuse, not grow
  EXPECT_EQ(ring.approx_size(), 4u);
  // Refusals move no cursor: the refused value must not surface later.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);  // FIFO
  }
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_EQ(ring.approx_size(), 0u);
}

TEST(MpmcRingUnit, FifoOrderSurvivesWrapAround) {
  // 3 laps plus a remainder over a capacity-8 ring, with a partial fill
  // resident across every wrap — the sequence numbers must keep recycling
  // cells lap after lap without reordering or dropping.
  MpmcRing<std::uint64_t> ring(8);
  std::uint64_t next_push = 0, next_pop = 0;
  for (int round = 0; round < 27; ++round) {
    while (ring.try_push(next_push)) ++next_push;
    std::uint64_t got = 0;
    // Drain half, keep half resident so wraps happen mid-occupancy.
    std::uint64_t out;
    const std::size_t drain = ring.approx_size() / 2 + 1;
    for (std::size_t i = 0; i < drain && ring.try_pop(out); ++i) {
      EXPECT_EQ(out, next_pop);
      ++next_pop;
      ++got;
    }
    EXPECT_GT(got, 0u);
  }
  std::uint64_t out;
  while (ring.try_pop(out)) {
    EXPECT_EQ(out, next_pop);
    ++next_pop;
  }
  EXPECT_EQ(next_pop, next_push);  // exactly-once, single-threaded edition
  EXPECT_EQ(ring.pushed(), next_push);
  EXPECT_EQ(ring.popped(), next_pop);
}

TEST(MpmcRingUnit, CursorsCountOperationsNotValues) {
  MpmcRing<int> ring(2);
  EXPECT_EQ(ring.pushed(), 0u);
  EXPECT_EQ(ring.popped(), 0u);
  ASSERT_TRUE(ring.try_push(7));
  ASSERT_TRUE(ring.try_push(8));
  ASSERT_FALSE(ring.try_push(9));  // refused: cursor must NOT advance
  EXPECT_EQ(ring.pushed(), 2u);
  int out;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(ring.popped(), 1u);
  ASSERT_TRUE(ring.try_pop(out));
  ASSERT_FALSE(ring.try_pop(out));  // refused: same rule on the pop side
  EXPECT_EQ(ring.popped(), 2u);
  EXPECT_EQ(ring.cas_retries(), 0u);  // single-threaded: no claim ever lost
}

// --- seeded MPMC exactly-once property test ---------------------------------

/// Producers push disjoint value ranges; consumers tally what they pop.
/// Afterwards every value must have been seen exactly once. Geometry
/// (threads, capacity, volume) is derived from the seed so the CI matrix
/// covers several shapes; thread counts stay small because the TSAN/ASan
/// hosts are narrow — interleavings come from preemption, not parallelism.
void exactly_once_round(std::uint64_t seed) {
  const std::uint32_t producers = 1 + static_cast<std::uint32_t>(seed % 3);
  const std::uint32_t consumers = 1 + static_cast<std::uint32_t>((seed / 3) % 3);
  const std::size_t capacity = std::size_t{8} << (seed % 4);
  const std::uint64_t per_producer = 4000 + 512 * (seed % 5);
  const std::uint64_t total = per_producer * producers;

  MpmcRing<std::uint64_t> ring(capacity);
  std::vector<std::uint8_t> seen(total, 0);  // indexed by value
  std::atomic<std::uint64_t> popped{0};
  std::atomic<bool> duplicate{false};

  {
    std::vector<std::jthread> threads;
    threads.reserve(producers + consumers);
    for (std::uint32_t p = 0; p < producers; ++p) {
      threads.emplace_back([&, p] {
        for (std::uint64_t v = p * per_producer; v < (p + 1) * per_producer;) {
          if (ring.try_push(v))
            ++v;
          else
            std::this_thread::yield();  // full: back off like the slow path
        }
      });
    }
    for (std::uint32_t c = 0; c < consumers; ++c) {
      threads.emplace_back([&] {
        std::uint64_t v;
        while (popped.load(std::memory_order_relaxed) < total) {
          if (!ring.try_pop(v)) {
            std::this_thread::yield();
            continue;
          }
          // Each cell of `seen` is written by exactly one popper iff the
          // exactly-once contract holds — TSAN turns a double-pop into a
          // data race here even when the flag check below would miss it.
          if (v >= total || seen[v] != 0) duplicate.store(true);
          seen[v] = 1;
          popped.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
  }

  EXPECT_FALSE(duplicate.load()) << "seed " << seed;
  EXPECT_EQ(popped.load(), total) << "seed " << seed;
  for (std::uint64_t v = 0; v < total; ++v)
    ASSERT_EQ(seen[v], 1) << "value " << v << " lost (seed " << seed << ")";
  EXPECT_EQ(ring.pushed(), total);
  EXPECT_EQ(ring.popped(), total);
}

TEST(MpmcRingProperty, SeededExactlyOnce) {
  for (std::uint64_t seed : {0ull, 7ull, 13ull, 29ull, 58ull})
    exactly_once_round(seed);
}

// --- TSAN-pinned publish-ordering regression ---------------------------------

/// Multi-field payload: the producer writes both halves before the release
/// publish on the cell seq; a consumer that acquires the seq must see them
/// agree. If the publish were relaxed (the regression this pins), TSAN
/// reports the cell value as a data race and the halves can disagree.
struct SealedPair {
  std::uint64_t value = 0;
  std::uint64_t seal = 0;  // must equal value ^ kSealKey
};
constexpr std::uint64_t kSealKey = 0x9E3779B97F4A7C15ull;

TEST(MpmcRingOrdering, ConsumerSeesCompleteValueWrite) {
  MpmcRing<SealedPair> ring(16);
  constexpr std::uint64_t kItems = 60000;
  std::atomic<bool> torn{false};
  {
    std::jthread producer([&] {
      for (std::uint64_t v = 1; v <= kItems;) {
        if (ring.try_push(SealedPair{v, v ^ kSealKey}))
          ++v;
        else
          std::this_thread::yield();
      }
    });
    std::jthread consumer([&] {
      std::uint64_t got = 0;
      SealedPair p;
      while (got < kItems) {
        if (!ring.try_pop(p)) {
          std::this_thread::yield();
          continue;
        }
        if (p.seal != (p.value ^ kSealKey)) torn.store(true);
        ++got;
      }
    });
  }
  EXPECT_FALSE(torn.load()) << "consumer observed a half-published value";
}

}  // namespace
}  // namespace pax
