// Dispatch-layer tests: local run-queue geometry (owner LIFO / thief FIFO),
// dispatcher refill-retire edge cases in their new home (empty-batch retire,
// refill returning zero while peers hold work, adaptive grain), threaded and
// pool integration with stealing on, and cancellation observed mid-batch.
// The suite runs in the TSAN CI matrix.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "pool/pool_runtime.hpp"
#include "runtime/happens_before.hpp"
#include "runtime/threaded_runtime.hpp"
#include "sched/dispatcher.hpp"

namespace pax {
namespace {

// --- LocalRunQueue geometry --------------------------------------------------

Assignment asg(Ticket t) {
  Assignment a;
  a.ticket = t;
  return a;
}

TEST(LocalRunQueue, OwnerPopsLifoThievesTakeFifo) {
  sched::LocalRunQueue q(4);
  EXPECT_TRUE(q.push(asg(0)));
  EXPECT_TRUE(q.push(asg(1)));
  EXPECT_TRUE(q.push(asg(2)));
  EXPECT_EQ(q.size(), 3u);

  Assignment a;
  ASSERT_TRUE(q.pop(a));
  EXPECT_EQ(a.ticket, 2u);  // LIFO end: most recent push

  std::vector<Assignment> loot;
  EXPECT_EQ(q.steal(8, loot), 1u);  // half of 2, rounded up
  ASSERT_EQ(loot.size(), 1u);
  EXPECT_EQ(loot[0].ticket, 0u);  // FIFO end: oldest push

  ASSERT_TRUE(q.pop(a));
  EXPECT_EQ(a.ticket, 1u);
  EXPECT_FALSE(q.pop(a));
  EXPECT_EQ(q.peak(), 3u);
}

TEST(LocalRunQueue, CapacityBoundsAndWraparound) {
  sched::LocalRunQueue q(2);
  EXPECT_TRUE(q.push(asg(0)));
  EXPECT_TRUE(q.push(asg(1)));
  EXPECT_FALSE(q.push(asg(2)));  // full

  // Drain from the front so head wraps, then reuse the ring.
  std::vector<Assignment> loot;
  EXPECT_EQ(q.steal(2, loot), 1u);
  Assignment a;
  ASSERT_TRUE(q.pop(a));
  EXPECT_EQ(a.ticket, 1u);
  EXPECT_TRUE(q.push(asg(3)));
  EXPECT_TRUE(q.push(asg(4)));
  ASSERT_TRUE(q.pop(a));
  EXPECT_EQ(a.ticket, 4u);
  ASSERT_TRUE(q.pop(a));
  EXPECT_EQ(a.ticket, 3u);
}

TEST(LocalRunQueue, BulkPushReversedIsAllOrNothing) {
  sched::LocalRunQueue q(3);
  std::vector<Assignment> batch{asg(0), asg(1)};
  EXPECT_TRUE(q.push_reversed(batch));
  Assignment a;
  ASSERT_TRUE(q.pop(a));
  EXPECT_EQ(a.ticket, 0u);  // reversed push: pop order == buffer order
  EXPECT_TRUE(q.push(asg(9)));
  // Two slots free, three wanted: nothing is pushed.
  std::vector<Assignment> big{asg(2), asg(3), asg(4)};
  EXPECT_FALSE(q.push_reversed(big));
  EXPECT_EQ(q.size(), 2u);
  ASSERT_TRUE(q.pop(a));
  EXPECT_EQ(a.ticket, 9u);
  ASSERT_TRUE(q.pop(a));
  EXPECT_EQ(a.ticket, 1u);
}

TEST(LocalRunQueue, StealTakesHalfRoundedUp) {
  sched::LocalRunQueue q(8);
  for (Ticket t = 0; t < 5; ++t) ASSERT_TRUE(q.push(asg(t)));
  std::vector<Assignment> loot;
  EXPECT_EQ(q.steal(8, loot), 3u);  // (5+1)/2
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(loot[0].ticket, 0u);
  EXPECT_EQ(loot[2].ticket, 2u);
}

// --- Dispatcher refill/steal, driven deterministically -----------------------

struct SinglePhase {
  PhaseProgram prog;
  PhaseId p = kNoPhase;
};

SinglePhase make_single_phase(GranuleId n) {
  SinglePhase s;
  s.p = s.prog.define_phase(make_phase("p", n).writes("X"));
  s.prog.dispatch(s.p);
  s.prog.halt();
  return s;
}

TEST(Dispatcher, EmptyBatchRetireIsANoOp) {
  SinglePhase s = make_single_phase(4);
  ExecConfig cfg;
  cfg.grain = 1;
  ExecutiveCore core(s.prog, cfg);
  core.start();

  sched::Dispatcher d({/*workers=*/1, /*batch=*/8, 0, true, true});
  std::vector<Ticket> done;  // empty: nothing to retire on the first trip
  const sched::RefillOutcome first = d.refill(core, 0, done);
  EXPECT_EQ(first.refilled, 4u);
  EXPECT_FALSE(first.completion.new_work);

  // Queue still full, executive dry: a second refill retires nothing and
  // pulls nothing, without disturbing the queued assignments.
  const sched::RefillOutcome second = d.refill(core, 0, done);
  EXPECT_EQ(second.refilled, 0u);
  EXPECT_EQ(d.occupancy(0), 4u);
}

TEST(Dispatcher, RefillPreservesExecutiveHandoutOrder) {
  SinglePhase s = make_single_phase(6);
  ExecConfig cfg;
  cfg.grain = 2;
  ExecutiveCore core(s.prog, cfg);
  core.start();

  sched::Dispatcher d({1, 8, 0, true, false});
  std::vector<Ticket> done;
  ASSERT_EQ(d.refill(core, 0, done).refilled, 3u);
  Assignment a;
  GranuleId expect_lo = 0;
  while (d.pop_local(0, a)) {
    EXPECT_EQ(a.range.lo, expect_lo);  // owner pop order == handout order
    expect_lo = a.range.hi;
  }
  EXPECT_EQ(expect_lo, 6u);
}

TEST(Dispatcher, StealCoversRefillReturningZeroWhilePeersHoldWork) {
  SinglePhase s = make_single_phase(8);
  ExecConfig cfg;
  cfg.grain = 1;
  ExecutiveCore core(s.prog, cfg);
  core.start();

  sched::Dispatcher d({/*workers=*/2, /*batch=*/8, 0, true, true});
  std::vector<Ticket> done0, done1;
  // Worker 0 over-refills: the whole phase lands in its local queue.
  ASSERT_EQ(d.refill(core, 0, done0).refilled, 8u);
  // Worker 1's refill returns zero — the executive is dry — while its peer
  // holds every assignment: the exact situation stealing exists for.
  const sched::RefillOutcome rr = d.refill(core, 1, done1);
  EXPECT_EQ(rr.refilled, 0u);
  EXPECT_FALSE(core.work_available());
  EXPECT_FALSE(core.finished());
  EXPECT_TRUE(d.stealable_by(1));
  EXPECT_TRUE(d.any_local_work());

  const std::size_t got = d.try_steal(1);
  EXPECT_EQ(got, 4u);  // half of the victim's queue
  EXPECT_EQ(d.occupancy(1), 4u);
  EXPECT_EQ(d.occupancy(0), 4u);

  // Drive both "workers" to completion single-threadedly through the same
  // pop/retire cycle the runtimes use.
  rt::BodyTable bodies;
  bodies.set(s.p, [](GranuleRange, WorkerId) {});
  sched::BodyLoopStats stats;
  for (int rounds = 0; rounds < 8 && !core.finished(); ++rounds) {
    d.drain_local(bodies, 0, done0, stats);
    d.refill(core, 0, done0);
    d.drain_local(bodies, 1, done1, stats);
    d.refill(core, 1, done1);
  }
  EXPECT_TRUE(core.finished());
  EXPECT_EQ(stats.granules, 8u);
  EXPECT_FALSE(d.any_local_work());
}

TEST(Dispatcher, StealRateSignalHalvesEffectiveGrain) {
  SinglePhase s = make_single_phase(64);
  ExecConfig cfg;
  cfg.grain = 16;
  ExecutiveCore core(s.prog, cfg);
  core.start();

  sched::Dispatcher d({2, 4, 0, true, true});  // window = 16 events
  std::vector<Ticket> done;
  ASSERT_GT(d.refill(core, 0, done).refilled, 1u);
  EXPECT_EQ(core.effective_grain(), 16u);

  // Ping-pong one steal per event: a window of pure steals must raise the
  // grain shift, and the next refill applies it to the core.
  for (int i = 0; i < 40; ++i) {
    if (d.try_steal(1) == 0) {
      ASSERT_GT(d.try_steal(0), 0u);
    }
  }
  EXPECT_GT(d.grain_shift(), 0u);
  d.refill(core, 1, done);
  EXPECT_LT(core.effective_grain(), 16u);
  EXPECT_GE(core.effective_grain(), 1u);
}

TEST(ExecutiveGrainLimit, ConcurrentPublishIsRaceFree) {
  // Regression for the grain-limit data race: the steal-rate signal
  // publishes the limit with NO executive lock held (the sharded refill
  // path), while the request path reads it inside a control section. Before
  // the limit became an atomic this was a plain load/store race — TSAN
  // (which runs this suite in CI) flagged it; now it must be clean, and
  // every carve must respect *some* published clamp [1, grain].
  SinglePhase s = make_single_phase(4096);
  ExecConfig cfg;
  cfg.grain = 8;
  ExecutiveCore core(s.prog, cfg);
  core.start();

  std::atomic<bool> stop{false};
  std::jthread publisher([&] {
    GranuleId g = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      core.set_grain_limit(g);
      g = g % 8 + 1;
      (void)core.effective_grain();
    }
  });
  for (int i = 0; i < 2000; ++i) {
    const auto a = core.request_work(0);
    if (!a.has_value()) break;
    ASSERT_GE(a->range.size(), 1u);
    ASSERT_LE(a->range.size(), 8u);  // never exceeds the configured grain
    core.complete(a->ticket);
  }
  stop.store(true, std::memory_order_relaxed);
}

TEST(ExecutiveGrainLimit, ClampsAndResets) {
  SinglePhase s = make_single_phase(32);
  ExecConfig cfg;
  cfg.grain = 8;
  ExecutiveCore core(s.prog, cfg);
  EXPECT_EQ(core.configured_grain(), 8u);
  EXPECT_EQ(core.effective_grain(), 8u);
  core.set_grain_limit(2);
  EXPECT_EQ(core.effective_grain(), 2u);
  core.set_grain_limit(100);  // never exceeds the configured grain
  EXPECT_EQ(core.effective_grain(), 8u);
  core.set_grain_limit(2);
  core.set_grain_limit(0);  // reset
  EXPECT_EQ(core.effective_grain(), 8u);

  core.start();
  core.set_grain_limit(2);
  const auto a = core.request_work(0);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->range.size(), 2u);  // carved at the limit, not the grain
}

// --- sharded executive front-end (deterministic, single-threaded) ------------

TEST(ShardedExecutive, SweepScattersAndSiblingsServeWithoutControl) {
  SinglePhase s = make_single_phase(32);
  ExecConfig cfg;
  cfg.grain = 1;
  ShardedExecutive ex(s.prog, cfg, CostModel::free_of_charge(),
                      {.shards = 2, .workers = 2, .batch = 4});
  EXPECT_EQ(ex.shards(), 2u);
  ex.start();
  EXPECT_TRUE(ex.work_available());

  // Worker 0's first acquire falls through to a control sweep: it pulls its
  // own batch and re-scatters the shard buffers (depth = batch = 4 each).
  std::vector<Ticket> done;
  std::vector<Assignment> out0;
  const ShardAcquire a0 = ex.acquire(0, 4, done, out0);
  EXPECT_TRUE(a0.swept);
  EXPECT_EQ(a0.taken, 4u);
  EXPECT_TRUE(a0.new_work);  // the scatter made work visible to peers
  const ShardStatsView after_sweep = ex.stats();
  EXPECT_EQ(after_sweep.scattered, 8u);  // both shards topped to depth

  // Worker 1's home shard was filled by that sweep: a pure shard-buffer hit,
  // no control-mutex section.
  std::vector<Assignment> out1;
  const ShardAcquire a1 = ex.acquire(1, 2, done, out1);
  EXPECT_FALSE(a1.swept);
  EXPECT_EQ(a1.taken, 2u);
  const ShardStatsView after_hit = ex.stats();
  EXPECT_EQ(after_hit.control_acquisitions, after_sweep.control_acquisitions);
  EXPECT_EQ(after_hit.shard_hits, 1u);

  // Worker 0 drains its home buffer, then its sibling's remainder before the
  // next sweep (sibling hit).
  std::vector<Assignment> out2;
  (void)ex.acquire(0, 32, done, out2);
  std::vector<Assignment> out3;
  const ShardAcquire a3 = ex.acquire(0, 32, done, out3);
  EXPECT_FALSE(a3.swept);
  EXPECT_GT(a3.taken, 0u);
  EXPECT_EQ(ex.stats().sibling_hits, 1u);
  ex.check_census();
}

TEST(ShardedExecutive, DepositsRetireInOneCoalescedSweep) {
  SinglePhase s = make_single_phase(16);
  ExecConfig cfg;
  cfg.grain = 1;
  ShardedExecutive ex(s.prog, cfg, CostModel::free_of_charge(),
                      {.shards = 2, .workers = 2, .batch = 2, .flush = 64});
  ex.start();

  // Hand out everything across both "workers".
  std::vector<Ticket> done0, done1;
  std::vector<Assignment> all;
  while (true) {
    std::vector<Assignment> buf;
    const ShardAcquire a = ex.acquire(0, 4, done0, buf);
    const ShardAcquire b = ex.acquire(1, 4, done1, buf);
    all.insert(all.end(), buf.begin(), buf.end());
    if (a.taken + b.taken == 0) break;
  }
  EXPECT_EQ(all.size(), 16u);

  // Both workers deposit half the tickets each; the flush threshold (64) is
  // never crossed, so retirement waits for the dry-probe sweep.
  for (std::size_t i = 0; i < all.size(); ++i)
    (i % 2 == 0 ? done0 : done1).push_back(all[i].ticket);
  std::vector<Assignment> unused;
  ShardAcquire d0 = ex.acquire(0, 0, done0, unused);  // deposit only
  EXPECT_TRUE(done0.empty());
  EXPECT_FALSE(ex.finished());
  // Worker 1 deposits and its dry acquire sweeps BOTH shards' boxes in one
  // control section — the last retire finishes the program.
  ShardAcquire d1 = ex.acquire(1, 4, done1, unused);
  EXPECT_TRUE(ex.finished());
  EXPECT_TRUE(d0.swept || d1.swept);
  EXPECT_EQ(ex.stats().deposits, 16u);
  ex.check_census();
}

TEST(ShardedExecutive, ElevatedReleaseOutranksBufferedNormalWork) {
  // A conflicting computation released at elevated priority must not wait
  // behind pre-carved normal work sitting in a shard buffer: the census
  // flags the elevated entry and the next acquire sweeps instead of taking
  // the buffer.
  PhaseProgram prog;
  const PhaseId p = prog.define_phase(make_phase("p", 24).writes("X"));
  const PhaseId q = prog.define_phase(make_phase("q", 4).reads("X").writes("Z"));
  prog.dispatch(p);
  prog.halt();

  ExecConfig cfg;
  cfg.grain = 1;
  ShardedExecutive ex(prog, cfg, CostModel::free_of_charge(),
                      {.shards = 2, .workers = 2, .batch = 4});
  ex.start();
  std::vector<Ticket> done;
  std::vector<Assignment> out;
  (void)ex.acquire(0, 2, done, out);  // sweep: buffers now hold normal work

  // Retire the first two assignments, completing... not the run; then submit
  // conflicting work against run 0 — released immediately *iff* complete.
  // Run 0 is still open, so the work parks on its barrier; finish the run.
  ex.submit_conflicting(0, q, {0, 4});
  while (!ex.finished()) {
    for (const Assignment& a : out) done.push_back(a.ticket);
    out.clear();
    const ShardAcquire a = ex.acquire(0, 4, done, out);
    if (a.taken == 0 && out.empty() && ex.finished()) break;
    // Once the elevated release fires, it must be handed out ahead of any
    // still-buffered normal work.
    for (const Assignment& got : out)
      if (got.priority == Priority::kElevated) {
        EXPECT_EQ(got.phase, q);
      }
    if (out.empty() && a.taken == 0) break;
  }
  EXPECT_TRUE(ex.finished());
  ex.check_census();
}

TEST(Dispatcher, SingleShardRefillMatchesDirectCoreProtocol) {
  // shards = 1 must reproduce the PR 3 protocol exactly: same handout
  // ranges in the same order, one control section per refill.
  SinglePhase s1 = make_single_phase(24);
  SinglePhase s2 = make_single_phase(24);
  ExecConfig cfg;
  cfg.grain = 4;

  ExecutiveCore core(s1.prog, cfg);
  core.start();
  sched::Dispatcher d_direct({1, 4, 0, false, false});
  ShardedExecutive ex(s2.prog, cfg, CostModel::free_of_charge(),
                      {.shards = 1, .workers = 1, .batch = 4});
  ex.start();
  sched::Dispatcher d_shard({1, 4, 0, false, false});

  rt::BodyTable bodies;
  bodies.set(s1.p, [](GranuleRange, WorkerId) {});

  std::vector<Ticket> done_a, done_b;
  sched::BodyLoopStats stats;
  for (int round = 0; round < 16 && !(core.finished() && ex.finished());
       ++round) {
    const sched::RefillOutcome ra = d_direct.refill(core, 0, done_a);
    const sched::RefillOutcome rb = d_shard.refill(ex, 0, done_b);
    EXPECT_EQ(ra.refilled, rb.refilled);
    Assignment a, b;
    std::vector<std::pair<GranuleId, GranuleId>> seq_a, seq_b;
    while (d_direct.pop_local(0, a)) {
      seq_a.emplace_back(a.range.lo, a.range.hi);
      done_a.push_back(a.ticket);
    }
    while (d_shard.pop_local(0, b)) {
      seq_b.emplace_back(b.range.lo, b.range.hi);
      done_b.push_back(b.ticket);
    }
    EXPECT_EQ(seq_a, seq_b) << "handout diverged in round " << round;
  }
  EXPECT_TRUE(core.finished());
  EXPECT_TRUE(ex.finished());
}

// --- threaded runtime with stealing on ---------------------------------------

TEST(RtSteal, TailHeavyRunStealsAndStaysCorrect) {
  // Ramped granule cost: the last refill holds the most expensive work, so
  // peers go dry and steal. Identity enablement must still hold.
  const GranuleId n = 256;
  PhaseProgram prog;
  PhaseId a = prog.define_phase(make_phase("a", n).writes("X"));
  PhaseId b = prog.define_phase(make_phase("b", n).reads("X").writes("Y"));
  prog.dispatch(a, {EnableClause{"b", MappingKind::kIdentity, {}}});
  prog.dispatch(b);
  prog.halt();

  rt::HappensBeforeRecorder rec(2, n);
  std::atomic<std::uint64_t> sink{0};
  rt::BodyTable bodies;
  bodies.set(a, [&](GranuleRange r, WorkerId) {
    for (GranuleId g = r.lo; g < r.hi; ++g) {
      rec.on_start(0, g);
      std::uint64_t acc = 0;
      for (GranuleId i = 0; i < 200 + g * 8; ++i) acc += i * g;
      sink.fetch_add(acc, std::memory_order_relaxed);
      rec.on_finish(0, g);
    }
  });
  bodies.set(b, [&](GranuleRange r, WorkerId) {
    for (GranuleId g = r.lo; g < r.hi; ++g) {
      rec.on_start(1, g);
      rec.on_finish(1, g);
    }
  });

  ExecConfig cfg;
  cfg.grain = 8;
  rt::RtConfig rc;
  rc.workers = 4;
  rc.batch = 8;  // capacity 16: over-refill leaves stealable slack
  const rt::RtResult res =
      rt::ThreadedRuntime(prog, cfg, CostModel::free_of_charge(), bodies, rc).run();

  EXPECT_EQ(res.granules_executed, 2u * n);
  EXPECT_EQ(res.exec_lock_acquisitions,
            res.refill_lock_acquisitions + res.wait_lock_acquisitions);
  EXPECT_GT(res.peak_local_queue, 1u);
  for (GranuleId g = 0; g < n; ++g) {
    ASSERT_TRUE(rec.executed(0, g));
    ASSERT_TRUE(rec.executed(1, g));
    EXPECT_LT(rec.finish_ticket(0, g), rec.start_ticket(1, g))
        << "identity enablement violated at granule " << g;
  }
}

TEST(RtSteal, SingleWorkerNeverSteals) {
  SinglePhase s = make_single_phase(64);
  rt::BodyTable bodies;
  bodies.set(s.p, [](GranuleRange, WorkerId) {});
  ExecConfig cfg;
  cfg.grain = 4;
  rt::RtConfig rc;
  rc.workers = 1;
  rc.batch = 4;
  const rt::RtResult res =
      rt::ThreadedRuntime(s.prog, cfg, CostModel::free_of_charge(), bodies, rc)
          .run();
  EXPECT_EQ(res.granules_executed, 64u);
  EXPECT_EQ(res.steals, 0u);
  EXPECT_EQ(res.steal_fail_spins, 0u);
}

// --- pool integration --------------------------------------------------------

TEST(PoolSteal, StealsSumAcrossJobsAndStatsStayConsistent) {
  // Imbalanced jobs on a stealing pool: whatever steals happen, worker-side
  // and job-side accounting must agree exactly.
  pool::PoolRuntime pool({.workers = 4, .batch = 8});
  std::atomic<std::uint64_t> sink{0};

  SinglePhase progs[3] = {make_single_phase(96), make_single_phase(96),
                          make_single_phase(96)};
  std::vector<rt::BodyTable> bodies(3);
  for (int j = 0; j < 3; ++j)
    bodies[j].set(progs[j].p, [&sink](GranuleRange r, WorkerId) {
      std::uint64_t acc = 0;
      for (GranuleId g = r.lo; g < r.hi; ++g)
        for (GranuleId i = 0; i < 100 + g * 4; ++i) acc += i;
      sink.fetch_add(acc, std::memory_order_relaxed);
    });

  ExecConfig cfg;
  cfg.grain = 8;
  std::vector<pool::JobHandle> handles;
  for (int j = 0; j < 3; ++j)
    handles.push_back(pool.submit(progs[j].prog, bodies[j], cfg));
  for (auto& h : handles) EXPECT_EQ(h.wait(), pool::JobState::kComplete);
  pool.shutdown();

  const pool::PoolStats ps = pool.stats();
  std::uint64_t job_granules = 0, job_steals = 0;
  for (auto& h : handles) {
    job_granules += h.stats().granules;
    job_steals += h.stats().steals;
  }
  EXPECT_EQ(job_granules, 3u * 96u);
  EXPECT_EQ(ps.granules_executed, job_granules);
  EXPECT_EQ(ps.steals, job_steals);
  EXPECT_EQ(ps.jobs_completed, 3u);
}

TEST(PoolSteal, NoStealPoolSleepsWhilePeerHoldsLocalWork) {
  // Regression: with stealing off, a job whose only work sits in a pinned
  // peer's local queue must NOT count as runnable — an adopter could
  // neither steal nor refill and would busy-spin re-adopting it. The idle
  // worker has to sleep, so job-lock acquisitions stay small.
  pool::PoolRuntime pool({.workers = 2, .batch = 4, .steal = false});
  SinglePhase s = make_single_phase(4);
  std::atomic<bool> gate{false};
  std::atomic<bool> started{false};
  rt::BodyTable bodies;
  bodies.set(s.p, [&](GranuleRange, WorkerId) {
    started.store(true, std::memory_order_release);
    while (!gate.load(std::memory_order_acquire)) std::this_thread::yield();
  });
  ExecConfig cfg;
  cfg.grain = 1;  // 4 assignments: the owner's queue stays loaded while pinned
  pool::JobHandle h = pool.submit(s.prog, bodies, cfg);
  while (!started.load(std::memory_order_acquire)) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));  // spin window
  gate.store(true, std::memory_order_release);
  EXPECT_EQ(h.wait(), pool::JobState::kComplete);
  pool.shutdown();
  // A busy-spinning adopter racks up hundreds of thousands of acquisitions
  // in 50 ms; a sleeping one leaves a handful per worker.
  EXPECT_LT(pool.stats().exec_lock_acquisitions, 1000u);
}

TEST(PoolSteal, CancellationObservedMidBatch) {
  // One worker, resident mid-batch on a gated job A when job B is cancelled:
  // B must report cancelled with zero stats, A must run to completion, and
  // the pool must drain cleanly.
  pool::PoolRuntime pool({.workers = 1, .batch = 4});
  SinglePhase a = make_single_phase(8);
  SinglePhase b = make_single_phase(8);

  std::atomic<bool> gate{false};
  std::atomic<bool> a_started{false};
  std::atomic<std::uint32_t> a_granules{0};
  rt::BodyTable a_bodies;
  a_bodies.set(a.p, [&](GranuleRange r, WorkerId) {
    a_started.store(true, std::memory_order_release);
    while (!gate.load(std::memory_order_acquire)) std::this_thread::yield();
    a_granules += r.size();
  });
  rt::BodyTable b_bodies;
  b_bodies.set(b.p, [](GranuleRange, WorkerId) { FAIL() << "cancelled job ran"; });

  ExecConfig cfg;
  cfg.grain = 2;  // several assignments per batch: the cancel lands mid-batch
  pool::JobHandle ha = pool.submit(a.prog, a_bodies, cfg);
  while (!a_started.load(std::memory_order_acquire)) std::this_thread::yield();
  pool::JobHandle hb = pool.submit(b.prog, b_bodies, cfg);
  EXPECT_TRUE(hb.cancel());  // the only worker is pinned inside A's batch
  EXPECT_EQ(hb.state(), pool::JobState::kCancelled);
  gate.store(true, std::memory_order_release);

  EXPECT_EQ(ha.wait(), pool::JobState::kComplete);
  pool.shutdown();

  EXPECT_EQ(a_granules.load(), 8u);
  EXPECT_EQ(hb.stats().granules, 0u);
  EXPECT_EQ(hb.stats().steals, 0u);
  const pool::PoolStats ps = pool.stats();
  EXPECT_EQ(ps.jobs_cancelled, 1u);
  EXPECT_EQ(ps.jobs_completed, 1u);
  EXPECT_EQ(ps.granules_executed, 8u);
}

}  // namespace
}  // namespace pax
