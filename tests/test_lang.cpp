// PAX language: lexer, parser, validator interlocks, compiler lowering, and
// end-to-end execution of compiled programs.
#include <gtest/gtest.h>

#include "lang/compiler.hpp"
#include "lang/lexer.hpp"
#include "lang/parser.hpp"
#include "lang/validator.hpp"
#include "sim/machine.hpp"

namespace pax::lang {
namespace {

constexpr const char* kTwoPhase = R"(
# The paper's identity example: B(I)=A(I) then C(I)=B(I).
DEFINE PHASE copyA GRANULES=64 LINES=3
  READS A
  WRITES B
END
DEFINE PHASE copyB GRANULES=64 LINES=3
  READS B
  WRITES C
END

DISPATCH copyA ENABLE [ copyB/MAPPING=IDENTITY ]
DISPATCH copyB
HALT
)";

TEST(Lexer, TokenizesKeywordsNumbersAndPunctuation) {
  auto r = lex("DISPATCH p1 ENABLE [ x/MAPPING=IDENTITY ]\nIF n % 10 != 0 GOTO l");
  ASSERT_TRUE(r.diags.empty());
  ASSERT_GE(r.tokens.size(), 10u);
  EXPECT_EQ(r.tokens[0].kind, Tok::kIdent);
  EXPECT_EQ(r.tokens[0].text, "DISPATCH");
  // Newline token splits the statements.
  const auto nl = std::find_if(r.tokens.begin(), r.tokens.end(), [](const Token& t) {
    return t.kind == Tok::kNewline;
  });
  EXPECT_NE(nl, r.tokens.end());
}

TEST(Lexer, CommentsAndLineNumbers) {
  auto r = lex("# comment only\nHALT -- trailing\n");
  ASSERT_TRUE(r.diags.empty());
  ASSERT_EQ(r.tokens.size(), 3u);  // HALT, newline, end
  EXPECT_EQ(r.tokens[0].text, "HALT");
  EXPECT_EQ(r.tokens[0].line, 2);
}

TEST(Lexer, RejectsStrayCharacters) {
  auto r = lex("DISPATCH @phase");
  EXPECT_TRUE(has_errors(r.diags));
}

TEST(Parser, ParsesDefineAndDispatch) {
  auto r = parse(kTwoPhase);
  ASSERT_TRUE(r.ok()) << r.diags.empty();
  ASSERT_EQ(r.module.phases.size(), 2u);
  EXPECT_EQ(r.module.phases[0].name, "copyA");
  EXPECT_EQ(r.module.phases[0].granules, 64u);
  EXPECT_EQ(r.module.phases[0].accesses.size(), 2u);
  ASSERT_EQ(r.module.statements.size(), 3u);
  const auto* d = std::get_if<StDispatch>(&r.module.statements[0]);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->form, EnableForm::kList);
  ASSERT_EQ(d->enables.size(), 1u);
  EXPECT_EQ(d->enables[0].phase, "copyB");
  EXPECT_EQ(d->enables[0].kind, MappingKind::kIdentity);
}

TEST(Parser, ParsesBranchIndependentForm) {
  auto r = parse(R"(
DEFINE PHASE p GRANULES=4
END
DEFINE PHASE q GRANULES=4
END
DISPATCH p ENABLE/BRANCHINDEPENDENT [ q/MAPPING=UNIVERSAL ]
IF IMOD(counter, 10) != 0 GOTO alt
DISPATCH q
LABEL alt
HALT
)");
  ASSERT_TRUE(r.ok());
  const auto* d = std::get_if<StDispatch>(&r.module.statements[0]);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->form, EnableForm::kBranchIndependent);
}

TEST(Parser, ParsesIndirectUsingClause) {
  auto r = parse(R"(
DEFINE PHASE gen GRANULES=8
  WRITES A
END
DEFINE PHASE sum GRANULES=8
  READS A INDIRECT IMAP
  WRITES B
END
DISPATCH gen ENABLE [ sum/MAPPING=REVERSE/USING=IMAP ]
DISPATCH sum
HALT
)");
  ASSERT_TRUE(r.ok());
  const auto* d = std::get_if<StDispatch>(&r.module.statements[0]);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->enables[0].kind, MappingKind::kReverseIndirect);
  EXPECT_EQ(d->enables[0].using_map, "IMAP");
}

TEST(Parser, ExpressionPrecedence) {
  auto r = parse("LET x = 2 + 3 * 4 % 5\nHALT\n");
  ASSERT_TRUE(r.ok());
  const auto* l = std::get_if<StLet>(&r.module.statements[0]);
  ASSERT_NE(l, nullptr);
  ProgramEnv env;
  EXPECT_EQ(l->value->eval(env), 2 + (3 * 4) % 5);
}

TEST(Validator, AcceptsWellFormedModule) {
  auto r = parse(kTwoPhase);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(has_errors(validate(r.module)));
}

TEST(Validator, RejectsEnableOfPhaseThatCannotFollow) {
  // The interlock: copyC does not follow copyA.
  auto r = parse(R"(
DEFINE PHASE copyA GRANULES=8
  WRITES B
END
DEFINE PHASE copyB GRANULES=8
  READS B
END
DEFINE PHASE copyC GRANULES=8
END
DISPATCH copyA ENABLE [ copyC/MAPPING=UNIVERSAL ]
DISPATCH copyB
HALT
)");
  ASSERT_TRUE(r.ok());
  const auto diags = validate(r.module);
  ASSERT_TRUE(has_errors(diags));
  bool found = false;
  for (const auto& d : diags)
    if (d.message.find("cannot follow") != std::string::npos) found = true;
  EXPECT_TRUE(found);
}

TEST(Validator, RejectsUnsafeMappingKind) {
  // Accesses imply reverse-indirect; claiming identity under-synchronises.
  auto r = parse(R"(
DEFINE PHASE gen GRANULES=8
  WRITES A
END
DEFINE PHASE sum GRANULES=8
  READS A INDIRECT IMAP
END
DISPATCH gen ENABLE [ sum/MAPPING=IDENTITY ]
DISPATCH sum
HALT
)");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(has_errors(validate(r.module)));
}

TEST(Validator, WarnsOnSimpleFormWithoutInterlock) {
  auto r = parse(R"(
DEFINE PHASE a GRANULES=4
END
DEFINE PHASE b GRANULES=4
END
DISPATCH a ENABLE/MAPPING=UNIVERSAL
DISPATCH b
HALT
)");
  ASSERT_TRUE(r.ok());
  const auto diags = validate(r.module);
  EXPECT_FALSE(has_errors(diags));
  bool warned = false;
  for (const auto& d : diags)
    if (d.severity == Diag::Severity::kWarning &&
        d.message.find("interlock") != std::string::npos)
      warned = true;
  EXPECT_TRUE(warned);
}

TEST(Validator, SuccessorWalkSeesBothBranchArms) {
  auto r = parse(R"(
DEFINE PHASE a GRANULES=4
END
DEFINE PHASE b GRANULES=4
END
DEFINE PHASE c GRANULES=4
END
DISPATCH a ENABLE [ b/MAPPING=UNIVERSAL c/MAPPING=UNIVERSAL ]
IF flag != 0 GOTO alt
DISPATCH b
GOTO done
LABEL alt
DISPATCH c
LABEL done
HALT
)");
  ASSERT_TRUE(r.ok());
  const auto succ = successors_of(r.module, 0);
  ASSERT_EQ(succ.size(), 2u);
  EXPECT_FALSE(has_errors(validate(r.module)));
}

TEST(Validator, ConflictingSerialMakesEnableUnreachable) {
  auto r = parse(R"(
DEFINE PHASE a GRANULES=4
  WRITES X
END
DEFINE PHASE b GRANULES=4
  READS X
END
DISPATCH a ENABLE [ b/MAPPING=IDENTITY ]
SERIAL decide CONFLICTS
DISPATCH b
HALT
)");
  ASSERT_TRUE(r.ok());
  const auto diags = validate(r.module);
  EXPECT_FALSE(has_errors(diags));  // warning, not error
  bool warned = false;
  for (const auto& d : diags)
    if (d.message.find("never be applied") != std::string::npos) warned = true;
  EXPECT_TRUE(warned);
}

TEST(Compiler, LowersAndRunsTwoPhaseProgram) {
  CompileResult res = compile_source(kTwoPhase);
  ASSERT_TRUE(res.ok);
  ExecConfig cfg;
  cfg.grain = 4;
  auto sim_res = sim::simulate(res.program, cfg, CostModel{}, sim::Workload(1),
                               sim::MachineConfig{4});
  EXPECT_EQ(sim_res.granules_executed, 128u);
  EXPECT_TRUE(sim_res.diagnostics.empty());
}

TEST(Compiler, ReverseMappingNeedsBinding) {
  const char* src = R"(
DEFINE PHASE gen GRANULES=8
  WRITES A
END
DEFINE PHASE sum GRANULES=8
  READS A INDIRECT IMAP
END
DISPATCH gen ENABLE [ sum/MAPPING=REVERSE/USING=IMAP ]
DISPATCH sum
HALT
)";
  CompileResult without = compile_source(src);
  EXPECT_FALSE(without.ok);

  Compiler compiler;
  IndirectionSpec spec;
  spec.requires_of = [](GranuleId r, std::vector<GranuleId>& out) {
    out.push_back(r);
  };
  compiler.bind("IMAP", spec);
  CompileResult with = compile_source(src, compiler);
  EXPECT_TRUE(with.ok);

  ExecConfig cfg;
  cfg.grain = 1;
  auto sim_res = sim::simulate(with.program, cfg, CostModel{}, sim::Workload(2),
                               sim::MachineConfig{2});
  EXPECT_EQ(sim_res.granules_executed, 16u);
}

TEST(Compiler, LoopProgramRunsToCompletion) {
  // A counter loop: run phase `step` three times.
  const char* src = R"(
DEFINE PHASE step GRANULES=16
  WRITES OUT
END
LET n = 0
LABEL top
DISPATCH step
SERIAL bump NOCONFLICT SET n = n + 1
IF n < 3 GOTO top
HALT
)";
  CompileResult res = compile_source(src);
  ASSERT_TRUE(res.ok) << res.diags.size();
  ExecConfig cfg;
  cfg.grain = 4;
  auto sim_res = sim::simulate(res.program, cfg, CostModel{}, sim::Workload(3),
                               sim::MachineConfig{2});
  EXPECT_EQ(sim_res.granules_executed, 48u);
}

TEST(Compiler, BranchIndependentRegionMarksBranchNodes) {
  const char* src = R"(
DEFINE PHASE p GRANULES=8
  WRITES X
END
DEFINE PHASE q GRANULES=8
END
DEFINE PHASE r GRANULES=8
END
LET counter = 10
DISPATCH p ENABLE/BRANCHINDEPENDENT [ q/MAPPING=UNIVERSAL r/MAPPING=UNIVERSAL ]
IF IMOD(counter, 10) != 0 GOTO alt
DISPATCH q
GOTO fin
LABEL alt
DISPATCH r
LABEL fin
HALT
)";
  CompileResult res = compile_source(src);
  ASSERT_TRUE(res.ok);
  // counter % 10 == 0 -> falls through to DISPATCH q; the executive should
  // preprocess the branch and overlap q (universal).
  ExecConfig cfg;
  cfg.grain = 2;
  auto sim_res = sim::simulate(res.program, cfg, CostModel{}, sim::Workload(4),
                               sim::MachineConfig{2});
  EXPECT_EQ(sim_res.granules_executed, 16u);  // p and q, never r
  EXPECT_TRUE(sim_res.diagnostics.empty());
}

}  // namespace
}  // namespace pax::lang
