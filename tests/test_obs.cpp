// test_obs.cpp — the observability layer (DESIGN.md §12).
//
// Covers the trace ring's wrap/overflow-drop accounting, the metrics
// registry's cell-sum identities, the structural-event trace sink, and —
// against the seeded cross-runtime stress harness — the sum identities the
// layer promises: with zero drops, the per-worker busy time reconstructed
// from exec begin/end trace pairs equals the runtime's own accounting
// *exactly* (the dispatch layer stamps both from the same clock reads), the
// granules covered by exec-end records equal the granule totals, and every
// legacy result field equals its metrics-snapshot view. The threaded and
// pool cases run real worker threads with tracing on, so the TSAN CI matrix
// entry for this binary exercises the rings' single-writer contract under
// the race detector.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace_export.hpp"
#include "obs/trace_ring.hpp"
#include "obs/trace_sink.hpp"
#include "sim/trace.hpp"
#include "testing_util.hpp"

namespace pax {
namespace {

using obs::TraceBuffer;
using obs::TraceKind;
using obs::TraceRecord;
using obs::TraceRing;

// --- trace ring -------------------------------------------------------------

TraceRecord numbered(std::uint32_t n) {
  TraceRecord r;
  r.ts_ns = n;
  r.aux = n;
  r.kind = TraceKind::kRefill;
  return r;
}

TEST(TraceRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(TraceRing(0).capacity(), 2u);
  EXPECT_EQ(TraceRing(1).capacity(), 2u);
  EXPECT_EQ(TraceRing(2).capacity(), 2u);
  EXPECT_EQ(TraceRing(3).capacity(), 4u);
  EXPECT_EQ(TraceRing(1000).capacity(), 1024u);
  EXPECT_EQ(TraceRing(1024).capacity(), 1024u);
}

TEST(TraceRing, RetainsEverythingUnderCapacity) {
  TraceRing ring(16);
  for (std::uint32_t i = 0; i < 10; ++i) ring.emit(numbered(i));
  EXPECT_EQ(ring.emitted(), 10u);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_EQ(ring.size(), 10u);
  std::vector<TraceRecord> out;
  ring.snapshot_into(out);
  ASSERT_EQ(out.size(), 10u);
  for (std::uint32_t i = 0; i < 10; ++i) EXPECT_EQ(out[i].aux, i);
}

TEST(TraceRing, WrapOverwritesOldestAndCountsDrops) {
  TraceRing ring(16);
  constexpr std::uint32_t kEmit = 100;
  for (std::uint32_t i = 0; i < kEmit; ++i) ring.emit(numbered(i));
  // The drop count is exactly emitted - capacity: truncation is explicit.
  EXPECT_EQ(ring.emitted(), kEmit);
  EXPECT_EQ(ring.dropped(), kEmit - 16u);
  EXPECT_EQ(ring.size(), 16u);
  // The retained window is the *newest* records, oldest-first.
  std::vector<TraceRecord> out;
  ring.snapshot_into(out);
  ASSERT_EQ(out.size(), 16u);
  for (std::uint32_t i = 0; i < 16; ++i) EXPECT_EQ(out[i].aux, kEmit - 16 + i);
}

TEST(TraceRing, SnapshotAppendsWithoutClearing) {
  TraceRing a(4), b(4);
  a.emit(numbered(1));
  b.emit(numbered(2));
  std::vector<TraceRecord> out;
  a.snapshot_into(out);
  b.snapshot_into(out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].aux, 1u);
  EXPECT_EQ(out[1].aux, 2u);
}

TEST(TraceBuffer, TotalsSumWorkerAndControlRings) {
  TraceBuffer buf(2, {.ring_capacity = 4});
  for (int i = 0; i < 3; ++i) buf.ring(0).emit(numbered(0));
  for (int i = 0; i < 7; ++i) buf.ring(1).emit(numbered(1));  // wraps: 3 drops
  buf.control_ring().emit(numbered(2));
  EXPECT_EQ(buf.workers(), 2u);
  EXPECT_EQ(buf.total_emitted(), 3u + 7u + 1u);
  EXPECT_EQ(buf.total_dropped(), 3u);
}

// --- metrics registry -------------------------------------------------------

TEST(Metrics, CounterSumsWorkerCells) {
  obs::MetricsRegistry reg;
  const obs::MetricId a = reg.register_counter("a");
  const obs::MetricId b = reg.register_counter("b");
  reg.bind(3);
  reg.add(a, 0, 5);
  reg.add(a, 1, 7);
  reg.add(a, 2, 11);
  reg.add(b, 1, 1);
  const obs::MetricsSnapshot s = reg.snapshot();
  EXPECT_EQ(s.value_of("a"), 23u);
  EXPECT_EQ(s.value_of("b"), 1u);
  EXPECT_EQ(s.value_of("missing", 42u), 42u);
  EXPECT_EQ(s.find("missing"), nullptr);
}

TEST(Metrics, GaugeIsLastSetPerCell) {
  obs::MetricsRegistry reg;
  const obs::MetricId g = reg.register_gauge("g");
  reg.bind(2);
  reg.set(g, 0, 100);
  reg.set(g, 0, 3);  // overwrites, does not accumulate
  reg.set(g, 1, 4);
  const obs::MetricsSnapshot s = reg.snapshot();
  ASSERT_NE(s.find("g"), nullptr);
  EXPECT_EQ(s.find("g")->kind, obs::MetricKind::kGauge);
  EXPECT_EQ(s.value_of("g"), 7u);
}

TEST(Metrics, HistogramBucketsCountAndSum) {
  obs::MetricsRegistry reg;
  const obs::MetricId h = reg.register_histogram("h", {10, 100});
  reg.bind(2);
  // Observations land in the first bucket whose bound >= value.
  for (std::uint64_t v : {5u, 10u}) reg.observe(h, 0, v);      // <= 10
  for (std::uint64_t v : {11u, 100u}) reg.observe(h, 1, v);    // <= 100
  for (std::uint64_t v : {101u, 1000u}) reg.observe(h, 0, v);  // overflow
  const obs::MetricsSnapshot s = reg.snapshot();
  const obs::MetricValue* v = s.find("h");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->kind, obs::MetricKind::kHistogram);
  ASSERT_EQ(v->buckets.size(), 3u);
  EXPECT_EQ(v->buckets[0], 2u);
  EXPECT_EQ(v->buckets[1], 2u);
  EXPECT_EQ(v->buckets[2], 2u);
  EXPECT_EQ(v->value, 6u);  // observation count == bucket sum
  EXPECT_EQ(v->sum, 5u + 10u + 11u + 100u + 101u + 1000u);
}

TEST(Metrics, SnapshotPushFoldsControlPlaneValues) {
  obs::MetricsSnapshot s;
  s.push("x", 9);
  s.push("y", 1, obs::MetricKind::kGauge);
  EXPECT_EQ(s.value_of("x"), 9u);
  EXPECT_EQ(s.find("y")->kind, obs::MetricKind::kGauge);
}

// --- structural-event trace sink --------------------------------------------

TEST(TraceSink, MapsStructuralEventsToControlTrack) {
  TraceRing ring(64);
  int forwarded = 0;
  FunctionEventSink next([&](const ExecEvent&) { ++forwarded; });
  obs::TraceEventSink sink(ring, /*job=*/7, &next);

  ExecEvent ev;
  ev.kind = ExecEvent::Kind::kRunOpened;
  ev.run = 3;
  ev.phase = 1;
  sink.on_event(ev);
  ev.kind = ExecEvent::Kind::kGranulesEnabled;
  ev.range = {2, 10};
  sink.on_event(ev);
  ev.kind = ExecEvent::Kind::kDiagnostic;  // not timeline material
  sink.on_event(ev);
  ev.kind = ExecEvent::Kind::kRunCompleted;
  sink.on_event(ev);
  ev.kind = ExecEvent::Kind::kProgramFinished;
  sink.on_event(ev);

  // The diagnostic is forwarded to the chained sink but not recorded.
  EXPECT_EQ(forwarded, 5);
  std::vector<TraceRecord> out;
  ring.snapshot_into(out);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].kind, TraceKind::kRunOpened);
  EXPECT_EQ(out[0].aux, 3u);  // run id
  EXPECT_EQ(out[1].kind, TraceKind::kGranulesEnabled);
  EXPECT_EQ(out[1].aux, 8u);  // enabled-range size
  EXPECT_EQ(out[2].kind, TraceKind::kRunCompleted);
  EXPECT_EQ(out[3].kind, TraceKind::kProgramFinished);
  for (const TraceRecord& r : out) {
    EXPECT_EQ(r.worker, obs::kControlTrack);
    EXPECT_EQ(r.job, 7u);
    EXPECT_GT(r.ts_ns, 0u);
  }
}

// --- threaded runtime: trace + metrics sum identities -----------------------

// Rings sized so the stress programs (<= ~400 granules) can never wrap: the
// exact-identity checks below are only promised at zero drops.
constexpr std::size_t kTestRing = std::size_t{1} << 14;

rt::RtResult run_threaded_traced(const testing::GeneratedProgram& g,
                                 TraceBuffer& trace) {
  testing::ExecutionRecorder rec(g.granules);
  std::atomic<std::uint64_t> sink{0};
  rt::BodyTable bodies = testing::make_recording_bodies(g, rec, sink);
  rt::RtConfig rc;
  rc.workers = g.workers;
  rc.batch = g.batch;
  rc.shards = g.shards;
  rc.steal = g.steal;
  rc.adaptive_grain = g.adaptive_grain;
  rc.trace = &trace;
  rt::RtResult res = rt::ThreadedRuntime(g.program, g.exec,
                                         CostModel::free_of_charge(), bodies, rc)
                         .run();
  rec.expect_exactly_once();
  return res;
}

TEST(ThreadedTracing, BusyAndGranuleIdentitiesAtZeroDrops) {
  for (std::uint64_t seed : {11u, 23u, 47u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const testing::GeneratedProgram g = testing::generate_program(seed);
    TraceBuffer trace(g.workers, {.ring_capacity = kTestRing});
    const rt::RtResult res = run_threaded_traced(g, trace);
    ASSERT_EQ(trace.total_dropped(), 0u);
    EXPECT_GT(trace.total_emitted(), 0u);

    // Busy identity: the dispatcher stamps exec begin/end from the same two
    // clock reads it feeds the busy accounting, so at zero drops the trace
    // reconstruction is *exact*, not approximate.
    const std::vector<std::uint64_t> busy = obs::busy_ns_by_worker(trace);
    ASSERT_EQ(busy.size(), g.workers);
    for (std::uint32_t w = 0; w < g.workers; ++w) {
      EXPECT_EQ(busy[w],
                static_cast<std::uint64_t>(res.worker_busy[w].count()))
          << "worker " << w;
    }

    // Granule identity: exec-end records cover every granule exactly once.
    const std::vector<TraceRecord> merged = obs::merged_records(trace);
    EXPECT_EQ(obs::granules_in(merged), res.granules_executed);
    EXPECT_EQ(res.granules_executed, g.total);

    // merged_records is sorted by timestamp.
    for (std::size_t i = 1; i < merged.size(); ++i)
      ASSERT_LE(merged[i - 1].ts_ns, merged[i].ts_ns);

    // The control track carries the structural story: one program finish,
    // and every phase's run completing. kRunOpened marks a *pending*
    // (overlap-created) run being reached by the program counter — fresh
    // runs created at their dispatch node announce as kGranulesEnabled
    // instead — so completions may outnumber openings.
    std::uint64_t opened = 0, completed = 0, finished = 0;
    for (const TraceRecord& r : merged) {
      if (r.kind == TraceKind::kRunOpened) ++opened;
      if (r.kind == TraceKind::kRunCompleted) ++completed;
      if (r.kind == TraceKind::kProgramFinished) ++finished;
      if (r.kind == TraceKind::kRunOpened ||
          r.kind == TraceKind::kRunCompleted ||
          r.kind == TraceKind::kProgramFinished) {
        EXPECT_EQ(r.worker, obs::kControlTrack);
      }
    }
    EXPECT_EQ(finished, 1u);
    EXPECT_LE(opened, completed);
    EXPECT_GE(completed, g.phases.size());
  }
}

TEST(ThreadedTracing, MetricsSnapshotEqualsLegacyFields) {
  const testing::GeneratedProgram g = testing::generate_program(91);
  TraceBuffer trace(g.workers, {.ring_capacity = kTestRing});
  const rt::RtResult res = run_threaded_traced(g, trace);
  const obs::MetricsSnapshot& m = res.metrics;

  std::uint64_t busy = 0;
  for (auto b : res.worker_busy) busy += static_cast<std::uint64_t>(b.count());

  EXPECT_EQ(m.value_of("worker.tasks"), res.tasks_executed);
  EXPECT_EQ(m.value_of("worker.granules"), res.granules_executed);
  EXPECT_EQ(m.value_of("worker.busy_ns"), busy);
  EXPECT_EQ(m.value_of("worker.steals"), res.steals);
  EXPECT_EQ(m.value_of("worker.steal_fail_spins"), res.steal_fail_spins);
  EXPECT_EQ(m.value_of("worker.wait_wakeups"), res.wait_lock_acquisitions);
  EXPECT_EQ(m.value_of("exec.control_acquisitions"),
            res.refill_lock_acquisitions);
  EXPECT_EQ(m.value_of("exec.control_hold_ns"), res.exec_lock_hold_ns);
  EXPECT_EQ(m.value_of("shard.hits"), res.shard_hits);
  EXPECT_EQ(m.value_of("shard.sibling_hits"), res.shard_sibling_hits);
  EXPECT_EQ(m.value_of("shard.scattered"), res.shard_scattered);
  EXPECT_EQ(m.value_of("shard.count"), res.shards_used);
  EXPECT_EQ(m.value_of("queue.peak_occupancy"), res.peak_local_queue);
  EXPECT_EQ(m.value_of("heap.allocs"), res.heap_allocs);
  EXPECT_EQ(m.value_of("heap.bytes"), res.heap_bytes);
  EXPECT_EQ(m.value_of("run.wall_ns"),
            static_cast<std::uint64_t>(res.wall.count()));
  EXPECT_EQ(m.value_of("trace.emitted"), trace.total_emitted());
  EXPECT_EQ(m.value_of("trace.dropped"), 0u);
}

TEST(ThreadedTracing, UntracedRunCarriesMetricsButNoTraceCounters) {
  const testing::GeneratedProgram g = testing::generate_program(5);
  const rt::RtResult res = testing::run_threaded_checked(g);
  EXPECT_EQ(res.metrics.value_of("worker.granules"), g.total);
  EXPECT_EQ(res.metrics.find("trace.emitted"), nullptr);
  EXPECT_EQ(res.metrics.find("trace.dropped"), nullptr);
}

// --- pool runtime: job-tagged worker-side records ---------------------------

TEST(PoolTracing, JobLifecycleAndGranuleIdentities) {
  for (std::uint64_t seed : {7u, 19u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const testing::GeneratedProgram g = testing::generate_program(seed);
    testing::ExecutionRecorder rec(g.granules);
    std::atomic<std::uint64_t> sink{0};
    rt::BodyTable bodies = testing::make_recording_bodies(g, rec, sink);

    TraceBuffer trace(g.workers, {.ring_capacity = kTestRing});
    pool::PoolConfig pc;
    pc.workers = g.workers;
    pc.batch = g.batch;
    pc.shards = g.shards;
    pc.steal = g.steal;
    pc.adaptive_grain = g.adaptive_grain;
    pc.trace = &trace;

    pool::PoolRuntime pool(pc);
    pool::JobHandle job = pool.submit(g.program, bodies, g.exec);
    ASSERT_EQ(job.wait(), pool::JobState::kComplete);
    pool.shutdown();
    rec.expect_exactly_once();
    const pool::PoolStats ps = pool.stats();
    ASSERT_EQ(trace.total_dropped(), 0u);

    // Worker-side exec records are tagged with the job id; lifecycle records
    // bracket the job. The pool installs no control-track core sink (its
    // jobs hold independent control mutexes), so the control ring is empty.
    EXPECT_EQ(trace.control_ring().emitted(), 0u);
    const std::vector<TraceRecord> merged = obs::merged_records(trace);
    std::uint64_t opens = 0, finalizes = 0;
    for (const TraceRecord& r : merged) {
      if (r.kind == TraceKind::kJobOpen) ++opens;
      if (r.kind == TraceKind::kJobFinalize) ++finalizes;
      if (r.kind == TraceKind::kExecBegin || r.kind == TraceKind::kExecEnd) {
        EXPECT_EQ(r.job, job.id());
      }
    }
    // A small job can finish without any worker ever observing a *drained*
    // resident (the completing worker finalizes directly), so kJobDrain has
    // no count guarantee — open and finalize do.
    EXPECT_EQ(opens, 1u);
    EXPECT_EQ(finalizes, ps.jobs_completed);

    // Granule and busy identities, same contract as the threaded runtime.
    EXPECT_EQ(obs::granules_in(merged), ps.granules_executed);
    const std::vector<std::uint64_t> busy = obs::busy_ns_by_worker(trace);
    for (std::uint32_t w = 0; w < g.workers; ++w)
      EXPECT_EQ(busy[w],
                static_cast<std::uint64_t>(ps.worker_busy[w].count()))
          << "worker " << w;

    // Metrics snapshot vs legacy PoolStats fields.
    EXPECT_EQ(ps.metrics.value_of("worker.granules"), ps.granules_executed);
    EXPECT_EQ(ps.metrics.value_of("worker.tasks"), ps.tasks_executed);
    EXPECT_EQ(ps.metrics.value_of("worker.steals"), ps.steals);
    EXPECT_EQ(ps.metrics.value_of("worker.rotations"), ps.rotations);
    EXPECT_EQ(ps.metrics.value_of("pool.jobs_submitted"), ps.jobs_submitted);
    EXPECT_EQ(ps.metrics.value_of("pool.jobs_completed"), ps.jobs_completed);
    EXPECT_EQ(ps.metrics.value_of("pool.jobs_cancelled"), ps.jobs_cancelled);
    EXPECT_EQ(ps.metrics.value_of("exec.control_hold_ns"),
              ps.exec_lock_hold_ns);
    EXPECT_EQ(ps.metrics.value_of("trace.emitted"), trace.total_emitted());
  }
}

// --- simulator: the trace-record adapter ------------------------------------

TEST(SimTracing, AdapterPreservesBusyTicksAndRunLifecycles) {
  const testing::GeneratedProgram g = testing::generate_program(13);
  sim::Workload wl(g.seed);
  sim::MachineConfig mc;
  mc.workers = g.sim_workers;
  mc.shards = g.sim_shards;
  mc.record_intervals = true;
  const sim::SimResult res =
      sim::simulate(g.program, g.exec, CostModel{}, wl, mc);
  ASSERT_EQ(res.granules_executed, g.total);

  const std::vector<TraceRecord> records = sim::trace_records_of(res);
  ASSERT_FALSE(records.empty());
  for (std::size_t i = 1; i < records.size(); ++i)
    ASSERT_LE(records[i - 1].ts_ns, records[i].ts_ns);

  // Exec begin/end pairs carry the compute ticks at the 1 tick = 1000 ns
  // scale; worker track ids stay in range; run opened records cover every
  // completed run.
  std::uint64_t span_ns = 0, opened = 0, completed = 0;
  std::vector<std::uint64_t> begin_stack(res.workers, 0);
  std::vector<int> depth(res.workers, 0);
  for (const TraceRecord& r : records) {
    if (r.kind == TraceKind::kExecBegin) {
      ASSERT_LT(r.worker, res.workers);
      ASSERT_EQ(depth[r.worker], 0) << "overlapping sim intervals";
      begin_stack[r.worker] = r.ts_ns;
      depth[r.worker] = 1;
    } else if (r.kind == TraceKind::kExecEnd) {
      ASSERT_EQ(depth[r.worker], 1);
      span_ns += r.ts_ns - begin_stack[r.worker];
      depth[r.worker] = 0;
    } else {
      EXPECT_EQ(r.worker, obs::kControlTrack);
      if (r.kind == TraceKind::kRunOpened) ++opened;
      if (r.kind == TraceKind::kRunCompleted) ++completed;
    }
  }
  EXPECT_EQ(span_ns, res.compute_ticks * 1000u);
  EXPECT_EQ(opened, res.runs.size());
  EXPECT_LE(completed, opened);
  EXPECT_GE(completed, g.phases.size());

  // The sim fills the same dotted metric names as the live runtimes.
  EXPECT_EQ(res.metrics.value_of("worker.granules"), res.granules_executed);
  EXPECT_EQ(res.metrics.value_of("worker.busy_ticks"), res.compute_ticks);
  EXPECT_EQ(res.metrics.value_of("run.makespan_ticks"), res.makespan);
  EXPECT_EQ(res.metrics.value_of("shard.count"), res.shards);
}

// --- exporter ---------------------------------------------------------------

TEST(TraceExport, WritesWellFormedChromeTraceJson) {
  const testing::GeneratedProgram g = testing::generate_program(29);
  TraceBuffer trace(g.workers, {.ring_capacity = kTestRing});
  (void)run_threaded_traced(g, trace);

  const std::string path = ::testing::TempDir() + "pax_test_obs.trace.json";
  ASSERT_TRUE(obs::write_chrome_trace(trace, path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string body = ss.str();
  std::remove(path.c_str());

  ASSERT_FALSE(body.empty());
  EXPECT_EQ(body.front(), '{');
  EXPECT_NE(body.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(body.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(body.find("\"pax\""), std::string::npos);      // process lane
  EXPECT_NE(body.find("\"control\""), std::string::npos);  // control track
  EXPECT_NE(body.find("\"ph\":\"X\""), std::string::npos);  // exec spans
  // Balanced close: the events array and the root object both terminate.
  EXPECT_NE(body.rfind("]"), std::string::npos);
  EXPECT_GT(body.rfind("}"), body.rfind("]"));
}

TEST(TraceExport, UnwritablePathFailsGracefully) {
  TraceBuffer trace(1);
  trace.ring(0).emit(numbered(1));
  EXPECT_FALSE(
      obs::write_chrome_trace(trace, "/nonexistent-dir/pax.trace.json"));
}

}  // namespace
}  // namespace pax
