// Smoke tests: end-to-end executive + simulator behaviour on tiny programs.
#include <gtest/gtest.h>

#include "core/executive.hpp"
#include "sim/machine.hpp"

namespace pax {
namespace {

/// Two-phase program: copy A->B then B->C (the paper's identity example).
PhaseProgram two_phase_identity(GranuleId n, MappingKind kind) {
  PhaseProgram prog;
  PhaseId a = prog.define_phase(
      make_phase("copyA", n).reads("A").writes("B"));
  PhaseId b = prog.define_phase(
      make_phase("copyB", n).reads("B").writes("C"));
  prog.dispatch(a, {EnableClause{"copyB", kind, {}}});
  prog.dispatch(b);
  prog.halt();
  (void)b;
  return prog;
}

TEST(ExecutiveSmoke, BarrierBaselineCompletes) {
  PhaseProgram prog = two_phase_identity(64, MappingKind::kIdentity);
  ExecConfig cfg;
  cfg.overlap = false;
  cfg.grain = 4;
  sim::Workload wl(7);
  sim::MachineConfig mc;
  mc.workers = 4;
  sim::SimResult res = sim::simulate(prog, cfg, CostModel{}, wl, mc);
  EXPECT_EQ(res.granules_executed, 128u);
  EXPECT_GT(res.makespan, 0u);
  EXPECT_TRUE(res.diagnostics.empty());
}

TEST(ExecutiveSmoke, IdentityOverlapCompletesAndIsFaster) {
  // Rundown-dominated regime: tasks barely outnumber processors, so each
  // phase ends with a long straggler tail that overlap can fill.
  PhaseProgram prog = two_phase_identity(256, MappingKind::kIdentity);
  sim::Workload wl(7);
  sim::PhaseWorkload pw;
  pw.model = sim::DurationModel::kUniform;
  pw.mean = 100;
  pw.spread = 60;
  wl.set_phase(0, pw);
  wl.set_phase(1, pw);
  sim::MachineConfig mc;
  mc.workers = 32;

  ExecConfig off;
  off.overlap = false;
  off.grain = 4;
  ExecConfig on = off;
  on.overlap = true;

  sim::SimResult r_off = sim::simulate(prog, off, CostModel{}, wl, mc);
  sim::SimResult r_on = sim::simulate(prog, on, CostModel{}, wl, mc);
  EXPECT_EQ(r_off.granules_executed, 512u);
  EXPECT_EQ(r_on.granules_executed, 512u);
  EXPECT_LT(r_on.makespan, r_off.makespan);
}

TEST(ExecutiveSmoke, UniversalOverlapCompletes) {
  PhaseProgram prog;
  PhaseId a = prog.define_phase(
      make_phase("p1", 32).reads("A").writes("B"));
  PhaseId b = prog.define_phase(
      make_phase("p2", 32).reads("C").writes("D"));
  prog.dispatch(a, {EnableClause{"p2", MappingKind::kUniversal, {}}});
  prog.dispatch(b);
  prog.halt();
  ExecConfig cfg;
  cfg.grain = 1;
  sim::SimResult res =
      sim::simulate(prog, cfg, CostModel{}, sim::Workload(3), sim::MachineConfig{4});
  EXPECT_EQ(res.granules_executed, 64u);
}

TEST(ExecutiveSmoke, ReverseIndirectOverlapCompletes) {
  const GranuleId n = 64;
  PhaseProgram prog;
  PhaseId a = prog.define_phase(make_phase("gen", n).writes("A"));
  PhaseId b = prog.define_phase(
      make_phase("sum", n)
          .reads("A", IndexPattern::kIndirect, "IMAP")
          .writes("B"));
  EnableClause clause{"sum", MappingKind::kReverseIndirect, {}};
  // Successor granule r requires current granules {r, (r*7+3) % n}.
  clause.indirection.requires_of = [n](GranuleId r, std::vector<GranuleId>& out) {
    out.insert(out.end(), {r, (r * 7 + 3) % n});
  };
  prog.dispatch(a, {clause});
  prog.dispatch(b);
  prog.halt();
  ExecConfig cfg;
  cfg.grain = 2;
  sim::SimResult res =
      sim::simulate(prog, cfg, CostModel{}, sim::Workload(11), sim::MachineConfig{4});
  EXPECT_EQ(res.granules_executed, 2u * n);
  EXPECT_TRUE(res.diagnostics.empty());
}

TEST(ExecutiveSmoke, NullMappingKeepsPhasesStrict) {
  PhaseProgram prog = two_phase_identity(64, MappingKind::kIdentity);
  // Observe via ExecutiveCore directly: with a null clause nothing of phase 2
  // is enabled before phase 1 completes.
  PhaseProgram p2;
  PhaseId a = p2.define_phase(make_phase("x", 8));
  PhaseId b = p2.define_phase(make_phase("y", 8));
  p2.dispatch(a, {EnableClause{"y", MappingKind::kNull, {}}});
  p2.dispatch(b);
  p2.halt();

  ExecConfig cfg;
  cfg.grain = 1;
  ExecutiveCore core(p2, cfg, CostModel::free_of_charge());
  core.start();
  // Drain phase 1 fully; every assignment must be phase 0 until it is done.
  std::vector<Assignment> out;
  for (int i = 0; i < 8; ++i) {
    auto w = core.request_work(0);
    ASSERT_TRUE(w.has_value());
    EXPECT_EQ(w->phase, a);
    out.push_back(*w);
  }
  EXPECT_FALSE(core.request_work(0).has_value());  // nothing enabled early
  for (auto& asgn : out) core.complete(asgn.ticket);
  // Now phase 2 opens.
  auto w = core.request_work(0);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->phase, b);
  (void)prog;
}

TEST(ExecutiveSmoke, DeterministicAcrossRuns) {
  PhaseProgram prog = two_phase_identity(128, MappingKind::kIdentity);
  ExecConfig cfg;
  cfg.grain = 4;
  sim::Workload wl(99);
  sim::PhaseWorkload pw;
  pw.model = sim::DurationModel::kExponential;
  pw.mean = 50;
  wl.set_phase(0, pw);
  wl.set_phase(1, pw);
  sim::MachineConfig mc;
  mc.workers = 6;
  sim::SimResult r1 = sim::simulate(prog, cfg, CostModel{}, wl, mc);
  sim::SimResult r2 = sim::simulate(prog, cfg, CostModel{}, wl, mc);
  EXPECT_EQ(r1.makespan, r2.makespan);
  EXPECT_EQ(r1.compute_ticks, r2.compute_ticks);
  EXPECT_EQ(r1.exec_ticks, r2.exec_ticks);
}

}  // namespace
}  // namespace pax
