// Lock-rank validator tests (common/lock_rank.hpp).
//
// Three layers:
//   1. the validator primitives (note_acquire / note_release) — always
//      compiled, so the abort paths are death-tested in every build type,
//      including the RelWithDebInfo tier-1 configuration;
//   2. RankedMutex / RankedLock wiring — death-tested when the checks are
//      enabled (debug builds), and *proven absent* when they are not: the
//      same inversion that aborts a checked build must run cleanly in a
//      release build, which pins the zero-cost claim's codegen half;
//   3. the annotated guard helpers under real concurrency — a seeded
//      threaded + pool run with enough shards, workers and stealing to push
//      traffic through every re-scoped critical section (sharded sweeps,
//      shard deposits, queue steals, job finalize, pool accounting). This
//      suite runs in the TSAN CI matrix, so the RankedLock/RankedUniqueLock
//      rewrite is also checked against the happens-before model.
#include <gtest/gtest.h>

#include <mutex>

#include "common/lock_rank.hpp"
#include "testing_util.hpp"

namespace pax {
namespace {

using lock_rank::held;
using lock_rank::note_acquire;
using lock_rank::note_release;

// The zero-cost claim, layout half: the rank lives in the type, the
// validator census in a thread-local — never in the mutex.
static_assert(sizeof(RankedMutex<LockRank::kControl>) == sizeof(std::mutex));
static_assert(sizeof(RankedMutex<LockRank::kSleep>) == sizeof(std::mutex));

// Checks default to !NDEBUG (the tier-1 RelWithDebInfo build runs with them
// off; the Debug CI leg runs with them on) unless forced via the macro.
#ifdef NDEBUG
constexpr bool kExpectChecks = PAX_LOCK_RANK_CHECKS != 0;
#else
constexpr bool kExpectChecks = true;
#endif
static_assert(lock_rank::kChecksEnabled == kExpectChecks);

// --- validator primitives (always compiled) ----------------------------------

TEST(LockRankPrimitives, AscendingAcquisitionIsClean) {
  note_acquire(LockRank::kControl, /*same_rank_ok=*/false);
  note_acquire(LockRank::kShard, /*same_rank_ok=*/false);
  note_acquire(LockRank::kQueue, /*same_rank_ok=*/false);
  EXPECT_EQ(held(LockRank::kControl), 1u);
  EXPECT_EQ(held(LockRank::kShard), 1u);
  EXPECT_EQ(held(LockRank::kQueue), 1u);
  // Non-LIFO release is legal: check_census unlocks front-to-back.
  note_release(LockRank::kControl);
  note_release(LockRank::kQueue);
  note_release(LockRank::kShard);
  EXPECT_EQ(held(LockRank::kShard), 0u);
}

TEST(LockRankPrimitives, SameRankBatchWithTagIsClean) {
  // check_census's pattern: control, then every shard in ascending index
  // order under the kSameRank waiver.
  note_acquire(LockRank::kControl, false);
  note_acquire(LockRank::kShard, false);
  note_acquire(LockRank::kShard, /*same_rank_ok=*/true);
  note_acquire(LockRank::kShard, /*same_rank_ok=*/true);
  EXPECT_EQ(held(LockRank::kShard), 3u);
  note_release(LockRank::kShard);
  note_release(LockRank::kShard);
  note_release(LockRank::kShard);
  note_release(LockRank::kControl);
}

TEST(LockRankPrimitivesDeathTest, InversionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        note_acquire(LockRank::kPool, false);
        note_acquire(LockRank::kJob, false);  // job < pool: inversion
      },
      "lock-rank violation.*'job'.*'pool'");
}

TEST(LockRankPrimitivesDeathTest, ExecutiveLockUnderJobMutexAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // The documented pool rule "never hold a job mutex across executive
  // calls", as the validator sees it.
  EXPECT_DEATH(
      {
        note_acquire(LockRank::kJob, false);
        note_acquire(LockRank::kControl, false);
      },
      "lock-rank violation.*'control'.*'job'");
}

TEST(LockRankPrimitivesDeathTest, SameRankWithoutTagAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        note_acquire(LockRank::kShard, false);
        note_acquire(LockRank::kShard, false);
      },
      "without kSameRank");
}

TEST(LockRankPrimitivesDeathTest, ReleasingUnheldRankAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(note_release(LockRank::kSleep),
               "release of a rank this thread does not hold");
}

// --- RankedMutex wiring ------------------------------------------------------

TEST(RankedMutex, CheckedBuildsTrackHeldRanksThroughGuards) {
  RankedMutex<LockRank::kControl> control;
  RankedMutex<LockRank::kShard> shard;
  {
    RankedLock outer(control);
    RankedLock inner(shard);
    if (lock_rank::kChecksEnabled) {
      EXPECT_EQ(held(LockRank::kControl), 1u);
      EXPECT_EQ(held(LockRank::kShard), 1u);
    } else {
      // Zero-cost claim: release-build guards never touch the census.
      EXPECT_EQ(held(LockRank::kControl), 0u);
      EXPECT_EQ(held(LockRank::kShard), 0u);
    }
  }
  EXPECT_EQ(held(LockRank::kControl), 0u);
  EXPECT_EQ(held(LockRank::kShard), 0u);
}

TEST(RankedMutex, UniqueLockBalancesAcrossManualUnlockRelock) {
  // The condition_variable_any wait path: unlock then relock through the
  // guard's own methods, keeping the census balanced.
  RankedMutex<LockRank::kSleep> mu;
  RankedUniqueLock lock(mu);
  lock.unlock();
  EXPECT_EQ(held(LockRank::kSleep), 0u);
  lock.lock();
  EXPECT_EQ(held(LockRank::kSleep), lock_rank::kChecksEnabled ? 1u : 0u);
}

TEST(RankedMutexDeathTest, InversionThroughGuardsAbortsWhenChecked) {
  if (!lock_rank::kChecksEnabled) {
    // Release build: the identical inversion must run to completion —
    // RankedMutex::lock() compiled down to std::mutex::lock() with no
    // validator call. (Two distinct mutexes, so no deadlock either.)
    RankedMutex<LockRank::kSleep> sleep_mu;
    RankedMutex<LockRank::kControl> control_mu;
    RankedLock outer(sleep_mu);
    RankedLock inner(control_mu);
    SUCCEED();
    return;
  }
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        RankedMutex<LockRank::kSleep> sleep_mu;
        RankedMutex<LockRank::kControl> control_mu;
        RankedLock outer(sleep_mu);
        RankedLock inner(control_mu);
      },
      "lock-rank violation.*'control'.*'sleep'");
}

TEST(RankedMutexDeathTest, SameRankGuardWithoutTagAbortsWhenChecked) {
  if (!lock_rank::kChecksEnabled) {
    GTEST_SKIP() << "rank checks compiled out in this build";
  }
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        RankedMutex<LockRank::kShard> a;
        RankedMutex<LockRank::kShard> b;
        RankedLock la(a);
        RankedLock lb(b);  // no kSameRank tag
      },
      "without kSameRank");
}

TEST(RankedMutex, SameRankGuardWithTagIsClean) {
  RankedMutex<LockRank::kShard> a;
  RankedMutex<LockRank::kShard> b;
  RankedLock la(a);
  RankedLock lb(b, kSameRank);
  if (lock_rank::kChecksEnabled) {
    EXPECT_EQ(held(LockRank::kShard), 2u);
  }
}

// --- the real lock graph under load (runs in the TSAN CI matrix) -------------

// One run of any multi-threaded test certifies the lock graph acyclic in a
// checked build — these two force traffic through every re-scoped guard:
// control sweeps + shard deposits + sibling pulls (many shards, small
// batches), queue pushes/pops/steals (steal on, more workers than shards
// busy), the sleep mutex (workers outnumber work at the tail), and on the
// pool run the job-bookkeeping and pool-accounting sections including the
// finalize path's job-mutex -> queue-mutex peak probe.
TEST(LockRankIntegration, ThreadedSweepAndStealTrafficIsRankClean) {
  testing::GeneratedProgram g = testing::generate_program(/*seed=*/1986);
  g.workers = 4;
  g.batch = 2;
  g.shards = kAutoShards;
  g.steal = true;
  g.adaptive_grain = true;
  const rt::RtResult res = testing::run_threaded_checked(g);
  EXPECT_GT(res.shard_hits + res.shard_sibling_hits, 0u)
      << "config failed to exercise the shard-buffer guards";
}

TEST(LockRankIntegration, PoolFinalizeAndCancelTrafficIsRankClean) {
  testing::GeneratedProgram g = testing::generate_program(/*seed=*/1986);
  g.workers = 4;
  g.batch = 2;
  g.shards = kAutoShards;
  g.steal = true;
  g.cancel_second_job = true;  // exercises cancel's pool-then-job sequence
  testing::run_pool_checked(g);
}

}  // namespace
}  // namespace pax
