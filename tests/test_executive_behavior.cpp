// Behavioural tests of ExecutiveCore driven directly (no simulator): split
// policies, conflict submission, deferred map builds, caching, elevation,
// interlock diagnostics, branch preprocessing, loops, and a property sweep
// asserting exactly-once execution across the configuration space.
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "core/dataflow.hpp"
#include "core/executive.hpp"

namespace pax {
namespace {

/// Drain an executive to completion with one synthetic worker, returning the
/// executed granule set per *run* (phases may run many times in loops).
/// Runs idle_work whenever the queue is empty (like a parked worker donating
/// time). The per-run RangeSet aborts on any double execution.
std::map<RunId, std::pair<PhaseId, RangeSet>> drain(ExecutiveCore& core,
                                                    GranuleId expect_total) {
  std::map<RunId, std::pair<PhaseId, RangeSet>> done;
  GranuleId executed = 0;
  std::size_t spins = 0;
  while (!core.finished() || core.work_available()) {
    PAX_CHECK_MSG(++spins < 10'000'000, "drain did not converge");
    auto w = core.request_work(0);
    if (!w.has_value()) {
      if (core.idle_work()) continue;
      PAX_CHECK_MSG(core.finished(), "no work, idle_work dry, program unfinished");
      break;
    }
    auto& entry = done[w->run];
    entry.first = w->phase;
    entry.second.insert(w->range);
    executed += w->range.size();
    core.complete(w->ticket);
  }
  EXPECT_EQ(executed, expect_total);
  return done;
}

PhaseProgram identity_two_phase(GranuleId n) {
  PhaseProgram prog;
  PhaseId a = prog.define_phase(make_phase("a", n).writes("X"));
  PhaseId b = prog.define_phase(make_phase("b", n).reads("X").writes("Y"));
  prog.dispatch(a, {EnableClause{"b", MappingKind::kIdentity, {}}});
  prog.dispatch(b);
  prog.halt();
  (void)a;
  (void)b;
  return prog;
}

// --- exactly-once execution across the config space (property sweep) -----------

struct SweepParam {
  MappingKind kind;
  GranuleId grain;
  SplitPolicy policy;
  bool defer;
  GranuleId subset;
};

class ExactlyOnce : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ExactlyOnce, EveryGranuleExecutesExactlyOnce) {
  const SweepParam p = GetParam();
  const GranuleId n = 96;
  PhaseProgram prog;
  PhaseId a = prog.define_phase(make_phase("a", n).writes("X"));
  PhaseId b = prog.define_phase(make_phase("b", n).reads("X").writes("Y"));
  EnableClause clause{"b", p.kind, {}};
  if (p.kind == MappingKind::kReverseIndirect) {
    clause.indirection.requires_of = [n](GranuleId r, std::vector<GranuleId>& out) {
      out.insert(out.end(), {r, (3 * r + 5) % n, (7 * r + 1) % n});
    };
  }
  if (p.kind == MappingKind::kForwardIndirect) {
    clause.indirection.enables_of = [n](GranuleId g, std::vector<GranuleId>& out) {
      out.push_back((5 * g + 2) % n);
    };
  }
  prog.dispatch(a, {clause});
  prog.dispatch(b);
  prog.halt();

  ExecConfig cfg;
  cfg.grain = p.grain;
  cfg.split_policy = p.policy;
  cfg.defer_map_build = p.defer;
  cfg.indirect_subset = p.subset;
  ExecutiveCore core(prog, cfg, CostModel{});
  core.start();
  auto done = drain(core, 2 * n);
  ASSERT_EQ(done.size(), 2u);
  for (auto& [run, entry] : done) {
    EXPECT_TRUE(entry.first == a || entry.first == b);
    EXPECT_EQ(entry.second.cardinality(), n);
    EXPECT_EQ(entry.second.fragments(), 1u);
  }
  EXPECT_TRUE(core.diagnostics().empty());
  EXPECT_EQ(core.live_descriptors(), 0u);  // no leaked descriptors
}

std::string sweep_name(const ::testing::TestParamInfo<SweepParam>& info) {
  const SweepParam& p = info.param;
  std::string kind;
  switch (p.kind) {
    case MappingKind::kUniversal: kind = "universal"; break;
    case MappingKind::kIdentity: kind = "identity"; break;
    case MappingKind::kReverseIndirect: kind = "reverse"; break;
    case MappingKind::kForwardIndirect: kind = "forward"; break;
    case MappingKind::kNull: kind = "null"; break;
  }
  return kind + "_g" + std::to_string(p.grain) + "_" +
         to_string(p.policy) + (p.defer ? "_defer" : "_eager") + "_s" +
         std::to_string(p.subset);
}

std::vector<SweepParam> sweep_params() {
  std::vector<SweepParam> out;
  for (MappingKind kind :
       {MappingKind::kUniversal, MappingKind::kIdentity,
        MappingKind::kReverseIndirect, MappingKind::kForwardIndirect,
        MappingKind::kNull}) {
    for (GranuleId grain : {1u, 3u, 8u, 96u, 1000u}) {
      for (SplitPolicy policy :
           {SplitPolicy::kInline, SplitPolicy::kPresplit, SplitPolicy::kDeferred}) {
        // defer/subset only matter for indirect kinds; keep the sweep lean.
        const bool indirect = kind == MappingKind::kReverseIndirect ||
                              kind == MappingKind::kForwardIndirect;
        if (indirect) {
          out.push_back({kind, grain, policy, true, 0});
          out.push_back({kind, grain, policy, false, 17});
        } else {
          out.push_back({kind, grain, policy, true, 0});
        }
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(ConfigSpace, ExactlyOnce,
                         ::testing::ValuesIn(sweep_params()), sweep_name);

// --- ordering invariants ----------------------------------------------------------

TEST(ExecutiveOrder, IdentitySuccessorNeverPrecedesItsEnabler) {
  const GranuleId n = 48;
  PhaseProgram prog = identity_two_phase(n);
  ExecConfig cfg;
  cfg.grain = 4;
  ExecutiveCore core(prog, cfg, CostModel{});
  core.start();
  RangeSet a_done;
  std::size_t spins = 0;
  while (!core.finished() || core.work_available()) {
    ASSERT_LT(++spins, 1'000'000u);
    auto w = core.request_work(0);
    if (!w.has_value()) {
      if (!core.idle_work()) break;
      continue;
    }
    if (w->phase == 1) {
      for (GranuleId g = w->range.lo; g < w->range.hi; ++g)
        EXPECT_TRUE(a_done.contains(g)) << "successor granule " << g
                                        << " ran before its enabler";
    }
    if (w->phase == 0) a_done.insert(w->range);
    core.complete(w->ticket);
  }
}

TEST(ExecutiveOrder, ReverseIndirectWaitsForAllRequirements) {
  const GranuleId n = 32;
  PhaseProgram prog;
  PhaseId a = prog.define_phase(make_phase("a", n).writes("X"));
  prog.define_phase(make_phase("b", n)
                        .reads("X", IndexPattern::kIndirect, "M")
                        .writes("Y"));
  auto requires_of = [n](GranuleId r) {
    return std::vector<GranuleId>{r, (r + 11) % n, (r + 17) % n};
  };
  EnableClause clause{"b", MappingKind::kReverseIndirect, {}};
  clause.indirection.requires_of = [requires_of](GranuleId r,
                                                 std::vector<GranuleId>& out) {
    for (GranuleId p : requires_of(r)) out.push_back(p);
  };
  prog.dispatch(a, {clause});
  prog.dispatch(1);
  prog.halt();

  ExecConfig cfg;
  cfg.grain = 2;
  cfg.defer_map_build = false;  // build at dispatch: overlap from the start
  ExecutiveCore core(prog, cfg, CostModel{});
  core.start();
  RangeSet a_done;
  std::size_t spins = 0;
  while (!core.finished() || core.work_available()) {
    ASSERT_LT(++spins, 1'000'000u);
    auto w = core.request_work(0);
    if (!w.has_value()) {
      if (!core.idle_work()) break;
      continue;
    }
    if (w->phase == 1) {
      for (GranuleId g = w->range.lo; g < w->range.hi; ++g)
        for (GranuleId need : requires_of(g))
          EXPECT_TRUE(a_done.contains(need))
              << "successor " << g << " ran before requirement " << need;
    }
    if (w->phase == 0) a_done.insert(w->range);
    core.complete(w->ticket);
  }
}

// --- conflict submission (the mechanism's original purpose) -------------------------

TEST(ExecutiveConflicts, DynamicallySubmittedWorkWaitsForBlocker) {
  const GranuleId n = 16;
  PhaseProgram prog;
  PhaseId a = prog.define_phase(make_phase("a", n).writes("X"));
  PhaseId extra = prog.define_phase(make_phase("extra", 4).reads("X"));
  prog.dispatch(a);
  prog.halt();

  ExecConfig cfg;
  cfg.grain = 4;
  ExecutiveCore core(prog, cfg, CostModel{});
  core.start();

  // Grab the blocker run's id through the observer.
  RunId blocker = kNoRun;
  FunctionEventSink sink([&](const ExecEvent& ev) {
    if (ev.kind == ExecEvent::Kind::kRunCreated && blocker == kNoRun)
      blocker = ev.run;
  });
  core.set_event_sink(&sink);
  auto first = core.request_work(0);
  ASSERT_TRUE(first.has_value());
  blocker = first->run;

  core.submit_conflicting(blocker, extra, {0, 4});

  // The conflicting work must not be schedulable while `a` is incomplete.
  std::vector<Assignment> held{*first};
  while (auto w = core.request_work(0)) {
    EXPECT_EQ(w->phase, a);
    held.push_back(*w);
  }
  for (auto& h : held) core.complete(h.ticket);

  // Now the conflicting work appears — at elevated priority.
  auto w = core.request_work(0);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->phase, extra);
  EXPECT_EQ(w->priority, Priority::kElevated);
  core.complete(w->ticket);
  EXPECT_TRUE(core.finished());
}

TEST(ExecutiveConflicts, SubmitAgainstCompleteRunIsImmediatelyReady) {
  PhaseProgram prog;
  PhaseId a = prog.define_phase(make_phase("a", 2).writes("X"));
  PhaseId extra = prog.define_phase(make_phase("extra", 2).reads("X"));
  prog.dispatch(a);
  prog.halt();
  ExecConfig cfg;
  cfg.grain = 2;
  ExecutiveCore core(prog, cfg, CostModel{});
  core.start();
  auto w = core.request_work(0);
  const RunId blocker = w->run;
  core.complete(w->ticket);
  core.submit_conflicting(blocker, extra, {0, 2});
  auto w2 = core.request_work(0);
  ASSERT_TRUE(w2.has_value());
  EXPECT_EQ(w2->phase, extra);
  core.complete(w2->ticket);
}

// --- interlock diagnostics ------------------------------------------------------------

TEST(ExecutiveInterlock, WrongSuccessorNameSuppressesOverlapWithDiagnostic) {
  PhaseProgram prog;
  prog.define_phase(make_phase("a", 8).writes("X"));
  prog.define_phase(make_phase("b", 8).reads("X"));
  prog.define_phase(make_phase("c", 8));
  prog.dispatch(0, {EnableClause{"c", MappingKind::kUniversal, {}}});  // wrong!
  prog.dispatch(1);
  prog.halt();
  ExecConfig cfg;
  cfg.grain = 8;
  ExecutiveCore core(prog, cfg, CostModel{});
  core.start();
  ASSERT_FALSE(core.diagnostics().empty());
  EXPECT_NE(core.diagnostics()[0].find("overlap suppressed"), std::string::npos);
  // Program still runs correctly, just without overlap.
  drain(core, 16);
}

// --- branch preprocessing ---------------------------------------------------------------

TEST(ExecutiveBranch, PhaseIndependentBranchIsPreprocessedForOverlap) {
  // a ENABLE [b, c]; branch selects b; with preprocessing, b's run is created
  // while a still executes.
  PhaseProgram prog;
  prog.define_phase(make_phase("a", 8).writes("X"));
  prog.define_phase(make_phase("b", 8));
  prog.define_phase(make_phase("c", 8));
  prog.dispatch(0, {EnableClause{"b", MappingKind::kUniversal, {}},
                    EnableClause{"c", MappingKind::kUniversal, {}}});
  const auto branch_idx = static_cast<std::uint32_t>(prog.size());
  // Shape: branch -> {b-node, c-node}; after b, jump over c to halt.
  prog.branch("choose", [](const ProgramEnv&) { return std::size_t{0}; },
              {branch_idx + 1, branch_idx + 3}, /*phase_independent=*/true);
  prog.dispatch(1);  // arm 0 -> b
  prog.branch("join", [](const ProgramEnv&) { return std::size_t{0}; },
              {branch_idx + 4}, /*phase_independent=*/true);
  prog.dispatch(2);  // arm 1 -> c
  prog.halt();       // node branch_idx + 4

  ExecConfig cfg;
  cfg.grain = 8;
  bool b_created_early = false;
  ExecutiveCore core(prog, cfg, CostModel{});
  FunctionEventSink sink([&](const ExecEvent& ev) {
    if (ev.kind == ExecEvent::Kind::kOverlapSetUp && ev.phase == 1)
      b_created_early = true;
  });
  core.set_event_sink(&sink);
  core.start();
  EXPECT_TRUE(b_created_early);

  // b's universal work is already queued behind a's root.
  auto w1 = core.request_work(0);  // a
  auto w2 = core.request_work(0);  // b, before a completes
  ASSERT_TRUE(w1 && w2);
  EXPECT_EQ(w1->phase, 0u);
  EXPECT_EQ(w2->phase, 1u);
  core.complete(w1->ticket);
  core.complete(w2->ticket);
  // After the branch, c must never run.
  while (auto w = core.request_work(0)) {
    EXPECT_NE(w->phase, 2u);
    core.complete(w->ticket);
  }
  EXPECT_TRUE(core.finished());
}

TEST(ExecutiveBranch, PhaseDependentBranchBlocksOverlap) {
  PhaseProgram prog;
  prog.define_phase(make_phase("a", 8).writes("X"));
  prog.define_phase(make_phase("b", 8));
  prog.dispatch(0, {EnableClause{"b", MappingKind::kUniversal, {}}});
  const auto branch_idx = static_cast<std::uint32_t>(prog.size());
  prog.branch("data_dependent", [](const ProgramEnv&) { return std::size_t{0}; },
              {branch_idx + 1}, /*phase_independent=*/false);
  prog.dispatch(1);
  prog.halt();

  ExecConfig cfg;
  cfg.grain = 8;
  ExecutiveCore core(prog, cfg, CostModel{});
  core.start();
  auto w1 = core.request_work(0);
  ASSERT_TRUE(w1.has_value());
  // No b work before a completes: the branch cannot be preprocessed.
  EXPECT_FALSE(core.request_work(0).has_value());
  core.complete(w1->ticket);
  auto w2 = core.request_work(0);
  ASSERT_TRUE(w2.has_value());
  EXPECT_EQ(w2->phase, 1u);
  core.complete(w2->ticket);
}

// --- early serial actions ----------------------------------------------------------------

TEST(ExecutiveSerial, NonConflictingSerialHoistedOnlyWithEarlySerial) {
  for (const bool early : {false, true}) {
    PhaseProgram prog;
    prog.define_phase(make_phase("a", 4).writes("X"));
    prog.define_phase(make_phase("b", 4));
    prog.dispatch(0, {EnableClause{"b", MappingKind::kUniversal, {}}});
    prog.serial("bookkeeping", {}, 0, /*conflicts=*/false);
    prog.dispatch(1);
    prog.halt();

    ExecConfig cfg;
    cfg.grain = 4;
    cfg.early_serial = early;
    ExecutiveCore core(prog, cfg, CostModel{});
    core.start();
    auto w1 = core.request_work(0);
    ASSERT_TRUE(w1.has_value());
    const auto w2 = core.request_work(0);
    EXPECT_EQ(w2.has_value(), early) << "early_serial=" << early;
    core.complete(w1->ticket);
    if (w2) core.complete(w2->ticket);
    drain(core, w2 ? 0 : 4);
  }
}

TEST(ExecutiveSerial, SerialActionRunsExactlyOncePerPass) {
  int runs = 0;
  PhaseProgram prog;
  prog.define_phase(make_phase("a", 4).writes("X"));
  prog.define_phase(make_phase("b", 4));
  prog.dispatch(0, {EnableClause{"b", MappingKind::kUniversal, {}}});
  prog.serial("count", [&runs](ProgramEnv&) { ++runs; }, 0, /*conflicts=*/false);
  prog.dispatch(1);
  prog.halt();
  ExecConfig cfg;
  cfg.grain = 4;
  cfg.early_serial = true;
  ExecutiveCore core(prog, cfg, CostModel{});
  core.start();
  drain(core, 8);
  EXPECT_EQ(runs, 1);  // hoisted once, not re-run at the program counter
}

// --- loops and re-dispatch ---------------------------------------------------------------

TEST(ExecutiveLoop, BackwardBranchRedispatchesPhases) {
  PhaseProgram prog;
  prog.define_phase(make_phase("body", 8).writes("X"));
  prog.serial("init", [](ProgramEnv& env) { env.set("i", 0); }, 0, false);
  const std::uint32_t top = prog.dispatch(0);
  prog.serial("inc", [](ProgramEnv& env) { env.add("i", 1); }, 0, false);
  prog.branch("loop",
              [](const ProgramEnv& env) {
                return env.get("i") < 5 ? std::size_t{0} : std::size_t{1};
              },
              {top, static_cast<std::uint32_t>(prog.size() + 1)}, true);
  prog.halt();
  ExecConfig cfg;
  cfg.grain = 8;
  ExecutiveCore core(prog, cfg, CostModel{});
  core.start();
  drain(core, 5 * 8);
  EXPECT_EQ(core.env().get("i"), 5);
}

TEST(ExecutiveLoop, OverlapAcrossLoopIterations) {
  // body ENABLE [body/...]: the lookahead goes through the backward branch
  // to the same dispatch node of the next iteration.
  PhaseProgram prog;
  prog.define_phase(make_phase("body", 16).writes("B16"));
  prog.serial("init", [](ProgramEnv& env) { env.set("i", 0); }, 0, false);
  const std::uint32_t top =
      prog.dispatch(0, {EnableClause{"body", MappingKind::kUniversal, {}}});
  prog.serial("inc", [](ProgramEnv& env) { env.add("i", 1); }, 0, false);
  prog.branch("loop",
              [](const ProgramEnv& env) {
                return env.get("i") < 3 ? std::size_t{0} : std::size_t{1};
              },
              {top, static_cast<std::uint32_t>(prog.size() + 1)}, true);
  prog.halt();
  ExecConfig cfg;
  cfg.grain = 16;
  cfg.early_serial = true;  // hoist "inc" to see through to the next iteration
  ExecutiveCore core(prog, cfg, CostModel{});
  core.start();
  // Two assignments must be available at once (iterations overlap).
  auto w1 = core.request_work(0);
  auto w2 = core.request_work(0);
  ASSERT_TRUE(w1.has_value());
  EXPECT_TRUE(w2.has_value());
  core.complete(w1->ticket);
  if (w2) core.complete(w2->ticket);
  drain(core, 16);  // one iteration left
  EXPECT_TRUE(core.finished());
}

// --- map caching -------------------------------------------------------------------------

TEST(ExecutiveMapCache, StableIndirectionBuildsOnceAcrossIterations) {
  PhaseProgram prog;
  prog.define_phase(make_phase("a", 32).writes("X"));
  prog.define_phase(make_phase("b", 32).reads("X", IndexPattern::kIndirect, "M"));
  EnableClause clause{"b", MappingKind::kReverseIndirect, {}};
  clause.indirection.requires_of = [](GranuleId r, std::vector<GranuleId>& out) {
    out.push_back(r);
  };
  clause.indirection.stable = true;
  prog.serial("init", [](ProgramEnv& env) { env.set("i", 0); }, 0, false);
  const std::uint32_t top = prog.dispatch(0, {clause});
  prog.dispatch(1);
  prog.serial("inc", [](ProgramEnv& env) { env.add("i", 1); }, 0, false);
  prog.branch("loop",
              [](const ProgramEnv& env) {
                return env.get("i") < 4 ? std::size_t{0} : std::size_t{1};
              },
              {top, static_cast<std::uint32_t>(prog.size() + 1)}, true);
  prog.halt();

  ExecConfig cfg;
  cfg.grain = 8;
  cfg.defer_map_build = false;  // build at dispatch so every run materialises
  ExecutiveCore core(prog, cfg, CostModel{});
  core.start();
  drain(core, 4 * 64);
  // One build (32 entries), three cached reuses.
  EXPECT_EQ(core.ledger().count(MgmtOp::kMapBuildEntry), 32u);
  EXPECT_GT(core.ledger().count(MgmtOp::kMapReset), 0u);
}

TEST(ExecutiveMapCache, UnstableIndirectionRebuildsEveryRun) {
  PhaseProgram prog;
  prog.define_phase(make_phase("a", 32).writes("X"));
  prog.define_phase(make_phase("b", 32).reads("X", IndexPattern::kIndirect, "M"));
  EnableClause clause{"b", MappingKind::kReverseIndirect, {}};
  clause.indirection.requires_of = [](GranuleId r, std::vector<GranuleId>& out) {
    out.push_back(r);
  };
  clause.indirection.stable = false;
  prog.serial("init", [](ProgramEnv& env) { env.set("i", 0); }, 0, false);
  const std::uint32_t top = prog.dispatch(0, {clause});
  prog.dispatch(1);
  prog.serial("inc", [](ProgramEnv& env) { env.add("i", 1); }, 0, false);
  prog.branch("loop",
              [](const ProgramEnv& env) {
                return env.get("i") < 4 ? std::size_t{0} : std::size_t{1};
              },
              {top, static_cast<std::uint32_t>(prog.size() + 1)}, true);
  prog.halt();

  ExecConfig cfg;
  cfg.grain = 8;
  cfg.defer_map_build = false;
  ExecutiveCore core(prog, cfg, CostModel{});
  core.start();
  drain(core, 4 * 64);
  EXPECT_EQ(core.ledger().count(MgmtOp::kMapBuildEntry), 4u * 32u);
  EXPECT_EQ(core.ledger().count(MgmtOp::kMapReset), 0u);
}

// --- elevation with subsets ---------------------------------------------------------------

TEST(ExecutiveElevation, SubsetEnablersAreElevatedInPreferredOrder) {
  const GranuleId n = 64;
  PhaseProgram prog;
  prog.define_phase(make_phase("a", n).writes("X"));
  prog.define_phase(make_phase("b", n).reads("X", IndexPattern::kIndirect, "M"));
  EnableClause clause{"b", MappingKind::kReverseIndirect, {}};
  // Successor r requires exactly current granule n-1-r (reversed identity).
  clause.indirection.requires_of = [n](GranuleId r, std::vector<GranuleId>& out) {
    out.push_back(n - 1 - r);
  };
  prog.dispatch(0, {clause});
  prog.dispatch(1);
  prog.halt();

  ExecConfig cfg;
  cfg.grain = 4;
  cfg.indirect_subset = 4;       // solve successors {0,1,2,3}
  cfg.defer_map_build = false;   // materialise immediately
  cfg.elevate_enabling = true;
  ExecutiveCore core(prog, cfg, CostModel{});
  core.start();
  // The first assignments must be the elevated enablers of successors 0..3,
  // i.e. current granules 63, 62, 61, 60 in that (preferred) order.
  for (GranuleId expect : {n - 1, n - 2, n - 3, n - 4}) {
    auto w = core.request_work(0);
    ASSERT_TRUE(w.has_value());
    EXPECT_EQ(w->priority, Priority::kElevated);
    EXPECT_EQ(w->range.lo, expect);
    EXPECT_EQ(w->range.size(), 1u);
    core.complete(w->ticket);
  }
  drain(core, 2 * n - 4);
}

// --- pool hygiene ----------------------------------------------------------------------

TEST(ExecutiveHygiene, NoDescriptorsLeakAcrossConfigs) {
  for (const GranuleId grain : {1u, 5u, 32u}) {
    for (const SplitPolicy policy :
         {SplitPolicy::kInline, SplitPolicy::kPresplit, SplitPolicy::kDeferred}) {
      PhaseProgram prog = identity_two_phase(64);
      ExecConfig cfg;
      cfg.grain = grain;
      cfg.split_policy = policy;
      ExecutiveCore core(prog, cfg, CostModel{});
      core.start();
      drain(core, 128);
      EXPECT_EQ(core.live_descriptors(), 0u)
          << "grain=" << grain << " policy=" << to_string(policy);
    }
  }
}

// --- batched worker protocol --------------------------------------------------

TEST(BatchedProtocol, RequestWorkBatchPopsDisjointPrefixes) {
  const GranuleId n = 64;
  PhaseProgram prog = identity_two_phase(n);
  ExecConfig cfg;
  cfg.grain = 4;
  ExecutiveCore core(prog, cfg, CostModel{});
  core.start();

  std::vector<Assignment> batch;
  const std::size_t got = core.request_work_batch(0, 5, batch);
  ASSERT_EQ(got, 5u);
  ASSERT_EQ(batch.size(), 5u);
  RangeSet seen;
  for (const Assignment& a : batch) {
    EXPECT_EQ(a.range.size(), 4u);
    seen.insert(a.range);  // RangeSet aborts on overlap
  }
  EXPECT_EQ(seen.cardinality(), 20u);

  // Empty-queue batch: returns 0 and appends nothing.
  std::vector<Assignment> rest;
  while (core.request_work_batch(0, 8, rest) > 0) {
  }
  for (const Assignment& a : rest) core.complete(a.ticket);
  for (const Assignment& a : batch) core.complete(a.ticket);
  while (!core.finished() || core.work_available()) {
    std::vector<Assignment> more;
    if (core.request_work_batch(0, 8, more) == 0) {
      if (!core.idle_work()) break;
      continue;
    }
    std::vector<Ticket> tickets;
    for (const Assignment& a : more) tickets.push_back(a.ticket);
    core.complete_batch(tickets);
  }
  EXPECT_TRUE(core.finished());
  EXPECT_EQ(core.live_descriptors(), 0u);
}

TEST(BatchedProtocol, CompleteBatchMatchesSingleCompletionOutcome) {
  // Drive the identical program once with single-item completion and once
  // with batch-of-8 completion: both must execute every granule exactly
  // once, finish the program, and agree on completion/op counts.
  const GranuleId n = 96;
  auto drive = [&](std::size_t batch_n) {
    PhaseProgram prog;
    PhaseId a = prog.define_phase(make_phase("a", n).writes("X"));
    PhaseId b = prog.define_phase(make_phase("b", n).reads("X").writes("Y"));
    EnableClause clause{"b", MappingKind::kReverseIndirect, {}};
    clause.indirection.requires_of = [n](GranuleId r,
                                         std::vector<GranuleId>& out) {
      out.insert(out.end(), {r, (3 * r + 5) % n, (7 * r + 1) % n});
    };
    prog.dispatch(a, {clause});
    prog.dispatch(b);
    prog.halt();

    ExecConfig cfg;
    cfg.grain = 4;
    ExecutiveCore core(prog, cfg, CostModel{});
    core.start();
    GranuleId executed = 0;
    std::uint64_t tasks = 0;
    bool any_run_completed = false;
    std::size_t spins = 0;
    while (!core.finished() || core.work_available()) {
      PAX_CHECK_MSG(++spins < 1'000'000, "batch drain did not converge");
      std::vector<Assignment> batch;
      if (core.request_work_batch(0, batch_n, batch) == 0) {
        if (core.idle_work()) continue;
        break;
      }
      std::vector<Ticket> tickets;
      for (const Assignment& a : batch) {
        executed += a.range.size();
        tickets.push_back(a.ticket);
      }
      tasks += tickets.size();
      const CompletionResult res = core.complete_batch(tickets);
      any_run_completed |= res.run_completed;
    }
    EXPECT_EQ(executed, 2 * n);
    EXPECT_TRUE(core.finished());
    EXPECT_TRUE(any_run_completed);
    EXPECT_TRUE(core.diagnostics().empty());
    EXPECT_EQ(core.live_descriptors(), 0u);
    // Completion processing stays per ticket under batching: one kCompletion
    // charge per retired task (batching coalesces enqueues, not accounting).
    EXPECT_EQ(core.ledger().count(MgmtOp::kCompletion), tasks);
  };
  drive(1);
  drive(8);
}

TEST(BatchedProtocol, BatchCompletionCoalescesEnablementEvents) {
  // Forward-indirect scatter: each current granule enables one successor
  // granule far away. Retiring a whole wavefront in one complete_batch must
  // enqueue the newly enabled successors as coalesced ranges — observable as
  // far fewer kGranulesEnabled events than per-ticket completion emits.
  const GranuleId n = 64;
  auto count_enable_events = [&](bool batched) {
    PhaseProgram prog;
    PhaseId a = prog.define_phase(make_phase("a", n).writes("X"));
    PhaseId b = prog.define_phase(make_phase("b", n).reads("X").writes("Y"));
    EnableClause clause{"b", MappingKind::kForwardIndirect, {}};
    // Bit-reversal-flavoured scatter: adjacent current granules enable
    // non-adjacent successors, so per-ticket enqueues cannot merge.
    clause.indirection.enables_of = [n](GranuleId g, std::vector<GranuleId>& out) {
      out.push_back((g * 37) % n);
    };
    prog.dispatch(a, {clause});
    prog.dispatch(b);
    prog.halt();

    ExecConfig cfg;
    cfg.grain = 1;
    cfg.defer_map_build = false;  // map exists before the first completion
    ExecutiveCore core(prog, cfg, CostModel{});
    std::uint64_t enable_events = 0;
    FunctionEventSink sink([&](const ExecEvent& ev) {
      if (ev.kind == ExecEvent::Kind::kGranulesEnabled) ++enable_events;
    });
    core.set_event_sink(&sink);
    core.start();
    std::size_t spins = 0;
    while (!core.finished() || core.work_available()) {
      PAX_CHECK_MSG(++spins < 1'000'000, "coalesce drain did not converge");
      std::vector<Assignment> batch;
      if (core.request_work_batch(0, batched ? n : 1, batch) == 0) {
        if (core.idle_work()) continue;
        break;
      }
      std::vector<Ticket> tickets;
      for (const Assignment& a : batch) tickets.push_back(a.ticket);
      core.complete_batch(tickets);
    }
    EXPECT_TRUE(core.finished());
    return enable_events;
  };
  const auto scattered = count_enable_events(false);
  const auto coalesced = count_enable_events(true);
  EXPECT_LT(coalesced, scattered)
      << "batched completion should emit fewer, wider enablement events";
}

}  // namespace
}  // namespace pax
