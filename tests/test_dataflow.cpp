// Mapping inference and the PARALLEL(x, y) predicate, including the paper's
// four Fortran fragments as direct test cases.
#include <gtest/gtest.h>

#include "core/dataflow.hpp"

namespace pax {
namespace {

// Paper fragment 1: B(I)=A(I) then D(I)=C(I) — universal mapping.
TEST(InferMapping, PaperUniversalFragment) {
  PhaseSpec p1 = make_phase("loop100", 64).reads("A").writes("B");
  PhaseSpec p2 = make_phase("loop200", 64).reads("C").writes("D");
  const auto m = infer_mapping(p1, p2);
  EXPECT_EQ(m.kind, MappingKind::kUniversal);
  EXPECT_TRUE(m.carrier_arrays.empty());
}

// Paper fragment 2: B(I)=A(I) then C(I)=B(I) — identity mapping.
TEST(InferMapping, PaperIdentityFragment) {
  PhaseSpec p1 = make_phase("loop100", 64).reads("A").writes("B");
  PhaseSpec p2 = make_phase("loop200", 64).reads("B").writes("C");
  const auto m = infer_mapping(p1, p2);
  EXPECT_EQ(m.kind, MappingKind::kIdentity);
  EXPECT_EQ(m.carrier_arrays, (std::vector<std::string>{"B"}));
}

// Paper fragment 3: A(I)=FUNC(I) then B(I)+=A(IMAP(J,I)) — reverse indirect.
TEST(InferMapping, PaperReverseIndirectFragment) {
  PhaseSpec p1 = make_phase("loop100", 64).writes("A");
  PhaseSpec p2 = make_phase("loop200", 64)
                     .reads("A", IndexPattern::kIndirect, "IMAP")
                     .writes("B");
  const auto m = infer_mapping(p1, p2);
  EXPECT_EQ(m.kind, MappingKind::kReverseIndirect);
  EXPECT_EQ(m.selection_maps, (std::vector<std::string>{"IMAP"}));
}

// Paper fragment 4: B(IMAP(I))=A(IMAP(I)) then C(I)=B(I) — forward indirect.
TEST(InferMapping, PaperForwardIndirectFragment) {
  PhaseSpec p1 = make_phase("loop100", 64)
                     .reads("A", IndexPattern::kIndirect, "IMAP")
                     .writes("B", IndexPattern::kIndirect, "IMAP");
  PhaseSpec p2 = make_phase("loop200", 64).reads("B").writes("C");
  const auto m = infer_mapping(p1, p2);
  EXPECT_EQ(m.kind, MappingKind::kForwardIndirect);
}

TEST(InferMapping, SerialActionForcesNull) {
  PhaseSpec p1 = make_phase("a", 64).writes("X");
  PhaseSpec p2 = make_phase("b", 64).reads("X");
  EXPECT_EQ(infer_mapping(p1, p2, /*serial_between=*/true).kind, MappingKind::kNull);
  EXPECT_EQ(infer_mapping(p1, p2, /*serial_between=*/false).kind,
            MappingKind::kIdentity);
}

TEST(InferMapping, WholeArrayDependenceIsNull) {
  PhaseSpec p1 = make_phase("reduce", 64).writes("sum", IndexPattern::kWhole);
  PhaseSpec p2 = make_phase("scale", 64).reads("sum", IndexPattern::kWhole);
  EXPECT_EQ(infer_mapping(p1, p2).kind, MappingKind::kNull);
}

TEST(InferMapping, MismatchedGranuleDomainsBlockIdentity) {
  PhaseSpec p1 = make_phase("a", 64).writes("X");
  PhaseSpec p2 = make_phase("b", 32).reads("X");
  EXPECT_EQ(infer_mapping(p1, p2).kind, MappingKind::kNull);
}

TEST(InferMapping, WriteWriteConflictIsDependence) {
  PhaseSpec p1 = make_phase("a", 64).writes("X");
  PhaseSpec p2 = make_phase("b", 64).writes("X");
  EXPECT_EQ(infer_mapping(p1, p2).kind, MappingKind::kIdentity);
}

TEST(InferMapping, ReadReadIsNoDependence) {
  PhaseSpec p1 = make_phase("a", 64).reads("X").writes("A1");
  PhaseSpec p2 = make_phase("b", 64).reads("X").writes("B1");
  EXPECT_EQ(infer_mapping(p1, p2).kind, MappingKind::kUniversal);
}

TEST(InferMapping, ReverseWinsWhenBothSidesIndirect) {
  // Next side indirection dominates: only a reverse map is identifiable.
  PhaseSpec p1 = make_phase("a", 64).writes("X", IndexPattern::kIndirect, "F");
  PhaseSpec p2 =
      make_phase("b", 64).reads("X", IndexPattern::kIndirect, "R").writes("Y");
  EXPECT_EQ(infer_mapping(p1, p2).kind, MappingKind::kReverseIndirect);
}

// --- phase-level PARALLEL ---------------------------------------------------------

TEST(ParallelPhases, DisjointDataIsParallel) {
  PhaseSpec a = make_phase("a", 8).reads("X").writes("Y");
  PhaseSpec b = make_phase("b", 8).reads("P").writes("Q");
  EXPECT_TRUE(parallel_phases(a, b));
}

TEST(ParallelPhases, SharedReadOnlyIsParallel) {
  PhaseSpec a = make_phase("a", 8).reads("X").writes("Y");
  PhaseSpec b = make_phase("b", 8).reads("X").writes("Q");
  EXPECT_TRUE(parallel_phases(a, b));
}

TEST(ParallelPhases, WriteConflictIsNotParallel) {
  PhaseSpec a = make_phase("a", 8).writes("X");
  PhaseSpec b = make_phase("b", 8).reads("X");
  EXPECT_FALSE(parallel_phases(a, b));
}

// --- granule-level PARALLEL oracle ---------------------------------------------------

TEST(AccessOracle, IdentityGranulesConflictOnlyOnSameIndex) {
  PhaseSpec a = make_phase("a", 8).writes("X");
  PhaseSpec b = make_phase("b", 8).reads("X");
  AccessOracle oracle;
  EXPECT_FALSE(oracle.parallel(a, 3, b, 3));
  EXPECT_TRUE(oracle.parallel(a, 3, b, 4));
}

TEST(AccessOracle, IndirectGranulesUseRegisteredMap) {
  PhaseSpec a = make_phase("a", 4).writes("X");
  PhaseSpec b = make_phase("b", 4).reads("X", IndexPattern::kIndirect, "M");
  AccessOracle oracle;
  // Successor granule g touches elements {g, 3}.
  oracle.set_map("M", {{0, 3}, {1, 3}, {2, 3}, {3, 3}});
  EXPECT_FALSE(oracle.parallel(a, 3, b, 0));  // via the shared element 3
  EXPECT_FALSE(oracle.parallel(a, 1, b, 1));
  EXPECT_TRUE(oracle.parallel(a, 1, b, 2));   // {1} vs {2,3}
}

TEST(AccessOracle, WholeArrayConflictsWithEverything) {
  PhaseSpec a = make_phase("a", 4).writes("X", IndexPattern::kWhole);
  PhaseSpec b = make_phase("b", 4).reads("X");
  AccessOracle oracle;
  for (GranuleId g = 0; g < 4; ++g) EXPECT_FALSE(oracle.parallel(a, 0, b, g));
}

// The key theorem the paper relies on: if the executive only enables
// successor granules whose requirement sets completed, every still-running
// pair satisfies PARALLEL. Spot-check with the oracle on a small instance.
TEST(AccessOracle, EnablementImpliesParallel) {
  const GranuleId n = 6;
  PhaseSpec cur = make_phase("cur", n).writes("X");
  PhaseSpec next =
      make_phase("next", n).reads("X", IndexPattern::kIndirect, "M").writes("Y");
  // requirement sets: next granule r needs {r, (r+2) % n}.
  std::vector<std::vector<GranuleId>> touched(n);
  for (GranuleId r = 0; r < n; ++r) touched[r] = {r, (r + 2) % n};
  AccessOracle oracle;
  oracle.set_map("M", touched);
  for (GranuleId r = 0; r < n; ++r) {
    for (GranuleId q = 0; q < n; ++q) {
      const bool q_in_requirements = q == r || q == (r + 2) % n;
      // If q is NOT in r's requirement set, running them together is fine.
      if (!q_in_requirements) {
        EXPECT_TRUE(oracle.parallel(cur, q, next, r));
      }
      // If q IS required, the pair conflicts — exactly why the executive
      // waits for q's completion before enabling r.
      if (q_in_requirements) {
        EXPECT_FALSE(oracle.parallel(cur, q, next, r));
      }
    }
  }
}

TEST(MappingNames, AllNamed) {
  for (int i = 0; i < 5; ++i)
    EXPECT_STRNE(to_string(static_cast<MappingKind>(i)), "?");
}

}  // namespace
}  // namespace pax
