// test_alloc.cpp — the memory-discipline regression suite (DESIGN.md §10).
//
// This binary defines PAX_ALLOC_STATS_IMPLEMENT, so the global operator
// new/delete are the counting hooks of common/alloc_stats.hpp and a warm
// executive cycle can be asserted to perform literally ZERO heap
// allocations — the deterministic single-threaded pin behind the
// bench_t10_alloc gate. Alongside it: unit tests for the arena/slab layer,
// the live-table iteration fix in the executive teardown/completion paths,
// and the sharded executive's reusable census-lock staging.
#define PAX_ALLOC_STATS_IMPLEMENT
#include "common/alloc_stats.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "common/arena.hpp"
#include "core/executive.hpp"
#include "core/sharded_executive.hpp"

namespace pax {
namespace {

// --- arena -----------------------------------------------------------------

TEST(Arena, AlignedBumpAllocation) {
  MonotonicArena arena(256);
  void* a = arena.allocate(1, 1);
  void* b = arena.allocate(8, 8);
  void* c = arena.allocate(32, 32);
  EXPECT_NE(a, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % 32, 0u);
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
}

TEST(Arena, GrowsByChunksAndHandlesOversized) {
  MonotonicArena arena(64);
  for (int i = 0; i < 16; ++i) arena.allocate(16, 8);  // forces several chunks
  EXPECT_GT(arena.chunk_count(), 1u);
  // An allocation larger than the chunk size gets a dedicated chunk.
  void* big = arena.allocate(1024, 16);
  EXPECT_NE(big, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(big) % 16, 0u);
}

TEST(Arena, ResetReusesChunksWithoutNewHeapTraffic) {
  MonotonicArena arena(128);
  for (int i = 0; i < 32; ++i) arena.allocate(24, 8);
  const std::size_t chunks = arena.chunk_count();
  const std::size_t reserved = arena.bytes_reserved();
  arena.reset();
  alloc_stats::ThreadScope scope;
  for (int i = 0; i < 32; ++i) arena.allocate(24, 8);
  EXPECT_EQ(scope.so_far().allocs, 0u) << "reset replay must reuse chunks";
  EXPECT_EQ(arena.chunk_count(), chunks);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

// --- slab ------------------------------------------------------------------

struct SlabProbe {
  static int live_objects;
  std::vector<int> payload;
  SlabProbe() { ++live_objects; }
  ~SlabProbe() { --live_objects; }
};
int SlabProbe::live_objects = 0;

TEST(Slab, StableAddressesAcrossGrowth) {
  Slab<SlabProbe> slab(128);  // small chunks: force several
  std::vector<SlabProbe*> ptrs;
  for (int i = 0; i < 64; ++i) ptrs.push_back(&slab.acquire());
  EXPECT_EQ(slab.created(), 64u);
  EXPECT_EQ(slab.live(), 64u);
  // Every address distinct and still valid (write through all of them).
  for (std::size_t i = 0; i < ptrs.size(); ++i)
    ptrs[i]->payload.assign(4, static_cast<int>(i));
  for (std::size_t i = 0; i < ptrs.size(); ++i)
    EXPECT_EQ(ptrs[i]->payload[0], static_cast<int>(i));
}

TEST(Slab, RecycleReturnsSameSlotWithStateIntact) {
  Slab<SlabProbe> slab;
  SlabProbe& a = slab.acquire();
  a.payload.assign(100, 7);
  const int* data = a.payload.data();
  slab.release(a);
  EXPECT_EQ(slab.live(), 0u);
  EXPECT_EQ(slab.free_count(), 1u);
  SlabProbe& b = slab.acquire();
  // Same slot, same buffer: the recycled object keeps its grown capacity —
  // the property the executive's edge/composite-map reuse relies on.
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.payload.data(), data);
  EXPECT_EQ(slab.created(), 1u);
}

TEST(Slab, RecycledAcquireIsAllocationFree) {
  Slab<SlabProbe> slab;
  SlabProbe& a = slab.acquire();
  a.payload.reserve(64);
  slab.release(a);
  alloc_stats::ThreadScope scope;
  SlabProbe& b = slab.acquire();
  b.payload.assign(64, 1);  // fits the recycled capacity
  slab.release(b);
  EXPECT_EQ(scope.so_far().allocs, 0u);
}

TEST(Slab, DestructorDestroysEveryConstructedObject) {
  const int before = SlabProbe::live_objects;
  {
    Slab<SlabProbe> slab;
    for (int i = 0; i < 10; ++i) slab.acquire();
    SlabProbe& r = slab.acquire();
    slab.release(r);  // released objects are destroyed exactly once too
    EXPECT_EQ(SlabProbe::live_objects, before + 11);
  }
  EXPECT_EQ(SlabProbe::live_objects, before);
}

// --- alloc_stats sanity ----------------------------------------------------

TEST(AllocStats, HooksCountThisBinary) {
  ASSERT_TRUE(alloc_stats::active());
  alloc_stats::ThreadScope scope;
  {
    std::vector<int> v(1000);
    EXPECT_EQ(std::accumulate(v.begin(), v.end(), 0), 0);
  }
  const AllocTotals d = scope.so_far();
  EXPECT_GE(d.allocs, 1u);
  EXPECT_GE(d.frees, 1u);
  EXPECT_GE(d.bytes, 1000u * sizeof(int));
}

// --- the zero-allocation steady state --------------------------------------

PhaseProgram identity_two_phase(GranuleId n) {
  PhaseProgram prog;
  prog.define_phase(make_phase("a", n).writes("X"));
  prog.define_phase(make_phase("b", n).reads("X").writes("Y"));
  prog.dispatch(0, {EnableClause{"b", MappingKind::kIdentity, {}}});
  prog.dispatch(1);
  prog.halt();
  return prog;
}

/// Drive `core` for `cycles` request/complete rounds of `batch` assignments
/// (or until drained). Returns the cycles actually executed.
int pump(ExecutiveCore& core, std::vector<Assignment>& out,
         std::vector<Ticket>& done, std::size_t batch, int cycles) {
  int done_cycles = 0;
  while (done_cycles < cycles && !core.finished()) {
    out.clear();
    done.clear();
    if (core.request_work_batch(0, batch, out) == 0) {
      if (!core.idle_work()) break;
      continue;
    }
    for (const Assignment& a : out) done.push_back(a.ticket);
    core.complete_batch(done);
    ++done_cycles;
  }
  return done_cycles;
}

TEST(ZeroAlloc, WarmIdentitySteadyStateAllocatesNothing) {
  // The t10 pin: once the executive's structures reach their high-water mark,
  // N further request_work_batch/complete_batch cycles perform ZERO heap
  // allocations — not "few", zero. Identity mapping exercises enqueue,
  // merge-on-enqueue, conflict release, carving and ticket recycling.
  // elevate_released keeps the released successor pieces draining at the
  // same rate they are produced (the paper's elevated lane), so the live
  // descriptor population is stationary — without it phase B's backlog grows
  // for the whole of phase A and the pool never stops extending.
  const GranuleId n = 60000;
  PhaseProgram prog = identity_two_phase(n);
  ExecConfig cfg;
  cfg.grain = 8;
  cfg.elevate_released = true;
  ExecutiveCore core(prog, cfg, CostModel::free_of_charge());
  core.start();

  std::vector<Assignment> out;
  out.reserve(64);
  std::vector<Ticket> done;
  done.reserve(64);
  ASSERT_EQ(pump(core, out, done, 8, 400), 400);  // warm-up

  alloc_stats::ThreadScope scope;
  ASSERT_EQ(pump(core, out, done, 8, 800), 800);
  const AllocTotals d = scope.so_far();
  EXPECT_EQ(d.allocs, 0u)
      << "steady-state executive cycle allocated (" << d.allocs << " allocs, "
      << d.bytes << " bytes)";
  EXPECT_EQ(d.frees, 0u);

  // Drain to completion; program correctness unchanged by the measurement.
  while (!core.finished() && pump(core, out, done, 8, 1 << 20) > 0) {
  }
  EXPECT_TRUE(core.finished());
  EXPECT_EQ(core.live_descriptors(), 0u);
}

TEST(ZeroAlloc, WarmReverseIndirectSteadyStateAllocatesNothing) {
  // Indirect enablement is the path that used to allocate per ticket (the
  // `newly` vector) and per batch (the DeferredEnable table + coalesce
  // temporaries). Warm, it must be allocation-free too. A near-diagonal
  // indirection keeps the successor's completion order contiguous (the
  // range-set and merge-on-enqueue stay at a bounded fragment count), and
  // elevate_released keeps the enabled work draining as fast as it fires —
  // both make the steady state stationary so "zero" is exact, while the
  // counter-decrement / deferred-flush / coalesce machinery all still runs.
  const GranuleId n = 120000;
  PhaseProgram prog;
  prog.define_phase(make_phase("a", n).writes("X"));
  prog.define_phase(make_phase("b", n).reads("X").writes("Y"));
  EnableClause clause{"b", MappingKind::kReverseIndirect, {}};
  clause.indirection.requires_of = [n](GranuleId r, std::vector<GranuleId>& out) {
    out.insert(out.end(), {r, (r + 1) % n, (r + 2) % n});
  };
  prog.dispatch(0, {clause});
  prog.dispatch(1);
  prog.halt();

  ExecConfig cfg;
  cfg.grain = 16;
  cfg.defer_map_build = false;
  cfg.elevate_released = true;
  ExecutiveCore core(prog, cfg, CostModel::free_of_charge());
  core.start();

  std::vector<Assignment> out;
  out.reserve(64);
  std::vector<Ticket> done;
  done.reserve(64);
  ASSERT_EQ(pump(core, out, done, 16, 700), 700);  // deep warm-up

  alloc_stats::ThreadScope scope;
  ASSERT_EQ(pump(core, out, done, 16, 200), 200);
  const AllocTotals d = scope.so_far();
  EXPECT_EQ(d.allocs, 0u)
      << "warm indirect completion cycle allocated (" << d.allocs
      << " allocs, " << d.bytes << " bytes)";

  while (!core.finished() && pump(core, out, done, 16, 1 << 20) > 0) {
  }
  EXPECT_TRUE(core.finished());
  EXPECT_EQ(core.live_descriptors(), 0u);
}

// --- live-table iteration regression ---------------------------------------

TEST(LiveTable, BatchCompletionUnderLiveMutationStaysExactlyOnce) {
  // Identity overlap attaches tracking successor pieces to live current
  // descriptors; completing a batch then mutates BOTH runs' live tables
  // mid-batch (retire swap-pop on the current run, release-enqueue on the
  // successor). The executive must tolerate that churn without the old
  // defensive live-table copies.
  const GranuleId n = 512;
  PhaseProgram prog = identity_two_phase(n);
  ExecConfig cfg;
  cfg.grain = 4;
  ExecutiveCore core(prog, cfg, CostModel::free_of_charge());
  core.start();

  RangeSet seen_a, seen_b;
  std::vector<Assignment> out;
  std::vector<Ticket> done;
  std::size_t spins = 0;
  while (!core.finished() || core.work_available()) {
    ASSERT_LT(++spins, 1'000'000u);
    out.clear();
    done.clear();
    if (core.request_work_batch(0, 32, out) == 0) {
      if (!core.idle_work()) break;
      continue;
    }
    for (const Assignment& a : out) {
      (a.phase == 0 ? seen_a : seen_b).insert(a.range);  // aborts on overlap
      done.push_back(a.ticket);
    }
    core.complete_batch(done);
  }
  EXPECT_TRUE(core.finished());
  EXPECT_EQ(seen_a.cardinality(), n);
  EXPECT_EQ(seen_b.cardinality(), n);
  EXPECT_EQ(core.live_descriptors(), 0u);
}

TEST(LiveTable, MidProgramTeardownWithLinkedStructures) {
  // Destroy a core while descriptors sit in every structure the destructor
  // must unlink: the waiting queue, conflict queues (identity tracking
  // pieces), a pending deferred-split task, and a dynamically submitted
  // conflicting computation. The ASan job turns any stale-pointer walk into
  // a hard failure; the DCHECKed ring teardown catches the rest.
  const GranuleId n = 256;
  PhaseProgram prog = identity_two_phase(n);
  ExecConfig cfg;
  cfg.grain = 8;
  cfg.split_policy = SplitPolicy::kDeferred;
  auto core = std::make_unique<ExecutiveCore>(prog, cfg, CostModel::free_of_charge());
  core->start();
  core->submit_conflicting(/*blocker=*/0, /*phase=*/1, {0, 16});
  // A few carves so deferred split tasks and partial completions exist.
  std::vector<Assignment> out;
  core->request_work_batch(0, 6, out);
  core->complete(out[2].ticket);  // out-of-order completion
  core->complete(out[0].ticket);
  EXPECT_GT(core->live_descriptors(), 0u);
  core.reset();  // must not crash, double-free, or trip a ring DCHECK
}

// --- sharded executive: census staging reuse --------------------------------

TEST(ShardedCensus, RepeatedProbesAllocateNothingOnceWarm) {
  const GranuleId n = 256;
  PhaseProgram prog = identity_two_phase(n);
  ExecConfig cfg;
  cfg.grain = 4;
  ShardConfig sc;
  sc.shards = 4;
  sc.workers = 4;
  sc.batch = 4;
  ShardedExecutive exec(prog, cfg, CostModel::free_of_charge(), sc);
  exec.start();
  std::vector<Ticket> done;
  std::vector<Assignment> out;
  exec.acquire(0, 4, done, out);
  exec.check_census();  // warm the lock staging
  alloc_stats::ThreadScope scope;
  for (int i = 0; i < 16; ++i) exec.check_census();
  EXPECT_EQ(scope.so_far().allocs, 0u)
      << "census probe rebuilt its lock staging";
  // Drain the program so the executive tears down quiescent.
  std::size_t spins = 0;
  while (!exec.finished()) {
    ASSERT_LT(++spins, 1'000'000u);
    done.clear();
    for (const Assignment& a : out) done.push_back(a.ticket);
    out.clear();
    const ShardAcquire r = exec.acquire(0, 8, done, out);
    if (r.taken == 0 && !exec.work_available() && !exec.finished()) {
      if (!exec.idle_work()) break;
    }
  }
  EXPECT_TRUE(exec.finished());
}

// --- event text laziness ----------------------------------------------------

TEST(ExecEvents, BorrowedTextViewsAreCorrectAndEventsAllocationFree) {
  const GranuleId n = 64;
  PhaseProgram prog = identity_two_phase(n);
  ExecConfig cfg;
  cfg.grain = 8;
  ExecutiveCore core(prog, cfg, CostModel::free_of_charge());
  std::string overlap_text;
  std::uint64_t events = 0;
  FunctionEventSink sink([&](const ExecEvent& ev) {
    ++events;
    if (ev.kind == ExecEvent::Kind::kOverlapSetUp)
      overlap_text.assign(ev.text);  // must copy to retain
  });
  core.set_event_sink(&sink);
  core.start();
  std::vector<Assignment> out;
  std::vector<Ticket> done;
  while (pump(core, out, done, 8, 1 << 20) > 0 && !core.finished()) {
  }
  EXPECT_TRUE(core.finished());
  EXPECT_GT(events, 0u);
  EXPECT_EQ(overlap_text, "identity");
}

}  // namespace
}  // namespace pax
