// Fault-containment tests (DESIGN.md §15): the exception barrier converts a
// throwing phase body into a recorded fault instead of process death; the
// executive retries transient faults with backoff and poisons persistent
// ones into a faulted terminal; the pool degrades a faulted job to
// JobState::kFailed without touching its siblings; the stuck-granule
// watchdog escalates an over-budget body through the stop/recall machinery;
// and a throwing GranuleMapFn degrades its edge instead of wedging the
// program. Runs on both shard engines and under ThreadSanitizer in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>

#include "pool/pool_runtime.hpp"
#include "runtime/threaded_runtime.hpp"
#include "testing_util.hpp"

namespace pax {
namespace {

using pool::JobState;
using testing::ExecutionRecorder;
using testing::FaultInjector;
using testing::GeneratedProgram;
using testing::SlowGranuleSpec;

// Both shard engines: the lock-free rings (shipped default) and the retained
// mutex baseline — the fail/recall path differs between them.
class FaultEngine : public ::testing::TestWithParam<bool> {
 protected:
  [[nodiscard]] bool lockfree() const { return GetParam(); }
};

INSTANTIATE_TEST_SUITE_P(Engines, FaultEngine, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& i) {
                           return i.param ? "LockFree" : "Mutex";
                         });

struct SinglePhase {
  PhaseProgram prog;
  PhaseId p = kNoPhase;
};

SinglePhase make_single_phase(GranuleId n) {
  SinglePhase s;
  s.p = s.prog.define_phase(make_phase("only", n).writes("O"));
  s.prog.dispatch(s.p);
  s.prog.halt();
  return s;
}

/// A deterministic single-phase GeneratedProgram shell so the fault-injection
/// helpers (FaultInjector / make_faulty_bodies) apply to hand-built tests.
GeneratedProgram single_phase_shell(GranuleId n, bool lockfree) {
  GeneratedProgram g;
  g.seed = 42;
  g.phases.push_back(g.program.define_phase(make_phase("only", n).writes("O")));
  g.program.dispatch(g.phases[0]);
  g.program.halt();
  g.granules.push_back(n);
  g.total = n;
  g.workers = 3;
  g.batch = 2;
  g.lockfree = lockfree;
  return g;
}

rt::RtConfig config_of(const GeneratedProgram& g) {
  rt::RtConfig rc;
  rc.workers = g.workers;
  rc.batch = g.batch;
  rc.shards = g.shards;
  rc.lockfree = g.lockfree;
  rc.steal = g.steal;
  rc.adaptive_grain = g.adaptive_grain;
  return rc;
}

// --- exception barrier + retry (threaded runtime) ---------------------------

TEST_P(FaultEngine, TransientFaultRetriesToCompletion) {
  GeneratedProgram g = single_phase_shell(64, lockfree());
  ExecutionRecorder rec(g.granules);
  FaultInjector inj(g.granules);
  inj.set_throws(0, 3, 1);   // fail once, succeed on retry
  inj.set_throws(0, 40, 2);  // fail twice
  std::atomic<std::uint64_t> sink{0};
  rt::BodyTable bodies = testing::make_faulty_bodies(g, rec, sink, inj);
  rt::RtConfig rc = config_of(g);
  rc.max_granule_retries = 4;
  rt::RtResult res =
      rt::ThreadedRuntime(g.program, g.exec, CostModel::free_of_charge(),
                          bodies, rc)
          .run();
  rec.expect_exactly_once();  // a throwing attempt records nothing
  EXPECT_FALSE(res.faulted);
  EXPECT_EQ(res.granules_executed, 64u);
  EXPECT_EQ(inj.injected(), 3u);
  EXPECT_EQ(res.granule_faults, 3u);
  EXPECT_EQ(res.granule_retries, 3u);
  EXPECT_EQ(res.granules_poisoned, 0u);
  // The first fault site survives into the summary even on success.
  EXPECT_NE(res.fault_summary.find("injected fault"), std::string::npos);
  EXPECT_EQ(res.metrics.value_of("fault.bodies"), 3u);
  EXPECT_EQ(res.metrics.value_of("fault.terminal"), 0u);
}

TEST_P(FaultEngine, PersistentFaultPoisonsAndFaultsTheRun) {
  GeneratedProgram g = single_phase_shell(48, lockfree());
  ExecutionRecorder rec(g.granules);
  FaultInjector inj(g.granules);
  inj.set_throws(0, 7, FaultInjector::kAlways);
  std::atomic<std::uint64_t> sink{0};
  rt::BodyTable bodies = testing::make_faulty_bodies(g, rec, sink, inj);
  rt::RtConfig rc = config_of(g);
  rc.max_granule_retries = 2;
  rc.retry_backoff_ticks = 1;
  // No abort, no escaped exception: the barrier + poison path must bring
  // run() back with the faulted terminal.
  rt::RtResult res =
      rt::ThreadedRuntime(g.program, g.exec, CostModel::free_of_charge(),
                          bodies, rc)
          .run();
  rec.expect_at_most_once();
  EXPECT_TRUE(res.faulted);
  EXPECT_EQ(inj.injected(), 3u);  // initial attempt + 2 retries
  EXPECT_EQ(res.granule_faults, 3u);
  EXPECT_EQ(res.granule_retries, 2u);
  EXPECT_GE(res.granules_poisoned, 1u);
  EXPECT_LT(res.granules_executed, 48u);  // the poisoned granule never ran
  EXPECT_NE(res.fault_summary.find("injected fault"), std::string::npos);
  EXPECT_EQ(res.metrics.value_of("fault.terminal"), 1u);
}

TEST_P(FaultEngine, MapFnThrowDegradesEdgeAndCompletes) {
  // Two phases bridged by a reverse-indirect map whose callback throws: the
  // edge degrades to wholesale release at completion, so the program still
  // retires every granule of both phases — overlap is lost, not the run.
  PhaseProgram prog;
  const PhaseId a = prog.define_phase(make_phase("a", 32).writes("X"));
  const PhaseId b = prog.define_phase(make_phase("b", 32).reads("X"));
  EnableClause clause;
  clause.successor_name = "b";
  clause.kind = MappingKind::kReverseIndirect;
  clause.indirection.requires_of = [](GranuleId, std::vector<GranuleId>&) {
    throw std::runtime_error("map callback exploded");
  };
  prog.dispatch(a, {clause});
  prog.dispatch(b);
  prog.halt();

  std::atomic<std::uint64_t> executed{0};
  rt::BodyTable bodies;
  for (PhaseId p : {a, b})
    bodies.set(p, [&executed](GranuleRange r, WorkerId) {
      executed.fetch_add(r.size(), std::memory_order_relaxed);
    });
  rt::RtConfig rc;
  rc.workers = 3;
  rc.lockfree = lockfree();
  rt::RtResult res =
      rt::ThreadedRuntime(prog, ExecConfig{}, CostModel::free_of_charge(),
                          bodies, rc)
          .run();
  EXPECT_FALSE(res.faulted);  // degraded, not failed
  EXPECT_EQ(executed.load(), 64u);
  EXPECT_EQ(res.granules_executed, 64u);
  EXPECT_EQ(res.map_faults, 1u);
  EXPECT_EQ(res.granule_faults, 0u);
  EXPECT_NE(res.fault_summary.find("map callback exploded"), std::string::npos);
}

// --- pool degradation: kFailed, sibling isolation, wait semantics -----------

TEST_P(FaultEngine, PoolJobFailsWithoutTouchingSiblings) {
  GeneratedProgram g = single_phase_shell(48, lockfree());
  ExecutionRecorder rec(g.granules);
  FaultInjector inj(g.granules);
  inj.set_throws(0, 5, FaultInjector::kAlways);
  std::atomic<std::uint64_t> sink{0};
  rt::BodyTable bodies = testing::make_faulty_bodies(g, rec, sink, inj);

  SinglePhase clean = make_single_phase(96);
  std::atomic<std::uint64_t> clean_granules{0};
  rt::BodyTable clean_bodies;
  clean_bodies.set(clean.p, [&clean_granules](GranuleRange r, WorkerId) {
    clean_granules.fetch_add(r.size(), std::memory_order_relaxed);
  });

  pool::PoolConfig pc;
  pc.workers = 3;
  pc.lockfree = lockfree();
  pool::JobHandle faulty, sibling;
  {
    pool::PoolRuntime pool(pc);
    ExecConfig ec;
    ec.max_granule_retries = 1;
    faulty = pool.submit(g.program, bodies, ec);
    sibling = pool.submit(clean.prog, clean_bodies, ExecConfig{});

    // wait() must wake on the failure terminal, not hang — and by the
    // done() => stats()-final contract the fault accounting is complete
    // the moment it returns.
    EXPECT_EQ(faulty.wait(), JobState::kFailed);
    EXPECT_TRUE(faulty.done());
    const pool::JobStats js = faulty.stats();
    EXPECT_EQ(js.granule_faults, 2u);  // initial attempt + 1 retry
    EXPECT_EQ(js.granule_retries, 1u);
    EXPECT_GE(js.granules_poisoned, 1u);
    EXPECT_FALSE(js.watchdog_expired);
    EXPECT_NE(js.fault_summary.find("injected fault"), std::string::npos);

    // A second wait (and a timed one) must return the same terminal.
    EXPECT_EQ(faulty.wait_for(std::chrono::milliseconds{1}), JobState::kFailed);

    // The sibling is untouched by the neighbour's failure.
    EXPECT_EQ(sibling.wait(), JobState::kComplete);
    EXPECT_EQ(clean_granules.load(), 96u);
    pool.shutdown();

    const pool::PoolStats ps = pool.stats();
    EXPECT_EQ(ps.jobs_submitted, 2u);
    EXPECT_EQ(ps.jobs_completed, 1u);
    EXPECT_EQ(ps.jobs_failed, 1u);
    EXPECT_EQ(ps.jobs_cancelled, 0u);
    EXPECT_EQ(ps.granule_faults, 2u);
    EXPECT_EQ(ps.granule_retries, 1u);
    EXPECT_GE(ps.granules_poisoned, 1u);
    EXPECT_EQ(ps.watchdog_flags, 0u);
    // Failed jobs never enter the deadline tally.
    EXPECT_EQ(ps.jobs_deadline_missed, 0u);
    EXPECT_EQ(ps.jobs_deadline_met, 0u);
    EXPECT_EQ(ps.metrics.value_of("pool.jobs_failed"), 1u);
  }
  // Handles outlive the pool: the terminal state and final stats survive.
  EXPECT_EQ(faulty.state(), JobState::kFailed);
  EXPECT_TRUE(faulty.done());
  EXPECT_FALSE(faulty.cancel());
  EXPECT_GE(faulty.stats().granules_poisoned, 1u);
}

TEST_P(FaultEngine, PoolTransientFaultStillCompletes) {
  GeneratedProgram g = single_phase_shell(64, lockfree());
  ExecutionRecorder rec(g.granules);
  FaultInjector inj(g.granules);
  inj.set_throws(0, 0, 1);
  std::atomic<std::uint64_t> sink{0};
  rt::BodyTable bodies = testing::make_faulty_bodies(g, rec, sink, inj);

  pool::PoolConfig pc;
  pc.workers = 2;
  pc.lockfree = lockfree();
  pool::PoolRuntime pool(pc);
  pool::JobHandle h = pool.submit(g.program, bodies, ExecConfig{});
  EXPECT_EQ(h.wait(), JobState::kComplete);
  pool.shutdown();
  rec.expect_exactly_once();
  const pool::JobStats js = h.stats();
  EXPECT_EQ(js.granules, 64u);
  EXPECT_EQ(js.granule_faults, 1u);
  EXPECT_EQ(js.granule_retries, 1u);
  EXPECT_EQ(js.granules_poisoned, 0u);
  EXPECT_EQ(pool.stats().jobs_failed, 0u);
}

// --- stuck-granule watchdog -------------------------------------------------

TEST_P(FaultEngine, WatchdogFlagsStuckGranule) {
  GeneratedProgram g = single_phase_shell(8, lockfree());
  ExecutionRecorder rec(g.granules);
  FaultInjector inj(g.granules);  // no throws — the granule is stuck, not bad
  std::atomic<std::uint64_t> sink{0};
  SlowGranuleSpec slow;
  slow.phase = 0;
  slow.granule = 2;
  slow.sleep = std::chrono::milliseconds{150};
  rt::BodyTable bodies = testing::make_faulty_bodies(g, rec, sink, inj, slow);

  pool::PoolConfig pc;
  pc.workers = 2;
  pc.lockfree = lockfree();
  pool::PoolRuntime pool(pc);
  pool::PoolRuntime::SubmitOptions opts;
  opts.granule_timeout = std::chrono::milliseconds{5};
  pool::JobHandle h = pool.submit(g.program, bodies, ExecConfig{}, opts);
  // Escalation is cooperative: the stuck body finishes its sleep, then the
  // job finalizes kFailed. wait() must ride through that.
  EXPECT_EQ(h.wait(), JobState::kFailed);
  pool.shutdown();

  const pool::JobStats js = h.stats();
  EXPECT_TRUE(js.watchdog_expired);
  EXPECT_EQ(js.granules_poisoned, 0u);  // nothing threw — watchdog terminal
  EXPECT_NE(js.fault_summary.find("watchdog"), std::string::npos);
  const pool::PoolStats ps = pool.stats();
  EXPECT_EQ(ps.jobs_failed, 1u);
  EXPECT_EQ(ps.watchdog_flags, 1u);
  EXPECT_EQ(ps.metrics.value_of("fault.watchdog_flags"), 1u);
}

TEST_P(FaultEngine, NoTimeoutMeansNoWatchdogFlag) {
  // A job slower than any poll interval but with no granule_timeout must
  // never be flagged — the watchdog only watches opted-in jobs.
  SinglePhase s = make_single_phase(4);
  std::atomic<std::uint64_t> n{0};
  rt::BodyTable bodies;
  bodies.set(s.p, [&n](GranuleRange r, WorkerId) {
    std::this_thread::sleep_for(std::chrono::milliseconds{5});
    n.fetch_add(r.size(), std::memory_order_relaxed);
  });
  pool::PoolConfig pc;
  pc.workers = 2;
  pc.lockfree = lockfree();
  pool::PoolRuntime pool(pc);
  pool::JobHandle h = pool.submit(s.prog, bodies, ExecConfig{});
  EXPECT_EQ(h.wait(), JobState::kComplete);
  pool.shutdown();
  EXPECT_EQ(n.load(), 4u);
  EXPECT_FALSE(h.stats().watchdog_expired);
  EXPECT_EQ(pool.stats().watchdog_flags, 0u);
}

}  // namespace
}  // namespace pax
