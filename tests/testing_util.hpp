// testing_util.hpp — seeded randomized program generation and cross-runtime
// invariant checks, shared by tests/test_stress.cpp and the nightly seed
// sweep.
//
// One seed deterministically generates a linear phase program (random
// granule counts, enablement mappings with random fan-in/fan-out, serial
// actions, executive knobs) plus driver configs (workers, batch, shards,
// steal), and the harness runs the *same* program through all three
// runtimes — rt::ThreadedRuntime, pool::PoolRuntime and sim::Machine —
// cross-checking the invariants the scheduler stack promises:
//
//   * every granule of every phase retired exactly once (per-granule atomic
//     execution counts),
//   * stats sums consistent: worker-side granule/task totals match the
//     recorder, the lock-split identity holds, pool-side job stats equal
//     pool totals,
//   * no shard census drift (ShardedExecutive::check_census aborts inside
//     run()/the pool on drift; the recorder re-checks totals end-to-end),
//   * the simulator is deterministic for the (seed, config) pair.
//
// On any failure the seed is printed via SCOPED_TRACE, so a red run is
// replayed with `PAX_STRESS_SEED=<seed> ctest -R stress`.
//
// In checked builds (PAX_LOCK_RANK_CHECKS, default in Debug) every run
// through this harness additionally certifies the runtimes' lock graph
// acyclic: all mutexes are ranked (common/lock_rank.hpp) and any
// out-of-order acquisition aborts deterministically, so the randomized
// sweep doubles as lock-order coverage — no lucky interleaving required.
#pragma once

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/sharded_executive.hpp"
#include "pool/pool_runtime.hpp"
#include "runtime/threaded_runtime.hpp"
#include "sim/machine.hpp"

namespace pax::testing {

struct GeneratedProgram {
  std::uint64_t seed = 0;
  PhaseProgram program;
  std::vector<PhaseId> phases;
  std::vector<GranuleId> granules;  // per phase
  std::uint64_t total = 0;          // granules across phases

  ExecConfig exec;
  std::uint32_t workers = 2;
  std::uint32_t batch = 1;
  std::uint32_t shards = kAutoShards;
  /// Shard warm-path engine: lock-free rings (the default) or the retained
  /// mutex baseline — seeded so the stress sweep keeps both engines (and
  /// their differing census disciplines) under TSAN and the rank validator.
  bool lockfree = true;
  bool steal = true;
  bool adaptive_grain = true;
  /// Pool cancel point: also submit a throwaway job and cancel it.
  bool cancel_second_job = false;
  std::uint32_t sim_workers = 4;
  std::uint32_t sim_shards = 1;
};

/// Deterministic program + config from one seed.
inline GeneratedProgram generate_program(std::uint64_t seed) {
  GeneratedProgram g;
  g.seed = seed;
  Rng rng(seed ^ 0xC0FFEEULL);
  auto pick = [&](std::uint64_t lo, std::uint64_t hi) {  // inclusive
    return lo + rng() % (hi - lo + 1);
  };

  const std::size_t n_phases = pick(2, 4);
  for (std::size_t i = 0; i < n_phases; ++i) {
    const GranuleId n = static_cast<GranuleId>(pick(4, 96));
    const std::string name = "p" + std::to_string(i);
    g.phases.push_back(g.program.define_phase(
        make_phase(name, n).reads("D" + std::to_string(i)).writes(
            "D" + std::to_string(i + 1))));
    g.granules.push_back(n);
    g.total += n;
  }

  for (std::size_t i = 0; i < n_phases; ++i) {
    std::vector<EnableClause> enables;
    if (i + 1 < n_phases) {
      const std::uint64_t kind = pick(0, 4);
      EnableClause clause;
      clause.successor_name = "p" + std::to_string(i + 1);
      const GranuleId cur_n = g.granules[i];
      const GranuleId succ_n = g.granules[i + 1];
      switch (kind) {
        case 0:
          clause.kind = MappingKind::kNull;  // no overlap edge
          break;
        case 1:
          clause.kind = MappingKind::kUniversal;
          break;
        case 2:
          // Identity requires equal counts; fall back to universal.
          clause.kind = cur_n == succ_n ? MappingKind::kIdentity
                                        : MappingKind::kUniversal;
          break;
        case 3: {
          clause.kind = MappingKind::kReverseIndirect;
          const std::uint32_t fan = static_cast<std::uint32_t>(pick(1, 5));
          clause.indirection.stable = pick(0, 1) == 1;
          clause.indirection.requires_of =
              [cur_n, fan, seed](GranuleId r, std::vector<GranuleId>& need) {
                std::uint64_t s =
                    seed ^ (0x51ED2701ULL + (std::uint64_t{r} << 17));
                for (std::uint32_t j = 0; j < fan; ++j)
                  need.push_back(static_cast<GranuleId>(splitmix64(s) % cur_n));
              };
          break;
        }
        default: {
          clause.kind = MappingKind::kForwardIndirect;
          const std::uint32_t fan = static_cast<std::uint32_t>(pick(1, 4));
          clause.indirection.stable = pick(0, 1) == 1;
          clause.indirection.enables_of =
              [succ_n, fan, seed](GranuleId p, std::vector<GranuleId>& en) {
                std::uint64_t s =
                    seed ^ (0x2F0A1993ULL + (std::uint64_t{p} << 13));
                for (std::uint32_t j = 0; j < fan; ++j)
                  en.push_back(static_cast<GranuleId>(splitmix64(s) % succ_n));
              };
          break;
        }
      }
      if (clause.kind != MappingKind::kNull) enables.push_back(clause);
    }
    g.program.dispatch(g.phases[i], std::move(enables));
    if (i + 1 < n_phases && pick(0, 3) == 0) {
      g.program.serial("s" + std::to_string(i), {}, /*sim_duration=*/pick(0, 40),
                       /*conflicts=*/pick(0, 1) == 1);
    }
  }
  g.program.halt();

  g.exec.grain = static_cast<GranuleId>(pick(1, 8));
  g.exec.overlap = pick(0, 7) != 0;  // mostly on
  g.exec.split_policy = static_cast<SplitPolicy>(pick(0, 2));
  g.exec.elevate_enabling = pick(0, 1) == 1;
  g.exec.elevate_released = pick(0, 3) == 0;
  g.exec.early_serial = pick(0, 1) == 1;
  g.exec.defer_map_build = pick(0, 1) == 1;
  if (pick(0, 2) == 0)
    g.exec.indirect_subset = static_cast<GranuleId>(pick(1, 16));

  g.workers = static_cast<std::uint32_t>(pick(1, 4));
  g.batch = static_cast<std::uint32_t>(pick(1, 8));
  // Shards: auto, explicit 1 (PR 3 protocol), or an explicit small count
  // clamped to the smallest legal bound (the largest phase).
  const std::uint64_t shard_mode = pick(0, 3);
  if (shard_mode == 0) {
    g.shards = 1;
  } else if (shard_mode == 1) {
    GranuleId max_n = 1;
    for (GranuleId n : g.granules) max_n = std::max(max_n, n);
    g.shards = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(pick(2, 6), max_n));
  }  // else: kAutoShards
  // Lock-free engine on ~3 of 4 seeds (it is the shipped default); the rest
  // keep the mutex baseline exercised.
  g.lockfree = pick(0, 3) != 0;
  g.steal = pick(0, 3) != 0;
  g.adaptive_grain = pick(0, 1) == 1;
  g.cancel_second_job = pick(0, 2) == 0;
  g.sim_workers = static_cast<std::uint32_t>(pick(2, 12));
  g.sim_shards = static_cast<std::uint32_t>(pick(1, 4));
  return g;
}

/// Per-(phase, granule) atomic execution counts.
class ExecutionRecorder {
 public:
  explicit ExecutionRecorder(const std::vector<GranuleId>& granules) {
    counts_.reserve(granules.size());
    for (GranuleId n : granules)
      counts_.push_back(std::make_unique<std::vector<std::atomic<std::uint32_t>>>(n));
  }

  void record(std::size_t phase, GranuleRange r) {
    auto& row = *counts_[phase];
    for (GranuleId gr = r.lo; gr < r.hi; ++gr)
      row[gr].fetch_add(1, std::memory_order_relaxed);
  }

  /// Every granule executed exactly once?
  void expect_exactly_once() const {
    for (std::size_t p = 0; p < counts_.size(); ++p) {
      const auto& row = *counts_[p];
      for (std::size_t gr = 0; gr < row.size(); ++gr) {
        const std::uint32_t c = row[gr].load(std::memory_order_relaxed);
        ASSERT_EQ(c, 1u) << "phase " << p << " granule " << gr << " executed "
                         << c << " times";
      }
    }
  }

  /// No granule executed more than once? The cancelled-job invariant: a
  /// mid-run cancel drains in-flight granules (each still exactly once) but
  /// never re-issues one — duplicates would mean the recall path handed a
  /// ticket out twice.
  void expect_at_most_once() const {
    for (std::size_t p = 0; p < counts_.size(); ++p) {
      const auto& row = *counts_[p];
      for (std::size_t gr = 0; gr < row.size(); ++gr) {
        const std::uint32_t c = row[gr].load(std::memory_order_relaxed);
        ASSERT_LE(c, 1u) << "phase " << p << " granule " << gr << " executed "
                         << c << " times";
      }
    }
  }

  /// Total executions recorded (cross-check against JobStats::granules).
  [[nodiscard]] std::uint64_t total() const {
    std::uint64_t n = 0;
    for (const auto& rowp : counts_)
      for (const auto& cell : *rowp) n += cell.load(std::memory_order_relaxed);
    return n;
  }

 private:
  std::vector<std::unique_ptr<std::vector<std::atomic<std::uint32_t>>>> counts_;
};

/// Bodies that record executions and burn a seed-hashed number of cycles
/// (so schedules differ across seeds without wall-clock dependence).
inline rt::BodyTable make_recording_bodies(const GeneratedProgram& g,
                                           ExecutionRecorder& rec,
                                           std::atomic<std::uint64_t>& sink) {
  rt::BodyTable bodies;
  for (std::size_t p = 0; p < g.phases.size(); ++p) {
    const std::uint64_t seed = g.seed;
    bodies.set(g.phases[p], [p, seed, &rec, &sink](GranuleRange r, WorkerId) {
      std::uint64_t acc = 0;
      for (GranuleId gr = r.lo; gr < r.hi; ++gr) {
        std::uint64_t s = seed ^ (p * 0x9E37ULL) ^ gr;
        const std::uint64_t iters = splitmix64(s) % 256;
        for (std::uint64_t i = 0; i < iters; ++i) acc += (i ^ s) * 0x9E3779B9ULL;
      }
      sink.fetch_add(acc, std::memory_order_relaxed);
      rec.record(p, r);
    });
  }
  return bodies;
}

/// Seeded fault-injection budgets (DESIGN.md §15): a per-(phase, granule)
/// atomic count of how many times that granule's body attempt must throw
/// before it is allowed to succeed. kAlways never decrements — the granule
/// throws on every attempt, which drives the retry budget to exhaustion and
/// the program into the faulted terminal.
class FaultInjector {
 public:
  static constexpr std::uint32_t kAlways = ~std::uint32_t{0};

  explicit FaultInjector(const std::vector<GranuleId>& granules) {
    budgets_.reserve(granules.size());
    for (GranuleId n : granules)
      budgets_.push_back(
          std::make_unique<std::vector<std::atomic<std::uint32_t>>>(n));
  }

  void set_throws(std::size_t phase, GranuleId g, std::uint32_t n) {
    (*budgets_[phase])[g].store(n, std::memory_order_relaxed);
  }

  /// One body attempt at (phase, granule): true = the body must throw now.
  /// Decrements the budget (kAlways excepted) so a retried granule
  /// eventually succeeds — the transient-fault model.
  bool should_throw(std::size_t phase, GranuleId g) {
    auto& cell = (*budgets_[phase])[g];
    std::uint32_t cur = cell.load(std::memory_order_relaxed);
    while (true) {
      if (cur == 0) return false;
      if (cur == kAlways) {
        injected_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      if (cell.compare_exchange_weak(cur, cur - 1, std::memory_order_relaxed)) {
        injected_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
  }

  /// Throws actually taken (the expected fault count on the other side of
  /// the barrier — RtResult::granule_faults / JobStats::granule_faults).
  [[nodiscard]] std::uint64_t injected() const {
    return injected_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<std::unique_ptr<std::vector<std::atomic<std::uint32_t>>>> budgets_;
  std::atomic<std::uint64_t> injected_{0};
};

/// Optional slow-granule injection (watchdog fodder): the body sleeps this
/// long when it executes the named granule. sleep <= 0 disables it.
struct SlowGranuleSpec {
  std::size_t phase = 0;
  GranuleId granule = 0;
  std::chrono::nanoseconds sleep{0};
};

/// Recording bodies with seeded fault injection layered in. The injection
/// decision runs FIRST, before any recording: a throwing attempt must leave
/// the recorder untouched, because the executive re-enqueues the whole
/// range on retry and expect_exactly_once must still hold once the program
/// completes.
inline rt::BodyTable make_faulty_bodies(const GeneratedProgram& g,
                                        ExecutionRecorder& rec,
                                        std::atomic<std::uint64_t>& sink,
                                        FaultInjector& inj,
                                        SlowGranuleSpec slow = {}) {
  rt::BodyTable bodies;
  for (std::size_t p = 0; p < g.phases.size(); ++p) {
    const std::uint64_t seed = g.seed;
    bodies.set(g.phases[p], [p, seed, slow, &rec, &sink,
                             &inj](GranuleRange r, WorkerId) {
      for (GranuleId gr = r.lo; gr < r.hi; ++gr)
        if (inj.should_throw(p, gr))
          throw std::runtime_error("injected fault: phase " +
                                   std::to_string(p) + " granule " +
                                   std::to_string(gr));
      if (slow.sleep.count() > 0 && p == slow.phase && slow.granule >= r.lo &&
          slow.granule < r.hi)
        std::this_thread::sleep_for(slow.sleep);
      std::uint64_t acc = 0;
      for (GranuleId gr = r.lo; gr < r.hi; ++gr) {
        std::uint64_t s = seed ^ (p * 0x9E37ULL) ^ gr;
        const std::uint64_t iters = splitmix64(s) % 256;
        for (std::uint64_t i = 0; i < iters; ++i) acc += (i ^ s) * 0x9E3779B9ULL;
      }
      sink.fetch_add(acc, std::memory_order_relaxed);
      rec.record(p, r);
    });
  }
  return bodies;
}

/// Run one generated program through the threaded runtime and check the
/// invariants. Returns the result for further inspection.
inline rt::RtResult run_threaded_checked(const GeneratedProgram& g) {
  ExecutionRecorder rec(g.granules);
  std::atomic<std::uint64_t> sink{0};
  rt::BodyTable bodies = make_recording_bodies(g, rec, sink);
  rt::RtConfig rc;
  rc.workers = g.workers;
  rc.batch = g.batch;
  rc.shards = g.shards;
  rc.lockfree = g.lockfree;
  rc.steal = g.steal;
  rc.adaptive_grain = g.adaptive_grain;
  // run() PAX_CHECKs program completion and the shard census internally.
  rt::RtResult res =
      rt::ThreadedRuntime(g.program, g.exec, CostModel::free_of_charge(), bodies, rc)
          .run();
  rec.expect_exactly_once();
  EXPECT_EQ(res.granules_executed, g.total);
  EXPECT_EQ(res.exec_lock_acquisitions,
            res.refill_lock_acquisitions + res.wait_lock_acquisitions)
      << "lock-split identity broken";
  EXPECT_GE(res.tasks_executed, g.phases.size());
  EXPECT_LE(res.utilization(), 1.0 + 1e-9);
  if (!g.steal) {
    EXPECT_EQ(res.steals, 0u);
  }
  return res;
}

/// Run the same program through the pool runtime (with an optional
/// cancelled second job — the cancel point) and check the invariants.
inline void run_pool_checked(const GeneratedProgram& g) {
  ExecutionRecorder rec(g.granules);
  std::atomic<std::uint64_t> sink{0};
  rt::BodyTable bodies = make_recording_bodies(g, rec, sink);

  pool::PoolConfig pc;
  pc.workers = g.workers;
  pc.batch = g.batch;
  pc.shards = g.shards;
  pc.lockfree = g.lockfree;
  pc.steal = g.steal;
  pc.adaptive_grain = g.adaptive_grain;

  // The throwaway job's program must outlive the pool. Its phase is as
  // large as the generator's biggest so any explicit pool shard count fits.
  PhaseProgram throwaway;
  const PhaseId tp = throwaway.define_phase(make_phase("t", 96).writes("T"));
  throwaway.dispatch(tp);
  throwaway.halt();
  std::atomic<std::uint64_t> throwaway_granules{0};
  rt::BodyTable tbodies;
  tbodies.set(tp, [&](GranuleRange r, WorkerId) {
    throwaway_granules.fetch_add(r.size(), std::memory_order_relaxed);
  });

  std::uint64_t cancelled_granules = 0;
  bool cancelled = false;
  {
    pool::PoolRuntime pool(pc);
    pool::JobHandle main_job = pool.submit(g.program, bodies, g.exec);
    pool::JobHandle extra;
    if (g.cancel_second_job) {
      extra = pool.submit(throwaway, tbodies, ExecConfig{});
      cancelled = extra.cancel();  // may lose the race to adoption
    }
    EXPECT_EQ(main_job.wait(), pool::JobState::kComplete);
    if (extra.valid()) {
      const pool::JobState st = extra.wait();
      if (cancelled) {
        // cancel() returning true now covers the mid-run case too: the job
        // still ends kCancelled, but may have executed a partial (or even
        // full) granule count before the cooperative stop drained it.
        EXPECT_EQ(st, pool::JobState::kCancelled);
        EXPECT_LE(extra.stats().granules, 96u);
      } else {
        EXPECT_EQ(st, pool::JobState::kComplete);
        EXPECT_EQ(extra.stats().granules, 96u);
      }
      cancelled_granules = extra.stats().granules;
    }
    pool.shutdown();

    rec.expect_exactly_once();
    const pool::PoolStats ps = pool.stats();
    const pool::JobStats js = main_job.stats();
    EXPECT_EQ(js.granules, g.total);
    EXPECT_EQ(ps.granules_executed, g.total + cancelled_granules)
        << "pool totals disagree with per-job sums";
    EXPECT_EQ(ps.jobs_cancelled, cancelled ? 1u : 0u);
    if (!g.steal) {
      EXPECT_EQ(ps.steals, 0u);
    }
  }
  // Body-side execution count must agree with the job's own accounting,
  // whichever way the cancel race went.
  EXPECT_EQ(throwaway_granules.load(), cancelled_granules);
}

/// Serve-mode stress: a burst of jobs from one generated program under EDF
/// with a bounded admission budget, random deadlines, and cancels fired at
/// random points (pre-open, mid-run, post-completion — the race is the
/// point). Checks the terminal-state machine end-to-end: every job lands in
/// exactly one terminal state, granule execution is exactly-once for
/// completed jobs and at-most-once for cancelled ones, rejected jobs never
/// execute, and the per-job stats sums match the pool counters.
inline void run_serve_checked(const GeneratedProgram& g) {
  constexpr std::size_t kJobs = 6;
  Rng rng(g.seed ^ 0x5EC7E5ULL);
  auto pick = [&](std::uint64_t lo, std::uint64_t hi) {  // inclusive
    return lo + rng() % (hi - lo + 1);
  };

  pool::PoolConfig pc;
  pc.workers = g.workers;
  pc.batch = g.batch;
  pc.shards = g.shards;
  pc.lockfree = g.lockfree;
  pc.steal = g.steal;
  pc.adaptive_grain = g.adaptive_grain;
  pc.policy = pool::SchedPolicy::kDeadline;
  // Small enough that a fast burst of kJobs can overflow it on some seeds
  // (rejection coverage), large enough that it usually doesn't starve.
  pc.max_pending = static_cast<std::uint32_t>(pick(2, 4));

  std::vector<std::unique_ptr<ExecutionRecorder>> recs;
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> sinks;
  std::vector<std::unique_ptr<rt::BodyTable>> bodies;  // stable addresses
  for (std::size_t i = 0; i < kJobs; ++i) {
    recs.push_back(std::make_unique<ExecutionRecorder>(g.granules));
    sinks.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
    bodies.push_back(std::make_unique<rt::BodyTable>(
        make_recording_bodies(g, *recs.back(), *sinks.back())));
  }

  std::vector<pool::JobHandle> handles;
  {
    pool::PoolRuntime pool(pc);
    for (std::size_t i = 0; i < kJobs; ++i) {
      pool::PoolRuntime::SubmitOptions opts;
      opts.priority = static_cast<int>(pick(0, 3));
      switch (pick(0, 3)) {
        case 0: break;  // no deadline
        case 1:         // unmeetable: a guaranteed miss if the job completes
          opts.deadline = std::chrono::nanoseconds{1};
          break;
        default:  // generous: normally met
          opts.deadline = std::chrono::milliseconds{200};
          break;
      }
      handles.push_back(pool.submit(g.program, *bodies[i], g.exec, opts));
      // Fire some cancels immediately (pre-open or early mid-run) and some
      // after a progress-dependent delay (late mid-run or post-completion).
      if (pick(0, 2) == 0) {
        if (pick(0, 1) == 1)
          handles.back().wait_for(std::chrono::microseconds{pick(0, 500)});
        handles.back().cancel();
      }
    }
    pool.drain();

    const pool::PoolStats ps = pool.stats();
    std::uint64_t sum_granules = 0;
    std::uint64_t n_complete = 0, n_cancelled = 0, n_rejected = 0;
    std::uint64_t missed = 0, met = 0;
    for (std::size_t i = 0; i < kJobs; ++i) {
      const pool::JobState st = handles[i].wait();  // all terminal after drain
      EXPECT_TRUE(pool::is_terminal(st));
      const pool::JobStats js = handles[i].stats();
      EXPECT_EQ(recs[i]->total(), js.granules)
          << "body-side execution count disagrees with job stats";
      sum_granules += js.granules;
      switch (st) {
        case pool::JobState::kComplete:
          ++n_complete;
          recs[i]->expect_exactly_once();
          EXPECT_EQ(js.granules, g.total);
          if (js.has_deadline) (js.deadline_missed ? missed : met) += 1;
          break;
        case pool::JobState::kCancelled:
          ++n_cancelled;
          recs[i]->expect_at_most_once();
          EXPECT_LE(js.granules, g.total);
          EXPECT_FALSE(js.deadline_missed);  // cancelled never counts missed
          break;
        case pool::JobState::kRejected:
          ++n_rejected;
          EXPECT_EQ(js.granules, 0u);
          if (js.has_deadline) {
            EXPECT_TRUE(js.deadline_missed);
            ++missed;
          }
          break;
        default:
          ADD_FAILURE() << "job " << i << " not terminal after drain: "
                        << to_string(st);
      }
    }
    EXPECT_EQ(ps.jobs_submitted, kJobs);
    EXPECT_EQ(ps.jobs_completed, n_complete);
    EXPECT_EQ(ps.jobs_cancelled, n_cancelled);
    EXPECT_EQ(ps.jobs_rejected, n_rejected);
    EXPECT_EQ(ps.jobs_deadline_missed, missed);
    EXPECT_EQ(ps.jobs_deadline_met, met);
    pool.shutdown();
    EXPECT_EQ(pool.stats().granules_executed, sum_granules)
        << "pool totals disagree with per-job sums";
  }
  // Handles outlive the pool: state/stats still answer, cancel degrades.
  for (auto& h : handles) {
    EXPECT_TRUE(h.done());
    EXPECT_FALSE(h.cancel());
  }
}

/// Run the same program on the simulator twice and check work totals and
/// determinism.
inline void run_sim_checked(const GeneratedProgram& g) {
  sim::Workload wl(g.seed);
  sim::MachineConfig mc;
  mc.workers = g.sim_workers;
  mc.shards = g.sim_shards;
  mc.record_intervals = false;
  const sim::SimResult r1 = sim::simulate(g.program, g.exec, CostModel{}, wl, mc);
  EXPECT_EQ(r1.granules_executed, g.total);
  EXPECT_LE(r1.utilization(), 1.0 + 1e-9);
  EXPECT_EQ(r1.shard_exec_ticks.size(), g.sim_shards);
  std::uint64_t lanes = 0;
  for (std::uint64_t t : r1.shard_exec_ticks) lanes += t;
  EXPECT_EQ(lanes, r1.exec_ticks) << "per-lane billing does not sum to total";
  const sim::SimResult r2 = sim::simulate(g.program, g.exec, CostModel{}, wl, mc);
  EXPECT_EQ(r1.makespan, r2.makespan) << "simulation not deterministic";
  EXPECT_EQ(r1.exec_ticks, r2.exec_ticks);
  EXPECT_EQ(r1.tasks_executed, r2.tasks_executed);
}

/// Fault-dimension stress (DESIGN.md §15): seed a plan of transient faults
/// (each site throws a bounded number of times, then succeeds on retry) and
/// run the generated program through the threaded runtime AND the pool on
/// the seed's shard engine, checking that the barrier + retry machinery
/// preserves every invariant the fault-free sweep pins:
///
///   * exactly-once retirement of every granule (a throwing attempt records
///     nothing, so retries do not double-count),
///   * fault accounting identities: faults == injected throws on both the
///     worker-side and executive-side paths, retries == faults (every
///     transient fault is within budget), zero poisoned granules,
///   * the terminal state is success — transient faults must never fail the
///     program or the job, and sibling pool counters stay consistent.
inline void run_fault_checked(std::uint64_t seed) {
  SCOPED_TRACE("fault seed=" + std::to_string(seed) +
               " (replay: PAX_STRESS_SEED=" + std::to_string(seed) +
               " ctest -R Stress.FaultSweep)");
  const GeneratedProgram g = generate_program(seed);
  Rng rng(seed ^ 0xFA017ULL);
  auto pick = [&](std::uint64_t lo, std::uint64_t hi) {  // inclusive
    return lo + rng() % (hi - lo + 1);
  };

  // Transient plan: a handful of sites, each throwing once or twice.
  // Duplicate sites are fine — set_throws overwrites, and the expected
  // count comes from FaultInjector::injected(), not from the plan.
  struct Site {
    std::size_t phase;
    GranuleId granule;
    std::uint32_t throws;
  };
  std::vector<Site> sites;
  const std::size_t n_sites = pick(1, 6);
  for (std::size_t i = 0; i < n_sites; ++i) {
    const std::size_t p = pick(0, g.phases.size() - 1);
    sites.push_back({p, static_cast<GranuleId>(pick(0, g.granules[p] - 1)),
                     static_cast<std::uint32_t>(pick(1, 2))});
  }
  // Retry budget must cover the worst stack-up of sites in one grain-sized
  // range (attempts are bumped range-wide per fault, so colocated sites
  // compound): 6 sites x 2 throws = 12 < 16.
  constexpr std::uint32_t kBudget = 16;

  // Threaded arm.
  {
    ExecutionRecorder rec(g.granules);
    FaultInjector inj(g.granules);
    for (const Site& s : sites) inj.set_throws(s.phase, s.granule, s.throws);
    std::atomic<std::uint64_t> sink{0};
    rt::BodyTable bodies = make_faulty_bodies(g, rec, sink, inj);
    rt::RtConfig rc;
    rc.workers = g.workers;
    rc.batch = g.batch;
    rc.shards = g.shards;
    rc.lockfree = g.lockfree;
    rc.steal = g.steal;
    rc.adaptive_grain = g.adaptive_grain;
    rc.max_granule_retries = kBudget;
    rc.retry_backoff_ticks = static_cast<std::uint32_t>(pick(0, 3));
    rt::RtResult res = rt::ThreadedRuntime(g.program, g.exec,
                                           CostModel::free_of_charge(), bodies,
                                           rc)
                           .run();
    rec.expect_exactly_once();
    EXPECT_FALSE(res.faulted);
    EXPECT_EQ(res.granules_executed, g.total);
    EXPECT_EQ(res.granule_faults, inj.injected())
        << "worker-side fault count disagrees with injected throws";
    EXPECT_EQ(res.granule_retries, inj.injected())
        << "every transient fault is within budget, so retries == faults";
    EXPECT_EQ(res.granules_poisoned, 0u);
    EXPECT_EQ(res.map_faults, 0u);
    EXPECT_FALSE(res.fault_summary.empty());
  }

  // Pool arm (fresh recorder and budgets).
  {
    ExecutionRecorder rec(g.granules);
    FaultInjector inj(g.granules);
    for (const Site& s : sites) inj.set_throws(s.phase, s.granule, s.throws);
    std::atomic<std::uint64_t> sink{0};
    rt::BodyTable bodies = make_faulty_bodies(g, rec, sink, inj);

    pool::PoolConfig pc;
    pc.workers = g.workers;
    pc.batch = g.batch;
    pc.shards = g.shards;
    pc.lockfree = g.lockfree;
    pc.steal = g.steal;
    pc.adaptive_grain = g.adaptive_grain;
    ExecConfig ec = g.exec;
    ec.max_granule_retries = kBudget;
    ec.retry_backoff_ticks = static_cast<std::uint32_t>(pick(0, 3));

    pool::PoolRuntime pool(pc);
    pool::JobHandle h = pool.submit(g.program, bodies, ec);
    EXPECT_EQ(h.wait(), pool::JobState::kComplete);
    pool.shutdown();

    rec.expect_exactly_once();
    const pool::JobStats js = h.stats();
    EXPECT_EQ(js.granules, g.total);
    EXPECT_EQ(js.granule_faults, inj.injected());
    EXPECT_EQ(js.granule_retries, inj.injected());
    EXPECT_EQ(js.granules_poisoned, 0u);
    EXPECT_TRUE(inj.injected() == 0 || !js.fault_summary.empty());
    const pool::PoolStats ps = pool.stats();
    EXPECT_EQ(ps.jobs_completed, 1u);
    EXPECT_EQ(ps.jobs_failed, 0u);
    EXPECT_EQ(ps.granules_executed, g.total);
    EXPECT_EQ(ps.granule_faults, inj.injected())
        << "pool worker-side fault total disagrees with injected throws";
    EXPECT_EQ(ps.granule_retries, inj.injected())
        << "executive-side retry sum disagrees — the two accounting paths "
           "must cross-check";
    EXPECT_EQ(ps.granules_poisoned, 0u);
    EXPECT_EQ(ps.watchdog_flags, 0u);
  }
}

/// The full cross-runtime check for one seed.
inline void run_seed(std::uint64_t seed) {
  SCOPED_TRACE("seed=" + std::to_string(seed) +
               " (replay: PAX_STRESS_SEED=" + std::to_string(seed) +
               " ctest -R stress)");
  const GeneratedProgram g = generate_program(seed);
  run_threaded_checked(g);
  run_pool_checked(g);
  run_sim_checked(g);
}

}  // namespace pax::testing
