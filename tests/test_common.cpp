// Unit tests for src/common: intrusive ring, RNG, stats, table, CSR.
#include <gtest/gtest.h>

#include <set>

#include "common/csr.hpp"
#include "common/intrusive_ring.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace pax {
namespace {

// --- intrusive ring ----------------------------------------------------------

struct Node {
  int value = 0;
  RingHook hook;
};
using Ring = IntrusiveRing<Node, &Node::hook>;

TEST(IntrusiveRing, StartsEmpty) {
  Ring r;
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.size(), 0u);
  EXPECT_EQ(r.front(), nullptr);
  EXPECT_EQ(r.pop_front(), nullptr);
}

TEST(IntrusiveRing, PushBackPreservesFifo) {
  Ring r;
  Node a{1}, b{2}, c{3};
  r.push_back(a);
  r.push_back(b);
  r.push_back(c);
  EXPECT_EQ(r.size(), 3u);
  EXPECT_EQ(r.pop_front()->value, 1);
  EXPECT_EQ(r.pop_front()->value, 2);
  EXPECT_EQ(r.pop_front()->value, 3);
  EXPECT_TRUE(r.empty());
}

TEST(IntrusiveRing, PushFrontAndBack) {
  Ring r;
  Node a{1}, b{2}, c{3};
  r.push_back(b);
  r.push_front(a);
  r.push_back(c);
  EXPECT_EQ(r.front()->value, 1);
  EXPECT_EQ(r.back()->value, 3);
  r.drain([](Node&) {});
}

TEST(IntrusiveRing, UnlinkFromMiddle) {
  Ring r;
  Node a{1}, b{2}, c{3};
  r.push_back(a);
  r.push_back(b);
  r.push_back(c);
  Ring::remove(b);
  EXPECT_FALSE(Ring::is_linked(b));
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r.pop_front()->value, 1);
  EXPECT_EQ(r.pop_front()->value, 3);
}

TEST(IntrusiveRing, InsertBeforeAndAfter) {
  Ring r;
  Node a{1}, b{2}, c{3}, d{4};
  r.push_back(a);
  r.push_back(d);
  Ring::insert_after(a, b);
  Ring::insert_before(d, c);
  std::vector<int> got;
  r.drain([&](Node& n) { got.push_back(n.value); });
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3, 4}));
}

TEST(IntrusiveRing, SpliceBackMovesAll) {
  Ring r1, r2;
  Node a{1}, b{2}, c{3};
  r1.push_back(a);
  r2.push_back(b);
  r2.push_back(c);
  r1.splice_back(r2);
  EXPECT_TRUE(r2.empty());
  EXPECT_EQ(r1.size(), 3u);
  std::vector<int> got;
  r1.drain([&](Node& n) { got.push_back(n.value); });
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
}

TEST(IntrusiveRing, SpliceEmptyIsNoop) {
  Ring r1, r2;
  Node a{1};
  r1.push_back(a);
  r1.splice_back(r2);
  EXPECT_EQ(r1.size(), 1u);
  r1.drain([](Node&) {});
}

TEST(IntrusiveRing, ForEachAllowsRemovingVisited) {
  Ring r;
  Node a{1}, b{2}, c{3};
  r.push_back(a);
  r.push_back(b);
  r.push_back(c);
  r.for_each([](Node& n) {
    if (n.value == 2) Ring::remove(n);
  });
  EXPECT_EQ(r.size(), 2u);
  r.drain([](Node&) {});
}

// --- RNG ----------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, BelowCoversRange) {
  Rng r(8);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 400; ++i) seen.insert(r.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, Uniform01Bounds) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r(10);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo |= v == -3;
    hit_hi |= v == 3;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, ExponentialMeanRoughlyRight) {
  Rng r(11);
  Accumulator acc;
  for (int i = 0; i < 20000; ++i) acc.add(r.exponential(50.0));
  EXPECT_NEAR(acc.mean(), 50.0, 2.5);
}

TEST(Rng, NormalMoments) {
  Rng r(12);
  Accumulator acc;
  for (int i = 0; i < 20000; ++i) acc.add(r.normal(10.0, 2.0));
  EXPECT_NEAR(acc.mean(), 10.0, 0.15);
  EXPECT_NEAR(acc.stddev(), 2.0, 0.15);
}

TEST(Rng, SplitStreamsIndependent) {
  Rng parent(13);
  Rng a = parent.split(1);
  Rng b = parent.split(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

// --- stats ---------------------------------------------------------------------

TEST(Accumulator, EmptyIsZero) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.variance(), 0.0);
}

TEST(Accumulator, BasicMoments) {
  Accumulator a;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(a.min(), 2.0);
  EXPECT_EQ(a.max(), 9.0);
  EXPECT_EQ(a.count(), 8u);
}

TEST(Accumulator, MergeMatchesSequential) {
  Accumulator whole, left, right;
  Rng r(14);
  for (int i = 0; i < 500; ++i) {
    const double x = r.uniform(0, 100);
    whole.add(x);
    (i % 2 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-6);
  EXPECT_EQ(left.count(), whole.count());
}

TEST(Histogram, QuantilesOrdered) {
  Histogram h(0, 100, 50);
  Rng r(15);
  for (int i = 0; i < 10000; ++i) h.add(r.uniform(0, 100));
  const double q25 = h.quantile(0.25);
  const double q50 = h.quantile(0.50);
  const double q75 = h.quantile(0.75);
  EXPECT_LT(q25, q50);
  EXPECT_LT(q50, q75);
  EXPECT_NEAR(q50, 50.0, 5.0);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0, 10, 10);
  h.add(-5.0);
  h.add(15.0);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(9), 1u);
}

TEST(Histogram, SparklineLengthMatchesBuckets) {
  Histogram h(0, 10, 12);
  for (int i = 0; i < 100; ++i) h.add(5.0);
  EXPECT_FALSE(h.sparkline().empty());
}

// --- table ----------------------------------------------------------------------

TEST(Table, RendersAlignedColumns) {
  Table t("demo");
  t.header({"name", "count"});
  t.row({"alpha", "1"});
  t.row({"b", "20"});
  const std::string s = t.render();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  // Right-aligned numeric column: " 1" under "20".
  EXPECT_NE(s.find(" 1"), std::string::npos);
}

TEST(Table, FormattersBehave) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::pct(0.5, 0), "50%");
  EXPECT_EQ(Table::count(0), "0");
  EXPECT_EQ(Table::count(999), "999");
  EXPECT_EQ(Table::count(1000), "1,000");
  EXPECT_EQ(Table::count(524288), "524,288");
  EXPECT_EQ(Table::count(1234567), "1,234,567");
}

// --- CSR ------------------------------------------------------------------------

TEST(Csr, BuildsRowsFromUnsortedPairs) {
  auto csr = Csr<int>::from_pairs(
      4, {{2, 20}, {0, 1}, {2, 21}, {0, 2}, {3, 30}});
  EXPECT_EQ(csr.rows(), 4u);
  EXPECT_EQ(csr.entries(), 5u);
  EXPECT_EQ(csr[0].size(), 2u);
  EXPECT_TRUE(csr.row_empty(1));
  EXPECT_EQ(csr[2].size(), 2u);
  EXPECT_EQ(csr[3][0], 30);
}

TEST(Csr, EmptyCsr) {
  Csr<int> csr;
  EXPECT_EQ(csr.rows(), 0u);
  auto built = Csr<int>::from_pairs(3, {});
  EXPECT_EQ(built.rows(), 3u);
  EXPECT_TRUE(built.row_empty(0));
}

}  // namespace
}  // namespace pax
