// Pool runtime tests: K concurrent jobs complete with exact accounting,
// scheduling policies order rotations as documented, cancel-before-open,
// per-job stats sum to pool totals, and enablement order holds for a job
// executed through the shared pool. Runs under ThreadSanitizer in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "pool/pool_runtime.hpp"
#include "runtime/happens_before.hpp"

namespace pax::pool {
namespace {

// --- program builders (programs/bodies outlive the jobs: test scope) --------

struct SinglePhase {
  PhaseProgram prog;
  PhaseId p = kNoPhase;
};

SinglePhase make_single_phase(GranuleId n) {
  SinglePhase s;
  s.p = s.prog.define_phase(make_phase("only", n).writes("O"));
  s.prog.dispatch(s.p);
  s.prog.halt();
  return s;
}

struct TwoPhase {
  PhaseProgram prog;
  PhaseId a = kNoPhase;
  PhaseId b = kNoPhase;
};

TwoPhase make_two_phase_identity(GranuleId n) {
  TwoPhase s;
  s.a = s.prog.define_phase(make_phase("a", n).writes("X"));
  s.b = s.prog.define_phase(make_phase("b", n).reads("X").writes("Y"));
  s.prog.dispatch(s.a, {EnableClause{"b", MappingKind::kIdentity, {}}});
  s.prog.dispatch(s.b);
  s.prog.halt();
  return s;
}

struct LoopProg {
  PhaseProgram prog;
  std::vector<PhaseId> phases;
};

LoopProg make_loop(GranuleId n, int iters) {
  LoopProg s;
  PhaseId a = s.prog.define_phase(make_phase("a", n).writes("A"));
  PhaseId b = s.prog.define_phase(make_phase("b", n).reads("A").writes("B"));
  PhaseId c = s.prog.define_phase(make_phase("c", n).reads("B").writes("C"));
  s.phases = {a, b, c};
  s.prog.serial("init", [](ProgramEnv& env) { env.set("i", 0); }, 0, false);
  const std::uint32_t top =
      s.prog.dispatch(a, {EnableClause{"b", MappingKind::kIdentity, {}}});
  s.prog.dispatch(b, {EnableClause{"c", MappingKind::kIdentity, {}}});
  s.prog.dispatch(c);
  s.prog.serial("inc", [](ProgramEnv& env) { env.add("i", 1); }, 0, false);
  s.prog.branch("loop",
                [iters](const ProgramEnv& env) {
                  return env.get("i") < iters ? std::size_t{0} : std::size_t{1};
                },
                {top, static_cast<std::uint32_t>(s.prog.size() + 1)}, true);
  s.prog.halt();
  return s;
}

rt::BodyTable counting_bodies(std::span<const PhaseId> phases,
                              std::atomic<std::uint64_t>& counter) {
  rt::BodyTable bodies;
  for (PhaseId p : phases)
    bodies.set(p, [&counter](GranuleRange r, WorkerId) {
      counter.fetch_add(r.size(), std::memory_order_relaxed);
    });
  return bodies;
}

// --- scheduling policy comparator (pure, no threads) ------------------------

TEST(SchedPolicyPick, FifoPicksLowestId) {
  const JobView a{0, 0, 500};
  const JobView b{1, 9, 0};
  EXPECT_TRUE(schedules_before(a, b, SchedPolicy::kFifo));
  EXPECT_FALSE(schedules_before(b, a, SchedPolicy::kFifo));
}

TEST(SchedPolicyPick, PriorityOutranksIdThenFifoTieBreak) {
  const JobView low_first{0, 1, 0};
  const JobView high_later{5, 7, 0};
  EXPECT_TRUE(schedules_before(high_later, low_first, SchedPolicy::kPriority));
  const JobView same_prio{9, 7, 0};
  EXPECT_TRUE(schedules_before(high_later, same_prio, SchedPolicy::kPriority));
}

TEST(SchedPolicyPick, FairSharePicksLeastGranulesThenFifoTieBreak) {
  const JobView ahead{0, 0, 1000};
  const JobView behind{3, 0, 10};
  EXPECT_TRUE(schedules_before(behind, ahead, SchedPolicy::kFairShare));
  const JobView tied{7, 0, 10};
  EXPECT_TRUE(schedules_before(behind, tied, SchedPolicy::kFairShare));
}

// --- config validation ------------------------------------------------------

TEST(PoolConfigDeathTest, RejectsZeroWorkers) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(PoolRuntime({.workers = 0, .batch = 4}),
               "pool needs at least one worker");
}

TEST(PoolConfigDeathTest, RejectsZeroBatch) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(PoolRuntime({.workers = 2, .batch = 0}),
               "pool batch must be at least 1");
}

TEST(PoolConfigDeathTest, RejectsZeroShards) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(PoolRuntime({.workers = 2, .batch = 4, .shards = 0}),
               "shards must be at least 1");
}

TEST(PoolConfigDeathTest, RejectsMismatchedJobShards) {
  // A per-job shard override that disagrees with an explicit pool-level
  // count fails at submit: the home-shard geometry is pool machinery.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  SinglePhase s = make_single_phase(32);
  rt::BodyTable bodies;
  bodies.set(s.p, [](GranuleRange, WorkerId) {});
  EXPECT_DEATH(
      {
        PoolRuntime pool({.workers = 2, .batch = 4, .shards = 2});
        pool.submit(s.prog, bodies, ExecConfig{}, 0, CostModel{}, /*shards=*/3);
      },
      "mismatches the pool's shard configuration");
}

TEST(PoolConfigDeathTest, RejectsJobWithMoreShardsThanGranules) {
  // The per-job executive validates its own geometry: an explicit count
  // beyond the job's largest phase dies in the job constructor.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  SinglePhase s = make_single_phase(8);
  rt::BodyTable bodies;
  bodies.set(s.p, [](GranuleRange, WorkerId) {});
  EXPECT_DEATH(
      {
        PoolRuntime pool({.workers = 2, .batch = 4});
        pool.submit(s.prog, bodies, ExecConfig{}, 0, CostModel{}, /*shards=*/64);
      },
      "more shards than granules");
}

TEST(PoolConfig, JobOverrideAgreesWithAutoPool) {
  // With the pool left at kAutoShards, a per-job explicit count is honored.
  SinglePhase s = make_single_phase(32);
  std::atomic<std::uint64_t> n{0};
  rt::BodyTable bodies;
  bodies.set(s.p, [&](GranuleRange r, WorkerId) {
    n.fetch_add(r.size(), std::memory_order_relaxed);
  });
  PoolRuntime pool({.workers = 2, .batch = 4});
  JobHandle h = pool.submit(s.prog, bodies, ExecConfig{}, 0, CostModel{},
                            /*shards=*/3);
  EXPECT_EQ(h.wait(), JobState::kComplete);
  pool.shutdown();
  EXPECT_EQ(h.stats().shards, 3u);
  EXPECT_EQ(n.load(), 32u);
}

// --- completion and accounting ----------------------------------------------

TEST(PoolCompletion, ManyConcurrentJobsAllCompleteWithExactAccounting) {
  constexpr int kJobs = 6;
  std::vector<TwoPhase> two(kJobs / 2);
  std::vector<LoopProg> loops(kJobs / 2);
  std::vector<rt::BodyTable> bodies;
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> counts;
  std::vector<std::uint64_t> expected;
  bodies.reserve(kJobs);

  for (int i = 0; i < kJobs / 2; ++i) {
    two[i] = make_two_phase_identity(128);
    counts.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
    const PhaseId ph[] = {two[i].a, two[i].b};
    bodies.push_back(counting_bodies(ph, *counts.back()));
    expected.push_back(2u * 128u);
  }
  for (int i = 0; i < kJobs / 2; ++i) {
    loops[i] = make_loop(64, 4);
    counts.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
    bodies.push_back(counting_bodies(loops[i].phases, *counts.back()));
    expected.push_back(4u * 3u * 64u);
  }

  std::vector<JobHandle> handles;
  {
    PoolRuntime pool({.workers = 4, .batch = 4, .policy = SchedPolicy::kFairShare});
    ExecConfig cfg;
    cfg.grain = 8;
    cfg.early_serial = true;
    for (int i = 0; i < kJobs / 2; ++i)
      handles.push_back(pool.submit(two[i].prog, bodies[i], cfg));
    for (int i = 0; i < kJobs / 2; ++i)
      handles.push_back(
          pool.submit(loops[i].prog, bodies[kJobs / 2 + i], cfg));

    for (auto& h : handles) EXPECT_EQ(h.wait(), JobState::kComplete);
    pool.shutdown();

    const PoolStats ps = pool.stats();
    EXPECT_EQ(ps.jobs_submitted, static_cast<std::uint64_t>(kJobs));
    EXPECT_EQ(ps.jobs_completed, static_cast<std::uint64_t>(kJobs));
    EXPECT_EQ(ps.jobs_cancelled, 0u);

    // Per-job stats sum exactly to the (independently accumulated) pool
    // totals, and match the program-derived expectations.
    std::uint64_t sum_granules = 0, sum_tasks = 0;
    std::chrono::nanoseconds sum_busy{0};
    for (int i = 0; i < kJobs; ++i) {
      const JobStats js = handles[i].stats();
      EXPECT_EQ(js.granules, expected[i]) << "job " << i;
      EXPECT_EQ(counts[i]->load(), expected[i]) << "job " << i;
      EXPECT_GT(js.exec_lock_acquisitions, 0u);
      sum_granules += js.granules;
      sum_tasks += js.tasks;
      sum_busy += js.busy;
    }
    EXPECT_EQ(sum_granules, ps.granules_executed);
    EXPECT_EQ(sum_tasks, ps.tasks_executed);
    std::chrono::nanoseconds pool_busy{0};
    for (auto b : ps.worker_busy) pool_busy += b;
    EXPECT_EQ(sum_busy, pool_busy);
    EXPECT_EQ(ps.worker_wall.size(), 4u);
    for (auto w : ps.worker_wall) EXPECT_GT(w.count(), 0);
    EXPECT_GT(ps.utilization(), 0.0);
    EXPECT_LE(ps.utilization(), 1.0 + 1e-9);
  }
}

// --- scheduling order on a single worker (deterministic) --------------------

/// Submit a gate job that pins the only worker, queue three single-phase
/// jobs, release the gate, and observe the rotation order by recording body
/// executions.
std::vector<int> run_three_jobs_under(SchedPolicy policy) {
  SinglePhase gate_prog = make_single_phase(1);
  SinglePhase jobs_prog[3] = {make_single_phase(4), make_single_phase(4),
                              make_single_phase(4)};
  std::atomic<bool> gate{false};
  rt::BodyTable gate_bodies;
  gate_bodies.set(gate_prog.p, [&gate](GranuleRange, WorkerId) {
    while (!gate.load(std::memory_order_acquire)) std::this_thread::yield();
  });

  std::mutex order_mu;
  std::vector<int> order;
  rt::BodyTable tag_bodies[3];
  for (int i = 0; i < 3; ++i)
    tag_bodies[i].set(jobs_prog[i].p, [i, &order_mu, &order](GranuleRange, WorkerId) {
      std::scoped_lock lock(order_mu);
      order.push_back(i);
    });

  PoolRuntime pool({.workers = 1, .batch = 4, .policy = policy});
  ExecConfig cfg;
  JobHandle blocker = pool.submit(gate_prog.prog, gate_bodies, cfg);
  // Priorities: job0 low, job1 high, job2 mid — submission order 0,1,2.
  const int prio[3] = {1, 9, 5};
  JobHandle handles[3];
  for (int i = 0; i < 3; ++i)
    handles[i] = pool.submit(jobs_prog[i].prog, tag_bodies[i], cfg, prio[i]);

  gate.store(true, std::memory_order_release);
  EXPECT_EQ(blocker.wait(), JobState::kComplete);
  for (auto& h : handles) EXPECT_EQ(h.wait(), JobState::kComplete);
  pool.shutdown();
  return order;
}

TEST(PoolScheduling, PriorityPolicyOrdersRotationsByPriority) {
  const std::vector<int> order = run_three_jobs_under(SchedPolicy::kPriority);
  ASSERT_EQ(order.size(), 12u);  // 3 jobs x 4 granules, grain 1
  const std::vector<int> want = {1, 1, 1, 1, 2, 2, 2, 2, 0, 0, 0, 0};
  EXPECT_EQ(order, want);
}

TEST(PoolScheduling, FifoPolicyOrdersRotationsBySubmission) {
  const std::vector<int> order = run_three_jobs_under(SchedPolicy::kFifo);
  ASSERT_EQ(order.size(), 12u);
  const std::vector<int> want = {0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2};
  EXPECT_EQ(order, want);
}

// --- fair share balance ------------------------------------------------------

/// Deterministic rotation scenario on two workers, batch = grain = 1.
///
/// Job L pins worker 1 (its single granule blocks on a gate). Job M's first
/// two granules execute on worker 2, its third blocks in-body on a gate
/// while its fourth still sits in the waiting queue — a runnable job with
/// granule history. Job N is then submitted fresh (zero granules). Releasing
/// L's gate sends worker 1 rotating with exactly two candidates:
///   M (runnable, 2 granules executed)  vs  N (queued, 0 granules).
/// kFairShare must adopt N first; kFifo must adopt M (lower id) first.
/// Returns the recorded body order of M's fourth granule ("M") and N ("N").
std::vector<char> run_fair_share_scenario(SchedPolicy policy) {
  SinglePhase l_prog = make_single_phase(1);
  SinglePhase m_prog = make_single_phase(4);
  SinglePhase n_prog = make_single_phase(1);

  std::atomic<bool> gate_l{false}, gate_m{false};
  std::atomic<bool> l_started{false}, m_blocked{false};
  std::mutex order_mu;
  std::vector<char> order;

  rt::BodyTable l_bodies;
  l_bodies.set(l_prog.p, [&](GranuleRange, WorkerId) {
    l_started.store(true, std::memory_order_release);
    while (!gate_l.load(std::memory_order_acquire)) std::this_thread::yield();
  });
  rt::BodyTable m_bodies;
  m_bodies.set(m_prog.p, [&](GranuleRange r, WorkerId) {
    if (r.lo == 2) {  // third granule: block with the fourth still queued
      m_blocked.store(true, std::memory_order_release);
      while (!gate_m.load(std::memory_order_acquire)) std::this_thread::yield();
    } else if (r.lo == 3) {
      std::scoped_lock lock(order_mu);
      order.push_back('M');
    }
  });
  rt::BodyTable n_bodies;
  n_bodies.set(n_prog.p, [&](GranuleRange, WorkerId) {
    std::scoped_lock lock(order_mu);
    order.push_back('N');
  });

  PoolRuntime pool({.workers = 2, .batch = 1, .policy = policy});
  ExecConfig cfg;  // grain = 1: one granule per assignment
  JobHandle l = pool.submit(l_prog.prog, l_bodies, cfg);
  while (!l_started.load(std::memory_order_acquire)) std::this_thread::yield();
  JobHandle m = pool.submit(m_prog.prog, m_bodies, cfg);
  while (!m_blocked.load(std::memory_order_acquire)) std::this_thread::yield();
  JobHandle n = pool.submit(n_prog.prog, n_bodies, cfg);
  gate_l.store(true, std::memory_order_release);

  // Worker 1 finishes L, then rotates through N and M's fourth granule (in
  // the policy's order); unblock M's third granule once both are recorded.
  EXPECT_EQ(l.wait(), JobState::kComplete);
  EXPECT_EQ(n.wait(), JobState::kComplete);
  while (true) {
    {
      std::scoped_lock lock(order_mu);
      if (order.size() == 2) break;
    }
    std::this_thread::yield();
  }
  gate_m.store(true, std::memory_order_release);
  EXPECT_EQ(m.wait(), JobState::kComplete);
  pool.shutdown();

  EXPECT_GT(pool.stats().rotations, 0u);
  EXPECT_EQ(m.stats().granules, 4u);
  return order;
}

TEST(PoolScheduling, FairSharePrefersLeastServedJobAtRotation) {
  const std::vector<char> order = run_fair_share_scenario(SchedPolicy::kFairShare);
  EXPECT_EQ(order, (std::vector<char>{'N', 'M'}));
}

TEST(PoolScheduling, FifoPrefersEarliestSubmittedJobAtRotation) {
  const std::vector<char> order = run_fair_share_scenario(SchedPolicy::kFifo);
  EXPECT_EQ(order, (std::vector<char>{'M', 'N'}));
}

// --- cancellation ------------------------------------------------------------

TEST(PoolCancel, CancelBeforeOpenWinsOnceAndVictimNeverRuns) {
  SinglePhase gate_prog = make_single_phase(1);
  SinglePhase victim_prog = make_single_phase(8);
  std::atomic<bool> gate{false};
  std::atomic<bool> victim_ran{false};

  rt::BodyTable gate_bodies;
  gate_bodies.set(gate_prog.p, [&gate](GranuleRange, WorkerId) {
    while (!gate.load(std::memory_order_acquire)) std::this_thread::yield();
  });
  rt::BodyTable victim_bodies;
  victim_bodies.set(victim_prog.p, [&victim_ran](GranuleRange, WorkerId) {
    victim_ran.store(true, std::memory_order_relaxed);
  });

  PoolRuntime pool({.workers = 1, .batch = 4});
  ExecConfig cfg;
  JobHandle blocker = pool.submit(gate_prog.prog, gate_bodies, cfg);
  JobHandle victim = pool.submit(victim_prog.prog, victim_bodies, cfg);

  EXPECT_EQ(victim.state(), JobState::kQueued);
  EXPECT_TRUE(victim.cancel());
  EXPECT_FALSE(victim.cancel());  // second cancel loses
  EXPECT_EQ(victim.state(), JobState::kCancelled);
  EXPECT_EQ(victim.wait(), JobState::kCancelled);

  gate.store(true, std::memory_order_release);
  EXPECT_EQ(blocker.wait(), JobState::kComplete);
  EXPECT_FALSE(blocker.cancel());  // completed jobs cannot be cancelled
  pool.shutdown();

  EXPECT_FALSE(victim_ran.load());
  const JobStats vs = victim.stats();
  EXPECT_EQ(vs.granules, 0u);
  EXPECT_EQ(vs.queued.count(), 0);
  const PoolStats ps = pool.stats();
  EXPECT_EQ(ps.jobs_cancelled, 1u);
  EXPECT_EQ(ps.jobs_completed, 1u);
  EXPECT_EQ(ps.granules_executed, 1u);  // the blocker's single granule
}

// --- enablement correctness through the pool ---------------------------------

TEST(PoolHappensBefore, IdentityOrderHoldsForPooledJob) {
  const GranuleId n = 256;
  TwoPhase s = make_two_phase_identity(n);
  rt::HappensBeforeRecorder rec(2, n);
  rt::BodyTable bodies;
  bodies.set(s.a, [&rec](GranuleRange r, WorkerId) {
    for (GranuleId g = r.lo; g < r.hi; ++g) {
      rec.on_start(0, g);
      rec.on_finish(0, g);
    }
  });
  bodies.set(s.b, [&rec](GranuleRange r, WorkerId) {
    for (GranuleId g = r.lo; g < r.hi; ++g) {
      rec.on_start(1, g);
      rec.on_finish(1, g);
    }
  });

  PoolRuntime pool({.workers = 4, .batch = 4});
  ExecConfig cfg;
  cfg.grain = 8;
  JobHandle h = pool.submit(s.prog, bodies, cfg);
  EXPECT_EQ(h.wait(), JobState::kComplete);
  pool.shutdown();

  EXPECT_EQ(h.stats().granules, 2u * n);
  for (GranuleId g = 0; g < n; ++g) {
    ASSERT_TRUE(rec.executed(0, g));
    ASSERT_TRUE(rec.executed(1, g));
    EXPECT_LT(rec.finish_ticket(0, g), rec.start_ticket(1, g))
        << "identity enablement violated at granule " << g;
  }
}

// --- handle ergonomics -------------------------------------------------------

TEST(PoolHandles, PollAndQueuedTimeTracking) {
  SinglePhase s = make_single_phase(16);
  std::atomic<std::uint64_t> count{0};
  const PhaseId ph[] = {s.p};
  rt::BodyTable bodies = counting_bodies(ph, count);

  PoolRuntime pool({.workers = 2, .batch = 4});
  ExecConfig cfg;
  JobHandle h = pool.submit(s.prog, bodies, cfg);
  EXPECT_TRUE(h.valid());
  EXPECT_EQ(h.wait(), JobState::kComplete);
  EXPECT_TRUE(h.done());
  const JobStats js = h.stats();
  EXPECT_EQ(js.granules, 16u);
  EXPECT_GE(js.span.count(), js.busy.count());
  EXPECT_GE(js.span, js.queued);
  pool.shutdown();
}

}  // namespace
}  // namespace pax::pool
