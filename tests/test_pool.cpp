// Pool runtime tests: K concurrent jobs complete with exact accounting,
// scheduling policies (including EDF) order rotations as documented,
// cancel-before-open and true mid-run cancellation on both shard engines,
// admission control / kRejected, deadline accounting, timed waits, handles
// that outlive the pool, the done() => stats()-final terminal contract, and
// enablement order for a job executed through the shared pool. Runs under
// ThreadSanitizer in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

#include "pool/pool_runtime.hpp"
#include "runtime/happens_before.hpp"

namespace pax::pool {
namespace {

// --- program builders (programs/bodies outlive the jobs: test scope) --------

struct SinglePhase {
  PhaseProgram prog;
  PhaseId p = kNoPhase;
};

SinglePhase make_single_phase(GranuleId n) {
  SinglePhase s;
  s.p = s.prog.define_phase(make_phase("only", n).writes("O"));
  s.prog.dispatch(s.p);
  s.prog.halt();
  return s;
}

struct TwoPhase {
  PhaseProgram prog;
  PhaseId a = kNoPhase;
  PhaseId b = kNoPhase;
};

TwoPhase make_two_phase_identity(GranuleId n) {
  TwoPhase s;
  s.a = s.prog.define_phase(make_phase("a", n).writes("X"));
  s.b = s.prog.define_phase(make_phase("b", n).reads("X").writes("Y"));
  s.prog.dispatch(s.a, {EnableClause{"b", MappingKind::kIdentity, {}}});
  s.prog.dispatch(s.b);
  s.prog.halt();
  return s;
}

struct LoopProg {
  PhaseProgram prog;
  std::vector<PhaseId> phases;
};

LoopProg make_loop(GranuleId n, int iters) {
  LoopProg s;
  PhaseId a = s.prog.define_phase(make_phase("a", n).writes("A"));
  PhaseId b = s.prog.define_phase(make_phase("b", n).reads("A").writes("B"));
  PhaseId c = s.prog.define_phase(make_phase("c", n).reads("B").writes("C"));
  s.phases = {a, b, c};
  s.prog.serial("init", [](ProgramEnv& env) { env.set("i", 0); }, 0, false);
  const std::uint32_t top =
      s.prog.dispatch(a, {EnableClause{"b", MappingKind::kIdentity, {}}});
  s.prog.dispatch(b, {EnableClause{"c", MappingKind::kIdentity, {}}});
  s.prog.dispatch(c);
  s.prog.serial("inc", [](ProgramEnv& env) { env.add("i", 1); }, 0, false);
  s.prog.branch("loop",
                [iters](const ProgramEnv& env) {
                  return env.get("i") < iters ? std::size_t{0} : std::size_t{1};
                },
                {top, static_cast<std::uint32_t>(s.prog.size() + 1)}, true);
  s.prog.halt();
  return s;
}

rt::BodyTable counting_bodies(std::span<const PhaseId> phases,
                              std::atomic<std::uint64_t>& counter) {
  rt::BodyTable bodies;
  for (PhaseId p : phases)
    bodies.set(p, [&counter](GranuleRange r, WorkerId) {
      counter.fetch_add(r.size(), std::memory_order_relaxed);
    });
  return bodies;
}

// --- scheduling policy comparator (pure, no threads) ------------------------

TEST(SchedPolicyPick, FifoPicksLowestId) {
  const JobView a{0, 0, 500};
  const JobView b{1, 9, 0};
  EXPECT_TRUE(schedules_before(a, b, SchedPolicy::kFifo));
  EXPECT_FALSE(schedules_before(b, a, SchedPolicy::kFifo));
}

TEST(SchedPolicyPick, PriorityOutranksIdThenFifoTieBreak) {
  const JobView low_first{0, 1, 0};
  const JobView high_later{5, 7, 0};
  EXPECT_TRUE(schedules_before(high_later, low_first, SchedPolicy::kPriority));
  const JobView same_prio{9, 7, 0};
  EXPECT_TRUE(schedules_before(high_later, same_prio, SchedPolicy::kPriority));
}

TEST(SchedPolicyPick, FairSharePicksLeastGranulesThenFifoTieBreak) {
  const JobView ahead{0, 0, 1000};
  const JobView behind{3, 0, 10};
  EXPECT_TRUE(schedules_before(behind, ahead, SchedPolicy::kFairShare));
  const JobView tied{7, 0, 10};
  EXPECT_TRUE(schedules_before(behind, tied, SchedPolicy::kFairShare));
}

TEST(SchedPolicyPick, DeadlinePicksEarliestThenFifoTieBreak) {
  const JobView late{0, 9, 0, 5000};
  const JobView soon{4, 0, 0, 1000};
  // EDF: the earlier absolute deadline wins regardless of id or priority.
  EXPECT_TRUE(schedules_before(soon, late, SchedPolicy::kDeadline));
  EXPECT_FALSE(schedules_before(late, soon, SchedPolicy::kDeadline));
  // Equal deadlines tie-break by id, like every policy.
  const JobView tied{9, 0, 0, 1000};
  EXPECT_TRUE(schedules_before(soon, tied, SchedPolicy::kDeadline));
}

TEST(SchedPolicyPick, DeadlineFreeJobsSortLast) {
  const JobView batch{0, 0, 0};  // deadline_ns defaults to kNoDeadline
  EXPECT_EQ(batch.deadline_ns, kNoDeadline);
  const JobView urgent{7, 0, 0, std::numeric_limits<std::int64_t>::max() - 1};
  // Even the latest representable real deadline outranks "no deadline":
  // deadline-free batch work fills leftover capacity only.
  EXPECT_TRUE(schedules_before(urgent, batch, SchedPolicy::kDeadline));
  // Two deadline-free jobs degrade to fifo.
  const JobView batch2{3, 0, 0};
  EXPECT_TRUE(schedules_before(batch, batch2, SchedPolicy::kDeadline));
}

// --- config validation ------------------------------------------------------

TEST(PoolConfigDeathTest, RejectsZeroWorkers) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(PoolRuntime({.workers = 0, .batch = 4}),
               "pool needs at least one worker");
}

TEST(PoolConfigDeathTest, RejectsZeroBatch) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(PoolRuntime({.workers = 2, .batch = 0}),
               "pool batch must be at least 1");
}

TEST(PoolConfigDeathTest, RejectsZeroShards) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(PoolRuntime({.workers = 2, .batch = 4, .shards = 0}),
               "shards must be at least 1");
}

TEST(PoolConfigDeathTest, RejectsMismatchedJobShards) {
  // A per-job shard override that disagrees with an explicit pool-level
  // count fails at submit: the home-shard geometry is pool machinery.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  SinglePhase s = make_single_phase(32);
  rt::BodyTable bodies;
  bodies.set(s.p, [](GranuleRange, WorkerId) {});
  EXPECT_DEATH(
      {
        PoolRuntime pool({.workers = 2, .batch = 4, .shards = 2});
        pool.submit(s.prog, bodies, ExecConfig{}, 0, CostModel{}, /*shards=*/3);
      },
      "mismatches the pool's shard configuration");
}

TEST(PoolConfigDeathTest, RejectsJobWithMoreShardsThanGranules) {
  // The per-job executive validates its own geometry: an explicit count
  // beyond the job's largest phase dies in the job constructor.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  SinglePhase s = make_single_phase(8);
  rt::BodyTable bodies;
  bodies.set(s.p, [](GranuleRange, WorkerId) {});
  EXPECT_DEATH(
      {
        PoolRuntime pool({.workers = 2, .batch = 4});
        pool.submit(s.prog, bodies, ExecConfig{}, 0, CostModel{}, /*shards=*/64);
      },
      "more shards than granules");
}

TEST(PoolConfig, JobOverrideAgreesWithAutoPool) {
  // With the pool left at kAutoShards, a per-job explicit count is honored.
  SinglePhase s = make_single_phase(32);
  std::atomic<std::uint64_t> n{0};
  rt::BodyTable bodies;
  bodies.set(s.p, [&](GranuleRange r, WorkerId) {
    n.fetch_add(r.size(), std::memory_order_relaxed);
  });
  PoolRuntime pool({.workers = 2, .batch = 4});
  JobHandle h = pool.submit(s.prog, bodies, ExecConfig{}, 0, CostModel{},
                            /*shards=*/3);
  EXPECT_EQ(h.wait(), JobState::kComplete);
  pool.shutdown();
  EXPECT_EQ(h.stats().shards, 3u);
  EXPECT_EQ(n.load(), 32u);
}

// --- completion and accounting ----------------------------------------------

TEST(PoolCompletion, ManyConcurrentJobsAllCompleteWithExactAccounting) {
  constexpr int kJobs = 6;
  std::vector<TwoPhase> two(kJobs / 2);
  std::vector<LoopProg> loops(kJobs / 2);
  std::vector<rt::BodyTable> bodies;
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> counts;
  std::vector<std::uint64_t> expected;
  bodies.reserve(kJobs);

  for (int i = 0; i < kJobs / 2; ++i) {
    two[i] = make_two_phase_identity(128);
    counts.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
    const PhaseId ph[] = {two[i].a, two[i].b};
    bodies.push_back(counting_bodies(ph, *counts.back()));
    expected.push_back(2u * 128u);
  }
  for (int i = 0; i < kJobs / 2; ++i) {
    loops[i] = make_loop(64, 4);
    counts.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
    bodies.push_back(counting_bodies(loops[i].phases, *counts.back()));
    expected.push_back(4u * 3u * 64u);
  }

  std::vector<JobHandle> handles;
  {
    PoolRuntime pool({.workers = 4, .batch = 4, .policy = SchedPolicy::kFairShare});
    ExecConfig cfg;
    cfg.grain = 8;
    cfg.early_serial = true;
    for (int i = 0; i < kJobs / 2; ++i)
      handles.push_back(pool.submit(two[i].prog, bodies[i], cfg));
    for (int i = 0; i < kJobs / 2; ++i)
      handles.push_back(
          pool.submit(loops[i].prog, bodies[kJobs / 2 + i], cfg));

    for (auto& h : handles) EXPECT_EQ(h.wait(), JobState::kComplete);
    pool.shutdown();

    const PoolStats ps = pool.stats();
    EXPECT_EQ(ps.jobs_submitted, static_cast<std::uint64_t>(kJobs));
    EXPECT_EQ(ps.jobs_completed, static_cast<std::uint64_t>(kJobs));
    EXPECT_EQ(ps.jobs_cancelled, 0u);

    // Per-job stats sum exactly to the (independently accumulated) pool
    // totals, and match the program-derived expectations.
    std::uint64_t sum_granules = 0, sum_tasks = 0;
    std::chrono::nanoseconds sum_busy{0};
    for (int i = 0; i < kJobs; ++i) {
      const JobStats js = handles[i].stats();
      EXPECT_EQ(js.granules, expected[i]) << "job " << i;
      EXPECT_EQ(counts[i]->load(), expected[i]) << "job " << i;
      EXPECT_GT(js.exec_lock_acquisitions, 0u);
      sum_granules += js.granules;
      sum_tasks += js.tasks;
      sum_busy += js.busy;
    }
    EXPECT_EQ(sum_granules, ps.granules_executed);
    EXPECT_EQ(sum_tasks, ps.tasks_executed);
    std::chrono::nanoseconds pool_busy{0};
    for (auto b : ps.worker_busy) pool_busy += b;
    EXPECT_EQ(sum_busy, pool_busy);
    EXPECT_EQ(ps.worker_wall.size(), 4u);
    for (auto w : ps.worker_wall) EXPECT_GT(w.count(), 0);
    EXPECT_GT(ps.utilization(), 0.0);
    EXPECT_LE(ps.utilization(), 1.0 + 1e-9);
  }
}

// --- scheduling order on a single worker (deterministic) --------------------

/// Submit a gate job that pins the only worker, queue three single-phase
/// jobs, release the gate, and observe the rotation order by recording body
/// executions.
std::vector<int> run_three_jobs_under(SchedPolicy policy) {
  SinglePhase gate_prog = make_single_phase(1);
  SinglePhase jobs_prog[3] = {make_single_phase(4), make_single_phase(4),
                              make_single_phase(4)};
  std::atomic<bool> gate{false};
  rt::BodyTable gate_bodies;
  gate_bodies.set(gate_prog.p, [&gate](GranuleRange, WorkerId) {
    while (!gate.load(std::memory_order_acquire)) std::this_thread::yield();
  });

  std::mutex order_mu;
  std::vector<int> order;
  rt::BodyTable tag_bodies[3];
  for (int i = 0; i < 3; ++i)
    tag_bodies[i].set(jobs_prog[i].p, [i, &order_mu, &order](GranuleRange, WorkerId) {
      std::scoped_lock lock(order_mu);
      order.push_back(i);
    });

  PoolRuntime pool({.workers = 1, .batch = 4, .policy = policy});
  ExecConfig cfg;
  JobHandle blocker = pool.submit(gate_prog.prog, gate_bodies, cfg);
  // Priorities: job0 low, job1 high, job2 mid — submission order 0,1,2.
  const int prio[3] = {1, 9, 5};
  JobHandle handles[3];
  for (int i = 0; i < 3; ++i)
    handles[i] = pool.submit(jobs_prog[i].prog, tag_bodies[i], cfg, prio[i]);

  gate.store(true, std::memory_order_release);
  EXPECT_EQ(blocker.wait(), JobState::kComplete);
  for (auto& h : handles) EXPECT_EQ(h.wait(), JobState::kComplete);
  pool.shutdown();
  return order;
}

TEST(PoolScheduling, PriorityPolicyOrdersRotationsByPriority) {
  const std::vector<int> order = run_three_jobs_under(SchedPolicy::kPriority);
  ASSERT_EQ(order.size(), 12u);  // 3 jobs x 4 granules, grain 1
  const std::vector<int> want = {1, 1, 1, 1, 2, 2, 2, 2, 0, 0, 0, 0};
  EXPECT_EQ(order, want);
}

TEST(PoolScheduling, FifoPolicyOrdersRotationsBySubmission) {
  const std::vector<int> order = run_three_jobs_under(SchedPolicy::kFifo);
  ASSERT_EQ(order.size(), 12u);
  const std::vector<int> want = {0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2};
  EXPECT_EQ(order, want);
}

// --- fair share balance ------------------------------------------------------

/// Deterministic rotation scenario on two workers, batch = grain = 1.
///
/// Job L pins worker 1 (its single granule blocks on a gate). Job M's first
/// two granules execute on worker 2, its third blocks in-body on a gate
/// while its fourth still sits in the waiting queue — a runnable job with
/// granule history. Job N is then submitted fresh (zero granules). Releasing
/// L's gate sends worker 1 rotating with exactly two candidates:
///   M (runnable, 2 granules executed)  vs  N (queued, 0 granules).
/// kFairShare must adopt N first; kFifo must adopt M (lower id) first.
/// Returns the recorded body order of M's fourth granule ("M") and N ("N").
std::vector<char> run_fair_share_scenario(SchedPolicy policy) {
  SinglePhase l_prog = make_single_phase(1);
  SinglePhase m_prog = make_single_phase(4);
  SinglePhase n_prog = make_single_phase(1);

  std::atomic<bool> gate_l{false}, gate_m{false};
  std::atomic<bool> l_started{false}, m_blocked{false};
  std::mutex order_mu;
  std::vector<char> order;

  rt::BodyTable l_bodies;
  l_bodies.set(l_prog.p, [&](GranuleRange, WorkerId) {
    l_started.store(true, std::memory_order_release);
    while (!gate_l.load(std::memory_order_acquire)) std::this_thread::yield();
  });
  rt::BodyTable m_bodies;
  m_bodies.set(m_prog.p, [&](GranuleRange r, WorkerId) {
    if (r.lo == 2) {  // third granule: block with the fourth still queued
      m_blocked.store(true, std::memory_order_release);
      while (!gate_m.load(std::memory_order_acquire)) std::this_thread::yield();
    } else if (r.lo == 3) {
      std::scoped_lock lock(order_mu);
      order.push_back('M');
    }
  });
  rt::BodyTable n_bodies;
  n_bodies.set(n_prog.p, [&](GranuleRange, WorkerId) {
    std::scoped_lock lock(order_mu);
    order.push_back('N');
  });

  PoolRuntime pool({.workers = 2, .batch = 1, .policy = policy});
  ExecConfig cfg;  // grain = 1: one granule per assignment
  JobHandle l = pool.submit(l_prog.prog, l_bodies, cfg);
  while (!l_started.load(std::memory_order_acquire)) std::this_thread::yield();
  JobHandle m = pool.submit(m_prog.prog, m_bodies, cfg);
  while (!m_blocked.load(std::memory_order_acquire)) std::this_thread::yield();
  JobHandle n = pool.submit(n_prog.prog, n_bodies, cfg);
  gate_l.store(true, std::memory_order_release);

  // Worker 1 finishes L, then rotates through N and M's fourth granule (in
  // the policy's order); unblock M's third granule once both are recorded.
  EXPECT_EQ(l.wait(), JobState::kComplete);
  EXPECT_EQ(n.wait(), JobState::kComplete);
  while (true) {
    {
      std::scoped_lock lock(order_mu);
      if (order.size() == 2) break;
    }
    std::this_thread::yield();
  }
  gate_m.store(true, std::memory_order_release);
  EXPECT_EQ(m.wait(), JobState::kComplete);
  pool.shutdown();

  EXPECT_GT(pool.stats().rotations, 0u);
  EXPECT_EQ(m.stats().granules, 4u);
  return order;
}

TEST(PoolScheduling, FairSharePrefersLeastServedJobAtRotation) {
  const std::vector<char> order = run_fair_share_scenario(SchedPolicy::kFairShare);
  EXPECT_EQ(order, (std::vector<char>{'N', 'M'}));
}

TEST(PoolScheduling, FifoPrefersEarliestSubmittedJobAtRotation) {
  const std::vector<char> order = run_fair_share_scenario(SchedPolicy::kFifo);
  EXPECT_EQ(order, (std::vector<char>{'M', 'N'}));
}

// --- cancellation ------------------------------------------------------------

TEST(PoolCancel, CancelBeforeOpenWinsOnceAndVictimNeverRuns) {
  SinglePhase gate_prog = make_single_phase(1);
  SinglePhase victim_prog = make_single_phase(8);
  std::atomic<bool> gate{false};
  std::atomic<bool> victim_ran{false};

  rt::BodyTable gate_bodies;
  gate_bodies.set(gate_prog.p, [&gate](GranuleRange, WorkerId) {
    while (!gate.load(std::memory_order_acquire)) std::this_thread::yield();
  });
  rt::BodyTable victim_bodies;
  victim_bodies.set(victim_prog.p, [&victim_ran](GranuleRange, WorkerId) {
    victim_ran.store(true, std::memory_order_relaxed);
  });

  PoolRuntime pool({.workers = 1, .batch = 4});
  ExecConfig cfg;
  JobHandle blocker = pool.submit(gate_prog.prog, gate_bodies, cfg);
  JobHandle victim = pool.submit(victim_prog.prog, victim_bodies, cfg);

  EXPECT_EQ(victim.state(), JobState::kQueued);
  EXPECT_TRUE(victim.cancel());
  EXPECT_FALSE(victim.cancel());  // second cancel loses
  EXPECT_EQ(victim.state(), JobState::kCancelled);
  EXPECT_EQ(victim.wait(), JobState::kCancelled);

  gate.store(true, std::memory_order_release);
  EXPECT_EQ(blocker.wait(), JobState::kComplete);
  EXPECT_FALSE(blocker.cancel());  // completed jobs cannot be cancelled
  pool.shutdown();

  EXPECT_FALSE(victim_ran.load());
  const JobStats vs = victim.stats();
  EXPECT_EQ(vs.granules, 0u);
  EXPECT_EQ(vs.queued.count(), 0);
  const PoolStats ps = pool.stats();
  EXPECT_EQ(ps.jobs_cancelled, 1u);
  EXPECT_EQ(ps.jobs_completed, 1u);
  EXPECT_EQ(ps.granules_executed, 1u);  // the blocker's single granule
}

/// True mid-run cancellation: every body execution parks on a gate, so the
/// job is provably mid-run (opened, granules in flight, most of the phase
/// still in the executive) when cancel() fires. The cooperative stop must
/// recall the undistributed work — the job finalizes kCancelled with a
/// strictly partial granule count — and the winning cancel is exclusive.
void run_mid_run_cancel(bool lockfree) {
  constexpr GranuleId kN = 64;
  SinglePhase s = make_single_phase(kN);
  std::atomic<bool> gate{false};
  std::atomic<std::uint64_t> executed{0};
  rt::BodyTable bodies;
  bodies.set(s.p, [&](GranuleRange r, WorkerId) {
    while (!gate.load(std::memory_order_acquire)) std::this_thread::yield();
    executed.fetch_add(r.size(), std::memory_order_relaxed);
  });

  PoolRuntime pool({.workers = 2, .batch = 4, .lockfree = lockfree});
  ExecConfig cfg;
  cfg.grain = 1;  // one granule per assignment: fine-grained recall coverage
  JobHandle h = pool.submit(s.prog, bodies, cfg);

  // Both workers are now (or will shortly be) parked inside bodies with
  // granules resident in their local queues and the bulk still sharded in
  // the executive.
  while (h.state() != JobState::kRunning) std::this_thread::yield();
  EXPECT_TRUE(h.cancel());
  EXPECT_FALSE(h.cancel());  // the mid-run cancel is won exactly once
  EXPECT_FALSE(h.done());    // still draining: terminal comes from a worker

  gate.store(true, std::memory_order_release);
  EXPECT_EQ(h.wait(), JobState::kCancelled);
  pool.shutdown();

  const JobStats js = h.stats();
  // In-flight granules drained (each exactly once, none re-issued), but the
  // recalled remainder never ran: strictly partial. With 2 workers x (2x4)
  // local-queue slots + in-flight singles, the ceiling is far below kN.
  EXPECT_EQ(js.granules, executed.load());
  EXPECT_LT(js.granules, kN);
  EXPECT_FALSE(js.deadline_missed);
  const PoolStats ps = pool.stats();
  EXPECT_EQ(ps.jobs_cancelled, 1u);
  EXPECT_EQ(ps.jobs_completed, 0u);
  EXPECT_EQ(ps.granules_executed, js.granules);
}

TEST(PoolCancel, MidRunCancelDrainsAndFinalizesCancelledLockfree) {
  run_mid_run_cancel(/*lockfree=*/true);
}

TEST(PoolCancel, MidRunCancelDrainsAndFinalizesCancelledMutexEngine) {
  run_mid_run_cancel(/*lockfree=*/false);
}

// --- terminal-state contract: done() implies stats() are final ---------------

TEST(PoolTerminal, DoneImpliesStatsFinalSpinRegression) {
  // Regression for the finalize race: the old protocol CASed the state to
  // kComplete *before* taking the job mutex to write finished_at and
  // peak_local_queue, so a handle spinning on done() could read stats()
  // mid-write — span still growing (finished_at unset falls back to now())
  // and peak_local_queue zero. The fix flips the terminal state LAST, under
  // the job mutex, with release ordering. Spin-poll many small jobs and
  // check the final bookkeeping is visible the instant done() is.
  SinglePhase s = make_single_phase(16);
  std::atomic<std::uint64_t> count{0};
  const PhaseId ph[] = {s.p};
  rt::BodyTable bodies = counting_bodies(ph, count);

  PoolRuntime pool({.workers = 4, .batch = 2});
  ExecConfig cfg;
  cfg.grain = 1;
  for (int iter = 0; iter < 50; ++iter) {
    JobHandle h = pool.submit(s.prog, bodies, cfg);
    while (!h.done()) std::this_thread::yield();
    const JobStats first = h.stats();
    // Every executed granule passed through a local run-queue, so the
    // finalize-path peak write must already be visible.
    EXPECT_EQ(first.granules, 16u) << "iter " << iter;
    EXPECT_GT(first.peak_local_queue, 0u) << "iter " << iter;
    // finished_at is set: span is frozen, not tracking now().
    std::this_thread::sleep_for(std::chrono::milliseconds{1});
    EXPECT_EQ(h.stats().span, first.span) << "iter " << iter;
  }
  pool.shutdown();
}

// --- admission control --------------------------------------------------------

TEST(PoolAdmission, OverBudgetSubmitRejectsWithoutExecuting) {
  SinglePhase gate_prog = make_single_phase(1);
  SinglePhase extra_prog = make_single_phase(8);
  std::atomic<bool> gate{false};
  std::atomic<bool> extra_ran{false};
  rt::BodyTable gate_bodies;
  gate_bodies.set(gate_prog.p, [&gate](GranuleRange, WorkerId) {
    while (!gate.load(std::memory_order_acquire)) std::this_thread::yield();
  });
  rt::BodyTable extra_bodies;
  extra_bodies.set(extra_prog.p, [&extra_ran](GranuleRange, WorkerId) {
    extra_ran.store(true, std::memory_order_relaxed);
  });

  PoolRuntime pool({.workers = 1, .batch = 4, .max_pending = 1});
  ExecConfig cfg;
  JobHandle blocker = pool.submit(gate_prog.prog, gate_bodies, cfg);

  // The blocker holds the whole pending budget: the next submit must come
  // back already terminal, without blocking and without ever executing.
  PoolRuntime::SubmitOptions opts;
  opts.deadline = std::chrono::milliseconds{100};
  JobHandle rejected = pool.submit(extra_prog.prog, extra_bodies, cfg, opts);
  EXPECT_EQ(rejected.state(), JobState::kRejected);
  EXPECT_TRUE(rejected.done());
  EXPECT_EQ(rejected.wait(), JobState::kRejected);  // returns immediately
  EXPECT_FALSE(rejected.cancel());                  // terminal: nothing to do
  const JobStats rs = rejected.stats();
  EXPECT_EQ(rs.granules, 0u);
  EXPECT_TRUE(rs.has_deadline);
  EXPECT_TRUE(rs.deadline_missed);  // a rejected deadline job is a miss

  gate.store(true, std::memory_order_release);
  EXPECT_EQ(blocker.wait(), JobState::kComplete);
  // wait() observes the terminal flip (job mutex), but the job leaves the
  // pending set slightly later, under the pool mutex — in the same critical
  // section that bumps jobs_completed. Spin on the counter so the budget is
  // provably free before the re-admission submit.
  while (pool.stats().jobs_completed < 1) std::this_thread::yield();
  // The budget freed up: the same program is admitted now.
  JobHandle admitted = pool.submit(extra_prog.prog, extra_bodies, cfg);
  EXPECT_EQ(admitted.wait(), JobState::kComplete);
  pool.shutdown();

  EXPECT_TRUE(extra_ran.load());  // from the admitted run only
  const PoolStats ps = pool.stats();
  EXPECT_EQ(ps.jobs_submitted, 3u);  // rejected submissions still count
  EXPECT_EQ(ps.jobs_completed, 2u);
  EXPECT_EQ(ps.jobs_rejected, 1u);
  EXPECT_EQ(ps.jobs_deadline_missed, 1u);
  EXPECT_EQ(ps.jobs_deadline_met, 0u);
}

// --- deadline accounting ------------------------------------------------------

TEST(PoolDeadline, MetAndMissedDeadlinesAccountedAtFinalize) {
  SinglePhase a_prog = make_single_phase(8);
  SinglePhase b_prog = make_single_phase(8);
  std::atomic<std::uint64_t> count{0};
  const PhaseId pa[] = {a_prog.p};
  const PhaseId pb[] = {b_prog.p};
  rt::BodyTable a_bodies = counting_bodies(pa, count);
  rt::BodyTable b_bodies = counting_bodies(pb, count);

  PoolRuntime pool({.workers = 2, .batch = 4,
                    .policy = SchedPolicy::kDeadline});
  ExecConfig cfg;
  PoolRuntime::SubmitOptions generous;
  generous.deadline = std::chrono::seconds{30};
  PoolRuntime::SubmitOptions unmeetable;
  unmeetable.deadline = std::chrono::nanoseconds{1};
  JobHandle met = pool.submit(a_prog.prog, a_bodies, cfg, generous);
  JobHandle missed = pool.submit(b_prog.prog, b_bodies, cfg, unmeetable);
  EXPECT_EQ(met.wait(), JobState::kComplete);
  EXPECT_EQ(missed.wait(), JobState::kComplete);
  pool.shutdown();

  const JobStats ms = met.stats();
  EXPECT_TRUE(ms.has_deadline);
  EXPECT_FALSE(ms.deadline_missed);
  EXPECT_GT(ms.deadline_slack.count(), 0);
  const JobStats xs = missed.stats();
  EXPECT_TRUE(xs.has_deadline);
  EXPECT_TRUE(xs.deadline_missed);
  EXPECT_LT(xs.deadline_slack.count(), 0);
  const PoolStats ps = pool.stats();
  EXPECT_EQ(ps.jobs_deadline_met, 1u);
  EXPECT_EQ(ps.jobs_deadline_missed, 1u);
}

TEST(PoolDeadline, EdfOrdersRotationsByDeadline) {
  // Same single-worker gate scenario as the policy tests above, but ordered
  // by deadline: submission order 0,1,2 with deadlines mid, late, early
  // must execute 2, 0, 1.
  SinglePhase gate_prog = make_single_phase(1);
  SinglePhase jobs_prog[3] = {make_single_phase(4), make_single_phase(4),
                              make_single_phase(4)};
  std::atomic<bool> gate{false};
  rt::BodyTable gate_bodies;
  gate_bodies.set(gate_prog.p, [&gate](GranuleRange, WorkerId) {
    while (!gate.load(std::memory_order_acquire)) std::this_thread::yield();
  });

  std::mutex order_mu;
  std::vector<int> order;
  rt::BodyTable tag_bodies[3];
  for (int i = 0; i < 3; ++i)
    tag_bodies[i].set(jobs_prog[i].p,
                      [i, &order_mu, &order](GranuleRange, WorkerId) {
                        std::scoped_lock lock(order_mu);
                        order.push_back(i);
                      });

  PoolRuntime pool({.workers = 1, .batch = 4,
                    .policy = SchedPolicy::kDeadline});
  ExecConfig cfg;
  JobHandle blocker = pool.submit(gate_prog.prog, gate_bodies, cfg);
  const std::chrono::seconds deadlines[3] = {std::chrono::seconds{200},
                                             std::chrono::seconds{300},
                                             std::chrono::seconds{100}};
  JobHandle handles[3];
  for (int i = 0; i < 3; ++i) {
    PoolRuntime::SubmitOptions opts;
    opts.deadline = deadlines[i];
    handles[i] = pool.submit(jobs_prog[i].prog, tag_bodies[i], cfg, opts);
  }

  gate.store(true, std::memory_order_release);
  EXPECT_EQ(blocker.wait(), JobState::kComplete);
  for (auto& h : handles) EXPECT_EQ(h.wait(), JobState::kComplete);
  pool.shutdown();

  ASSERT_EQ(order.size(), 12u);
  const std::vector<int> want = {2, 2, 2, 2, 0, 0, 0, 0, 1, 1, 1, 1};
  EXPECT_EQ(order, want);
}

// --- timed waits --------------------------------------------------------------

TEST(PoolHandles, WaitForTimesOutOnRunningJobAndReturnsTerminalAfter) {
  SinglePhase s = make_single_phase(1);
  std::atomic<bool> gate{false};
  rt::BodyTable bodies;
  bodies.set(s.p, [&gate](GranuleRange, WorkerId) {
    while (!gate.load(std::memory_order_acquire)) std::this_thread::yield();
  });

  PoolRuntime pool({.workers = 1, .batch = 4});
  ExecConfig cfg;
  JobHandle h = pool.submit(s.prog, bodies, cfg);
  // Gated body: the deadline passes with the job still non-terminal.
  const JobState timed_out = h.wait_for(std::chrono::milliseconds{5});
  EXPECT_FALSE(is_terminal(timed_out));
  EXPECT_FALSE(h.done());

  gate.store(true, std::memory_order_release);
  EXPECT_EQ(h.wait(), JobState::kComplete);
  // On an already-terminal job every timed wait returns immediately.
  EXPECT_EQ(h.wait_for(std::chrono::nanoseconds{0}), JobState::kComplete);
  EXPECT_EQ(h.wait_until(std::chrono::steady_clock::now()),
            JobState::kComplete);
  pool.shutdown();
}

// --- handle lifetime ----------------------------------------------------------

TEST(PoolHandles, HandlesOutliveThePool) {
  // Regression for the JobHandle use-after-free: cancel() used to call
  // through a raw PoolRuntime*, so touching a handle after the pool's
  // destruction dereferenced freed memory. Handles now share-own the job
  // and reach the pool weakly: after shutdown they still answer
  // state()/stats()/wait(), and cancel() degrades to false.
  SinglePhase s = make_single_phase(16);
  std::atomic<std::uint64_t> count{0};
  const PhaseId ph[] = {s.p};
  rt::BodyTable bodies = counting_bodies(ph, count);

  JobHandle survivor;
  {
    PoolRuntime pool({.workers = 2, .batch = 4});
    survivor = pool.submit(s.prog, bodies, ExecConfig{});
    EXPECT_EQ(survivor.wait(), JobState::kComplete);
  }  // pool destroyed; the handle remains
  EXPECT_TRUE(survivor.valid());
  EXPECT_TRUE(survivor.done());
  EXPECT_EQ(survivor.state(), JobState::kComplete);
  EXPECT_EQ(survivor.wait(), JobState::kComplete);
  EXPECT_EQ(survivor.stats().granules, 16u);
  EXPECT_FALSE(survivor.cancel());  // terminal AND the pool is gone
}

// --- enablement correctness through the pool ---------------------------------

TEST(PoolHappensBefore, IdentityOrderHoldsForPooledJob) {
  const GranuleId n = 256;
  TwoPhase s = make_two_phase_identity(n);
  rt::HappensBeforeRecorder rec(2, n);
  rt::BodyTable bodies;
  bodies.set(s.a, [&rec](GranuleRange r, WorkerId) {
    for (GranuleId g = r.lo; g < r.hi; ++g) {
      rec.on_start(0, g);
      rec.on_finish(0, g);
    }
  });
  bodies.set(s.b, [&rec](GranuleRange r, WorkerId) {
    for (GranuleId g = r.lo; g < r.hi; ++g) {
      rec.on_start(1, g);
      rec.on_finish(1, g);
    }
  });

  PoolRuntime pool({.workers = 4, .batch = 4});
  ExecConfig cfg;
  cfg.grain = 8;
  JobHandle h = pool.submit(s.prog, bodies, cfg);
  EXPECT_EQ(h.wait(), JobState::kComplete);
  pool.shutdown();

  EXPECT_EQ(h.stats().granules, 2u * n);
  for (GranuleId g = 0; g < n; ++g) {
    ASSERT_TRUE(rec.executed(0, g));
    ASSERT_TRUE(rec.executed(1, g));
    EXPECT_LT(rec.finish_ticket(0, g), rec.start_ticket(1, g))
        << "identity enablement violated at granule " << g;
  }
}

// --- handle ergonomics -------------------------------------------------------

TEST(PoolHandles, PollAndQueuedTimeTracking) {
  SinglePhase s = make_single_phase(16);
  std::atomic<std::uint64_t> count{0};
  const PhaseId ph[] = {s.p};
  rt::BodyTable bodies = counting_bodies(ph, count);

  PoolRuntime pool({.workers = 2, .batch = 4});
  ExecConfig cfg;
  JobHandle h = pool.submit(s.prog, bodies, cfg);
  EXPECT_TRUE(h.valid());
  EXPECT_EQ(h.wait(), JobState::kComplete);
  EXPECT_TRUE(h.done());
  const JobStats js = h.stats();
  EXPECT_EQ(js.granules, 16u);
  EXPECT_GE(js.span.count(), js.busy.count());
  EXPECT_GE(js.span, js.queued);
  pool.shutdown();
}

}  // namespace
}  // namespace pax::pool
