// Seeded randomized stress harness: one seed generates a random phase
// program plus driver configs (workers, batch, shards, steal, cancel
// points), and the harness runs the *same* program through the threaded
// runtime, the pool runtime and the simulator, cross-checking the scheduler
// stack's invariants (see tests/testing_util.hpp — exactly-once retirement,
// stats-sum consistency, shard-census integrity, sim determinism).
//
// Seed count knobs:
//   PAX_STRESS_SEEDS=<n>  total seeds (default 200; the TSAN CI job runs a
//                         reduced count, the nightly sweep a larger one)
//   PAX_STRESS_SEED=<s>   replay exactly one seed (printed by any failure)
//
// The seed space is split across eight gtest cases, each registered as its
// own CTest entry (see CMakeLists.txt), so `ctest -R stress -j` genuinely
// parallelizes the sweep.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>

#include "testing_util.hpp"

namespace pax {
namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}

/// Base offset so seed values differ from other suites' magic constants.
constexpr std::uint64_t kSeedBase = 1000;

std::uint64_t total_seeds() { return env_u64("PAX_STRESS_SEEDS", 200); }

/// Run one of the eight seed-space shards (ctest -j runs them in parallel).
void run_shard(std::uint64_t shard, std::uint64_t n_shards) {
  if (const char* replay = std::getenv("PAX_STRESS_SEED");
      replay != nullptr && *replay != '\0') {
    // Replay mode: the named seed runs in shard 0 only.
    if (shard == 0) pax::testing::run_seed(std::strtoull(replay, nullptr, 10));
    return;
  }
  const std::uint64_t n = total_seeds();
  const std::uint64_t lo = shard * n / n_shards;
  const std::uint64_t hi = (shard + 1) * n / n_shards;
  for (std::uint64_t s = lo; s < hi; ++s) {
    pax::testing::run_seed(kSeedBase + s);
    if (::testing::Test::HasFatalFailure()) return;  // seed already traced
  }
}

/// Serve-mode shard: the same seed space, but driven through the pool's
/// serving surface (EDF deadlines, bounded admission, random pre-open and
/// mid-run cancels — see testing_util.hpp run_serve_checked). Split into
/// four cases for ctest -j, like the three-runtime sweep.
void run_serve_shard(std::uint64_t shard, std::uint64_t n_shards) {
  if (const char* replay = std::getenv("PAX_STRESS_SEED");
      replay != nullptr && *replay != '\0') {
    if (shard == 0)
      pax::testing::run_serve_checked(pax::testing::generate_program(
          std::strtoull(replay, nullptr, 10)));
    return;
  }
  const std::uint64_t n = total_seeds();
  const std::uint64_t lo = shard * n / n_shards;
  const std::uint64_t hi = (shard + 1) * n / n_shards;
  for (std::uint64_t s = lo; s < hi; ++s) {
    SCOPED_TRACE("serve seed=" + std::to_string(kSeedBase + s) +
                 " (replay: PAX_STRESS_SEED=" + std::to_string(kSeedBase + s) +
                 " ctest -R stress_serve)");
    pax::testing::run_serve_checked(
        pax::testing::generate_program(kSeedBase + s));
    if (::testing::Test::HasFatalFailure()) return;  // seed already traced
  }
}

TEST(Stress, ThreeRuntimeSweepShard0) { run_shard(0, 8); }
TEST(Stress, ThreeRuntimeSweepShard1) { run_shard(1, 8); }
TEST(Stress, ThreeRuntimeSweepShard2) { run_shard(2, 8); }
TEST(Stress, ThreeRuntimeSweepShard3) { run_shard(3, 8); }
TEST(Stress, ThreeRuntimeSweepShard4) { run_shard(4, 8); }
TEST(Stress, ThreeRuntimeSweepShard5) { run_shard(5, 8); }
TEST(Stress, ThreeRuntimeSweepShard6) { run_shard(6, 8); }
TEST(Stress, ThreeRuntimeSweepShard7) { run_shard(7, 8); }

/// Fault-dimension shard: the same seed space with seeded transient faults
/// injected into the bodies (testing_util.hpp run_fault_checked) — the
/// exception barrier, retry machinery and fault accounting must preserve
/// exactly-once retirement and the stats-sum identities on both runtimes
/// and both shard engines.
void run_fault_shard(std::uint64_t shard, std::uint64_t n_shards) {
  if (const char* replay = std::getenv("PAX_STRESS_SEED");
      replay != nullptr && *replay != '\0') {
    if (shard == 0)
      pax::testing::run_fault_checked(std::strtoull(replay, nullptr, 10));
    return;
  }
  const std::uint64_t n = total_seeds();
  const std::uint64_t lo = shard * n / n_shards;
  const std::uint64_t hi = (shard + 1) * n / n_shards;
  for (std::uint64_t s = lo; s < hi; ++s) {
    pax::testing::run_fault_checked(kSeedBase + s);
    if (::testing::Test::HasFatalFailure()) return;  // seed already traced
  }
}

TEST(Stress, ServeSweepShard0) { run_serve_shard(0, 4); }
TEST(Stress, ServeSweepShard1) { run_serve_shard(1, 4); }
TEST(Stress, ServeSweepShard2) { run_serve_shard(2, 4); }
TEST(Stress, ServeSweepShard3) { run_serve_shard(3, 4); }

TEST(Stress, FaultSweepShard0) { run_fault_shard(0, 4); }
TEST(Stress, FaultSweepShard1) { run_fault_shard(1, 4); }
TEST(Stress, FaultSweepShard2) { run_fault_shard(2, 4); }
TEST(Stress, FaultSweepShard3) { run_fault_shard(3, 4); }

// A handful of pinned seeds that exercised distinct machinery when the
// harness was introduced (indirect subsets + elevation, deferred splits,
// pool cancels, explicit shard counts); kept stable as named regressions
// independent of the sweep size.
TEST(Stress, PinnedIndirectElevation) { pax::testing::run_seed(7); }
TEST(Stress, PinnedDeferredSplit) { pax::testing::run_seed(23); }
TEST(Stress, PinnedPoolCancel) { pax::testing::run_seed(42); }
TEST(Stress, PinnedExplicitShards) { pax::testing::run_seed(58); }

}  // namespace
}  // namespace pax
