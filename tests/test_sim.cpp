// Simulator tests: workload distributions, trace math, placements,
// determinism, termination, and the machine's accounting identities.
#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "sim/machine.hpp"

namespace pax::sim {
namespace {

PhaseProgram one_phase(GranuleId n) {
  PhaseProgram prog;
  prog.dispatch(prog.define_phase(make_phase("p", n)));
  prog.halt();
  return prog;
}

// --- workload -------------------------------------------------------------------

TEST(Workload, FixedModelIsExact) {
  Workload wl(1);
  PhaseWorkload pw;
  pw.model = DurationModel::kFixed;
  pw.mean = 123;
  wl.set_phase(0, pw);
  for (GranuleId g = 0; g < 32; ++g) EXPECT_EQ(wl.granule_duration(0, g), 123u);
  EXPECT_EQ(wl.task_duration(0, {0, 10}), 1230u);
}

TEST(Workload, DurationsAreScheduleIndependent) {
  // Pure function of (seed, phase, granule): same value on every query.
  Workload wl(77);
  PhaseWorkload pw;
  pw.model = DurationModel::kExponential;
  pw.mean = 100;
  wl.set_phase(3, pw);
  const SimTime first = wl.granule_duration(3, 41);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(wl.granule_duration(3, 41), first);
}

TEST(Workload, SeedsChangeDurations) {
  PhaseWorkload pw;
  pw.model = DurationModel::kUniform;
  pw.mean = 100;
  pw.spread = 50;
  Workload a(1), b(2);
  a.set_phase(0, pw);
  b.set_phase(0, pw);
  int diff = 0;
  for (GranuleId g = 0; g < 64; ++g)
    if (a.granule_duration(0, g) != b.granule_duration(0, g)) ++diff;
  EXPECT_GT(diff, 48);
}

TEST(Workload, UniformStaysInBounds) {
  Workload wl(5);
  PhaseWorkload pw;
  pw.model = DurationModel::kUniform;
  pw.mean = 100;
  pw.spread = 30;
  wl.set_phase(0, pw);
  for (GranuleId g = 0; g < 1000; ++g) {
    const SimTime d = wl.granule_duration(0, g);
    EXPECT_GE(d, 70u);
    EXPECT_LE(d, 130u);
  }
}

TEST(Workload, ExponentialMeanApproximatelyRight) {
  Workload wl(6);
  PhaseWorkload pw;
  pw.model = DurationModel::kExponential;
  pw.mean = 200;
  wl.set_phase(0, pw);
  Accumulator acc;
  for (GranuleId g = 0; g < 20000; ++g)
    acc.add(static_cast<double>(wl.granule_duration(0, g)));
  EXPECT_NEAR(acc.mean(), 200.0, 10.0);
}

TEST(Workload, BimodalHitsBothModes) {
  Workload wl(7);
  PhaseWorkload pw;
  pw.model = DurationModel::kBimodal;
  pw.mean = 100;
  pw.spread = 900;
  pw.bimodal_p = 0.2;
  wl.set_phase(0, pw);
  int longs = 0;
  for (GranuleId g = 0; g < 5000; ++g)
    if (wl.granule_duration(0, g) == 1000u) ++longs;
  EXPECT_NEAR(static_cast<double>(longs) / 5000.0, 0.2, 0.03);
}

TEST(Workload, ConditionalSkipsAtConfiguredRate) {
  Workload wl(8);
  PhaseWorkload pw;
  pw.model = DurationModel::kFixed;
  pw.mean = 500;
  pw.skip_probability = 0.4;
  pw.skip_cost = 2;
  wl.set_phase(0, pw);
  int skipped = 0;
  for (GranuleId g = 0; g < 5000; ++g)
    if (wl.granule_duration(0, g) == 2u) ++skipped;
  EXPECT_NEAR(static_cast<double>(skipped) / 5000.0, 0.4, 0.03);
}

TEST(Workload, ExpectedPhaseWorkMatchesEmpirical) {
  Workload wl(9);
  PhaseWorkload pw;
  pw.model = DurationModel::kBimodal;
  pw.mean = 100;
  pw.spread = 400;
  pw.bimodal_p = 0.1;
  pw.skip_probability = 0.25;
  pw.skip_cost = 1;
  wl.set_phase(0, pw);
  const GranuleId n = 20000;
  double total = 0;
  for (GranuleId g = 0; g < n; ++g)
    total += static_cast<double>(wl.granule_duration(0, g));
  EXPECT_NEAR(total / wl.expected_phase_work(0, n), 1.0, 0.03);
}

// --- trace math -----------------------------------------------------------------

TEST(Trace, UtilizationIdentity) {
  // compute_ticks == P * makespan * utilization by definition.
  PhaseProgram prog = one_phase(64);
  MachineConfig mc;
  mc.workers = 4;
  const auto res = simulate(prog, ExecConfig{}, CostModel{}, Workload(3), mc);
  EXPECT_NEAR(res.utilization() * static_cast<double>(res.makespan) * 4.0,
              static_cast<double>(res.compute_ticks),
              1.0);
}

TEST(Trace, TimelineIntegratesToUtilization) {
  PhaseProgram prog = one_phase(128);
  MachineConfig mc;
  mc.workers = 8;
  const auto res = simulate(prog, ExecConfig{}, CostModel{}, Workload(4), mc);
  const auto tl = res.timeline(50);
  double mean = 0;
  for (double v : tl) mean += v;
  mean /= static_cast<double>(tl.size());
  EXPECT_NEAR(mean, res.utilization(), 0.02);
}

TEST(Trace, WindowUtilizationBounds) {
  PhaseProgram prog = one_phase(64);
  MachineConfig mc;
  mc.workers = 4;
  const auto res = simulate(prog, ExecConfig{}, CostModel{}, Workload(5), mc);
  const double w = res.window_utilization(0, res.makespan);
  EXPECT_GE(w, 0.0);
  EXPECT_LE(w, 1.0);
  EXPECT_NEAR(w, res.utilization(), 1e-9);
}

TEST(Trace, RunRecordsHaveSaneLifecycle) {
  PhaseProgram prog = one_phase(32);
  MachineConfig mc;
  mc.workers = 2;
  const auto res = simulate(prog, ExecConfig{}, CostModel{}, Workload(6), mc);
  ASSERT_EQ(res.runs.size(), 1u);
  const RunRecord& r = res.runs[0];
  EXPECT_LE(r.created, r.first_task);
  EXPECT_LT(r.first_task, r.completed);
  EXPECT_LE(r.completed, res.makespan);
  EXPECT_EQ(res.phase_completion(r.phase), r.completed);
}

// --- machine behaviours ------------------------------------------------------------

TEST(Machine, SingleWorkerSerializesEverything) {
  PhaseProgram prog = one_phase(16);
  Workload wl(7);
  PhaseWorkload pw;
  pw.model = DurationModel::kFixed;
  pw.mean = 100;
  wl.set_phase(0, pw);
  MachineConfig mc;
  mc.workers = 1;
  const auto res = simulate(prog, ExecConfig{}, CostModel::free_of_charge(), wl, mc);
  EXPECT_EQ(res.makespan, 1600u);
  EXPECT_NEAR(res.utilization(), 1.0, 1e-9);
}

TEST(Machine, PerfectDivisionReachesFullUtilization) {
  PhaseProgram prog = one_phase(64);
  Workload wl(8);
  PhaseWorkload pw;
  pw.model = DurationModel::kFixed;
  pw.mean = 50;
  wl.set_phase(0, pw);
  MachineConfig mc;
  mc.workers = 8;
  const auto res = simulate(prog, ExecConfig{}, CostModel::free_of_charge(), wl, mc);
  EXPECT_EQ(res.makespan, 8u * 50u);  // 64 granules / 8 workers
  EXPECT_NEAR(res.utilization(), 1.0, 1e-9);
}

TEST(Machine, LeftoverCreatesRundownTail) {
  // 9 unit tasks on 8 workers: the ninth runs alone.
  PhaseProgram prog = one_phase(9);
  Workload wl(9);
  PhaseWorkload pw;
  pw.model = DurationModel::kFixed;
  pw.mean = 100;
  wl.set_phase(0, pw);
  MachineConfig mc;
  mc.workers = 8;
  const auto res = simulate(prog, ExecConfig{}, CostModel::free_of_charge(), wl, mc);
  EXPECT_EQ(res.makespan, 200u);
  EXPECT_NEAR(res.busy_workers_in(100, 200), 1.0, 1e-9);
}

TEST(Machine, ManagementCostsExtendMakespan) {
  PhaseProgram prog = one_phase(64);
  Workload wl(10);
  MachineConfig mc;
  mc.workers = 4;
  const auto free_run =
      simulate(prog, ExecConfig{}, CostModel::free_of_charge(), wl, mc);
  const auto paid_run = simulate(prog, ExecConfig{}, CostModel{}, wl, mc);
  EXPECT_GT(paid_run.makespan, free_run.makespan);
  EXPECT_GT(paid_run.exec_ticks, 0u);
  EXPECT_EQ(free_run.exec_ticks, 0u);
}

TEST(Machine, DedicatedPlacementBeatsWorkerStealingUnderLoad) {
  // Heavy management at grain 1: off-worker completions should help.
  PhaseProgram prog = one_phase(512);
  Workload wl(11);
  PhaseWorkload pw;
  pw.model = DurationModel::kFixed;
  pw.mean = 60;
  wl.set_phase(0, pw);
  MachineConfig mc;
  mc.workers = 8;
  ExecConfig ws;
  ws.placement = ExecPlacement::kWorkerStealing;
  ExecConfig ded;
  ded.placement = ExecPlacement::kDedicated;
  const auto r_ws = simulate(prog, ws, CostModel{}, wl, mc);
  const auto r_ded = simulate(prog, ded, CostModel{}, wl, mc);
  EXPECT_LT(r_ded.makespan, r_ws.makespan);
}

TEST(Machine, TaskOverheadAccrues) {
  PhaseProgram prog = one_phase(32);
  Workload wl(12);
  PhaseWorkload pw;
  pw.model = DurationModel::kFixed;
  pw.mean = 10;
  wl.set_phase(0, pw);
  MachineConfig a;
  a.workers = 2;
  MachineConfig b = a;
  b.task_overhead = 90;
  const auto ra = simulate(prog, ExecConfig{}, CostModel::free_of_charge(), wl, a);
  const auto rb = simulate(prog, ExecConfig{}, CostModel::free_of_charge(), wl, b);
  EXPECT_EQ(rb.makespan, ra.makespan * 10);  // 10 -> 100 per task
}

TEST(Machine, RequestLatencyTracked) {
  PhaseProgram prog = one_phase(64);
  MachineConfig mc;
  mc.workers = 4;
  const auto res = simulate(prog, ExecConfig{}, CostModel{}, Workload(13), mc);
  EXPECT_GT(res.request_latency.count(), 0u);
  EXPECT_GT(res.request_latency.mean(), 0.0);
}

TEST(Machine, GranuleConservationAcrossPlacements) {
  for (ExecPlacement placement :
       {ExecPlacement::kWorkerStealing, ExecPlacement::kDedicated}) {
    PhaseProgram prog;
    PhaseId a = prog.define_phase(make_phase("a", 100).writes("X"));
    prog.dispatch(a, {EnableClause{"b", MappingKind::kIdentity, {}}});
    prog.dispatch(prog.define_phase(make_phase("b", 100).reads("X")));
    prog.halt();
    ExecConfig cfg;
    cfg.grain = 7;
    cfg.placement = placement;
    MachineConfig mc;
    mc.workers = 6;
    const auto res = simulate(prog, cfg, CostModel{}, Workload(14), mc);
    EXPECT_EQ(res.granules_executed, 200u);
    EXPECT_EQ(res.diagnostics.size(), 0u);
  }
}

TEST(Machine, ManyWorkersFewTasksTerminates) {
  PhaseProgram prog = one_phase(3);
  MachineConfig mc;
  mc.workers = 64;  // far more workers than work
  const auto res = simulate(prog, ExecConfig{}, CostModel{}, Workload(15), mc);
  EXPECT_EQ(res.granules_executed, 3u);
}

TEST(Machine, MaxTimeGuardAccepted) {
  PhaseProgram prog = one_phase(8);
  MachineConfig mc;
  mc.workers = 2;
  mc.max_time = 1'000'000'000;
  const auto res = simulate(prog, ExecConfig{}, CostModel{}, Workload(16), mc);
  EXPECT_LE(res.makespan, mc.max_time);
}

class SimDeterminism
    : public ::testing::TestWithParam<std::tuple<int, int, bool>> {};

TEST_P(SimDeterminism, IdenticalResultsForIdenticalInputs) {
  const auto [workers, grain, overlap] = GetParam();
  PhaseProgram prog;
  PhaseId a = prog.define_phase(make_phase("a", 96).writes("X"));
  prog.dispatch(a, {EnableClause{"b", MappingKind::kIdentity, {}}});
  prog.dispatch(prog.define_phase(make_phase("b", 96).reads("X")));
  prog.halt();
  Workload wl(20);
  PhaseWorkload pw;
  pw.model = DurationModel::kExponential;
  pw.mean = 80;
  wl.set_phase(0, pw);
  wl.set_phase(1, pw);
  ExecConfig cfg;
  cfg.grain = static_cast<GranuleId>(grain);
  cfg.overlap = overlap;
  MachineConfig mc;
  mc.workers = static_cast<std::uint32_t>(workers);
  const auto r1 = simulate(prog, cfg, CostModel{}, wl, mc);
  const auto r2 = simulate(prog, cfg, CostModel{}, wl, mc);
  EXPECT_EQ(r1.makespan, r2.makespan);
  EXPECT_EQ(r1.exec_ticks, r2.exec_ticks);
  EXPECT_EQ(r1.compute_ticks, r2.compute_ticks);
  EXPECT_EQ(r1.tasks_executed, r2.tasks_executed);
}

std::string determinism_name(
    const ::testing::TestParamInfo<std::tuple<int, int, bool>>& info) {
  return "w" + std::to_string(std::get<0>(info.param)) + "_g" +
         std::to_string(std::get<1>(info.param)) +
         (std::get<2>(info.param) ? "_overlap" : "_barrier");
}

INSTANTIATE_TEST_SUITE_P(Sweep, SimDeterminism,
                         ::testing::Combine(::testing::Values(1, 3, 16),
                                            ::testing::Values(1, 8),
                                            ::testing::Values(false, true)),
                         determinism_name);

// --- sharded executive lanes -------------------------------------------------

TEST(MachineShards, RejectsZeroShards) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  PhaseProgram prog = one_phase(8);
  MachineConfig mc;
  mc.shards = 0;
  EXPECT_DEATH(simulate(prog, ExecConfig{}, CostModel{}, Workload(1), mc),
               "shards must be at least 1");
}

TEST(MachineShards, SingleShardTracesAreBitForBitStable) {
  // Frozen metrics captured from the PR 3 build (pre-shard machine): the
  // shards = 1 lane machinery must reproduce the old serial-executive event
  // order exactly, so these five deterministic runs pin
  // {makespan, exec_ticks, compute_ticks, tasks, steals} forever. If a
  // change here is *intentional*, re-derive the goldens and say why in the
  // commit.
  struct Golden {
    std::uint64_t makespan, exec_ticks, compute_ticks, tasks, steals;
  };
  const Golden goldens[] = {
      {13803ull, 2593ull, 105535ull, 256ull, 0ull},
      {13551ull, 2451ull, 103721ull, 256ull, 26ull},
      {3614ull, 2597ull, 50988ull, 220ull, 0ull},
      {13140ull, 2531ull, 51349ull, 320ull, 53ull},
      {21139ull, 1370ull, 61159ull, 150ull, 0ull},
  };
  struct Cfg {
    GranuleId n;
    MappingKind kind;
    bool steal;
    ExecPlacement pl;
    std::uint32_t workers;
  };
  const Cfg cfgs[] = {
      {512, MappingKind::kIdentity, false, ExecPlacement::kWorkerStealing, 8},
      {512, MappingKind::kIdentity, true, ExecPlacement::kWorkerStealing, 8},
      {256, MappingKind::kReverseIndirect, false, ExecPlacement::kDedicated, 16},
      {256, MappingKind::kForwardIndirect, true, ExecPlacement::kDedicated, 4},
      {300, MappingKind::kUniversal, false, ExecPlacement::kWorkerStealing, 3},
  };
  for (std::size_t i = 0; i < std::size(cfgs); ++i) {
    SCOPED_TRACE("golden config " + std::to_string(i));
    const Cfg& c = cfgs[i];
    PhaseProgram prog;
    prog.define_phase(make_phase("a", c.n).writes("X"));
    prog.define_phase(make_phase("b", c.n).reads("X").writes("Y"));
    EnableClause cl;
    cl.successor_name = "b";
    cl.kind = c.kind;
    if (c.kind == MappingKind::kReverseIndirect)
      cl.indirection.requires_of = [n = c.n](GranuleId r,
                                             std::vector<GranuleId>& out) {
        out.insert(out.end(), {r % n, (r * 7 + 3) % n});
      };
    if (c.kind == MappingKind::kForwardIndirect)
      cl.indirection.enables_of = [n = c.n](GranuleId p,
                                            std::vector<GranuleId>& out) {
        out.push_back((p * 5 + 1) % n);
      };
    prog.dispatch(0, {cl});
    prog.dispatch(1);
    prog.halt();
    ExecConfig ec;
    ec.grain = 4;
    ec.placement = c.pl;
    Workload wl(41 + static_cast<std::uint64_t>(i));
    PhaseWorkload pw;
    pw.model = DurationModel::kUniform;
    pw.mean = 100;
    pw.spread = 60;
    wl.set_phase(0, pw);
    wl.set_phase(1, pw);
    MachineConfig mc;
    mc.workers = c.workers;
    mc.record_intervals = false;
    mc.steal = c.steal;
    const SimResult r = simulate(prog, ec, CostModel{}, wl, mc);
    EXPECT_EQ(r.makespan, goldens[i].makespan);
    EXPECT_EQ(r.exec_ticks, goldens[i].exec_ticks);
    EXPECT_EQ(r.compute_ticks, goldens[i].compute_ticks);
    EXPECT_EQ(r.tasks_executed, goldens[i].tasks);
    EXPECT_EQ(r.steals, goldens[i].steals);
  }
}

TEST(MachineShards, LanesRelieveManagementSerializationDeterministically) {
  // Management-bound workload (grain 1): more lanes must strictly shorten
  // the makespan, per-lane billing must sum to the total, and each
  // configuration stays deterministic.
  PhaseProgram prog = one_phase(512);
  ExecConfig cfg;
  cfg.grain = 1;
  Workload wl(9);
  PhaseWorkload pw;
  pw.model = DurationModel::kFixed;
  pw.mean = 100;
  wl.set_phase(0, pw);
  SimTime serial = 0;
  SimTime last = kTimeNever;
  for (std::uint32_t shards : {1u, 2u, 4u}) {
    MachineConfig mc;
    mc.workers = 16;
    mc.record_intervals = false;
    mc.shards = shards;
    const SimResult a = simulate(prog, cfg, CostModel{}, wl, mc);
    const SimResult b = simulate(prog, cfg, CostModel{}, wl, mc);
    EXPECT_EQ(a.makespan, b.makespan);
    ASSERT_EQ(a.shard_exec_ticks.size(), shards);
    std::uint64_t lanes = 0;
    for (std::uint64_t t : a.shard_exec_ticks) lanes += t;
    EXPECT_EQ(lanes, a.exec_ticks);
    EXPECT_EQ(a.granules_executed, 512u);
    // Monotone, with a strict win once the first extra lane exists (beyond
    // that the bottleneck may shift to compute, so only non-increase holds).
    EXPECT_LE(a.makespan, last);
    if (shards == 1) serial = a.makespan;
    last = a.makespan;
  }
  EXPECT_LT(last, serial) << "extra lanes never relieved the serialization";
}

}  // namespace
}  // namespace pax::sim
