// Threaded runtime tests: happens-before verification of enablement on real
// threads, overlap evidence, strict baseline, and stress.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>

#include "runtime/happens_before.hpp"
#include "runtime/threaded_runtime.hpp"

namespace pax::rt {
namespace {

struct TwoPhaseSetup {
  PhaseProgram prog;
  PhaseId a = kNoPhase;
  PhaseId b = kNoPhase;
};

TwoPhaseSetup make_two_phase(GranuleId n, MappingKind kind,
                             IndirectionSpec indirection = {}) {
  TwoPhaseSetup s;
  s.a = s.prog.define_phase(make_phase("a", n).writes("X"));
  s.b = s.prog.define_phase(make_phase("b", n).reads("X").writes("Y"));
  EnableClause clause{"b", kind, std::move(indirection)};
  s.prog.dispatch(s.a, {clause});
  s.prog.dispatch(s.b);
  s.prog.halt();
  return s;
}

class RtIdentityOrder : public ::testing::TestWithParam<int> {};

TEST_P(RtIdentityOrder, SuccessorGranuleNeverStartsBeforeEnablerFinishes) {
  const auto workers = static_cast<std::uint32_t>(GetParam());
  const GranuleId n = 512;
  TwoPhaseSetup s = make_two_phase(n, MappingKind::kIdentity);
  HappensBeforeRecorder rec(2, n);

  BodyTable bodies;
  bodies.set(s.a, [&](GranuleRange r, WorkerId) {
    for (GranuleId g = r.lo; g < r.hi; ++g) {
      rec.on_start(0, g);
      rec.on_finish(0, g);
    }
  });
  bodies.set(s.b, [&](GranuleRange r, WorkerId) {
    for (GranuleId g = r.lo; g < r.hi; ++g) {
      rec.on_start(1, g);
      rec.on_finish(1, g);
    }
  });

  ExecConfig cfg;
  cfg.grain = 16;
  ThreadedRuntime runtime(s.prog, cfg, CostModel::free_of_charge(), bodies,
                          {workers});
  const RtResult res = runtime.run();
  EXPECT_EQ(res.granules_executed, 2u * n);

  for (GranuleId g = 0; g < n; ++g) {
    ASSERT_TRUE(rec.executed(0, g));
    ASSERT_TRUE(rec.executed(1, g));
    EXPECT_LT(rec.finish_ticket(0, g), rec.start_ticket(1, g))
        << "identity enablement violated at granule " << g;
  }
}

INSTANTIATE_TEST_SUITE_P(Workers, RtIdentityOrder, ::testing::Values(1, 2, 4, 8),
                         [](const auto& info) {
                           return "w" + std::to_string(info.param);
                         });

TEST(RtReverseIndirect, AllRequirementsFinishBeforeSuccessorStarts) {
  const GranuleId n = 256;
  auto requires_list = [n](GranuleId r) {
    return std::vector<GranuleId>{r, (r * 5 + 3) % n, (r * 11 + 7) % n};
  };
  IndirectionSpec ind;
  ind.requires_of = [requires_list](GranuleId r, std::vector<GranuleId>& out) {
    for (GranuleId p : requires_list(r)) out.push_back(p);
  };
  TwoPhaseSetup s = make_two_phase(n, MappingKind::kReverseIndirect, ind);
  HappensBeforeRecorder rec(2, n);
  BodyTable bodies;
  bodies.set(s.a, [&](GranuleRange r, WorkerId) {
    for (GranuleId g = r.lo; g < r.hi; ++g) {
      rec.on_start(0, g);
      rec.on_finish(0, g);
    }
  });
  bodies.set(s.b, [&](GranuleRange r, WorkerId) {
    for (GranuleId g = r.lo; g < r.hi; ++g) {
      rec.on_start(1, g);
      rec.on_finish(1, g);
    }
  });
  ExecConfig cfg;
  cfg.grain = 8;
  ThreadedRuntime runtime(s.prog, cfg, CostModel::free_of_charge(), bodies, {4});
  const RtResult res = runtime.run();
  EXPECT_EQ(res.granules_executed, 2u * n);
  for (GranuleId r = 0; r < n; ++r)
    for (GranuleId need : requires_list(r))
      EXPECT_LT(rec.finish_ticket(0, need), rec.start_ticket(1, r))
          << "successor " << r << " started before requirement " << need;
}

TEST(RtStrictBaseline, NoOverlapMeansStrictPhaseOrder) {
  const GranuleId n = 256;
  TwoPhaseSetup s = make_two_phase(n, MappingKind::kIdentity);
  HappensBeforeRecorder rec(2, n);
  BodyTable bodies;
  bodies.set(s.a, [&](GranuleRange r, WorkerId) {
    for (GranuleId g = r.lo; g < r.hi; ++g) {
      rec.on_start(0, g);
      rec.on_finish(0, g);
    }
  });
  bodies.set(s.b, [&](GranuleRange r, WorkerId) {
    for (GranuleId g = r.lo; g < r.hi; ++g) {
      rec.on_start(1, g);
      rec.on_finish(1, g);
    }
  });
  ExecConfig cfg;
  cfg.grain = 16;
  cfg.overlap = false;
  ThreadedRuntime runtime(s.prog, cfg, CostModel::free_of_charge(), bodies, {4});
  runtime.run();
  EXPECT_TRUE(rec.strict_phase_order(0, 1, n));
}

TEST(RtOverlapEvidence, OverlapActuallyHappensWithManyWorkers) {
  // With overlap on and several workers, at least one successor granule
  // should start before the predecessor fully finishes (probabilistic but
  // over 512 granules effectively certain — the last predecessor granule
  // cannot finish before the first enabled successor granule is available).
  const GranuleId n = 512;
  TwoPhaseSetup s = make_two_phase(n, MappingKind::kIdentity);
  HappensBeforeRecorder rec(2, n);
  std::atomic<int> spin{0};
  BodyTable bodies;
  bodies.set(s.a, [&](GranuleRange r, WorkerId) {
    for (GranuleId g = r.lo; g < r.hi; ++g) {
      rec.on_start(0, g);
      for (int i = 0; i < 2000; ++i) spin.fetch_add(1, std::memory_order_relaxed);
      rec.on_finish(0, g);
    }
  });
  bodies.set(s.b, [&](GranuleRange r, WorkerId) {
    for (GranuleId g = r.lo; g < r.hi; ++g) {
      rec.on_start(1, g);
      rec.on_finish(1, g);
    }
  });
  ExecConfig cfg;
  cfg.grain = 8;
  ThreadedRuntime runtime(s.prog, cfg, CostModel::free_of_charge(), bodies, {4});
  runtime.run();
  EXPECT_TRUE(rec.overlapped(0, 1, n));
}

TEST(RtResultAccounting, UtilizationAndBusyTimesPlausible) {
  const GranuleId n = 128;
  TwoPhaseSetup s = make_two_phase(n, MappingKind::kIdentity);
  std::atomic<std::uint64_t> sink{0};
  BodyTable bodies;
  auto burn = [&](GranuleRange r, WorkerId) {
    std::uint64_t acc = 0;
    for (GranuleId g = r.lo; g < r.hi; ++g)
      for (int i = 0; i < 5000; ++i) acc += static_cast<std::uint64_t>(i) * g;
    sink.fetch_add(acc, std::memory_order_relaxed);
  };
  bodies.set(s.a, burn);
  bodies.set(s.b, burn);
  ExecConfig cfg;
  cfg.grain = 8;
  ThreadedRuntime runtime(s.prog, cfg, CostModel{}, bodies, {2});
  const RtResult res = runtime.run();
  EXPECT_EQ(res.worker_busy.size(), 2u);
  EXPECT_GT(res.utilization(), 0.0);
  EXPECT_LE(res.utilization(), 1.0 + 1e-9);
  EXPECT_GT(res.ledger.count(MgmtOp::kCompletion), 0u);
}

TEST(RtStress, ManySmallPhasesInLoop) {
  // A loop program with three phases cycling 20 times on 4 workers.
  PhaseProgram prog;
  PhaseId a = prog.define_phase(make_phase("a", 64).writes("A64"));
  PhaseId b = prog.define_phase(make_phase("b", 64).reads("A64").writes("B64"));
  PhaseId c = prog.define_phase(make_phase("c", 64).reads("B64").writes("C64"));
  prog.serial("init", [](ProgramEnv& env) { env.set("i", 0); }, 0, false);
  const std::uint32_t top =
      prog.dispatch(a, {EnableClause{"b", MappingKind::kIdentity, {}}});
  prog.dispatch(b, {EnableClause{"c", MappingKind::kIdentity, {}}});
  prog.dispatch(c);
  prog.serial("inc", [](ProgramEnv& env) { env.add("i", 1); }, 0, false);
  prog.branch("loop",
              [](const ProgramEnv& env) {
                return env.get("i") < 20 ? std::size_t{0} : std::size_t{1};
              },
              {top, static_cast<std::uint32_t>(prog.size() + 1)}, true);
  prog.halt();

  std::atomic<std::uint64_t> executed{0};
  BodyTable bodies;
  auto body = [&](GranuleRange r, WorkerId) {
    executed.fetch_add(r.size(), std::memory_order_relaxed);
  };
  bodies.set(a, body);
  bodies.set(b, body);
  bodies.set(c, body);
  ExecConfig cfg;
  cfg.grain = 8;
  cfg.early_serial = true;
  ThreadedRuntime runtime(prog, cfg, CostModel::free_of_charge(), bodies, {4});
  const RtResult res = runtime.run();
  EXPECT_EQ(res.granules_executed, 20u * 3u * 64u);
  EXPECT_EQ(executed.load(), 20u * 3u * 64u);
  EXPECT_TRUE(res.diagnostics.empty());
}

// --- batched executive handoff ---------------------------------------------

class RtBatchedHandoff : public ::testing::TestWithParam<int> {};

TEST_P(RtBatchedHandoff, IdentityOrderHoldsUnderBatching) {
  const auto batch = static_cast<std::uint32_t>(GetParam());
  const GranuleId n = 512;
  TwoPhaseSetup s = make_two_phase(n, MappingKind::kIdentity);
  HappensBeforeRecorder rec(2, n);

  BodyTable bodies;
  bodies.set(s.a, [&](GranuleRange r, WorkerId) {
    for (GranuleId g = r.lo; g < r.hi; ++g) {
      rec.on_start(0, g);
      rec.on_finish(0, g);
    }
  });
  bodies.set(s.b, [&](GranuleRange r, WorkerId) {
    for (GranuleId g = r.lo; g < r.hi; ++g) {
      rec.on_start(1, g);
      rec.on_finish(1, g);
    }
  });

  ExecConfig cfg;
  cfg.grain = 16;
  ThreadedRuntime runtime(s.prog, cfg, CostModel::free_of_charge(), bodies,
                          {4, batch});
  const RtResult res = runtime.run();
  EXPECT_EQ(res.granules_executed, 2u * n);

  for (GranuleId g = 0; g < n; ++g) {
    ASSERT_TRUE(rec.executed(0, g));
    ASSERT_TRUE(rec.executed(1, g));
    EXPECT_LT(rec.finish_ticket(0, g), rec.start_ticket(1, g))
        << "identity enablement violated at granule " << g;
  }
}

INSTANTIATE_TEST_SUITE_P(Batches, RtBatchedHandoff, ::testing::Values(2, 4, 16),
                         [](const auto& info) {
                           return "b" + std::to_string(info.param);
                         });

TEST(RtBatchedHandoff, ReverseIndirectOrderHoldsUnderBatching) {
  const GranuleId n = 256;
  auto requires_list = [n](GranuleId r) {
    return std::vector<GranuleId>{r, (r * 5 + 3) % n, (r * 11 + 7) % n};
  };
  IndirectionSpec ind;
  ind.requires_of = [requires_list](GranuleId r, std::vector<GranuleId>& out) {
    for (GranuleId p : requires_list(r)) out.push_back(p);
  };
  TwoPhaseSetup s = make_two_phase(n, MappingKind::kReverseIndirect, ind);
  HappensBeforeRecorder rec(2, n);
  BodyTable bodies;
  bodies.set(s.a, [&](GranuleRange r, WorkerId) {
    for (GranuleId g = r.lo; g < r.hi; ++g) {
      rec.on_start(0, g);
      rec.on_finish(0, g);
    }
  });
  bodies.set(s.b, [&](GranuleRange r, WorkerId) {
    for (GranuleId g = r.lo; g < r.hi; ++g) {
      rec.on_start(1, g);
      rec.on_finish(1, g);
    }
  });
  ExecConfig cfg;
  cfg.grain = 8;
  ThreadedRuntime runtime(s.prog, cfg, CostModel::free_of_charge(), bodies,
                          {4, 16});
  const RtResult res = runtime.run();
  EXPECT_EQ(res.granules_executed, 2u * n);
  for (GranuleId r = 0; r < n; ++r)
    for (GranuleId need : requires_list(r))
      EXPECT_LT(rec.finish_ticket(0, need), rec.start_ticket(1, r))
          << "successor " << r << " started before requirement " << need;
}

TEST(RtBatchedHandoff, FewerLockAcquisitionsSameWork) {
  // A loop program with enough tasks that steady-state handoff dominates.
  PhaseProgram prog;
  PhaseId a = prog.define_phase(make_phase("a", 512).writes("A"));
  PhaseId b = prog.define_phase(make_phase("b", 512).reads("A").writes("B"));
  prog.serial("init", [](ProgramEnv& env) { env.set("i", 0); }, 0, false);
  const std::uint32_t top =
      prog.dispatch(a, {EnableClause{"b", MappingKind::kIdentity, {}}});
  prog.dispatch(b);
  prog.serial("inc", [](ProgramEnv& env) { env.add("i", 1); }, 0, false);
  prog.branch("loop",
              [](const ProgramEnv& env) {
                return env.get("i") < 4 ? std::size_t{0} : std::size_t{1};
              },
              {top, static_cast<std::uint32_t>(prog.size() + 1)}, true);
  prog.halt();

  BodyTable bodies;
  auto body = [](GranuleRange, WorkerId) {};
  bodies.set(a, body);
  bodies.set(b, body);

  auto run_with_batch = [&](std::uint32_t batch) {
    ExecConfig cfg;
    cfg.grain = 4;
    cfg.early_serial = true;
    // Stealing and adaptive grain off: this test isolates what batching
    // alone buys, so task counts stay bit-identical across batch sizes
    // (test_sched covers the dispatch layer on top).
    RtConfig rc;
    rc.workers = 4;
    rc.batch = batch;
    rc.steal = false;
    rc.adaptive_grain = false;
    ThreadedRuntime runtime(prog, cfg, CostModel::free_of_charge(), bodies, rc);
    return runtime.run();
  };
  const RtResult r1 = run_with_batch(1);
  const RtResult r16 = run_with_batch(16);

  EXPECT_EQ(r1.granules_executed, 4u * 2u * 512u);
  EXPECT_EQ(r16.granules_executed, r1.granules_executed);
  EXPECT_EQ(r16.tasks_executed, r1.tasks_executed);
  // The acceptance bar is 2x; steady state delivers far more (~16x), so 2x
  // leaves headroom for wait-path reacquisitions under scheduler noise.
  EXPECT_GE(r1.exec_lock_acquisitions, 2 * r16.exec_lock_acquisitions)
      << "batch=1 locks: " << r1.exec_lock_acquisitions
      << ", batch=16 locks: " << r16.exec_lock_acquisitions;
}

// --- dynamic conflicting submission on real threads --------------------------

TEST(RtSubmitConflicting, ElevatedReleaseOrderingEndToEnd) {
  // Phase a runs with phase b's root already queued behind it (universal
  // mapping). Mid-run, a body dynamically submits phase-c work conflicting
  // with a's run. The paper's contract, end-to-end on real threads:
  //   1. no c granule starts before a's run fully completes, and
  //   2. released c work takes the elevated lane — with one worker it must
  //      run strictly before the normal-priority b work already waiting.
  const GranuleId n = 64;
  const GranuleId m = 16;
  PhaseProgram prog;
  PhaseId a = prog.define_phase(make_phase("a", n).writes("X"));
  PhaseId b = prog.define_phase(make_phase("b", n).reads("X").writes("Y"));
  PhaseId c = prog.define_phase(make_phase("c", m).reads("X").writes("Z"));
  prog.dispatch(a, {EnableClause{"b", MappingKind::kUniversal, {}}});
  prog.dispatch(b);
  prog.halt();

  HappensBeforeRecorder rec(3, n);
  ThreadedRuntime* rt_ptr = nullptr;
  std::atomic<bool> submitted{false};

  BodyTable bodies;
  bodies.set(a, [&](GranuleRange r, WorkerId) {
    if (!submitted.exchange(true)) {
      // Bodies run with the executive lock released, so submitting from
      // here is legal; a's run id is 0 (first run created).
      rt_ptr->submit_conflicting(/*blocker=*/0, c, {0, m});
    }
    for (GranuleId g = r.lo; g < r.hi; ++g) {
      rec.on_start(0, g);
      rec.on_finish(0, g);
    }
  });
  bodies.set(b, [&](GranuleRange r, WorkerId) {
    for (GranuleId g = r.lo; g < r.hi; ++g) {
      rec.on_start(1, g);
      rec.on_finish(1, g);
    }
  });
  bodies.set(c, [&](GranuleRange r, WorkerId) {
    for (GranuleId g = r.lo; g < r.hi; ++g) {
      rec.on_start(2, g);
      rec.on_finish(2, g);
    }
  });

  ExecConfig cfg;
  cfg.grain = 8;
  ThreadedRuntime runtime(prog, cfg, CostModel::free_of_charge(), bodies, {1});
  rt_ptr = &runtime;
  const RtResult res = runtime.run();
  EXPECT_EQ(res.granules_executed, 2u * n + m);

  std::uint64_t last_a_finish = 0;
  for (GranuleId g = 0; g < n; ++g)
    last_a_finish = std::max(last_a_finish, rec.finish_ticket(0, g));
  for (GranuleId g = 0; g < m; ++g) {
    ASSERT_TRUE(rec.executed(2, g));
    EXPECT_GT(rec.start_ticket(2, g), last_a_finish)
        << "conflicting granule " << g << " ran before its blocker completed";
    EXPECT_LT(rec.finish_ticket(2, g), rec.start_ticket(1, 0))
        << "elevated release did not outrank queued normal work at " << g;
  }
}

TEST(RtSubmitConflicting, ImmediateWhenBlockerAlreadyComplete) {
  // Submitting against an already-complete run enqueues the work directly;
  // it must still execute before the program can finish.
  const GranuleId n = 64;
  const GranuleId m = 8;
  PhaseProgram prog;
  PhaseId a = prog.define_phase(make_phase("a", n).writes("X"));
  PhaseId b = prog.define_phase(make_phase("b", n).reads("X").writes("Y"));
  PhaseId c = prog.define_phase(make_phase("c", m).reads("X").writes("Z"));
  prog.dispatch(a, {EnableClause{"b", MappingKind::kIdentity, {}}});
  prog.dispatch(b);
  prog.halt();

  std::atomic<std::uint32_t> c_granules{0};
  ThreadedRuntime* rt_ptr = nullptr;
  std::atomic<bool> submitted{false};

  BodyTable bodies;
  bodies.set(a, [](GranuleRange, WorkerId) {});
  bodies.set(b, [&](GranuleRange, WorkerId) {
    // With one worker and released b work queued at normal priority behind
    // a's remainder, every b body runs after a's run fully completed — this
    // submission deterministically takes the blocker-already-complete path.
    if (!submitted.exchange(true)) rt_ptr->submit_conflicting(0, c, {0, m});
  });
  bodies.set(c, [&](GranuleRange r, WorkerId) { c_granules += r.size(); });

  ExecConfig cfg;
  cfg.grain = 8;
  ThreadedRuntime runtime(prog, cfg, CostModel::free_of_charge(), bodies, {1});
  rt_ptr = &runtime;
  const RtResult res = runtime.run();
  EXPECT_EQ(res.granules_executed, 2u * n + m);
  EXPECT_EQ(c_granules.load(), m);
}

// --- per-worker wall accounting ----------------------------------------------

TEST(RtResultAccounting, WorkerWallMeasuredInsideWorkerMain) {
  const GranuleId n = 128;
  TwoPhaseSetup s = make_two_phase(n, MappingKind::kIdentity);
  std::atomic<std::uint64_t> sink{0};
  BodyTable bodies;
  auto burn = [&](GranuleRange r, WorkerId) {
    std::uint64_t acc = 0;
    for (GranuleId g = r.lo; g < r.hi; ++g)
      for (int i = 0; i < 2000; ++i) acc += static_cast<std::uint64_t>(i) * g;
    sink.fetch_add(acc, std::memory_order_relaxed);
  };
  bodies.set(s.a, burn);
  bodies.set(s.b, burn);
  ExecConfig cfg;
  cfg.grain = 8;
  ThreadedRuntime runtime(s.prog, cfg, CostModel{}, bodies, {3});
  const RtResult res = runtime.run();
  ASSERT_EQ(res.worker_wall.size(), 3u);
  for (std::size_t w = 0; w < res.worker_wall.size(); ++w) {
    // Busy time is a sub-interval of the worker's own wall time, and the
    // worker's wall time sits inside run()'s span (which adds spawn/join).
    EXPECT_GE(res.worker_wall[w].count(), res.worker_busy[w].count());
    EXPECT_LE(res.worker_wall[w].count(), res.wall.count());
  }
  EXPECT_GT(res.utilization(), 0.0);
  EXPECT_LE(res.utilization(), 1.0 + 1e-9);
  EXPECT_GT(res.exec_lock_acquisitions, 0u);
}

// --- configuration validation ------------------------------------------------

TEST(RtConfigDeathTest, RejectsZeroWorkers) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  TwoPhaseSetup s = make_two_phase(8, MappingKind::kIdentity);
  BodyTable bodies;
  auto noop = [](GranuleRange, WorkerId) {};
  bodies.set(s.a, noop);
  bodies.set(s.b, noop);
  EXPECT_DEATH(ThreadedRuntime(s.prog, ExecConfig{}, CostModel::free_of_charge(),
                               bodies, {0, 1}),
               "need at least one worker");
}

TEST(RtConfigDeathTest, RejectsZeroBatch) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  TwoPhaseSetup s = make_two_phase(8, MappingKind::kIdentity);
  BodyTable bodies;
  auto noop = [](GranuleRange, WorkerId) {};
  bodies.set(s.a, noop);
  bodies.set(s.b, noop);
  EXPECT_DEATH(ThreadedRuntime(s.prog, ExecConfig{}, CostModel::free_of_charge(),
                               bodies, {4, 0}),
               "batch must be at least 1");
}

TEST(RtConfigDeathTest, RejectsZeroShards) {
  // 0 is invalid by design: "auto" is the explicit kAutoShards sentinel, so
  // a config bug can never silently mean "pick for me".
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  TwoPhaseSetup s = make_two_phase(8, MappingKind::kIdentity);
  BodyTable bodies;
  auto noop = [](GranuleRange, WorkerId) {};
  bodies.set(s.a, noop);
  bodies.set(s.b, noop);
  RtConfig rc;
  rc.workers = 2;
  rc.shards = 0;
  EXPECT_DEATH(ThreadedRuntime(s.prog, ExecConfig{}, CostModel::free_of_charge(),
                               bodies, rc),
               "shards must be at least 1");
}

TEST(RtConfigDeathTest, RejectsMoreShardsThanGranules) {
  // An explicit shard count beyond the largest phase cannot partition the
  // granule space; only kAutoShards clamps silently.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  TwoPhaseSetup s = make_two_phase(8, MappingKind::kIdentity);
  BodyTable bodies;
  auto noop = [](GranuleRange, WorkerId) {};
  bodies.set(s.a, noop);
  bodies.set(s.b, noop);
  RtConfig rc;
  rc.workers = 2;
  rc.shards = 64;
  EXPECT_DEATH(ThreadedRuntime(s.prog, ExecConfig{}, CostModel::free_of_charge(),
                               bodies, rc),
               "more shards than granules");
}

TEST(RtConfig, AutoShardsClampToWorkersAndProgram) {
  // kAutoShards = 2x workers clamped to the largest phase; a single worker
  // keeps the exact single-lock protocol (nothing to decontend).
  TwoPhaseSetup s = make_two_phase(8, MappingKind::kIdentity);
  BodyTable bodies;
  auto noop = [](GranuleRange, WorkerId) {};
  bodies.set(s.a, noop);
  bodies.set(s.b, noop);
  auto shards_used = [&](std::uint32_t workers) {
    RtConfig rc;
    rc.workers = workers;
    ExecConfig cfg;
    cfg.grain = 2;
    return ThreadedRuntime(s.prog, cfg, CostModel::free_of_charge(), bodies, rc)
        .run()
        .shards_used;
  };
  EXPECT_EQ(shards_used(1), 1u);
  EXPECT_EQ(shards_used(3), 6u);
  EXPECT_EQ(shards_used(16), 8u);  // clamped to the 8-granule phases
}

TEST(HappensBefore, RecorderPrimitives) {
  HappensBeforeRecorder rec(1, 4);
  EXPECT_FALSE(rec.executed(0, 0));
  rec.on_start(0, 0);
  rec.on_finish(0, 0);
  rec.on_start(0, 1);
  rec.on_finish(0, 1);
  EXPECT_TRUE(rec.executed(0, 0));
  EXPECT_LT(rec.start_ticket(0, 0), rec.finish_ticket(0, 0));
  EXPECT_LT(rec.finish_ticket(0, 0), rec.start_ticket(0, 1));
}

}  // namespace
}  // namespace pax::rt
