// Threaded runtime tests: happens-before verification of enablement on real
// threads, overlap evidence, strict baseline, and stress.
#include <gtest/gtest.h>

#include <atomic>

#include "runtime/happens_before.hpp"
#include "runtime/threaded_runtime.hpp"

namespace pax::rt {
namespace {

struct TwoPhaseSetup {
  PhaseProgram prog;
  PhaseId a = kNoPhase;
  PhaseId b = kNoPhase;
};

TwoPhaseSetup make_two_phase(GranuleId n, MappingKind kind,
                             IndirectionSpec indirection = {}) {
  TwoPhaseSetup s;
  s.a = s.prog.define_phase(make_phase("a", n).writes("X"));
  s.b = s.prog.define_phase(make_phase("b", n).reads("X").writes("Y"));
  EnableClause clause{"b", kind, std::move(indirection)};
  s.prog.dispatch(s.a, {clause});
  s.prog.dispatch(s.b);
  s.prog.halt();
  return s;
}

class RtIdentityOrder : public ::testing::TestWithParam<int> {};

TEST_P(RtIdentityOrder, SuccessorGranuleNeverStartsBeforeEnablerFinishes) {
  const auto workers = static_cast<std::uint32_t>(GetParam());
  const GranuleId n = 512;
  TwoPhaseSetup s = make_two_phase(n, MappingKind::kIdentity);
  HappensBeforeRecorder rec(2, n);

  BodyTable bodies;
  bodies.set(s.a, [&](GranuleRange r, WorkerId) {
    for (GranuleId g = r.lo; g < r.hi; ++g) {
      rec.on_start(0, g);
      rec.on_finish(0, g);
    }
  });
  bodies.set(s.b, [&](GranuleRange r, WorkerId) {
    for (GranuleId g = r.lo; g < r.hi; ++g) {
      rec.on_start(1, g);
      rec.on_finish(1, g);
    }
  });

  ExecConfig cfg;
  cfg.grain = 16;
  ThreadedRuntime runtime(s.prog, cfg, CostModel::free_of_charge(), bodies,
                          {workers});
  const RtResult res = runtime.run();
  EXPECT_EQ(res.granules_executed, 2u * n);

  for (GranuleId g = 0; g < n; ++g) {
    ASSERT_TRUE(rec.executed(0, g));
    ASSERT_TRUE(rec.executed(1, g));
    EXPECT_LT(rec.finish_ticket(0, g), rec.start_ticket(1, g))
        << "identity enablement violated at granule " << g;
  }
}

INSTANTIATE_TEST_SUITE_P(Workers, RtIdentityOrder, ::testing::Values(1, 2, 4, 8),
                         [](const auto& info) {
                           return "w" + std::to_string(info.param);
                         });

TEST(RtReverseIndirect, AllRequirementsFinishBeforeSuccessorStarts) {
  const GranuleId n = 256;
  IndirectionSpec ind;
  ind.requires_of = [n](GranuleId r) {
    return std::vector<GranuleId>{r, (r * 5 + 3) % n, (r * 11 + 7) % n};
  };
  TwoPhaseSetup s = make_two_phase(n, MappingKind::kReverseIndirect, ind);
  HappensBeforeRecorder rec(2, n);
  BodyTable bodies;
  bodies.set(s.a, [&](GranuleRange r, WorkerId) {
    for (GranuleId g = r.lo; g < r.hi; ++g) {
      rec.on_start(0, g);
      rec.on_finish(0, g);
    }
  });
  bodies.set(s.b, [&](GranuleRange r, WorkerId) {
    for (GranuleId g = r.lo; g < r.hi; ++g) {
      rec.on_start(1, g);
      rec.on_finish(1, g);
    }
  });
  ExecConfig cfg;
  cfg.grain = 8;
  ThreadedRuntime runtime(s.prog, cfg, CostModel::free_of_charge(), bodies, {4});
  const RtResult res = runtime.run();
  EXPECT_EQ(res.granules_executed, 2u * n);
  for (GranuleId r = 0; r < n; ++r)
    for (GranuleId need : ind.requires_of(r))
      EXPECT_LT(rec.finish_ticket(0, need), rec.start_ticket(1, r))
          << "successor " << r << " started before requirement " << need;
}

TEST(RtStrictBaseline, NoOverlapMeansStrictPhaseOrder) {
  const GranuleId n = 256;
  TwoPhaseSetup s = make_two_phase(n, MappingKind::kIdentity);
  HappensBeforeRecorder rec(2, n);
  BodyTable bodies;
  bodies.set(s.a, [&](GranuleRange r, WorkerId) {
    for (GranuleId g = r.lo; g < r.hi; ++g) {
      rec.on_start(0, g);
      rec.on_finish(0, g);
    }
  });
  bodies.set(s.b, [&](GranuleRange r, WorkerId) {
    for (GranuleId g = r.lo; g < r.hi; ++g) {
      rec.on_start(1, g);
      rec.on_finish(1, g);
    }
  });
  ExecConfig cfg;
  cfg.grain = 16;
  cfg.overlap = false;
  ThreadedRuntime runtime(s.prog, cfg, CostModel::free_of_charge(), bodies, {4});
  runtime.run();
  EXPECT_TRUE(rec.strict_phase_order(0, 1, n));
}

TEST(RtOverlapEvidence, OverlapActuallyHappensWithManyWorkers) {
  // With overlap on and several workers, at least one successor granule
  // should start before the predecessor fully finishes (probabilistic but
  // over 512 granules effectively certain — the last predecessor granule
  // cannot finish before the first enabled successor granule is available).
  const GranuleId n = 512;
  TwoPhaseSetup s = make_two_phase(n, MappingKind::kIdentity);
  HappensBeforeRecorder rec(2, n);
  std::atomic<int> spin{0};
  BodyTable bodies;
  bodies.set(s.a, [&](GranuleRange r, WorkerId) {
    for (GranuleId g = r.lo; g < r.hi; ++g) {
      rec.on_start(0, g);
      for (int i = 0; i < 2000; ++i) spin.fetch_add(1, std::memory_order_relaxed);
      rec.on_finish(0, g);
    }
  });
  bodies.set(s.b, [&](GranuleRange r, WorkerId) {
    for (GranuleId g = r.lo; g < r.hi; ++g) {
      rec.on_start(1, g);
      rec.on_finish(1, g);
    }
  });
  ExecConfig cfg;
  cfg.grain = 8;
  ThreadedRuntime runtime(s.prog, cfg, CostModel::free_of_charge(), bodies, {4});
  runtime.run();
  EXPECT_TRUE(rec.overlapped(0, 1, n));
}

TEST(RtResultAccounting, UtilizationAndBusyTimesPlausible) {
  const GranuleId n = 128;
  TwoPhaseSetup s = make_two_phase(n, MappingKind::kIdentity);
  std::atomic<std::uint64_t> sink{0};
  BodyTable bodies;
  auto burn = [&](GranuleRange r, WorkerId) {
    std::uint64_t acc = 0;
    for (GranuleId g = r.lo; g < r.hi; ++g)
      for (int i = 0; i < 5000; ++i) acc += static_cast<std::uint64_t>(i) * g;
    sink.fetch_add(acc, std::memory_order_relaxed);
  };
  bodies.set(s.a, burn);
  bodies.set(s.b, burn);
  ExecConfig cfg;
  cfg.grain = 8;
  ThreadedRuntime runtime(s.prog, cfg, CostModel{}, bodies, {2});
  const RtResult res = runtime.run();
  EXPECT_EQ(res.worker_busy.size(), 2u);
  EXPECT_GT(res.utilization(), 0.0);
  EXPECT_LE(res.utilization(), 1.0 + 1e-9);
  EXPECT_GT(res.ledger.count(MgmtOp::kCompletion), 0u);
}

TEST(RtStress, ManySmallPhasesInLoop) {
  // A loop program with three phases cycling 20 times on 4 workers.
  PhaseProgram prog;
  PhaseId a = prog.define_phase(make_phase("a", 64).writes("A64"));
  PhaseId b = prog.define_phase(make_phase("b", 64).reads("A64").writes("B64"));
  PhaseId c = prog.define_phase(make_phase("c", 64).reads("B64").writes("C64"));
  prog.serial("init", [](ProgramEnv& env) { env.set("i", 0); }, 0, false);
  const std::uint32_t top =
      prog.dispatch(a, {EnableClause{"b", MappingKind::kIdentity, {}}});
  prog.dispatch(b, {EnableClause{"c", MappingKind::kIdentity, {}}});
  prog.dispatch(c);
  prog.serial("inc", [](ProgramEnv& env) { env.add("i", 1); }, 0, false);
  prog.branch("loop",
              [](const ProgramEnv& env) {
                return env.get("i") < 20 ? std::size_t{0} : std::size_t{1};
              },
              {top, static_cast<std::uint32_t>(prog.size() + 1)}, true);
  prog.halt();

  std::atomic<std::uint64_t> executed{0};
  BodyTable bodies;
  auto body = [&](GranuleRange r, WorkerId) {
    executed.fetch_add(r.size(), std::memory_order_relaxed);
  };
  bodies.set(a, body);
  bodies.set(b, body);
  bodies.set(c, body);
  ExecConfig cfg;
  cfg.grain = 8;
  cfg.early_serial = true;
  ThreadedRuntime runtime(prog, cfg, CostModel::free_of_charge(), bodies, {4});
  const RtResult res = runtime.run();
  EXPECT_EQ(res.granules_executed, 20u * 3u * 64u);
  EXPECT_EQ(executed.load(), 20u * 3u * 64u);
  EXPECT_TRUE(res.diagnostics.empty());
}

TEST(HappensBefore, RecorderPrimitives) {
  HappensBeforeRecorder rec(1, 4);
  EXPECT_FALSE(rec.executed(0, 0));
  rec.on_start(0, 0);
  rec.on_finish(0, 0);
  rec.on_start(0, 1);
  rec.on_finish(0, 1);
  EXPECT_TRUE(rec.executed(0, 0));
  EXPECT_LT(rec.start_ticket(0, 0), rec.finish_ticket(0, 0));
  EXPECT_LT(rec.finish_ticket(0, 0), rec.start_ticket(0, 1));
}

}  // namespace
}  // namespace pax::rt
