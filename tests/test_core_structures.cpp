// Unit tests for the core scheduling structures: RangeSet, DescriptorPool,
// WaitingQueue, CompositeGranuleMap, coalescing, cost ledger.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/cost_model.hpp"
#include "core/descriptor.hpp"
#include "core/enablement.hpp"
#include "core/granule.hpp"
#include "core/range_set.hpp"
#include "core/waiting_queue.hpp"

namespace pax {
namespace {

// --- RangeSet -------------------------------------------------------------------

TEST(RangeSet, InsertAndMergeNeighbours) {
  RangeSet rs;
  rs.insert({0, 4});
  rs.insert({8, 12});
  EXPECT_EQ(rs.fragments(), 2u);
  rs.insert({4, 8});  // bridges the two
  EXPECT_EQ(rs.fragments(), 1u);
  EXPECT_EQ(rs.cardinality(), 12u);
  EXPECT_TRUE(rs.contains(0));
  EXPECT_TRUE(rs.contains(11));
  EXPECT_FALSE(rs.contains(12));
}

TEST(RangeSet, MergeLeftOnly) {
  RangeSet rs;
  rs.insert({0, 4});
  rs.insert({4, 6});
  EXPECT_EQ(rs.fragments(), 1u);
  EXPECT_EQ(rs.ranges()[0], (GranuleRange{0, 6}));
}

TEST(RangeSet, MergeRightOnly) {
  RangeSet rs;
  rs.insert({4, 8});
  rs.insert({2, 4});
  EXPECT_EQ(rs.fragments(), 1u);
  EXPECT_EQ(rs.ranges()[0], (GranuleRange{2, 8}));
}

TEST(RangeSet, ComplementCoversGaps) {
  RangeSet rs;
  rs.insert({2, 4});
  rs.insert({6, 8});
  const auto gaps = rs.complement(10);
  ASSERT_EQ(gaps.size(), 3u);
  EXPECT_EQ(gaps[0], (GranuleRange{0, 2}));
  EXPECT_EQ(gaps[1], (GranuleRange{4, 6}));
  EXPECT_EQ(gaps[2], (GranuleRange{8, 10}));
}

TEST(RangeSet, ComplementOfEmptyIsWhole) {
  RangeSet rs;
  const auto gaps = rs.complement(5);
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps[0], (GranuleRange{0, 5}));
}

TEST(RangeSet, RandomPermutationCollapsesToOne) {
  // Property: inserting all singletons of [0, n) in any order yields exactly
  // one fragment covering everything.
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    const GranuleId n = 64;
    std::vector<GranuleId> ids(n);
    for (GranuleId i = 0; i < n; ++i) ids[i] = i;
    for (GranuleId i = n; i > 1; --i)
      std::swap(ids[i - 1], ids[rng.below(i)]);
    RangeSet rs;
    for (GranuleId g : ids) rs.insert({g, g + 1});
    EXPECT_EQ(rs.fragments(), 1u);
    EXPECT_EQ(rs.cardinality(), n);
  }
}

// --- coalesce_sorted --------------------------------------------------------------

TEST(Coalesce, MergesAdjacentAndSkipsDuplicates) {
  const auto ranges = coalesce_sorted({1, 2, 3, 5, 7, 8, 8, 9});
  ASSERT_EQ(ranges.size(), 3u);
  EXPECT_EQ(ranges[0], (GranuleRange{1, 4}));
  EXPECT_EQ(ranges[1], (GranuleRange{5, 6}));
  EXPECT_EQ(ranges[2], (GranuleRange{7, 10}));
}

TEST(Coalesce, EmptyInput) { EXPECT_TRUE(coalesce_sorted({}).empty()); }

// --- DescriptorPool ----------------------------------------------------------------

TEST(DescriptorPool, RecyclesSlots) {
  DescriptorPool pool;
  Descriptor& a = pool.acquire(0, 0, {0, 10});
  const auto index = a.pool_index;
  EXPECT_EQ(pool.live(), 1u);
  pool.release(a);
  EXPECT_EQ(pool.live(), 0u);
  Descriptor& b = pool.acquire(1, 1, {5, 6});
  EXPECT_EQ(b.pool_index, index);  // reused the slot
  EXPECT_EQ(b.run, 1u);
  EXPECT_FALSE(b.tracks_owner);
  pool.release(b);
}

TEST(DescriptorPool, GrowsStably) {
  DescriptorPool pool;
  std::vector<Descriptor*> descs;
  for (GranuleId i = 0; i < 100; ++i)
    descs.push_back(&pool.acquire(0, 0, {i, i + 1}));
  // Addresses remain valid after growth.
  for (GranuleId i = 0; i < 100; ++i) EXPECT_EQ(descs[i]->range.lo, i);
  EXPECT_EQ(pool.total_acquired(), 100u);
  for (auto* d : descs) pool.release(*d);
}

// --- WaitingQueue -------------------------------------------------------------------

TEST(WaitingQueue, ElevatedBeforeNormalFifoWithin) {
  DescriptorPool pool;
  WaitingQueue q;
  Descriptor& n1 = pool.acquire(0, 0, {0, 1}, Priority::kNormal);
  Descriptor& n2 = pool.acquire(0, 0, {1, 2}, Priority::kNormal);
  Descriptor& e1 = pool.acquire(0, 0, {2, 3}, Priority::kElevated);
  Descriptor& e2 = pool.acquire(0, 0, {3, 4}, Priority::kElevated);
  q.enqueue(n1);
  q.enqueue(e1);
  q.enqueue(n2);
  q.enqueue(e2);
  EXPECT_EQ(q.size(), 4u);
  EXPECT_EQ(q.elevated_size(), 2u);
  EXPECT_EQ(q.pop(), &e1);
  EXPECT_EQ(q.pop(), &e2);
  EXPECT_EQ(q.pop(), &n1);
  EXPECT_EQ(q.pop(), &n2);
  EXPECT_EQ(q.pop(), nullptr);
  for (Descriptor* d : {&n1, &n2, &e1, &e2}) pool.release(*d);
}

TEST(WaitingQueue, PeekDoesNotDetach) {
  DescriptorPool pool;
  WaitingQueue q;
  Descriptor& d = pool.acquire(0, 0, {0, 8});
  q.enqueue(d);
  EXPECT_EQ(q.peek(), &d);
  EXPECT_EQ(q.size(), 1u);
  q.remove(d);
  pool.release(d);
}

TEST(WaitingQueue, InsertBeforePreservesPosition) {
  DescriptorPool pool;
  WaitingQueue q;
  Descriptor& a = pool.acquire(0, 0, {0, 1});
  Descriptor& b = pool.acquire(0, 0, {1, 2});
  Descriptor& c = pool.acquire(0, 0, {2, 3});
  q.enqueue(a);
  q.enqueue(c);
  q.insert_before(c, b);
  EXPECT_EQ(q.pop(), &a);
  EXPECT_EQ(q.pop(), &b);
  EXPECT_EQ(q.pop(), &c);
  for (Descriptor* d : {&a, &b, &c}) pool.release(*d);
}

TEST(WaitingQueue, EnqueueFrontKeepsRemainderAheadWithinItsClass) {
  // A partially consumed descriptor returns to the *front* of its priority
  // class so FIFO order of the remainder holds — but it must not outrank the
  // elevated class.
  DescriptorPool pool;
  WaitingQueue q;
  Descriptor& n1 = pool.acquire(0, 0, {0, 1}, Priority::kNormal);
  Descriptor& n2 = pool.acquire(0, 0, {1, 2}, Priority::kNormal);
  Descriptor& e1 = pool.acquire(0, 0, {2, 3}, Priority::kElevated);
  q.enqueue(n1);
  q.enqueue(e1);
  q.enqueue_front(n2);
  EXPECT_EQ(q.pop(), &e1);  // elevated still first
  EXPECT_EQ(q.pop(), &n2);  // front of the normal class
  EXPECT_EQ(q.pop(), &n1);
  for (Descriptor* d : {&n1, &n2, &e1}) pool.release(*d);
}

TEST(WaitingQueue, InsertAfterAndRemoveMiddle) {
  DescriptorPool pool;
  WaitingQueue q;
  Descriptor& a = pool.acquire(0, 0, {0, 1});
  Descriptor& b = pool.acquire(0, 0, {1, 2});
  Descriptor& c = pool.acquire(0, 0, {2, 3});
  q.enqueue(a);
  q.enqueue(c);
  q.insert_after(a, b);
  EXPECT_EQ(q.size(), 3u);
  q.remove(b);  // detach from the middle
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop(), &a);
  EXPECT_EQ(q.pop(), &c);
  for (Descriptor* d : {&a, &b, &c}) pool.release(*d);
}

TEST(WaitingQueue, ForEachVisitsElevatedClassFirst) {
  DescriptorPool pool;
  WaitingQueue q;
  Descriptor& n1 = pool.acquire(0, 0, {0, 1}, Priority::kNormal);
  Descriptor& e1 = pool.acquire(0, 0, {1, 2}, Priority::kElevated);
  Descriptor& n2 = pool.acquire(0, 0, {2, 3}, Priority::kNormal);
  q.enqueue(n1);
  q.enqueue(e1);
  q.enqueue(n2);
  std::vector<Descriptor*> seen;
  q.for_each([&](Descriptor& d) { seen.push_back(&d); });
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], &e1);
  EXPECT_EQ(seen[1], &n1);
  EXPECT_EQ(seen[2], &n2);
  while (Descriptor* d = q.pop()) pool.release(*d);
}

TEST(RangeSetDeathTest, RejectsEmptyRange) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  RangeSet rs;
  EXPECT_DEATH(rs.insert({3, 3}), "PAX_CHECK failed");
}

TEST(RangeSetDeathTest, RejectsOverlappingInsert) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  RangeSet rs;
  rs.insert({0, 4});
  EXPECT_DEATH(rs.insert({2, 6}), "overlapping insert");
  EXPECT_DEATH(rs.insert({3, 4}), "overlapping insert");
}

TEST(RangeSet, AdjacentInsertsCoalesceFromBothSides) {
  // Out-of-order adjacent inserts must collapse to one fragment whichever
  // side they arrive from, including a bridging insert between two islands.
  RangeSet rs;
  rs.insert({10, 12});
  rs.insert({14, 16});
  rs.insert({6, 8});
  EXPECT_EQ(rs.fragments(), 3u);
  rs.insert({12, 14});  // bridges the upper islands
  EXPECT_EQ(rs.fragments(), 2u);
  rs.insert({8, 10});  // bridges the rest
  EXPECT_EQ(rs.fragments(), 1u);
  EXPECT_EQ(rs.ranges()[0], (GranuleRange{6, 16}));
  EXPECT_EQ(rs.cardinality(), 10u);
}

TEST(RangeSet, ContainsAtFragmentBoundaries) {
  RangeSet rs;
  rs.insert({4, 8});
  rs.insert({12, 16});
  EXPECT_FALSE(rs.contains(3));
  EXPECT_TRUE(rs.contains(4));
  EXPECT_TRUE(rs.contains(7));
  EXPECT_FALSE(rs.contains(8));   // hi is exclusive
  EXPECT_FALSE(rs.contains(11));
  EXPECT_TRUE(rs.contains(12));
  EXPECT_FALSE(rs.contains(16));
}

TEST(RangeSet, ComplementOfExactCoverIsEmpty) {
  RangeSet rs;
  rs.insert({0, 5});
  rs.insert({5, 10});
  EXPECT_TRUE(rs.complement(10).empty());
  // Complement bounded below the covered prefix is also empty.
  EXPECT_TRUE(rs.complement(3).empty());
}

TEST(RangeSet, ClearResetsCoverage) {
  RangeSet rs;
  rs.insert({0, 4});
  rs.clear();
  EXPECT_TRUE(rs.empty());
  EXPECT_EQ(rs.cardinality(), 0u);
  EXPECT_EQ(rs.fragments(), 0u);
  rs.insert({0, 2});  // reusable after clear
  EXPECT_EQ(rs.cardinality(), 2u);
}

// --- CompositeGranuleMap ---------------------------------------------------------------

TEST(CompositeMap, ReverseAllOfSemantics) {
  // Successor r needs {r, r+1 mod 4}.
  auto built = CompositeGranuleMap::build_reverse(
      4, 4, [](GranuleId r, std::vector<GranuleId>& out) {
        out.insert(out.end(), {r, (r + 1) % 4});
      });
  EXPECT_EQ(built.entries, 8u);
  EXPECT_TRUE(built.initially_enabled.empty());
  CompositeGranuleMap& m = built.map;
  EXPECT_EQ(m.outstanding(), 8u);

  std::vector<GranuleId> newly;
  m.on_complete(0, newly);
  EXPECT_TRUE(newly.empty());  // r=3 needs {3,0}; r=0 needs {0,1}
  m.on_complete(1, newly);
  ASSERT_EQ(newly.size(), 1u);  // r=0 now complete
  EXPECT_EQ(newly[0], 0u);
  newly.clear();
  m.on_complete(2, newly);
  EXPECT_EQ(newly, (std::vector<GranuleId>{1}));
  newly.clear();
  m.on_complete(3, newly);
  // r=2 (needs 2,3) and r=3 (needs 3,0) both fire.
  std::sort(newly.begin(), newly.end());
  EXPECT_EQ(newly, (std::vector<GranuleId>{2, 3}));
  EXPECT_EQ(m.outstanding(), 0u);
}

TEST(CompositeMap, ForwardUnfedSuccessorsInitiallyEnabled) {
  // Current granule p feeds successor 2p; odd successors are unfed.
  auto built = CompositeGranuleMap::build_forward(
      4, 8, [](GranuleId p, std::vector<GranuleId>& out) {
        out.push_back(2 * p);
      });
  EXPECT_EQ(built.initially_enabled, (std::vector<GranuleId>{1, 3, 5, 7}));
  std::vector<GranuleId> newly;
  built.map.on_complete(3, newly);
  EXPECT_EQ(newly, (std::vector<GranuleId>{6}));
}

TEST(CompositeMap, DuplicateRequirementsCollapse) {
  // Successor 0 lists granule 5 three times: one completion satisfies all.
  auto built = CompositeGranuleMap::build_reverse(
      8, 1, [](GranuleId, std::vector<GranuleId>& out) {
        out.insert(out.end(), {5, 5, 5});
      });
  EXPECT_EQ(built.entries, 1u);
  std::vector<GranuleId> newly;
  built.map.on_complete(5, newly);
  EXPECT_EQ(newly, (std::vector<GranuleId>{0}));
}

TEST(CompositeMap, SubsetLeavesOthersUntracked) {
  auto built = CompositeGranuleMap::build_reverse(
      8, 8, [](GranuleId r, std::vector<GranuleId>& out) { out.push_back(r); },
      std::vector<GranuleId>{0, 1, 2});
  EXPECT_EQ(built.map.tracked_successors().size(), 3u);
  EXPECT_EQ(built.map.untracked_successors().size(), 5u);
  // Completing an untracked-only granule does nothing.
  std::vector<GranuleId> newly;
  EXPECT_EQ(built.map.on_complete(5, newly), 0u);
  EXPECT_TRUE(newly.empty());
  EXPECT_FALSE(built.map.participates(5));
  EXPECT_TRUE(built.map.participates(1));
}

TEST(CompositeMap, PreferredOrderGroupsByEarliestSuccessor) {
  // Successor 0 needs {6, 7}; successor 1 needs {2}.
  auto built = CompositeGranuleMap::build_reverse(
      8, 2, [](GranuleId r, std::vector<GranuleId>& out) {
        if (r == 0) {
          out.insert(out.end(), {6, 7});
        } else {
          out.push_back(2);
        }
      });
  const auto& order = built.map.preferred_order();
  ASSERT_EQ(order.size(), 3u);
  // Granules enabling successor 0 come first (6 then 7), then 2.
  EXPECT_EQ(order[0], 6u);
  EXPECT_EQ(order[1], 7u);
  EXPECT_EQ(order[2], 2u);
}

TEST(CompositeMap, OnCompleteIdempotentPerGranule) {
  auto built = CompositeGranuleMap::build_reverse(
      4, 4, [](GranuleId r, std::vector<GranuleId>& out) { out.push_back(r); });
  std::vector<GranuleId> newly;
  EXPECT_EQ(built.map.on_complete(2, newly), 1u);
  EXPECT_EQ(built.map.on_complete(2, newly), 0u);  // status bit cleared
}

// --- cost model / ledger -------------------------------------------------------------

TEST(CostModel, DefaultsNonZeroAndScalable) {
  CostModel m;
  EXPECT_GT(m.of(MgmtOp::kCompletion), 0u);
  const CostModel x3 = m.scaled(3);
  EXPECT_EQ(x3.of(MgmtOp::kCompletion), 3 * m.of(MgmtOp::kCompletion));
  const CostModel zero = CostModel::free_of_charge();
  for (std::size_t i = 0; i < kMgmtOpCount; ++i)
    EXPECT_EQ(zero.of(static_cast<MgmtOp>(i)), 0u);
}

TEST(MgmtLedger, ChargesAndDrains) {
  CostModel m;
  MgmtLedger l;
  l.charge(MgmtOp::kSplit, m, 2);
  l.charge(MgmtOp::kCompletion, m);
  EXPECT_EQ(l.count(MgmtOp::kSplit), 2u);
  EXPECT_EQ(l.units(MgmtOp::kSplit), 2 * m.of(MgmtOp::kSplit));
  const SimTime pending = l.drain_pending();
  EXPECT_EQ(pending, 2 * m.of(MgmtOp::kSplit) + m.of(MgmtOp::kCompletion));
  EXPECT_EQ(l.drain_pending(), 0u);  // drained
  EXPECT_EQ(l.total_units(), pending);  // totals persist
}

TEST(MgmtLedger, ChargeRawAddsUnitsWithoutCount) {
  MgmtLedger l;
  l.charge_raw(MgmtOp::kSerialAction, 500);
  EXPECT_EQ(l.count(MgmtOp::kSerialAction), 0u);
  EXPECT_EQ(l.units(MgmtOp::kSerialAction), 500u);
  EXPECT_EQ(l.drain_pending(), 500u);
}

TEST(MgmtOpNames, AllNamed) {
  for (std::size_t i = 0; i < kMgmtOpCount; ++i)
    EXPECT_STRNE(to_string(static_cast<MgmtOp>(i)), "?");
}

}  // namespace
}  // namespace pax
