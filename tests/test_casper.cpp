// CASPER pipeline: census reproduction (T1 ground truth) and end-to-end
// execution on the simulator with every mapping kind in play.
#include <gtest/gtest.h>

#include "casper/census.hpp"
#include "casper/pipeline.hpp"
#include "core/dataflow.hpp"
#include "sim/machine.hpp"

namespace pax::casper {
namespace {

TEST(CasperPipeline, CensusMatchesPaperExactly) {
  const CasperPipeline pipe = build_casper_pipeline();
  const Census census = take_census(pipe);

  EXPECT_EQ(census.total_phases, 22u);
  EXPECT_EQ(census.total_lines, 1188u);

  EXPECT_EQ(census.row(MappingKind::kUniversal).phases, 6u);
  EXPECT_EQ(census.row(MappingKind::kUniversal).lines, 266u);
  EXPECT_EQ(census.row(MappingKind::kIdentity).phases, 9u);
  EXPECT_EQ(census.row(MappingKind::kIdentity).lines, 551u);
  EXPECT_EQ(census.row(MappingKind::kNull).phases, 4u);
  EXPECT_EQ(census.row(MappingKind::kNull).lines, 262u);
  EXPECT_EQ(census.row(MappingKind::kReverseIndirect).phases, 2u);
  EXPECT_EQ(census.row(MappingKind::kReverseIndirect).lines, 78u);
  EXPECT_EQ(census.row(MappingKind::kForwardIndirect).phases, 1u);
  EXPECT_EQ(census.row(MappingKind::kForwardIndirect).lines, 31u);

  // "68 percent of the parallel computational phases and 68 percent of the
  // code executed in parallel can be easily overlapped."
  EXPECT_NEAR(census.easy_phase_fraction(), 15.0 / 22.0, 1e-9);
  EXPECT_NEAR(census.easy_line_fraction(), 817.0 / 1188.0, 1e-9);
  EXPECT_NEAR(census.easy_phase_fraction(), 0.68, 0.01);
  EXPECT_NEAR(census.easy_line_fraction(), 0.68, 0.01);

  // "more than 90 percent of the computational phases are amenable to some
  // form of phase overlapping" with extended effort.
  EXPECT_EQ(extended_overlappable_phases(pipe), 20u);
  EXPECT_GT(static_cast<double>(extended_overlappable_phases(pipe)) / 22.0, 0.90);
}

TEST(CasperPipeline, CensusAgreesWithGroundTruthMetadata) {
  const CasperPipeline pipe = build_casper_pipeline();
  // infer_mapping on declared accesses must classify every transition the
  // way the pipeline's metadata says it will.
  for (std::size_t i = 0; i < pipe.info.size(); ++i) {
    const std::size_t next = (i + 1) % pipe.info.size();
    const MappingAnalysis analysis = infer_mapping(
        pipe.program.phase(static_cast<PhaseId>(i)),
        pipe.program.phase(static_cast<PhaseId>(next)), pipe.info[i].serial_after);
    EXPECT_EQ(analysis.kind, pipe.info[i].to_next)
        << "transition " << pipe.info[i].name << " -> "
        << pipe.info[next].name << ": " << analysis.rationale;
  }
}

TEST(CasperPipeline, TableRendersAllRows) {
  const CasperPipeline pipe = build_casper_pipeline();
  const Census census = take_census(pipe);
  const std::string table = census_table(pipe, census).render();
  for (const char* needle :
       {"universal", "identity", "null", "reverse-indirect", "forward-indirect",
        "68", "90"})
    EXPECT_NE(table.find(needle), std::string::npos) << needle;
}

class CasperRun : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(CasperRun, PipelineExecutesAllGranules) {
  const auto [overlap, early_serial] = GetParam();
  CasperOptions opt;
  opt.iterations = 1;
  const CasperPipeline pipe = build_casper_pipeline(opt);

  ExecConfig cfg;
  cfg.grain = 16;
  cfg.overlap = overlap;
  cfg.early_serial = early_serial;
  sim::MachineConfig mc;
  mc.workers = 32;
  mc.record_intervals = false;

  const auto res =
      sim::simulate(pipe.program, cfg, CostModel{}, pipe.workload, mc);
  EXPECT_EQ(res.granules_executed, pipe.total_granules());
  EXPECT_TRUE(res.diagnostics.empty()) << res.diagnostics.front();
  EXPECT_GT(res.utilization(), 0.0);
}

std::string casper_run_name(
    const ::testing::TestParamInfo<std::tuple<bool, bool>>& info) {
  const bool ov = std::get<0>(info.param);
  const bool es = std::get<1>(info.param);
  return std::string(ov ? "overlap" : "barrier") + (es ? "_early" : "_strict");
}

INSTANTIATE_TEST_SUITE_P(Modes, CasperRun,
                         ::testing::Combine(::testing::Bool(), ::testing::Bool()),
                         casper_run_name);

TEST(CasperPipeline, OverlapImprovesUtilizationInRundownRegime) {
  CasperOptions opt;
  opt.iterations = 2;
  const CasperPipeline pipe = build_casper_pipeline(opt);

  sim::MachineConfig mc;
  // ~900 granules per phase at grain 8 gives ~112 tasks for 64 workers:
  // under two tasks per processor, the rundown-dominated regime the paper
  // warns about, while the serial executive stays below saturation.
  mc.workers = 64;
  mc.record_intervals = false;

  ExecConfig barrier;
  barrier.overlap = false;
  barrier.grain = 8;
  ExecConfig overlap = barrier;
  overlap.overlap = true;
  overlap.early_serial = true;
  // Full reverse-indirect enablement (10 requirements per successor granule)
  // would saturate the serial executive -- the paper's "self defeating" case.
  // Solve a successor subset instead, as the paper prescribes.
  overlap.indirect_subset = 64;

  const auto r_b = sim::simulate(pipe.program, barrier, CostModel{}, pipe.workload, mc);
  const auto r_o = sim::simulate(pipe.program, overlap, CostModel{}, pipe.workload, mc);
  EXPECT_EQ(r_b.granules_executed, r_o.granules_executed);
  EXPECT_EQ(r_b.compute_ticks, r_o.compute_ticks);  // identical work
  EXPECT_LT(r_o.makespan, r_b.makespan);
  EXPECT_GT(r_o.utilization(), r_b.utilization());
}

TEST(CasperPipeline, MultiIterationLoopRunsEveryPhaseEachIteration) {
  CasperOptions opt;
  opt.iterations = 3;
  const CasperPipeline pipe = build_casper_pipeline(opt);
  ExecConfig cfg;
  cfg.grain = 32;
  sim::MachineConfig mc;
  mc.workers = 16;
  mc.record_intervals = false;
  const auto res = sim::simulate(pipe.program, cfg, CostModel{}, pipe.workload, mc);
  EXPECT_EQ(res.granules_executed,
            static_cast<std::uint64_t>(pipe.total_granules()) * 3u);
}

}  // namespace
}  // namespace pax::casper
