// Checkerboard SOR: the paper's motivating example. Core property: the
// overlapped parallel solver produces *bitwise identical* grids to the
// sequential solver, because enablement admits exactly the legal orders.
#include <gtest/gtest.h>

#include "casper/sor.hpp"
#include "runtime/threaded_runtime.hpp"
#include "sim/machine.hpp"
#include <cmath>
#include <algorithm>

namespace pax::casper {
namespace {

Grid make_problem(std::uint32_t nx, std::uint32_t ny) {
  Grid g(nx, ny, 0.0);
  g.set_boundary(/*hot=*/100.0, /*cold=*/0.0);
  return g;
}

TEST(Checkerboard, GeometryRoundTrips) {
  Checkerboard board(10, 7);
  for (Color c : {Color::kRed, Color::kBlack}) {
    for (GranuleId g = 0; g < board.cells(c); ++g) {
      const auto [x, y] = board.cell(c, g);
      EXPECT_TRUE(x > 0 && x < 9 && y > 0 && y < 6);
      EXPECT_EQ((x + y) % 2, static_cast<std::uint32_t>(c));
      EXPECT_EQ(board.granule_at(c, x, y), g);
    }
  }
  // Interior cell counts partition the interior.
  EXPECT_EQ(board.cells(Color::kRed) + board.cells(Color::kBlack), 8u * 5u);
}

TEST(Checkerboard, NeighboursAreOppositeColourAndAdjacent) {
  Checkerboard board(12, 12);
  for (GranuleId g = 0; g < board.cells(Color::kBlack); ++g) {
    const auto [x, y] = board.cell(Color::kBlack, g);
    for (GranuleId r : board.neighbours(Color::kBlack, g)) {
      const auto [rx, ry] = board.cell(Color::kRed, r);
      const std::uint32_t dist =
          (rx > x ? rx - x : x - rx) + (ry > y ? ry - y : y - ry);
      EXPECT_EQ(dist, 1u);
    }
  }
}

TEST(Sor, SequentialConverges) {
  Grid g = make_problem(18, 18);
  solve_sequential(g, 1.5, 300);
  // Interior should have warmed up toward the hot boundary.
  EXPECT_GT(g.at(9, 16), 50.0);
  EXPECT_LT(g.at(9, 1), 10.0);
  // Laplace residual should be small after many sweeps.
  double residual = 0.0;
  for (std::uint32_t y = 1; y + 1 < g.ny(); ++y)
    for (std::uint32_t x = 1; x + 1 < g.nx(); ++x)
      residual = std::max(residual,
                          std::fabs(0.25 * (g.at(x - 1, y) + g.at(x + 1, y) +
                                            g.at(x, y - 1) + g.at(x, y + 1)) -
                                    g.at(x, y)));
  EXPECT_LT(residual, 1e-6);
}

class SorParity : public ::testing::TestWithParam<std::tuple<int, bool, int>> {};

TEST_P(SorParity, ThreadedMatchesSequentialBitwise) {
  const auto [workers, overlap, sweeps] = GetParam();
  const std::uint32_t nx = 22, ny = 16;
  const double omega = 1.4;

  Grid reference = make_problem(nx, ny);
  solve_sequential(reference, omega, static_cast<std::uint32_t>(sweeps));

  Grid parallel = make_problem(nx, ny);
  SorProgram sp =
      build_sor_program(parallel, omega, static_cast<std::uint32_t>(sweeps));
  ExecConfig cfg;
  cfg.grain = 8;
  cfg.overlap = overlap;
  cfg.early_serial = true;  // allow cross-sweep overlap through the loop
  rt::ThreadedRuntime runtime(sp.program, cfg, CostModel::free_of_charge(),
                              sp.bodies, {static_cast<std::uint32_t>(workers)});
  rt::RtResult res = runtime.run();

  EXPECT_EQ(res.granules_executed,
            static_cast<std::uint64_t>(sp.board->cells(Color::kRed) +
                                       sp.board->cells(Color::kBlack)) *
                static_cast<std::uint64_t>(sweeps));
  EXPECT_TRUE(Grid::identical(reference, parallel))
      << "max diff: " << Grid::max_diff(reference, parallel);
  EXPECT_TRUE(res.diagnostics.empty());
}

std::string sor_parity_name(
    const ::testing::TestParamInfo<std::tuple<int, bool, int>>& info) {
  return "w" + std::to_string(std::get<0>(info.param)) +
         (std::get<1>(info.param) ? "_overlap" : "_barrier") + "_s" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SorParity,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),       // workers
                       ::testing::Values(false, true),      // overlap
                       ::testing::Values(1, 3, 6)),         // sweeps
    sor_parity_name);

TEST(Sor, SimulatedOverlapBeatsBarrierDuringRundown) {
  // The paper's introduction example in miniature: P close to cells/phase,
  // idealized (free) management so the pure rundown effect is visible.
  // 30x30 grid -> 392 cells/colour; 392 = 3*128 + 8, so the barrier wastes
  // most of the fourth round of every phase.
  Grid g = make_problem(30, 30);
  SorProgram sp = build_sor_program(g, 1.4, 4);
  sim::Workload wl(5);
  sim::PhaseWorkload pw;
  pw.model = sim::DurationModel::kFixed;
  pw.mean = 100;
  wl.set_phase(0, pw);
  wl.set_phase(1, pw);
  sim::MachineConfig mc;
  mc.workers = 128;

  ExecConfig barrier;
  barrier.overlap = false;
  barrier.grain = 1;
  ExecConfig overlap = barrier;
  overlap.overlap = true;
  overlap.early_serial = true;

  const CostModel free = CostModel::free_of_charge();
  const auto r_b = sim::simulate(sp.program, barrier, free, wl, mc);
  const auto r_o = sim::simulate(sp.program, overlap, free, wl, mc);
  EXPECT_EQ(r_b.granules_executed, r_o.granules_executed);
  EXPECT_LT(r_o.makespan, r_b.makespan);
  EXPECT_GT(r_o.utilization(), r_b.utilization());
}

}  // namespace
}  // namespace pax::casper
