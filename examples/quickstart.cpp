// quickstart — the smallest useful PAX program.
//
// The paper's simplest identity example, as real code:
//
//     DO 100 I=1,N          |  first computational phase
//       B(I)=A(I)           |
//     DO 200 I=1,N          |  second computational phase
//       C(I)=B(I)           |
//
// The identity mapping (I = I) lets granule I of the second phase start as
// soon as granule I of the first completes — no barrier between the phases.
// This example runs both phases on real threads with overlap enabled and
// checks the result.
//
// The example binary links the counting allocator hooks so the run can
// report the control plane's heap traffic (DESIGN.md §10) — production
// binaries simply omit the define and pay nothing.
#define PAX_ALLOC_STATS_IMPLEMENT
#include "common/alloc_stats.hpp"

#include <cstdio>
#include <cstring>
#include <vector>

#include "core/dataflow.hpp"
#include "core/executive.hpp"
#include "obs/trace_export.hpp"
#include "obs/trace_ring.hpp"
#include "runtime/threaded_runtime.hpp"

int main(int argc, char** argv) {
  using namespace pax;
  constexpr GranuleId kN = 1 << 16;

  // `--trace out.trace.json` records the run into per-worker rings and
  // exports a Chrome/Perfetto trace (open at https://ui.perfetto.dev).
  const char* trace_path = nullptr;
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], "--trace") == 0) trace_path = argv[i + 1];

  std::vector<double> a(kN), b(kN), c(kN);
  for (GranuleId i = 0; i < kN; ++i) a[i] = 0.5 * static_cast<double>(i);

  // 1. Define the phases and their data accesses. The access declarations
  //    let the library verify that the identity mapping is legal.
  PhaseProgram program;
  const PhaseId copy_ab =
      program.define_phase(make_phase("copyA", kN).reads("A").writes("B"));
  const PhaseId copy_bc =
      program.define_phase(make_phase("copyB", kN).reads("B").writes("C"));

  // 2. The control stream: DISPATCH copyA ENABLE [copyB/MAPPING=IDENTITY].
  program.dispatch(copy_ab, {EnableClause{"copyB", MappingKind::kIdentity, {}}});
  program.dispatch(copy_bc);
  program.halt();

  // Sanity: the mapping we requested is the one the dataflow implies.
  const MappingAnalysis inferred =
      infer_mapping(program.phase(copy_ab), program.phase(copy_bc));
  std::printf("inferred mapping copyA -> copyB: %s (%s)\n",
              to_string(inferred.kind), inferred.rationale.c_str());

  // 3. Bind the phase bodies and run on a worker pool with overlap.
  rt::BodyTable bodies;
  bodies.set(copy_ab, [&](GranuleRange r, WorkerId) {
    for (GranuleId i = r.lo; i < r.hi; ++i) b[i] = a[i];
  });
  bodies.set(copy_bc, [&](GranuleRange r, WorkerId) {
    for (GranuleId i = r.lo; i < r.hi; ++i) c[i] = b[i];
  });

  ExecConfig config;
  config.overlap = true;  // flip to false for the strict-barrier baseline
  config.grain = 1024;

  rt::RtConfig rt_config;
  rt_config.workers = 4;
  obs::TraceBuffer trace(rt_config.workers);
  if (trace_path != nullptr) rt_config.trace = &trace;
  rt::ThreadedRuntime runtime(program, config, CostModel{}, bodies, rt_config);
  const rt::RtResult result = runtime.run();
  if (trace_path != nullptr) {
    obs::write_chrome_trace(trace, trace_path);
    std::printf("trace             : %s (%llu records, %llu dropped)\n",
                trace_path,
                static_cast<unsigned long long>(trace.total_emitted()),
                static_cast<unsigned long long>(trace.total_dropped()));
  }

  // 4. Verify and report.
  std::size_t wrong = 0;
  for (GranuleId i = 0; i < kN; ++i)
    if (c[i] != a[i]) ++wrong;

  std::printf("granules executed : %llu (expected %llu)\n",
              static_cast<unsigned long long>(result.granules_executed),
              static_cast<unsigned long long>(2ull * kN));
  std::printf("tasks executed    : %llu\n",
              static_cast<unsigned long long>(result.tasks_executed));
  std::printf("wall time         : %.2f ms\n",
              static_cast<double>(result.wall.count()) / 1e6);
  // The paper's headline number: fraction of worker wall-time spent inside
  // phase bodies (kept high through the rundown by overlap + stealing).
  std::printf("utilization       : %.1f%%\n", 100.0 * result.utilization());
  std::printf("steals            : %llu (failed spins: %llu, peak local "
              "queue: %llu)\n",
              static_cast<unsigned long long>(result.steals),
              static_cast<unsigned long long>(result.steal_fail_spins),
              static_cast<unsigned long long>(result.peak_local_queue));
  std::printf("exec lock acq.    : %llu (control %llu + wait %llu)\n",
              static_cast<unsigned long long>(result.exec_lock_acquisitions),
              static_cast<unsigned long long>(result.refill_lock_acquisitions),
              static_cast<unsigned long long>(result.wait_lock_acquisitions));
  // Sharded executive traffic: refills served lock-locally by a shard
  // buffer never touch the control mutex at all.
  std::printf("shards            : %u (buffer hits %llu + sibling %llu, "
              "scattered %llu, hold %.1f us)\n",
              result.shards_used,
              static_cast<unsigned long long>(result.shard_hits),
              static_cast<unsigned long long>(result.shard_sibling_hits),
              static_cast<unsigned long long>(result.shard_scattered),
              static_cast<double>(result.exec_lock_hold_ns) / 1e3);
  // Lock-free/slow-path split (DESIGN.md §13): warm assignments popped from
  // the shard rings with no mutex vs. control sweeps; dry probes and refused
  // pushes show how often the slow path absorbed an edge case.
  std::printf("lock-free handout : %llu ring pops (dry probes %llu, "
              "push overflows %llu, cas retries %llu)\n",
              static_cast<unsigned long long>(result.shard_ring_pops),
              static_cast<unsigned long long>(result.shard_ring_pop_empty),
              static_cast<unsigned long long>(result.shard_ring_push_full),
              static_cast<unsigned long long>(result.shard_ring_cas_retries));
  // Heap traffic of the whole run (alloc_stats hooks): the steady-state
  // scheduling path allocates nothing, so this amortizes toward zero.
  std::printf("heap traffic      : %.4f allocs/granule (%llu allocs, %llu KiB)\n",
              static_cast<double>(result.heap_allocs) /
                  static_cast<double>(result.granules_executed),
              static_cast<unsigned long long>(result.heap_allocs),
              static_cast<unsigned long long>(result.heap_bytes / 1024));
  std::printf("result check      : %s\n", wrong == 0 ? "OK" : "CORRUPT");
  for (const auto& d : result.diagnostics)
    std::printf("diagnostic: %s\n", d.c_str());
  return wrong == 0 ? 0 : 1;
}
