// pax_lang_demo — the paper's language construct, end to end.
//
// Parses a PAX control program using the constructs from the "Language
// Construction" section (DEFINE PHASE ... ENABLE, DISPATCH ... ENABLE with
// interlock, ENABLE/BRANCHINDEPENDENT with a preprocessable branch), shows
// the validator catching a bad program, then compiles and simulates the good
// one.
#include <cstdio>

#include "lang/compiler.hpp"
#include "sim/machine.hpp"

namespace {

// A miniature CASPER-flavoured control stream. The branch after `smooth` is
// independent of the phase's results (it tests the sweep counter), so the
// executive may preprocess it and overlap the right arm.
constexpr const char* kProgram = R"PAX(
# -- phase definitions -------------------------------------------------
DEFINE PHASE relax GRANULES=2048 LINES=61
  READS  field
  WRITES field_new
END

DEFINE PHASE smooth GRANULES=2048 LINES=62
  READS  field_new
  WRITES field
  ENABLE [ residuals/MAPPING=UNIVERSAL, sample/MAPPING=UNIVERSAL ]
END

DEFINE PHASE residuals GRANULES=512 LINES=44
  READS  resid_in
  WRITES resid_out
END

DEFINE PHASE sample GRANULES=256 LINES=44
  WRITES probe
END

# -- control stream ----------------------------------------------------
LET sweep = 0
LABEL top
DISPATCH relax ENABLE [ smooth/MAPPING=IDENTITY ]
DISPATCH smooth ENABLE/BRANCHDEPENDENT
IF IMOD(sweep, 4) != 0 GOTO skip_residuals
DISPATCH residuals
LABEL skip_residuals
DISPATCH sample
SERIAL bump NOCONFLICT SET sweep = sweep + 1
IF sweep < 8 GOTO top
HALT
)PAX";

// Same program with a deliberate interlock violation: ENABLE names a phase
// that cannot follow.
constexpr const char* kBadProgram = R"PAX(
DEFINE PHASE a GRANULES=64
  WRITES X
END
DEFINE PHASE b GRANULES=64
  READS X
END
DEFINE PHASE c GRANULES=64
END
DISPATCH a ENABLE [ c/MAPPING=UNIVERSAL ]
DISPATCH b
HALT
)PAX";

}  // namespace

int main() {
  using namespace pax;
  using namespace pax::lang;

  // 1. The validator rejects the bad program (the paper's interlock).
  std::printf("--- validating a program with a wrong ENABLE target ---\n");
  const CompileResult bad = compile_source(kBadProgram);
  for (const auto& d : bad.diags) std::printf("  %s\n", d.render().c_str());
  std::printf("  compile ok: %s (expected: no)\n\n", bad.ok ? "yes" : "no");

  // 2. Compile the good program.
  std::printf("--- compiling the CASPER-flavoured control stream ---\n");
  const CompileResult good = compile_source(kProgram);
  for (const auto& d : good.diags) std::printf("  %s\n", d.render().c_str());
  if (!good.ok) {
    std::printf("unexpected compile failure\n");
    return 1;
  }
  std::printf("  compiled: %zu phases, %zu program nodes\n\n",
              good.program.phase_count(), good.program.size());

  // 3. Simulate with and without overlap.
  sim::Workload wl(1986);
  sim::PhaseWorkload pw;
  pw.model = sim::DurationModel::kUniform;
  pw.mean = 150;
  pw.spread = 75;
  for (PhaseId p = 0; p < good.program.phase_count(); ++p) wl.set_phase(p, pw);

  sim::MachineConfig mc;
  mc.workers = 48;
  mc.record_intervals = false;

  for (const bool overlap : {false, true}) {
    ExecConfig cfg;
    cfg.overlap = overlap;
    cfg.early_serial = true;
    cfg.grain = 8;
    const auto res = sim::simulate(good.program, cfg, CostModel{}, wl, mc);
    std::printf("%s: makespan %9llu ticks, utilization %5.1f%%, %llu granules\n",
                overlap ? "overlap" : "barrier",
                static_cast<unsigned long long>(res.makespan),
                100.0 * res.utilization(),
                static_cast<unsigned long long>(res.granules_executed));
    for (const auto& d : res.diagnostics) std::printf("  diagnostic: %s\n", d.c_str());
  }
  return 0;
}
