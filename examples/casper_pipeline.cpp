// casper_pipeline — drive the synthetic CASPER workload end to end.
//
// Builds the 22-phase pipeline whose enablement-mapping census matches the
// paper's published measurements, prints the census, then simulates two
// iterations on a 64-processor machine with and without overlap, reporting
// per-phase timing and the management ledger.
#include <cstdio>
#include <iostream>

#include "casper/census.hpp"
#include "casper/pipeline.hpp"
#include "sim/machine.hpp"

int main() {
  using namespace pax;
  using namespace pax::casper;

  CasperOptions opt;
  opt.iterations = 2;
  const CasperPipeline pipe = build_casper_pipeline(opt);

  const Census census = take_census(pipe);
  census_table(pipe, census).print(std::cout);

  auto run = [&](bool overlap) {
    ExecConfig cfg;
    cfg.overlap = overlap;
    cfg.early_serial = true;
    cfg.grain = 8;
    cfg.indirect_subset = 64;
    sim::MachineConfig mc;
    mc.workers = 64;
    mc.record_intervals = false;
    return sim::simulate(pipe.program, cfg, CostModel{}, pipe.workload, mc);
  };
  const auto r_b = run(false);
  const auto r_o = run(true);

  std::printf("\n64 simulated processors, 2 iterations of the 22-phase cycle:\n");
  std::printf("  barrier : makespan %9llu, utilization %5.1f%%, comp:mgmt %.0f\n",
              static_cast<unsigned long long>(r_b.makespan),
              100.0 * r_b.utilization(), r_b.mgmt_ratio());
  std::printf("  overlap : makespan %9llu, utilization %5.1f%%, comp:mgmt %.0f\n",
              static_cast<unsigned long long>(r_o.makespan),
              100.0 * r_o.utilization(), r_o.mgmt_ratio());
  std::printf("  speedup : %.3fx\n\n",
              static_cast<double>(r_b.makespan) / static_cast<double>(r_o.makespan));

  // Per-run lifecycle of the first iteration (overlap run): creation during
  // the predecessor (the overlap window), opening, completion.
  Table t("first-iteration run lifecycle (overlap on)");
  t.header({"phase", "created", "opened", "first task", "completed"});
  std::size_t shown = 0;
  for (const auto& rec : r_o.runs) {
    if (rec.phase == kNoPhase || shown >= pipe.info.size()) continue;
    ++shown;
    t.row({rec.phase_name, Table::count(rec.created), Table::count(rec.opened),
           rec.first_task == kTimeNever ? "-" : Table::count(rec.first_task),
           rec.completed == kTimeNever ? "-" : Table::count(rec.completed)});
  }
  t.print(std::cout);
  std::printf(
      "\nA phase whose 'first task' precedes its 'opened' time was running\n"
      "during its predecessor's rundown — the paper's overlap in action.\n");
  return 0;
}
