// pool_server — the pool runtime as a multi-tenant serving substrate.
//
// A long-lived 4-worker pool receives a stream of mixed jobs, the way a
// parallel machine serves many independent programs: real CASPER pipelines,
// checkerboard SOR solves (cross-checked bitwise against the sequential
// solver), and synthetic tail-heavy loops, submitted with different
// priorities while earlier jobs are still running. One queued job is
// cancelled mid-stream. Per-job stats print as the jobs finish; pool totals
// (utilization, rotations, and the per-job-sum cross-check) print at
// shutdown.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <vector>

#include "casper/pipeline.hpp"
#include "casper/sor.hpp"
#include "common/table.hpp"
#include "obs/trace_export.hpp"
#include "obs/trace_ring.hpp"
#include "pool/pool_runtime.hpp"

int main(int argc, char** argv) {
  using namespace pax;
  using namespace pax::casper;

  // `--trace out.trace.json` records the whole job stream into per-worker
  // rings and exports a Chrome/Perfetto trace; each job gets its own
  // process lane (open at https://ui.perfetto.dev).
  //
  // Strict parse: the old `i + 1 < argc` loop skipped the *last* argument
  // entirely, so a trailing `--trace` (missing its value) and any unknown
  // flag were silently ignored — the run proceeded untraced and the user
  // only found out when the trace file never appeared.
  // `--inject-fault` adds a synthetic job whose body throws persistently on
  // one granule: the exception barrier contains the throw, the retry budget
  // exhausts, and the job lands in JobState::kFailed with its error summary
  // printed — while every other tenant completes untouched. A contained,
  // expected failure, so the demo still exits 0.
  const char* trace_path = nullptr;
  bool inject_fault = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "pool_server: --trace requires a file path\n");
        std::fprintf(stderr,
                     "usage: %s [--trace out.trace.json] [--inject-fault]\n",
                     argv[0]);
        return 2;
      }
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--inject-fault") == 0) {
      inject_fault = true;
    } else {
      std::fprintf(stderr, "pool_server: unknown argument '%s'\n", argv[i]);
      std::fprintf(stderr,
                   "usage: %s [--trace out.trace.json] [--inject-fault]\n",
                   argv[0]);
      return 2;
    }
  }

  obs::TraceBuffer trace(4);
  pool::PoolRuntime pool({.workers = 4,
                          .batch = 4,
                          .policy = pool::SchedPolicy::kPriority,
                          .trace = trace_path != nullptr ? &trace : nullptr});

  struct Submitted {
    const char* kind;
    pool::JobHandle handle;
  };
  std::vector<Submitted> stream;

  ExecConfig cfg;
  cfg.grain = 8;
  cfg.early_serial = true;

  // --- two CASPER pipeline jobs (the paper's 22-phase workload) -----------
  const CasperPipeline pipe = build_casper_pipeline({});
  CasperBodies casper_a = make_casper_bodies(pipe, 60);
  CasperBodies casper_b = make_casper_bodies(pipe, 60);
  stream.push_back(
      {"casper", pool.submit(pipe.program, casper_a.bodies, cfg, /*prio=*/1)});
  stream.push_back(
      {"casper", pool.submit(pipe.program, casper_b.bodies, cfg, /*prio=*/0)});

  // --- two SOR solves, verified against the sequential solver -------------
  constexpr std::uint32_t kNx = 36, kNy = 36, kSweeps = 12;
  constexpr double kOmega = 1.5;
  auto fresh = [&] {
    Grid g(kNx, kNy, 0.0);
    g.set_boundary(/*hot=*/100.0, /*cold=*/0.0);
    return g;
  };
  Grid reference = fresh();
  solve_sequential(reference, kOmega, kSweeps);

  // unique_ptr elements: submitted programs must keep stable addresses while
  // the vectors grow (jobs hold references until they complete).
  std::vector<std::unique_ptr<Grid>> sor_grids;
  std::vector<std::unique_ptr<SorProgram>> sor_programs;
  ExecConfig sor_cfg;
  sor_cfg.early_serial = true;
  sor_cfg.grain = 64;
  sor_cfg.indirect_subset = 128;
  for (int i = 0; i < 2; ++i) {
    sor_grids.push_back(std::make_unique<Grid>(fresh()));
    sor_programs.push_back(std::make_unique<SorProgram>(
        build_sor_program(*sor_grids.back(), kOmega, kSweeps)));
    stream.push_back({"sor", pool.submit(sor_programs.back()->program,
                                         sor_programs.back()->bodies, sor_cfg,
                                         /*prio=*/2)});
  }

  // --- a synthetic job submitted and cancelled before it opens ------------
  PhaseProgram doomed;
  const PhaseId doomed_phase = doomed.define_phase(make_phase("doomed", 64).writes("D"));
  doomed.dispatch(doomed_phase);
  doomed.halt();
  rt::BodyTable doomed_bodies;
  doomed_bodies.set(doomed_phase, [](GranuleRange, WorkerId) {});
  pool::JobHandle cancelled = pool.submit(doomed, doomed_bodies, cfg, /*prio=*/-5);
  // The cancel races worker adoption by design; a rotating worker may open
  // the job first, in which case it legitimately runs to completion.
  const bool cancel_won = cancelled.cancel();

  // --- optionally, a tenant with a persistent bug (--inject-fault) ---------
  PhaseProgram buggy;
  const PhaseId buggy_phase =
      buggy.define_phase(make_phase("buggy", 48).writes("F"));
  buggy.dispatch(buggy_phase);
  buggy.halt();
  rt::BodyTable buggy_bodies;
  buggy_bodies.set(buggy_phase, [](GranuleRange r, WorkerId) {
    for (GranuleId g = r.lo; g < r.hi; ++g)
      if (g == 17) throw std::runtime_error("demo: granule 17 always throws");
  });
  pool::JobHandle faulty;
  if (inject_fault) {
    ExecConfig buggy_cfg;
    buggy_cfg.grain = 4;
    buggy_cfg.max_granule_retries = 2;
    faulty = pool.submit(buggy, buggy_bodies, buggy_cfg, /*prio=*/1);
  }

  // --- wait for the stream and report as jobs land -------------------------
  Table t("pool_server — job stream");
  t.header({"job", "kind", "state", "granules", "busy ms", "queued ms",
            "span ms"});
  auto row = [&t](std::uint64_t id, const char* kind, pool::JobHandle& h) {
    const pool::JobStats js = h.stats();
    t.row({std::to_string(id), kind, to_string(h.state()),
           Table::count(js.granules),
           Table::num(static_cast<double>(js.busy.count()) / 1e6, 2),
           Table::num(static_cast<double>(js.queued.count()) / 1e6, 2),
           Table::num(static_cast<double>(js.span.count()) / 1e6, 2)});
  };

  bool ok = true;
  for (auto& s : stream) ok &= s.handle.wait() == pool::JobState::kComplete;
  // The buggy tenant is EXPECTED to fail — contained by the barrier, retried
  // to budget, then degraded to kFailed with its siblings unharmed.
  if (faulty.valid()) ok &= faulty.wait() == pool::JobState::kFailed;
  pool.shutdown();

  for (auto& s : stream) row(s.handle.id(), s.kind, s.handle);
  row(cancelled.id(), "synthetic", cancelled);
  if (faulty.valid()) row(faulty.id(), "buggy", faulty);
  t.print(std::cout);

  if (faulty.valid()) {
    const pool::JobStats js = faulty.stats();
    std::printf(
        "job %llu failed (contained): %s — %llu faults, %llu retries, %llu "
        "granules poisoned; other tenants unaffected\n",
        static_cast<unsigned long long>(faulty.id()), js.fault_summary.c_str(),
        static_cast<unsigned long long>(js.granule_faults),
        static_cast<unsigned long long>(js.granule_retries),
        static_cast<unsigned long long>(js.granules_poisoned));
  }

  // SOR grids must match the sequential solver bitwise.
  for (const auto& g : sor_grids)
    ok &= Grid::identical(*g, reference);
  std::printf("sor grids vs sequential solver: %s\n",
              ok ? "BITWISE IDENTICAL" : "DIFFER");
  ok &= cancelled.state() == (cancel_won ? pool::JobState::kCancelled
                                         : pool::JobState::kComplete);

  const pool::PoolStats ps = pool.stats();
  // A pre-open cancel contributes 0; a mid-run cancel contributes the
  // granules it actually executed before draining — either way the per-job
  // sum matches the pool total.
  std::uint64_t job_sum = cancelled.stats().granules;
  if (faulty.valid()) job_sum += faulty.stats().granules;
  for (auto& s : stream) job_sum += s.handle.stats().granules;
  std::printf(
      "pool: %llu jobs (%llu cancelled), %llu granules (per-job sum %llu), "
      "%llu rotations, utilization %.1f%%\n",
      static_cast<unsigned long long>(ps.jobs_submitted),
      static_cast<unsigned long long>(ps.jobs_cancelled),
      static_cast<unsigned long long>(ps.granules_executed),
      static_cast<unsigned long long>(job_sum),
      static_cast<unsigned long long>(ps.rotations), 100.0 * ps.utilization());
  ok &= job_sum == ps.granules_executed;
  if (trace_path != nullptr) {
    obs::write_chrome_trace(trace, trace_path);
    std::printf("trace: %s (%llu records, %llu dropped)\n", trace_path,
                static_cast<unsigned long long>(trace.total_emitted()),
                static_cast<unsigned long long>(trace.total_dropped()));
  }
  return ok ? 0 : 1;
}
