// checkerboard_sor — the paper's motivating application.
//
// Solves the potential (Laplace) problem with checkerboard successive
// over-relaxation. Red and black half-sweeps alternate as computational
// phases; a cell of the next colour is enabled as soon as its four
// neighbours of the current colour have been updated — the seam relation,
// expressed through the library's reverse-indirect mapping with a static
// stencil.
//
// Runs three ways and cross-checks them:
//   1. sequential reference,
//   2. threaded strict-barrier,
//   3. threaded with phase overlap (including across sweeps),
// then reproduces the utilization story on the simulated multiprocessor.
#include <cstdio>

#include "casper/sor.hpp"
#include "runtime/threaded_runtime.hpp"
#include "sim/machine.hpp"

int main() {
  using namespace pax;
  using namespace pax::casper;

  constexpr std::uint32_t kNx = 68, kNy = 68;
  constexpr double kOmega = 1.6;
  constexpr std::uint32_t kSweeps = 500;    // convergence (sequential)
  constexpr std::uint32_t kCheckSweeps = 40;  // threaded cross-check

  auto fresh = [] {
    Grid g(kNx, kNy, 0.0);
    g.set_boundary(/*hot=*/100.0, /*cold=*/0.0);
    return g;
  };

  // 1. Sequential references: a short one for the threaded cross-check and
  //    a long one for convergence.
  Grid check_reference = fresh();
  solve_sequential(check_reference, kOmega, kCheckSweeps);
  Grid reference = fresh();
  solve_sequential(reference, kOmega, kSweeps);

  // 2./3. Threaded runs, verified bitwise against the sequential solver.
  auto run_threaded = [&](bool overlap) {
    Grid g = fresh();
    SorProgram sp = build_sor_program(g, kOmega, kCheckSweeps);
    ExecConfig cfg;
    cfg.overlap = overlap;
    cfg.early_serial = true;  // overlap across sweeps through the loop branch
    cfg.grain = 512;
    cfg.indirect_subset = 256;
    rt::ThreadedRuntime runtime(sp.program, cfg, CostModel{}, sp.bodies, {4});
    const rt::RtResult res = runtime.run();
    std::printf("threaded %-8s : %8.2f ms, %llu granules, grids %s\n",
                overlap ? "overlap" : "barrier",
                static_cast<double>(res.wall.count()) / 1e6,
                static_cast<unsigned long long>(res.granules_executed),
                Grid::identical(g, check_reference) ? "BITWISE IDENTICAL"
                                                    : "DIFFER");
    return Grid::identical(g, check_reference);
  };
  const bool ok_barrier = run_threaded(false);
  const bool ok_overlap = run_threaded(true);

  std::printf("centre potential  : %.6f (expect ~25 for hot-top square)\n",
              reference.at(kNx / 2, kNy / 2));

  // 4. The utilization story at machine scale, on the simulator.
  {
    Grid g = fresh();
    SorProgram sp = build_sor_program(g, kOmega, 8);
    sim::Workload wl(7);
    sim::PhaseWorkload pw;
    pw.model = sim::DurationModel::kFixed;
    pw.mean = 100;
    wl.set_phase(0, pw);
    wl.set_phase(1, pw);
    sim::MachineConfig mc;
    mc.workers = 512;  // 2178 cells/colour: 4 rounds + 130-cell leftover

    ExecConfig barrier;
    barrier.overlap = false;
    ExecConfig overlap = barrier;
    overlap.overlap = true;
    overlap.early_serial = true;

    const CostModel free = CostModel::free_of_charge();
    const auto r_b = sim::simulate(sp.program, barrier, free, wl, mc);
    const auto r_o = sim::simulate(sp.program, overlap, free, wl, mc);
    std::printf("\nsimulated 512-processor machine, 8 sweeps:\n");
    std::printf("  barrier : makespan %8llu ticks, utilization %5.1f%%\n",
                static_cast<unsigned long long>(r_b.makespan),
                100.0 * r_b.utilization());
    std::printf("  overlap : makespan %8llu ticks, utilization %5.1f%%\n",
                static_cast<unsigned long long>(r_o.makespan),
                100.0 * r_o.utilization());
  }
  return ok_barrier && ok_overlap ? 0 : 1;
}
