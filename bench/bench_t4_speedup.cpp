// bench_t4_speedup — Experiment T4.
//
// End-to-end effect of phase overlap on the two workloads the paper is
// about: the synthetic CASPER pipeline (22 phases, all five mapping classes)
// and the checkerboard SOR solver, on the simulated multiprocessor; plus a
// real-thread run of each as a wall-clock sanity check.
#include <iostream>

#include "bench_util.hpp"
#include "casper/pipeline.hpp"
#include "casper/sor.hpp"
#include "runtime/threaded_runtime.hpp"

namespace {

pax::sim::SimResult run_casper(const pax::casper::CasperPipeline& pipe,
                               bool overlap, bool early_serial,
                               std::uint32_t workers) {
  pax::ExecConfig cfg;
  cfg.grain = 8;
  cfg.overlap = overlap;
  cfg.early_serial = early_serial;
  cfg.indirect_subset = 64;
  pax::sim::MachineConfig mc;
  mc.workers = workers;
  mc.record_intervals = false;
  return pax::sim::simulate(pipe.program, cfg, pax::CostModel{}, pipe.workload, mc);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pax;
  using namespace pax::bench;
  JsonReport json = JsonReport::from_args(argc, argv);
  print_banner("T4 — end-to-end speedup from phase overlap",
               "overlapping provides additional ready-to-compute work during "
               "each computational rundown, reducing elapsed wall-clock time");

  // --- CASPER pipeline on the simulator --------------------------------------
  {
    casper::CasperOptions opt;
    opt.iterations = 2;
    const casper::CasperPipeline pipe = casper::build_casper_pipeline(opt);
    Table t("T4a — synthetic CASPER pipeline (simulator, 2 iterations)");
    t.header({"workers", "barrier", "overlap", "overlap+early-serial",
              "speedup", "+early"});
    for (std::uint32_t workers : {16u, 32u, 64u, 96u}) {
      const auto r_b = run_casper(pipe, false, false, workers);
      const auto r_o = run_casper(pipe, true, false, workers);
      const auto r_e = run_casper(pipe, true, true, workers);
      const std::string config = "casper workers=" + std::to_string(workers);
      json.add("t4_speedup", "overlap_speedup",
               static_cast<double>(r_b.makespan) / static_cast<double>(r_o.makespan),
               config);
      json.add("t4_speedup", "overlap_early_speedup",
               static_cast<double>(r_b.makespan) / static_cast<double>(r_e.makespan),
               config);
      t.row({std::to_string(workers), Table::count(r_b.makespan),
             Table::count(r_o.makespan), Table::count(r_e.makespan),
             fixed(static_cast<double>(r_b.makespan) /
                       static_cast<double>(r_o.makespan),
                   3) +
                 "x",
             fixed(static_cast<double>(r_b.makespan) /
                       static_cast<double>(r_e.makespan),
                   3) +
                 "x"});
    }
    t.print(std::cout);
    std::printf(
        "\n'+early' adds early execution of non-conflicting serial actions\n"
        "(the paper's extended-effort feature lifting overlappability >90%%).\n\n");
  }

  // --- SOR on the simulator ---------------------------------------------------
  {
    casper::Grid g(30, 30, 0.0);
    g.set_boundary(100.0, 0.0);
    casper::SorProgram sp = casper::build_sor_program(g, 1.4, 6);
    sim::Workload wl(5);
    sim::PhaseWorkload pw;
    pw.model = sim::DurationModel::kFixed;
    pw.mean = 200;
    wl.set_phase(0, pw);
    wl.set_phase(1, pw);

    Table t("T4b — checkerboard SOR 30x30, 6 sweeps (simulator, free mgmt)");
    t.header({"workers", "barrier", "overlap", "speedup", "barrier util",
              "overlap util"});
    for (std::uint32_t workers : {32u, 64u, 128u, 256u}) {
      sim::MachineConfig mc;
      mc.workers = workers;
      ExecConfig barrier;
      barrier.overlap = false;
      barrier.grain = 1;
      ExecConfig overlap = barrier;
      overlap.overlap = true;
      overlap.early_serial = true;
      const CostModel free = CostModel::free_of_charge();
      const auto r_b = sim::simulate(sp.program, barrier, free, wl, mc);
      const auto r_o = sim::simulate(sp.program, overlap, free, wl, mc);
      json.add("t4_speedup", "sor_overlap_speedup",
               static_cast<double>(r_b.makespan) / static_cast<double>(r_o.makespan),
               "sor workers=" + std::to_string(workers));
      t.row({std::to_string(workers), Table::count(r_b.makespan),
             Table::count(r_o.makespan),
             fixed(static_cast<double>(r_b.makespan) /
                       static_cast<double>(r_o.makespan),
                   3) +
                 "x",
             Table::pct(r_b.utilization(), 1), Table::pct(r_o.utilization(), 1)});
    }
    t.print(std::cout);
  }

  // --- real threads (hardware-scale sanity check) -----------------------------
  {
    const auto hw = std::max(2u, std::min(8u, std::thread::hardware_concurrency()));
    casper::CasperOptions opt;
    opt.iterations = 1;
    const casper::CasperPipeline pipe = casper::build_casper_pipeline(opt);

    Table t("T4c — real std::jthread runs (wall clock)");
    t.header({"workload", "workers", "barrier ms", "overlap ms", "speedup"});

    {
      casper::CasperBodies b1 = casper::make_casper_bodies(pipe, 60);
      ExecConfig barrier;
      barrier.overlap = false;
      barrier.grain = 16;
      rt::ThreadedRuntime rt_b(pipe.program, barrier, CostModel{}, b1.bodies, {hw});
      const auto res_b = rt_b.run();

      casper::CasperBodies b2 = casper::make_casper_bodies(pipe, 60);
      ExecConfig overlap = barrier;
      overlap.overlap = true;
      overlap.early_serial = true;
      overlap.indirect_subset = 64;
      rt::ThreadedRuntime rt_o(pipe.program, overlap, CostModel{}, b2.bodies, {hw});
      const auto res_o = rt_o.run();

      json.add("t4_speedup", "rt_fine_overlap_speedup",
               static_cast<double>(res_b.wall.count()) /
                   static_cast<double>(res_o.wall.count()),
               "casper-fine workers=" + std::to_string(hw));
      t.row({"CASPER fine-grain (mgmt-bound)", std::to_string(hw),
             fixed(static_cast<double>(res_b.wall.count()) / 1e6, 1),
             fixed(static_cast<double>(res_o.wall.count()) / 1e6, 1),
             fixed(static_cast<double>(res_b.wall.count()) /
                       static_cast<double>(res_o.wall.count()),
                   3) +
                 "x"});
    }
    {
      // The checkerboard SOR body is ~5 flops per cell — far below this
      // host's thread-wake latency, so its wall clock is scheduler noise;
      // the bitwise-parity tests cover it instead. A second, heavier CASPER
      // configuration stands in as the second real-thread workload.
      casper::CasperBodies b1 = casper::make_casper_bodies(pipe, 160);
      ExecConfig barrier;
      barrier.overlap = false;
      barrier.grain = 32;
      rt::ThreadedRuntime rt_b(pipe.program, barrier, CostModel{}, b1.bodies, {hw});
      const auto res_b = rt_b.run();

      casper::CasperBodies b2 = casper::make_casper_bodies(pipe, 160);
      ExecConfig overlap = barrier;
      overlap.overlap = true;
      overlap.early_serial = true;
      overlap.indirect_subset = 64;
      rt::ThreadedRuntime rt_o(pipe.program, overlap, CostModel{}, b2.bodies, {hw});
      const auto res_o = rt_o.run();

      json.add("t4_speedup", "rt_coarse_overlap_speedup",
               static_cast<double>(res_b.wall.count()) /
                   static_cast<double>(res_o.wall.count()),
               "casper-coarse workers=" + std::to_string(hw));
      t.row({"CASPER coarse (compute-bound)", std::to_string(hw),
             fixed(static_cast<double>(res_b.wall.count()) / 1e6, 1),
             fixed(static_cast<double>(res_o.wall.count()) / 1e6, 1),
             fixed(static_cast<double>(res_b.wall.count()) /
                       static_cast<double>(res_o.wall.count()),
                   3) +
                 "x"});
    }
    t.print(std::cout);
    std::printf(
        "\nReal threads, %u workers. The fine-grain row deliberately sits below\n"
        "this host's synchronisation latency: overlap's extra management loses,\n"
        "the paper's computation:management worry made concrete. The coarse row\n"
        "amortises it and overlap wins. Scale studies live in the simulator\n"
        "sections above.\n",
        hw);
  }
  return 0;
}
