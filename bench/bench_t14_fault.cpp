// bench_t14_fault — Experiment T14.
//
// Fault containment under load (DESIGN.md §15): the exception barrier, the
// executive's retry/poison machinery and the pool's kFailed degradation are
// only worth shipping if they are (a) free when nothing faults and (b) cheap
// when something does. This bench runs the shared T9 protocol workload
// (4096-granule identity-chained phases, grain 32, batch 16 — the same
// program bench_t9/t10/t12 gate on) as a stream of pool jobs and gates:
//
//   1. goodput with 1% seeded transient faults (each chosen granule throws
//      once, then succeeds on retry) stays >= 0.9x the fault-free run — the
//      containment machinery costs overlap, not collapse;
//   2. the fault-free warm path stays at the t10 allocation bar: the barrier
//      (try/catch + per-worker fault buffers + watchdog exec cells) must not
//      put heap traffic or measurable cost back into the handout loop;
//   3. every injected fault is accounted: faults == injected throws,
//      retries == faults, zero poisoned granules, zero failed jobs, zero
//      process aborts — and the retry work-inflation is reported (busy-time
//      ratio of the faulty arm over the clean arm).
//
// --json emits BENCH_t14.json. --check runs a reduced accounting sweep on
// both shard engines (plus a poison case driving one job to kFailed) and
// exits 0/1; the TSAN CI job runs this mode.
#define PAX_ALLOC_STATS_IMPLEMENT
#include "common/alloc_stats.hpp"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "pool/pool_runtime.hpp"

namespace {

using namespace pax;
using namespace pax::bench;
using Clock = std::chrono::steady_clock;
using std::chrono::nanoseconds;

constexpr std::uint32_t kWorkers = 4;
constexpr std::uint32_t kPhases = 2;

/// Seeded per-job transient-fault plan over the T9 program's 2 x 4096
/// granules: each selected granule throws on its first attempt and succeeds
/// on the retry (CAS-decremented budget, so exactly one throw per site
/// regardless of which worker retries it).
struct FaultPlan {
  std::vector<std::atomic<std::uint32_t>> budget;
  std::atomic<std::uint64_t> injected{0};
  std::uint64_t planned = 0;

  FaultPlan(std::uint64_t seed, std::uint32_t permille)
      : budget(kPhases * kT9Granules) {
    for (std::size_t i = 0; i < budget.size(); ++i) {
      std::uint64_t s = seed ^ (0x9E3779B97F4A7C15ULL * (i + 1));
      const bool hit = permille > 0 && splitmix64(s) % 1000 < permille;
      budget[i].store(hit ? 1 : 0, std::memory_order_relaxed);
      planned += hit ? 1 : 0;
    }
  }

  bool should_throw(std::uint32_t phase, GranuleId g) {
    auto& cell = budget[phase * kT9Granules + g];
    std::uint32_t cur = cell.load(std::memory_order_relaxed);
    while (cur > 0) {
      if (cell.compare_exchange_weak(cur, cur - 1, std::memory_order_relaxed)) {
        injected.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
    return false;
  }
};

struct T14Job {
  PhaseProgram prog;
  rt::BodyTable bodies;
};

/// A T9-shaped two-phase identity program (`n` = kT9Granules is the shared
/// protocol; the alloc probe scales `n` to difference out per-job setup)
/// with the fault check layered in front of the work. The check walks the
/// whole range BEFORE any spin — validate-then-work, the same discipline as
/// the test harness — so a faulted attempt aborts before it buys anything
/// and the retry's re-execution is pure recovery, not duplicated prefix
/// work. `plan` null = the fault-free arm: the check is one untaken branch,
/// both arms run the same body code. `t9_cost` selects the protocol's ~6x
/// ramped granule cost; the alloc probe runs flat and cheap instead.
T14Job build_job(FaultPlan* plan, GranuleId n, bool t9_cost) {
  T14Job j;
  const PhaseId a = j.prog.define_phase(make_phase("a", n).writes("A"));
  const PhaseId b =
      j.prog.define_phase(make_phase("b", n).reads("A").writes("B"));
  j.prog.dispatch(a, {EnableClause{"b", MappingKind::kIdentity, {}}});
  j.prog.dispatch(b);
  j.prog.halt();

  auto body_of = [plan, t9_cost](std::uint32_t phase) {
    return [plan, t9_cost, phase](GranuleRange r, WorkerId) {
      if (plan != nullptr)
        for (GranuleId g = r.lo; g < r.hi; ++g)
          if (plan->should_throw(phase, g))
            throw std::runtime_error("t14 injected fault");
      for (GranuleId g = r.lo; g < r.hi; ++g)
        spin(t9_cost ? 1500 + static_cast<std::uint32_t>(g) * 2 : 200);
    };
  };
  j.bodies.set(a, body_of(0));
  j.bodies.set(b, body_of(1));
  return j;
}

ExecConfig exec_config() {
  ExecConfig cfg;
  cfg.grain = kT9Grain;
  // Attempt counts bump range-wide per fault, so colocated fail-once sites
  // in one grain-sized range compound; a budget past the grain means a
  // transient plan can never poison (<= kT9Grain sites per range).
  cfg.max_granule_retries = 2 * kT9Grain;
  return cfg;
}

pool::PoolConfig pool_config(bool lockfree) {
  pool::PoolConfig pc;
  pc.workers = kWorkers;
  pc.batch = kT9Batch;
  pc.lockfree = lockfree;
  return pc;
}

struct ArmResult {
  double elapsed_s = 0.0;
  std::uint64_t granules = 0;
  std::uint64_t injected = 0;
  std::uint64_t faults = 0;
  std::uint64_t retries = 0;
  std::uint64_t poisoned = 0;
  nanoseconds busy{0};
  double goodput = 0.0;  ///< granules per second through the pool
  double warm_allocs_per_granule = 0.0;
  bool ok = true;
};

/// One arm: `n_jobs` T9-protocol jobs streamed through a fresh pool, with
/// `fault_permille`/1000 of the granules throwing once. The alloc window
/// opens after a warm-up job, so one-time costs (worker startup, first-touch
/// queue/ring reserves, per-job program machinery already measured by t13)
/// do not pollute the no-fault-barrier gate.
ArmResult run_arm(std::size_t n_jobs, std::uint32_t fault_permille,
                  bool lockfree, std::uint64_t seed) {
  ArmResult r;
  pool::PoolRuntime pool(pool_config(lockfree));

  {
    T14Job warm = build_job(nullptr, kT9Granules, /*t9_cost=*/true);
    pool.submit(warm.prog, warm.bodies, exec_config()).wait();
  }
  const AllocTotals proc0 = alloc_stats::totals();
  const AllocTotals gen0 = alloc_stats::thread_totals();

  std::vector<std::unique_ptr<FaultPlan>> plans;
  std::vector<std::unique_ptr<T14Job>> jobs;  // stable addresses for borrow
  std::vector<pool::JobHandle> handles;
  for (std::size_t i = 0; i < n_jobs; ++i) {
    FaultPlan* plan = nullptr;
    if (fault_permille > 0) {
      plans.push_back(std::make_unique<FaultPlan>(seed + i, fault_permille));
      plan = plans.back().get();
    }
    jobs.push_back(
        std::make_unique<T14Job>(build_job(plan, kT9Granules, /*t9_cost=*/true)));
  }
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < n_jobs; ++i)
    handles.push_back(pool.submit(jobs[i]->prog, jobs[i]->bodies, exec_config()));
  pool.drain();
  r.elapsed_s =
      static_cast<double>((Clock::now() - t0).count()) / 1e9;
  pool.shutdown();
  const AllocTotals proc1 = alloc_stats::totals();
  const AllocTotals gen1 = alloc_stats::thread_totals();

  for (std::size_t i = 0; i < n_jobs; ++i) {
    if (handles[i].state() != pool::JobState::kComplete) r.ok = false;
    const pool::JobStats js = handles[i].stats();
    r.granules += js.granules;
    r.faults += js.granule_faults;
    r.retries += js.granule_retries;
    r.poisoned += js.granules_poisoned;
    r.busy += js.busy;
    if (js.granules != kT9Total) r.ok = false;
  }
  for (const auto& p : plans) r.injected += p->injected.load();
  // Every fault accounted: the barrier counted exactly the injected throws,
  // each one retried, none poisoned.
  if (r.faults != r.injected || r.retries != r.injected || r.poisoned != 0)
    r.ok = false;
  const std::uint64_t worker_allocs =
      (proc1.allocs - proc0.allocs) - (gen1.allocs - gen0.allocs);
  if (r.granules > 0)
    r.warm_allocs_per_granule =
        static_cast<double>(worker_allocs) / static_cast<double>(r.granules);
  r.goodput = static_cast<double>(r.granules) / r.elapsed_s;
  return r;
}

/// The t10 warm-allocation bar with the barrier in place. Gross worker-plane
/// allocs/granule of a job stream include each job's one-time open cost
/// (executive start, buffer growth, program machinery) — bench_t13 measured
/// that; what T14 must pin is that the *handout + barrier* path allocates
/// nothing new. Same differencing trick as t13: run the same job count at
/// two granule counts (both past buffer-growth saturation) and divide the
/// alloc delta by the granule delta — per-job setup cancels, leaving the
/// marginal warm path: carve -> ring -> local queue -> try/catch body ->
/// exec-cell stamps -> retire.
double marginal_warm_allocs(std::size_t n_jobs, GranuleId n_small,
                            GranuleId n_large) {
  auto worker_allocs = [&](GranuleId n, std::uint64_t* granules) {
    const T14Job j = build_job(nullptr, n, /*t9_cost=*/false);
    pool::PoolRuntime pool(pool_config(/*lockfree=*/true));
    {
      std::vector<pool::JobHandle> warm;
      for (int i = 0; i < 4; ++i)
        warm.push_back(pool.submit(j.prog, j.bodies, exec_config()));
      pool.drain();
    }
    const AllocTotals proc0 = alloc_stats::totals();
    const AllocTotals gen0 = alloc_stats::thread_totals();
    std::vector<pool::JobHandle> handles;
    handles.reserve(n_jobs);
    for (std::size_t i = 0; i < n_jobs; ++i)
      handles.push_back(pool.submit(j.prog, j.bodies, exec_config()));
    pool.drain();
    pool.shutdown();
    const AllocTotals proc1 = alloc_stats::totals();
    const AllocTotals gen1 = alloc_stats::thread_totals();
    *granules = 2ull * n * n_jobs;
    return (proc1.allocs - proc0.allocs) - (gen1.allocs - gen0.allocs);
  };
  std::uint64_t g_small = 0, g_large = 0;
  const std::uint64_t a_small = worker_allocs(n_small, &g_small);
  const std::uint64_t a_large = worker_allocs(n_large, &g_large);
  if (a_large <= a_small) return 0.0;  // per-job noise outweighed the delta
  return static_cast<double>(a_large - a_small) /
         static_cast<double>(g_large - g_small);
}

// --- --check: reduced accounting sweep for the TSAN CI job -----------------

bool check_engine(bool lockfree) {
  bool ok = true;
  auto fail = [&](const char* what) {
    std::fprintf(stderr, "check(%s): %s\n", lockfree ? "lockfree" : "mutex",
                 what);
    ok = false;
  };
  // Transient arm: 1% faults across two concurrent jobs, all must complete
  // with exact accounting.
  const ArmResult r = run_arm(/*n_jobs=*/2, /*fault_permille=*/10, lockfree,
                              /*seed=*/0x7140BEEFULL);
  if (!r.ok) fail("transient arm: completion or accounting drift");
  if (r.injected == 0) fail("transient arm: plan injected nothing");

  // Poison arm: one granule throws forever under a retry budget of 1 — the
  // job must land in kFailed with the fault recorded, while a clean sibling
  // sharing the pool completes untouched.
  pool::PoolRuntime pool(pool_config(lockfree));
  FaultPlan always(/*seed=*/1, /*permille=*/0);
  always.budget[7].store(~std::uint32_t{0}, std::memory_order_relaxed);
  T14Job faulty = build_job(&always, kT9Granules, /*t9_cost=*/true);
  T14Job clean = build_job(nullptr, kT9Granules, /*t9_cost=*/true);
  ExecConfig ec = exec_config();
  ec.max_granule_retries = 1;
  pool::JobHandle fh = pool.submit(faulty.prog, faulty.bodies, ec);
  pool::JobHandle ch = pool.submit(clean.prog, clean.bodies, exec_config());
  if (fh.wait() != pool::JobState::kFailed) fail("poison arm: not kFailed");
  if (ch.wait() != pool::JobState::kComplete) fail("poison arm: sibling hurt");
  pool.shutdown();
  const pool::JobStats js = fh.stats();
  if (js.granules_poisoned == 0) fail("poison arm: nothing poisoned");
  if (js.fault_summary.empty()) fail("poison arm: no fault summary");
  const pool::PoolStats ps = pool.stats();
  if (ps.jobs_failed != 1) fail("poison arm: jobs_failed != 1");
  if (ps.jobs_completed != 1) fail("poison arm: jobs_completed != 1");
  return ok;
}

bool check_mode() {
  bool ok = true;
  ok = check_engine(/*lockfree=*/true) && ok;
  ok = check_engine(/*lockfree=*/false) && ok;
  std::printf("t14 --check: %s\n", ok ? "PASS" : "FAIL");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--check") == 0) return check_mode() ? 0 : 1;

  JsonReport json = JsonReport::from_args(argc, argv);
  print_banner("T14 — fault containment under load",
               "a granule that throws must cost a retry, not the process: "
               "goodput with 1% injected faults stays within 0.9x of "
               "fault-free, and the barrier adds no heap traffic to the "
               "no-fault warm path");

  constexpr std::size_t kJobs = 6;
  constexpr std::uint32_t kFaultPermille = 10;  // 1% of granules throw once
  constexpr double kGoodputFloor = 0.9;
  constexpr double kAllocBar =
      kT10PreReworkAllocsPerGranule / kT10RequiredReduction;

  struct Measurement {
    ArmResult clean, faulty;
    double goodput_ratio = 0.0;
    double work_inflation = 0.0;
    double marginal_allocs = 0.0;
    bool pass_goodput = false, pass_alloc = false, pass_accounting = false;
  };
  auto measure = [&](std::uint64_t seed) {
    Measurement m;
    m.clean = run_arm(kJobs, 0, /*lockfree=*/true, seed);
    m.faulty = run_arm(kJobs, kFaultPermille, /*lockfree=*/true, seed);
    m.goodput_ratio = m.faulty.goodput / m.clean.goodput;
    // Work inflation: body time bought by retrying faulted ranges, plus the
    // attempt overhead the barrier adds; reported, not gated (busy wall time
    // on an oversubscribed host also moves with scheduling pressure).
    m.work_inflation = static_cast<double>(m.faulty.busy.count()) /
                       static_cast<double>(m.clean.busy.count());
    m.marginal_allocs = marginal_warm_allocs(4, 4096, 16384);
    m.pass_goodput = m.goodput_ratio >= kGoodputFloor;
    m.pass_alloc = m.marginal_allocs <= kAllocBar;
    m.pass_accounting = m.clean.ok && m.faulty.ok && m.clean.faults == 0 &&
                        m.faulty.injected > 0;
    return m;
  };

  // Goodput on a small shared CI host is noisy; retry like the other pool
  // benches. Accounting drift fails immediately — that is correctness.
  constexpr int kMaxAttempts = 3;
  Measurement m = measure(0x714F4A17ULL);
  for (int attempt = 1; attempt < kMaxAttempts && m.pass_accounting &&
                        !(m.pass_goodput && m.pass_alloc);
       ++attempt) {
    std::printf("attempt %d: goodput %s alloc %s; retrying (host noise)\n",
                attempt, m.pass_goodput ? "ok" : "FAIL",
                m.pass_alloc ? "ok" : "FAIL");
    m = measure(0x714F4A17ULL + static_cast<std::uint64_t>(attempt) * 131);
  }

  Table t("T14 — T9-protocol pool stream, fault-free vs 1% injected faults");
  t.header({"arm", "granules", "faults", "retries", "goodput gr/s",
            "allocs/granule", "busy ms"});
  t.row({"fault-free", Table::count(m.clean.granules),
         Table::count(m.clean.faults), Table::count(m.clean.retries),
         fixed(m.clean.goodput, 0), fixed(m.clean.warm_allocs_per_granule, 4),
         fixed(static_cast<double>(m.clean.busy.count()) / 1e6, 1)});
  t.row({"1% faults", Table::count(m.faulty.granules),
         Table::count(m.faulty.faults), Table::count(m.faulty.retries),
         fixed(m.faulty.goodput, 0), fixed(m.faulty.warm_allocs_per_granule, 4),
         fixed(static_cast<double>(m.faulty.busy.count()) / 1e6, 1)});
  t.print(std::cout);

  const std::string config = "workers=" + std::to_string(kWorkers) +
                             " jobs=" + std::to_string(kJobs) +
                             " grain=" + std::to_string(kT9Grain);
  json.set_meta("workers", kWorkers);
  json.set_meta("jobs", kJobs);
  json.add("t14_fault", "goodput_clean_granules_per_s", m.clean.goodput,
           config);
  json.add("t14_fault", "goodput_faulty_granules_per_s", m.faulty.goodput,
           config);
  json.add("t14_fault", "goodput_ratio", m.goodput_ratio, config);
  json.add("t14_fault", "injected_faults",
           static_cast<double>(m.faulty.injected), config);
  json.add("t14_fault", "retries", static_cast<double>(m.faulty.retries),
           config);
  json.add("t14_fault", "work_inflation_busy_ratio", m.work_inflation, config);
  json.add("t14_fault", "warm_allocs_per_granule_gross",
           m.clean.warm_allocs_per_granule, config);
  json.add("t14_fault", "warm_allocs_per_granule_marginal", m.marginal_allocs,
           config);

  const bool pass = m.pass_accounting && m.pass_goodput && m.pass_alloc;
  std::printf(
      "\nthe barrier turns a throw into bookkeeping: the faulted range is\n"
      "retired through the fail path, re-enqueued after backoff, and the\n"
      "pool's other jobs keep filling the gap — rundown overlap absorbing\n"
      "fault recovery the same way it absorbs stragglers.\n\n");
  std::printf(
      "acceptance: goodput ratio %.3f >= %.2f %s | marginal warm "
      "allocs/granule %.4f <= %.4f %s | faults %llu == injected %llu, "
      "retries %llu, poisoned %llu, inflation %.3fx %s: %s\n",
      m.goodput_ratio, kGoodputFloor, m.pass_goodput ? "ok" : "FAIL",
      m.marginal_allocs, kAllocBar, m.pass_alloc ? "ok" : "FAIL",
      static_cast<unsigned long long>(m.faulty.faults),
      static_cast<unsigned long long>(m.faulty.injected),
      static_cast<unsigned long long>(m.faulty.retries),
      static_cast<unsigned long long>(m.faulty.poisoned), m.work_inflation,
      m.pass_accounting ? "ok" : "FAIL", pass ? "PASS" : "FAIL");
  json.flush();
  return pass ? 0 : 1;
}
