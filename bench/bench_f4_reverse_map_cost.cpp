// bench_f4_reverse_map_cost — Experiment F4.
//
// The paper: "the impact of executive computation must be considered. In the
// PAX/CASPER UNIVAC 1100 test bed, executive computation was done at the
// direct expense of worker computation. Thus, extensive composite granule
// map generation could be self defeating. Some real parallel machines may
// provide separate executive computing resources, in which case the
// generation and use of composite granule maps would not be out of the
// question."
//
// Sweep of the reverse-map fan (requirements per successor granule, the
// paper's J) x executive placement x successor-subset size. Benefit turns
// negative as the map work grows on the worker-stealing testbed; a dedicated
// management processor and/or the subset device rescue it.
#include <iostream>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace pax;
  using namespace pax::bench;
  JsonReport json = JsonReport::from_args(argc, argv);
  print_banner("F4 — composite-map cost vs benefit (reverse indirect)",
               "\"extensive composite granule map generation could be self "
               "defeating\" on a worker-stealing testbed; dedicated executive "
               "resources change the verdict");

  constexpr std::uint32_t kWorkers = 48;
  constexpr GranuleId kGranules = 1536;  // 8 tasks/proc at grain 4
  json.set_meta("workers", kWorkers);
  json.set_meta("granules_per_phase", kGranules);

  sim::PhaseWorkload pw;
  pw.model = sim::DurationModel::kUniform;
  pw.mean = 600;
  pw.spread = 300;

  Table t("F4 — overlap benefit vs reverse-map fan (J) and executive placement");
  t.header({"fan J", "placement", "subset", "barrier", "overlap", "benefit",
            "map entries", "exec busy"});

  for (std::uint32_t fan : {2u, 4u, 10u, 24u, 48u}) {
    for (ExecPlacement placement :
         {ExecPlacement::kWorkerStealing, ExecPlacement::kDedicated}) {
      for (GranuleId subset : {GranuleId{0}, GranuleId{64}}) {
        TwoPhase tp = two_phase(kGranules, kGranules,
                                MappingKind::kReverseIndirect, fan);
        sim::Workload wl(41);
        wl.set_phase(tp.a, pw);
        wl.set_phase(tp.b, pw);

        sim::MachineConfig mc;
        mc.workers = kWorkers;
        mc.record_intervals = false;

        ExecConfig barrier;
        barrier.overlap = false;
        barrier.grain = 4;
        barrier.placement = placement;
        ExecConfig overlap = barrier;
        overlap.overlap = true;
        overlap.indirect_subset = subset;

        const auto r_b = sim::simulate(tp.program, barrier, CostModel{}, wl, mc);
        const auto r_o = sim::simulate(tp.program, overlap, CostModel{}, wl, mc);
        const double benefit = 1.0 - static_cast<double>(r_o.makespan) /
                                         static_cast<double>(r_b.makespan);
        const std::string config =
            "fan=" + std::to_string(fan) + " placement=" +
            std::string(to_string(placement)) +
            " subset=" + (subset == 0 ? "all" : std::to_string(subset));
        json.add("f4_reverse_map", "benefit", benefit, config);
        json.add("f4_reverse_map", "map_entries",
                 static_cast<double>(r_o.ledger.count(MgmtOp::kMapBuildEntry)),
                 config);
        t.row({std::to_string(fan), to_string(placement),
               subset == 0 ? "all" : std::to_string(subset),
               Table::count(r_b.makespan), Table::count(r_o.makespan),
               Table::pct(benefit, 1),
               Table::count(r_o.ledger.count(MgmtOp::kMapBuildEntry)),
               Table::count(r_o.exec_ticks)});
      }
    }
    t.separator();
  }
  t.print(std::cout);
  std::printf(
      "\nNegative benefit = self-defeating overlap. The successor-subset device\n"
      "bounds the enablement problem; the dedicated placement takes map building\n"
      "off worker time, as the paper anticipates for machines with separate\n"
      "executive computing resources.\n");
  return 0;
}
