// bench_t7_pool — Experiment T7.
//
// The paper fills a phase's rundown with successor-phase granules; the pool
// runtime applies the same move at *program* scope, filling one program's
// rundown tail with granules of other programs. This bench submits K mixed
// tail-heavy jobs (CASPER-style 3-phase loops and SOR-style 2-phase sweeps,
// each with straggler granules and a conflicting serial action between
// iterations) to a W-worker pool, against the status-quo baseline of running
// the same jobs one after another on a W-worker ThreadedRuntime. It reports
// pool vs. sequential utilization and the per-job work inflation (pool busy
// time over solo busy time — Acar/Charguéraud/Rainey's measure for what
// co-scheduling costs each job).
//
// Exit status: non-zero when pool utilization fails to reach 1.3x the
// run-jobs-sequentially baseline, or when granule totals differ (the
// acceptance gate for the pool subsystem).
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "pool/pool_runtime.hpp"
#include "runtime/threaded_runtime.hpp"

namespace {

using namespace pax;

std::atomic<std::uint64_t> g_sink{0};

void spin(std::uint32_t iters) {
  std::uint64_t acc = 0;
  for (std::uint32_t i = 0; i < iters; ++i)
    acc += (static_cast<std::uint64_t>(i) * 2654435761u) ^ (acc >> 7);
  g_sink.fetch_add(acc, std::memory_order_relaxed);
}

struct JobSpec {
  const char* kind;
  GranuleId n;             ///< granules per phase
  std::uint32_t phases;    ///< 3 = CASPER-ish pipeline, 2 = SOR-ish sweep
  int iters;               ///< loop iterations
  std::uint32_t base_spin;
  std::uint32_t straggler_spin;  ///< cost of the last granule of each phase
  std::uint32_t serial_spin;     ///< conflicting serial action between iters
  int priority;
};

struct BuiltJob {
  PhaseProgram prog;
  rt::BodyTable bodies;
  std::uint64_t expected_granules = 0;
};

/// A loop of identity-chained phases with a straggler granule per phase and
/// a conflicting serial action at the loop boundary: within-job overlap can
/// fill mid-chain tails, but the straggler chain and the serial action leave
/// a genuine per-iteration rundown that only *another job* can fill.
#if defined(__GNUC__) && !defined(__clang__)
// GCC 12 false positive: node-vector reallocation moving the ProgramNode
// variant trips -Wmaybe-uninitialized on the moved-from EnableClause vector.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
BuiltJob build_job(const JobSpec& s) {
  BuiltJob b;
  static const char* kNames[3] = {"pa", "pb", "pc"};
  static const char* kRes[3] = {"RA", "RB", "RC"};
  std::vector<PhaseId> ids;
  for (std::uint32_t p = 0; p < s.phases; ++p) {
    auto ph = make_phase(kNames[p], s.n).writes(kRes[p]);
    if (p > 0) ph.reads(kRes[p - 1]);
    ids.push_back(b.prog.define_phase(ph));
  }
  b.prog.serial("init", [](ProgramEnv& env) { env.set("i", 0); }, 0, false);
  std::uint32_t top = 0;
  for (std::uint32_t p = 0; p < s.phases; ++p) {
    std::vector<EnableClause> clauses;
    if (p + 1 < s.phases)
      clauses.push_back(EnableClause{kNames[p + 1], MappingKind::kIdentity, {}});
    const std::uint32_t node = b.prog.dispatch(ids[p], std::move(clauses));
    if (p == 0) top = node;
  }
  const std::uint32_t serial_spin = s.serial_spin;
  b.prog.serial("tick",
                [serial_spin](ProgramEnv& env) {
                  spin(serial_spin);
                  env.add("i", 1);
                },
                /*sim_duration=*/0, /*conflicts=*/true);
  const int iters = s.iters;
  b.prog.branch("loop",
                [iters](const ProgramEnv& env) {
                  return env.get("i") < iters ? std::size_t{0} : std::size_t{1};
                },
                {top, static_cast<std::uint32_t>(b.prog.size() + 1)}, true);
  b.prog.halt();

  const GranuleId n = s.n;
  const std::uint32_t base = s.base_spin;
  const std::uint32_t strag = s.straggler_spin;
  for (PhaseId id : ids)
    b.bodies.set(id, [n, base, strag](GranuleRange r, WorkerId) {
      for (GranuleId g = r.lo; g < r.hi; ++g) spin(g == n - 1 ? strag : base);
    });
  b.expected_granules =
      static_cast<std::uint64_t>(s.phases) * s.n * static_cast<std::uint64_t>(s.iters);
  return b;
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

std::chrono::nanoseconds sum(const std::vector<std::chrono::nanoseconds>& v) {
  std::chrono::nanoseconds t{0};
  for (auto x : v) t += x;
  return t;
}

double ms(std::chrono::nanoseconds ns) {
  return static_cast<double>(ns.count()) / 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pax;
  using namespace pax::bench;
  JsonReport json = JsonReport::from_args(argc, argv);
  print_banner("T7 — shared worker pool across programs",
               "one program's rundown tail is filled with already-enabled "
               "granules of *other* programs: the paper's overlap mechanism "
               "lifted from phase scope to program scope");

  constexpr std::uint32_t kWorkers = 4;
  const std::vector<JobSpec> specs = {
      {"casper", 8, 3, 6, 12000, 90000, 40000, 0},
      {"sor", 6, 2, 8, 20000, 120000, 30000, 2},
      {"casper", 8, 3, 6, 10000, 80000, 40000, 1},
      {"sor", 6, 2, 8, 16000, 100000, 30000, 0},
      {"casper", 10, 3, 5, 12000, 72000, 50000, 3},
      {"sor", 8, 2, 6, 14000, 110000, 35000, 0},
      {"casper", 8, 3, 6, 8000, 84000, 40000, 2},
      {"sor", 6, 2, 8, 18000, 81000, 30000, 1},
  };

  ExecConfig cfg;
  cfg.grain = 1;
  cfg.early_serial = true;

  std::vector<BuiltJob> jobs;
  jobs.reserve(specs.size());
  for (const JobSpec& s : specs) jobs.push_back(build_job(s));

  // One full experiment: sequential baseline, then the pool. Stealing off
  // on both sides: T7 isolates what *cross-job rotation* buys; the intra-job
  // dispatch layer is T8's experiment (bench_t8_steal).
  struct Measurement {
    std::vector<rt::RtResult> solo;
    std::vector<pool::JobStats> job_stats;
    std::chrono::nanoseconds seq_span{0};
    std::chrono::nanoseconds pool_span{0};
    pool::PoolStats ps;
    double util_seq = 0.0;
    double util_pool = 0.0;
    bool granules_ok = true;
  };
  auto measure = [&] {
    Measurement m;
    rt::RtConfig solo_rc;
    solo_rc.workers = kWorkers;
    solo_rc.batch = 4;
    solo_rc.steal = false;
    solo_rc.adaptive_grain = false;
    solo_rc.shards = 1;  // this bench isolates cross-job rotation
    std::chrono::nanoseconds seq_busy{0}, seq_wall{0};
    for (const BuiltJob& j : jobs) {
      rt::ThreadedRuntime runtime(j.prog, cfg, CostModel::free_of_charge(),
                                  j.bodies, solo_rc);
      m.solo.push_back(runtime.run());
      seq_busy += sum(m.solo.back().worker_busy);
      seq_wall += sum(m.solo.back().worker_wall);
      m.seq_span += m.solo.back().wall;
    }
    m.util_seq = static_cast<double>(seq_busy.count()) /
                 static_cast<double>(seq_wall.count());

    const auto pool_t0 = std::chrono::steady_clock::now();
    pool::PoolRuntime pool({.workers = kWorkers,
                            .batch = 4,
                            .policy = pool::SchedPolicy::kFairShare,
                            .shards = 1,  // isolate rotation, not sharding
                            .steal = false,
                            .adaptive_grain = false});
    std::vector<pool::JobHandle> handles;
    for (std::size_t i = 0; i < jobs.size(); ++i)
      handles.push_back(
          pool.submit(jobs[i].prog, jobs[i].bodies, cfg, specs[i].priority));
    for (auto& h : handles) h.wait();
    pool.shutdown();
    m.pool_span = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::steady_clock::now() - pool_t0);
    m.ps = pool.stats();
    m.util_pool = m.ps.utilization();
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      m.job_stats.push_back(handles[i].stats());
      if (m.job_stats.back().granules != jobs[i].expected_granules ||
          m.solo[i].granules_executed != jobs[i].expected_granules)
        m.granules_ok = false;
    }
    return m;
  };

  // Wall-clock utilization on a small, oversubscribed CI host is noisy, so
  // the gate retries: a genuine regression fails all attempts, a scheduler
  // hiccup does not. Granule drift fails immediately — that is correctness.
  constexpr int kMaxAttempts = 3;
  Measurement m = measure();
  for (int attempt = 1;
       attempt < kMaxAttempts && m.granules_ok &&
       m.util_pool / m.util_seq < 1.3;
       ++attempt) {
    std::printf("attempt %d: ratio %.2fx below the 1.3x gate; retrying "
                "(host noise tolerance)\n",
                attempt, m.util_pool / m.util_seq);
    m = measure();
  }

  // --- per-job work inflation ----------------------------------------------
  Table t("T7 — per-job cost under co-scheduling (work inflation)");
  t.header({"job", "kind", "prio", "granules", "solo busy ms", "pool busy ms",
            "inflation"});
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const pool::JobStats& js = m.job_stats[i];
    const auto solo_busy = sum(m.solo[i].worker_busy);
    const double inflation = static_cast<double>(js.busy.count()) /
                             static_cast<double>(solo_busy.count());
    json.add("t7_pool", "work_inflation", inflation,
             "job=" + std::to_string(i) + " kind=" + specs[i].kind);
    t.row({std::to_string(i), specs[i].kind, std::to_string(specs[i].priority),
           Table::count(js.granules), fixed(ms(solo_busy), 2),
           fixed(ms(js.busy), 2), fixed(inflation, 2)});
  }
  t.print(std::cout);

  Table u("T7 — pool vs. run-jobs-sequentially");
  u.header({"mode", "utilization", "makespan ms", "rotations", "locks"});
  u.row({"sequential", Table::pct(m.util_seq, 1), fixed(ms(m.seq_span), 1),
         "-", "-"});
  u.row({"pool", Table::pct(m.util_pool, 1), fixed(ms(m.pool_span), 1),
         Table::count(m.ps.rotations), Table::count(m.ps.exec_lock_acquisitions)});
  u.print(std::cout);

  const double util_seq = m.util_seq;
  const double util_pool = m.util_pool;
  const bool granules_ok = m.granules_ok;
  const double ratio = util_pool / util_seq;
  const bool pass = ratio >= 1.3 && granules_ok;
  const std::string config =
      "workers=" + std::to_string(kWorkers) + " jobs=" + std::to_string(jobs.size());
  json.add("t7_pool", "utilization_sequential", util_seq, config);
  json.add("t7_pool", "utilization_pool", util_pool, config);
  json.add("t7_pool", "utilization_ratio", ratio, config);
  std::printf(
      "\nthe sequential baseline idles W-1 workers through every straggler\n"
      "chain and serial action; the pool rotates those workers onto other\n"
      "jobs' enabled granules, so the idle tails overlap instead of\n"
      "serializing. inflation ~1 means co-scheduling did not make the jobs\n"
      "themselves more expensive.\n\n");
  std::printf(
      "acceptance: pool utilization %.1f%% vs sequential %.1f%% = %.2fx "
      "(need >= 1.3x, identical granules %s): %s\n",
      100.0 * util_pool, 100.0 * util_seq, ratio,
      granules_ok ? "yes" : "NO", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
