// bench_t11_trace — Experiment T11.
//
// PR 7 adds always-on observability: per-worker lock-free trace rings, the
// unified metrics registry, and the Perfetto exporter (DESIGN.md §12). An
// observability layer that perturbs the quantity it observes would poison
// every number this repo reports, so this bench gates the overhead claim the
// design makes: tracing is a branch and a couple of stores per event, off
// the timed control sections, allocation-free once the buffer exists.
//
// Gates (exit non-zero on failure):
//   1. Warm-window heap traffic of the emit paths is exactly ZERO: a
//      deterministic single-threaded window of ring emits (including full
//      wrap-around) and metrics-cell updates performs no heap allocation
//      (alloc_stats hooks; the memory discipline of DESIGN.md §10 extended
//      to the obs layer).
//   2. Tracing-ON runs of the T9 protocol (the same workload/knobs the t9
//      and t10 gates measure, sharded mode) hold BOTH control-lock hold
//      ns/granule AND heap allocs/granule within 3% of the tracing-OFF
//      baseline (medians of 3, interleaved, up to 4 attempts against host
//      noise).
//   3. The trace is *exact*, not approximate: with zero ring drops, summing
//      (end - begin) over each worker's exec records reproduces that
//      worker's RtResult busy nanoseconds bit for bit, and the granules
//      covered by exec records equal granules_executed — the dispatch layer
//      stamps records from the same clock reads that feed the accounting.
//
// `--trace <path>` additionally exports the gate-3 run as Chrome trace JSON
// (loadable in ui.perfetto.dev); the CI gate job validates a sample with
// tools/check_trace.py.
#define PAX_ALLOC_STATS_IMPLEMENT
#include "common/alloc_stats.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_export.hpp"
#include "obs/trace_ring.hpp"
#include "runtime/threaded_runtime.hpp"

namespace {

using namespace pax;
using pax::bench::fixed;

constexpr std::uint64_t kTotal = pax::bench::kT9Total;
constexpr std::uint32_t kBatch = pax::bench::kT9Batch;

// --- gate 1: deterministic zero-alloc warm window ----------------------------

struct WarmWindow {
  std::uint64_t events = 0;
  std::uint64_t allocs = 0;
  std::uint64_t bytes = 0;
  std::uint64_t ring_dropped = 0;
};

WarmWindow warm_window_allocs() {
  // Small ring on purpose: the window must cover wrap-around, the one spot
  // a naive ring would grow or re-allocate.
  obs::TraceConfig tc;
  tc.ring_capacity = 1u << 10;
  obs::TraceBuffer buf(/*workers=*/4, tc);
  obs::MetricsRegistry reg;
  const obs::MetricId ctr = reg.register_counter("t11.counter");
  const obs::MetricId hist =
      reg.register_histogram("t11.hist", {10, 100, 1000});
  reg.bind(4);

  obs::TraceRecord r;
  r.job = obs::kNoTraceJob;
  r.phase = 0;
  // Prime every code path once before opening the measurement window (first
  // touch of the cells and slots), mirroring how runtimes warm up.
  for (WorkerId w = 0; w < 4; ++w) {
    r.worker = static_cast<std::uint16_t>(w);
    r.ts_ns = obs::trace_now_ns();
    r.kind = obs::TraceKind::kExecBegin;
    buf.ring(w).emit(r);
    reg.add(ctr, w, 1);
    reg.observe(hist, w, 50);
  }

  WarmWindow out;
  const AllocTotals t0 = alloc_stats::thread_totals();
  constexpr std::uint64_t kEvents = 100000;  // ~25x ring capacity: full wraps
  for (std::uint64_t i = 0; i < kEvents; ++i) {
    const auto w = static_cast<WorkerId>(i & 3);
    r.worker = static_cast<std::uint16_t>(w);
    r.ts_ns = obs::trace_now_ns();
    r.kind = (i & 1) != 0 ? obs::TraceKind::kExecEnd : obs::TraceKind::kExecBegin;
    r.aux = static_cast<std::uint32_t>(i & 0xFF);
    buf.ring(w).emit(r);
    reg.add(ctr, w, 1);
    reg.observe(hist, w, i & 0x7FF);
  }
  const AllocTotals d = alloc_stats::delta(t0, alloc_stats::thread_totals());
  out.events = kEvents;
  out.allocs = d.allocs;
  out.bytes = d.bytes;
  out.ring_dropped = buf.total_dropped();
  return out;
}

// --- gate 2: T9-protocol overhead, tracing on vs off -------------------------

double hold_ns_per_granule(const rt::RtResult& r) {
  return static_cast<double>(r.exec_lock_hold_ns) /
         static_cast<double>(r.granules_executed);
}

double allocs_per_granule(const rt::RtResult& r) {
  return static_cast<double>(r.heap_allocs) /
         static_cast<double>(r.granules_executed);
}

struct ModeMetrics {
  double hold = 0.0;    // control-lock hold ns / granule (median of reps)
  double allocs = 0.0;  // heap allocs / granule (median of reps)
  rt::RtResult mid;     // hold-median repetition, for table rows
  bool granules_ok = true;
};

ModeMetrics metrics_of(std::vector<rt::RtResult> reps) {
  ModeMetrics m;
  for (const rt::RtResult& r : reps)
    if (r.granules_executed != kTotal) m.granules_ok = false;
  std::sort(reps.begin(), reps.end(),
            [](const rt::RtResult& x, const rt::RtResult& y) {
              return allocs_per_granule(x) < allocs_per_granule(y);
            });
  m.allocs = allocs_per_granule(reps[reps.size() / 2]);
  std::sort(reps.begin(), reps.end(),
            [](const rt::RtResult& x, const rt::RtResult& y) {
              return hold_ns_per_granule(x) < hold_ns_per_granule(y);
            });
  m.hold = hold_ns_per_granule(reps[reps.size() / 2]);
  m.mid = std::move(reps[reps.size() / 2]);
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pax;
  using namespace pax::bench;
  JsonReport json = JsonReport::from_args(argc, argv);
  std::string trace_path;
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], "--trace") == 0) trace_path = argv[i + 1];

  print_banner("T11 — observability overhead: trace rings + metrics registry",
               "measuring where rundown time goes must not change where it "
               "goes: tracing is stores into preallocated rings, off the "
               "timed control sections, and its busy timeline is exact");

  // --- gate 1 ---------------------------------------------------------------
  const WarmWindow ww = warm_window_allocs();
  const bool gate1 = ww.allocs == 0 && ww.ring_dropped > 0;

  Table t1("T11a — warm-window emit paths (ring emits + metric updates)");
  t1.header({"events", "ring wraps seen", "heap allocs", "heap bytes"});
  t1.row({Table::count(ww.events), Table::count(ww.ring_dropped),
          Table::count(ww.allocs), Table::count(ww.bytes)});
  t1.print(std::cout);
  json.add("t11_trace", "warm_window_allocs", static_cast<double>(ww.allocs),
           "events=100000 ring=1024 workers=4");

  // --- gate 2 ---------------------------------------------------------------
  const std::uint32_t workers =
      std::max(8u, std::min(16u, std::thread::hardware_concurrency()));
  json.set_meta("workers", workers);
  json.set_meta("batch", kBatch);
  json.set_meta("shards", "auto");
  constexpr int kReps = 3;
  constexpr int kAttempts = 4;  // whole-measurement retries against host noise
  constexpr double kTolerance = 1.03;  // tracing-on within 3% of off

  bool gate2 = false;
  ModeMetrics off, on;
  for (int attempt = 0; attempt < kAttempts && !gate2; ++attempt) {
    // Interleave the repetitions (off,on,off,on,...) so slow host-load drift
    // hits both modes evenly instead of biasing whichever ran last. Both
    // arms ride the shipped (lock-free) shard engine — the engine is held
    // equal so this gate keeps isolating tracing; bench_t12 gates engines.
    std::vector<rt::RtResult> off_reps, on_reps;
    for (int i = 0; i < kReps; ++i) {
      off_reps.push_back(run_t9_protocol(workers, kAutoShards));
      // Fresh preallocated buffer per repetition: construction is outside
      // the measured run() window, like any caller would hold it.
      obs::TraceBuffer buf(workers);
      on_reps.push_back(run_t9_protocol(workers, kAutoShards, nullptr, &buf));
    }
    off = metrics_of(std::move(off_reps));
    on = metrics_of(std::move(on_reps));
    // Absolute epsilon on allocs/granule: both sides sit near zero (thread
    // spawn bookkeeping only), where a pure ratio would amplify noise.
    gate2 = off.granules_ok && on.granules_ok && on.hold <= off.hold * kTolerance &&
            on.allocs <= off.allocs * kTolerance + 1e-3;
  }

  Table t2("T11b — T9 protocol (sharded), tracing off vs on");
  t2.header({"workers", "tracing", "granules", "hold ns/g", "allocs/g",
             "trace records", "wall ms"});
  for (const ModeMetrics* m : {&off, &on}) {
    const rt::RtResult& r = m->mid;
    t2.row({std::to_string(workers), m == &off ? "off" : "on",
            Table::count(r.granules_executed), fixed(m->hold, 1),
            fixed(m->allocs, 4),
            Table::count(r.metrics.value_of("trace.emitted")),
            fixed(static_cast<double>(r.wall.count()) / 1e6, 1)});
    const std::string config = "workers=" + std::to_string(workers) +
                               " batch=" + std::to_string(kBatch) +
                               " trace=" + (m == &off ? "off" : "on");
    json.add("t11_trace", "lock_hold_ns_per_granule", m->hold, config);
    json.add("t11_trace", "allocs_per_granule", m->allocs, config);
  }
  t2.print(std::cout);
  json.add("t11_trace", "hold_overhead_ratio",
           off.hold > 0.0 ? on.hold / off.hold : 1.0,
           "workers=" + std::to_string(workers));

  // --- gate 3 ---------------------------------------------------------------
  // One dedicated run into a fresh buffer: with zero drops the trace must
  // reproduce the runtime's busy accounting exactly, not approximately.
  obs::TraceBuffer buf(workers);
  const rt::RtResult res = run_t9_protocol(workers, kAutoShards, nullptr, &buf);
  const std::vector<std::uint64_t> trace_busy = obs::busy_ns_by_worker(buf);
  const std::vector<obs::TraceRecord> merged = obs::merged_records(buf);
  const std::uint64_t trace_granules = obs::granules_in(merged);

  bool busy_exact = buf.total_dropped() == 0;
  std::uint64_t busy_rt_total = 0, busy_tr_total = 0;
  for (WorkerId w = 0; w < workers; ++w) {
    const auto rt_ns = static_cast<std::uint64_t>(res.worker_busy[w].count());
    busy_rt_total += rt_ns;
    busy_tr_total += trace_busy[w];
    if (trace_busy[w] != rt_ns) busy_exact = false;
  }
  const bool gate3 = busy_exact && trace_granules == res.granules_executed &&
                     res.granules_executed == kTotal;

  Table t3("T11c — trace-vs-runtime identity (zero drops required)");
  t3.header({"records", "dropped", "trace busy ns", "runtime busy ns",
             "trace granules", "runtime granules"});
  t3.row({Table::count(merged.size()), Table::count(buf.total_dropped()),
          Table::count(busy_tr_total), Table::count(busy_rt_total),
          Table::count(trace_granules), Table::count(res.granules_executed)});
  t3.print(std::cout);
  json.add("t11_trace", "trace_records", static_cast<double>(merged.size()),
           "workers=" + std::to_string(workers));
  json.add("t11_trace", "trace_dropped",
           static_cast<double>(buf.total_dropped()),
           "workers=" + std::to_string(workers));

  if (!trace_path.empty()) {
    if (obs::write_chrome_trace(merged, trace_path))
      std::printf("\nwrote Chrome trace JSON: %s (load in ui.perfetto.dev)\n",
                  trace_path.c_str());
  }

  const bool pass = gate1 && gate2 && gate3;
  std::printf(
      "\nacceptance: warm-window allocs %llu (need 0, wraps seen %llu): %s; "
      "tracing-on hold ns/granule %.1f vs off %.1f and allocs/granule %.4f vs "
      "%.4f at %u workers (medians of %d, up to %d attempts, need within 3%%): "
      "%s; busy/granule trace identity (drops=%llu): %s => %s\n",
      static_cast<unsigned long long>(ww.allocs),
      static_cast<unsigned long long>(ww.ring_dropped), gate1 ? "PASS" : "FAIL",
      on.hold, off.hold, on.allocs, off.allocs, workers, kReps, kAttempts,
      gate2 ? "PASS" : "FAIL",
      static_cast<unsigned long long>(buf.total_dropped()),
      gate3 ? "PASS" : "FAIL", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
